//! # fftmatvec — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Mixed-Precision Performance
//! Portability of FFT-Based GPU-Accelerated Algorithms for Block-Triangular
//! Toeplitz Matrices"* (Venkat, Świrydowicz, Wolfe, Ghattas — SC Workshops
//! '25).
//!
//! This crate re-exports the whole workspace so applications can depend on
//! a single crate:
//!
//! * [`numeric`] — scalars, complex numbers, dynamic-precision buffers.
//! * [`fft`] — plan-based mixed-radix FFT with real transforms and batching.
//! * [`gpu`] — simulated AMD Instinct devices and the kernel cost model.
//! * [`blas`] — strided batched GEMV kernels (baseline + optimized).
//! * [`comm`] — 2-D process grids, collectives, and the comm cost model.
//! * [`core`] — the FFTMatvec pipeline, mixed-precision framework, error
//!   analysis, Pareto front, and the distributed matvec.
//! * [`lti`] — linear autonomous dynamical systems and Bayesian inversion.
//! * [`portability`] — the hipify-on-the-fly translation pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use fftmatvec::core::{BlockToeplitzOperator, FftMatvec, PrecisionConfig};
//! use fftmatvec::numeric::SplitMix64;
//!
//! // A small block-triangular Toeplitz operator: Nt=8 blocks of 3x16.
//! let (nd, nm, nt) = (3, 16, 8);
//! let mut rng = SplitMix64::new(1);
//! let mut col = vec![0.0; nt * nd * nm];
//! rng.fill_uniform(&mut col, -1.0, 1.0);
//! let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
//!
//! // Apply F in full double precision.
//! let mut mv = FftMatvec::new(op, PrecisionConfig::all_double());
//! let m = vec![1.0; nm * nt];
//! let d = mv.apply_forward(&m);
//! assert_eq!(d.len(), nd * nt);
//! ```

pub use fftmatvec_blas as blas;
pub use fftmatvec_comm as comm;
pub use fftmatvec_core as core;
pub use fftmatvec_fft as fft;
pub use fftmatvec_gpu as gpu;
pub use fftmatvec_lti as lti;
pub use fftmatvec_numeric as numeric;
pub use fftmatvec_portability as portability;
