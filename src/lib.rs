//! # fftmatvec — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Mixed-Precision Performance
//! Portability of FFT-Based GPU-Accelerated Algorithms for Block-Triangular
//! Toeplitz Matrices"* (Venkat, Świrydowicz, Wolfe, Ghattas — SC Workshops
//! '25).
//!
//! This crate re-exports the whole workspace so applications can depend on
//! a single crate:
//!
//! * [`numeric`] — scalars, complex numbers, dynamic-precision buffers.
//! * [`fft`] — plan-based mixed-radix FFT with real transforms and batching.
//! * [`gpu`] — simulated AMD Instinct devices and the kernel cost model.
//! * [`blas`] — strided batched GEMV kernels (baseline + optimized).
//! * [`comm`] — 2-D process grids, collectives, and the comm cost model.
//! * [`core`] — the FFTMatvec pipeline, mixed-precision framework, error
//!   analysis, Pareto front, and the distributed matvec.
//! * [`toeplitz`] — multi-level Toeplitz operators (`TwoLevelToeplitz`,
//!   `NdCirculantEmbedding`) via circulant embedding, including the
//!   memory-optimized split-FFT path; nested plans share the process-wide
//!   FFT plan cache in the `planWhole`/`planBlock` style.
//! * [`lti`] — linear autonomous dynamical systems and Bayesian inversion.
//! * [`portability`] — the hipify-on-the-fly translation pipeline.
//! * [`service`] — operator-as-a-service: a persistent registry plus an
//!   async batching queue with deadlines and admission control.
//!
//! ## Quickstart
//!
//! Every matvec realization implements the
//! [`LinearOperator`](core::LinearOperator) trait; pipelines are built
//! with the fluent builder and report failures as typed errors
//! ([`OpError`](core::OpError) / [`ConfigError`](core::ConfigError))
//! instead of panicking:
//!
//! ```
//! use fftmatvec::core::{BlockToeplitzOperator, FftMatvec, LinearOperator, PrecisionConfig};
//! use fftmatvec::numeric::SplitMix64;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small block-triangular Toeplitz operator: Nt=8 blocks of 3x16.
//! let (nd, nm, nt) = (3, 16, 8);
//! let mut rng = SplitMix64::new(1);
//! let mut col = vec![0.0; nt * nd * nm];
//! rng.fill_uniform(&mut col, -1.0, 1.0);
//! let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col)?;
//!
//! // Build the pipeline and apply F in full double precision.
//! let mv = FftMatvec::builder(op).precision(PrecisionConfig::all_double()).build()?;
//! let m = vec![1.0; nm * nt];
//! let d = mv.apply_forward(&m)?;
//! assert_eq!(d.len(), nd * nt);
//!
//! // The zero-allocation hot path writes into a reused buffer.
//! let mut out = vec![0.0; nd * nt];
//! mv.apply_forward_into(&m, &mut out)?;
//! assert_eq!(out, d);
//!
//! // Shape mistakes come back as typed errors, not panics.
//! assert!(mv.apply_forward(&m[1..]).is_err());
//! # Ok(())
//! # }
//! ```
//!
//! Swapping realizations is a type change, not a rewrite — the direct
//! `O(N_t²)` oracle exposes the same trait surface:
//!
//! ```
//! use fftmatvec::core::{BlockToeplitzOperator, DirectMatvec, LinearOperator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let op = BlockToeplitzOperator::from_first_block_column(1, 2, 2, &[1.0, 2.0, 3.0, 4.0])?;
//! let direct = DirectMatvec::new(&op);
//! let any: &dyn LinearOperator = &direct;
//! assert_eq!(any.shape().rows, 2);
//! // d_0 = F_1·m_0 = [1,2]·[1,0]; d_1 = F_2·m_0 + F_1·m_1 = 3 + 2.
//! assert_eq!(any.apply_forward(&[1.0, 0.0, 0.0, 1.0])?, vec![1.0, 5.0]);
//! # Ok(())
//! # }
//! ```

pub use fftmatvec_backend as backend;
pub use fftmatvec_blas as blas;
pub use fftmatvec_comm as comm;
pub use fftmatvec_core as core;
pub use fftmatvec_fft as fft;
pub use fftmatvec_gpu as gpu;
pub use fftmatvec_lti as lti;
pub use fftmatvec_numeric as numeric;
pub use fftmatvec_portability as portability;
pub use fftmatvec_service as service;
pub use fftmatvec_toeplitz as toeplitz;
