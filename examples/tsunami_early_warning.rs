//! Source inversion for hazard early warning — the paper's flagship
//! application class (tsunami early warning via real-time Bayesian
//! inference, Henneking et al.).
//!
//! An advecting–diffusing hazard plume is driven by an unknown source
//! (the "slip patch"); a sparse line of sensors observes concentrations
//! downstream. We assemble the p2o map with N_d adjoint solves, invert
//! synthetic noisy observations for the source via the CG MAP solve with
//! FFTMatvec Hessian actions, and compare double-precision and
//! mixed-precision inversions: the decisions (recovered source) must
//! agree while the mixed matvec is the cheaper one.
//!
//! Run: `cargo run --release --example tsunami_early_warning`

use fftmatvec::core::{FftMatvec, OpError, PrecisionConfig};
use fftmatvec::lti::{AdvectionDiffusion1D, BayesianProblem, P2oMap};
use fftmatvec::numeric::vecmath::rel_l2_error;

fn main() -> Result<(), OpError> {
    // Domain: coastline coordinate in (0,1); plume advects toward the
    // sensor array with light diffusion.
    let nx = 96usize;
    let nt = 48usize;
    let sys = AdvectionDiffusion1D::new(nx, 0.01, 5e-4, 1.0);

    // Six pressure sensors clustered downstream (indices toward x = 1).
    let sensors = [60usize, 66, 72, 78, 84, 90];
    let p2o = P2oMap::assemble(&sys, &sensors, nt).expect("p2o assembly");
    println!(
        "p2o map: {} sensors x {} params x {} steps (frequency batch {})",
        p2o.nd(),
        p2o.nm(),
        nt,
        p2o.operator.nfreq()
    );

    // Ground truth: a localized source pulse upstream, active early.
    let mut m_true = vec![0.0; nx * nt];
    for t in 0..8 {
        for i in 0..nx {
            let x = (i as f64 + 1.0) / (nx as f64 + 1.0);
            m_true[t * nx + i] = 5.0 * (-(x - 0.2) * (x - 0.2) / 0.003).exp();
        }
    }

    // Double-precision inversion. The noise level also sets the error
    // tolerance that justifies the mixed-precision configuration
    // (Section 3.2: sensor tolerance + noise floor >> 1e-7).
    let noise_std = 1e-3;
    let prior_std = 5.0;
    let prob_d = BayesianProblem::new(
        FftMatvec::builder(P2oMap::assemble(&sys, &sensors, nt).unwrap().operator)
            .precision(PrecisionConfig::all_double())
            .build()
            .expect("CPU build"),
        noise_std,
        prior_std,
    );
    let d_obs = prob_d.synthesize_data(&m_true, 13)?;
    let t0 = std::time::Instant::now();
    let sol_d = prob_d.solve_map(&d_obs, 1e-9, 600)?;
    let wall_d = t0.elapsed();
    println!(
        "double MAP: {} CG iters, residual {:.1e}, {} matvec actions, {:.1?}",
        sol_d.iterations,
        sol_d.residual,
        prob_d.matvec_count(),
        wall_d
    );

    // Mixed-precision inversion (the paper's dssdd optimum).
    let prob_m = BayesianProblem::new(
        FftMatvec::builder(P2oMap::assemble(&sys, &sensors, nt).unwrap().operator)
            .precision(PrecisionConfig::optimal_forward())
            .build()
            .expect("CPU build"),
        noise_std,
        prior_std,
    );
    let t1 = std::time::Instant::now();
    let sol_m = prob_m.solve_map(&d_obs, 1e-9, 600)?;
    let wall_m = t1.elapsed();
    println!(
        "mixed  MAP: {} CG iters, residual {:.1e}, {} matvec actions, {:.1?}",
        sol_m.iterations,
        sol_m.residual,
        prob_m.matvec_count(),
        wall_m
    );

    // Quality of the recovered source where it lives (early window).
    let window = 8 * nx;
    let err_d = rel_l2_error(&sol_d.m_map[..window], &m_true[..window]);
    let err_m = rel_l2_error(&sol_m.m_map[..window], &m_true[..window]);
    let agree = rel_l2_error(&sol_m.m_map, &sol_d.m_map);
    println!("source recovery error: double {err_d:.3}, mixed {err_m:.3}");
    println!("mixed vs double MAP point difference: {agree:.2e}");

    // Early-warning check: both inversions must explain the data and make
    // the same call. (The MAP points can differ in the prior's null
    // directions — what matters downstream is the predicted observable.)
    let fit_d = prob_d.forward(&sol_d.m_map)?;
    let fit_m = prob_d.forward(&sol_m.m_map)?;
    let misfit_d = rel_l2_error(&fit_d, &d_obs);
    let misfit_m = rel_l2_error(&fit_m, &d_obs);
    println!("posterior data fit (relative): double {misfit_d:.2e}, mixed {misfit_m:.2e}");

    assert!(
        (err_d - err_m).abs() < 0.05,
        "mixed precision changed the recovery quality: {err_d} vs {err_m}"
    );
    assert!(
        misfit_m < 5.0 * misfit_d.max(1e-6),
        "mixed precision degraded the data fit: {misfit_m} vs {misfit_d}"
    );
    println!("\nmixed precision reproduced the double-precision inversion decision.");
    Ok(())
}
