//! Multi-channel signal processing with block-Toeplitz matvecs — one of
//! the paper's "broad applicability" domains (Section 5: multi-channel
//! signal processing and VARMA models in econometrics).
//!
//! A bank of N_d microphones records N_m sources through causal FIR room
//! responses: the mixing operator is exactly block lower-triangular
//! Toeplitz. Forward = multi-channel convolution via FFTMatvec; the
//! adjoint (matched filtering / correlation) drives a Landweber
//! deconvolution loop that recovers the dominant source activity.
//!
//! Run: `cargo run --release --example multichannel_deconvolution`

use fftmatvec::core::{DirectMatvec, FftMatvec, LinearOperator, OpError, PrecisionConfig};
use fftmatvec::numeric::vecmath::rel_l2_error;
use fftmatvec::numeric::SplitMix64;

fn main() -> Result<(), OpError> {
    // 6 microphones, 4 sources, 256 time samples; FIR responses with
    // exponentially decaying echoes. More microphones than sources keeps
    // the deconvolution overdetermined (unique recovery).
    let (nd, nm, nt) = (6usize, 4usize, 256usize);
    let mut rng = SplitMix64::new(99);
    let mut col = vec![0.0; nt * nd * nm];
    for t in 0..nt {
        let decay = (-(t as f64) / 24.0).exp();
        for i in 0..nd {
            for k in 0..nm {
                // Each (mic, source) pair has its own sparse echo pattern.
                let gate = ((i * 7 + k * 13 + t) % 17 == 0) as usize as f64;
                col[(t * nd + i) * nm + k] = decay * gate * rng.uniform(0.5, 1.0);
            }
        }
    }
    let op =
        fftmatvec::core::BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();

    // Source signals: bursts on two channels, silence elsewhere.
    let mut sources = vec![0.0; nm * nt];
    for t in 20..40 {
        sources[t * nm + 1] = ((t - 20) as f64 / 4.0).sin().abs();
    }
    for t in 120..150 {
        sources[t * nm + 3] = 1.0;
    }

    let mv =
        FftMatvec::builder(op).precision(PrecisionConfig::all_double()).build().expect("CPU build");
    let mics = mv.apply_forward(&sources)?;
    let mics_direct = DirectMatvec::new(mv.operator()).apply_forward(&sources)?;
    println!(
        "multi-channel convolution: FFT vs direct rel error {:.2e}",
        rel_l2_error(&mics, &mics_direct)
    );

    // Deconvolution by CG on the regularized normal equations:
    // (F*F + λI)·m = F*·d — every iteration is one forward plus one
    // adjoint FFTMatvec action (matched filtering).
    let lambda = 1e-8;
    let n = nm * nt;
    let normal_op = |v: &[f64]| -> Result<Vec<f64>, OpError> {
        let mut h = mv.apply_adjoint(&mv.apply_forward(v)?)?;
        for (hi, &vi) in h.iter_mut().zip(v) {
            *hi += lambda * vi;
        }
        Ok(h)
    };
    let rhs = mv.apply_adjoint(&mics)?;
    let mut est = vec![0.0; n];
    let mut r = rhs.clone();
    let mut p = r.clone();
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let rhs_norm = rr.sqrt();
    let mut iters = 0;
    for _ in 0..400 {
        let hp = normal_op(&p)?;
        let alpha = rr / p.iter().zip(&hp).map(|(a, b)| a * b).sum::<f64>();
        for i in 0..n {
            est[i] += alpha * p[i];
            r[i] -= alpha * hp[i];
        }
        iters += 1;
        let rr_new: f64 = r.iter().map(|v| v * v).sum();
        if rr_new.sqrt() < 1e-10 * rhs_norm {
            break;
        }
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
    }
    let recovery = rel_l2_error(&est, &sources);
    println!("CG deconvolution after {iters} iterations: source rel error {recovery:.3}");

    // Channel-activity detection: energy per source channel.
    let energy =
        |sig: &[f64], k: usize| -> f64 { (0..nt).map(|t| sig[t * nm + k] * sig[t * nm + k]).sum() };
    let mut ranked: Vec<(usize, f64)> = (0..nm).map(|k| (k, energy(&est, k))).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "most active recovered channels: {:?} (truth: channels 1 and 3)",
        &ranked[..2].iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );
    assert!(
        ranked[..2].iter().all(|(k, _)| *k == 1 || *k == 3),
        "deconvolution missed the active channels"
    );
    assert!(recovery < 0.05, "overdetermined recovery should be near-exact: {recovery}");
    Ok(())
}
