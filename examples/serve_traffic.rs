//! Operator-as-a-service walkthrough: register a warm pipeline, serve a
//! concurrent burst through the coalescing queue, and exercise every
//! piece of the typed rejection surface — deadlines, admission control,
//! and panic isolation are all observable from the stats counters.
//!
//! Run: `cargo run --release --example serve_traffic`

use std::sync::Arc;
use std::time::Duration;

use fftmatvec::core::{BlockToeplitzOperator, FftMatvec, OpDirection};
use fftmatvec::numeric::SplitMix64;
use fftmatvec::service::{
    block_on, join_all, OperatorRegistry, Service, ServiceConfig, ServiceError,
};

fn main() -> Result<(), ServiceError> {
    // --- Registry: build once, stay warm -----------------------------
    // Construction is the expensive step (FFT plans per precision tier,
    // workspace pool); the registry keeps the built pipeline alive under
    // a stable id so every request after this line reuses the warm state.
    let (nd, nm, nt) = (4usize, 64usize, 128usize);
    let mut rng = SplitMix64::new(2025);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col)
        .map_err(ServiceError::from)?;

    let registry = Arc::new(OperatorRegistry::new());
    registry.register_fft("tomo", FftMatvec::builder(op))?;
    println!("registered operators: {:?}", registry.names());

    // --- Service: a coalescing queue over the registry ---------------
    let mut service = Service::new(
        Arc::clone(&registry),
        ServiceConfig {
            max_batch: 16,                       // window closes when full…
            max_delay: Duration::from_millis(2), // …or when its head is 2 ms old
            queue_capacity: 64,                  // per-lane admission bound
            workers: 1,
        },
    );

    // A burst of 24 forward requests submitted back to back. Tickets are
    // ordinary futures; the bundled executor drives the whole wave. The
    // service coalesces the burst into at most two apply_many_into
    // windows (16 + 8) — and batched execution is bit-identical to
    // applying each vector alone, so callers cannot tell.
    let tickets: Vec<_> = (0..24)
        .map(|i| {
            let mut rng = SplitMix64::new(100 + i as u64);
            let mut m = vec![0.0; nm * nt];
            rng.fill_uniform(&mut m, -1.0, 1.0);
            service.submit("tomo", OpDirection::Forward, m)
        })
        .collect::<Result<_, _>>()?;
    let outputs = block_on(join_all(tickets));
    let served = outputs.iter().filter(|o| o.is_ok()).count();
    println!("burst: {served}/24 served, output length {}", outputs[0].as_ref().unwrap().len());

    // Blocking callers skip the executor entirely.
    let d = service.submit("tomo", OpDirection::Adjoint, vec![1.0; nd * nt])?.wait()?;
    println!("blocking adjoint request: output length {}", d.len());

    // --- Budget routing: precision autotuning per request ------------
    // A *tunable* registration carries a live calibration pipeline;
    // requests may then name an error budget instead of a configuration
    // and the service installs the cheapest configuration whose Eq. 6
    // bound meets it, one lane per budget decade so coalesced windows
    // stay config-homogeneous (and therefore bit-deterministic). The
    // operator here is identity-plus-noise: κ ≈ 1, so the budget — not
    // the conditioning — decides what is admissible.
    let mut noise = vec![0.0; nd * nm];
    rng.fill_uniform(&mut noise, -0.05, 0.05);
    let mut eye_col = vec![0.0; nt * nd * nm];
    for i in 0..nd {
        for k in 0..nm {
            eye_col[i * nm + k] = noise[i * nm + k] + if i == k { 1.0 } else { 0.0 };
        }
    }
    let mri = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &eye_col)
        .map_err(ServiceError::from)?;
    registry.register_fft_tunable("mri", FftMatvec::builder(mri))?;

    for budget in [1e-3, 1e-12] {
        let out = service
            .submit_with_budget("mri", OpDirection::Forward, budget, vec![0.5; nm * nt])?
            .wait()?;
        let cfg = service.resolved_config("mri", OpDirection::Forward, budget).unwrap();
        println!("budget {budget:>5.0e} -> config {cfg} (output length {})", out.len());
    }

    // --- Typed rejections --------------------------------------------
    // Unknown id: rejected at submission, nothing queued.
    let err = service.submit("seismo", OpDirection::Forward, vec![0.0; nm * nt]).unwrap_err();
    println!("unknown operator  -> {err}");

    // Wrong shape: the error hierarchy surfaces the OpError cause.
    let err = service.submit("tomo", OpDirection::Forward, vec![0.0; 3]).unwrap_err();
    println!("wrong shape       -> {err}");

    // A budget below the all-double Eq. 6 floor is unsatisfiable, and a
    // plainly-registered operator has no calibration to tune with; both
    // are rejected at submission.
    let err = service
        .submit_with_budget("mri", OpDirection::Forward, 1e-20, vec![0.0; nm * nt])
        .unwrap_err();
    println!("hopeless budget   -> {err}");
    let err = service
        .submit_with_budget("tomo", OpDirection::Forward, 1e-6, vec![0.0; nm * nt])
        .unwrap_err();
    println!("not tunable       -> {err}");

    // Hopeless deadline: expires in the queue, never computed.
    let err = service
        .submit_with_deadline("tomo", OpDirection::Forward, vec![0.5; nm * nt], Duration::ZERO)
        .unwrap_err_or_wait();
    println!("zero deadline     -> {err}");

    // --- Stats: what the load harness gates on -----------------------
    let stats = service.stats();
    println!(
        "stats: {} submitted, {} completed, {} rejected, {} expired over {} windows \
         (mean occupancy {:.1}, p50 {:.0} us, p99 {:.0} us)",
        stats.submitted,
        stats.completed,
        stats.rejected,
        stats.expired,
        stats.batches,
        stats.mean_batch(),
        stats.latency_quantile_us(0.50).unwrap_or(0.0),
        stats.latency_quantile_us(0.99).unwrap_or(0.0),
    );
    println!("autotuned: {} requests via {:?}", stats.autotuned, stats.configs_served);

    // Shutdown stops admissions and drains anything still queued.
    service.shutdown();
    assert!(matches!(
        service.submit("tomo", OpDirection::Forward, vec![0.0; nm * nt]),
        Err(ServiceError::ShuttingDown)
    ));
    println!("service drained and shut down");
    Ok(())
}

/// Submitting with an already-expired deadline is still *admitted* (the
/// queue, not the submit path, owns deadline bookkeeping) — the
/// rejection arrives through the ticket. This helper unwraps either way
/// so the demo reads linearly.
trait UnwrapRejection {
    fn unwrap_err_or_wait(self) -> ServiceError;
}

impl UnwrapRejection for Result<fftmatvec::service::Ticket, ServiceError> {
    fn unwrap_err_or_wait(self) -> ServiceError {
        match self {
            Err(e) => e,
            Ok(ticket) => ticket.wait().expect_err("zero deadline must expire"),
        }
    }
}
