//! Distributed FFTMatvec on a 2-D process grid, with real per-rank data
//! and the Frontier communication model — a miniature of the Figure-4
//! experiment you can run in seconds.
//!
//! Run: `cargo run --release --example multi_gpu_scaling`

use fftmatvec::comm::partition::PartitionProblem;
use fftmatvec::comm::{choose_grid, NetworkModel, PartitionStrategy};
use fftmatvec::core::{DistributedFftMatvec, LinearOperator, OpError, PrecisionConfig};
use fftmatvec::gpu::{DeviceSpec, Phase};
use fftmatvec::numeric::vecmath::rel_l2_error;
use fftmatvec::numeric::SplitMix64;

fn main() -> Result<(), OpError> {
    // A small global problem partitioned over increasingly many simulated
    // GPUs (weak scaling in N_m, like the paper).
    let (nd, nt) = (8usize, 64usize);
    let per_gpu_nm = 64usize;
    let net = NetworkModel::frontier();
    let dev = DeviceSpec::mi250x_gcd();

    println!("distributed FFTMatvec weak scaling (real data, modeled time)");
    println!("N_d = {nd}, N_t = {nt}, N_m = {per_gpu_nm} per GPU");
    println!();
    println!(
        "{:>5} | {:>7} | {:>12} | {:>12} | {:>10}",
        "GPUs", "grid", "compute ms", "comm ms", "rel error"
    );

    for p in [1usize, 4, 16, 64] {
        let nm = per_gpu_nm * p;
        let mut rng = SplitMix64::new(7);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, 0.0, 1.0);
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);

        let prob = PartitionProblem { nd, nm, nt, elem_bytes: 8 };
        let grid = choose_grid(PartitionStrategy::CostModel, p, &prob, &net);

        // Reference on one rank, mixed precision on the grid.
        let single = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            fftmatvec::comm::ProcessGrid::single(),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        let baseline = single.apply_forward(&m)?;

        let dist = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            grid,
            PrecisionConfig::optimal_forward(),
        )
        .unwrap();
        let d = dist.apply_forward(&m)?;
        let err = rel_l2_error(&d, &baseline);
        let t = dist.simulate(&dev, &net, false);
        println!(
            "{:>5} | {:>3}x{:<3} | {:>12.4} | {:>12.4} | {:>10.2e}",
            p,
            grid.rows,
            grid.cols,
            t.compute_total() * 1e3,
            t.get(Phase::Comm) * 1e3,
            err
        );
    }
    println!();
    println!("per-GPU compute stays flat (weak scaling) while communication grows —");
    println!("the regime where the paper's communication-aware partitioning pays off.");
    Ok(())
}
