//! The hipify-on-the-fly workflow (Section 3.1) end to end: one CUDA
//! source tree, compile-time translation, "Not Supported" diagnostics,
//! custom-kernel fallbacks, and per-vendor backend dispatch.
//!
//! Run: `cargo run --release --example hipify_portability`

use fftmatvec::gpu::DeviceSpec;
use fftmatvec::portability::kernels_cuda;
use fftmatvec::portability::{GpuVendor, HipifyPipeline, PortabilityBackend};

fn main() {
    // The application's maintained sources are pure CUDA.
    let mut pipeline = HipifyPipeline::fftmatvec_app();
    println!("maintained CUDA sources: {:?}", pipeline.source_names());
    println!();

    // NVIDIA build: pass-through, exactly as the paper's CMake toggle.
    let cuda = pipeline.build_all(GpuVendor::Cuda).unwrap();
    println!(
        "CUDA build ({}) — {} units, 0 rewrites (source of truth)",
        GpuVendor::Cuda.compiler(),
        cuda.len()
    );

    // AMD build: hipify on the fly.
    let hip = pipeline.build_all(GpuVendor::Hip).unwrap();
    println!("HIP build ({}):", GpuVendor::Hip.compiler());
    for a in &hip {
        println!("  {:<22} {} rewrites", a.name, a.replacements);
    }
    println!();

    // The cuTENSOR gap: without the registered fallback the HIP build
    // fails with the paper's "Not Supported" error.
    let mut bare = HipifyPipeline::new();
    bare.add_source("complex_permute.cu", kernels_cuda::COMPLEX_PERMUTE);
    match bare.build_one("complex_permute.cu", GpuVendor::Hip) {
        Err(e) => println!("without fallback: {e}"),
        Ok(_) => unreachable!("cuTENSOR permutation must not translate"),
    }
    bare.register_fallback(
        "cutensorPermutation",
        "permute_setup_tensor_custom",
        kernels_cuda::COMPLEX_PERMUTE_FALLBACK,
    );
    let fixed = bare.build_one("complex_permute.cu", GpuVendor::Hip).unwrap();
    println!("with fallback: builds, custom kernel spliced ({} rewrites)", fixed.replacements);
    println!();

    // Editing a CUDA source re-triggers hipification of just that unit.
    let cached = pipeline.build_one("pad_kernel.cu", GpuVendor::Hip).unwrap();
    println!("unmodified pad_kernel.cu: rebuilt = {}", cached.rebuilt);
    pipeline.add_source("pad_kernel.cu", &kernels_cuda::PAD_KERNEL.replace("256", "512"));
    let rebuilt = pipeline.build_one("pad_kernel.cu", GpuVendor::Hip).unwrap();
    println!("after editing the CUDA source: rebuilt = {}", rebuilt.rebuilt);
    println!();

    // Backend dispatch binds the built artifacts to simulated devices.
    for dev in DeviceSpec::paper_lineup() {
        let d = PortabilityBackend::build(GpuVendor::Hip, dev).unwrap();
        println!(
            "dispatch: {:<22} <- {} units via {}",
            d.device().name,
            d.artifacts().len(),
            d.vendor().compiler()
        );
    }
    let nv = PortabilityBackend::cuda_reference().unwrap();
    println!(
        "dispatch: {:<22} <- {} units via {}",
        nv.device().name,
        nv.artifacts().len(),
        nv.vendor().compiler()
    );
}
