//! Optimal sensor placement — the "outer-loop" workload of Remark 1.
//!
//! Choosing sensor locations by expected information gain requires
//! re-assembling the dense data-space operator for every candidate
//! configuration — `O(N_d·N_t)` FFTMatvec actions each — which is where
//! mixed-precision matvec speedups multiply into real time savings. This
//! example runs the greedy EIG placement for a heat-equation source
//! problem in double and in mixed precision and compares decisions and
//! matvec counts.
//!
//! Run: `cargo run --release --example sensor_placement`

use fftmatvec::core::PrecisionConfig;
use fftmatvec::lti::oed::greedy_sensor_placement;
use fftmatvec::lti::{HeatEquation1D, SensorCandidate};

fn main() {
    let nx = 48usize;
    let nt = 24usize;
    let sys = HeatEquation1D::new(nx, 0.02, 0.25);

    // Candidate rack positions along the domain.
    let candidates: Vec<SensorCandidate> =
        [4usize, 12, 20, 24, 28, 36, 44].iter().map(|&index| SensorCandidate { index }).collect();
    let budget = 3;
    let (noise_std, prior_std) = (0.05, 1.0);

    println!(
        "greedy EIG placement: {} candidates, budget {budget}, heat equation nx={nx} nt={nt}",
        candidates.len()
    );
    println!();

    for (label, cfg) in [
        ("double (ddddd)", PrecisionConfig::all_double()),
        ("mixed  (dssdd)", PrecisionConfig::optimal_forward()),
    ] {
        let t0 = std::time::Instant::now();
        let result =
            greedy_sensor_placement(&sys, &candidates, budget, nt, noise_std, prior_std, cfg)
                .expect("placement");
        let wall = t0.elapsed();
        println!("{label}:");
        println!("  chosen sensors (grid indices): {:?}", result.chosen);
        for (k, g) in result.gains.iter().enumerate() {
            println!("  EIG after {} sensor(s): {:.4} nats", k + 1, g);
        }
        println!("  FFTMatvec actions consumed: {}", result.matvecs);
        println!("  wall time: {wall:.1?}");
        println!();
    }

    println!("Remark 1 in practice: each EIG evaluation costs 2*|S|*N_t matvecs,");
    println!("and the greedy loop multiplies that by candidates x budget — any");
    println!("per-matvec speedup scales the whole outer loop.");
}
