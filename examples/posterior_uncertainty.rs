//! Posterior uncertainty quantification on a 2-D domain — the full
//! Bayesian story of Section 2.2: not just the MAP point but the
//! posterior covariance, through a randomized low-rank approximation of
//! the prior-preconditioned Hessian built entirely from FFTMatvec
//! actions.
//!
//! Run: `cargo run -p fftmatvec --release --example posterior_uncertainty`

use fftmatvec::core::{FftMatvec, OpError, PrecisionConfig};
use fftmatvec::lti::{BayesianProblem, HeatEquation2D, LowRankHessian, P2oMap};

fn main() -> Result<(), OpError> {
    // 2-D heat plate, 16x12 interior grid, sensors in a vertical line.
    let (nx, ny, nt) = (16usize, 12usize, 16usize);
    let sys = HeatEquation2D::new(nx, ny, 0.02, 0.25);
    let sensors: Vec<usize> = (2..ny - 1).step_by(3).map(|iy| sys.index(11, iy)).collect();
    println!(
        "2-D heat UQ: {}x{} grid, {} sensors at x-index 11, {} timesteps",
        nx,
        ny,
        sensors.len(),
        nt
    );

    let p2o = P2oMap::assemble(&sys, &sensors, nt).expect("p2o assembly");
    let (noise_std, prior_std) = (0.003, 1.0);
    let prob = BayesianProblem::new(
        FftMatvec::builder(p2o.operator)
            .precision(PrecisionConfig::optimal_forward())
            .build()
            .expect("CPU build"),
        noise_std,
        prior_std,
    );

    // Randomized low-rank Hessian: rank 24, 8 oversamples, 2 power iters.
    let t0 = std::time::Instant::now();
    let lr = LowRankHessian::compute(&prob, 24, 8, 2, 2024)?;
    println!(
        "low-rank Hessian: rank {}, {} matvec actions, {:.1?}",
        lr.eigenvalues.len(),
        lr.matvecs,
        t0.elapsed()
    );
    println!(
        "leading eigenvalues: {:?}",
        lr.eigenvalues[..6.min(lr.eigenvalues.len())]
            .iter()
            .map(|l| format!("{l:.2e}"))
            .collect::<Vec<_>>()
    );
    println!("expected information gain: {:.3} nats", lr.expected_information_gain());
    println!("mean posterior/prior variance ratio: {:.3}", lr.mean_variance_reduction(prior_std));
    println!();

    // Pointwise posterior std-dev map at t = 0: an ASCII heat map of how
    // well each location's source is constrained (darker = better).
    println!("posterior std-dev map at t=1 ('#'=well constrained, '.'=prior):");
    let n = nx * ny;
    for iy in (0..ny).rev() {
        let mut row = String::with_capacity(nx);
        for ix in 0..nx {
            let j = iy * nx + ix; // t = 0 block
            debug_assert!(j < n);
            let sd = lr.posterior_variance(prior_std, j).sqrt();
            let frac = sd / prior_std;
            row.push(match frac {
                f if f < 0.80 => '#',
                f if f < 0.95 => '+',
                f if f < 0.995 => '-',
                _ => '.',
            });
        }
        // Mark sensor column.
        println!("  {row}");
    }
    println!("  (sensors sit at x-index 11; uncertainty contracts around them)");

    // Sanity: the best-constrained location must be near the sensor line.
    let best = (0..n)
        .min_by(|&a, &b| {
            lr.posterior_variance(prior_std, a).total_cmp(&lr.posterior_variance(prior_std, b))
        })
        .unwrap();
    let (bx, by) = (best % nx, best / nx);
    println!("\nbest-constrained cell at t=1: ({bx}, {by})");
    assert!(
        (bx as i64 - 11).abs() <= 3,
        "uncertainty reduction should concentrate near the sensors"
    );
    Ok(())
}
