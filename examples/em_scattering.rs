//! Electromagnetic-scattering walkthrough for the multi-level Toeplitz
//! subsystem: a volume-integral-equation system matrix on a regular 2-D
//! grid is two-level Toeplitz (translation-invariant Green's function),
//! so its matvec runs through nested FFTs instead of a dense matrix.
//!
//! The demo builds the same operator on both construction paths — full
//! circulant embedding and the memory-optimized split-FFT — compares
//! their peak workspace footprints, autotunes a precision configuration
//! against an error budget, then registers the operator as a *tunable*
//! service and drives budget-routed traffic through the coalescing
//! queue, mirroring `serve_traffic.rs`.
//!
//! Run: `cargo run --release --example em_scattering`

use std::sync::Arc;
use std::time::Duration;

use fftmatvec::core::{LinearOperator, OpDirection};
use fftmatvec::numeric::SplitMix64;
use fftmatvec::service::{
    block_on, join_all, OperatorRegistry, Service, ServiceConfig, ServiceError,
};
use fftmatvec::toeplitz::{ToeplitzGenerator, TwoLevelToeplitz};

/// Discretized free-space kernel on an `n × n` grid: the interaction
/// between cells at lattice offset `(dx, dy)` decays like `1/(1 + r²)`,
/// with a dominant self-term — translation invariance makes the
/// assembled system matrix two-level Toeplitz, and the generator is just
/// this kernel tabulated over all offsets.
fn scattering_generator(n: usize) -> ToeplitzGenerator {
    let diags = 2 * n - 1;
    let mut g = vec![0.0; diags * diags];
    for (k1, row) in g.chunks_exact_mut(diags).enumerate() {
        let dx = k1 as f64 - (n as f64 - 1.0);
        for (k2, v) in row.iter_mut().enumerate() {
            let dy = k2 as f64 - (n as f64 - 1.0);
            let r2 = dx * dx + dy * dy;
            *v = if r2 == 0.0 { 4.0 } else { 0.25 / (1.0 + r2) };
        }
    }
    ToeplitzGenerator::two_level((n, n), (n, n), g).expect("valid two-level generator")
}

fn main() -> Result<(), ServiceError> {
    // --- Build: full embedding vs split-FFT --------------------------
    // Same generator, same spectrum algebra, two memory layouts: the
    // full path transforms one (2n)×(2n) grid, the split path streams
    // two half-size frequency channels through one n×(2n) grid.
    let n = 16usize;
    let gen = scattering_generator(n);
    let full = TwoLevelToeplitz::builder(gen.clone()).build()?;
    let split = TwoLevelToeplitz::builder(gen.clone()).split_fft(true).build()?;
    println!(
        "operator: {} x {} (grid {n}x{n}), kappa ~ {:.1}",
        full.shape().rows,
        full.shape().cols,
        full.condition_estimate()
    );

    // Both paths agree; the split path's peak workspace is measurably
    // smaller (the bench gate asserts <= 0.75x; here it prints).
    let mut rng = SplitMix64::new(2025);
    let mut x = vec![0.0; full.shape().cols];
    rng.fill_uniform(&mut x, -1.0, 1.0);
    let yf = full.apply_forward(&x)?;
    let ys = split.apply_forward(&x)?;
    let diff: f64 = yf.iter().zip(&ys).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    println!(
        "full vs split: |diff| = {diff:.2e}, peak workspace {} vs {} bytes ({:.0}% of full)",
        full.workspace_peak_bytes(),
        split.workspace_peak_bytes(),
        100.0 * split.workspace_peak_bytes() as f64 / full.workspace_peak_bytes() as f64
    );

    // Nested plans come from the process-wide cache: the inner `planBlock`
    // is one shared handle across both operators.
    assert!(Arc::ptr_eq(&full.plan_block(), &split.plan_block()));

    // --- Budgeted autotune on the operator itself --------------------
    // `retune_budget` installs the cheapest 4-tier configuration whose
    // Eq. 6 bound clears the budget; on failure the previous
    // configuration is untouched.
    let mut tuned = TwoLevelToeplitz::builder(gen.clone()).split_fft(true).build()?;
    for budget in [1e-3, 1e-9] {
        let choice =
            tuned.retune_budget(OpDirection::Forward, budget).map_err(ServiceError::from)?;
        println!(
            "budget {budget:>5.0e} -> config {} (bound {:.2e})",
            choice.config, choice.bound.total
        );
    }

    // --- Serve it: tunable registration + budget-routed traffic ------
    let registry = Arc::new(OperatorRegistry::new());
    registry.register_toeplitz_tunable("em2d", TwoLevelToeplitz::builder(gen).split_fft(true))?;
    println!("registered operators: {:?}", registry.names());

    let mut service = Service::new(
        Arc::clone(&registry),
        ServiceConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 1,
        },
    );

    // A mixed-budget burst: loose budgets may resolve to narrow tiers,
    // tight ones force wide — each budget decade gets its own coalescing
    // lane, so every caller's results stay bit-deterministic.
    let budgets = [1e-2, 1e-10];
    let in_len = n * n;
    let tickets: Vec<_> = (0..16)
        .map(|i| {
            let mut rng = SplitMix64::new(100 + i as u64);
            let mut e_inc = vec![0.0; in_len];
            rng.fill_uniform(&mut e_inc, -1.0, 1.0);
            service.submit_with_budget("em2d", OpDirection::Forward, budgets[i % 2], e_inc)
        })
        .collect::<Result<_, _>>()?;
    let outputs = block_on(join_all(tickets));
    let served = outputs.iter().filter(|o| o.is_ok()).count();
    println!("burst: {served}/16 served");
    for budget in budgets {
        let cfg = service.resolved_config("em2d", OpDirection::Forward, budget).unwrap();
        println!("budget {budget:>6.0e} resolved to config {cfg}");
    }

    // The adjoint lane resolves independently (Eq. 6 swaps the reduction
    // extents), and plain submits use the registered configuration.
    let adj = service
        .submit_with_budget("em2d", OpDirection::Adjoint, 1e-6, vec![0.5; in_len])?
        .wait()?;
    println!("adjoint budget request: output length {}", adj.len());
    let plain = service.submit("em2d", OpDirection::Forward, vec![0.5; in_len])?.wait()?;
    println!("plain request: output length {}", plain.len());

    // --- Stats + shutdown --------------------------------------------
    let stats = service.stats();
    println!(
        "stats: {} submitted, {} completed over {} windows; autotuned {} via {:?}",
        stats.submitted, stats.completed, stats.batches, stats.autotuned, stats.configs_served
    );
    service.shutdown();
    println!("service drained and shut down");
    Ok(())
}
