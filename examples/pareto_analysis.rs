//! The dynamic mixed-precision Pareto analysis (Section 3.2 / 4.2.1),
//! end to end on a user-visible problem.
//!
//! Sweeps all 32 five-phase precision configurations: simulated GPU time
//! on a chosen device, *measured* relative error from real arithmetic on
//! a mantissa-stuffed workload, Pareto-front extraction, and optimal
//! configuration selection for an application tolerance.
//!
//! Run: `cargo run --release --example pareto_analysis`

use fftmatvec::core::pareto::{optimal_for_tolerance, pareto_front, sweep_points};
use fftmatvec::core::timing::{simulate_phases, MatvecDims};
use fftmatvec::core::{BlockToeplitzOperator, FftMatvec, OpDirection, OpError, PrecisionConfig};
use fftmatvec::gpu::DeviceSpec;
use fftmatvec::numeric::SplitMix64;

fn main() -> Result<(), OpError> {
    let dev = DeviceSpec::mi300x();
    // Timing shape: the paper's single-GPU configuration. Error shape:
    // memory-scaled with the same structure.
    let timing_dims = MatvecDims::new(100, 5000, 1000);
    let (nd, nm, nt) = (24usize, 512usize, 128usize);

    let mut rng = SplitMix64::new(3);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
    let mut m = vec![0.0; nm * nt];
    rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);

    let mut mv = FftMatvec::builder(op).build().expect("CPU build");
    // The sweep itself runs through the operator-generic helper: the same
    // call works for the distributed matvec or any future backend.
    let candidates: Vec<_> = PrecisionConfig::all_configs()
        .into_iter()
        .map(|cfg| (cfg, simulate_phases(timing_dims, cfg, false, &dev).total()))
        .collect();
    let points = sweep_points(&mut mv, OpDirection::Forward, &candidates, &m)?;
    let baseline_time = points.iter().find(|p| p.config.is_all_double()).unwrap().time;

    println!(
        "Pareto front on {} (32 configs; time modeled at N_m=5000/N_d=100/N_t=1000,",
        dev.name
    );
    println!("errors measured at N_m={nm}/N_d={nd}/N_t={nt}):");
    println!();
    for p in pareto_front(&points) {
        println!(
            "  {}  time {:>7.3} ms  speedup {:>5.2}x  rel error {:>10.3e}",
            p.config,
            p.time * 1e3,
            baseline_time / p.time,
            p.rel_error
        );
    }
    println!();

    for tol in [1e-6, 1e-7, 1e-9] {
        match optimal_for_tolerance(&points, tol) {
            Some(best) => println!(
                "tolerance {tol:.0e}: run {} ({:.2}x speedup, error {:.2e})",
                best.config,
                baseline_time / best.time,
                best.rel_error
            ),
            None => println!("tolerance {tol:.0e}: only the double baseline qualifies"),
        }
    }
    println!();
    println!("the application picks its tolerance from sensor precision and noise floor,");
    println!("then reads the configuration off the front (Section 3.2).");

    // Or skip the manual sweep entirely: hand the builder an error
    // budget and let the autotuner prune the lattice by the Eq. 6 bound,
    // calibrate the surviving precision tiers on this machine, and pick
    // the cheapest admissible configuration.
    println!();
    let tuned =
        FftMatvec::builder(mv.into_operator()).error_budget(1e-6).build().expect("autotune");
    let choice = tuned.autotuned().expect("budget was resolved at build time");
    println!(
        "autotuner at budget 1e-6: picked {} (promised bound {:.2e}, predicted {:.3} ms/apply)",
        choice.config,
        choice.bound.total,
        choice.predicted_seconds * 1e3
    );
    Ok(())
}
