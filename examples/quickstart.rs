//! Quickstart: build a block lower-triangular Toeplitz operator, apply
//! `F` and `F*` through the FFT pipeline, check against the direct
//! (O(N_t²)) matvec, and switch precision configurations at runtime.
//!
//! Run: `cargo run --release --example quickstart`

use fftmatvec::core::{DirectMatvec, FftMatvec, LinearOperator, OpError, PrecisionConfig};
use fftmatvec::numeric::vecmath::rel_l2_error;
use fftmatvec::numeric::SplitMix64;

fn main() -> Result<(), OpError> {
    // Problem shape: N_d sensors, N_m parameters, N_t timesteps. The
    // FFTMatvec regime is N_d << N_m, N_t >> 1.
    let (nd, nm, nt) = (4usize, 64usize, 128usize);

    // The operator is defined by its first block column: N_t blocks of
    // size N_d x N_m, laid out [t][sensor][param].
    let mut rng = SplitMix64::new(2024);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    let op = fftmatvec::core::BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col)
        .expect("valid dimensions");

    // Input vector m (time-major blocks), mantissa-stuffed so that
    // single-precision phases measurably round.
    let mut m = vec![0.0; nm * nt];
    rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);

    // Apply F in full double precision and cross-check with the direct
    // block convolution.
    let mut mv =
        FftMatvec::builder(op).precision(PrecisionConfig::all_double()).build().expect("CPU build");
    let d = mv.apply_forward(&m)?;
    let d_direct = DirectMatvec::new(mv.operator()).apply_forward(&m)?;
    println!("FFT vs direct matvec relative error: {:.2e}", rel_l2_error(&d, &d_direct));

    // The adjoint satisfies <F m, d> == <m, F* d>.
    let fs = mv.apply_adjoint(&d)?;
    let lhs: f64 = d.iter().map(|x| x * x).sum();
    let rhs: f64 = m.iter().zip(&fs).map(|(a, b)| a * b).sum();
    println!("adjoint identity <Fm,Fm> vs <m,F*Fm>: {lhs:.6e} vs {rhs:.6e}");

    // Switch to the paper's optimal mixed-precision configuration at
    // runtime — no operator rebuild — and measure the error it costs.
    mv.set_config(PrecisionConfig::optimal_forward()); // dssdd
    let d_mixed = mv.apply_forward(&m)?;
    println!(
        "mixed-precision ({}) relative error vs double: {:.2e}",
        mv.config(),
        rel_l2_error(&d_mixed, &d)
    );

    // And the fastest/least accurate end of the spectrum.
    mv.set_config(PrecisionConfig::all_single());
    let d_single = mv.apply_forward(&m)?;
    println!("all-single (sssss) relative error vs double:   {:.2e}", rel_l2_error(&d_single, &d));

    // Hot-path variant: reuse one output buffer across applies — after
    // the warm-up apply above, this performs zero heap allocations.
    let mut d_buf = vec![0.0; nd * nt];
    mv.apply_forward_into(&m, &mut d_buf)?;
    println!("apply_forward_into matches apply_forward: {}", d_buf == d_single);
    Ok(())
}
