//! The service layer's typed rejection surface — the top of the
//! workspace's error hierarchy `ServiceError` → [`OpError`] →
//! [`ConfigError`].
//!
//! Every layer converts upward via `From`, so a handler at the service
//! boundary matches one type no matter where the failure originated:
//! a malformed request shape surfaces as [`ServiceError::Shape`], an
//! operator that failed to build surfaces as `Shape(OpError::Config(..))`,
//! and `source()` walks the chain back down for logging.

use std::time::Duration;

use fftmatvec_core::{ConfigError, OpError};

/// Why the service rejected (or failed) a request. Each variant is a
/// distinct caller-visible contract; none of them panic the worker.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// No operator is registered under the requested id.
    UnknownOperator(String),
    /// Admission control: the operator's pending queue is at capacity.
    /// Back off and retry — accepting the request would only grow the
    /// latency of everything behind it.
    Overloaded {
        /// Operator whose lane is full.
        operator: String,
        /// Requests already queued on that lane.
        queued: usize,
        /// The configured per-lane bound.
        capacity: usize,
    },
    /// The request's deadline passed before a batch window picked it up;
    /// the computation was never run.
    DeadlineExceeded {
        /// Operator the request was queued for.
        operator: String,
        /// How long the request sat in the queue before expiring.
        waited: Duration,
    },
    /// The request (or the operator applying it) failed shape/config
    /// validation; wraps the underlying [`OpError`].
    Shape(OpError),
    /// The operator panicked while applying this request's batch. The
    /// worker caught the panic; the service keeps serving.
    WorkerPanicked {
        /// Operator whose apply panicked.
        operator: String,
    },
    /// A budget-routed submission carried a non-finite or non-positive
    /// error budget; no configuration can promise it.
    InvalidBudget {
        /// The rejected budget.
        budget: f64,
    },
    /// A budget-routed submission targeted an operator that was
    /// registered without autotune support (`register` / `register_fft`
    /// rather than `register_fft_tunable`).
    NotTunable {
        /// The operator that cannot retune.
        operator: String,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownOperator(id) => {
                write!(f, "no operator registered under id {id:?}")
            }
            ServiceError::Overloaded { operator, queued, capacity } => {
                write!(f, "operator {operator:?} overloaded: {queued}/{capacity} queued")
            }
            ServiceError::DeadlineExceeded { operator, waited } => {
                write!(
                    f,
                    "deadline exceeded after {:.1} ms queued for operator {operator:?}",
                    waited.as_secs_f64() * 1e3
                )
            }
            ServiceError::Shape(e) => write!(f, "request rejected: {e}"),
            ServiceError::WorkerPanicked { operator } => {
                write!(f, "operator {operator:?} panicked while serving the batch")
            }
            ServiceError::InvalidBudget { budget } => {
                write!(f, "error budget {budget} must be finite and positive")
            }
            ServiceError::NotTunable { operator } => {
                write!(f, "operator {operator:?} was not registered as tunable")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OpError> for ServiceError {
    fn from(e: OpError) -> ServiceError {
        ServiceError::Shape(e)
    }
}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> ServiceError {
        ServiceError::Shape(OpError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_are_informative() {
        let e = ServiceError::Overloaded { operator: "tomo".into(), queued: 9, capacity: 8 };
        assert!(e.to_string().contains("9/8"));
        let e = ServiceError::DeadlineExceeded {
            operator: "tomo".into(),
            waited: Duration::from_millis(12),
        };
        assert!(e.to_string().contains("12.0 ms"));
        assert!(ServiceError::UnknownOperator("x".into()).to_string().contains("\"x\""));
    }

    #[test]
    fn hierarchy_converts_from_every_layer() {
        // OpError lifts directly...
        let op_err = OpError::Internal("phase-2 tier mismatch");
        let s: ServiceError = op_err.clone().into();
        assert_eq!(s, ServiceError::Shape(op_err.clone()));
        assert_eq!(s.source().unwrap().to_string(), op_err.to_string());
        // ...and ConfigError lifts through OpError::Config, so source()
        // chains two levels deep.
        let cfg_err = ConfigError::ZeroDimension { what: "nt" };
        let s: ServiceError = cfg_err.clone().into();
        let mid = s.source().expect("OpError level");
        let bottom = mid.source().expect("ConfigError level");
        assert_eq!(bottom.to_string(), cfg_err.to_string());
    }
}
