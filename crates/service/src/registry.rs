//! Persistent operator registry.
//!
//! Building an [`FftMatvec`] is the expensive step — FFT plans are
//! created and warmed per precision tier, and the workspace pool
//! amortizes across applications. The registry keeps built operators
//! alive under stable string ids so every request against the same id
//! reuses the warm plans and pooled workspaces instead of paying
//! construction again. Registered operators are shared as
//! `Arc<dyn LinearOperator + Send + Sync>`, so concurrent batch windows
//! apply the same instance safely (the pipeline's checkout ledger
//! guarantees windows never alias a workspace).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use fftmatvec_core::autotune::{AutotuneChoice, PhaseWeights, TierCalibration};
use fftmatvec_core::error_analysis::{condition_estimate, BoundParams};
use fftmatvec_core::{
    ConfigurableOperator, FftMatvec, FftMatvecBuilder, LinearOperator, OpDirection, OpShape,
    PrecisionConfig,
};
use fftmatvec_toeplitz::{TwoLevelToeplitz, TwoLevelToeplitzBuilder};

use crate::error::ServiceError;

/// The shared form every registered operator takes on the execution path.
pub(crate) type SharedOp = Arc<dyn LinearOperator + Send + Sync>;

/// Factory building a warm per-configuration variant over the tunable's
/// shared frequency-domain setup.
type VariantFactory = Box<dyn FnMut(PrecisionConfig) -> Result<SharedOp, ServiceError> + Send>;

/// One registered operator: the shared instance plus cached metadata the
/// admission path reads without touching the operator itself.
pub(crate) struct RegisteredOp {
    pub(crate) op: Arc<dyn LinearOperator + Send + Sync>,
    pub(crate) shape: OpShape,
    /// Present for operators registered via
    /// [`OperatorRegistry::register_fft_tunable`]: the per-operator
    /// autotune state budget-routed submissions resolve through.
    pub(crate) tunable: Option<Arc<TunableState>>,
}

/// Decade bucket of an error budget: the `k` with `10^k ≤ budget <
/// 10^(k+1)`. Budget-routed requests are laned per (operator, direction,
/// bucket), so a coalesced window only ever holds requests that resolved
/// to the same configuration — batched execution stays bit-deterministic
/// per caller. Resolution uses the bucket's *lower edge* as the
/// effective budget, so the promised bound holds for every budget in the
/// bucket.
pub(crate) fn budget_bucket(budget: f64) -> i32 {
    let mut k = budget.log10().floor() as i32;
    // `log10` rounding can land one decade off right at a power of ten;
    // correct so the invariant 10^k ≤ budget < 10^(k+1) really holds.
    if 10f64.powi(k) > budget {
        k -= 1;
    } else if 10f64.powi(k + 1) <= budget {
        k += 1;
    }
    k.clamp(-300, 300)
}

/// The lower edge of a decade bucket — the conservative budget every
/// request in the bucket satisfies.
pub(crate) fn bucket_floor(bucket: i32) -> f64 {
    10f64.powi(bucket)
}

/// Per-operator autotune state, generic over the operator family: the
/// precomputed per-direction Eq. 6 parameters and phase weights, and —
/// under one lock — the live tier calibration, the resolved
/// (direction, bucket) → configuration map, the warm per-config operator
/// variants, and the variant factory. Every variant is built over the
/// same shared frequency-domain setup (`builder_arc` in both operator
/// families), so the `F̂`/symbol spectrum is paid once no matter how
/// many configurations traffic resolves to.
pub(crate) struct TunableState {
    params: [BoundParams; 2],
    weights: [PhaseWeights; 2],
    inner: Mutex<TunableInner>,
}

struct TunableInner {
    /// Calibration instrument: a private operator whose configuration is
    /// mutated freely while timing tiers; never serves traffic.
    tuner: Box<dyn ConfigurableOperator + Send>,
    make_variant: VariantFactory,
    calib: TierCalibration,
    resolved: HashMap<(OpDirection, i32), AutotuneChoice>,
    variants: HashMap<PrecisionConfig, SharedOp>,
}

impl TunableState {
    fn dir_idx(dir: OpDirection) -> usize {
        match dir {
            OpDirection::Forward => 0,
            OpDirection::Adjoint => 1,
        }
    }

    /// Resolve a budget to its bucket's configuration and warm variant,
    /// running the autotuner (with lazy tier calibration) on first sight
    /// of a (direction, bucket) pair and answering from the resolved map
    /// afterwards.
    pub(crate) fn resolve(
        &self,
        dir: OpDirection,
        budget: f64,
    ) -> Result<(AutotuneChoice, SharedOp), ServiceError> {
        let bucket = budget_bucket(budget);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let choice = match inner.resolved.get(&(dir, bucket)) {
            Some(&c) => c,
            None => {
                let params = &self.params[Self::dir_idx(dir)];
                let weights = &self.weights[Self::dir_idx(dir)];
                let TunableInner { tuner, calib, .. } = &mut *inner;
                let c = fftmatvec_core::autotune::autotune(
                    tuner.as_mut(),
                    dir,
                    bucket_floor(bucket),
                    params,
                    weights,
                    calib,
                )?;
                inner.resolved.insert((dir, bucket), c);
                c
            }
        };
        let variant = match inner.variants.get(&choice.config) {
            Some(v) => Arc::clone(v),
            None => {
                let v = (inner.make_variant)(choice.config)?;
                inner.variants.insert(choice.config, Arc::clone(&v));
                v
            }
        };
        Ok((choice, variant))
    }

    /// The already-resolved choice for a (direction, bucket), if any —
    /// a read-only peek with no calibration side effects.
    pub(crate) fn peek(&self, dir: OpDirection, budget: f64) -> Option<AutotuneChoice> {
        let bucket = budget_bucket(budget);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.resolved.get(&(dir, bucket)).copied()
    }

    /// The warm variant serving an already-resolved (direction, bucket)
    /// lane. Admission resolved the lane before queueing anything on it,
    /// so this only returns `None` if the operator was re-registered
    /// underneath queued traffic.
    pub(crate) fn variant_for_bucket(
        &self,
        dir: OpDirection,
        bucket: i32,
    ) -> Option<(PrecisionConfig, SharedOp)> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let cfg = inner.resolved.get(&(dir, bucket))?.config;
        inner.variants.get(&cfg).map(|v| (cfg, Arc::clone(v)))
    }

    /// Fold an executed window's observed per-apply seconds back into
    /// the tier calibration (EMA, attributed by phase weight).
    pub(crate) fn observe(&self, dir: OpDirection, cfg: PrecisionConfig, seconds_per_apply: f64) {
        let weights = self.weights[Self::dir_idx(dir)];
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.calib.observe(cfg, dir, &weights, seconds_per_apply);
    }
}

/// Keyed store of live operators. Cheap to clone handles out of; writes
/// (register/deregister) are rare control-plane events, reads are on the
/// submit hot path, hence the `RwLock`.
pub struct OperatorRegistry {
    ops: RwLock<HashMap<String, Arc<RegisteredOp>>>,
}

impl Default for OperatorRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for OperatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorRegistry").field("operators", &self.names()).finish()
    }
}

impl OperatorRegistry {
    /// Empty registry.
    pub fn new() -> OperatorRegistry {
        OperatorRegistry { ops: RwLock::new(HashMap::new()) }
    }

    /// Build the configured [`FftMatvec`](fftmatvec_core::FftMatvec)
    /// and register it under `id`,
    /// replacing any previous operator with that id. Construction
    /// failures surface as [`ServiceError::Shape`] wrapping
    /// `OpError::Config`.
    pub fn register_fft(&self, id: &str, builder: FftMatvecBuilder) -> Result<(), ServiceError> {
        let op = builder.build()?;
        self.register(id, Arc::new(op));
        Ok(())
    }

    /// [`OperatorRegistry::register_fft`] plus autotune support: the
    /// operator additionally accepts budget-routed submissions
    /// ([`crate::Service::submit_with_budget`]). Pays a one-time
    /// condition estimate at registration (the κ every Eq. 6 pruning
    /// pass reuses); per-tier timing calibration is lazy — a tier is
    /// first timed when a budget that could use it shows up.
    pub fn register_fft_tunable(
        &self,
        id: &str,
        builder: FftMatvecBuilder,
    ) -> Result<(), ServiceError> {
        let tuner = builder.build()?;
        let base = tuner.operator_shared();
        let base_cfg = tuner.config();
        let kappa = condition_estimate(&base, (base.nfreq() / 32).max(1));
        let (nd, nm, nt) = (base.nd(), base.nm(), base.nt());
        let params = [
            BoundParams::for_direction(OpDirection::Forward, nt, nd, nm, 1, 1, kappa),
            BoundParams::for_direction(OpDirection::Adjoint, nt, nd, nm, 1, 1, kappa),
        ];
        let weights = [
            PhaseWeights::for_shape(nd, nm, nt, OpDirection::Forward),
            PhaseWeights::for_shape(nd, nm, nt, OpDirection::Adjoint),
        ];
        // The plain-lane instance (non-budget submits) is itself a
        // variant sharing the frequency-domain setup with every tuned
        // configuration.
        let plain: Arc<FftMatvec> =
            Arc::new(FftMatvec::builder_arc(Arc::clone(&base)).precision(base_cfg).build()?);
        let factory_base = Arc::clone(&base);
        let make_variant: VariantFactory = Box::new(move |cfg| {
            let v = FftMatvec::builder_arc(Arc::clone(&factory_base)).precision(cfg).build()?;
            Ok(Arc::new(v) as SharedOp)
        });
        let mut variants: HashMap<PrecisionConfig, SharedOp> = HashMap::new();
        variants.insert(base_cfg, Arc::clone(&plain) as SharedOp);
        let tunable = Arc::new(TunableState {
            params,
            weights,
            inner: Mutex::new(TunableInner {
                tuner: Box::new(tuner),
                make_variant,
                calib: TierCalibration::new(),
                resolved: HashMap::new(),
                variants,
            }),
        });
        let shape = plain.shape();
        let entry = Arc::new(RegisteredOp { op: plain, shape, tunable: Some(tunable) });
        self.ops.write().unwrap_or_else(PoisonError::into_inner).insert(id.to_string(), entry);
        Ok(())
    }

    /// Build the configured [`TwoLevelToeplitz`] and register it under
    /// `id`, replacing any previous operator with that id. The split-FFT
    /// and full-embedding paths register identically — memory layout is
    /// the builder's concern, the service only sees [`LinearOperator`].
    pub fn register_toeplitz(
        &self,
        id: &str,
        builder: TwoLevelToeplitzBuilder,
    ) -> Result<(), ServiceError> {
        let op = builder.build()?;
        self.register(id, Arc::new(op));
        Ok(())
    }

    /// [`OperatorRegistry::register_toeplitz`] plus autotune support:
    /// budget-routed submissions resolve the cheapest 4-tier
    /// configuration whose Eq. 6 bound clears the request's bucket, just
    /// like [`OperatorRegistry::register_fft_tunable`] — the tunable
    /// machinery is operator-family-generic. Every tuned variant shares
    /// the operator's symbol spectrum via
    /// [`TwoLevelToeplitz::builder_arc`], so the multi-level embedding
    /// FFT of the generator is paid exactly once.
    pub fn register_toeplitz_tunable(
        &self,
        id: &str,
        builder: TwoLevelToeplitzBuilder,
    ) -> Result<(), ServiceError> {
        let tuner = builder.build()?;
        let base_cfg = tuner.config();
        let sym = tuner.symbol_shared();
        let split = tuner.is_split();
        let params =
            [tuner.bound_params(OpDirection::Forward), tuner.bound_params(OpDirection::Adjoint)];
        let weights =
            [tuner.phase_weights(OpDirection::Forward), tuner.phase_weights(OpDirection::Adjoint)];
        let plain: Arc<TwoLevelToeplitz> = Arc::new(
            TwoLevelToeplitz::builder_arc(Arc::clone(&sym))
                .split_fft(split)
                .precision(base_cfg)
                .build()?,
        );
        let factory_sym = Arc::clone(&sym);
        let make_variant: VariantFactory = Box::new(move |cfg| {
            let v = TwoLevelToeplitz::builder_arc(Arc::clone(&factory_sym))
                .split_fft(split)
                .precision(cfg)
                .build()?;
            Ok(Arc::new(v) as SharedOp)
        });
        let mut variants: HashMap<PrecisionConfig, SharedOp> = HashMap::new();
        variants.insert(base_cfg, Arc::clone(&plain) as SharedOp);
        let tunable = Arc::new(TunableState {
            params,
            weights,
            inner: Mutex::new(TunableInner {
                tuner: Box::new(tuner),
                make_variant,
                calib: TierCalibration::new(),
                resolved: HashMap::new(),
                variants,
            }),
        });
        let shape = plain.shape();
        let entry = Arc::new(RegisteredOp { op: plain, shape, tunable: Some(tunable) });
        self.ops.write().unwrap_or_else(PoisonError::into_inner).insert(id.to_string(), entry);
        Ok(())
    }

    /// Register an already-built operator under `id`, replacing any
    /// previous operator with that id. Accepts any realization of
    /// [`LinearOperator`] — custom backends plug into the same service.
    pub fn register(&self, id: &str, op: Arc<dyn LinearOperator + Send + Sync>) {
        let shape = op.shape();
        let entry = Arc::new(RegisteredOp { op, shape, tunable: None });
        self.ops.write().unwrap_or_else(PoisonError::into_inner).insert(id.to_string(), entry);
    }

    /// Remove the operator under `id`; returns whether one was present.
    /// In-flight requests against it complete normally (they hold their
    /// own `Arc`); new submissions see [`ServiceError::UnknownOperator`].
    pub fn deregister(&self, id: &str) -> bool {
        self.ops.write().unwrap_or_else(PoisonError::into_inner).remove(id).is_some()
    }

    /// Is an operator registered under `id`?
    pub fn contains(&self, id: &str) -> bool {
        self.ops.read().unwrap_or_else(PoisonError::into_inner).contains_key(id)
    }

    /// Shape of the operator under `id`, if registered.
    pub fn shape_of(&self, id: &str) -> Option<OpShape> {
        self.ops.read().unwrap_or_else(PoisonError::into_inner).get(id).map(|r| r.shape)
    }

    /// Registered ids, sorted for stable display.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.ops.read().unwrap_or_else(PoisonError::into_inner).keys().cloned().collect();
        names.sort();
        names
    }

    pub(crate) fn lookup(&self, id: &str) -> Option<Arc<RegisteredOp>> {
        self.ops.read().unwrap_or_else(PoisonError::into_inner).get(id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_core::{BlockToeplitzOperator, FftMatvec, OpError};

    fn tiny_builder() -> FftMatvecBuilder {
        let nd = 2;
        let nm = 3;
        let nt = 8;
        let col: Vec<f64> = (0..nt * nd * nm).map(|i| (i % 7) as f64 - 3.0).collect();
        FftMatvec::builder(
            BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap(),
        )
    }

    #[test]
    fn register_lookup_deregister_roundtrip() {
        let reg = OperatorRegistry::new();
        assert!(!reg.contains("tomo"));
        reg.register_fft("tomo", tiny_builder()).unwrap();
        assert!(reg.contains("tomo"));
        assert_eq!(reg.shape_of("tomo"), Some(OpShape::new(2 * 8, 3 * 8)));
        assert_eq!(reg.names(), vec!["tomo".to_string()]);
        assert!(reg.deregister("tomo"));
        assert!(!reg.deregister("tomo"));
        assert!(reg.shape_of("tomo").is_none());
    }

    #[test]
    fn registry_threads_backend_selection_through_the_builder() {
        // A service that wants modeled device timings registers with the
        // simulated backend; the operator serves bit-identical results
        // while its device handle accumulates transfer accounting.
        let reg = OperatorRegistry::new();
        reg.register_fft("cpu", tiny_builder()).unwrap();
        reg.register_fft("sim", tiny_builder().backend(fftmatvec_core::PipelineBackend::Simulated))
            .unwrap();
        let cpu = reg.lookup("cpu").unwrap();
        let sim = reg.lookup("sim").unwrap();
        let x: Vec<f64> = (0..cpu.shape.cols).map(|i| (i % 5) as f64 - 2.0).collect();
        let a = cpu.op.apply_forward(&x).unwrap();
        let b = sim.op.apply_forward(&x).unwrap();
        assert_eq!(a, b, "simulated backend must be bit-identical to the CPU pool");
    }

    #[test]
    fn registered_operator_is_the_live_instance() {
        let reg = OperatorRegistry::new();
        reg.register_fft("tomo", tiny_builder()).unwrap();
        let entry = reg.lookup("tomo").unwrap();
        let x = vec![1.0; entry.shape.cols];
        let y = entry.op.apply_forward(&x).unwrap();
        assert_eq!(y.len(), entry.shape.rows);
        // Re-registering under the same id replaces the entry.
        reg.register_fft("tomo", tiny_builder()).unwrap();
        let replaced = reg.lookup("tomo").unwrap();
        assert!(!Arc::ptr_eq(&entry, &replaced));
    }

    #[test]
    fn budget_buckets_are_decades_with_exact_edges() {
        // 10^k ≤ budget < 10^(k+1), including exactly at powers of ten
        // (where naive log10 flooring is one ulp from either side).
        assert_eq!(budget_bucket(1e-6), -6);
        assert_eq!(budget_bucket(9.99e-6), -6);
        assert_eq!(budget_bucket(1e-5), -5);
        assert_eq!(budget_bucket(2.5e-3), -3);
        assert_eq!(budget_bucket(1.0), 0);
        assert_eq!(budget_bucket(15.0), 1);
        for k in -30..30 {
            let edge = bucket_floor(k);
            assert_eq!(budget_bucket(edge), k, "edge 1e{k}");
            assert_eq!(budget_bucket(edge * 0.999_999), k - 1);
        }
    }

    #[test]
    fn tunable_registration_resolves_and_caches_per_bucket() {
        // Identity-like well-conditioned operator: κ ≈ 1, so generous
        // budgets admit narrow configurations.
        let (nd, nm, nt) = (6usize, 6usize, 8usize);
        let mut col = vec![0.0; nt * nd * nm];
        for i in 0..nd {
            col[i * nm + i] = 1.0;
        }
        let reg = OperatorRegistry::new();
        reg.register_fft_tunable(
            "tuned",
            FftMatvec::builder(
                BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap(),
            ),
        )
        .unwrap();
        let entry = reg.lookup("tuned").unwrap();
        let tunable = entry.tunable.as_ref().expect("registered as tunable");
        assert!(tunable.peek(OpDirection::Forward, 1e-6).is_none(), "nothing resolved yet");

        let (choice, variant) = tunable.resolve(OpDirection::Forward, 2e-6).unwrap();
        assert!(choice.bound.total <= 1e-6, "promise holds at the bucket floor");
        assert_eq!(variant.shape(), entry.shape, "variant serves the registered shape");
        // Same decade → same cached choice and variant; no re-resolution.
        let (again, variant2) = tunable.resolve(OpDirection::Forward, 9e-6).unwrap();
        assert_eq!(again.config, choice.config);
        assert!(Arc::ptr_eq(&variant, &variant2));
        assert_eq!(tunable.peek(OpDirection::Forward, 5e-6).map(|c| c.config), Some(choice.config));
        // A hopeless budget is a typed rejection, not a panic.
        let err = match tunable.resolve(OpDirection::Forward, 1e-200) {
            Err(e) => e,
            Ok(_) => panic!("1e-200 budget must be rejected"),
        };
        assert!(matches!(
            err,
            ServiceError::Shape(OpError::Config(
                fftmatvec_core::ConfigError::BudgetUnsatisfiable { .. }
            ))
        ));
    }

    #[test]
    fn toeplitz_tunable_registration_resolves_and_caches() {
        use fftmatvec_toeplitz::{ToeplitzGenerator, TwoLevelToeplitz};
        // Diagonally-dominant two-level generator: κ stays modest, so a
        // loose budget resolves to something cheaper than all-double.
        let mut diags = vec![0.0f64; 6 * 6];
        for (i, d) in diags.iter_mut().enumerate() {
            *d = 0.05 * ((i % 11) as f64 - 5.0);
        }
        diags[(4 - 1) * 6 + (2 - 1)] += 4.0; // main diagonal
        let gen = ToeplitzGenerator::two_level((3, 4), (5, 2), diags).unwrap();
        let reg = OperatorRegistry::new();
        reg.register_toeplitz_tunable(
            "scatter",
            TwoLevelToeplitz::builder(gen.clone()).split_fft(true),
        )
        .unwrap();
        let entry = reg.lookup("scatter").unwrap();
        assert_eq!(entry.shape, OpShape::new(3 * 5, 4 * 2));
        let tunable = entry.tunable.as_ref().expect("registered as tunable");

        let (choice, variant) = tunable.resolve(OpDirection::Adjoint, 2e-6).unwrap();
        assert!(choice.bound.total <= 1e-6, "promise holds at the bucket floor");
        assert_eq!(variant.shape(), entry.shape);
        // Variants really serve traffic and agree with the plain lane
        // when the resolved configuration is all-double.
        let x = vec![1.0; entry.shape.rows];
        let y = variant.apply_adjoint(&x).unwrap();
        assert_eq!(y.len(), entry.shape.cols);
        // Same decade caches; fresh decade in the other direction works.
        let (_, variant2) = tunable.resolve(OpDirection::Adjoint, 8e-6).unwrap();
        assert!(Arc::ptr_eq(&variant, &variant2));
        let (fwd, _) = tunable.resolve(OpDirection::Forward, 1e-3).unwrap();
        assert!(fwd.bound.total <= 1e-3);
        // The plain registered op and a tuned variant share one symbol:
        // registering was the only spectrum computation. (Indirect check:
        // plain lane still applies fine after tuning churn.)
        let plain_y = entry.op.apply_forward(&vec![1.0; entry.shape.cols]).unwrap();
        assert_eq!(plain_y.len(), entry.shape.rows);
        // Hopeless budget: typed rejection, config-restoring.
        let err = match tunable.resolve(OpDirection::Forward, 1e-200) {
            Err(e) => e,
            Ok(_) => panic!("1e-200 budget must be rejected"),
        };
        assert!(matches!(
            err,
            ServiceError::Shape(OpError::Config(
                fftmatvec_core::ConfigError::BudgetUnsatisfiable { .. }
            ))
        ));
    }

    // `BlockToeplitzOperator::new` validates eagerly, so exercise the
    // From chain directly: a ConfigError entering the service layer lands
    // as Shape(Config(..)).
    #[test]
    fn config_error_lifts_to_service_error() {
        let cfg = fftmatvec_core::ConfigError::ColumnLength { expected: 48, got: 5 };
        let e: ServiceError = cfg.clone().into();
        assert_eq!(e, ServiceError::Shape(OpError::Config(cfg)));
    }
}
