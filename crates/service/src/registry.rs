//! Persistent operator registry.
//!
//! Building an [`FftMatvec`] is the expensive step — FFT plans are
//! created and warmed per precision tier, and the workspace pool
//! amortizes across applications. The registry keeps built operators
//! alive under stable string ids so every request against the same id
//! reuses the warm plans and pooled workspaces instead of paying
//! construction again. Registered operators are shared as
//! `Arc<dyn LinearOperator + Send + Sync>`, so concurrent batch windows
//! apply the same instance safely (the pipeline's checkout ledger
//! guarantees windows never alias a workspace).

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use fftmatvec_core::{FftMatvecBuilder, LinearOperator, OpShape};

use crate::error::ServiceError;

/// One registered operator: the shared instance plus cached metadata the
/// admission path reads without touching the operator itself.
pub(crate) struct RegisteredOp {
    pub(crate) name: String,
    pub(crate) op: Arc<dyn LinearOperator + Send + Sync>,
    pub(crate) shape: OpShape,
}

/// Keyed store of live operators. Cheap to clone handles out of; writes
/// (register/deregister) are rare control-plane events, reads are on the
/// submit hot path, hence the `RwLock`.
pub struct OperatorRegistry {
    ops: RwLock<HashMap<String, Arc<RegisteredOp>>>,
}

impl Default for OperatorRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for OperatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorRegistry").field("operators", &self.names()).finish()
    }
}

impl OperatorRegistry {
    /// Empty registry.
    pub fn new() -> OperatorRegistry {
        OperatorRegistry { ops: RwLock::new(HashMap::new()) }
    }

    /// Build the configured [`FftMatvec`](fftmatvec_core::FftMatvec)
    /// and register it under `id`,
    /// replacing any previous operator with that id. Construction
    /// failures surface as [`ServiceError::Shape`] wrapping
    /// `OpError::Config`.
    pub fn register_fft(&self, id: &str, builder: FftMatvecBuilder) -> Result<(), ServiceError> {
        let op = builder.build()?;
        self.register(id, Arc::new(op));
        Ok(())
    }

    /// Register an already-built operator under `id`, replacing any
    /// previous operator with that id. Accepts any realization of
    /// [`LinearOperator`] — custom backends plug into the same service.
    pub fn register(&self, id: &str, op: Arc<dyn LinearOperator + Send + Sync>) {
        let shape = op.shape();
        let entry = Arc::new(RegisteredOp { name: id.to_string(), op, shape });
        self.ops.write().unwrap_or_else(PoisonError::into_inner).insert(id.to_string(), entry);
    }

    /// Remove the operator under `id`; returns whether one was present.
    /// In-flight requests against it complete normally (they hold their
    /// own `Arc`); new submissions see [`ServiceError::UnknownOperator`].
    pub fn deregister(&self, id: &str) -> bool {
        self.ops.write().unwrap_or_else(PoisonError::into_inner).remove(id).is_some()
    }

    /// Is an operator registered under `id`?
    pub fn contains(&self, id: &str) -> bool {
        self.ops.read().unwrap_or_else(PoisonError::into_inner).contains_key(id)
    }

    /// Shape of the operator under `id`, if registered.
    pub fn shape_of(&self, id: &str) -> Option<OpShape> {
        self.ops.read().unwrap_or_else(PoisonError::into_inner).get(id).map(|r| r.shape)
    }

    /// Registered ids, sorted for stable display.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.ops.read().unwrap_or_else(PoisonError::into_inner).keys().cloned().collect();
        names.sort();
        names
    }

    pub(crate) fn lookup(&self, id: &str) -> Option<Arc<RegisteredOp>> {
        self.ops.read().unwrap_or_else(PoisonError::into_inner).get(id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_core::{BlockToeplitzOperator, FftMatvec, OpError};

    fn tiny_builder() -> FftMatvecBuilder {
        let nd = 2;
        let nm = 3;
        let nt = 8;
        let col: Vec<f64> = (0..nt * nd * nm).map(|i| (i % 7) as f64 - 3.0).collect();
        FftMatvec::builder(
            BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap(),
        )
    }

    #[test]
    fn register_lookup_deregister_roundtrip() {
        let reg = OperatorRegistry::new();
        assert!(!reg.contains("tomo"));
        reg.register_fft("tomo", tiny_builder()).unwrap();
        assert!(reg.contains("tomo"));
        assert_eq!(reg.shape_of("tomo"), Some(OpShape::new(2 * 8, 3 * 8)));
        assert_eq!(reg.names(), vec!["tomo".to_string()]);
        assert!(reg.deregister("tomo"));
        assert!(!reg.deregister("tomo"));
        assert!(reg.shape_of("tomo").is_none());
    }

    #[test]
    fn registered_operator_is_the_live_instance() {
        let reg = OperatorRegistry::new();
        reg.register_fft("tomo", tiny_builder()).unwrap();
        let entry = reg.lookup("tomo").unwrap();
        let x = vec![1.0; entry.shape.cols];
        let y = entry.op.apply_forward(&x).unwrap();
        assert_eq!(y.len(), entry.shape.rows);
        // Re-registering under the same id replaces the entry.
        reg.register_fft("tomo", tiny_builder()).unwrap();
        let replaced = reg.lookup("tomo").unwrap();
        assert!(!Arc::ptr_eq(&entry, &replaced));
    }

    // `BlockToeplitzOperator::new` validates eagerly, so exercise the
    // From chain directly: a ConfigError entering the service layer lands
    // as Shape(Config(..)).
    #[test]
    fn config_error_lifts_to_service_error() {
        let cfg = fftmatvec_core::ConfigError::ColumnLength { expected: 48, got: 5 };
        let e: ServiceError = cfg.clone().into();
        assert_eq!(e, ServiceError::Shape(OpError::Config(cfg)));
    }
}
