//! The submission handle: a [`Ticket`] is returned by
//! [`crate::Service::submit`] the moment a request is admitted, and
//! resolves to the request's output vector (or a typed
//! [`ServiceError`]) once its batch window executes.
//!
//! A ticket is both a [`Future`] (poll it from any executor —
//! [`crate::executor::block_on`] is the bundled one) and a blocking
//! handle ([`Ticket::wait`]); both paths consume the same completion
//! slot, so mixing styles across tickets is fine.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};

use crate::error::ServiceError;

/// The service's reply to one request.
pub type Response = Result<Vec<f64>, ServiceError>;

enum TicketState {
    /// Not completed yet; holds the waker of the most recent poll.
    Pending(Option<Waker>),
    /// Completed, result not yet claimed.
    Done(Response),
    /// Result handed to the caller; a ticket is single-shot.
    Claimed,
}

/// Shared between the caller's [`Ticket`] and the worker that completes
/// the request.
pub(crate) struct TicketShared {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl TicketShared {
    pub(crate) fn new() -> Arc<TicketShared> {
        Arc::new(TicketShared { state: Mutex::new(TicketState::Pending(None)), cv: Condvar::new() })
    }

    /// Complete the request: store the response, wake the future, notify
    /// blocking waiters. First completion wins; later calls are ignored
    /// (a request can race expiry vs. execution only through bugs, and a
    /// settled response must never change under the caller).
    pub(crate) fn complete(&self, response: Response) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let TicketState::Pending(waker) = &mut *st {
            let waker = waker.take();
            *st = TicketState::Done(response);
            drop(st);
            if let Some(w) = waker {
                w.wake();
            }
            self.cv.notify_all();
        }
    }
}

/// Handle to one in-flight request. Await it, [`Ticket::wait`] on it, or
/// drop it (the computation still runs; the result is discarded).
pub struct Ticket {
    shared: Arc<TicketShared>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        let name = match &*st {
            TicketState::Pending(_) => "pending",
            TicketState::Done(_) => "done",
            TicketState::Claimed => "claimed",
        };
        f.debug_struct("Ticket").field("state", &name).finish()
    }
}

impl Ticket {
    pub(crate) fn new(shared: Arc<TicketShared>) -> Ticket {
        Ticket { shared }
    }

    /// Has the service settled this request yet (without claiming the
    /// result)?
    pub fn is_done(&self) -> bool {
        let st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        !matches!(&*st, TicketState::Pending(_))
    }

    /// Block the calling thread until the response arrives and return it.
    pub fn wait(self) -> Response {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match std::mem::replace(&mut *st, TicketState::Claimed) {
                TicketState::Done(resp) => return resp,
                pending @ TicketState::Pending(_) => {
                    *st = pending;
                    st = self.shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                TicketState::Claimed => unreachable!("wait() consumes the only handle"),
            }
        }
    }
}

impl Future for Ticket {
    type Output = Response;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Response> {
        let mut st = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        match std::mem::replace(&mut *st, TicketState::Claimed) {
            TicketState::Done(resp) => Poll::Ready(resp),
            TicketState::Pending(_) => {
                *st = TicketState::Pending(Some(cx.waker().clone()));
                Poll::Pending
            }
            TicketState::Claimed => panic!("Ticket polled after completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_returns_completed_response() {
        let shared = TicketShared::new();
        let ticket = Ticket::new(Arc::clone(&shared));
        shared.complete(Ok(vec![1.0, 2.0]));
        assert!(ticket.is_done());
        assert_eq!(ticket.wait().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn wait_blocks_until_completion_from_another_thread() {
        let shared = TicketShared::new();
        let ticket = Ticket::new(Arc::clone(&shared));
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            shared.complete(Err(ServiceError::ShuttingDown));
        });
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::ShuttingDown);
        t.join().unwrap();
    }

    #[test]
    fn ticket_is_a_future() {
        let shared = TicketShared::new();
        let ticket = Ticket::new(Arc::clone(&shared));
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            shared.complete(Ok(vec![3.0]));
        });
        assert_eq!(crate::executor::block_on(ticket).unwrap(), vec![3.0]);
        t.join().unwrap();
    }

    #[test]
    fn first_completion_wins() {
        let shared = TicketShared::new();
        let ticket = Ticket::new(Arc::clone(&shared));
        shared.complete(Ok(vec![1.0]));
        shared.complete(Err(ServiceError::ShuttingDown));
        assert_eq!(ticket.wait().unwrap(), vec![1.0]);
    }
}
