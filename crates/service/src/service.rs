//! The batching front-end.
//!
//! [`Service`] accepts single-vector requests against registered
//! operators and coalesces concurrent submissions into flat-strided
//! [`LinearOperator::apply_many_into`] batches — the same mechanism the
//! paper uses to keep the accelerator occupied: one warm plan, one
//! workspace checkout, many right-hand sides. Coalescing is semantically
//! invisible because the pipeline guarantees the batched path is
//! bit-identical to applying each vector alone.
//!
//! The queue discipline is deliberately simple and fully typed:
//!
//! * **Batch window** — a lane (operator id × direction) executes when it
//!   holds [`ServiceConfig::max_batch`] requests or its oldest request
//!   has waited [`ServiceConfig::max_delay`], whichever comes first.
//! * **Admission control** — a lane at [`ServiceConfig::queue_capacity`]
//!   rejects new work with [`ServiceError::Overloaded`] instead of
//!   growing without bound.
//! * **Deadlines** — a request whose deadline lapses while queued is
//!   completed with [`ServiceError::DeadlineExceeded`]; its computation
//!   never runs.
//! * **Fault isolation** — a panic inside an operator's apply is caught;
//!   that batch fails with [`ServiceError::WorkerPanicked`] and the
//!   service keeps serving other requests.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fftmatvec_core::{LinearOperator, OpDirection, OpError, OpShape, PrecisionConfig};
use fftmatvec_numeric::SplitMix64;

use crate::error::ServiceError;
use crate::registry::{budget_bucket, OperatorRegistry, TunableState};
use crate::ticket::{Ticket, TicketShared};

/// Queue policy knobs. The defaults suit interactive serving of matvecs
/// in the hundreds-of-microseconds range; latency-sensitive deployments
/// shrink `max_delay`, throughput-oriented ones grow `max_batch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Largest coalesced batch per execution (window closes when a lane
    /// reaches this many requests).
    pub max_batch: usize,
    /// Longest a request may wait for co-batchable traffic before its
    /// window closes anyway.
    pub max_delay: Duration,
    /// Per-lane admission bound; a lane at capacity rejects with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Executor threads draining batch windows. One worker already
    /// exploits intra-batch parallelism (the pipeline fans a large batch
    /// across the compute pool); more workers overlap independent lanes.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 32,
            max_delay: Duration::from_micros(200),
            queue_capacity: 1024,
            workers: 1,
        }
    }
}

/// One queued request.
struct PendingReq {
    input: Vec<f64>,
    ticket: Arc<TicketShared>,
    submitted: Instant,
    deadline: Option<Instant>,
}

/// Lane identity: operator × direction × budget bucket (`None` for
/// plain submits). Budget-routed traffic lanes per decade bucket, so a
/// coalesced window only ever mixes requests that resolved to the same
/// precision configuration — per-request results stay bit-identical to
/// solo applies regardless of what other budgets are in flight.
type LaneKey = (String, OpDirection, Option<i32>);

struct QueueState {
    lanes: HashMap<LaneKey, VecDeque<PendingReq>>,
    shutdown: bool,
}

/// Bounded deterministic latency sample: Vitter's Algorithm R over a
/// fixed-capacity reservoir with a fixed-seed [`SplitMix64`]. Memory is
/// `O(cap)` no matter how long the service runs, every sample ever seen
/// had an equal chance of being retained, and the retained set is a
/// deterministic function of the completion order.
struct LatencyReservoir {
    cap: usize,
    samples: Vec<u64>,
    count: u64,
    rng: SplitMix64,
}

/// Retained latency samples per service. 4096 × 8 bytes caps the stats
/// footprint at 32 KiB while nearest-rank quantiles up to p999 stay
/// well-resolved.
const LATENCY_RESERVOIR_CAP: usize = 4096;

impl LatencyReservoir {
    fn new(cap: usize) -> Self {
        LatencyReservoir {
            cap: cap.max(1),
            samples: Vec::new(),
            count: 0,
            rng: SplitMix64::new(0x5ca1e_1a7e0c1e5),
        }
    }

    fn push(&mut self, ns: u64) {
        self.count += 1;
        if self.samples.len() < self.cap {
            self.samples.push(ns);
        } else {
            let j = self.rng.next_usize(self.count as usize);
            if j < self.cap {
                self.samples[j] = ns;
            }
        }
    }
}

struct StatsInner {
    submitted: u64,
    completed: u64,
    rejected: u64,
    expired: u64,
    failed: u64,
    panicked: u64,
    batches: u64,
    batched_requests: u64,
    autotuned: u64,
    configs_served: HashMap<String, u64>,
    latency: LatencyReservoir,
}

impl Default for StatsInner {
    fn default() -> Self {
        StatsInner {
            submitted: 0,
            completed: 0,
            rejected: 0,
            expired: 0,
            failed: 0,
            panicked: 0,
            batches: 0,
            batched_requests: 0,
            autotuned: 0,
            configs_served: HashMap::new(),
            latency: LatencyReservoir::new(LATENCY_RESERVOIR_CAP),
        }
    }
}

/// Point-in-time counters snapshot; see [`Service::stats`].
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted to a queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused at submission (overload, unknown operator,
    /// shape, shutdown).
    pub rejected: u64,
    /// Requests whose deadline lapsed while queued.
    pub expired: u64,
    /// Requests completed with an apply-time [`OpError`].
    pub failed: u64,
    /// Requests failed because the operator panicked mid-batch.
    pub panicked: u64,
    /// Batch windows executed.
    pub batches: u64,
    /// Requests served across those windows (`batched_requests /
    /// batches` is the mean occupancy).
    pub batched_requests: u64,
    /// Requests served through budget-routed (autotuned) lanes.
    pub autotuned: u64,
    /// Requests completed per precision configuration (config string →
    /// count), sorted by config string for stable display.
    pub configs_served: Vec<(String, u64)>,
    /// Retained queue+execute latency samples, nanoseconds — a bounded
    /// uniform reservoir (capacity 4096) over everything completed, not
    /// the full history.
    pub latencies_ns: Vec<u64>,
    /// Total latency samples ever observed (≥ `latencies_ns.len()`; the
    /// excess was reservoir-evicted).
    pub latency_count: u64,
}

impl ServiceStats {
    /// Mean requests per executed batch window (the occupancy the
    /// coalescer achieved); 0 when nothing has executed.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Latency quantile in microseconds via nearest-rank on the retained
    /// samples; `None` until something has completed **or when `q` is
    /// NaN** (a NaN quantile is a caller bug, not a request for the
    /// minimum). `q` is clamped to `[0, 1]`: `q = 0` is the retained
    /// minimum, `q = 1` the retained maximum.
    pub fn latency_quantile_us(&self, q: f64) -> Option<f64> {
        if self.latencies_ns.is_empty() || q.is_nan() {
            return None;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1] as f64 / 1e3)
    }
}

struct Inner {
    registry: Arc<OperatorRegistry>,
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    stats: Mutex<StatsInner>,
    accepting: AtomicBool,
}

/// The operator-as-a-service front-end. Construction spawns the worker
/// threads; dropping the service stops admissions, drains every queued
/// request, and joins the workers.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("cfg", &self.inner.cfg)
            .field("operators", &self.inner.registry.names())
            .finish()
    }
}

impl Service {
    /// Spawn a service over `registry` with the given queue policy.
    /// Zero-valued knobs are clamped to their minimum useful values.
    pub fn new(registry: Arc<OperatorRegistry>, cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            max_batch: cfg.max_batch.max(1),
            max_delay: cfg.max_delay,
            queue_capacity: cfg.queue_capacity.max(1),
            workers: cfg.workers.max(1),
        };
        let inner = Arc::new(Inner {
            registry,
            cfg,
            state: Mutex::new(QueueState { lanes: HashMap::new(), shutdown: false }),
            cv: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            accepting: AtomicBool::new(true),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fftmatvec-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Convenience: service over a fresh registry (register operators
    /// through [`Service::registry`]).
    pub fn with_default_registry(cfg: ServiceConfig) -> Service {
        Service::new(Arc::new(OperatorRegistry::new()), cfg)
    }

    /// The registry this service serves from. Operators may be
    /// registered and deregistered while the service is live.
    pub fn registry(&self) -> &Arc<OperatorRegistry> {
        &self.inner.registry
    }

    /// The (clamped) queue policy in effect.
    pub fn config(&self) -> ServiceConfig {
        self.inner.cfg
    }

    /// Submit one vector for `op_id` in direction `dir` with no
    /// deadline. Returns a [`Ticket`] resolving to the output vector, or
    /// a typed rejection if the request is not admitted.
    pub fn submit(
        &self,
        op_id: &str,
        dir: OpDirection,
        input: Vec<f64>,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(op_id, dir, input, None, None)
    }

    /// Submit one vector with an **error budget** instead of a fixed
    /// configuration: the request is routed to the (operator, direction,
    /// budget-decade) lane whose autotuned precision configuration
    /// promises an Eq. 6 bound at or under the budget. First sight of a
    /// (direction, decade) pair resolves the configuration — pruning the
    /// 1024-config lattice by the bound, lazily calibrating the needed
    /// precision tiers on this machine, and picking the cheapest
    /// admissible configuration — and later requests in the decade reuse
    /// it. Lanes are config-homogeneous, so coalescing never mixes
    /// configurations and every result is bit-identical to a solo apply
    /// under the resolved configuration.
    ///
    /// Requires the operator to have been registered with
    /// [`OperatorRegistry::register_fft_tunable`]; rejects with
    /// [`ServiceError::NotTunable`] otherwise, and with
    /// [`ServiceError::InvalidBudget`] for non-finite or non-positive
    /// budgets. An unsatisfiable budget (below the all-double Eq. 6
    /// floor) rejects at submission with the typed
    /// `ConfigError::BudgetUnsatisfiable` wrapped in
    /// [`ServiceError::Shape`].
    pub fn submit_with_budget(
        &self,
        op_id: &str,
        dir: OpDirection,
        budget: f64,
        input: Vec<f64>,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(op_id, dir, input, None, Some(budget))
    }

    /// The configuration a (operator, direction, budget) triple has
    /// resolved to, if that budget's decade has been seen; `None` for
    /// unknown/untunable operators or yet-unseen decades. Read-only — no
    /// resolution or calibration side effects.
    pub fn resolved_config(
        &self,
        op_id: &str,
        dir: OpDirection,
        budget: f64,
    ) -> Option<PrecisionConfig> {
        let entry = self.inner.registry.lookup(op_id)?;
        let tunable = entry.tunable.as_ref()?;
        tunable.peek(dir, budget).map(|c| c.config)
    }

    /// [`Service::submit`] with a deadline: if no batch window has
    /// picked the request up within `deadline` of submission, it
    /// completes with [`ServiceError::DeadlineExceeded`] and is never
    /// computed. A deadline of zero expires immediately unless a window
    /// is already closing.
    pub fn submit_with_deadline(
        &self,
        op_id: &str,
        dir: OpDirection,
        input: Vec<f64>,
        deadline: Duration,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(op_id, dir, input, Some(deadline), None)
    }

    fn submit_inner(
        &self,
        op_id: &str,
        dir: OpDirection,
        input: Vec<f64>,
        deadline: Option<Duration>,
        budget: Option<f64>,
    ) -> Result<Ticket, ServiceError> {
        let inner = &self.inner;
        let reject = |e: ServiceError| {
            let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.rejected += 1;
            Err(e)
        };
        if !inner.accepting.load(Ordering::Acquire) {
            return reject(ServiceError::ShuttingDown);
        }
        let Some(entry) = inner.registry.lookup(op_id) else {
            return reject(ServiceError::UnknownOperator(op_id.to_string()));
        };
        // Budget routing resolves synchronously at admission: the caller
        // learns about an invalid/unsatisfiable budget (or an untunable
        // operator) here, and the lane's variant is warm before its
        // first window executes.
        let bucket = match budget {
            None => None,
            Some(b) => {
                if !(b.is_finite() && b > 0.0) {
                    return reject(ServiceError::InvalidBudget { budget: b });
                }
                let Some(tunable) = entry.tunable.as_ref() else {
                    return reject(ServiceError::NotTunable { operator: op_id.to_string() });
                };
                if let Err(e) = tunable.resolve(dir, b) {
                    return reject(e);
                }
                Some(budget_bucket(b))
            }
        };
        let (in_len, _) = entry.shape.io_lens(dir);
        if input.len() != in_len {
            return reject(ServiceError::Shape(OpError::InputLength {
                dir,
                expected: in_len,
                got: input.len(),
            }));
        }

        let submitted = Instant::now();
        let shared = TicketShared::new();
        let req = PendingReq {
            input,
            ticket: Arc::clone(&shared),
            submitted,
            deadline: deadline.map(|d| submitted + d),
        };

        let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.shutdown {
            drop(state);
            return reject(ServiceError::ShuttingDown);
        }
        let lane = state.lanes.entry((op_id.to_string(), dir, bucket)).or_default();
        if lane.len() >= inner.cfg.queue_capacity {
            let queued = lane.len();
            drop(state);
            return reject(ServiceError::Overloaded {
                operator: op_id.to_string(),
                queued,
                capacity: inner.cfg.queue_capacity,
            });
        }
        lane.push_back(req);
        drop(state);
        inner.cv.notify_one();
        let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
        stats.submitted += 1;
        drop(stats);
        Ok(Ticket::new(shared))
    }

    /// Requests currently queued across all lanes (excludes the batch a
    /// worker is executing right now).
    pub fn queued(&self) -> usize {
        let state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.lanes.values().map(VecDeque::len).sum()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = self.inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
        let mut configs_served: Vec<(String, u64)> =
            s.configs_served.iter().map(|(k, &v)| (k.clone(), v)).collect();
        configs_served.sort();
        ServiceStats {
            submitted: s.submitted,
            completed: s.completed,
            rejected: s.rejected,
            expired: s.expired,
            failed: s.failed,
            panicked: s.panicked,
            batches: s.batches,
            batched_requests: s.batched_requests,
            autotuned: s.autotuned,
            configs_served,
            latencies_ns: s.latency.samples.clone(),
            latency_count: s.latency.count,
        }
    }

    /// Stop admitting, drain every queued request (they complete
    /// normally), and join the workers. `Drop` calls this; explicit
    /// shutdown is for callers that want the drain to happen at a chosen
    /// point.
    pub fn shutdown(&mut self) {
        self.inner.accepting.store(false, Ordering::Release);
        {
            let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.inner.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A carved batch window, ready to execute outside the queue lock.
struct Window {
    name: String,
    op: Arc<dyn LinearOperator + Send + Sync>,
    shape: OpShape,
    dir: OpDirection,
    reqs: Vec<PendingReq>,
    /// For budget-routed windows: the autotune state to feed observed
    /// timings back into, and the configuration that served the window.
    tuned: Option<(Arc<TunableState>, PrecisionConfig)>,
}

fn worker_loop(inner: &Inner) {
    loop {
        let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        let now = Instant::now();

        // 1. Expire lapsed deadlines everywhere (completing after the
        //    lock drops keeps the hold time short).
        let mut expired: Vec<(String, PendingReq)> = Vec::new();
        for ((op_id, _, _), lane) in state.lanes.iter_mut() {
            let mut kept = VecDeque::with_capacity(lane.len());
            for req in lane.drain(..) {
                match req.deadline {
                    Some(d) if d <= now => expired.push((op_id.clone(), req)),
                    _ => kept.push_back(req),
                }
            }
            *lane = kept;
        }

        // 2. Carve the first ready window: a full batch, a stale head,
        //    or anything at all once draining for shutdown.
        let shutdown = state.shutdown;
        let ready_key = state
            .lanes
            .iter()
            .find(|(_, lane)| {
                if lane.is_empty() {
                    return false;
                }
                lane.len() >= inner.cfg.max_batch
                    || shutdown
                    || lane.front().is_some_and(|r| r.submitted + inner.cfg.max_delay <= now)
            })
            .map(|(key, _)| key.clone());
        let window = ready_key.map(|key| {
            let lane = state.lanes.get_mut(&key).expect("lane exists");
            let take = lane.len().min(inner.cfg.max_batch);
            let reqs: Vec<PendingReq> = lane.drain(..take).collect();
            (key, reqs)
        });

        // 3. Decide whether to execute, exit, or sleep — and until when.
        let wake_at = if window.is_some() || !expired.is_empty() {
            None
        } else if shutdown {
            // Queues fully drained.
            drop(state);
            return;
        } else {
            let mut earliest: Option<Instant> = None;
            for lane in state.lanes.values() {
                if let Some(head) = lane.front() {
                    let window_close = head.submitted + inner.cfg.max_delay;
                    earliest =
                        Some(earliest.map_or(window_close, |e: Instant| e.min(window_close)));
                }
                for req in lane {
                    if let Some(d) = req.deadline {
                        earliest = Some(earliest.map_or(d, |e: Instant| e.min(d)));
                    }
                }
            }
            Some(earliest)
        };

        match wake_at {
            None => drop(state),
            Some(Some(at)) => {
                let dur = at.saturating_duration_since(now);
                let (st, _) =
                    inner.cv.wait_timeout(state, dur).unwrap_or_else(PoisonError::into_inner);
                drop(st);
                continue;
            }
            Some(None) => {
                drop(inner.cv.wait(state).unwrap_or_else(PoisonError::into_inner));
                continue;
            }
        }

        // 4. Complete expirations and execute the window, lock-free.
        if !expired.is_empty() {
            let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.expired += expired.len() as u64;
            drop(stats);
            for (op_id, req) in expired {
                let waited = now.saturating_duration_since(req.submitted);
                req.ticket
                    .complete(Err(ServiceError::DeadlineExceeded { operator: op_id, waited }));
            }
        }
        if let Some(((op_id, dir, bucket), reqs)) = window {
            match resolve_window_op(inner, &op_id, dir, bucket) {
                Some((op, shape, tuned)) => {
                    execute_window(inner, Window { name: op_id, op, shape, dir, reqs, tuned })
                }
                None => {
                    // Deregistered while queued: reject rather than hang.
                    for req in reqs {
                        req.ticket.complete(Err(ServiceError::UnknownOperator(op_id.clone())));
                    }
                }
            }
        }
    }
}

/// Pick the operator instance a carved window executes on: the plain
/// registered instance for `bucket == None`, the lane's resolved
/// autotuned variant otherwise.
#[allow(clippy::type_complexity)]
fn resolve_window_op(
    inner: &Inner,
    op_id: &str,
    dir: OpDirection,
    bucket: Option<i32>,
) -> Option<(
    Arc<dyn LinearOperator + Send + Sync>,
    OpShape,
    Option<(Arc<TunableState>, PrecisionConfig)>,
)> {
    let entry = inner.registry.lookup(op_id)?;
    match bucket {
        None => Some((Arc::clone(&entry.op), entry.shape, None)),
        Some(b) => {
            let tunable = entry.tunable.as_ref()?;
            let (cfg, variant) = tunable.variant_for_bucket(dir, b)?;
            Some((variant, entry.shape, Some((Arc::clone(tunable), cfg))))
        }
    }
}

/// Run one coalesced window through `apply_many_into` and settle every
/// ticket in it. Inputs were shape-checked at admission, so the flat
/// buffers are well-formed by construction; any apply error or panic is
/// fanned back out to all requests in the window.
fn execute_window(inner: &Inner, window: Window) {
    let Window { name, op, shape, dir, reqs, tuned } = window;
    let (in_len, out_len) = shape.io_lens(dir);
    let batch = reqs.len();
    let mut inputs = Vec::with_capacity(batch * in_len);
    for req in &reqs {
        inputs.extend_from_slice(&req.input);
    }
    let mut outputs = vec![0.0f64; batch * out_len];

    let started = Instant::now();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        op.apply_many_into(dir, &inputs, &mut outputs)
    }));
    let done = Instant::now();

    // Successful budget-routed windows refine the operator's tier
    // calibration: the EMA keeps resolution honest as the machine's
    // actual per-tier throughput drifts from the first-touch samples.
    if let (Ok(Ok(())), Some((tunable, cfg))) = (&result, &tuned) {
        let per_apply = done.saturating_duration_since(started).as_secs_f64() / batch as f64;
        tunable.observe(dir, *cfg, per_apply);
    }

    let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
    stats.batches += 1;
    stats.batched_requests += batch as u64;
    let outcome: Result<(), ServiceError> = match result {
        Ok(Ok(())) => {
            stats.completed += batch as u64;
            if let Some((_, cfg)) = &tuned {
                stats.autotuned += batch as u64;
                *stats.configs_served.entry(cfg.to_string()).or_default() += batch as u64;
            }
            for req in &reqs {
                let ns = done.saturating_duration_since(req.submitted).as_nanos();
                stats.latency.push(ns.min(u64::MAX as u128) as u64);
            }
            Ok(())
        }
        Ok(Err(e)) => {
            stats.failed += batch as u64;
            Err(ServiceError::Shape(e))
        }
        Err(_panic) => {
            stats.panicked += batch as u64;
            Err(ServiceError::WorkerPanicked { operator: name.clone() })
        }
    };
    drop(stats);

    match outcome {
        Ok(()) => {
            for (req, out) in reqs.into_iter().zip(outputs.chunks_exact(out_len)) {
                req.ticket.complete(Ok(out.to_vec()));
            }
        }
        Err(e) => {
            for req in reqs {
                req.ticket.complete(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_core::{BlockToeplitzOperator, FftMatvec};

    fn registry_with_tiny_op() -> Arc<OperatorRegistry> {
        let (nd, nm, nt) = (2, 3, 8);
        let col: Vec<f64> = (0..nt * nd * nm).map(|i| ((i * 13 % 17) as f64) / 7.0).collect();
        let reg = Arc::new(OperatorRegistry::new());
        reg.register_fft(
            "tiny",
            FftMatvec::builder(
                BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap(),
            ),
        )
        .unwrap();
        reg
    }

    #[test]
    fn roundtrip_matches_direct_apply() {
        let reg = registry_with_tiny_op();
        let service = Service::new(Arc::clone(&reg), ServiceConfig::default());
        let shape = reg.shape_of("tiny").unwrap();
        let x: Vec<f64> = (0..shape.cols).map(|i| i as f64 * 0.25 - 1.0).collect();
        let got = service.submit("tiny", OpDirection::Forward, x.clone()).unwrap().wait().unwrap();
        let entry = reg.lookup("tiny").unwrap();
        let want = entry.op.apply_forward(&x).unwrap();
        assert_eq!(got, want);
        let stats = service.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn config_knobs_are_clamped() {
        let reg = registry_with_tiny_op();
        let service = Service::new(
            reg,
            ServiceConfig { max_batch: 0, queue_capacity: 0, workers: 0, ..Default::default() },
        );
        let cfg = service.config();
        assert_eq!((cfg.max_batch, cfg.queue_capacity, cfg.workers), (1, 1, 1));
    }

    #[test]
    fn latency_reservoir_is_memory_bounded_and_deterministic() {
        // Push far past capacity: retained storage stays at the cap, the
        // total count keeps the full history size, and a second run over
        // the same stream retains the exact same sample set (fixed-seed
        // Algorithm R).
        let total = 3 * LATENCY_RESERVOIR_CAP as u64 + 17;
        let mut a = LatencyReservoir::new(LATENCY_RESERVOIR_CAP);
        let mut b = LatencyReservoir::new(LATENCY_RESERVOIR_CAP);
        for i in 0..total {
            a.push(i);
            b.push(i);
        }
        assert_eq!(a.samples.len(), LATENCY_RESERVOIR_CAP);
        assert_eq!(a.count, total);
        assert_eq!(a.samples, b.samples);
        // Capacity never grows past the cap (no amortized Vec slack
        // beyond the initial fill).
        assert!(a.samples.capacity() <= 2 * LATENCY_RESERVOIR_CAP);
    }

    #[test]
    fn latency_quantile_edge_cases_are_pinned() {
        let mut stats = ServiceStats::default();
        // No samples: every quantile is None.
        assert_eq!(stats.latency_quantile_us(0.5), None);
        stats.latencies_ns = vec![3_000, 1_000, 2_000];
        stats.latency_count = 3;
        // NaN is a caller bug, not a request for the minimum.
        assert_eq!(stats.latency_quantile_us(f64::NAN), None);
        // q = 0 is the minimum, q = 1 the maximum; out-of-range clamps.
        assert_eq!(stats.latency_quantile_us(0.0), Some(1.0));
        assert_eq!(stats.latency_quantile_us(1.0), Some(3.0));
        assert_eq!(stats.latency_quantile_us(-2.0), Some(1.0));
        assert_eq!(stats.latency_quantile_us(7.0), Some(3.0));
        assert_eq!(stats.latency_quantile_us(0.5), Some(2.0));
        // A single sample answers every (non-NaN) quantile.
        stats.latencies_ns = vec![5_000];
        stats.latency_count = 1;
        assert_eq!(stats.latency_quantile_us(0.0), Some(5.0));
        assert_eq!(stats.latency_quantile_us(0.5), Some(5.0));
        assert_eq!(stats.latency_quantile_us(1.0), Some(5.0));
        assert_eq!(stats.latency_quantile_us(f64::NAN), None);
    }

    #[test]
    fn budget_submissions_are_validated_at_admission() {
        let reg = registry_with_tiny_op();
        let service = Service::new(Arc::clone(&reg), ServiceConfig::default());
        let shape = reg.shape_of("tiny").unwrap();
        let input = vec![1.0; shape.cols];
        // Non-finite / non-positive budgets are typed rejections.
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1e-6] {
            let err = service
                .submit_with_budget("tiny", OpDirection::Forward, bad, input.clone())
                .unwrap_err();
            // NaN != NaN, so compare through the variant's payload.
            match err {
                ServiceError::InvalidBudget { budget } => {
                    assert!(budget == bad || (budget.is_nan() && bad.is_nan()))
                }
                other => panic!("expected InvalidBudget for {bad}, got {other:?}"),
            }
        }
        // "tiny" was registered without autotune support.
        let err = service
            .submit_with_budget("tiny", OpDirection::Forward, 1e-6, input.clone())
            .unwrap_err();
        assert_eq!(err, ServiceError::NotTunable { operator: "tiny".into() });
        // Unknown id still dominates.
        let err =
            service.submit_with_budget("nope", OpDirection::Forward, 1e-6, input).unwrap_err();
        assert_eq!(err, ServiceError::UnknownOperator("nope".into()));
        assert_eq!(service.stats().rejected, 6);
    }

    #[test]
    fn drop_drains_queued_requests() {
        let reg = registry_with_tiny_op();
        let shape = reg.shape_of("tiny").unwrap();
        // A long max_delay would park these for an hour if drop failed
        // to force the windows closed.
        let service = Service::new(
            Arc::clone(&reg),
            ServiceConfig { max_delay: Duration::from_secs(3600), ..Default::default() },
        );
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| {
                service.submit("tiny", OpDirection::Adjoint, vec![i as f64; shape.rows]).unwrap()
            })
            .collect();
        drop(service);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }
}
