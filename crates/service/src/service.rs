//! The batching front-end.
//!
//! [`Service`] accepts single-vector requests against registered
//! operators and coalesces concurrent submissions into flat-strided
//! [`LinearOperator::apply_many_into`] batches — the same mechanism the
//! paper uses to keep the accelerator occupied: one warm plan, one
//! workspace checkout, many right-hand sides. Coalescing is semantically
//! invisible because the pipeline guarantees the batched path is
//! bit-identical to applying each vector alone.
//!
//! The queue discipline is deliberately simple and fully typed:
//!
//! * **Batch window** — a lane (operator id × direction) executes when it
//!   holds [`ServiceConfig::max_batch`] requests or its oldest request
//!   has waited [`ServiceConfig::max_delay`], whichever comes first.
//! * **Admission control** — a lane at [`ServiceConfig::queue_capacity`]
//!   rejects new work with [`ServiceError::Overloaded`] instead of
//!   growing without bound.
//! * **Deadlines** — a request whose deadline lapses while queued is
//!   completed with [`ServiceError::DeadlineExceeded`]; its computation
//!   never runs.
//! * **Fault isolation** — a panic inside an operator's apply is caught;
//!   that batch fails with [`ServiceError::WorkerPanicked`] and the
//!   service keeps serving other requests.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fftmatvec_core::{LinearOperator, OpDirection, OpError};

use crate::error::ServiceError;
use crate::registry::{OperatorRegistry, RegisteredOp};
use crate::ticket::{Ticket, TicketShared};

/// Queue policy knobs. The defaults suit interactive serving of matvecs
/// in the hundreds-of-microseconds range; latency-sensitive deployments
/// shrink `max_delay`, throughput-oriented ones grow `max_batch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Largest coalesced batch per execution (window closes when a lane
    /// reaches this many requests).
    pub max_batch: usize,
    /// Longest a request may wait for co-batchable traffic before its
    /// window closes anyway.
    pub max_delay: Duration,
    /// Per-lane admission bound; a lane at capacity rejects with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Executor threads draining batch windows. One worker already
    /// exploits intra-batch parallelism (the pipeline fans a large batch
    /// across the compute pool); more workers overlap independent lanes.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 32,
            max_delay: Duration::from_micros(200),
            queue_capacity: 1024,
            workers: 1,
        }
    }
}

/// One queued request.
struct PendingReq {
    input: Vec<f64>,
    ticket: Arc<TicketShared>,
    submitted: Instant,
    deadline: Option<Instant>,
}

type LaneKey = (String, OpDirection);

struct QueueState {
    lanes: HashMap<LaneKey, VecDeque<PendingReq>>,
    shutdown: bool,
}

#[derive(Default)]
struct StatsInner {
    submitted: u64,
    completed: u64,
    rejected: u64,
    expired: u64,
    failed: u64,
    panicked: u64,
    batches: u64,
    batched_requests: u64,
    latencies_ns: Vec<u64>,
}

/// Point-in-time counters snapshot; see [`Service::stats`].
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted to a queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused at submission (overload, unknown operator,
    /// shape, shutdown).
    pub rejected: u64,
    /// Requests whose deadline lapsed while queued.
    pub expired: u64,
    /// Requests completed with an apply-time [`OpError`].
    pub failed: u64,
    /// Requests failed because the operator panicked mid-batch.
    pub panicked: u64,
    /// Batch windows executed.
    pub batches: u64,
    /// Requests served across those windows (`batched_requests /
    /// batches` is the mean occupancy).
    pub batched_requests: u64,
    /// Per-request queue+execute latencies, nanoseconds, completion
    /// order.
    pub latencies_ns: Vec<u64>,
}

impl ServiceStats {
    /// Mean requests per executed batch window (the occupancy the
    /// coalescer achieved); 0 when nothing has executed.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Latency quantile in microseconds via nearest-rank on the recorded
    /// samples; `None` until something has completed. `q` in `[0, 1]`.
    pub fn latency_quantile_us(&self, q: f64) -> Option<f64> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1] as f64 / 1e3)
    }
}

struct Inner {
    registry: Arc<OperatorRegistry>,
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    stats: Mutex<StatsInner>,
    accepting: AtomicBool,
}

/// The operator-as-a-service front-end. Construction spawns the worker
/// threads; dropping the service stops admissions, drains every queued
/// request, and joins the workers.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("cfg", &self.inner.cfg)
            .field("operators", &self.inner.registry.names())
            .finish()
    }
}

impl Service {
    /// Spawn a service over `registry` with the given queue policy.
    /// Zero-valued knobs are clamped to their minimum useful values.
    pub fn new(registry: Arc<OperatorRegistry>, cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            max_batch: cfg.max_batch.max(1),
            max_delay: cfg.max_delay,
            queue_capacity: cfg.queue_capacity.max(1),
            workers: cfg.workers.max(1),
        };
        let inner = Arc::new(Inner {
            registry,
            cfg,
            state: Mutex::new(QueueState { lanes: HashMap::new(), shutdown: false }),
            cv: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            accepting: AtomicBool::new(true),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fftmatvec-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Convenience: service over a fresh registry (register operators
    /// through [`Service::registry`]).
    pub fn with_default_registry(cfg: ServiceConfig) -> Service {
        Service::new(Arc::new(OperatorRegistry::new()), cfg)
    }

    /// The registry this service serves from. Operators may be
    /// registered and deregistered while the service is live.
    pub fn registry(&self) -> &Arc<OperatorRegistry> {
        &self.inner.registry
    }

    /// The (clamped) queue policy in effect.
    pub fn config(&self) -> ServiceConfig {
        self.inner.cfg
    }

    /// Submit one vector for `op_id` in direction `dir` with no
    /// deadline. Returns a [`Ticket`] resolving to the output vector, or
    /// a typed rejection if the request is not admitted.
    pub fn submit(
        &self,
        op_id: &str,
        dir: OpDirection,
        input: Vec<f64>,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(op_id, dir, input, None)
    }

    /// [`Service::submit`] with a deadline: if no batch window has
    /// picked the request up within `deadline` of submission, it
    /// completes with [`ServiceError::DeadlineExceeded`] and is never
    /// computed. A deadline of zero expires immediately unless a window
    /// is already closing.
    pub fn submit_with_deadline(
        &self,
        op_id: &str,
        dir: OpDirection,
        input: Vec<f64>,
        deadline: Duration,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(op_id, dir, input, Some(deadline))
    }

    fn submit_inner(
        &self,
        op_id: &str,
        dir: OpDirection,
        input: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        let inner = &self.inner;
        let reject = |e: ServiceError| {
            let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.rejected += 1;
            Err(e)
        };
        if !inner.accepting.load(Ordering::Acquire) {
            return reject(ServiceError::ShuttingDown);
        }
        let Some(entry) = inner.registry.lookup(op_id) else {
            return reject(ServiceError::UnknownOperator(op_id.to_string()));
        };
        let (in_len, _) = entry.shape.io_lens(dir);
        if input.len() != in_len {
            return reject(ServiceError::Shape(OpError::InputLength {
                dir,
                expected: in_len,
                got: input.len(),
            }));
        }

        let submitted = Instant::now();
        let shared = TicketShared::new();
        let req = PendingReq {
            input,
            ticket: Arc::clone(&shared),
            submitted,
            deadline: deadline.map(|d| submitted + d),
        };

        let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.shutdown {
            drop(state);
            return reject(ServiceError::ShuttingDown);
        }
        let lane = state.lanes.entry((op_id.to_string(), dir)).or_default();
        if lane.len() >= inner.cfg.queue_capacity {
            let queued = lane.len();
            drop(state);
            return reject(ServiceError::Overloaded {
                operator: op_id.to_string(),
                queued,
                capacity: inner.cfg.queue_capacity,
            });
        }
        lane.push_back(req);
        drop(state);
        inner.cv.notify_one();
        let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
        stats.submitted += 1;
        drop(stats);
        Ok(Ticket::new(shared))
    }

    /// Requests currently queued across all lanes (excludes the batch a
    /// worker is executing right now).
    pub fn queued(&self) -> usize {
        let state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.lanes.values().map(VecDeque::len).sum()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = self.inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
        ServiceStats {
            submitted: s.submitted,
            completed: s.completed,
            rejected: s.rejected,
            expired: s.expired,
            failed: s.failed,
            panicked: s.panicked,
            batches: s.batches,
            batched_requests: s.batched_requests,
            latencies_ns: s.latencies_ns.clone(),
        }
    }

    /// Stop admitting, drain every queued request (they complete
    /// normally), and join the workers. `Drop` calls this; explicit
    /// shutdown is for callers that want the drain to happen at a chosen
    /// point.
    pub fn shutdown(&mut self) {
        self.inner.accepting.store(false, Ordering::Release);
        {
            let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.inner.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A carved batch window, ready to execute outside the queue lock.
struct Window {
    op: Arc<RegisteredOp>,
    dir: OpDirection,
    reqs: Vec<PendingReq>,
}

fn worker_loop(inner: &Inner) {
    loop {
        let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        let now = Instant::now();

        // 1. Expire lapsed deadlines everywhere (completing after the
        //    lock drops keeps the hold time short).
        let mut expired: Vec<(String, PendingReq)> = Vec::new();
        for ((op_id, _), lane) in state.lanes.iter_mut() {
            let mut kept = VecDeque::with_capacity(lane.len());
            for req in lane.drain(..) {
                match req.deadline {
                    Some(d) if d <= now => expired.push((op_id.clone(), req)),
                    _ => kept.push_back(req),
                }
            }
            *lane = kept;
        }

        // 2. Carve the first ready window: a full batch, a stale head,
        //    or anything at all once draining for shutdown.
        let shutdown = state.shutdown;
        let ready_key = state
            .lanes
            .iter()
            .find(|(_, lane)| {
                if lane.is_empty() {
                    return false;
                }
                lane.len() >= inner.cfg.max_batch
                    || shutdown
                    || lane.front().is_some_and(|r| r.submitted + inner.cfg.max_delay <= now)
            })
            .map(|(key, _)| key.clone());
        let window = ready_key.map(|key| {
            let lane = state.lanes.get_mut(&key).expect("lane exists");
            let take = lane.len().min(inner.cfg.max_batch);
            let reqs: Vec<PendingReq> = lane.drain(..take).collect();
            (key, reqs)
        });

        // 3. Decide whether to execute, exit, or sleep — and until when.
        let wake_at = if window.is_some() || !expired.is_empty() {
            None
        } else if shutdown {
            // Queues fully drained.
            drop(state);
            return;
        } else {
            let mut earliest: Option<Instant> = None;
            for lane in state.lanes.values() {
                if let Some(head) = lane.front() {
                    let window_close = head.submitted + inner.cfg.max_delay;
                    earliest =
                        Some(earliest.map_or(window_close, |e: Instant| e.min(window_close)));
                }
                for req in lane {
                    if let Some(d) = req.deadline {
                        earliest = Some(earliest.map_or(d, |e: Instant| e.min(d)));
                    }
                }
            }
            Some(earliest)
        };

        match wake_at {
            None => drop(state),
            Some(Some(at)) => {
                let dur = at.saturating_duration_since(now);
                let (st, _) =
                    inner.cv.wait_timeout(state, dur).unwrap_or_else(PoisonError::into_inner);
                drop(st);
                continue;
            }
            Some(None) => {
                drop(inner.cv.wait(state).unwrap_or_else(PoisonError::into_inner));
                continue;
            }
        }

        // 4. Complete expirations and execute the window, lock-free.
        if !expired.is_empty() {
            let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
            stats.expired += expired.len() as u64;
            drop(stats);
            for (op_id, req) in expired {
                let waited = now.saturating_duration_since(req.submitted);
                req.ticket
                    .complete(Err(ServiceError::DeadlineExceeded { operator: op_id, waited }));
            }
        }
        if let Some(((op_id, dir), reqs)) = window {
            match inner.registry.lookup(&op_id) {
                Some(op) => execute_window(inner, Window { op, dir, reqs }),
                None => {
                    // Deregistered while queued: reject rather than hang.
                    for req in reqs {
                        req.ticket.complete(Err(ServiceError::UnknownOperator(op_id.clone())));
                    }
                }
            }
        }
    }
}

/// Run one coalesced window through `apply_many_into` and settle every
/// ticket in it. Inputs were shape-checked at admission, so the flat
/// buffers are well-formed by construction; any apply error or panic is
/// fanned back out to all requests in the window.
fn execute_window(inner: &Inner, window: Window) {
    let Window { op, dir, reqs } = window;
    let (in_len, out_len) = op.shape.io_lens(dir);
    let batch = reqs.len();
    let mut inputs = Vec::with_capacity(batch * in_len);
    for req in &reqs {
        inputs.extend_from_slice(&req.input);
    }
    let mut outputs = vec![0.0f64; batch * out_len];

    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        op.op.apply_many_into(dir, &inputs, &mut outputs)
    }));
    let done = Instant::now();

    let mut stats = inner.stats.lock().unwrap_or_else(PoisonError::into_inner);
    stats.batches += 1;
    stats.batched_requests += batch as u64;
    let outcome: Result<(), ServiceError> = match result {
        Ok(Ok(())) => {
            stats.completed += batch as u64;
            for req in &reqs {
                let ns = done.saturating_duration_since(req.submitted).as_nanos();
                stats.latencies_ns.push(ns.min(u64::MAX as u128) as u64);
            }
            Ok(())
        }
        Ok(Err(e)) => {
            stats.failed += batch as u64;
            Err(ServiceError::Shape(e))
        }
        Err(_panic) => {
            stats.panicked += batch as u64;
            Err(ServiceError::WorkerPanicked { operator: op.name.clone() })
        }
    };
    drop(stats);

    match outcome {
        Ok(()) => {
            for (req, out) in reqs.into_iter().zip(outputs.chunks_exact(out_len)) {
                req.ticket.complete(Ok(out.to_vec()));
            }
        }
        Err(e) => {
            for req in reqs {
                req.ticket.complete(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_core::{BlockToeplitzOperator, FftMatvec};

    fn registry_with_tiny_op() -> Arc<OperatorRegistry> {
        let (nd, nm, nt) = (2, 3, 8);
        let col: Vec<f64> = (0..nt * nd * nm).map(|i| ((i * 13 % 17) as f64) / 7.0).collect();
        let reg = Arc::new(OperatorRegistry::new());
        reg.register_fft(
            "tiny",
            FftMatvec::builder(
                BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap(),
            ),
        )
        .unwrap();
        reg
    }

    #[test]
    fn roundtrip_matches_direct_apply() {
        let reg = registry_with_tiny_op();
        let service = Service::new(Arc::clone(&reg), ServiceConfig::default());
        let shape = reg.shape_of("tiny").unwrap();
        let x: Vec<f64> = (0..shape.cols).map(|i| i as f64 * 0.25 - 1.0).collect();
        let got = service.submit("tiny", OpDirection::Forward, x.clone()).unwrap().wait().unwrap();
        let entry = reg.lookup("tiny").unwrap();
        let want = entry.op.apply_forward(&x).unwrap();
        assert_eq!(got, want);
        let stats = service.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn config_knobs_are_clamped() {
        let reg = registry_with_tiny_op();
        let service = Service::new(
            reg,
            ServiceConfig { max_batch: 0, queue_capacity: 0, workers: 0, ..Default::default() },
        );
        let cfg = service.config();
        assert_eq!((cfg.max_batch, cfg.queue_capacity, cfg.workers), (1, 1, 1));
    }

    #[test]
    fn drop_drains_queued_requests() {
        let reg = registry_with_tiny_op();
        let shape = reg.shape_of("tiny").unwrap();
        // A long max_delay would park these for an hour if drop failed
        // to force the windows closed.
        let service = Service::new(
            Arc::clone(&reg),
            ServiceConfig { max_delay: Duration::from_secs(3600), ..Default::default() },
        );
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| {
                service.submit("tiny", OpDirection::Adjoint, vec![i as f64; shape.rows]).unwrap()
            })
            .collect();
        drop(service);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }
}
