//! Minimal hand-rolled futures executor.
//!
//! The offline build environment has no tokio; following the
//! vendored-shim pattern, the service exposes standard
//! [`std::future::Future`]s (so callers can migrate to a real runtime
//! with no API change) and drives them here with a thread-parking
//! waker. The "reactor" half — timers for batch windows and deadlines —
//! lives in the service's batcher loop ([`crate::Service`]), which
//! completes futures and calls their wakers; this module only needs to
//! park until woken.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Waker that unparks the thread running [`block_on`].
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drive `fut` to completion on the calling thread, parking between
/// polls. Spurious unparks only cost an extra poll; lost wakeups cannot
/// happen because `park` consumes a token `unpark` sets even when the
/// thread is not yet parked.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// Future combinator awaiting a whole wave of futures, yielding their
/// outputs in submission order. The service's coalescing means a wave of
/// [`crate::Ticket`]s typically completes together (one batch), so
/// polling them as a group is the natural way to collect a burst.
pub struct JoinAll<F: Future + Unpin> {
    pending: Vec<Option<F>>,
    outputs: Vec<Option<F::Output>>,
}

// The futures are `Unpin` and the outputs are plain moved-out values the
// combinator never pins, so `JoinAll` has no address-sensitive state.
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for (slot, out) in this.pending.iter_mut().zip(this.outputs.iter_mut()) {
            if let Some(fut) = slot {
                match Pin::new(fut).poll(cx) {
                    Poll::Ready(v) => {
                        *out = Some(v);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.outputs.iter_mut().map(|o| o.take().expect("all done")).collect())
        } else {
            Poll::Pending
        }
    }
}

/// Await every future in `futs`; outputs come back in input order.
pub fn join_all<F: Future + Unpin>(futs: Vec<F>) -> JoinAll<F> {
    let outputs = futs.iter().map(|_| None).collect();
    JoinAll { pending: futs.into_iter().map(Some).collect(), outputs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_future_completed_from_another_thread() {
        // A one-shot future completed by a helper thread after a delay:
        // block_on must park and be woken by the waker, not spin-fail.
        use std::sync::Mutex;
        struct Shared {
            value: Option<u32>,
            waker: Option<Waker>,
        }
        struct OneShot(Arc<Mutex<Shared>>);
        impl Future for OneShot {
            type Output = u32;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                let mut st = self.0.lock().unwrap();
                match st.value.take() {
                    Some(v) => Poll::Ready(v),
                    None => {
                        st.waker = Some(cx.waker().clone());
                        Poll::Pending
                    }
                }
            }
        }
        let shared = Arc::new(Mutex::new(Shared { value: None, waker: None }));
        let producer = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut st = producer.lock().unwrap();
            st.value = Some(7);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });
        assert_eq!(block_on(OneShot(shared)), 7);
        t.join().unwrap();
    }

    #[test]
    fn join_all_preserves_order() {
        let futs: Vec<_> = (0..5).map(|i| Box::pin(async move { i * i })).collect();
        assert_eq!(block_on(join_all(futs)), vec![0, 1, 4, 9, 16]);
        let empty: Vec<std::pin::Pin<Box<dyn Future<Output = u8>>>> = Vec::new();
        assert_eq!(block_on(join_all(empty)), Vec::<u8>::new());
    }
}
