//! Operator-as-a-service front-end for the FFT matvec pipeline.
//!
//! The compute layers answer "how fast is one (batched) matvec"; this
//! crate answers "how do many independent callers share the warm
//! operator". Three pieces:
//!
//! * [`OperatorRegistry`] — keeps builder-constructed operators (and
//!   their warmed FFT plans + pooled workspaces) alive under stable
//!   string ids.
//! * [`Service`] — an async request queue that coalesces concurrent
//!   single-vector submissions into flat-strided
//!   [`fftmatvec_core::LinearOperator::apply_many_into`] batches under a
//!   max-batch / max-delay policy, with per-request deadlines and
//!   bounded-queue admission control. Rejections are typed
//!   ([`ServiceError`]), wrapping the compute layers' `OpError` /
//!   `ConfigError` hierarchy.
//! * [`executor`] — a minimal hand-rolled futures executor
//!   ([`block_on`], [`join_all`]) so [`Ticket`]s are ordinary
//!   `std::future::Future`s without an async-runtime dependency; any
//!   external runtime can drive them instead.
//!
//! ```
//! use fftmatvec_core::{BlockToeplitzOperator, FftMatvec, OpDirection};
//! use fftmatvec_service::{block_on, join_all, OperatorRegistry, Service, ServiceConfig};
//! use std::sync::Arc;
//!
//! let (nd, nm, nt) = (2, 3, 16);
//! let col: Vec<f64> = (0..nt * nd * nm).map(|i| (i % 5) as f64 - 2.0).collect();
//! let registry = Arc::new(OperatorRegistry::new());
//! registry
//!     .register_fft(
//!         "demo",
//!         FftMatvec::builder(
//!             BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap(),
//!         ),
//!     )
//!     .unwrap();
//!
//! let service = Service::new(registry, ServiceConfig::default());
//! let tickets: Vec<_> = (0..4)
//!     .map(|b| {
//!         service
//!             .submit("demo", OpDirection::Forward, vec![b as f64; nm * nt])
//!             .unwrap()
//!     })
//!     .collect();
//! for out in block_on(join_all(tickets)) {
//!     assert_eq!(out.unwrap().len(), nd * nt);
//! }
//! ```

mod error;
pub mod executor;
mod registry;
mod service;
mod ticket;

pub use error::ServiceError;
pub use executor::{block_on, join_all};
pub use registry::OperatorRegistry;
pub use service::{Service, ServiceConfig, ServiceStats};
pub use ticket::{Response, Ticket};
