//! Budget-routed serving: mixed-budget traffic resolves to multiple
//! precision configurations, and per-request results stay bit-identical
//! to solo applies under each request's resolved configuration.
//!
//! This is the service-level contract of the precision autotuner: lanes
//! are keyed by (operator, direction, budget decade), so a coalesced
//! window never mixes configurations — callers with different budgets
//! share the warm operator without perturbing each other's bits.

use std::sync::Arc;
use std::time::Duration;

use fftmatvec_core::{
    BlockToeplitzOperator, FftMatvec, LinearOperator, OpDirection, PipelineBackend, PrecisionConfig,
};
use fftmatvec_numeric::SplitMix64;
use fftmatvec_service::{block_on, join_all, OperatorRegistry, Service, ServiceConfig};

/// Identity-plus-noise operator: κ(F̂) ≈ 1, so the Eq. 6 pruning admits
/// genuinely narrow configurations at loose budgets while a tight budget
/// still forces all-double.
fn well_conditioned(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, -0.05, 0.05);
    let n = nd.min(nm);
    for i in 0..n {
        col[i * nm + i] += 1.0;
    }
    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: bit mismatch at element {i}: got {g:?}, want {w:?}"
        );
    }
}

#[test]
fn mixed_budget_traffic_is_config_routed_and_bit_deterministic() {
    let (nd, nm, nt) = (4usize, 4usize, 32usize);

    // Two budget classes far enough apart that they cannot resolve to
    // the same configuration: 1e-13 sits between the all-double Eq. 6
    // floor (≈1.3e-14 at this shape) and every narrow config's ≥ε_s
    // terms, so it forces all-double; 1e-2 admits 16-bit work.
    let budgets = [1e-13, 1e-2];
    let dir = OpDirection::Forward;
    let in_len = nm * nt;

    // Tier calibration is a live measurement, so a noisy scheduler
    // window on a loaded host can legitimately tie the narrow tiers
    // against double — the tie-break then lands every budget on
    // all-double. Retry with a fresh registration (fresh calibration)
    // instead of flaking: the contract is that a clean measurement
    // routes the loose decade off all-double, and several consecutive
    // dirty windows is vanishingly unlikely. The bit-determinism
    // contract is unconditional and checked on every attempt.
    let mut routed = false;
    for attempt in 0..5 {
        let op = well_conditioned(nd, nm, nt, 7);
        let base = Arc::new(op.clone());

        // Pinned to the CPU backend: the test asserts a routing outcome
        // of the live timing calibration, not backend dispatch, and the
        // simulated device's modeled-clock booking on every primitive
        // call only adds measurement noise at this tiny shape. Builder
        // beats the `FFTMATVEC_BACKEND` env override, so the simulated
        // CI leg still runs everything else through the env backend.
        let registry = Arc::new(OperatorRegistry::new());
        registry
            .register_fft_tunable("tuned", FftMatvec::builder(op).backend(PipelineBackend::Cpu))
            .unwrap();
        let service = Service::new(
            Arc::clone(&registry),
            ServiceConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                queue_capacity: 256,
                workers: 2,
            },
        );

        let mut inputs: Vec<Vec<f64>> = Vec::new();
        let mut tickets = Vec::new();
        let mut which = Vec::new();
        for i in 0..24 {
            let mut rng = SplitMix64::new(1000 + i as u64);
            let mut x = vec![0.0; in_len];
            rng.fill_uniform_stuffed(&mut x, -1.0, 1.0);
            let budget = budgets[i % 2];
            tickets.push(service.submit_with_budget("tuned", dir, budget, x.clone()).unwrap());
            inputs.push(x);
            which.push(budget);
        }
        let outputs = block_on(join_all(tickets));

        let tight =
            service.resolved_config("tuned", dir, budgets[0]).expect("tight decade resolved");
        let loose =
            service.resolved_config("tuned", dir, budgets[1]).expect("loose decade resolved");
        assert_eq!(tight, PrecisionConfig::all_double(), "1e-13 is under every narrow floor");

        // Every request's result is bit-identical to a solo apply under
        // its budget's resolved configuration — coalescing and
        // lane-mates with other budgets are invisible.
        for ((x, budget), out) in inputs.iter().zip(&which).zip(&outputs) {
            let cfg = service.resolved_config("tuned", dir, *budget).unwrap();
            let solo = FftMatvec::builder_arc(Arc::clone(&base)).precision(cfg).build().unwrap();
            let want = solo.apply_forward(x).unwrap();
            let got = out.as_ref().expect("budget-routed request served");
            assert_bits_eq(got, &want, &format!("budget {budget:e} via {cfg}"));
        }

        let stats = service.stats();
        assert_eq!(stats.autotuned, 24);
        assert_eq!(stats.configs_served.iter().map(|(_, n)| n).sum::<u64>(), 24);
        assert_eq!(stats.latency_count, stats.completed);

        if tight != loose {
            assert!(stats.configs_served.len() >= 2, "served configs: {:?}", stats.configs_served);
            routed = true;
            break;
        }
        eprintln!("attempt {attempt}: loose decade tied to all-double, recalibrating");
    }
    assert!(routed, "mixed budgets never resolved to ≥ 2 distinct configs in 5 calibrations");
}

#[test]
fn plain_and_budget_lanes_coexist_on_one_operator() {
    let (nd, nm, nt) = (3usize, 3usize, 16usize);
    let op = well_conditioned(nd, nm, nt, 11);
    let base = Arc::new(op.clone());
    let registry = Arc::new(OperatorRegistry::new());
    registry.register_fft_tunable("tuned", FftMatvec::builder(op)).unwrap();
    let service = Service::new(Arc::clone(&registry), ServiceConfig::default());

    let mut rng = SplitMix64::new(21);
    let mut m = vec![0.0; nm * nt];
    rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);
    let mut d = vec![0.0; nd * nt];
    rng.fill_uniform_stuffed(&mut d, -1.0, 1.0);

    // A plain submit uses the registered configuration (default: the
    // builder's), a budget submit the autotuned one, and the adjoint
    // budget lane resolves independently of the forward one.
    let plain = service.submit("tuned", OpDirection::Forward, m.clone()).unwrap().wait().unwrap();
    let tuned = service
        .submit_with_budget("tuned", OpDirection::Forward, 1e-6, m.clone())
        .unwrap()
        .wait()
        .unwrap();
    let tuned_adj = service
        .submit_with_budget("tuned", OpDirection::Adjoint, 1e-6, d.clone())
        .unwrap()
        .wait()
        .unwrap();

    let default_mv = FftMatvec::builder_arc(Arc::clone(&base)).build().unwrap();
    assert_bits_eq(&plain, &default_mv.apply_forward(&m).unwrap(), "plain lane");

    let fwd_cfg = service.resolved_config("tuned", OpDirection::Forward, 1e-6).unwrap();
    let adj_cfg = service.resolved_config("tuned", OpDirection::Adjoint, 1e-6).unwrap();
    let fwd_mv = FftMatvec::builder_arc(Arc::clone(&base)).precision(fwd_cfg).build().unwrap();
    let adj_mv = FftMatvec::builder_arc(Arc::clone(&base)).precision(adj_cfg).build().unwrap();
    assert_bits_eq(&tuned, &fwd_mv.apply_forward(&m).unwrap(), "forward budget lane");
    assert_bits_eq(&tuned_adj, &adj_mv.apply_adjoint(&d).unwrap(), "adjoint budget lane");

    // The un-budgeted direction never resolved anything.
    assert!(service.resolved_config("tuned", OpDirection::Adjoint, 1e-14).is_none());
}
