//! Coalescing is semantically invisible, bit for bit.
//!
//! The service's whole premise is that merging concurrent single-vector
//! submissions into one `apply_many_into` window changes *when* work
//! runs, never *what* it computes. These properties pin that down: for
//! every precision tier (f16/bf16/f32/f64), several operator shapes, and
//! batch sizes 1–8, a wave of requests coalesced into exactly one batch
//! window — driven through the bundled futures executor — must return
//! exactly the bits of a freshly built identical pipeline applying each
//! vector alone through `apply_into`. This leans on (and re-verifies)
//! the PR-5 determinism contract: pooled batched execution equals the
//! sequential per-item loop at any thread count.

use std::sync::Arc;
use std::time::Duration;

use fftmatvec_core::{
    BlockToeplitzOperator, FftMatvec, LinearOperator, OpDirection, PrecisionConfig,
};
use fftmatvec_numeric::SplitMix64;
use fftmatvec_service::{block_on, join_all, OperatorRegistry, Service, ServiceConfig};
use proptest::prelude::*;

const TIERS: [&str; 4] = ["hhhhh", "bbbbb", "sssss", "ddddd"];
const DIMS: [(usize, usize, usize); 3] = [(2, 3, 16), (3, 2, 32), (4, 4, 64)];

fn build_pipeline(nd: usize, nm: usize, nt: usize, tier: &str, seed: u64) -> FftMatvec {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
    FftMatvec::builder(op).precision(tier.parse::<PrecisionConfig>().unwrap()).build().unwrap()
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: bit mismatch at element {i}: got {g:?}, want {w:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One coalesced window == per-item sequential applies, exactly.
    #[test]
    fn coalesced_window_is_bit_identical_to_sequential(
        tier_ix in 0usize..4,
        dims_ix in 0usize..3,
        batch in 1usize..9,
        dir_ix in 0usize..2,
        seed in 0u64..1u64 << 16,
    ) {
        let tier = TIERS[tier_ix];
        let (nd, nm, nt) = DIMS[dims_ix];
        let dir = [OpDirection::Forward, OpDirection::Adjoint][dir_ix];

        // Served instance and reference instance are built identically;
        // plan construction and precision casting are deterministic, so
        // any divergence below is the service's fault.
        let registry = Arc::new(OperatorRegistry::new());
        registry
            .register_fft("op", {
                let mut rng = SplitMix64::new(seed);
                let mut col = vec![0.0; nt * nd * nm];
                rng.fill_uniform(&mut col, -1.0, 1.0);
                FftMatvec::builder(
                    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap(),
                )
                .precision(tier.parse::<PrecisionConfig>().unwrap())
            })
            .unwrap();
        let reference = build_pipeline(nd, nm, nt, tier, seed);

        let (in_len, out_len) = reference.shape().io_lens(dir);
        let inputs: Vec<Vec<f64>> = (0..batch)
            .map(|b| {
                let mut rng = SplitMix64::new(seed ^ (0xB0057 + b as u64));
                let mut x = vec![0.0; in_len];
                rng.fill_uniform(&mut x, -1.0, 1.0);
                x
            })
            .collect();

        // max_batch == wave size and a long max_delay force the whole
        // wave into exactly one window (the lane only becomes ready when
        // the last submission lands).
        let service = Service::new(
            Arc::clone(&registry),
            ServiceConfig {
                max_batch: batch,
                max_delay: Duration::from_secs(30),
                ..Default::default()
            },
        );
        let tickets: Vec<_> = inputs
            .iter()
            .map(|x| service.submit("op", dir, x.clone()).unwrap())
            .collect();
        let outputs = block_on(join_all(tickets));

        let stats = service.stats();
        prop_assert_eq!(stats.batches, 1, "wave must coalesce into one window");
        prop_assert_eq!(stats.batched_requests, batch as u64);
        prop_assert_eq!(stats.completed, batch as u64);

        let mut want = vec![0.0; out_len];
        for (b, (x, got)) in inputs.iter().zip(outputs).enumerate() {
            let got = got.unwrap();
            reference.apply_into(dir, x, &mut want).unwrap();
            assert_bits_eq(
                &got,
                &want,
                &format!("tier {tier} dims {nd}x{nm}x{nt} {dir:?} item {b}/{batch}"),
            );
        }
    }
}
