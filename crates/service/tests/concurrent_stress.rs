//! Concurrency stress: many submitters, many workers, one warm operator.
//!
//! The pipeline's workspace pool hands each batch window its own
//! checkout (the ledger panics on aliasing), so concurrent windows on
//! one `FftMatvec` must be safe and bit-exact. These tests drive that
//! from both ends: through the service with 4 executor workers × 4
//! submitter threads, and directly with 8 threads hammering
//! `apply_many_into` on a shared `Arc<FftMatvec>`. Afterwards the pool
//! must report zero workspaces in flight and retain no more than the
//! bounded cap.

use std::sync::Arc;
use std::time::Duration;

use fftmatvec_core::{
    workspace_retention_cap, BlockToeplitzOperator, FftMatvec, LinearOperator, OpDirection,
};
use fftmatvec_numeric::SplitMix64;
use fftmatvec_service::{OperatorRegistry, Service, ServiceConfig};

const ND: usize = 3;
const NM: usize = 4;
const NT: usize = 64;

fn build_pipeline(seed: u64) -> FftMatvec {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; NT * ND * NM];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    FftMatvec::builder(BlockToeplitzOperator::from_first_block_column(ND, NM, NT, &col).unwrap())
        .build()
        .unwrap()
}

fn request_input(len: usize, thread: usize, i: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(0x57AB1E ^ ((thread as u64) << 32) ^ i as u64);
    let mut x = vec![0.0; len];
    rng.fill_uniform(&mut x, -1.0, 1.0);
    x
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: bit mismatch at element {i}: got {g:?}, want {w:?}"
        );
    }
}

#[test]
fn concurrent_submitters_stay_bit_exact_and_leak_no_workspaces() {
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 32;

    let served = Arc::new(build_pipeline(11));
    let reference = Arc::new(build_pipeline(11));
    let registry = Arc::new(OperatorRegistry::new());
    registry.register("op", Arc::clone(&served) as Arc<dyn LinearOperator + Send + Sync>);

    let service = Service::new(
        Arc::clone(&registry),
        ServiceConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(200),
            queue_capacity: 4096,
            workers: 4,
        },
    );

    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let service = &service;
            let reference = Arc::clone(&reference);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let dir =
                        if (t + i) % 2 == 0 { OpDirection::Forward } else { OpDirection::Adjoint };
                    let (in_len, out_len) = reference.shape().io_lens(dir);
                    let x = request_input(in_len, t, i);
                    let got = service.submit("op", dir, x.clone()).unwrap().wait().unwrap();
                    let mut want = vec![0.0; out_len];
                    reference.apply_into(dir, &x, &mut want).unwrap();
                    assert_bits_eq(&got, &want, &format!("thread {t} request {i} {dir:?}"));
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.completed, (SUBMITTERS * PER_THREAD) as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.expired, 0);
    drop(service);

    // Every batch window returned its checkout; retention stayed bounded.
    assert_eq!(served.workspaces_in_flight(), 0);
    assert!(
        served.workspaces_pooled() <= workspace_retention_cap(),
        "pool retains {} > cap {}",
        served.workspaces_pooled(),
        workspace_retention_cap()
    );
}

#[test]
fn direct_concurrent_batch_windows_never_alias() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 12;
    const BATCH: usize = 4;

    let shared = Arc::new(build_pipeline(23));
    let reference = build_pipeline(23);
    let shape = shared.shape();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            let reference = &reference;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let dir =
                        if (t + r) % 2 == 0 { OpDirection::Forward } else { OpDirection::Adjoint };
                    let (in_len, out_len) = shape.io_lens(dir);
                    let mut inputs = Vec::with_capacity(BATCH * in_len);
                    for b in 0..BATCH {
                        inputs.extend_from_slice(&request_input(in_len, t, r * BATCH + b));
                    }
                    let mut outputs = vec![0.0; BATCH * out_len];
                    shared.apply_many_into(dir, &inputs, &mut outputs).unwrap();

                    let mut want = vec![0.0; out_len];
                    for (b, (x, got)) in
                        inputs.chunks_exact(in_len).zip(outputs.chunks_exact(out_len)).enumerate()
                    {
                        reference.apply_into(dir, x, &mut want).unwrap();
                        assert_bits_eq(got, &want, &format!("thread {t} round {r} item {b}"));
                    }
                }
            });
        }
    });

    assert_eq!(shared.workspaces_in_flight(), 0);
    assert!(shared.workspaces_peak_in_flight() >= 1);
    assert!(shared.workspaces_pooled() <= workspace_retention_cap());
}
