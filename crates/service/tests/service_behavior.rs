//! Contract tests for the queue discipline: typed rejections, deadline
//! expiry, admission control, panic isolation, shutdown drain, and the
//! counters the load harness gates on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fftmatvec_core::{
    BlockToeplitzOperator, FftMatvec, LinearOperator, OpDirection, OpError, OpShape,
};
use fftmatvec_numeric::SplitMix64;
use fftmatvec_service::{block_on, OperatorRegistry, Service, ServiceConfig, ServiceError};

const ND: usize = 2;
const NM: usize = 3;
const NT: usize = 16;

fn registry() -> Arc<OperatorRegistry> {
    let mut rng = SplitMix64::new(7);
    let mut col = vec![0.0; NT * ND * NM];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    let reg = Arc::new(OperatorRegistry::new());
    reg.register_fft(
        "tomo",
        FftMatvec::builder(
            BlockToeplitzOperator::from_first_block_column(ND, NM, NT, &col).unwrap(),
        ),
    )
    .unwrap();
    reg
}

/// A config whose batch window never closes on its own: deterministic
/// backdrop for queue-state tests.
fn frozen_window() -> ServiceConfig {
    ServiceConfig {
        max_batch: 64,
        max_delay: Duration::from_secs(3600),
        queue_capacity: 1024,
        workers: 1,
    }
}

#[test]
fn unknown_operator_is_rejected_at_submit() {
    let service = Service::new(registry(), ServiceConfig::default());
    let err = service.submit("nope", OpDirection::Forward, vec![0.0; NM * NT]).unwrap_err();
    assert_eq!(err, ServiceError::UnknownOperator("nope".into()));
    assert_eq!(service.stats().rejected, 1);
}

#[test]
fn wrong_shape_is_rejected_at_submit() {
    let service = Service::new(registry(), ServiceConfig::default());
    // Forward expects cols = NM*NT; offer the adjoint length instead.
    let err = service.submit("tomo", OpDirection::Forward, vec![0.0; ND * NT]).unwrap_err();
    assert_eq!(
        err,
        ServiceError::Shape(OpError::InputLength {
            dir: OpDirection::Forward,
            expected: NM * NT,
            got: ND * NT,
        })
    );
    // The typed chain reaches the OpError for logging.
    use std::error::Error;
    assert!(err.source().is_some());
}

#[test]
fn zero_deadline_expires_instead_of_computing() {
    let service = Service::new(registry(), frozen_window());
    let ticket = service
        .submit_with_deadline("tomo", OpDirection::Forward, vec![1.0; NM * NT], Duration::ZERO)
        .unwrap();
    match ticket.wait().unwrap_err() {
        ServiceError::DeadlineExceeded { operator, .. } => assert_eq!(operator, "tomo"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.batches, 0, "an expired request must never execute");
}

#[test]
fn generous_deadline_completes_normally() {
    let service = Service::new(registry(), ServiceConfig::default());
    let ticket = service
        .submit_with_deadline(
            "tomo",
            OpDirection::Adjoint,
            vec![1.0; ND * NT],
            Duration::from_secs(30),
        )
        .unwrap();
    assert_eq!(ticket.wait().unwrap().len(), NM * NT);
}

#[test]
fn full_lane_sheds_load_with_overloaded() {
    let mut cfg = frozen_window();
    cfg.queue_capacity = 2;
    let service = Service::new(registry(), cfg);
    let _t0 = service.submit("tomo", OpDirection::Forward, vec![0.5; NM * NT]).unwrap();
    let _t1 = service.submit("tomo", OpDirection::Forward, vec![0.5; NM * NT]).unwrap();
    let err = service.submit("tomo", OpDirection::Forward, vec![0.5; NM * NT]).unwrap_err();
    assert_eq!(err, ServiceError::Overloaded { operator: "tomo".into(), queued: 2, capacity: 2 });
    // Capacity is per lane: the adjoint lane still admits.
    let _t2 = service.submit("tomo", OpDirection::Adjoint, vec![0.5; ND * NT]).unwrap();
    assert_eq!(service.queued(), 3);
}

/// Operator whose forward apply panics on demand — the service must
/// contain the panic to the affected window and keep serving.
struct Landmine {
    armed: AtomicUsize,
}

impl LinearOperator for Landmine {
    fn shape(&self) -> OpShape {
        OpShape::new(4, 4)
    }
    fn apply_forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        if self
            .armed
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |a| Some(a.saturating_sub(1)))
            .unwrap()
            > 0
        {
            panic!("landmine triggered");
        }
        out.copy_from_slice(input);
        Ok(())
    }
    fn apply_adjoint_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        out.copy_from_slice(input);
        Ok(())
    }
}

#[test]
fn worker_survives_operator_panics() {
    let reg = registry();
    reg.register("mine", Arc::new(Landmine { armed: AtomicUsize::new(1) }));
    let service = Service::new(Arc::clone(&reg), ServiceConfig::default());

    let boom = service.submit("mine", OpDirection::Forward, vec![1.0; 4]).unwrap();
    assert_eq!(boom.wait().unwrap_err(), ServiceError::WorkerPanicked { operator: "mine".into() });

    // The same worker thread keeps serving: the disarmed landmine and
    // the FFT operator both complete afterwards.
    let ok = service.submit("mine", OpDirection::Forward, vec![2.0; 4]).unwrap();
    assert_eq!(ok.wait().unwrap(), vec![2.0; 4]);
    let fft = service.submit("tomo", OpDirection::Forward, vec![1.0; NM * NT]).unwrap();
    assert_eq!(fft.wait().unwrap().len(), ND * NT);
    let stats = service.stats();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, 2);
}

#[test]
fn shutdown_rejects_new_work_and_drains_old() {
    let mut service = Service::new(registry(), frozen_window());
    let queued = service.submit("tomo", OpDirection::Forward, vec![1.0; NM * NT]).unwrap();
    service.shutdown();
    // Queued work completed during the drain despite the frozen window.
    assert_eq!(queued.wait().unwrap().len(), ND * NT);
    // New work is refused.
    let err = service.submit("tomo", OpDirection::Forward, vec![1.0; NM * NT]).unwrap_err();
    assert_eq!(err, ServiceError::ShuttingDown);
}

#[test]
fn deregistered_operator_fails_queued_requests_typed() {
    let reg = registry();
    let mut service = Service::new(Arc::clone(&reg), frozen_window());
    let ticket = service.submit("tomo", OpDirection::Forward, vec![1.0; NM * NT]).unwrap();
    assert!(reg.deregister("tomo"));
    // The drain discovers the operator is gone and rejects rather than
    // hanging the caller.
    service.shutdown();
    assert_eq!(ticket.wait().unwrap_err(), ServiceError::UnknownOperator("tomo".into()));
}

#[test]
fn tickets_are_futures() {
    let service = Service::new(registry(), ServiceConfig::default());
    let out = block_on(async {
        let ticket = service.submit("tomo", OpDirection::Forward, vec![1.0; NM * NT]).unwrap();
        ticket.await
    })
    .unwrap();
    assert_eq!(out.len(), ND * NT);
}

#[test]
fn stats_counters_reconcile() {
    let service = Service::new(registry(), ServiceConfig::default());
    for i in 0..6 {
        let x = vec![i as f64; NM * NT];
        service.submit("tomo", OpDirection::Forward, x).unwrap().wait().unwrap();
    }
    let _ = service.submit("missing", OpDirection::Forward, vec![0.0; 4]).unwrap_err();
    let stats = service.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.batched_requests, 6);
    assert_eq!(stats.latencies_ns.len(), 6);
    assert!(stats.mean_batch() >= 1.0);
    let p50 = stats.latency_quantile_us(0.5).unwrap();
    let p99 = stats.latency_quantile_us(0.99).unwrap();
    assert!(p50 > 0.0 && p99 >= p50, "quantiles must be positive and ordered");
    assert!(stats.latency_quantile_us(0.0).unwrap() <= p50);
}
