//! Backend construction and the portability registration hook.
//!
//! [`create`] maps a resolved [`BackendKind`] to a live backend. The CPU
//! and simulated backends are constructed here directly. The portability
//! backend lives *above* this crate in the dependency DAG
//! (`fftmatvec-portability` needs the hipify pipeline), so it registers a
//! factory through [`register_portability`]; selecting
//! [`BackendKind::Portability`] before that registration is a typed
//! [`BackendError::Unavailable`], never a panic.

use std::sync::{Arc, OnceLock};

use crate::cpu::CpuPool;
use crate::error::BackendError;
use crate::kind::BackendKind;
use crate::simulated::SimulatedDevice;
use crate::traits::DeviceBackend;

/// Factory signature for externally registered backends.
pub type BackendFactory = fn() -> Result<Arc<dyn DeviceBackend>, BackendError>;

static PORTABILITY: OnceLock<BackendFactory> = OnceLock::new();

/// Register the portability backend factory (called by
/// `fftmatvec_portability::install()`). Returns `false` if a factory was
/// already registered (the first registration wins; re-installs are
/// harmless no-ops).
pub fn register_portability(factory: BackendFactory) -> bool {
    PORTABILITY.set(factory).is_ok()
}

/// Whether a portability factory has been registered in this process.
pub fn portability_registered() -> bool {
    PORTABILITY.get().is_some()
}

/// Construct a live backend for `kind`. Each call returns a fresh
/// instance (fresh transfer ledger / modeled clock) so operators never
/// alias accounting state.
pub fn create(kind: BackendKind) -> Result<Arc<dyn DeviceBackend>, BackendError> {
    match kind {
        BackendKind::Cpu => Ok(Arc::new(CpuPool::new())),
        BackendKind::Simulated => Ok(Arc::new(SimulatedDevice::default())),
        BackendKind::Portability => match PORTABILITY.get() {
            Some(factory) => factory(),
            None => Err(BackendError::Unavailable {
                backend: "portability",
                reason: "no portability backend registered in this process; call \
                         fftmatvec_portability::install() first"
                    .into(),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_simulated_construct_fresh_instances() {
        let a = create(BackendKind::Cpu).unwrap();
        let b = create(BackendKind::Cpu).unwrap();
        assert_eq!(a.kind(), BackendKind::Cpu);
        a.record_upload(64);
        assert_eq!(a.transfers().bytes_up, 64);
        assert_eq!(b.transfers().bytes_up, 0, "ledgers must not alias");
        let sim = create(BackendKind::Simulated).unwrap();
        assert_eq!(sim.kind(), BackendKind::Simulated);
        assert!(sim.modeled_times().is_some());
    }

    #[test]
    fn unregistered_portability_is_a_typed_error() {
        // This test must not race with a registration from another test
        // binary: within this crate nothing registers, so the factory is
        // absent and selection fails typed.
        if portability_registered() {
            return;
        }
        match create(BackendKind::Portability) {
            Err(BackendError::Unavailable { backend, .. }) => assert_eq!(backend, "portability"),
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }
}
