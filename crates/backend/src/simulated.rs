//! [`SimulatedDevice`] — the `fftmatvec-gpu` analytical cost model recast
//! as a [`DeviceBackend`].
//!
//! Arithmetic executes on the CPU through the exact same kernels as
//! [`crate::CpuPool`] (so results are bit-identical — the determinism
//! gate runs a `FFTMATVEC_BACKEND=simulated` leg to pin this), but every
//! primitive also books the modeled wall time of the corresponding GPU
//! launch into a [`PhaseTimes`] ledger. That makes the backend the
//! cost-model front door: the free-standing `estimate_time` /
//! `achieved_bandwidth` entry points of `fftmatvec-gpu` are methods here
//! ([`SimulatedDevice::estimate`], [`SimulatedDevice::achieved_bandwidth`],
//! [`SimulatedDevice::efficiency`]), and the accumulated
//! [`SimulatedDevice::modeled`] snapshot is what the autotuner
//! calibration and the distributed-placement tests consume.
//!
//! Phase attribution: forward FFTs book [`Phase::Fft`], inverse FFTs
//! [`Phase::Ifft`], the pointwise symbol multiply [`Phase::Sbgemv`] (it
//! *is* the degenerate 1×1 SBGEMV of the multi-level pipelines),
//! phase-boundary casts [`Phase::Pad`] (they are fused into the
//! pad/boundary streaming traffic on a real device), and transfers plus
//! tree reductions [`Phase::Comm`]. Host↔device transfers are charged at
//! [`HOST_LINK_BYTES_PER_SEC`] — a PCIe Gen5 x16-class link, deliberately
//! far below HBM bandwidth so placement tests see the transfer cliff the
//! paper's Section 2.4 setup amortizes away.

use std::sync::{Arc, Mutex};

use fftmatvec_gpu::kernel::dtype_for;
use fftmatvec_gpu::{DeviceSpec, KernelProfile, Phase, PhaseTimes};
use fftmatvec_numeric::{ComplexBuffer, Precision, RealBuffer};

use crate::cpu::{
    cast_complex_impl, cast_real_impl, download_impl, new_cpu_fft, pointwise_impl,
    tree_reduce_impl, upload_impl,
};
use crate::error::BackendError;
use crate::kind::BackendKind;
use crate::traits::{BatchFft, DeviceBackend, TransferStats};

/// Modeled host↔device link bandwidth (bytes/s): PCIe Gen5 x16 class.
pub const HOST_LINK_BYTES_PER_SEC: f64 = 64e9;

/// Read+write sweeps a batched shared-memory GPU FFT of a few thousand
/// points makes over its data (same constant the phase simulator in
/// `fftmatvec-core` uses).
const FFT_PASSES: f64 = 2.0;

#[derive(Debug, Default)]
struct SimState {
    times: PhaseTimes,
    stats: TransferStats,
}

/// A simulated GPU: CPU execution, modeled device timings.
#[derive(Debug)]
pub struct SimulatedDevice {
    spec: DeviceSpec,
    state: Arc<Mutex<SimState>>,
}

impl Default for SimulatedDevice {
    /// The paper's middle device (MI300X) — the lineup's representative
    /// tuned part.
    fn default() -> Self {
        Self::mi300x()
    }
}

impl SimulatedDevice {
    /// Simulate an arbitrary device specification.
    pub fn new(spec: DeviceSpec) -> Self {
        SimulatedDevice { spec, state: Arc::new(Mutex::new(SimState::default())) }
    }

    /// One MI250X Graphics Compute Die (CDNA2).
    pub fn mi250x_gcd() -> Self {
        Self::new(DeviceSpec::mi250x_gcd())
    }

    /// AMD Instinct MI300X (CDNA3).
    pub fn mi300x() -> Self {
        Self::new(DeviceSpec::mi300x())
    }

    /// AMD Instinct MI355X (CDNA4, untuned rocBLAS caps).
    pub fn mi355x() -> Self {
        Self::new(DeviceSpec::mi355x())
    }

    /// The paper's three evaluation devices, in presentation order.
    pub fn paper_lineup() -> Vec<SimulatedDevice> {
        DeviceSpec::paper_lineup().into_iter().map(Self::new).collect()
    }

    /// The simulated device's specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Modeled wall time of one kernel launch on this device — the
    /// cost-model front door (formerly reached through
    /// `KernelProfile::estimate_time` + a free-standing `DeviceSpec`).
    pub fn estimate(&self, kernel: &KernelProfile) -> f64 {
        kernel.estimate_time(&self.spec)
    }

    /// Modeled achieved fraction of peak bandwidth for a launch.
    pub fn efficiency(&self, kernel: &KernelProfile) -> f64 {
        kernel.efficiency(&self.spec)
    }

    /// Modeled achieved bandwidth (bytes/s) — the `rocblas-bench` metric
    /// Figure 1 plots.
    pub fn achieved_bandwidth(&self, kernel: &KernelProfile) -> f64 {
        kernel.achieved_bandwidth(&self.spec)
    }

    /// Snapshot of the modeled per-phase device times accumulated since
    /// construction or the last [`DeviceBackend::reset_transfers`].
    pub fn modeled(&self) -> PhaseTimes {
        self.state.lock().unwrap().times.clone()
    }

    fn book(&self, phase: Phase, seconds: f64) {
        self.state.lock().unwrap().times.add(phase, seconds);
    }

    fn book_link(&self, bytes: usize) {
        self.book(Phase::Comm, self.spec.launch_latency + bytes as f64 / HOST_LINK_BYTES_PER_SEC);
    }
}

/// Tier FFT handle that executes on the CPU and books modeled device
/// time per batch.
#[derive(Debug)]
struct SimFft {
    inner: Arc<dyn BatchFft>,
    spec: DeviceSpec,
    state: Arc<Mutex<SimState>>,
}

impl SimFft {
    fn book_fft(&self, phase: Phase, name: &'static str, batch: usize) {
        let kernel = KernelProfile::fft(
            name,
            dtype_for(true, self.inner.tier()),
            self.inner.transform_len(),
            batch,
            FFT_PASSES,
        );
        self.state.lock().unwrap().times.add(phase, kernel.estimate_time(&self.spec));
    }
}

impl BatchFft for SimFft {
    fn tier(&self) -> Precision {
        self.inner.tier()
    }

    fn transform_len(&self) -> usize {
        self.inner.transform_len()
    }

    fn forward(&self, input: &RealBuffer, output: &mut ComplexBuffer) -> Result<(), BackendError> {
        self.inner.forward(input, output)?;
        self.book_fft(Phase::Fft, "sim_fft_forward", input.len() / self.transform_len().max(1));
        Ok(())
    }

    fn inverse(
        &self,
        spectrum: &ComplexBuffer,
        output: &mut RealBuffer,
    ) -> Result<(), BackendError> {
        self.inner.inverse(spectrum, output)?;
        self.book_fft(Phase::Ifft, "sim_fft_inverse", output.len() / self.transform_len().max(1));
        Ok(())
    }

    fn scratch_pooled(&self) -> usize {
        self.inner.scratch_pooled()
    }

    fn plan_handle_f64(&self) -> Option<fftmatvec_fft::RealPlanHandle<f64>> {
        self.inner.plan_handle_f64()
    }
}

impl DeviceBackend for SimulatedDevice {
    fn kind(&self) -> BackendKind {
        BackendKind::Simulated
    }

    fn name(&self) -> &'static str {
        self.spec.name
    }

    fn upload_f64(
        &self,
        src: &[f64],
        p: Precision,
        dst: &mut RealBuffer,
    ) -> Result<(), BackendError> {
        upload_impl(src, p, dst);
        self.record_upload(std::mem::size_of_val(src));
        Ok(())
    }

    fn download_f64(&self, src: &RealBuffer, dst: &mut [f64]) -> Result<(), BackendError> {
        download_impl(src, dst)?;
        self.record_download(std::mem::size_of_val(dst));
        Ok(())
    }

    fn record_upload(&self, bytes: usize) {
        {
            let mut st = self.state.lock().unwrap();
            st.stats.uploads += 1;
            st.stats.bytes_up += bytes as u64;
        }
        self.book_link(bytes);
    }

    fn record_download(&self, bytes: usize) {
        {
            let mut st = self.state.lock().unwrap();
            st.stats.downloads += 1;
            st.stats.bytes_down += bytes as u64;
        }
        self.book_link(bytes);
    }

    fn transfers(&self) -> TransferStats {
        self.state.lock().unwrap().stats
    }

    fn reset_transfers(&self) {
        let mut st = self.state.lock().unwrap();
        st.stats = TransferStats::default();
        st.times.clear();
    }

    fn real_fft(&self, p: Precision, n: usize) -> Result<Arc<dyn BatchFft>, BackendError> {
        Ok(Arc::new(SimFft {
            inner: new_cpu_fft(p, n),
            spec: self.spec.clone(),
            state: Arc::clone(&self.state),
        }))
    }

    fn pointwise_multiply(
        &self,
        io: &mut ComplexBuffer,
        sym: &ComplexBuffer,
        conj: bool,
    ) -> Result<(), BackendError> {
        pointwise_impl(io, sym, conj)?;
        // The degenerate 1×1 SBGEMV: read grid + symbol, write grid.
        let kernel = KernelProfile::streaming(
            "sim_pointwise",
            dtype_for(true, sym.precision()),
            (io.bytes() + sym.bytes()) as f64,
            io.bytes() as f64,
        );
        self.book(Phase::Sbgemv, self.estimate(&kernel));
        Ok(())
    }

    fn cast_real(
        &self,
        src: &RealBuffer,
        p: Precision,
        dst: &mut RealBuffer,
    ) -> Result<(), BackendError> {
        cast_real_impl(src, p, dst);
        let kernel = KernelProfile::streaming(
            "sim_cast_real",
            dtype_for(false, p),
            src.bytes() as f64,
            dst.bytes() as f64,
        );
        self.book(Phase::Pad, self.estimate(&kernel));
        Ok(())
    }

    fn cast_complex(
        &self,
        src: &ComplexBuffer,
        p: Precision,
        dst: &mut ComplexBuffer,
    ) -> Result<(), BackendError> {
        cast_complex_impl(src, p, dst);
        let kernel = KernelProfile::streaming(
            "sim_cast_complex",
            dtype_for(true, p),
            src.bytes() as f64,
            dst.bytes() as f64,
        );
        self.book(Phase::Pad, self.estimate(&kernel));
        Ok(())
    }

    fn tree_reduce(&self, flat: &mut RealBuffer, len: usize) -> Result<(), BackendError> {
        tree_reduce_impl(flat, len)?;
        // Log-depth reduction: each level halves the live data; total
        // traffic is ~1 read of the flat buffer plus ~half of it written.
        let kernel = KernelProfile::streaming(
            "sim_tree_reduce",
            dtype_for(false, flat.precision()),
            flat.bytes() as f64,
            (flat.bytes() / 2) as f64,
        );
        self.book(Phase::Comm, self.estimate(&kernel));
        Ok(())
    }

    fn modeled_times(&self) -> Option<PhaseTimes> {
        Some(self.modeled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPool;

    #[test]
    fn executes_bit_identically_to_cpu_pool() {
        let sim = SimulatedDevice::mi300x();
        let cpu = CpuPool::new();
        let n = 24;
        let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.1).cos()).collect();
        let input = RealBuffer::from_f64(Precision::Single, &x);
        let fft_s = sim.real_fft(Precision::Single, n).unwrap();
        let fft_c = cpu.real_fft(Precision::Single, n).unwrap();
        let mut spec_s = ComplexBuffer::zeros(Precision::Single, 2 * (n / 2 + 1));
        let mut spec_c = ComplexBuffer::zeros(Precision::Single, 2 * (n / 2 + 1));
        fft_s.forward(&input, &mut spec_s).unwrap();
        fft_c.forward(&input, &mut spec_c).unwrap();
        for i in 0..spec_s.len() {
            assert_eq!(spec_s.get(i), spec_c.get(i), "bin {i}");
        }
    }

    #[test]
    fn primitives_book_modeled_phase_time() {
        let sim = SimulatedDevice::mi250x_gcd();
        assert_eq!(sim.modeled().total(), 0.0);
        let n = 16;
        let fft = sim.real_fft(Precision::Double, n).unwrap();
        let input = RealBuffer::zeros(Precision::Double, 4 * n);
        let mut spec = ComplexBuffer::zeros(Precision::Double, 4 * (n / 2 + 1));
        fft.forward(&input, &mut spec).unwrap();
        let t = sim.modeled();
        assert!(t.get(Phase::Fft) > 0.0);
        assert_eq!(t.get(Phase::Ifft), 0.0);
        let mut out = RealBuffer::zeros(Precision::Double, 4 * n);
        fft.inverse(&spec, &mut out).unwrap();
        assert!(sim.modeled().get(Phase::Ifft) > 0.0);

        let sym = ComplexBuffer::zeros(Precision::Double, spec.len());
        sim.pointwise_multiply(&mut spec, &sym, false).unwrap();
        assert!(sim.modeled().get(Phase::Sbgemv) > 0.0);

        let mut cast = RealBuffer::zeros(Precision::Single, 0);
        sim.cast_real(&out, Precision::Single, &mut cast).unwrap();
        assert!(sim.modeled().get(Phase::Pad) > 0.0);

        sim.reset_transfers();
        assert_eq!(sim.modeled().total(), 0.0);
    }

    #[test]
    fn transfers_are_counted_and_charged_to_comm() {
        let sim = SimulatedDevice::mi355x();
        let host = vec![1.0f64; 1000];
        let mut dev = RealBuffer::zeros(Precision::Double, 0);
        sim.upload_f64(&host, Precision::Double, &mut dev).unwrap();
        let mut back = vec![0.0f64; 1000];
        sim.download_f64(&dev, &mut back).unwrap();
        let stats = sim.transfers();
        assert_eq!(stats.uploads, 1);
        assert_eq!(stats.downloads, 1);
        assert_eq!(stats.bytes_up, 8000);
        assert_eq!(stats.bytes_down, 8000);
        let comm = sim.modeled().get(Phase::Comm);
        // Two launches + 16 kB over the 64 GB/s link.
        let floor = 2.0 * sim.spec().launch_latency + 16000.0 / HOST_LINK_BYTES_PER_SEC;
        assert!((comm - floor).abs() < 1e-12, "comm={comm} floor={floor}");
    }

    #[test]
    fn cost_model_front_door_matches_kernel_profile() {
        let sim = SimulatedDevice::mi300x();
        let k = KernelProfile::fft("probe", dtype_for(true, Precision::Double), 2000, 512, 2.0);
        assert_eq!(sim.estimate(&k), k.estimate_time(sim.spec()));
        assert_eq!(sim.efficiency(&k), k.efficiency(sim.spec()));
        assert_eq!(sim.achieved_bandwidth(&k), k.achieved_bandwidth(sim.spec()));
        assert_eq!(SimulatedDevice::paper_lineup().len(), 3);
    }
}
