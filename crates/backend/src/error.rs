//! Typed backend errors.
//!
//! Every failure mode of backend selection and primitive dispatch is a
//! [`BackendError`] variant — selection of an unknown or unregistered
//! backend is a build-time error, never a panic. The variant set is
//! `#[non_exhaustive]` so real GPU backends can add failure modes (device
//! OOM, driver loss) without a major version bump. `fftmatvec-core` lifts
//! this type into its `OpError`/`ConfigError` chains with `source()`
//! threading.

use std::fmt;

use fftmatvec_numeric::Precision;

/// What went wrong inside (or while selecting) a device backend.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum BackendError {
    /// A backend name (builder string or `FFTMATVEC_BACKEND` value) did
    /// not match any registered [`crate::BackendKind`].
    UnknownBackend {
        /// The name as given.
        name: String,
    },
    /// The selected backend exists but cannot run here — e.g. the
    /// portability backend in an offline environment with no GPU
    /// toolchain, or before `fftmatvec-portability` registered it.
    Unavailable {
        /// Stable name of the backend that refused.
        backend: &'static str,
        /// Human-readable explanation (what is missing, how to get it).
        reason: String,
    },
    /// A primitive was handed a buffer in a different precision tier than
    /// the one it was planned for.
    TierMismatch {
        /// Which primitive rejected the call.
        what: &'static str,
        /// The tier the handle was created for.
        expected: Precision,
        /// The tier of the offending buffer.
        got: Precision,
    },
    /// A primitive was handed buffers of inconsistent lengths.
    LengthMismatch {
        /// Which length constraint was violated.
        what: &'static str,
        /// The required length (or divisor, for batched constraints).
        expected: usize,
        /// The length received.
        got: usize,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::UnknownBackend { name } => {
                write!(f, "unknown backend {name:?} (expected one of: cpu, simulated, portability)")
            }
            BackendError::Unavailable { backend, reason } => {
                write!(f, "backend {backend:?} is unavailable: {reason}")
            }
            BackendError::TierMismatch { what, expected, got } => {
                write!(f, "{what}: buffer tier {got:?} does not match planned tier {expected:?}")
            }
            BackendError::LengthMismatch { what, expected, got } => {
                write!(f, "{what}: length {got} incompatible with {expected}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = BackendError::UnknownBackend { name: "tpu".into() };
        assert!(e.to_string().contains("tpu"));
        assert!(e.to_string().contains("simulated"));
        let e =
            BackendError::Unavailable { backend: "portability", reason: "no GPU toolchain".into() };
        assert!(e.to_string().contains("portability"));
        assert!(e.to_string().contains("toolchain"));
        let e = BackendError::TierMismatch {
            what: "fft",
            expected: Precision::Double,
            got: Precision::Single,
        };
        assert!(e.to_string().contains("Single"));
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> =
            Box::new(BackendError::UnknownBackend { name: "x".into() });
        assert!(e.source().is_none());
    }
}
