//! The [`DeviceBackend`] and [`BatchFft`] traits plus the transfer
//! accounting type.
//!
//! Both traits are object-safe: the pipeline crates hold
//! `Arc<dyn DeviceBackend>` / `Arc<dyn BatchFft>` and never name a
//! concrete backend. Buffers are the workspace's tier-tagged
//! [`RealBuffer`]/[`ComplexBuffer`] enums — a backend that keeps device
//! memory would mirror them into device allocations behind the same
//! handle types; the shipping backends execute host-side, so the
//! "device buffer" *is* the host buffer and uploads/downloads are casts
//! plus accounting.

use std::fmt::Debug;
use std::sync::Arc;

use fftmatvec_fft::RealPlanHandle;
use fftmatvec_gpu::PhaseTimes;
use fftmatvec_numeric::{ComplexBuffer, Precision, RealBuffer};

use crate::error::BackendError;
use crate::kind::BackendKind;

/// Explicit host↔device transfer accounting.
///
/// `uploads`/`downloads` count *logical* transfer events (one per pipeline
/// edge crossing), `bytes_up`/`bytes_down` the payload they moved. The CPU
/// backend keeps the ledger at zero cost (relaxed atomics); the simulated
/// backend additionally charges modeled host-link time to `Phase::Comm`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Host→device transfer events.
    pub uploads: u64,
    /// Device→host transfer events.
    pub downloads: u64,
    /// Bytes moved host→device.
    pub bytes_up: u64,
    /// Bytes moved device→host.
    pub bytes_down: u64,
}

impl TransferStats {
    /// Total bytes crossing the link in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

/// A planned batched real-to-complex FFT on one backend, pinned to one
/// precision tier and one transform length.
///
/// Handles are created by [`DeviceBackend::real_fft`] and own their
/// scratch (plans themselves are shared through the process-wide plan
/// cache, so same-length handles alias the same twiddle tables). The
/// forward transform maps `batch` contiguous length-`n` real series to
/// `batch` packed spectra of `n/2 + 1` bins; the inverse is its scaled
/// adjoint.
pub trait BatchFft: Send + Sync + Debug {
    /// The precision tier this handle was planned for.
    fn tier(&self) -> Precision;

    /// Transform length `n` (the padded series length `2·N_t`).
    fn transform_len(&self) -> usize;

    /// Packed spectrum bins per transform: `n/2 + 1`.
    fn spectrum_len(&self) -> usize {
        self.transform_len() / 2 + 1
    }

    /// Batched R2C forward. `input.len()` must be a multiple of
    /// [`Self::transform_len`]; `output` must hold `batch ·
    /// spectrum_len()` bins in the handle's tier.
    fn forward(&self, input: &RealBuffer, output: &mut ComplexBuffer) -> Result<(), BackendError>;

    /// Batched C2R inverse (scaled by `1/n`), the adjoint layout of
    /// [`Self::forward`].
    fn inverse(
        &self,
        spectrum: &ComplexBuffer,
        output: &mut RealBuffer,
    ) -> Result<(), BackendError>;

    /// Scratch buffers currently parked in this handle's arena (the
    /// zero-alloc steady-state observable the workspace tests assert on).
    fn scratch_pooled(&self) -> usize;

    /// The shared `f64` plan handle, when this handle is the `f64` tier —
    /// callers use pointer equality to verify plan-cache sharing.
    fn plan_handle_f64(&self) -> Option<RealPlanHandle<f64>>;
}

/// One device backend: the five primitives every matvec path uses.
///
/// Implementations must be `Send + Sync` — one backend instance is shared
/// by every workspace of an operator and by the batched `apply_many`
/// rayon tasks.
pub trait DeviceBackend: Send + Sync + Debug {
    /// Which registered backend this is.
    fn kind(&self) -> BackendKind;

    /// Human-readable name for reports (device model for simulated
    /// backends).
    fn name(&self) -> &'static str;

    /// Allocate a zeroed device-resident real buffer.
    fn alloc_real(&self, p: Precision, n: usize) -> RealBuffer {
        RealBuffer::zeros(p, n)
    }

    /// Allocate a zeroed device-resident complex buffer.
    fn alloc_complex(&self, p: Precision, n: usize) -> ComplexBuffer {
        ComplexBuffer::zeros(p, n)
    }

    /// Copy host `f64` data into a device buffer in tier `p` (one rounding
    /// per element), recording the transfer.
    fn upload_f64(
        &self,
        src: &[f64],
        p: Precision,
        dst: &mut RealBuffer,
    ) -> Result<(), BackendError>;

    /// Copy a device buffer back to host `f64` (exact widening), recording
    /// the transfer.
    fn download_f64(&self, src: &RealBuffer, dst: &mut [f64]) -> Result<(), BackendError>;

    /// Account a host→device crossing of `bytes` that the pipeline
    /// performed in place (the CPU path's "upload" is the fused pad cast —
    /// no copy happens, but the edge is still a transfer on a real
    /// device).
    fn record_upload(&self, bytes: usize);

    /// Account a device→host crossing of `bytes` (the unpad edge).
    fn record_download(&self, bytes: usize);

    /// Snapshot of the transfer ledger.
    fn transfers(&self) -> TransferStats;

    /// Reset the transfer ledger (and modeled times, where kept).
    fn reset_transfers(&self);

    /// Plan a batched real FFT of length `n` in tier `p`.
    fn real_fft(&self, p: Precision, n: usize) -> Result<Arc<dyn BatchFft>, BackendError>;

    /// Pointwise frequency-domain symbol multiply `io ⊙= sym` (or
    /// `⊙= conj(sym)` for the adjoint). Tiers of `io` and `sym` must
    /// match.
    fn pointwise_multiply(
        &self,
        io: &mut ComplexBuffer,
        sym: &ComplexBuffer,
        conj: bool,
    ) -> Result<(), BackendError>;

    /// Batched phase-boundary cast of a real buffer into tier `p`
    /// (elementwise through `f64`: exact widening, a single correct
    /// rounding on narrowing). Resets `dst` to `(p, src.len())`.
    fn cast_real(
        &self,
        src: &RealBuffer,
        p: Precision,
        dst: &mut RealBuffer,
    ) -> Result<(), BackendError>;

    /// Batched phase-boundary cast of a complex buffer into tier `p`,
    /// same rounding contract as [`Self::cast_real`].
    fn cast_complex(
        &self,
        src: &ComplexBuffer,
        p: Precision,
        dst: &mut ComplexBuffer,
    ) -> Result<(), BackendError>;

    /// Bit-deterministic tree reduction: sum the `flat.len()/len` parts of
    /// `flat` into `flat[..len]` with a fixed association order
    /// (independent of thread count).
    fn tree_reduce(&self, flat: &mut RealBuffer, len: usize) -> Result<(), BackendError>;

    /// Modeled device phase times accumulated since the last reset, for
    /// backends that keep a clock ([`crate::SimulatedDevice`]); `None`
    /// for backends that execute for real.
    fn modeled_times(&self) -> Option<PhaseTimes> {
        None
    }
}
