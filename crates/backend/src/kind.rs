//! Backend identity and selection.
//!
//! [`BackendKind`] names the registered backends; [`BackendKind::resolve`]
//! implements the selection precedence **builder > environment > default**.
//! The environment override [`BACKEND_ENV`] mirrors `FFTMATVEC_SIMD` and is
//! read on every resolution (never cached), so test harnesses — the
//! determinism gate in particular — can set it per child process.

use std::fmt;
use std::str::FromStr;

use crate::error::BackendError;

/// Environment variable selecting the default backend when the builder
/// does not name one explicitly. Accepted values: `cpu`, `simulated`,
/// `portability` (case-insensitive). Unknown values are a typed
/// [`BackendError::UnknownBackend`] at build time.
pub const BACKEND_ENV: &str = "FFTMATVEC_BACKEND";

/// Which device backend executes the pipeline primitives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BackendKind {
    /// The rayon-pool + SIMD CPU kernels — bit-identical to the direct
    /// call path and the default.
    #[default]
    Cpu,
    /// CPU execution (same bits as [`BackendKind::Cpu`]) plus modeled
    /// device timings from the `fftmatvec-gpu` cost model.
    Simulated,
    /// The CUDA/hipify kernel sources from `fftmatvec-portability`;
    /// validates offline, returns `Unavailable` at execution time.
    Portability,
}

impl BackendKind {
    /// Stable lowercase name (the value accepted by [`BACKEND_ENV`]).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Cpu => "cpu",
            BackendKind::Simulated => "simulated",
            BackendKind::Portability => "portability",
        }
    }

    /// Read (and validate) the [`BACKEND_ENV`] override. `Ok(None)` when
    /// unset or blank; `Err` when set to an unknown name.
    pub fn from_env() -> Result<Option<Self>, BackendError> {
        match std::env::var(BACKEND_ENV) {
            Ok(s) if !s.trim().is_empty() => s.parse().map(Some),
            _ => Ok(None),
        }
    }

    /// Resolve the effective backend: an explicit builder choice wins,
    /// then the environment override, then [`BackendKind::Cpu`].
    pub fn resolve(explicit: Option<BackendKind>) -> Result<BackendKind, BackendError> {
        if let Some(kind) = explicit {
            return Ok(kind);
        }
        Ok(Self::from_env()?.unwrap_or_default())
    }
}

impl FromStr for BackendKind {
    type Err = BackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cpu" => Ok(BackendKind::Cpu),
            "simulated" => Ok(BackendKind::Simulated),
            "portability" => Ok(BackendKind::Portability),
            _ => Err(BackendError::UnknownBackend { name: s.trim().to_string() }),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for kind in [BackendKind::Cpu, BackendKind::Simulated, BackendKind::Portability] {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!("  Simulated ".parse::<BackendKind>().unwrap(), BackendKind::Simulated);
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = "tpu".parse::<BackendKind>().unwrap_err();
        assert_eq!(err, BackendError::UnknownBackend { name: "tpu".into() });
    }

    #[test]
    fn explicit_choice_beats_everything() {
        assert_eq!(
            BackendKind::resolve(Some(BackendKind::Simulated)).unwrap(),
            BackendKind::Simulated
        );
    }

    #[test]
    fn default_is_cpu() {
        assert_eq!(BackendKind::default(), BackendKind::Cpu);
    }
}
