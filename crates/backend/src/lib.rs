//! # fftmatvec-backend — the device-dispatch seam
//!
//! The paper's claim is *performance portability*: the same FFT-based
//! block-Toeplitz algorithms running across CPU and GPU device tiers.
//! This crate is the seam that makes the claim structural instead of
//! aspirational: one object-safe [`DeviceBackend`] trait exposing exactly
//! the five primitives every matvec path in the workspace actually uses —
//!
//! 1. **typed device buffers** — alloc / upload / download with explicit
//!    transfer accounting ([`TransferStats`]);
//! 2. **batched real FFT execution** — [`BatchFft`] handles returned by
//!    [`DeviceBackend::real_fft`], one per precision tier;
//! 3. **pointwise complex multiply** — the degenerate 1×1 frequency-domain
//!    product the multi-level circulant pipelines run instead of SBGEMV;
//! 4. **batched cast** — the phase-boundary tier changes
//!    (double-rounding-safe, elementwise through `f64`);
//! 5. **tree-reduce** — the bit-deterministic partial-sum reduction the
//!    distributed matvec performs in its output precision.
//!
//! Three backends ship:
//!
//! * [`CpuPool`] — the rayon-pool + SIMD kernels the workspace has always
//!   run on, **bit-identical** to the direct call path and the default;
//! * [`SimulatedDevice`] — the `fftmatvec-gpu` analytical cost model
//!   recast as a backend: arithmetic executes on the CPU (same bits as
//!   [`CpuPool`]), but every primitive also books modeled device time
//!   into a [`fftmatvec_gpu::PhaseTimes`] ledger, and transfers are
//!   charged against a host-link bandwidth model;
//! * a **portability** backend registered by `fftmatvec-portability`
//!   (see [`registry::register_portability`]) that validates the real
//!   CUDA/HIP kernel sources as far as an offline environment allows and
//!   returns [`BackendError::Unavailable`] at execution time — the
//!   landing pad for real GPU execution.
//!
//! Selection precedence is **builder > environment > default**: an
//! explicit `.backend(..)` wins, otherwise the `FFTMATVEC_BACKEND`
//! environment variable (mirroring `FFTMATVEC_SIMD`; read per build, not
//! cached) is consulted, otherwise [`BackendKind::Cpu`]. Unknown or
//! unregistered selections are typed [`BackendError`]s, never panics.

pub mod cpu;
pub mod error;
pub mod kind;
pub mod registry;
pub mod simulated;
pub mod traits;

pub use cpu::CpuPool;
pub use error::BackendError;
pub use kind::{BackendKind, BACKEND_ENV};
pub use registry::{create, register_portability};
pub use simulated::SimulatedDevice;
pub use traits::{BatchFft, DeviceBackend, TransferStats};
