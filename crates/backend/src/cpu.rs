//! [`CpuPool`] — the default backend: the rayon-pool batched FFTs and
//! SIMD kernels the workspace has always executed, behind the
//! [`DeviceBackend`] trait.
//!
//! Every primitive here is the same code path the pre-trait pipeline ran
//! (batched FFTs through [`fftmatvec_fft::BatchedRealFft`], casts
//! elementwise through `f64`, the deterministic tree reduction from
//! `fftmatvec-comm`), so results are **bit-identical** to the direct call
//! path — the determinism gate pins this. Transfer accounting is a pair
//! of relaxed atomic counters; no copies are added to the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fftmatvec_comm::collectives::tree_reduce_sum_in_place;
use fftmatvec_fft::{BatchedRealFft, RealPlanHandle};
use fftmatvec_numeric::{bf16, f16, Complex, ComplexBuffer, Precision, Real, RealBuffer};

use crate::error::BackendError;
use crate::kind::BackendKind;
use crate::traits::{BatchFft, DeviceBackend, TransferStats};

/// The CPU-pool backend (default). Cheap to construct; each operator
/// build gets a fresh instance so transfer ledgers never alias.
#[derive(Debug, Default)]
pub struct CpuPool {
    uploads: AtomicU64,
    downloads: AtomicU64,
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
}

impl CpuPool {
    /// A fresh CPU backend with a zeroed transfer ledger.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One planned tier of the CPU batched real FFT. Fresh per
/// [`DeviceBackend::real_fft`] call (each handle owns its scratch arena);
/// the plan itself is deduplicated by the process-wide plan cache, so
/// same-length handles share twiddle tables.
struct CpuFft<T: Real> {
    tier: Precision,
    n: usize,
    engine: BatchedRealFft<T>,
}

impl<T: Real> std::fmt::Debug for CpuFft<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuFft").field("tier", &self.tier).field("n", &self.n).finish()
    }
}

impl<T: Real> CpuFft<T> {
    fn new(tier: Precision, n: usize) -> Self {
        CpuFft { tier, n, engine: BatchedRealFft::new(n) }
    }
}

macro_rules! impl_cpu_fft {
    ($ty:ty, $rvar:ident, $cvar:ident, $handle:expr) => {
        impl BatchFft for CpuFft<$ty> {
            fn tier(&self) -> Precision {
                self.tier
            }

            fn transform_len(&self) -> usize {
                self.n
            }

            fn forward(
                &self,
                input: &RealBuffer,
                output: &mut ComplexBuffer,
            ) -> Result<(), BackendError> {
                let v = match input {
                    RealBuffer::$rvar(v) => v,
                    other => {
                        return Err(BackendError::TierMismatch {
                            what: "batched FFT forward input",
                            expected: self.tier,
                            got: other.precision(),
                        })
                    }
                };
                let s = match output {
                    ComplexBuffer::$cvar(s) => s,
                    other => {
                        return Err(BackendError::TierMismatch {
                            what: "batched FFT forward output",
                            expected: self.tier,
                            got: other.precision(),
                        })
                    }
                };
                check_batch_lens(self.n, self.spectrum_len(), v.len(), s.len())?;
                self.engine.forward_batch(v, s);
                Ok(())
            }

            fn inverse(
                &self,
                spectrum: &ComplexBuffer,
                output: &mut RealBuffer,
            ) -> Result<(), BackendError> {
                let s = match spectrum {
                    ComplexBuffer::$cvar(s) => s,
                    other => {
                        return Err(BackendError::TierMismatch {
                            what: "batched FFT inverse input",
                            expected: self.tier,
                            got: other.precision(),
                        })
                    }
                };
                let v = match output {
                    RealBuffer::$rvar(v) => v,
                    other => {
                        return Err(BackendError::TierMismatch {
                            what: "batched FFT inverse output",
                            expected: self.tier,
                            got: other.precision(),
                        })
                    }
                };
                check_batch_lens(self.n, self.spectrum_len(), v.len(), s.len())?;
                self.engine.inverse_batch(s, v);
                Ok(())
            }

            fn scratch_pooled(&self) -> usize {
                self.engine.scratch_pooled()
            }

            fn plan_handle_f64(&self) -> Option<RealPlanHandle<f64>> {
                #[allow(clippy::redundant_closure_call)]
                ($handle)(self)
            }
        }
    };
}

impl_cpu_fft!(f16, F16, C16, |_s: &CpuFft<f16>| None);
impl_cpu_fft!(bf16, BF16, CB16, |_s: &CpuFft<bf16>| None);
impl_cpu_fft!(f32, F32, C32, |_s: &CpuFft<f32>| None);
impl_cpu_fft!(f64, F64, C64, |s: &CpuFft<f64>| Some(s.engine.plan_handle().clone()));

/// Validate the batched-FFT length contract: `time` holds whole
/// transforms and `spec` the matching packed spectra.
fn check_batch_lens(
    n: usize,
    nfreq: usize,
    time_len: usize,
    spec_len: usize,
) -> Result<(), BackendError> {
    if n == 0 || time_len % n != 0 {
        return Err(BackendError::LengthMismatch {
            what: "batched FFT time buffer (whole transforms required)",
            expected: n,
            got: time_len,
        });
    }
    let batch = time_len / n;
    if spec_len != batch * nfreq {
        return Err(BackendError::LengthMismatch {
            what: "batched FFT spectrum buffer",
            expected: batch * nfreq,
            got: spec_len,
        });
    }
    Ok(())
}

/// Construct the tier-matched CPU FFT handle.
pub(crate) fn new_cpu_fft(p: Precision, n: usize) -> Arc<dyn BatchFft> {
    match p {
        Precision::Half => Arc::new(CpuFft::<f16>::new(p, n)),
        Precision::BFloat16 => Arc::new(CpuFft::<bf16>::new(p, n)),
        Precision::Single => Arc::new(CpuFft::<f32>::new(p, n)),
        Precision::Double => Arc::new(CpuFft::<f64>::new(p, n)),
    }
}

/// Upload: host `f64` into tier `p` — one rounding per element.
pub(crate) fn upload_impl(src: &[f64], p: Precision, dst: &mut RealBuffer) {
    dst.reset_for_overwrite(p, src.len());
    fn fill<T: Real>(src: &[f64], v: &mut [T]) {
        for (o, &x) in v.iter_mut().zip(src) {
            *o = T::from_f64(x);
        }
    }
    match dst {
        RealBuffer::F16(v) => fill(src, v),
        RealBuffer::BF16(v) => fill(src, v),
        RealBuffer::F32(v) => fill(src, v),
        RealBuffer::F64(v) => fill(src, v),
    }
}

/// Download: tier buffer back to host `f64` — exact widening.
pub(crate) fn download_impl(src: &RealBuffer, dst: &mut [f64]) -> Result<(), BackendError> {
    if src.len() != dst.len() {
        return Err(BackendError::LengthMismatch {
            what: "download destination",
            expected: src.len(),
            got: dst.len(),
        });
    }
    for (i, o) in dst.iter_mut().enumerate() {
        *o = src.get(i);
    }
    Ok(())
}

/// Pointwise `io ⊙= sym` (`⊙= conj(sym)` when `conj`), both in the same
/// tier — the multi-level pipelines' Sbgemv phase.
pub(crate) fn pointwise_impl(
    io: &mut ComplexBuffer,
    sym: &ComplexBuffer,
    conj: bool,
) -> Result<(), BackendError> {
    if io.len() != sym.len() {
        return Err(BackendError::LengthMismatch {
            what: "pointwise symbol multiply",
            expected: sym.len(),
            got: io.len(),
        });
    }
    fn go<T: Real>(grid: &mut [Complex<T>], sym: &[Complex<T>], conj: bool) {
        if conj {
            for (g, s) in grid.iter_mut().zip(sym) {
                *g *= s.conj();
            }
        } else {
            for (g, s) in grid.iter_mut().zip(sym) {
                *g *= *s;
            }
        }
    }
    match (io, sym) {
        (ComplexBuffer::C16(g), ComplexBuffer::C16(s)) => go(g, s, conj),
        (ComplexBuffer::CB16(g), ComplexBuffer::CB16(s)) => go(g, s, conj),
        (ComplexBuffer::C32(g), ComplexBuffer::C32(s)) => go(g, s, conj),
        (ComplexBuffer::C64(g), ComplexBuffer::C64(s)) => go(g, s, conj),
        (io, sym) => {
            return Err(BackendError::TierMismatch {
                what: "pointwise symbol multiply",
                expected: sym.precision(),
                got: io.precision(),
            })
        }
    }
    Ok(())
}

/// Phase-boundary real cast into tier `p`, elementwise through `f64`
/// (exact widening, a single correct rounding on narrowing). Both
/// variants resolve once; the inner loop is a monomorphized
/// slice-to-slice cast.
pub(crate) fn cast_real_impl(src: &RealBuffer, p: Precision, dst: &mut RealBuffer) {
    dst.reset_for_overwrite(p, src.len());
    fn fill<Tin: Real, Tout: Real>(src: &[Tin], out: &mut [Tout]) {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = Tout::from_f64(x.to_f64());
        }
    }
    macro_rules! arms {
        ($s:expr, $($var:ident),+) => {
            match dst {
                $(RealBuffer::$var(o) => fill($s, o),)+
            }
        };
    }
    match src {
        RealBuffer::F16(s) => arms!(s, F16, BF16, F32, F64),
        RealBuffer::BF16(s) => arms!(s, F16, BF16, F32, F64),
        RealBuffer::F32(s) => arms!(s, F16, BF16, F32, F64),
        RealBuffer::F64(s) => arms!(s, F16, BF16, F32, F64),
    }
}

/// Phase-boundary complex cast into tier `p`, elementwise through `f64`
/// (exact widening, a single correct rounding per component on
/// narrowing). Both variants resolve once, like [`cast_real_impl`] — a
/// per-element enum match here costs ~3x on the pipeline's phase
/// boundaries, which the `bench_backend` dispatch gate would flag.
pub(crate) fn cast_complex_impl(src: &ComplexBuffer, p: Precision, dst: &mut ComplexBuffer) {
    dst.reset_for_overwrite(p, src.len());
    fn fill<Tin: Real, Tout: Real>(src: &[Complex<Tin>], out: &mut [Complex<Tout>]) {
        for (o, z) in out.iter_mut().zip(src) {
            *o = Complex::new(Tout::from_f64(z.re.to_f64()), Tout::from_f64(z.im.to_f64()));
        }
    }
    macro_rules! arms {
        ($s:expr, $($var:ident),+) => {
            match dst {
                $(ComplexBuffer::$var(o) => fill($s, o),)+
            }
        };
    }
    match src {
        ComplexBuffer::C16(s) => arms!(s, C16, CB16, C32, C64),
        ComplexBuffer::CB16(s) => arms!(s, C16, CB16, C32, C64),
        ComplexBuffer::C32(s) => arms!(s, C16, CB16, C32, C64),
        ComplexBuffer::C64(s) => arms!(s, C16, CB16, C32, C64),
    }
}

/// Deterministic tree reduction of the `flat.len()/len` parts into
/// `flat[..len]`.
pub(crate) fn tree_reduce_impl(flat: &mut RealBuffer, len: usize) -> Result<(), BackendError> {
    if len == 0 || flat.len() % len != 0 {
        return Err(BackendError::LengthMismatch {
            what: "tree-reduce buffer (whole parts required)",
            expected: len,
            got: flat.len(),
        });
    }
    match flat {
        RealBuffer::F16(v) => tree_reduce_sum_in_place(v, len),
        RealBuffer::BF16(v) => tree_reduce_sum_in_place(v, len),
        RealBuffer::F32(v) => tree_reduce_sum_in_place(v, len),
        RealBuffer::F64(v) => tree_reduce_sum_in_place(v, len),
    }
    Ok(())
}

impl DeviceBackend for CpuPool {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn name(&self) -> &'static str {
        "cpu-pool"
    }

    fn upload_f64(
        &self,
        src: &[f64],
        p: Precision,
        dst: &mut RealBuffer,
    ) -> Result<(), BackendError> {
        upload_impl(src, p, dst);
        self.record_upload(std::mem::size_of_val(src));
        Ok(())
    }

    fn download_f64(&self, src: &RealBuffer, dst: &mut [f64]) -> Result<(), BackendError> {
        download_impl(src, dst)?;
        self.record_download(std::mem::size_of_val(dst));
        Ok(())
    }

    fn record_upload(&self, bytes: usize) {
        self.uploads.fetch_add(1, Ordering::Relaxed);
        self.bytes_up.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn record_download(&self, bytes: usize) {
        self.downloads.fetch_add(1, Ordering::Relaxed);
        self.bytes_down.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn transfers(&self) -> TransferStats {
        TransferStats {
            uploads: self.uploads.load(Ordering::Relaxed),
            downloads: self.downloads.load(Ordering::Relaxed),
            bytes_up: self.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.bytes_down.load(Ordering::Relaxed),
        }
    }

    fn reset_transfers(&self) {
        self.uploads.store(0, Ordering::Relaxed);
        self.downloads.store(0, Ordering::Relaxed);
        self.bytes_up.store(0, Ordering::Relaxed);
        self.bytes_down.store(0, Ordering::Relaxed);
    }

    fn real_fft(&self, p: Precision, n: usize) -> Result<Arc<dyn BatchFft>, BackendError> {
        Ok(new_cpu_fft(p, n))
    }

    fn pointwise_multiply(
        &self,
        io: &mut ComplexBuffer,
        sym: &ComplexBuffer,
        conj: bool,
    ) -> Result<(), BackendError> {
        pointwise_impl(io, sym, conj)
    }

    fn cast_real(
        &self,
        src: &RealBuffer,
        p: Precision,
        dst: &mut RealBuffer,
    ) -> Result<(), BackendError> {
        cast_real_impl(src, p, dst);
        Ok(())
    }

    fn cast_complex(
        &self,
        src: &ComplexBuffer,
        p: Precision,
        dst: &mut ComplexBuffer,
    ) -> Result<(), BackendError> {
        cast_complex_impl(src, p, dst);
        Ok(())
    }

    fn tree_reduce(&self, flat: &mut RealBuffer, len: usize) -> Result<(), BackendError> {
        tree_reduce_impl(flat, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::C64;

    #[test]
    fn forward_inverse_roundtrip_f64() {
        let pool = CpuPool::new();
        let n = 16;
        let fft = pool.real_fft(Precision::Double, n).unwrap();
        assert_eq!(fft.tier(), Precision::Double);
        assert_eq!(fft.transform_len(), n);
        assert_eq!(fft.spectrum_len(), n / 2 + 1);
        let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let input = RealBuffer::from_f64(Precision::Double, &x);
        let mut spec = ComplexBuffer::zeros(Precision::Double, 2 * (n / 2 + 1));
        fft.forward(&input, &mut spec).unwrap();
        let mut back = RealBuffer::zeros(Precision::Double, 2 * n);
        fft.inverse(&spec, &mut back).unwrap();
        for i in 0..2 * n {
            assert!((back.get(i) - x[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn tier_and_length_mismatches_are_typed() {
        let pool = CpuPool::new();
        let fft = pool.real_fft(Precision::Double, 8).unwrap();
        let wrong_tier = RealBuffer::zeros(Precision::Single, 8);
        let mut spec = ComplexBuffer::zeros(Precision::Double, 5);
        assert!(matches!(
            fft.forward(&wrong_tier, &mut spec),
            Err(BackendError::TierMismatch { .. })
        ));
        let ragged = RealBuffer::zeros(Precision::Double, 9);
        assert!(matches!(
            fft.forward(&ragged, &mut spec),
            Err(BackendError::LengthMismatch { .. })
        ));
        let ok_in = RealBuffer::zeros(Precision::Double, 8);
        let mut short = ComplexBuffer::zeros(Precision::Double, 4);
        assert!(matches!(
            fft.forward(&ok_in, &mut short),
            Err(BackendError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn pointwise_matches_scalar_reference() {
        let pool = CpuPool::new();
        let a: Vec<C64> = (0..6).map(|i| C64::new(i as f64, 1.0 - i as f64)).collect();
        let b: Vec<C64> = (0..6).map(|i| C64::new(0.5 * i as f64, 0.25)).collect();
        let mut io = ComplexBuffer::from_c64(Precision::Double, &a);
        let sym = ComplexBuffer::from_c64(Precision::Double, &b);
        pool.pointwise_multiply(&mut io, &sym, false).unwrap();
        for i in 0..6 {
            let want = a[i] * b[i];
            let got = io.get(i);
            assert_eq!(got.re.to_bits(), want.re.to_bits());
            assert_eq!(got.im.to_bits(), want.im.to_bits());
        }
        let mut io = ComplexBuffer::from_c64(Precision::Double, &a);
        pool.pointwise_multiply(&mut io, &sym, true).unwrap();
        for i in 0..6 {
            let want = a[i] * b[i].conj();
            assert_eq!(io.get(i), want);
        }
    }

    #[test]
    fn casts_single_round_through_f64() {
        let pool = CpuPool::new();
        let src = RealBuffer::from_f64(Precision::Double, &[1.0 + 2f64.powi(-30), -2.0]);
        let mut dst = RealBuffer::zeros(Precision::Single, 0);
        pool.cast_real(&src, Precision::Single, &mut dst).unwrap();
        assert_eq!(dst.len(), 2);
        assert_eq!(dst.precision(), Precision::Single);
        assert_eq!(dst.get(0), 1.0);
        let csrc =
            ComplexBuffer::from_c64(Precision::Double, &[C64::new(1.0 + 2f64.powi(-30), -2.0)]);
        let mut cdst = ComplexBuffer::zeros(Precision::Half, 0);
        pool.cast_complex(&csrc, Precision::Single, &mut cdst).unwrap();
        assert_eq!(cdst.precision(), Precision::Single);
        assert_eq!(cdst.get(0), C64::new(1.0, -2.0));
    }

    #[test]
    fn tree_reduce_sums_parts_deterministically() {
        let pool = CpuPool::new();
        let mut flat =
            RealBuffer::from_f64(Precision::Double, &[1.0, 2.0, 10.0, 20.0, 100.0, 200.0]);
        pool.tree_reduce(&mut flat, 2).unwrap();
        assert_eq!(flat.get(0), 111.0);
        assert_eq!(flat.get(1), 222.0);
        let mut bad = RealBuffer::zeros(Precision::Double, 5);
        assert!(matches!(pool.tree_reduce(&mut bad, 2), Err(BackendError::LengthMismatch { .. })));
    }

    #[test]
    fn transfer_ledger_counts_events_and_bytes() {
        let pool = CpuPool::new();
        let host = [1.0f64, 2.0, 3.0];
        let mut dev = RealBuffer::zeros(Precision::Half, 0);
        pool.upload_f64(&host, Precision::Half, &mut dev).unwrap();
        let mut back = [0.0f64; 3];
        pool.download_f64(&dev, &mut back).unwrap();
        assert_eq!(back, [1.0, 2.0, 3.0]);
        let t = pool.transfers();
        assert_eq!(t.uploads, 1);
        assert_eq!(t.downloads, 1);
        assert_eq!(t.bytes_up, 24);
        assert_eq!(t.bytes_down, 24);
        assert_eq!(t.total_bytes(), 48);
        pool.reset_transfers();
        assert_eq!(pool.transfers(), TransferStats::default());
        assert!(pool.modeled_times().is_none());
    }

    #[test]
    fn f64_handle_exposes_the_shared_plan() {
        let pool = CpuPool::new();
        let a = pool.real_fft(Precision::Double, 24).unwrap();
        let b = pool.real_fft(Precision::Double, 24).unwrap();
        let (ha, hb) = (a.plan_handle_f64().unwrap(), b.plan_handle_f64().unwrap());
        assert!(Arc::ptr_eq(&ha, &hb), "same-length f64 handles must share the cached plan");
        assert!(pool.real_fft(Precision::Single, 24).unwrap().plan_handle_f64().is_none());
    }
}
