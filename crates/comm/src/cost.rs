//! The α–β communication cost model.
//!
//! Calibrated to the environment the paper reports (Section 4.2.2):
//! Frontier nodes with eight GCDs sharing ~100 GB/s of NIC bandwidth,
//! RCCL collectives whose effective per-step latency grows as a job spans
//! more of the machine (rendezvous + multi-rack routing), and messages of
//! 0.8–40 MB that end up *latency-bound* — which is why the paper finds
//! that communicating in lower precision buys little time but still costs
//! accuracy.

use crate::grid::ProcessGrid;

/// Network/collective cost model.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Per-step software latency for intra-node collectives (s).
    pub alpha_intra: f64,
    /// Per-step software latency for inter-node collectives (s).
    pub alpha_inter: f64,
    /// Intra-node (Infinity Fabric) bandwidth per GPU pair (bytes/s).
    pub intra_bw: f64,
    /// NIC bandwidth per node (bytes/s), shared by all GPUs on the node.
    pub nic_bw_per_node: f64,
    /// GPUs (GCDs) per node.
    pub gpus_per_node: usize,
    /// Node count at which span-dependent latency has doubled; models
    /// multi-rack software/routing overhead growth.
    pub latency_growth_nodes: f64,
}

impl NetworkModel {
    /// OLCF Frontier, per the paper's Section 4.2.2 configuration.
    /// `intra_bw` is the *effective* per-GPU Infinity Fabric bandwidth
    /// when all eight GCDs of a node communicate concurrently (each GCD
    /// pair shares ~50 GB/s links).
    pub fn frontier() -> Self {
        NetworkModel {
            alpha_intra: 3.0e-5,
            alpha_inter: 2.5e-4,
            intra_bw: 5.0e10,
            nic_bw_per_node: 1.0e11,
            gpus_per_node: 8,
            latency_growth_nodes: 64.0,
        }
    }

    /// Effective point-to-point bandwidth for one rank when `span` ranks
    /// communicate together.
    fn link_bw(&self, span: usize) -> f64 {
        if span <= self.gpus_per_node {
            self.intra_bw
        } else {
            self.nic_bw_per_node / self.gpus_per_node as f64
        }
    }

    /// Per-step latency for a communicator of `span` ranks. Inter-node
    /// latency grows quadratically with the node span — the multi-rack
    /// routing/rendezvous overhead that makes the paper's 4,096-GPU matvec
    /// communication-dominated (~0.1 s) despite ms-scale compute.
    fn alpha(&self, span: usize) -> f64 {
        if span <= self.gpus_per_node {
            self.alpha_intra
        } else {
            let nodes = (span as f64 / self.gpus_per_node as f64).ceil();
            let g = nodes / self.latency_growth_nodes;
            self.alpha_inter * (1.0 + g * g)
        }
    }

    /// One tree/ring step moving `bytes` within a `span`-rank communicator.
    pub fn step_time(&self, span: usize, bytes: f64) -> f64 {
        self.alpha(span) + bytes / self.link_bw(span)
    }

    /// Tree reduction of a `bytes`-sized vector over `p` ranks.
    pub fn reduce_time(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let steps = (p as f64).log2().ceil();
        steps * self.step_time(p, bytes)
    }

    /// Tree broadcast of `bytes` to `p` ranks.
    pub fn broadcast_time(&self, bytes: f64, p: usize) -> f64 {
        // Same tree shape as the reduction.
        self.reduce_time(bytes, p)
    }

    /// Ring allgather where each of `p` ranks contributes `bytes_per_rank`.
    pub fn allgather_time(&self, bytes_per_rank: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * self.step_time(p, bytes_per_rank)
    }

    /// Ring allreduce of a `bytes`-sized vector over `p` ranks
    /// (reduce-scatter + allgather).
    pub fn allreduce_time(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        2.0 * (p - 1) as f64 * self.step_time(p, bytes / p as f64)
    }

    /// Modeled F-matvec communication for a grid: phase 1 allgathers the
    /// column-partitioned input within each column (`p_r` ranks), phase 5
    /// tree-reduces the partial output across each row (`p_c` ranks).
    ///
    /// `m_col_bytes`: one column's full input slice; `d_row_bytes`: one
    /// row's output slice.
    pub fn forward_matvec_comm(
        &self,
        grid: &ProcessGrid,
        m_col_bytes: f64,
        d_row_bytes: f64,
    ) -> f64 {
        let gather = self.allgather_time(m_col_bytes / grid.rows as f64, grid.rows);
        let reduce = self.reduce_time(d_row_bytes, grid.cols);
        gather + reduce
    }

    /// Modeled F*-matvec communication: phase 1 broadcasts the row-
    /// partitioned data vector across each row, phase 5 reduces the
    /// partial parameter vector within each column.
    pub fn adjoint_matvec_comm(
        &self,
        grid: &ProcessGrid,
        m_col_bytes: f64,
        d_row_bytes: f64,
    ) -> f64 {
        let bcast = self.broadcast_time(d_row_bytes, grid.cols);
        let reduce = self.reduce_time(m_col_bytes, grid.rows);
        bcast + reduce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_communicators_are_free() {
        let net = NetworkModel::frontier();
        assert_eq!(net.reduce_time(1e6, 1), 0.0);
        assert_eq!(net.allgather_time(1e6, 1), 0.0);
        assert_eq!(net.allreduce_time(1e6, 1), 0.0);
    }

    #[test]
    fn intra_node_is_cheaper() {
        let net = NetworkModel::frontier();
        let small = net.reduce_time(1e6, 8); // one node
        let big = net.reduce_time(1e6, 16); // two nodes
        assert!(small < big / 2.0, "intra {small} vs inter {big}");
    }

    #[test]
    fn latency_grows_with_span() {
        let net = NetworkModel::frontier();
        // Same byte count, same step count would make these equal without
        // span-dependent latency.
        let t512 = net.reduce_time(8e5, 512);
        let t4096 = net.reduce_time(8e5, 4096);
        assert!(t4096 > 2.0 * t512, "t512={t512} t4096={t4096}");
    }

    #[test]
    fn paper_messages_are_latency_bound() {
        // Section 4.2.2: 0.8 MB messages at 100 GB/s NIC are latency-bound
        // ⇒ halving the bytes (single-precision comm) buys <25%.
        let net = NetworkModel::frontier();
        let full = net.reduce_time(8e5, 512);
        let half = net.reduce_time(4e5, 512);
        assert!(half > 0.75 * full, "full={full} half={half}");
    }

    #[test]
    fn forward_comm_with_one_row_has_no_gather() {
        let net = NetworkModel::frontier();
        let g1 = ProcessGrid::new(1, 512);
        let t = net.forward_matvec_comm(&g1, 4e7, 8e5);
        assert!((t - net.reduce_time(8e5, 512)).abs() < 1e-12);
    }

    #[test]
    fn frontier_scale_is_order_hundred_ms_at_4096() {
        // The paper: ~0.11 s per matvec at 4,096 GPUs, dominated by
        // communication. Check the model lands in that regime (tens of
        // ms to ~0.3 s) for the 1×4096 grid the partitioner improves on.
        let net = NetworkModel::frontier();
        let flat = ProcessGrid::new(1, 4096);
        let t = net.forward_matvec_comm(&flat, 6.4e8, 8e5);
        assert!(t > 2e-2 && t < 0.5, "t={t}");
    }
}
