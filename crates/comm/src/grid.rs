//! The 2-D process grid of the FFTMatvec algorithm.
//!
//! FFTMatvec runs on a `p_r × p_c` grid: rows partition the sensors
//! (`N_d`), columns partition the spatial parameters (`N_m`). Ranks are
//! numbered column-major (row index fastest), matching the convention
//! that a column of ranks is co-located on a node — the layout the
//! partitioner's cost model assumes.

/// A `rows × cols` process grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessGrid {
    /// `p_r` — rows (sensor partitions).
    pub rows: usize,
    /// `p_c` — columns (parameter partitions).
    pub cols: usize,
}

impl ProcessGrid {
    /// Build a grid; both dimensions must be nonzero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "process grid dims must be nonzero");
        ProcessGrid { rows, cols }
    }

    /// A single-process "grid".
    pub fn single() -> Self {
        ProcessGrid { rows: 1, cols: 1 }
    }

    /// Total number of ranks `p = p_r · p_c`.
    #[inline]
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Rank of grid position `(row, col)` (column-major).
    #[inline]
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        col * self.rows + row
    }

    /// Grid position of `rank`.
    #[inline]
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank % self.rows, rank / self.rows)
    }

    /// Ranks in grid row `row` (one per column) — the communicator the
    /// F-matvec phase-5 reduction runs over.
    pub fn row_ranks(&self, row: usize) -> Vec<usize> {
        (0..self.cols).map(|c| self.rank_of(row, c)).collect()
    }

    /// Ranks in grid column `col` (one per row) — the communicator the
    /// F-matvec phase-1 gather runs over.
    pub fn col_ranks(&self, col: usize) -> Vec<usize> {
        (0..self.rows).map(|r| self.rank_of(r, col)).collect()
    }

    /// Split `total` items over `parts` owners: owner `i` gets
    /// `chunk_range(total, parts, i)`. Remainders go to the leading
    /// owners, matching the `⌈·⌉` in the paper's `n_m = ⌈N_m/p_c⌉`.
    pub fn chunk_range(total: usize, parts: usize, idx: usize) -> core::ops::Range<usize> {
        assert!(idx < parts);
        let base = total / parts;
        let rem = total % parts;
        let start = idx * base + idx.min(rem);
        let len = base + usize::from(idx < rem);
        start..start + len
    }

    /// The local row (sensor) index range of grid row `row` for `nd`
    /// global sensors.
    pub fn sensor_range(&self, nd: usize, row: usize) -> core::ops::Range<usize> {
        Self::chunk_range(nd, self.rows, row)
    }

    /// The local column (parameter) index range of grid column `col` for
    /// `nm` global parameters.
    pub fn param_range(&self, nm: usize, col: usize) -> core::ops::Range<usize> {
        Self::chunk_range(nm, self.cols, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = ProcessGrid::new(4, 6);
        assert_eq!(g.size(), 24);
        for rank in 0..g.size() {
            let (r, c) = g.coords_of(rank);
            assert_eq!(g.rank_of(r, c), rank);
        }
    }

    #[test]
    fn column_major_means_columns_are_contiguous() {
        let g = ProcessGrid::new(8, 4);
        // A column of ranks is a consecutive block (co-located on a node).
        assert_eq!(g.col_ranks(0), (0..8).collect::<Vec<_>>());
        assert_eq!(g.col_ranks(2), (16..24).collect::<Vec<_>>());
        // A row strides across nodes.
        assert_eq!(g.row_ranks(3), vec![3, 11, 19, 27]);
    }

    #[test]
    fn chunking_covers_everything_once() {
        for (total, parts) in [(100, 16), (7, 3), (5, 5), (5, 8)] {
            let mut seen = vec![0usize; total];
            for i in 0..parts {
                for j in ProcessGrid::chunk_range(total, parts, i) {
                    seen[j] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "({total},{parts})");
        }
    }

    #[test]
    fn chunk_sizes_match_ceiling_convention() {
        // n_m = ⌈N_m/p_c⌉ on the leading owners.
        let r = ProcessGrid::chunk_range(100, 16, 0);
        assert_eq!(r.len(), 7); // ⌈100/16⌉ = 7
        let r = ProcessGrid::chunk_range(100, 16, 15);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn sensor_and_param_ranges() {
        let g = ProcessGrid::new(16, 256);
        assert_eq!(g.sensor_range(100, 0).len(), 7);
        assert_eq!(g.param_range(5000 * 4096, 0).len(), 80_000);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        let _ = ProcessGrid::new(0, 4);
    }
}
