//! Collectives with *real* data movement.
//!
//! The distributed matvec's numerics must be faithful: the paper's error
//! bound has a `c₅·ε₅·log2(p_c)` term from the phase-5 reduction, which
//! only appears if the reduction really happens in floating point, in the
//! configured precision, with a tree-shaped summation order. These
//! functions operate on per-rank buffers held in one process.

use fftmatvec_numeric::Real;

/// Work (scalar elements under a reduction node) below which the two
/// subtrees run sequentially; smaller nodes are dominated by pool
/// dispatch. Deliberately a per-crate constant (the FFT batch driver and
/// the BLAS kernels carry their own): the profitable cutoff depends on
/// the per-element cost of each workload, so the crates are tuned
/// independently rather than sharing one number.
#[cfg(feature = "parallel")]
const PAR_THRESHOLD: usize = 1 << 14;

/// Run the two halves of a reduction node — in parallel (with the
/// `parallel` feature, above [`PAR_THRESHOLD`] work) or inline. Only the
/// *scheduling* of the subtrees changes; the combine performed by the
/// caller after this returns is identical in every mode, so the
/// summation association — and therefore the result bits — cannot
/// depend on the feature set or the thread count.
#[cfg_attr(not(feature = "parallel"), allow(unused_variables))]
fn node_halves<RA, RB>(
    work: usize,
    left: impl FnOnce() -> RA + Send,
    right: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    #[cfg(feature = "parallel")]
    if work > PAR_THRESHOLD {
        return rayon::join(left, right);
    }
    (left(), right())
}

/// Pairwise-tree sum of per-rank vectors (all the same length). The
/// summation tree has depth `⌈log2(p)⌉`, matching both an MPI/RCCL tree
/// reduction and the error model's `log2(p)` factor. With the `parallel`
/// feature, independent subtrees execute concurrently on the pool —
/// same tree, same association, same bits.
pub fn tree_reduce_sum<T: Real>(inputs: &[Vec<T>]) -> Vec<T> {
    assert!(!inputs.is_empty(), "reduce over empty rank set");
    let len = inputs[0].len();
    for (i, v) in inputs.iter().enumerate() {
        assert_eq!(v.len(), len, "rank {i} buffer length mismatch");
    }
    reduce_range(inputs, 0, inputs.len())
}

/// Split point shared by every tree reduction here: the largest power of
/// two below `n` — the shape a recursive-halving reduction takes. Both
/// the allocating and the in-place reductions use this one function, so
/// their summation associations cannot diverge.
fn tree_split(n: usize) -> usize {
    (n / 2).next_power_of_two().min(n - 1)
}

fn reduce_range<T: Real>(inputs: &[Vec<T>], lo: usize, hi: usize) -> Vec<T> {
    match hi - lo {
        1 => inputs[lo].clone(),
        2 => {
            let mut out = inputs[lo].clone();
            for (o, &b) in out.iter_mut().zip(&inputs[lo + 1]) {
                *o += b;
            }
            out
        }
        n => {
            let half = tree_split(n);
            let len = inputs[lo].len();
            let (mut left, right) = node_halves(
                n * len,
                || reduce_range(inputs, lo, lo + half),
                || reduce_range(inputs, lo + half, hi),
            );
            for (o, &b) in left.iter_mut().zip(&right) {
                *o += b;
            }
            left
        }
    }
}

/// In-place variant of [`tree_reduce_sum`] over a flat buffer holding
/// `flat.len()/len` equally sized parts back to back: afterwards,
/// `flat[..len]` holds the reduced sum with exactly the same summation
/// association as [`tree_reduce_sum`] (both recurse through one shared
/// split helper). Allocates nothing — the distributed matvec's phase-5
/// reduction runs this inside a pooled communication buffer.
pub fn tree_reduce_sum_in_place<T: Real>(flat: &mut [T], len: usize) {
    assert!(len > 0 && !flat.is_empty(), "reduce over empty rank set");
    assert_eq!(flat.len() % len, 0, "flat buffer not a multiple of the part length");
    reduce_range_in_place(flat, len, flat.len() / len);
}

/// Reduce the leading `parts` parts of `flat` into `flat[..len]`.
fn reduce_range_in_place<T: Real>(flat: &mut [T], len: usize, parts: usize) {
    if parts <= 1 {
        return;
    }
    let half = tree_split(parts);
    // Each recursion owns exactly its sub-slice: parts `[0, half)` live
    // in `head` and parts `[half, parts)` in `tail`, so the two
    // subtrees operate on disjoint borrows and can run concurrently.
    let (head, tail) = flat.split_at_mut(half * len);
    node_halves(
        parts * len,
        || reduce_range_in_place(head, len, half),
        || reduce_range_in_place(tail, len, parts - half),
    );
    // parts[0] += parts[half].
    let (head, tail) = flat.split_at_mut(half * len);
    for (o, &b) in head[..len].iter_mut().zip(&tail[..len]) {
        *o += b;
    }
}

/// Broadcast: clone the root buffer to every rank slot.
pub fn broadcast<T: Clone>(root: &[T], ranks: usize) -> Vec<Vec<T>> {
    (0..ranks).map(|_| root.to_vec()).collect()
}

/// Allgather: concatenate per-rank contributions in rank order.
pub fn allgather<T: Clone>(parts: &[Vec<T>]) -> Vec<T> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

/// Scatter: split `data` into `parts` contiguous chunks (leading chunks
/// take the remainder), inverse of [`allgather`] for equal splits.
pub fn scatter<T: Clone>(data: &[T], parts: usize) -> Vec<Vec<T>> {
    use crate::grid::ProcessGrid;
    (0..parts).map(|i| data[ProcessGrid::chunk_range(data.len(), parts, i)].to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_matches_serial_sum_exactly_for_integers() {
        // Integer-valued floats: any summation order is exact.
        let inputs: Vec<Vec<f64>> = (0..7).map(|r| vec![r as f64, 2.0 * r as f64]).collect();
        let out = tree_reduce_sum(&inputs);
        assert_eq!(out, vec![21.0, 42.0]);
    }

    #[test]
    fn tree_reduce_single_rank_is_identity() {
        let inputs = vec![vec![1.5f32, -2.5]];
        assert_eq!(tree_reduce_sum(&inputs), vec![1.5, -2.5]);
    }

    #[test]
    fn in_place_reduce_is_bitwise_the_allocating_reduce() {
        // Same split helper, same association — bit-identical results on
        // cancellation-prone data for every rank count.
        for parts in 1..=12usize {
            let len = 5;
            let inputs: Vec<Vec<f64>> = (0..parts)
                .map(|r| {
                    (0..len)
                        .map(|i| ((r * 31 + i * 7) as f64).sin() * 10f64.powi((r % 5) as i32 - 2))
                        .collect()
                })
                .collect();
            let want = tree_reduce_sum(&inputs);
            let mut flat: Vec<f64> = inputs.concat();
            tree_reduce_sum_in_place(&mut flat, len);
            assert_eq!(&flat[..len], &want[..], "parts={parts}");
        }
    }

    #[test]
    fn tree_reduce_error_grows_like_log_p() {
        // Summing p copies of values that don't cancel: the tree error
        // should stay within ~log2(p)·ε relative, far below a sequential
        // worst case of p·ε.
        let p = 1024;
        let inputs: Vec<Vec<f32>> = (0..p).map(|r| vec![1.0 + (r as f32) * 1.1920929e-7]).collect();
        let out = tree_reduce_sum(&inputs);
        let exact: f64 = inputs.iter().map(|v| v[0] as f64).sum();
        let rel = ((out[0] as f64 - exact) / exact).abs();
        let log_bound = (p as f64).log2() * f32::EPSILON as f64;
        assert!(rel < log_bound, "rel {rel} vs log-bound {log_bound}");
    }

    #[test]
    fn tree_reduce_non_power_of_two() {
        for p in [3usize, 5, 6, 7, 100, 1001] {
            let inputs: Vec<Vec<f64>> = (0..p).map(|_| vec![1.0]).collect();
            let out = tree_reduce_sum(&inputs);
            assert_eq!(out[0], p as f64, "p={p}");
        }
    }

    #[test]
    fn scatter_allgather_roundtrip() {
        let data: Vec<f64> = (0..103).map(|i| i as f64).collect();
        for parts in [1usize, 2, 7, 16, 103] {
            let pieces = scatter(&data, parts);
            assert_eq!(pieces.len(), parts);
            assert_eq!(allgather(&pieces), data, "parts={parts}");
        }
    }

    #[test]
    fn broadcast_replicates() {
        let root = vec![1.0f64, 2.0];
        let all = broadcast(&root, 5);
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|v| *v == root));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let inputs = vec![vec![1.0f64], vec![1.0, 2.0]];
        tree_reduce_sum(&inputs);
    }
}
