//! Communication-aware partitioning (Section 3.7 of the algorithm
//! paper \[44\], applied in this paper's Section 4.2.2).
//!
//! Given the problem size and GPU count, choose the process-grid shape
//! `p_r × p_c`. Two strategies are provided:
//!
//! * [`PartitionStrategy::CostModel`] — search all factorizations of `p`
//!   and minimize the modeled F + F* communication time under a
//!   [`NetworkModel`]. This is the algorithm itself.
//! * [`PartitionStrategy::FrontierCalibrated`] — the shapes the paper
//!   actually measured as optimal on Frontier (1 row ≤ 512 GPUs, 8 rows at
//!   1,024–2,048, 16 rows at 4,096), used by the Figure-4 harness so the
//!   reproduction runs the same grids as the paper.
//! * [`PartitionStrategy::Fixed`] — a forced shape, used by the
//!   partitioning ablation bench (the paper reports >3× from partitioning
//!   at 4,096 GPUs versus the flat 1×p grid).

use crate::cost::NetworkModel;
use crate::grid::ProcessGrid;

/// Problem dimensions the partitioner needs.
#[derive(Clone, Copy, Debug)]
pub struct PartitionProblem {
    /// Global sensor count `N_d`.
    pub nd: usize,
    /// Global spatial parameter count `N_m`.
    pub nm: usize,
    /// Timesteps `N_t`.
    pub nt: usize,
    /// Bytes per real element of the communicated vectors.
    pub elem_bytes: usize,
}

impl PartitionProblem {
    /// One grid column's full input slice in bytes.
    pub fn m_col_bytes(&self, grid: &ProcessGrid) -> f64 {
        let nm_local = self.nm.div_ceil(grid.cols);
        (nm_local * self.nt * self.elem_bytes) as f64
    }

    /// One grid row's output slice in bytes.
    pub fn d_row_bytes(&self, grid: &ProcessGrid) -> f64 {
        let nd_local = self.nd.div_ceil(grid.rows);
        (nd_local * self.nt * self.elem_bytes) as f64
    }
}

/// Grid-shape selection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Minimize modeled F + F* communication over all factorizations.
    CostModel,
    /// The paper's measured-optimal Frontier shapes.
    FrontierCalibrated,
    /// Force a specific number of rows (must divide `p`).
    Fixed(usize),
}

/// Modeled round-trip (F + F*) communication time for one grid shape.
pub fn grid_comm_time(net: &NetworkModel, grid: &ProcessGrid, prob: &PartitionProblem) -> f64 {
    let m = prob.m_col_bytes(grid);
    let d = prob.d_row_bytes(grid);
    net.forward_matvec_comm(grid, m, d) + net.adjoint_matvec_comm(grid, m, d)
}

/// Choose the process grid for `p` GPUs.
pub fn choose_grid(
    strategy: PartitionStrategy,
    p: usize,
    prob: &PartitionProblem,
    net: &NetworkModel,
) -> ProcessGrid {
    assert!(p > 0, "need at least one GPU");
    match strategy {
        PartitionStrategy::Fixed(rows) => {
            assert!(p % rows == 0, "rows {rows} must divide p {p}");
            ProcessGrid::new(rows, p / rows)
        }
        PartitionStrategy::FrontierCalibrated => {
            let rows = if p <= 512 {
                1
            } else if p <= 2048 {
                8
            } else {
                16
            };
            let rows = rows.min(p);
            ProcessGrid::new(rows, p / rows)
        }
        PartitionStrategy::CostModel => {
            let mut best = ProcessGrid::new(1, p);
            let mut best_t = grid_comm_time(net, &best, prob);
            let mut rows = 2;
            while rows <= p && rows <= prob.nd {
                if p % rows == 0 {
                    let g = ProcessGrid::new(rows, p / rows);
                    let t = grid_comm_time(net, &g, prob);
                    if t < best_t {
                        best = g;
                        best_t = t;
                    }
                }
                rows += 1;
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_problem(p: usize) -> PartitionProblem {
        // Fig. 4 weak scaling: N_m = 5000·p, N_d = 100, N_t = 1000, FP64.
        PartitionProblem { nd: 100, nm: 5000 * p, nt: 1000, elem_bytes: 8 }
    }

    #[test]
    fn frontier_calibrated_matches_paper_shapes() {
        let net = NetworkModel::frontier();
        for (p, want_rows) in
            [(8usize, 1usize), (64, 1), (512, 1), (1024, 8), (2048, 8), (4096, 16)]
        {
            let g = choose_grid(PartitionStrategy::FrontierCalibrated, p, &paper_problem(p), &net);
            assert_eq!(g.rows, want_rows, "p={p}");
            assert_eq!(g.size(), p);
        }
    }

    #[test]
    fn cost_model_prefers_few_rows_at_small_scale() {
        // The measured Frontier optimum is 1 row up to 512 GPUs; the
        // analytic model's crossover sits slightly earlier, but must stay
        // qualitatively flat at small scale.
        let net = NetworkModel::frontier();
        for p in [8usize, 64, 256] {
            let g = choose_grid(PartitionStrategy::CostModel, p, &paper_problem(p), &net);
            assert_eq!(g.rows, 1, "p={p}: got {}x{}", g.rows, g.cols);
        }
    }

    #[test]
    fn cost_model_switches_to_multirow_at_scale() {
        let net = NetworkModel::frontier();
        let g = choose_grid(PartitionStrategy::CostModel, 4096, &paper_problem(4096), &net);
        assert!(g.rows > 1, "expected multi-row at 4096, got {}x{}", g.rows, g.cols);
    }

    #[test]
    fn partitioning_beats_flat_grid_at_scale() {
        // The paper: >3× from communication-aware partitioning at 4096.
        let net = NetworkModel::frontier();
        let prob = paper_problem(4096);
        let flat = ProcessGrid::new(1, 4096);
        let chosen = choose_grid(PartitionStrategy::CostModel, 4096, &prob, &net);
        let t_flat = grid_comm_time(&net, &flat, &prob);
        let t_best = grid_comm_time(&net, &chosen, &prob);
        assert!(
            t_flat / t_best > 2.0,
            "partitioning gain too small: {:.2}x ({}x{})",
            t_flat / t_best,
            chosen.rows,
            chosen.cols
        );
    }

    #[test]
    fn fixed_strategy_is_exact() {
        let net = NetworkModel::frontier();
        let g = choose_grid(PartitionStrategy::Fixed(4), 64, &paper_problem(64), &net);
        assert_eq!((g.rows, g.cols), (4, 16));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn fixed_strategy_validates_divisibility() {
        let net = NetworkModel::frontier();
        choose_grid(PartitionStrategy::Fixed(3), 64, &paper_problem(64), &net);
    }

    #[test]
    fn rows_never_exceed_sensors_in_cost_model() {
        let net = NetworkModel::frontier();
        let prob = PartitionProblem { nd: 4, nm: 1 << 20, nt: 100, elem_bytes: 8 };
        let g = choose_grid(PartitionStrategy::CostModel, 64, &prob, &net);
        assert!(g.rows <= 4);
    }
}
