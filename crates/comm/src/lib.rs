//! # fftmatvec-comm — the multi-GPU communication substrate
//!
//! Stands in for NCCL/RCCL on Frontier's Slingshot network. Two concerns
//! are kept strictly separate:
//!
//! * **Data movement is real.** Every simulated rank owns real buffers;
//!   [`collectives`] actually reduces/broadcasts/gathers them, in the
//!   precision the mixed-precision configuration dictates and in a
//!   deterministic pairwise-tree order — so the `log2(p)` reduction-error
//!   term of the paper's Eq. (6) arises from genuine floating-point
//!   arithmetic, not from a model.
//! * **Time is modeled.** [`cost::NetworkModel`] is an α–β model with
//!   node-level NIC sharing (Frontier: 8 GCDs share ~100 GB/s of NIC) and
//!   span-dependent software latency, calibrated to the paper's
//!   observations (latency-bound 0.8–40 MB messages; ~0.11 s per matvec at
//!   4,096 GPUs).
//!
//! [`partition`] implements communication-aware partitioning (Section 3.7
//! of the algorithm paper \[44\]): choosing the process-grid shape
//! `p_r × p_c` that minimizes modeled per-matvec communication.

pub mod collectives;
pub mod cost;
pub mod grid;
pub mod partition;

pub use cost::NetworkModel;
pub use grid::ProcessGrid;
pub use partition::{choose_grid, PartitionStrategy};
