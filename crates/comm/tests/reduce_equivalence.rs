//! Pooled tree reductions == sequential tree reductions, bit for bit.
//!
//! With the `parallel` feature, `tree_reduce_sum` and
//! `tree_reduce_sum_in_place` run their two subtrees concurrently above
//! a work threshold. Only the *scheduling* may change — the summation
//! tree (largest power of two below `p` on the left) is fixed — so the
//! result bits must match a reference reduction written here from
//! scratch, sequentially, with no shared code. Cancellation-prone inputs
//! spanning ten orders of magnitude make any association drift visible
//! in the bits.

use fftmatvec_comm::collectives::{tree_reduce_sum, tree_reduce_sum_in_place};
use fftmatvec_numeric::SplitMix64;
use proptest::prelude::*;

/// Independent reference: recursive pairwise tree with the documented
/// recursive-halving split rule (left = smallest power of two ≥ n/2,
/// capped at n−1), sequential by construction.
fn reference_tree_sum(parts: &[Vec<f64>]) -> Vec<f64> {
    match parts.len() {
        0 => panic!("empty rank set"),
        1 => parts[0].clone(),
        n => {
            let split = {
                let mut s = 1usize;
                while s < n / 2 {
                    s *= 2;
                }
                s.min(n - 1)
            };
            let left = reference_tree_sum(&parts[..split]);
            let right = reference_tree_sum(&parts[split..]);
            left.iter().zip(&right).map(|(a, b)| a + b).collect()
        }
    }
}

/// Rank buffers with magnitudes spread over ~10 decades and both signs.
fn rank_inputs(parts: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    (0..parts)
        .map(|r| {
            (0..len)
                .map(|_| {
                    let mag = 10f64.powi((r % 11) as i32 - 5);
                    rng.uniform(-1.0, 1.0) * mag
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both public reductions agree bitwise with the from-scratch
    /// sequential reference, at sizes straddling the parallel
    /// threshold (parts·len up to 20·4000 = 80000 ≫ 2¹⁴).
    #[test]
    fn pooled_reductions_are_bitwise_the_reference(
        parts in 1usize..=20,
        len in 1usize..=4000,
        seed in 0u64..u64::MAX,
    ) {
        let inputs = rank_inputs(parts, len, seed);
        let want = reference_tree_sum(&inputs);

        let got = tree_reduce_sum(&inputs);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!(g.to_bits() == w.to_bits(),
                "tree_reduce_sum bit mismatch at {i}: {g} vs {w}");
        }

        let mut flat: Vec<f64> = inputs.concat();
        tree_reduce_sum_in_place(&mut flat, len);
        for (i, (g, w)) in flat[..len].iter().zip(&want).enumerate() {
            prop_assert!(g.to_bits() == w.to_bits(),
                "tree_reduce_sum_in_place bit mismatch at {i}: {g} vs {w}");
        }
    }
}

/// Deterministic repetition: the pooled reduction returns the same bits
/// every run (scheduling noise must not leak into the result).
#[test]
fn pooled_reduction_is_repeatable() {
    let inputs = rank_inputs(16, 5000, 42);
    let first = tree_reduce_sum(&inputs);
    for _ in 0..10 {
        let again = tree_reduce_sum(&inputs);
        assert!(
            first.iter().zip(&again).all(|(a, b)| a.to_bits() == b.to_bits()),
            "tree_reduce_sum produced different bits across runs"
        );
    }
}
