//! Property-based tests for the communication substrate: grid indexing
//! bijections, chunk coverage, collective correctness on arbitrary data,
//! and monotonicity of the cost model.

use fftmatvec_comm::collectives::{allgather, broadcast, scatter, tree_reduce_sum};
use fftmatvec_comm::partition::{choose_grid, PartitionProblem, PartitionStrategy};
use fftmatvec_comm::{NetworkModel, ProcessGrid};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// rank_of/coords_of are mutually inverse bijections.
    #[test]
    fn grid_rank_bijection(rows in 1usize..16, cols in 1usize..16) {
        let g = ProcessGrid::new(rows, cols);
        let mut seen = vec![false; g.size()];
        for r in 0..rows {
            for c in 0..cols {
                let rank = g.rank_of(r, c);
                prop_assert!(!seen[rank], "rank {} assigned twice", rank);
                seen[rank] = true;
                prop_assert_eq!(g.coords_of(rank), (r, c));
            }
        }
    }

    /// Chunk ranges partition [0, total) exactly, with sizes differing by
    /// at most one and leading owners taking the remainder.
    #[test]
    fn chunking_partitions(total in 0usize..500, parts in 1usize..32) {
        let mut covered = 0usize;
        let mut prev_len = usize::MAX;
        for i in 0..parts {
            let r = ProcessGrid::chunk_range(total, parts, i);
            prop_assert_eq!(r.start, covered, "gap or overlap at part {}", i);
            covered = r.end;
            prop_assert!(r.len() <= prev_len, "sizes must be non-increasing");
            prop_assert!(prev_len - r.len() <= 1 || prev_len == usize::MAX);
            prev_len = r.len();
        }
        prop_assert_eq!(covered, total);
    }

    /// Tree reduction equals the exact sum for integer-valued data of any
    /// rank count, and scatter/allgather round-trip.
    #[test]
    fn collectives_roundtrip(
        ranks in 1usize..40,
        len in 0usize..24,
        parts in 1usize..12,
        seed in 0i32..1000,
    ) {
        let inputs: Vec<Vec<f64>> = (0..ranks)
            .map(|r| (0..len).map(|i| ((seed as usize + r * 7 + i) % 13) as f64).collect())
            .collect();
        let reduced = tree_reduce_sum(&inputs);
        for i in 0..len {
            let want: f64 = inputs.iter().map(|v| v[i]).sum();
            prop_assert_eq!(reduced[i], want);
        }
        let data: Vec<f64> = (0..len).map(|i| i as f64).collect();
        prop_assert_eq!(allgather(&scatter(&data, parts)), data);
        let b = broadcast(&reduced, ranks);
        prop_assert!(b.iter().all(|v| *v == reduced));
    }

    /// Cost model monotonicity: more bytes and more ranks never get
    /// cheaper.
    #[test]
    fn cost_monotone(bytes in 1.0e3f64..1e9, p in 2usize..4096) {
        let net = NetworkModel::frontier();
        prop_assert!(net.reduce_time(bytes, p) <= net.reduce_time(bytes * 2.0, p));
        prop_assert!(net.reduce_time(bytes, p) <= net.reduce_time(bytes, p * 2) * 1.0000001);
        prop_assert!(net.allgather_time(bytes, p) <= net.allgather_time(bytes, p + 1));
        prop_assert!(net.broadcast_time(bytes, p) > 0.0);
        prop_assert!(net.allreduce_time(bytes, p).is_finite());
    }

    /// The partitioner always returns a grid of exactly p ranks with rows
    /// bounded by the sensor count, and never does worse than the flat
    /// grid under its own cost model.
    #[test]
    fn partitioner_soundness(
        p_exp in 0u32..12,
        nd in 1usize..128,
        nm_per in 64usize..8192,
    ) {
        let p = 1usize << p_exp;
        let net = NetworkModel::frontier();
        let prob = PartitionProblem { nd, nm: nm_per * p, nt: 256, elem_bytes: 8 };
        let g = choose_grid(PartitionStrategy::CostModel, p, &prob, &net);
        prop_assert_eq!(g.size(), p);
        prop_assert!(g.rows == 1 || g.rows <= nd);
        let flat = ProcessGrid::new(1, p);
        let t_flat = fftmatvec_comm::partition::grid_comm_time(&net, &flat, &prob);
        let t_best = fftmatvec_comm::partition::grid_comm_time(&net, &g, &prob);
        prop_assert!(t_best <= t_flat * 1.0000001);
    }

    /// Row/column communicator listings are consistent with coords.
    #[test]
    fn row_col_ranks(rows in 1usize..10, cols in 1usize..10) {
        let g = ProcessGrid::new(rows, cols);
        for r in 0..rows {
            for &rank in &g.row_ranks(r) {
                prop_assert_eq!(g.coords_of(rank).0, r);
            }
        }
        for c in 0..cols {
            for &rank in &g.col_ranks(c) {
                prop_assert_eq!(g.coords_of(rank).1, c);
            }
        }
    }
}
