//! Property-based tests for the hipify translator: idempotence, identifier
//! boundary discipline, and launch-syntax rewriting over generated
//! sources.

use fftmatvec_portability::hipify::API_MAPPINGS;
use fftmatvec_portability::hipify_source;
use proptest::prelude::*;

/// Strategy: a random CUDA-ish source assembled from mapped API calls,
/// unrelated identifiers, and kernel launches.
fn cuda_source() -> impl Strategy<Value = String> {
    let mapped =
        prop::sample::select(API_MAPPINGS.iter().map(|(c, _)| c.to_string()).collect::<Vec<_>>());
    let ident = "[a-z][a-z0-9_]{0,8}".prop_map(|s| s);
    let stmt = prop_oneof![
        mapped.clone().prop_map(|api| format!("{api}(arg0, arg1);")),
        ident.clone().prop_map(|id| format!("int {id} = 0;")),
        (ident.clone(), 1usize..64, 1usize..512)
            .prop_map(|(k, g, b)| format!("k_{k}<<<{g}, {b}>>>(p, n);")),
        mapped.prop_map(|api| format!("// comment mentioning {api}")),
    ];
    prop::collection::vec(stmt, 0..20).prop_map(|v| v.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// hipify(hipify(x)) == hipify(x): translation is a projection.
    #[test]
    fn idempotent(src in cuda_source()) {
        let once = hipify_source(&src);
        let twice = hipify_source(&once.source);
        prop_assert_eq!(&once.source, &twice.source);
        prop_assert_eq!(twice.replacements, 0, "second pass must be a no-op");
    }

    /// After translation no mapped CUDA identifier survives as a whole
    /// token, and every launch triple-chevron is gone.
    #[test]
    fn no_mapped_tokens_survive(src in cuda_source()) {
        let out = hipify_source(&src).source;
        prop_assert!(!out.contains("<<<"), "launch syntax survived");
        for (cuda, _) in API_MAPPINGS {
            // Check whole-token survival (allow substrings inside longer
            // identifiers like my_cudaMalloc_wrapper).
            let mut start = 0;
            while let Some(pos) = out[start..].find(cuda) {
                let abs = start + pos;
                let before_ok = abs == 0
                    || !out.as_bytes()[abs - 1].is_ascii_alphanumeric()
                        && out.as_bytes()[abs - 1] != b'_';
                let end = abs + cuda.len();
                let after_ok = end >= out.len()
                    || !out.as_bytes()[end].is_ascii_alphanumeric()
                        && out.as_bytes()[end] != b'_';
                prop_assert!(!(before_ok && after_ok),
                    "mapped token {cuda} survived at {abs}");
                start = end;
            }
        }
    }

    /// Translation preserves everything that is not CUDA: a source with
    /// no CUDA tokens is returned byte-identical.
    #[test]
    fn non_cuda_sources_untouched(
        idents in prop::collection::vec("[a-z][a-z0-9_]{0,10}", 0..16),
    ) {
        let src = idents
            .iter()
            .map(|id| format!("double {id} = 1.0;"))
            .collect::<Vec<_>>()
            .join("\n");
        let r = hipify_source(&src);
        prop_assert_eq!(r.source, src);
        prop_assert_eq!(r.replacements, 0);
        prop_assert!(r.unsupported.is_empty());
    }

    /// Launch rewrites preserve the argument list and kernel name.
    #[test]
    fn launch_rewrite_structure(
        g in 1usize..1024,
        b in 1usize..1024,
        name in "[a-z][a-z0-9_]{0,12}",
        args in prop::collection::vec("[a-z][a-z0-9]{0,6}", 1..5),
    ) {
        let arglist = args.join(", ");
        let src = format!("{name}<<<{g}, {b}>>>({arglist});");
        let out = hipify_source(&src).source;
        let want = format!("hipLaunchKernelGGL({name}, {g}, {b}, 0, 0, {arglist});");
        prop_assert_eq!(out, want);
    }
}
