//! The CUDA→HIP source translator (a `hipify-perl` equivalent).
//!
//! `hipify-perl` is "essentially an advanced find-and-replace tool"
//! (Section 3.1); this implementation is the same idea made precise: an
//! identifier-aware scanner (no substring accidents — `cudaMalloc` maps,
//! `my_cudaMalloc_wrapper` does not), an ordered mapping table covering
//! the libraries FFTMatvec uses, kernel-launch syntax rewriting
//! (`k<<<g,b>>>(…)` → `hipLaunchKernelGGL(k, g, b, 0, 0, …)`), and
//! include-path rewrites. CUDA identifiers with no HIP counterpart are
//! reported as [`UnsupportedApi`] — the paper's "Not Supported" error.

use std::collections::HashMap;

/// One unresolved CUDA API occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedApi {
    /// The CUDA identifier with no HIP mapping.
    pub name: String,
    /// 1-based source line.
    pub line: usize,
}

/// Result of translating one source file.
#[derive(Clone, Debug)]
pub struct HipifyResult {
    /// The HIP source.
    pub source: String,
    /// Number of identifier/launch/include rewrites performed.
    pub replacements: usize,
    /// CUDA APIs left untranslated (empty for a clean conversion).
    pub unsupported: Vec<UnsupportedApi>,
}

impl HipifyResult {
    /// Did everything translate?
    pub fn is_clean(&self) -> bool {
        self.unsupported.is_empty()
    }
}

/// Identifier-level CUDA→HIP mappings (the `hipify-perl` table, reduced to
/// the APIs the FFTMatvec sources use). NCCL symbols are *kept* — RCCL
/// implements the NCCL API — only the header moves.
pub const API_MAPPINGS: &[(&str, &str)] = &[
    // --- CUDA runtime ---
    ("cudaError_t", "hipError_t"),
    ("cudaSuccess", "hipSuccess"),
    ("cudaGetLastError", "hipGetLastError"),
    ("cudaGetErrorString", "hipGetErrorString"),
    ("cudaMalloc", "hipMalloc"),
    ("cudaFree", "hipFree"),
    ("cudaMallocHost", "hipHostMalloc"),
    ("cudaFreeHost", "hipHostFree"),
    ("cudaMemcpy", "hipMemcpy"),
    ("cudaMemcpyAsync", "hipMemcpyAsync"),
    ("cudaMemcpy2D", "hipMemcpy2D"),
    ("cudaMemset", "hipMemset"),
    ("cudaMemsetAsync", "hipMemsetAsync"),
    ("cudaMemcpyHostToDevice", "hipMemcpyHostToDevice"),
    ("cudaMemcpyDeviceToHost", "hipMemcpyDeviceToHost"),
    ("cudaMemcpyDeviceToDevice", "hipMemcpyDeviceToDevice"),
    ("cudaDeviceSynchronize", "hipDeviceSynchronize"),
    ("cudaSetDevice", "hipSetDevice"),
    ("cudaGetDevice", "hipGetDevice"),
    ("cudaGetDeviceCount", "hipGetDeviceCount"),
    ("cudaGetDeviceProperties", "hipGetDeviceProperties"),
    ("cudaDeviceProp", "hipDeviceProp_t"),
    ("cudaStream_t", "hipStream_t"),
    ("cudaStreamCreate", "hipStreamCreate"),
    ("cudaStreamDestroy", "hipStreamDestroy"),
    ("cudaStreamSynchronize", "hipStreamSynchronize"),
    ("cudaEvent_t", "hipEvent_t"),
    ("cudaEventCreate", "hipEventCreate"),
    ("cudaEventDestroy", "hipEventDestroy"),
    ("cudaEventRecord", "hipEventRecord"),
    ("cudaEventSynchronize", "hipEventSynchronize"),
    ("cudaEventElapsedTime", "hipEventElapsedTime"),
    // --- cuBLAS → rocBLAS ---
    ("cublasHandle_t", "rocblas_handle"),
    ("cublasCreate", "rocblas_create_handle"),
    ("cublasDestroy", "rocblas_destroy_handle"),
    ("cublasStatus_t", "rocblas_status"),
    ("CUBLAS_STATUS_SUCCESS", "rocblas_status_success"),
    ("cublasSetStream", "rocblas_set_stream"),
    ("CUBLAS_OP_N", "rocblas_operation_none"),
    ("CUBLAS_OP_T", "rocblas_operation_transpose"),
    ("CUBLAS_OP_C", "rocblas_operation_conjugate_transpose"),
    ("cublasSgemvStridedBatched", "rocblas_sgemv_strided_batched"),
    ("cublasDgemvStridedBatched", "rocblas_dgemv_strided_batched"),
    ("cublasCgemvStridedBatched", "rocblas_cgemv_strided_batched"),
    ("cublasZgemvStridedBatched", "rocblas_zgemv_strided_batched"),
    ("cublasDgemv", "rocblas_dgemv"),
    ("cublasZscal", "rocblas_zscal"),
    ("cublasDaxpy", "rocblas_daxpy"),
    ("cuDoubleComplex", "hipblasDoubleComplex"),
    ("cuFloatComplex", "hipblasComplex"),
    ("make_cuDoubleComplex", "make_hipblasDoubleComplex"),
    // --- cuFFT → hipFFT ---
    ("cufftHandle", "hipfftHandle"),
    ("cufftResult", "hipfftResult"),
    ("CUFFT_SUCCESS", "HIPFFT_SUCCESS"),
    ("cufftCreate", "hipfftCreate"),
    ("cufftDestroy", "hipfftDestroy"),
    ("cufftPlan1d", "hipfftPlan1d"),
    ("cufftPlanMany", "hipfftPlanMany"),
    ("cufftExecD2Z", "hipfftExecD2Z"),
    ("cufftExecZ2D", "hipfftExecZ2D"),
    ("cufftExecR2C", "hipfftExecR2C"),
    ("cufftExecC2R", "hipfftExecC2R"),
    ("cufftExecZ2Z", "hipfftExecZ2Z"),
    ("cufftSetStream", "hipfftSetStream"),
    ("CUFFT_D2Z", "HIPFFT_D2Z"),
    ("CUFFT_Z2D", "HIPFFT_Z2D"),
    ("CUFFT_R2C", "HIPFFT_R2C"),
    ("CUFFT_C2R", "HIPFFT_C2R"),
    ("CUFFT_FORWARD", "HIPFFT_FORWARD"),
    ("CUFFT_INVERSE", "HIPFFT_BACKWARD"),
    ("cufftDoubleComplex", "hipfftDoubleComplex"),
    ("cufftDoubleReal", "hipfftDoubleReal"),
    ("cufftComplex", "hipfftComplex"),
    ("cufftReal", "hipfftReal"),
    // --- cuRAND → hipRAND ---
    ("curandGenerator_t", "hiprandGenerator_t"),
    ("curandCreateGenerator", "hiprandCreateGenerator"),
    ("curandGenerateUniformDouble", "hiprandGenerateUniformDouble"),
    ("CURAND_RNG_PSEUDO_DEFAULT", "HIPRAND_RNG_PSEUDO_DEFAULT"),
    // --- cuTENSOR → hipTensor (v2 permutation APIs intentionally
    //     ABSENT: hipTensor does not support complex-double permutation;
    //     see Section 3.1 and the pipeline's fallback mechanism) ---
    ("cutensorHandle_t", "hiptensorHandle_t"),
    ("cutensorCreate", "hiptensorCreate"),
    ("cutensorDestroy", "hiptensorDestroy"),
];

/// `#include` path rewrites (line-level, applied before identifier pass).
pub const INCLUDE_MAPPINGS: &[(&str, &str)] = &[
    ("<cuda_runtime.h>", "<hip/hip_runtime.h>"),
    ("<cuda.h>", "<hip/hip_runtime.h>"),
    ("<cublas_v2.h>", "<rocblas/rocblas.h>"),
    ("<cufft.h>", "<hipfft/hipfft.h>"),
    ("<curand.h>", "<hiprand/hiprand.h>"),
    ("<cutensor.h>", "<hiptensor/hiptensor.hpp>"),
    // RCCL keeps the NCCL API; only the header changes.
    ("<nccl.h>", "<rccl/rccl.h>"),
];

/// CUDA namespace prefixes: an identifier starting with one of these that
/// has no mapping is reported as unsupported. (Plain `cu`/NCCL symbols are
/// excluded: NCCL is source-compatible with RCCL.)
const CUDA_PREFIXES: &[&str] =
    &["cuda", "cublas", "cufft", "curand", "cutensor", "CUFFT_", "CUBLAS_", "CURAND_", "CUTENSOR_"];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Translate one CUDA source file to HIP.
pub fn hipify_source(src: &str) -> HipifyResult {
    let map: HashMap<&str, &str> = API_MAPPINGS.iter().copied().collect();
    let mut replacements = 0usize;
    let mut unsupported = Vec::new();

    // Pass 1: include-path rewrites.
    let mut text = String::with_capacity(src.len());
    for line in src.split_inclusive('\n') {
        if line.trim_start().starts_with("#include") {
            let mut rewritten = line.to_string();
            for (from, to) in INCLUDE_MAPPINGS {
                if rewritten.contains(from) {
                    rewritten = rewritten.replace(from, to);
                    replacements += 1;
                }
            }
            text.push_str(&rewritten);
        } else {
            text.push_str(line);
        }
    }

    // Pass 2: kernel launch syntax.
    let (text, launch_count) = rewrite_kernel_launches(&text);
    replacements += launch_count;

    // Pass 3: identifier-aware API mapping + unsupported detection.
    let mut out = String::with_capacity(text.len());
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            out.push(c);
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let ident: String = bytes[start..i].iter().collect();
            if let Some(&hip) = map.get(ident.as_str()) {
                out.push_str(hip);
                replacements += 1;
            } else {
                if CUDA_PREFIXES.iter().any(|p| ident.starts_with(p)) {
                    unsupported.push(UnsupportedApi { name: ident.clone(), line });
                }
                out.push_str(&ident);
            }
        } else {
            out.push(c);
            i += 1;
        }
    }

    HipifyResult { source: out, replacements, unsupported }
}

/// Rewrite `kernel<<<grid, block[, shmem[, stream]]>>>(args…)` into
/// `hipLaunchKernelGGL(kernel, grid, block, shmem, stream, args…)`.
fn rewrite_kernel_launches(src: &str) -> (String, usize) {
    let mut out = String::with_capacity(src.len());
    let mut rest = src;
    let mut count = 0usize;
    while let Some(pos) = rest.find("<<<") {
        let before = &rest[..pos];
        // The kernel name is the identifier ending `before`.
        let name_start = before.rfind(|c: char| !is_ident_char(c)).map(|p| p + 1).unwrap_or(0);
        let prefix = &before[..name_start];
        let kernel_name = &before[name_start..];
        let body = &rest[pos + 3..];
        let Some(end) = body.find(">>>") else {
            // Malformed launch; emit unchanged and stop rewriting.
            out.push_str(rest);
            return (out, count);
        };
        let mut args: Vec<String> =
            split_top_level_commas(&body[..end]).iter().map(|s| s.trim().to_string()).collect();
        while args.len() < 4 {
            args.push("0".to_string());
        }
        let tail = body[end + 3..].trim_start();
        let Some(arg_list) = tail.strip_prefix('(') else {
            // No call argument list follows; leave this occurrence alone.
            out.push_str(&rest[..pos + 3]);
            rest = body;
            continue;
        };
        if kernel_name.is_empty() {
            out.push_str(&rest[..pos + 3]);
            rest = body;
            continue;
        }
        out.push_str(prefix);
        out.push_str("hipLaunchKernelGGL(");
        out.push_str(kernel_name);
        for a in &args {
            out.push_str(", ");
            out.push_str(a);
        }
        // Splice into the original argument list: the original `(`
        // becomes a `, ` (or `)` for zero-argument kernels); the original
        // closing parenthesis is reused verbatim.
        if let Some(after_paren) = arg_list.trim_start().strip_prefix(')') {
            out.push(')');
            rest = after_paren;
        } else {
            out.push_str(", ");
            rest = arg_list;
        }
        count += 1;
    }
    out.push_str(rest);
    (out, count)
}

/// Split on commas at parenthesis/bracket depth zero.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !s[start..].trim().is_empty() || parts.is_empty() {
        parts.push(&s[start..]);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_calls_translate() {
        let src = "cudaMalloc(&p, n); cudaMemcpy(d, h, n, cudaMemcpyHostToDevice); cudaDeviceSynchronize();";
        let r = hipify_source(src);
        assert!(r.is_clean(), "{:?}", r.unsupported);
        assert_eq!(
            r.source,
            "hipMalloc(&p, n); hipMemcpy(d, h, n, hipMemcpyHostToDevice); hipDeviceSynchronize();"
        );
        assert_eq!(r.replacements, 4);
    }

    #[test]
    fn identifier_boundaries_respected() {
        // Substrings of identifiers must not be rewritten.
        let src = "int my_cudaMalloc_wrapper = 0; cudaMalloc(&p, n);";
        let r = hipify_source(src);
        assert!(r.source.contains("my_cudaMalloc_wrapper"));
        assert!(r.source.contains("hipMalloc(&p, n)"));
    }

    #[test]
    fn includes_rewritten() {
        let src = "#include <cuda_runtime.h>\n#include <cufft.h>\n#include <nccl.h>\n";
        let r = hipify_source(src);
        assert!(r.source.contains("<hip/hip_runtime.h>"));
        assert!(r.source.contains("<hipfft/hipfft.h>"));
        assert!(r.source.contains("<rccl/rccl.h>"));
        assert!(r.is_clean());
    }

    #[test]
    fn nccl_symbols_survive_unchanged() {
        // RCCL is NCCL-API-compatible: only the header moves.
        let src = "ncclAllReduce(sb, rb, n, ncclDouble, ncclSum, comm, s);";
        let r = hipify_source(src);
        assert_eq!(r.source, src);
        assert!(r.is_clean());
    }

    #[test]
    fn kernel_launch_rewritten() {
        let src = "pad_kernel<<<grid, block>>>(dst, src, n);";
        let r = hipify_source(src);
        assert_eq!(r.source, "hipLaunchKernelGGL(pad_kernel, grid, block, 0, 0, dst, src, n);");
    }

    #[test]
    fn kernel_launch_with_shmem_and_stream() {
        let src = "k<<<dim3(gx,gy), 256, shmem, stream>>>(a, b);";
        let r = hipify_source(src);
        assert_eq!(r.source, "hipLaunchKernelGGL(k, dim3(gx,gy), 256, shmem, stream, a, b);");
    }

    #[test]
    fn multiple_launches_in_one_file() {
        let src = "a<<<1, 2>>>(x);\nb<<<3, 4>>>(y);\n";
        let r = hipify_source(src);
        assert!(r.source.contains("hipLaunchKernelGGL(a, 1, 2, 0, 0, x);"));
        assert!(r.source.contains("hipLaunchKernelGGL(b, 3, 4, 0, 0, y);"));
    }

    #[test]
    fn unsupported_cutensor_permutation_detected() {
        // The exact gap the paper hit: cuTENSOR v2 permutation for complex
        // doubles has no hipTensor counterpart yet.
        let src = "cutensorPermute(handle, plan, alpha, in, out, stream);";
        let r = hipify_source(src);
        assert_eq!(r.unsupported.len(), 1);
        assert_eq!(r.unsupported[0].name, "cutensorPermute");
        assert_eq!(r.unsupported[0].line, 1);
    }

    #[test]
    fn unsupported_reports_line_numbers() {
        let src = "cudaMalloc(&p, n);\n\ncutensorCreatePermutation(h);\n";
        let r = hipify_source(src);
        assert_eq!(r.unsupported.len(), 1);
        assert_eq!(r.unsupported[0].line, 3);
    }

    #[test]
    fn cublas_and_cufft_translate() {
        let src = "cublasZgemvStridedBatched(h, CUBLAS_OP_C, m, n, &a, A, lda, sa, x, 1, sx, &b, y, 1, sy, bc);\ncufftExecD2Z(plan, in, out);";
        let r = hipify_source(src);
        assert!(r.is_clean(), "{:?}", r.unsupported);
        assert!(r
            .source
            .contains("rocblas_zgemv_strided_batched(h, rocblas_operation_conjugate_transpose"));
        assert!(r.source.contains("hipfftExecD2Z(plan, in, out)"));
    }

    #[test]
    fn hipified_source_is_fixed_point() {
        let src = "cudaMalloc(&p, n); k<<<1, 2>>>(p);";
        let once = hipify_source(src);
        let twice = hipify_source(&once.source);
        assert_eq!(once.source, twice.source);
        assert_eq!(twice.replacements, 0);
    }

    #[test]
    fn top_level_comma_splitting() {
        assert_eq!(split_top_level_commas("a, b"), vec!["a", " b"]);
        assert_eq!(split_top_level_commas("dim3(1,2), 256"), vec!["dim3(1,2)", " 256"]);
        assert_eq!(split_top_level_commas("x"), vec!["x"]);
    }
}
