//! The portability device backend.
//!
//! After hipification the application binds each logical kernel to a
//! per-vendor artifact and device. This is the runtime half of the
//! portability story: one maintained source, two executable targets —
//! surfaced to the rest of the workspace as a
//! [`fftmatvec_backend::DeviceBackend`], the same trait
//! the CPU pool and the simulated device implement.
//!
//! In this offline environment the backend goes as far as the toolchain
//! allows: construction runs the full hipify pipeline and validates
//! every kernel source (translation failures are build errors), while
//! the execution primitives return
//! [`BackendError::Unavailable`] — the typed landing pad a real GPU
//! runtime replaces.

use std::sync::Arc;

use fftmatvec_backend::{BackendError, BackendKind, BatchFft, DeviceBackend, TransferStats};
use fftmatvec_gpu::{CdnaGeneration, DeviceSpec};
use fftmatvec_numeric::{ComplexBuffer, Precision, RealBuffer};

use crate::pipeline::{Artifact, BuildError, HipifyPipeline};

/// GPU vendor a kernel source compiles for. This is *not* a backend in
/// the [`BackendKind`] sense — both vendors sit behind the one
/// `portability` backend; the vendor only selects the translation path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GpuVendor {
    /// NVIDIA path — the maintained sources compile as-is.
    Cuda,
    /// AMD path — sources are hipified on the fly.
    Hip,
}

impl GpuVendor {
    /// The compiler the build system invokes for this target.
    pub fn compiler(self) -> &'static str {
        match self {
            GpuVendor::Cuda => "nvcc",
            GpuVendor::Hip => "amdclang++",
        }
    }
}

/// A built application: every kernel bound to a vendor and a device,
/// dispatchable through the workspace-wide [`DeviceBackend`] trait.
pub struct PortabilityBackend {
    vendor: GpuVendor,
    device: DeviceSpec,
    artifacts: Vec<Artifact>,
}

impl std::fmt::Debug for PortabilityBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortabilityBackend")
            .field("vendor", &self.vendor)
            .field("device", &self.device.name)
            .field("artifacts", &self.artifacts.len())
            .finish()
    }
}

impl PortabilityBackend {
    /// Build the FFTMatvec application for a vendor/device pair: runs
    /// the hipify pipeline over every registered kernel source and keeps
    /// the built artifacts.
    pub fn build(vendor: GpuVendor, device: DeviceSpec) -> Result<Self, BuildError> {
        let mut pipeline = HipifyPipeline::fftmatvec_app();
        let artifacts = pipeline.build_all(vendor)?;
        Ok(PortabilityBackend { vendor, device, artifacts })
    }

    /// Build for a simulated NVIDIA device (CUDA pass-through).
    pub fn cuda_reference() -> Result<Self, BuildError> {
        // An A100-class device for the NVIDIA side of the comparison.
        let device = DeviceSpec {
            name: "A100-80GB (simulated)",
            generation: CdnaGeneration::Cdna2, // generation is AMD-specific; unused here
            peak_bw: 2.0e12,
            peak_fp64: 9.7e12,
            peak_fp32: 19.5e12,
            peak_fp16: 78.0e12,
            cu_count: 108,
            wavefront: 32,
            lds_bytes: 164 * 1024,
            launch_latency: 3.0e-6,
            memory_bytes: 80 * (1u64 << 30),
            sbgemv_cap_fp64: 0.72,
            sbgemv_cap_fp32: 0.70,
            sbgemv_cap_fp16: 0.60,
            streaming_cap: 0.85,
            fft_cap: 0.80,
        };
        Self::build(GpuVendor::Cuda, device)
    }

    /// The bound vendor.
    pub fn vendor(&self) -> GpuVendor {
        self.vendor
    }

    /// The bound device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Look up a built artifact by logical source name.
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// All artifacts.
    pub fn artifacts(&self) -> &[Artifact] {
        &self.artifacts
    }

    fn unavailable(&self, what: &str) -> BackendError {
        BackendError::Unavailable {
            backend: "portability",
            reason: format!(
                "{what}: kernels are hipified and validated ({} artifacts for {:?}) but no GPU \
                 runtime exists in this environment to execute them",
                self.artifacts.len(),
                self.vendor,
            ),
        }
    }
}

impl DeviceBackend for PortabilityBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Portability
    }

    fn name(&self) -> &'static str {
        "portability"
    }

    fn upload_f64(
        &self,
        _src: &[f64],
        _p: Precision,
        _dst: &mut RealBuffer,
    ) -> Result<(), BackendError> {
        Err(self.unavailable("upload"))
    }

    fn download_f64(&self, _src: &RealBuffer, _dst: &mut [f64]) -> Result<(), BackendError> {
        Err(self.unavailable("download"))
    }

    fn record_upload(&self, _bytes: usize) {}

    fn record_download(&self, _bytes: usize) {}

    fn transfers(&self) -> TransferStats {
        TransferStats::default()
    }

    fn reset_transfers(&self) {}

    fn real_fft(&self, _p: Precision, _n: usize) -> Result<Arc<dyn BatchFft>, BackendError> {
        Err(self.unavailable("batched FFT plan"))
    }

    fn pointwise_multiply(
        &self,
        _io: &mut ComplexBuffer,
        _sym: &ComplexBuffer,
        _conj: bool,
    ) -> Result<(), BackendError> {
        Err(self.unavailable("pointwise multiply"))
    }

    fn cast_real(
        &self,
        _src: &RealBuffer,
        _p: Precision,
        _dst: &mut RealBuffer,
    ) -> Result<(), BackendError> {
        Err(self.unavailable("batched cast"))
    }

    fn cast_complex(
        &self,
        _src: &ComplexBuffer,
        _p: Precision,
        _dst: &mut ComplexBuffer,
    ) -> Result<(), BackendError> {
        Err(self.unavailable("batched cast"))
    }

    fn tree_reduce(&self, _flat: &mut RealBuffer, _len: usize) -> Result<(), BackendError> {
        Err(self.unavailable("tree reduce"))
    }
}

/// The factory [`install`] registers: hipify + validate the AMD build
/// for the paper's flagship device. Translation failures surface as
/// [`BackendError::Unavailable`] at selection time.
fn portability_factory() -> Result<Arc<dyn DeviceBackend>, BackendError> {
    match PortabilityBackend::build(GpuVendor::Hip, DeviceSpec::mi300x()) {
        Ok(backend) => Ok(Arc::new(backend)),
        Err(e) => Err(BackendError::Unavailable {
            backend: "portability",
            reason: format!("hipify build failed: {e}"),
        }),
    }
}

/// Register the portability backend with the process-wide registry, so
/// `FFTMATVEC_BACKEND=portability` (or `.backend(..)`) can select it.
/// Returns `false` if a portability factory was already installed.
pub fn install() -> bool {
    fftmatvec_backend::register_portability(portability_factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hip_backend_builds_for_all_amd_devices() {
        for dev in DeviceSpec::paper_lineup() {
            let d = PortabilityBackend::build(GpuVendor::Hip, dev.clone()).unwrap();
            assert_eq!(d.vendor(), GpuVendor::Hip);
            assert_eq!(d.device().name, dev.name);
            assert_eq!(d.artifacts().len(), 6);
            assert!(d.artifact("sbgemv_host.cu").is_some());
            assert!(d.artifact("missing.cu").is_none());
        }
    }

    #[test]
    fn cuda_backend_keeps_sources_verbatim() {
        let d = PortabilityBackend::cuda_reference().unwrap();
        assert_eq!(d.vendor(), GpuVendor::Cuda);
        let pad = d.artifact("pad_kernel.cu").unwrap();
        assert_eq!(pad.source, crate::kernels_cuda::PAD_KERNEL);
    }

    #[test]
    fn compilers() {
        assert_eq!(GpuVendor::Cuda.compiler(), "nvcc");
        assert_eq!(GpuVendor::Hip.compiler(), "amdclang++");
    }

    #[test]
    fn same_logical_kernels_on_both_vendors() {
        let cuda = PortabilityBackend::cuda_reference().unwrap();
        let hip = PortabilityBackend::build(GpuVendor::Hip, DeviceSpec::mi300x()).unwrap();
        let mut cn: Vec<&str> = cuda.artifacts().iter().map(|a| a.name.as_str()).collect();
        let mut hn: Vec<&str> = hip.artifacts().iter().map(|a| a.name.as_str()).collect();
        cn.sort();
        hn.sort();
        assert_eq!(cn, hn, "one source tree, two targets");
    }

    #[test]
    fn execution_primitives_are_typed_unavailable() {
        let d = PortabilityBackend::build(GpuVendor::Hip, DeviceSpec::mi300x()).unwrap();
        assert_eq!(d.kind(), BackendKind::Portability);
        let err = d.real_fft(Precision::Double, 8).unwrap_err();
        match err {
            BackendError::Unavailable { backend, reason } => {
                assert_eq!(backend, "portability");
                assert!(reason.contains("6 artifacts"), "reason: {reason}");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        let mut io = ComplexBuffer::zeros(Precision::Double, 4);
        let sym = ComplexBuffer::zeros(Precision::Double, 4);
        assert!(d.pointwise_multiply(&mut io, &sym, false).is_err());
    }

    #[test]
    fn install_registers_the_factory() {
        // First call wins; either way the registry now resolves the
        // portability kind to a real build attempt.
        install();
        let built = fftmatvec_backend::create(BackendKind::Portability).unwrap();
        assert_eq!(built.kind(), BackendKind::Portability);
        assert_eq!(built.name(), "portability");
    }
}
