//! Per-vendor backend dispatch.
//!
//! After hipification the application binds each logical kernel to a
//! per-vendor artifact and device. This is the runtime half of the
//! portability story: one maintained source, two executable targets.

use fftmatvec_gpu::{CdnaGeneration, DeviceSpec};

use crate::pipeline::{Artifact, BuildError, HipifyPipeline};

/// Compilation/dispatch target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// NVIDIA path — the maintained sources compile as-is.
    Cuda,
    /// AMD path — sources are hipified on the fly.
    Hip,
}

impl Backend {
    /// The compiler the build system invokes for this target.
    pub fn compiler(self) -> &'static str {
        match self {
            Backend::Cuda => "nvcc",
            Backend::Hip => "amdclang++",
        }
    }
}

/// A built application: every kernel bound to a backend and a device.
pub struct BackendDispatch {
    backend: Backend,
    device: DeviceSpec,
    artifacts: Vec<Artifact>,
}

impl BackendDispatch {
    /// Build the FFTMatvec application for a backend/device pair.
    pub fn build(backend: Backend, device: DeviceSpec) -> Result<Self, BuildError> {
        let mut pipeline = HipifyPipeline::fftmatvec_app();
        let artifacts = pipeline.build_all(backend)?;
        Ok(BackendDispatch { backend, device, artifacts })
    }

    /// Build for a simulated NVIDIA device (CUDA pass-through).
    pub fn cuda_reference() -> Result<Self, BuildError> {
        // An A100-class device for the NVIDIA side of the comparison.
        let device = DeviceSpec {
            name: "A100-80GB (simulated)",
            generation: CdnaGeneration::Cdna2, // generation is AMD-specific; unused here
            peak_bw: 2.0e12,
            peak_fp64: 9.7e12,
            peak_fp32: 19.5e12,
            peak_fp16: 78.0e12,
            cu_count: 108,
            wavefront: 32,
            lds_bytes: 164 * 1024,
            launch_latency: 3.0e-6,
            memory_bytes: 80 * (1u64 << 30),
            sbgemv_cap_fp64: 0.72,
            sbgemv_cap_fp32: 0.70,
            sbgemv_cap_fp16: 0.60,
            streaming_cap: 0.85,
            fft_cap: 0.80,
        };
        Self::build(Backend::Cuda, device)
    }

    /// The bound backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The bound device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Look up a built artifact by logical source name.
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// All artifacts.
    pub fn artifacts(&self) -> &[Artifact] {
        &self.artifacts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hip_dispatch_builds_for_all_amd_devices() {
        for dev in DeviceSpec::paper_lineup() {
            let d = BackendDispatch::build(Backend::Hip, dev.clone()).unwrap();
            assert_eq!(d.backend(), Backend::Hip);
            assert_eq!(d.device().name, dev.name);
            assert_eq!(d.artifacts().len(), 6);
            assert!(d.artifact("sbgemv_host.cu").is_some());
            assert!(d.artifact("missing.cu").is_none());
        }
    }

    #[test]
    fn cuda_dispatch_keeps_sources_verbatim() {
        let d = BackendDispatch::cuda_reference().unwrap();
        assert_eq!(d.backend(), Backend::Cuda);
        let pad = d.artifact("pad_kernel.cu").unwrap();
        assert_eq!(pad.source, crate::kernels_cuda::PAD_KERNEL);
    }

    #[test]
    fn compilers() {
        assert_eq!(Backend::Cuda.compiler(), "nvcc");
        assert_eq!(Backend::Hip.compiler(), "amdclang++");
    }

    #[test]
    fn same_logical_kernels_on_both_backends() {
        let cuda = BackendDispatch::cuda_reference().unwrap();
        let hip = BackendDispatch::build(Backend::Hip, DeviceSpec::mi300x()).unwrap();
        let mut cn: Vec<&str> = cuda.artifacts().iter().map(|a| a.name.as_str()).collect();
        let mut hn: Vec<&str> = hip.artifacts().iter().map(|a| a.name.as_str()).collect();
        cn.sort();
        hn.sort();
        assert_eq!(cn, hn, "one source tree, two targets");
    }
}
