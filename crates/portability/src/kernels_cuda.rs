//! The maintained "CUDA" source tree of the FFTMatvec application.
//!
//! These are the device kernels and host glue the paper's application
//! keeps in pure CUDA (Section 3.1) — the single source of truth that the
//! on-the-fly pipeline hipifies at build time. Each source exercises a
//! different part of the translation table; `COMPLEX_PERMUTE` deliberately
//! uses the cuTENSOR-v2 permutation API that has no hipTensor counterpart,
//! reproducing the gap the paper plugged with a custom kernel.

/// Phase-1 zero-pad kernel with a fused double→float cast.
pub const PAD_KERNEL: &str = r#"#include <cuda_runtime.h>

__global__ void pad_cast_kernel(float* out, const double* in, int nt, int n2, int n_series) {
    int s = blockIdx.x * blockDim.x + threadIdx.x;
    if (s >= n_series) return;
    for (int t = 0; t < n2; ++t) {
        out[s * n2 + t] = (t < nt) ? (float)in[t * n_series + s] : 0.0f;
    }
}

extern "C" void launch_pad(float* out, const double* in, int nt, int n2, int ns, cudaStream_t stream) {
    dim3 grid((ns + 255) / 256);
    dim3 block(256);
    pad_cast_kernel<<<grid, block, 0, stream>>>(out, in, nt, n2, ns);
    cudaError_t err = cudaGetLastError();
    (void)err;
}
"#;

/// Phase-5 unpad kernel.
pub const UNPAD_KERNEL: &str = r#"#include <cuda_runtime.h>

__global__ void unpad_kernel(double* out, const double* in, int nt, int n2, int n_series) {
    int idx = blockIdx.x * blockDim.x + threadIdx.x;
    if (idx >= n_series * nt) return;
    int s = idx / nt;
    int t = idx % nt;
    out[t * n_series + s] = in[s * n2 + t];
}

extern "C" void launch_unpad(double* out, const double* in, int nt, int n2, int ns) {
    unpad_kernel<<<(ns * nt + 255) / 256, 256>>>(out, in, nt, n2, ns);
    cudaDeviceSynchronize();
}
"#;

/// Host-side phase-3 dispatch through cuBLAS strided batched GEMV.
pub const SBGEMV_HOST: &str = r#"#include <cublas_v2.h>
#include <cuda_runtime.h>

extern "C" void sbgemv_forward(cublasHandle_t handle, int nd, int nm, int nfreq,
                               const cuDoubleComplex* fhat, const cuDoubleComplex* x,
                               cuDoubleComplex* y) {
    cuDoubleComplex one = make_cuDoubleComplex(1.0, 0.0);
    cuDoubleComplex zero = make_cuDoubleComplex(0.0, 0.0);
    cublasZgemvStridedBatched(handle, CUBLAS_OP_N, nd, nm, &one,
                              fhat, nd, (long long)nd * nm,
                              x, 1, nm, &zero, y, 1, nd, nfreq);
}

extern "C" void sbgemv_adjoint(cublasHandle_t handle, int nd, int nm, int nfreq,
                               const cuDoubleComplex* fhat, const cuDoubleComplex* x,
                               cuDoubleComplex* y) {
    cuDoubleComplex one = make_cuDoubleComplex(1.0, 0.0);
    cuDoubleComplex zero = make_cuDoubleComplex(0.0, 0.0);
    cublasZgemvStridedBatched(handle, CUBLAS_OP_C, nd, nm, &one,
                              fhat, nd, (long long)nd * nm,
                              x, 1, nd, &zero, y, 1, nm, nfreq);
}
"#;

/// Phase-2/4 batched FFT setup and execution through cuFFT.
pub const FFT_HOST: &str = r#"#include <cufft.h>
#include <cuda_runtime.h>

extern "C" cufftResult plan_batched_r2c(cufftHandle* plan, int n2, int batch) {
    int n[1] = { n2 };
    return cufftPlanMany(plan, 1, n, 0, 1, n2, 0, 1, n2 / 2 + 1, CUFFT_D2Z, batch);
}

extern "C" void run_forward_fft(cufftHandle plan, cufftDoubleReal* in, cufftDoubleComplex* out,
                                cudaStream_t stream) {
    cufftSetStream(plan, stream);
    cufftExecD2Z(plan, in, out);
}

extern "C" void run_inverse_fft(cufftHandle plan, cufftDoubleComplex* in, cufftDoubleReal* out) {
    cufftExecZ2D(plan, in, out);
}
"#;

/// Phase-5 multi-GPU reduction through NCCL (RCCL keeps this API).
pub const NCCL_REDUCE: &str = r#"#include <nccl.h>
#include <cuda_runtime.h>

extern "C" void reduce_partials(const double* sendbuf, double* recvbuf, size_t count,
                                ncclComm_t comm, cudaStream_t stream) {
    ncclReduce(sendbuf, recvbuf, count, ncclDouble, ncclSum, 0, comm, stream);
    cudaStreamSynchronize(stream);
}
"#;

/// Setup-phase complex-double tensor permutation through cuTENSOR v2 —
/// the functionality hipTensor does not yet provide (Section 3.1). HIP
/// builds must either fail with "Not Supported" or use the registered
/// custom kernel below.
pub const COMPLEX_PERMUTE: &str = r#"#include <cutensor.h>
#include <cuda_runtime.h>

extern "C" void permute_setup_tensor(cutensorHandle_t handle, const void* alpha,
                                     const cuDoubleComplex* in, cuDoubleComplex* out,
                                     cudaStream_t stream) {
    cutensorPermutation(handle, alpha, in, 0, 0, out, 0, 0, 0, stream);
}
"#;

/// The custom permutation kernel that replaces the cuTENSOR call on AMD
/// (the Jodra-et-al.-style 3-D transposition adapted to avoid grid-dim
/// overflow, per Section 3.1).
pub const COMPLEX_PERMUTE_FALLBACK: &str = r#"#include <cuda_runtime.h>

__global__ void permute_cdouble_kernel(double2* out, const double2* in,
                                       int d0, int d1, int d2) {
    long long idx = (long long)blockIdx.x * blockDim.x + threadIdx.x;
    long long total = (long long)d0 * d1 * d2;
    // Grid-stride loop: avoids overflowing the y/z grid-dimension limits.
    for (; idx < total; idx += (long long)gridDim.x * blockDim.x) {
        int i = idx / (d1 * d2);
        int rem = idx % (d1 * d2);
        int j = rem / d2;
        int k = rem % d2;
        out[((long long)k * d1 + j) * d0 + i] = in[idx];
    }
}

extern "C" void permute_setup_tensor_custom(const double2* in, double2* out,
                                            int d0, int d1, int d2, cudaStream_t stream) {
    permute_cdouble_kernel<<<1024, 256, 0, stream>>>(out, in, d0, d1, d2);
}
"#;

/// Every maintained source, by logical name.
pub const ALL_SOURCES: &[(&str, &str)] = &[
    ("pad_kernel.cu", PAD_KERNEL),
    ("unpad_kernel.cu", UNPAD_KERNEL),
    ("sbgemv_host.cu", SBGEMV_HOST),
    ("fft_host.cu", FFT_HOST),
    ("nccl_reduce.cu", NCCL_REDUCE),
    ("complex_permute.cu", COMPLEX_PERMUTE),
];
