//! # fftmatvec-portability — hipify on-the-fly
//!
//! The paper's performance-portability contribution (Section 3.1): keep a
//! *single* CUDA source tree and translate it to HIP at compile time, so
//! NVIDIA builds are untouched and AMD builds are generated — no dual
//! source maintenance, no framework rewrite. This crate rebuilds that
//! workflow:
//!
//! * [`hipify`] — a `hipify-perl`-style translator: an ordered API mapping
//!   table (CUDA runtime, cuBLAS, cuFFT, cuTENSOR, NCCL, kernel-launch
//!   syntax, headers) applied by an identifier-aware scanner. Unmapped
//!   `cu*` APIs produce the "Not Supported" diagnostics the paper
//!   describes.
//! * [`pipeline`] — the on-the-fly build step: a registry of in-repo
//!   "CUDA" kernel sources (the actual FFTMatvec device kernels: pad,
//!   unpad, fused cast, SBGEMV launcher, batched FFT setup, NCCL
//!   reduction, and the cuTENSOR complex permutation that hipTensor does
//!   not support), per-source staleness hashing so edits re-trigger
//!   hipification, and a custom-kernel fallback registry that plugs the
//!   cuTENSOR gap exactly as Section 3.1 does.
//! * [`backend`] — the dispatch layer pairing each logical kernel with a
//!   per-vendor artifact and simulated device, exposed as the workspace's
//!   [`fftmatvec_backend::DeviceBackend`] portability backend (call
//!   [`install`] to register it for `FFTMATVEC_BACKEND=portability`
//!   selection; its execution primitives are typed-unavailable until a
//!   real GPU runtime exists).

pub mod backend;
pub mod hipify;
pub mod kernels_cuda;
pub mod pipeline;
pub mod report;

pub use backend::{install, GpuVendor, PortabilityBackend};
pub use hipify::{hipify_source, HipifyResult, UnsupportedApi};
pub use pipeline::{BuildError, HipifyPipeline};
pub use report::{report_for, TranslationReport};
