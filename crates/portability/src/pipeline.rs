//! The on-the-fly build pipeline (Section 3.1).
//!
//! Mirrors the CMake integration the paper describes: the only maintained
//! sources are CUDA; building for AMD hipifies each source into the
//! "build directory" (here, in-memory artifacts); building for NVIDIA is
//! a pass-through. Per-source content hashes make edits re-trigger
//! hipification of exactly the modified files. CUDA APIs with no HIP
//! counterpart fail the build with a "Not Supported" error unless a
//! custom-kernel fallback has been registered — the mechanism the paper
//! used to plug the cuTENSOR-v2 complex-permutation gap.

use std::collections::HashMap;

use crate::backend::GpuVendor;
use crate::hipify::{hipify_source, UnsupportedApi};

/// Build failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A CUDA API had no HIP mapping and no registered fallback.
    NotSupported {
        /// Source file name.
        file: String,
        /// The offending APIs.
        apis: Vec<UnsupportedApi>,
    },
    /// Unknown source name.
    UnknownSource(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NotSupported { file, apis } => {
                write!(f, "Not Supported: {file}: ")?;
                for a in apis {
                    write!(f, "{} (line {}) ", a.name, a.line)?;
                }
                Ok(())
            }
            BuildError::UnknownSource(s) => write!(f, "unknown source {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// One translated (or passed-through) compilation unit.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Logical source name.
    pub name: String,
    /// Target vendor.
    pub vendor: GpuVendor,
    /// The source text handed to the (simulated) compiler.
    pub source: String,
    /// Rewrites performed (0 for CUDA pass-through).
    pub replacements: usize,
    /// Whether this unit was rebuilt (false = served from cache).
    pub rebuilt: bool,
}

/// FNV-1a content hash (no external dependencies).
fn fnv1a(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The on-the-fly hipify build pipeline.
pub struct HipifyPipeline {
    sources: HashMap<String, String>,
    /// API name → replacement source appended to units using it.
    fallbacks: HashMap<String, FallbackKernel>,
    /// (name, vendor) → (source hash, artifact).
    cache: HashMap<(String, GpuVendor), (u64, Artifact)>,
}

/// A custom kernel registered to replace an unsupported API.
#[derive(Clone, Debug)]
pub struct FallbackKernel {
    /// The host entry point that replaces the unsupported call.
    pub entry_point: String,
    /// The (CUDA) source of the replacement, hipified along with the
    /// unit that uses it.
    pub source: String,
}

impl Default for HipifyPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl HipifyPipeline {
    /// Empty pipeline.
    pub fn new() -> Self {
        HipifyPipeline { sources: HashMap::new(), fallbacks: HashMap::new(), cache: HashMap::new() }
    }

    /// The FFTMatvec application tree: all maintained CUDA sources plus
    /// the custom complex-permutation fallback (Section 3.1's worked
    /// example) already registered.
    pub fn fftmatvec_app() -> Self {
        let mut p = Self::new();
        for (name, src) in crate::kernels_cuda::ALL_SOURCES {
            p.add_source(name, src);
        }
        p.register_fallback(
            "cutensorPermutation",
            "permute_setup_tensor_custom",
            crate::kernels_cuda::COMPLEX_PERMUTE_FALLBACK,
        );
        p
    }

    /// Add or replace a maintained CUDA source.
    pub fn add_source(&mut self, name: &str, source: &str) {
        self.sources.insert(name.to_string(), source.to_string());
    }

    /// Registered source names (sorted).
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sources.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register a custom kernel replacing an unsupported CUDA API.
    pub fn register_fallback(&mut self, api: &str, entry_point: &str, source: &str) {
        self.fallbacks.insert(
            api.to_string(),
            FallbackKernel { entry_point: entry_point.to_string(), source: source.to_string() },
        );
    }

    /// Build one source for a vendor target.
    pub fn build_one(&mut self, name: &str, vendor: GpuVendor) -> Result<Artifact, BuildError> {
        let src = self
            .sources
            .get(name)
            .ok_or_else(|| BuildError::UnknownSource(name.to_string()))?
            .clone();
        let hash = fnv1a(&src);
        if let Some((cached_hash, artifact)) = self.cache.get(&(name.to_string(), vendor)) {
            if *cached_hash == hash {
                let mut hit = artifact.clone();
                hit.rebuilt = false;
                return Ok(hit);
            }
        }

        let artifact = match vendor {
            GpuVendor::Cuda => Artifact {
                name: name.to_string(),
                vendor,
                source: src.clone(),
                replacements: 0,
                rebuilt: true,
            },
            GpuVendor::Hip => {
                let mut result = hipify_source(&src);
                let mut remaining = Vec::new();
                for u in result.unsupported {
                    if let Some(fb) = self.fallbacks.get(&u.name) {
                        // Redirect the call and append the (hipified)
                        // custom kernel to the unit.
                        result.source = result.source.replace(&u.name, &fb.entry_point);
                        let fb_hip = hipify_source(&fb.source);
                        debug_assert!(fb_hip.is_clean(), "fallback source must hipify cleanly");
                        result.source.push_str("\n// --- custom fallback kernel ---\n");
                        result.source.push_str(&fb_hip.source);
                        result.replacements += 1 + fb_hip.replacements;
                    } else {
                        remaining.push(u);
                    }
                }
                if !remaining.is_empty() {
                    return Err(BuildError::NotSupported {
                        file: name.to_string(),
                        apis: remaining,
                    });
                }
                Artifact {
                    name: name.to_string(),
                    vendor,
                    source: result.source,
                    replacements: result.replacements,
                    rebuilt: true,
                }
            }
        };
        self.cache.insert((name.to_string(), vendor), (hash, artifact.clone()));
        Ok(artifact)
    }

    /// Build every registered source for a vendor target.
    pub fn build_all(&mut self, vendor: GpuVendor) -> Result<Vec<Artifact>, BuildError> {
        let names = self.source_names();
        names.into_iter().map(|n| self.build_one(&n, vendor)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_build_is_passthrough() {
        let mut p = HipifyPipeline::fftmatvec_app();
        let arts = p.build_all(GpuVendor::Cuda).unwrap();
        assert_eq!(arts.len(), 6);
        for a in &arts {
            assert_eq!(a.replacements, 0, "{}", a.name);
            assert!(
                a.source.contains("cuda")
                    || a.source.contains("cublas")
                    || a.source.contains("nccl")
            );
        }
    }

    #[test]
    fn hip_build_translates_everything_with_fallback() {
        let mut p = HipifyPipeline::fftmatvec_app();
        let arts = p.build_all(GpuVendor::Hip).unwrap();
        assert_eq!(arts.len(), 6);
        for a in &arts {
            assert!(a.replacements > 0, "{} had no rewrites", a.name);
            // No CUDA runtime identifiers may survive.
            assert!(!a.source.contains("cudaMalloc"), "{}", a.name);
            assert!(!a.source.contains("<<<"), "{} kept launch syntax", a.name);
        }
        // The permutation unit got the custom kernel spliced in.
        let perm = arts.iter().find(|a| a.name == "complex_permute.cu").unwrap();
        assert!(perm.source.contains("permute_setup_tensor_custom"));
        assert!(perm.source.contains("custom fallback kernel"));
        assert!(!perm.source.contains("cutensorPermutation"));
    }

    #[test]
    fn hip_build_without_fallback_reports_not_supported() {
        let mut p = HipifyPipeline::new();
        p.add_source("complex_permute.cu", crate::kernels_cuda::COMPLEX_PERMUTE);
        let err = p.build_one("complex_permute.cu", GpuVendor::Hip).unwrap_err();
        match err {
            BuildError::NotSupported { file, apis } => {
                assert_eq!(file, "complex_permute.cu");
                assert!(apis.iter().any(|a| a.name == "cutensorPermutation"));
            }
            other => panic!("wrong error {other:?}"),
        }
        // The display form carries the paper's wording.
        let msg = p.build_one("complex_permute.cu", GpuVendor::Hip).unwrap_err().to_string();
        assert!(msg.contains("Not Supported"));
    }

    #[test]
    fn cache_serves_unmodified_sources_and_rebuilds_edits() {
        let mut p = HipifyPipeline::fftmatvec_app();
        let first = p.build_one("pad_kernel.cu", GpuVendor::Hip).unwrap();
        assert!(first.rebuilt);
        let second = p.build_one("pad_kernel.cu", GpuVendor::Hip).unwrap();
        assert!(!second.rebuilt, "unchanged source must come from cache");
        assert_eq!(first.source, second.source);
        // Edit the CUDA source: recompilation re-hipifies just that file.
        let edited = crate::kernels_cuda::PAD_KERNEL.replace("256", "128");
        p.add_source("pad_kernel.cu", &edited);
        let third = p.build_one("pad_kernel.cu", GpuVendor::Hip).unwrap();
        assert!(third.rebuilt);
        assert!(third.source.contains("128"));
        // Other files remain cached.
        let other = p.build_one("unpad_kernel.cu", GpuVendor::Hip).unwrap();
        let other2 = p.build_one("unpad_kernel.cu", GpuVendor::Hip).unwrap();
        assert!(other.rebuilt);
        assert!(!other2.rebuilt);
    }

    #[test]
    fn unknown_source_errors() {
        let mut p = HipifyPipeline::new();
        assert_eq!(
            p.build_one("nope.cu", GpuVendor::Hip).unwrap_err(),
            BuildError::UnknownSource("nope.cu".into())
        );
    }

    #[test]
    fn nccl_unit_translates_header_only() {
        let mut p = HipifyPipeline::fftmatvec_app();
        let art = p.build_one("nccl_reduce.cu", GpuVendor::Hip).unwrap();
        assert!(art.source.contains("<rccl/rccl.h>"));
        assert!(art.source.contains("ncclReduce"), "RCCL keeps NCCL symbols");
        assert!(art.source.contains("hipStreamSynchronize"));
    }

    #[test]
    fn fnv_hash_changes_with_content() {
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_eq!(fnv1a("same"), fnv1a("same"));
    }
}
