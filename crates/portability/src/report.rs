//! Translation reports — the summary `hipify-perl` prints per file,
//! aggregated per CUDA library so a port can be audited at a glance
//! (which subsystems the application leans on, and where the unsupported
//! surface lives).

use std::collections::BTreeMap;

use crate::hipify::{hipify_source, HipifyResult};

/// Per-library rewrite statistics for one source file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslationReport {
    /// Rewrites grouped by originating library ("cuda", "cublas", …).
    pub by_library: BTreeMap<String, usize>,
    /// Total rewrites (identifier + include + launch).
    pub total: usize,
    /// Unsupported API names (after fallbacks, if the pipeline applied
    /// them; raw translation otherwise).
    pub unsupported: Vec<String>,
}

/// Classify a CUDA identifier by library prefix.
pub fn library_of(ident: &str) -> &'static str {
    const TABLE: &[(&str, &str)] = &[
        ("make_cu", "cuda"),
        ("cublas", "cublas"),
        ("CUBLAS_", "cublas"),
        ("cufft", "cufft"),
        ("CUFFT_", "cufft"),
        ("curand", "curand"),
        ("CURAND_", "curand"),
        ("cutensor", "cutensor"),
        ("CUTENSOR_", "cutensor"),
        ("nccl", "nccl"),
        ("cuda", "cuda"),
        ("cu", "cuda"),
    ];
    for (prefix, lib) in TABLE {
        if ident.starts_with(prefix) {
            return lib;
        }
    }
    "other"
}

/// Produce a per-library report by re-scanning the source against the
/// translation result.
pub fn report_for(src: &str) -> TranslationReport {
    let result: HipifyResult = hipify_source(src);
    let mut by_library: BTreeMap<String, usize> = BTreeMap::new();

    // Count identifier-level rewrites by diffing tokens: every mapped
    // CUDA identifier in the input contributes to its library bucket.
    let map: std::collections::HashMap<&str, &str> =
        crate::hipify::API_MAPPINGS.iter().copied().collect();
    let mut chars = src.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c.is_ascii_alphabetic() || c == '_' {
            let mut end = start + c.len_utf8();
            while let Some(&(i, d)) = chars.peek() {
                if d.is_ascii_alphanumeric() || d == '_' {
                    end = i + d.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let ident = &src[start..end];
            if map.contains_key(ident) {
                *by_library.entry(library_of(ident).to_string()).or_default() += 1;
            }
        }
    }
    // Include and launch rewrites are infrastructure-level.
    let ident_total: usize = by_library.values().sum();
    if result.replacements > ident_total {
        by_library.insert("build".to_string(), result.replacements - ident_total);
    }

    TranslationReport {
        by_library,
        total: result.replacements,
        unsupported: result.unsupported.into_iter().map(|u| u.name).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels_cuda;

    #[test]
    fn library_classification() {
        assert_eq!(library_of("cudaMalloc"), "cuda");
        assert_eq!(library_of("cublasZgemvStridedBatched"), "cublas");
        assert_eq!(library_of("cufftExecD2Z"), "cufft");
        assert_eq!(library_of("CUFFT_D2Z"), "cufft");
        assert_eq!(library_of("cutensorPermutation"), "cutensor");
        assert_eq!(library_of("ncclAllReduce"), "nccl");
        assert_eq!(library_of("rocblas_dgemv"), "other");
    }

    #[test]
    fn sbgemv_host_is_cublas_heavy() {
        let r = report_for(kernels_cuda::SBGEMV_HOST);
        assert!(r.by_library.get("cublas").copied().unwrap_or(0) >= 6, "{:?}", r.by_library);
        // The complex-datatype plumbing classifies under the runtime.
        assert!(r.by_library.get("cuda").copied().unwrap_or(0) >= 10, "{:?}", r.by_library);
        assert!(r.unsupported.is_empty());
        assert!(r.total > 0);
    }

    #[test]
    fn fft_host_is_cufft_heavy() {
        let r = report_for(kernels_cuda::FFT_HOST);
        assert!(r.by_library.get("cufft").copied().unwrap_or(0) >= 8, "{:?}", r.by_library);
    }

    #[test]
    fn permute_reports_unsupported_cutensor() {
        let r = report_for(kernels_cuda::COMPLEX_PERMUTE);
        assert_eq!(r.unsupported, vec!["cutensorPermutation".to_string()]);
    }

    #[test]
    fn totals_are_consistent() {
        for (_, src) in kernels_cuda::ALL_SOURCES {
            let r = report_for(src);
            let sum: usize = r.by_library.values().sum();
            assert_eq!(sum, r.total, "per-library counts must add up");
        }
    }
}
