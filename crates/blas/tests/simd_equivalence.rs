//! Bit-for-bit equivalence of the vectorized SBGEMV tile base case
//! against the scalar sweep, across every dispatch level, for all eight
//! `Scalar` types (4 real + 4 complex).

use std::sync::Mutex;

use fftmatvec_blas::kernels::run_kernel;
use fftmatvec_blas::{BatchGeometry, GemvOp, KernelChoice};
use fftmatvec_numeric::half::{bf16, f16};
use fftmatvec_numeric::simd::{level_supported, set_active_level, SimdLevel};
use fftmatvec_numeric::{Complex, Scalar, SplitMix64};

/// Guards the process-global dispatch level against concurrent tests.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn supported_levels() -> Vec<SimdLevel> {
    [SimdLevel::Portable, SimdLevel::Avx2, SimdLevel::Avx512, SimdLevel::Neon]
        .into_iter()
        .filter(|&l| level_supported(l))
        .collect()
}

fn fill<S: Scalar>(rng: &mut SplitMix64, len: usize) -> Vec<S> {
    (0..len).map(|_| S::from_f64_parts(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
}

fn digest<S: Scalar>(v: &[S]) -> Vec<(u64, u64)> {
    v.iter()
        .map(|s| {
            let (re, im) = s.to_f64_parts();
            (re.to_bits(), im.to_bits())
        })
        .collect()
}

/// Run both kernel choices and all three ops over one geometry at the
/// current dispatch level.
fn run_all<S: Scalar>(m: usize, n: usize, batch: usize, seed: u64) -> Vec<Vec<(u64, u64)>> {
    let mut digests = Vec::new();
    for op in [GemvOp::NoTrans, GemvOp::Trans, GemvOp::ConjTrans] {
        let mut rng = SplitMix64::new(seed);
        let g = BatchGeometry::packed(m, n, op, batch);
        let a: Vec<S> = fill(&mut rng, batch * m * n);
        let x: Vec<S> = fill(&mut rng, batch * op.input_len(m, n));
        let y0: Vec<S> = fill(&mut rng, batch * op.output_len(m, n));
        let alpha = S::from_f64_parts(1.25, -0.5);
        let beta = S::from_f64_parts(0.75, 0.25);
        for kernel in [KernelChoice::Reference, KernelChoice::Optimized] {
            let mut y = y0.clone();
            run_kernel(kernel, op, alpha, &a, &x, beta, &mut y, &g);
            digests.push(digest(&y));
        }
    }
    digests
}

/// Shapes exercising the full vector body, the remainder rows of every
/// lane width (1–7 leftover rows), multiple row tiles, and the pairwise
/// tree above the base case (n > 16).
const SHAPES: &[(usize, usize, usize)] = &[(8, 20, 2), (12, 100, 1), (67, 33, 2), (5, 130, 3)];

fn check_tier<S: Scalar>() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let levels = supported_levels();
    let prev = set_active_level(SimdLevel::Portable);
    for &(m, n, batch) in SHAPES {
        let seed = (m * 1000 + n * 10 + batch) as u64;
        set_active_level(SimdLevel::Portable);
        let reference = run_all::<S>(m, n, batch, seed);
        for &level in &levels {
            set_active_level(level);
            assert_eq!(
                run_all::<S>(m, n, batch, seed),
                reference,
                "m={m} n={n} batch={batch} level={level}"
            );
        }
    }
    set_active_level(prev);
}

#[test]
fn gemv_identical_across_levels_f32() {
    check_tier::<f32>();
}

#[test]
fn gemv_identical_across_levels_f64() {
    check_tier::<f64>();
}

#[test]
fn gemv_identical_across_levels_f16() {
    check_tier::<f16>();
}

#[test]
fn gemv_identical_across_levels_bf16() {
    check_tier::<bf16>();
}

#[test]
fn gemv_identical_across_levels_c32() {
    check_tier::<Complex<f32>>();
}

#[test]
fn gemv_identical_across_levels_c64() {
    check_tier::<Complex<f64>>();
}

#[test]
fn gemv_identical_across_levels_c16() {
    check_tier::<Complex<f16>>();
}

#[test]
fn gemv_identical_across_levels_cb16() {
    check_tier::<Complex<bf16>>();
}
