//! Property-based tests for the SBGEMV kernels: both implementations must
//! agree with a naive dense oracle across randomly drawn geometries,
//! operations, scalar types, strides, and scaling factors.

use fftmatvec_blas::{sbgemv, sbgemv_with, select_kernel, BatchGeometry, GemvOp, KernelChoice};
use fftmatvec_numeric::{Complex, Scalar, SplitMix64};
use proptest::prelude::*;

fn op_from(i: u8) -> GemvOp {
    match i % 3 {
        0 => GemvOp::NoTrans,
        1 => GemvOp::Trans,
        _ => GemvOp::ConjTrans,
    }
}

fn fill<S: Scalar>(rng: &mut SplitMix64, len: usize) -> Vec<S> {
    (0..len).map(|_| S::from_f64_parts(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
}

fn naive_gemv<S: Scalar>(
    op: GemvOp,
    alpha: S,
    a: &[S],
    lda: usize,
    x: &[S],
    beta: S,
    y: &mut [S],
    m: usize,
    n: usize,
) {
    for k in 0..op.output_len(m, n) {
        let mut acc = S::zero();
        match op {
            GemvOp::NoTrans => {
                for j in 0..n {
                    acc += a[k + j * lda] * x[j];
                }
            }
            GemvOp::Trans => {
                for i in 0..m {
                    acc += a[i + k * lda] * x[i];
                }
            }
            GemvOp::ConjTrans => {
                for i in 0..m {
                    acc += a[i + k * lda].conj() * x[i];
                }
            }
        }
        y[k] = alpha * acc + beta * y[k];
    }
}

fn rel_err<S: Scalar>(a: &[S], b: &[S]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let (xr, xi) = x.to_f64_parts();
        let (yr, yi) = y.to_f64_parts();
        num += (xr - yr).powi(2) + (xi - yi).powi(2);
        den += yr * yr + yi * yi;
    }
    (num / den.max(1e-300)).sqrt()
}

fn check_kernels<S: Scalar>(
    m: usize,
    n: usize,
    batch: usize,
    op: GemvOp,
    lda_pad: usize,
    seed: u64,
    tol: f64,
) -> Result<(), TestCaseError> {
    let mut rng = SplitMix64::new(seed);
    let lda = m + lda_pad;
    let g = BatchGeometry {
        m,
        n,
        lda,
        stride_a: lda * n,
        stride_x: op.input_len(m, n),
        stride_y: op.output_len(m, n),
        batch,
    };
    let a: Vec<S> = fill(&mut rng, batch * lda * n);
    let x: Vec<S> = fill(&mut rng, batch * op.input_len(m, n));
    let y0: Vec<S> = fill(&mut rng, batch * op.output_len(m, n));
    let alpha = S::from_f64_parts(rng.uniform(-2.0, 2.0), rng.uniform(-1.0, 1.0));
    let beta = S::from_f64_parts(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));

    let mut want = y0.clone();
    for b in 0..batch {
        let out_len = op.output_len(m, n);
        naive_gemv(
            op,
            alpha,
            &a[b * g.stride_a..],
            lda,
            &x[b * g.stride_x..b * g.stride_x + op.input_len(m, n)],
            beta,
            &mut want[b * g.stride_y..b * g.stride_y + out_len],
            m,
            n,
        );
    }
    for kernel in [KernelChoice::Reference, KernelChoice::Optimized] {
        let mut got = y0.clone();
        sbgemv_with(kernel, op, alpha, &a, &x, beta, &mut got, &g);
        let err = rel_err(&got, &want);
        prop_assert!(err < tol, "{kernel} {op}: m={m} n={n} batch={batch} err={err}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f64_kernels_match_oracle(
        m in 1usize..40,
        n in 1usize..90,
        batch in 1usize..5,
        op_sel in 0u8..3,
        lda_pad in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        check_kernels::<f64>(m, n, batch, op_from(op_sel), lda_pad, seed, 1e-11)?;
    }

    #[test]
    fn complex_f64_kernels_match_oracle(
        m in 1usize..24,
        n in 1usize..70,
        batch in 1usize..4,
        op_sel in 0u8..3,
        lda_pad in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        check_kernels::<Complex<f64>>(m, n, batch, op_from(op_sel), lda_pad, seed, 1e-11)?;
    }

    #[test]
    fn f32_kernels_match_oracle(
        m in 1usize..32,
        n in 1usize..64,
        batch in 1usize..4,
        op_sel in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        check_kernels::<f32>(m, n, batch, op_from(op_sel), 0, seed, 2e-4)?;
    }

    /// The dispatcher's choice never changes the (double-precision)
    /// result beyond roundoff reordering.
    #[test]
    fn dispatch_is_result_invariant(
        m in 1usize..64,
        n in 1usize..128,
        seed in 0u64..u64::MAX,
    ) {
        let op = GemvOp::ConjTrans;
        let mut rng = SplitMix64::new(seed);
        let g = BatchGeometry::packed(m, n, op, 2);
        let a: Vec<Complex<f64>> = fill(&mut rng, 2 * m * n);
        let x: Vec<Complex<f64>> = fill(&mut rng, 2 * m);
        let mut y_auto = vec![Complex::zero(); 2 * n];
        let mut y_ref = vec![Complex::zero(); 2 * n];
        let used = sbgemv(op, Complex::one(), &a, &x, Complex::zero(), &mut y_auto, &g);
        prop_assert_eq!(used, select_kernel(op, m, n));
        sbgemv_with(KernelChoice::Reference, op, Complex::one(), &a, &x, Complex::zero(), &mut y_ref, &g);
        prop_assert!(rel_err(&y_auto, &y_ref) < 1e-12);
    }

    /// Linearity in x: K(a·x1 + x2) == a·K(x1) + K(x2) for β = 0.
    #[test]
    fn kernels_are_linear_in_x(
        m in 1usize..20,
        n in 1usize..40,
        scale in -3.0f64..3.0,
        seed in 0u64..u64::MAX,
    ) {
        let op = GemvOp::Trans;
        let g = BatchGeometry::packed(m, n, op, 1);
        let mut rng = SplitMix64::new(seed);
        let a: Vec<f64> = fill(&mut rng, m * n);
        let x1: Vec<f64> = fill(&mut rng, m);
        let x2: Vec<f64> = fill(&mut rng, m);
        let combo: Vec<f64> = x1.iter().zip(&x2).map(|(p, q)| scale * p + q).collect();
        let run = |x: &[f64]| -> Vec<f64> {
            let mut y = vec![0.0; n];
            sbgemv_with(KernelChoice::Optimized, op, 1.0, &a, x, 0.0, &mut y, &g);
            y
        };
        let lhs = run(&combo);
        let y1 = run(&x1);
        let y2 = run(&x2);
        let rhs: Vec<f64> = y1.iter().zip(&y2).map(|(p, q)| scale * p + q).collect();
        prop_assert!(rel_err(&lhs, &rhs) < 1e-10);
    }

    /// ConjTrans on real data equals Trans.
    #[test]
    fn conjtrans_equals_trans_for_reals(
        m in 1usize..24,
        n in 1usize..48,
        seed in 0u64..u64::MAX,
    ) {
        let g = BatchGeometry::packed(m, n, GemvOp::Trans, 1);
        let mut rng = SplitMix64::new(seed);
        let a: Vec<f64> = fill(&mut rng, m * n);
        let x: Vec<f64> = fill(&mut rng, m);
        let mut yt = vec![0.0; n];
        let mut yh = vec![0.0; n];
        sbgemv_with(KernelChoice::Reference, GemvOp::Trans, 1.0, &a, &x, 0.0, &mut yt, &g);
        sbgemv_with(KernelChoice::Reference, GemvOp::ConjTrans, 1.0, &a, &x, 0.0, &mut yh, &g);
        prop_assert_eq!(yt, yh);
    }
}
