//! CPU executions of the two SBGEMV kernels.
//!
//! Both kernels compute `y_b = α·op(A_b)·x_b + β·y_b` for every matrix in
//! the batch; they differ in *loop structure*, mirroring the GPU algorithms
//! they stand in for:
//!
//! * [`reference_gemv`] — rocBLAS-style. Non-transpose accumulates
//!   column-by-column (coalesced columns, `⌈m/64⌉` gridblocks); transpose
//!   computes one full-length dot product per output element (one
//!   gridblock each — the geometry that collapses when `m ≪ n`).
//! * [`optimized_gemv`] — the paper's kernel: columns are processed in
//!   tiles of [`crate::OPT_TILE_COLS`]; each column's dot product runs
//!   four accumulators over row chunks of four (standing in for `float4`
//!   vector loads with read/compute/write pipelining), combined at the end
//!   (the wavefront-shuffle reduction).
//!
//! The summation orders differ, so results may differ by O(ε) — tests
//! compare both against a naive oracle rather than bit-for-bit.
//!
//! **Summation structure matters for the error analysis.** GPU GEMV
//! kernels never sum a length-k dot sequentially: threads hold partial
//! sums that are combined by wavefront-shuffle *trees*, so the rounding
//! error grows like `ε·√(log k)` rather than sequential summation's
//! `ε·√k`. The paper's measured mixed-precision errors (≲1e-7 with
//! `N_m = 5000` FP32 reductions) are only reachable with that structure,
//! so these CPU kernels use pairwise (recursive-halving) summation — the
//! same error class as the GPU tree reductions.

use fftmatvec_numeric::Scalar;
#[cfg(feature = "parallel")]
use rayon::prelude::*;

use crate::types::{BatchGeometry, GemvOp, KernelChoice};
use crate::OPT_TILE_COLS;

/// Serial-vs-parallel threshold in scalar MACs.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
const PAR_THRESHOLD: usize = 1 << 15;

/// Run one of the kernels over the whole batch.
///
/// Allocation-free: batch items are visited as chunks of `y` (one chunk
/// per `stride_y`, output written to its first `output_len` elements), so
/// repeated calls on preallocated buffers perform no heap work — the
/// contract the pipeline's `apply_into` paths rely on.
pub fn run_kernel<S: Scalar>(
    kernel: KernelChoice,
    op: GemvOp,
    alpha: S,
    a: &[S],
    x: &[S],
    beta: S,
    y: &mut [S],
    g: &BatchGeometry,
) {
    g.validate(op, a.len(), x.len(), y.len());
    let out_len = op.output_len(g.m, g.n);
    // `stride_y ≥ out_len` is enforced by `validate`; the final chunk may
    // be exactly `out_len` long (no trailing padding required).
    let stride = g.stride_y.max(out_len).max(1);
    #[cfg(feature = "parallel")]
    let work = g.batch * g.m * g.n;
    let body = |(b, chunk): (usize, &mut [S])| {
        let yb = &mut chunk[..out_len];
        let ab = &a[b * g.stride_a..];
        let xb = &x[b * g.stride_x..b * g.stride_x + op.input_len(g.m, g.n)];
        match kernel {
            KernelChoice::Reference => reference_gemv(op, alpha, ab, g.lda, xb, beta, yb, g.m, g.n),
            KernelChoice::Optimized => optimized_gemv(op, alpha, ab, g.lda, xb, beta, yb, g.m, g.n),
        }
    };
    #[cfg(feature = "parallel")]
    if work > PAR_THRESHOLD {
        y.par_chunks_mut(stride).take(g.batch).enumerate().for_each(|(b, c)| body((b, c)));
        return;
    }
    y.chunks_mut(stride).take(g.batch).enumerate().for_each(|(b, c)| body((b, c)));
}

/// rocBLAS-style GEMV on one matrix (column-major, leading dim `lda`).
pub fn reference_gemv<S: Scalar>(
    op: GemvOp,
    alpha: S,
    a: &[S],
    lda: usize,
    x: &[S],
    beta: S,
    y: &mut [S],
    m: usize,
    n: usize,
) {
    // BLAS convention: β = 0 means y is write-only (never read), so prior
    // NaN/uninitialized contents must not propagate.
    let beta_zero = beta == S::zero();
    match op {
        GemvOp::NoTrans => {
            // Column sweep with tree-combined partials: one gridblock
            // covers up to [`NOTRANS_TILE_ROWS`] contiguous rows; within a
            // gridblock, per-thread column partials merge pairwise, not in
            // one long sequential chain. Partials live in fixed stack
            // tiles (no heap allocation on the hot path) and every column
            // slice touched is contiguous, so the matrix streams through
            // cache with full line utilization even when one block
            // overflows L2. Tiling the rows does not change any element's
            // summation tree — the pairwise vector merge is elementwise.
            let mut i0 = 0;
            for dst in y.chunks_mut(NOTRANS_TILE_ROWS) {
                let mut partial = [S::zero(); NOTRANS_TILE_ROWS];
                notrans_pairwise_tile(a, lda, x, i0, dst.len(), 0, n, &mut partial);
                for (yi, &pi) in dst.iter_mut().zip(&partial) {
                    let prior = if beta_zero { S::zero() } else { beta * *yi };
                    *yi = alpha.mul_add(pi, prior);
                }
                i0 += dst.len();
            }
        }
        GemvOp::Trans | GemvOp::ConjTrans => {
            // One dot product of length m per output element — exactly the
            // per-gridblock work assignment whose bandwidth collapses when
            // m ≪ n (Section 3.1.1). The dot itself is a wavefront tree.
            let conj = op == GemvOp::ConjTrans;
            for (j, yj) in y.iter_mut().enumerate().take(n) {
                let col = &a[j * lda..j * lda + m];
                let acc = pairwise_dot(col, &x[..m], conj);
                let prior = if beta_zero { S::zero() } else { beta * *yj };
                *yj = alpha.mul_add(acc, prior);
            }
        }
    }
}

/// Sequential run length at the base of the pairwise trees (a GPU
/// thread's private accumulation before shuffles take over).
const PAIRWISE_BASE: usize = 16;

/// Pairwise (recursive-halving) dot product — the error class of a
/// wavefront tree reduction: `O(ε·log k)` worst case instead of
/// sequential summation's `O(ε·k)`.
fn pairwise_dot<S: Scalar>(col: &[S], x: &[S], conj: bool) -> S {
    debug_assert_eq!(col.len(), x.len());
    if col.len() <= PAIRWISE_BASE {
        let mut acc = S::zero();
        for (&aij, &xi) in col.iter().zip(x) {
            let v = if conj { aij.conj() } else { aij };
            acc = v.mul_add(xi, acc);
        }
        acc
    } else {
        let mid = col.len() / 2;
        pairwise_dot(&col[..mid], &x[..mid], conj) + pairwise_dot(&col[mid..], &x[mid..], conj)
    }
}

/// Row-tile height of the non-transpose column sweep — one gridblock's
/// worth of outputs, and the size of the stack-resident partial vectors.
const NOTRANS_TILE_ROWS: usize = 64;

/// One row tile of the pairwise-combined column sweep: the column range
/// `[j0, j1)` splits as a tree, base runs of ≤ [`PAIRWISE_BASE`] columns
/// accumulate sequentially into `acc[..rows]` — per element, the same
/// association the heap-allocating partial-vector merge produced, but
/// with stack tiles and contiguous `rows`-long column reads. Recursion
/// depth is `log₂(n/16)`, so worst-case stack use is a few KB of tiles.
fn notrans_pairwise_tile<S: Scalar>(
    a: &[S],
    lda: usize,
    x: &[S],
    i0: usize,
    rows: usize,
    j0: usize,
    j1: usize,
    acc: &mut [S; NOTRANS_TILE_ROWS],
) {
    if j1 - j0 <= PAIRWISE_BASE {
        // The vector kernels run the identical per-row accumulation
        // chain (rows are independent lanes), so results are
        // bit-identical whichever path executes.
        if crate::simd::notrans_tile(a, lda, x, i0, rows, j0, j1, &mut acc[..]) {
            return;
        }
        acc[..rows].fill(S::zero());
        for j in j0..j1 {
            let col = &a[j * lda + i0..j * lda + i0 + rows];
            let xj = x[j];
            for (p, &aij) in acc[..rows].iter_mut().zip(col) {
                *p = aij.mul_add(xj, *p);
            }
        }
    } else {
        let mid = j0 + (j1 - j0) / 2;
        notrans_pairwise_tile(a, lda, x, i0, rows, j0, mid, acc);
        let mut right = [S::zero(); NOTRANS_TILE_ROWS];
        notrans_pairwise_tile(a, lda, x, i0, rows, mid, j1, &mut right);
        for (l, &r) in acc[..rows].iter_mut().zip(&right[..rows]) {
            *l += r;
        }
    }
}

/// The paper's optimized kernel on one matrix. Only the transposed modes
/// get the tiled path (the short-wide problem it was built for);
/// `NoTrans` falls through to the reference loop, matching the upstream
/// rocBLAS integration where the non-transpose kernel was left unchanged.
pub fn optimized_gemv<S: Scalar>(
    op: GemvOp,
    alpha: S,
    a: &[S],
    lda: usize,
    x: &[S],
    beta: S,
    y: &mut [S],
    m: usize,
    n: usize,
) {
    if op == GemvOp::NoTrans {
        return reference_gemv(op, alpha, a, lda, x, beta, y, m, n);
    }
    let conj = op == GemvOp::ConjTrans;
    let beta_zero = beta == S::zero();
    // Gridblocks tile the columns; each block computes a chunk of outputs.
    for (tile_idx, y_tile) in
        y.chunks_mut(OPT_TILE_COLS).enumerate().take(n.div_ceil(OPT_TILE_COLS))
    {
        let j0 = tile_idx * OPT_TILE_COLS;
        for (dj, yj) in y_tile.iter_mut().enumerate() {
            let j = j0 + dj;
            let col = &a[j * lda..j * lda + m];
            // The 2-D thread block's dot: vectorized 16-byte loads feed
            // per-thread partials (the base runs of `pairwise_dot`),
            // combined by wave shuffles (the pairwise tree).
            let dotv = pairwise_dot(col, &x[..m], conj);
            let prior = if beta_zero { S::zero() } else { beta * *yj };
            *yj = alpha.mul_add(dotv, prior);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::{Complex, SplitMix64};

    /// Naive oracle: dense triple loop in the obvious order.
    fn naive_gemv<S: Scalar>(
        op: GemvOp,
        alpha: S,
        a: &[S],
        lda: usize,
        x: &[S],
        beta: S,
        y: &mut [S],
        m: usize,
        n: usize,
    ) {
        let out_len = op.output_len(m, n);
        for k in 0..out_len {
            let mut acc = S::zero();
            match op {
                GemvOp::NoTrans => {
                    for j in 0..n {
                        acc += a[k + j * lda] * x[j];
                    }
                }
                GemvOp::Trans => {
                    for i in 0..m {
                        acc += a[i + k * lda] * x[i];
                    }
                }
                GemvOp::ConjTrans => {
                    for i in 0..m {
                        acc += a[i + k * lda].conj() * x[i];
                    }
                }
            }
            y[k] = alpha * acc + beta * y[k];
        }
    }

    fn fill<S: Scalar>(rng: &mut SplitMix64, len: usize) -> Vec<S> {
        (0..len)
            .map(|_| S::from_f64_parts(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect()
    }

    fn rel_err<S: Scalar>(a: &[S], b: &[S]) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            let (xr, xi) = x.to_f64_parts();
            let (yr, yi) = y.to_f64_parts();
            num += (xr - yr).powi(2) + (xi - yi).powi(2);
            den += yr * yr + yi * yi;
        }
        (num / den.max(1e-300)).sqrt()
    }

    fn check_both_kernels<S: Scalar>(m: usize, n: usize, batch: usize, op: GemvOp, tol: f64) {
        let mut rng = SplitMix64::new((m * 31 + n * 7 + batch) as u64);
        let g = BatchGeometry::packed(m, n, op, batch);
        let a: Vec<S> = fill(&mut rng, batch * m * n);
        let x: Vec<S> = fill(&mut rng, batch * op.input_len(m, n));
        let y0: Vec<S> = fill(&mut rng, batch * op.output_len(m, n));
        let alpha = S::from_f64_parts(1.25, -0.5);
        let beta = S::from_f64_parts(0.75, 0.25);

        let mut want = y0.clone();
        for b in 0..batch {
            let out_len = op.output_len(m, n);
            naive_gemv(
                op,
                alpha,
                &a[b * g.stride_a..],
                g.lda,
                &x[b * g.stride_x..b * g.stride_x + op.input_len(m, n)],
                beta,
                &mut want[b * g.stride_y..b * g.stride_y + out_len],
                m,
                n,
            );
        }
        for kernel in [KernelChoice::Reference, KernelChoice::Optimized] {
            let mut got = y0.clone();
            run_kernel(kernel, op, alpha, &a, &x, beta, &mut got, &g);
            let err = rel_err(&got, &want);
            assert!(err < tol, "{kernel} {op} m={m} n={n} batch={batch}: err {err}");
        }
    }

    #[test]
    fn all_ops_all_scalar_types_small() {
        for op in [GemvOp::NoTrans, GemvOp::Trans, GemvOp::ConjTrans] {
            check_both_kernels::<f32>(5, 13, 3, op, 1e-5);
            check_both_kernels::<f64>(5, 13, 3, op, 1e-13);
            check_both_kernels::<Complex<f32>>(5, 13, 3, op, 1e-5);
            check_both_kernels::<Complex<f64>>(5, 13, 3, op, 1e-13);
        }
    }

    #[test]
    fn short_wide_complex_double_conjtrans() {
        // The FFTMatvec phase-3 shape (scaled down): m ≪ n, complex.
        check_both_kernels::<Complex<f64>>(8, 200, 11, GemvOp::ConjTrans, 1e-12);
    }

    #[test]
    fn parallel_path_large_batch() {
        // Cross PAR_THRESHOLD to exercise the rayon path.
        check_both_kernels::<f64>(16, 64, 64, GemvOp::Trans, 1e-12);
    }

    #[test]
    fn uneven_sizes_hit_tile_and_simd_remainders() {
        // m % 4 != 0 and n % OPT_TILE_COLS != 0.
        check_both_kernels::<f64>(7, 67, 2, GemvOp::Trans, 1e-13);
        check_both_kernels::<Complex<f32>>(3, 130, 2, GemvOp::ConjTrans, 1e-5);
        check_both_kernels::<f64>(1, 1, 1, GemvOp::Trans, 1e-14);
    }

    #[test]
    fn padded_lda_and_strides() {
        let (m, n, batch) = (4usize, 6usize, 3usize);
        let op = GemvOp::Trans;
        let mut rng = SplitMix64::new(77);
        let lda = m + 3;
        let stride_a = lda * n + 5;
        let stride_x = m + 2;
        let stride_y = n + 4;
        let g = BatchGeometry { m, n, lda, stride_a, stride_x, stride_y, batch };
        let a: Vec<f64> = fill(&mut rng, (batch - 1) * stride_a + lda * n);
        let x: Vec<f64> = fill(&mut rng, (batch - 1) * stride_x + m);
        let y0: Vec<f64> = fill(&mut rng, (batch - 1) * stride_y + n);

        let mut want = y0.clone();
        for b in 0..batch {
            naive_gemv(
                op,
                1.0,
                &a[b * stride_a..],
                lda,
                &x[b * stride_x..b * stride_x + m],
                0.0,
                &mut want[b * stride_y..b * stride_y + n],
                m,
                n,
            );
        }
        for kernel in [KernelChoice::Reference, KernelChoice::Optimized] {
            let mut got = y0.clone();
            run_kernel(kernel, op, 1.0, &a, &x, 0.0, &mut got, &g);
            // Padding between outputs must be untouched.
            for b in 0..batch - 1 {
                for p in n..stride_y {
                    assert_eq!(got[b * stride_y + p], y0[b * stride_y + p], "padding clobbered");
                }
            }
            assert!(rel_err(&got, &want) < 1e-13, "{kernel}");
        }
    }

    #[test]
    fn conj_trans_differs_from_trans_for_complex() {
        let m = 4;
        let n = 4;
        let mut rng = SplitMix64::new(5);
        let a: Vec<Complex<f64>> = fill(&mut rng, m * n);
        let x: Vec<Complex<f64>> = fill(&mut rng, m);
        let g = BatchGeometry::packed(m, n, GemvOp::Trans, 1);
        let mut yt = vec![Complex::zero(); n];
        let mut yh = vec![Complex::zero(); n];
        run_kernel(
            KernelChoice::Reference,
            GemvOp::Trans,
            Complex::one(),
            &a,
            &x,
            Complex::zero(),
            &mut yt,
            &g,
        );
        run_kernel(
            KernelChoice::Reference,
            GemvOp::ConjTrans,
            Complex::one(),
            &a,
            &x,
            Complex::zero(),
            &mut yh,
            &g,
        );
        assert!(rel_err(&yt, &yh) > 1e-3, "conjugation should change the result");
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        // β=0 must not propagate NaNs from uninitialized y.
        let g = BatchGeometry::packed(3, 3, GemvOp::NoTrans, 1);
        let a = vec![1.0f64; 9];
        let x = vec![1.0f64; 3];
        let mut y = vec![f64::NAN; 3];
        // β·y with β=0 and y=NaN is NaN in IEEE; rocBLAS documents β=0 as
        // "y need not be set". Mirror that: multiply-by-zero semantics are
        // only safe because the kernel writes β·y = 0·NaN = NaN... so the
        // implementation must special-case β=0 like rocBLAS does.
        run_kernel(KernelChoice::Reference, GemvOp::NoTrans, 1.0, &a, &x, 0.0, &mut y, &g);
        assert!(y.iter().all(|v| v.is_finite()), "beta=0 must ignore prior y");
    }
}
