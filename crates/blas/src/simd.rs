//! Vectorized base case for the non-transpose pairwise column sweep.
//!
//! [`notrans_tile`] offers one base run of the row-tiled SBGEMV sweep
//! (`crate::kernels::notrans_pairwise_tile`) to a vector kernel; `false`
//! means the caller must run its scalar loop. The vector kernels keep
//! one widened accumulator register per row and walk the columns
//! sequentially — the *same per-element accumulation chain* as the
//! scalar code (rows are independent; vectorizing across rows cannot
//! reassociate anything), so results are bit-identical at every
//! dispatch level. The pairwise merge above the base case stays scalar:
//! it is elementwise and cheap, and the tree shape must not change.
//!
//! The transpose-side `pairwise_dot` is deliberately **not** vectorized:
//! its base runs accumulate sequentially along the reduction dimension,
//! and any lane split there would change the summation tree.
//!
//! 16-bit tiers round through storage after every fused multiply-add
//! (inner product and outer FMA for the complex types), exactly where
//! the emulated scalar arithmetic rounds.

use fftmatvec_numeric::Scalar;

/// Vectorized tile base case. Fills `acc[..rows]` with the
/// pairwise-base accumulation of columns `[j0, j1)` over rows
/// `[i0, i0 + rows)`. Returns `false` if no vector kernel applies.
#[allow(unused_variables, clippy::too_many_arguments)]
pub(crate) fn notrans_tile<S: Scalar>(
    a: &[S],
    lda: usize,
    x: &[S],
    i0: usize,
    rows: usize,
    j0: usize,
    j1: usize,
    acc: &mut [S],
) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use core::any::TypeId;

        use fftmatvec_numeric::simd::{active_level, SimdLevel};

        fn cast<S: Scalar, U: Scalar>(v: &[S]) -> Option<&[U]> {
            (TypeId::of::<S>() == TypeId::of::<U>()).then(|| {
                // SAFETY: S == U was just checked; identity cast.
                unsafe { core::slice::from_raw_parts(v.as_ptr() as *const U, v.len()) }
            })
        }
        fn cast_mut<S: Scalar, U: Scalar>(v: &mut [S]) -> Option<&mut [U]> {
            (TypeId::of::<S>() == TypeId::of::<U>()).then(|| {
                // SAFETY: as above; the exclusive borrow transfers.
                unsafe { core::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut U, v.len()) }
            })
        }

        macro_rules! try_tile {
            ($(($u:ty, $min_rows:expr, $kernel:path)),+ $(,)?) => {
                if matches!(active_level(), SimdLevel::Avx2 | SimdLevel::Avx512) {
                    $(
                        if rows >= $min_rows {
                            if let (Some(a), Some(x), Some(acc)) =
                                (cast::<S, $u>(a), cast::<S, $u>(x), cast_mut::<S, $u>(acc))
                            {
                                // SAFETY: the Avx2/Avx512 levels are only
                                // reachable through `level_supported`,
                                // which verified avx2+fma on this host.
                                unsafe { $kernel(a, lda, x, i0, rows, j0, j1, acc) };
                                return true;
                            }
                        }
                    )+
                }
            };
        }
        try_tile!(
            (f32, 8, x86::tile_f32),
            (f64, 4, x86::tile_f64),
            (fftmatvec_numeric::half::f16, 8, x86::tile_f16),
            (fftmatvec_numeric::half::bf16, 8, x86::tile_bf16),
            (fftmatvec_numeric::Complex<f32>, 4, x86::tile_c32),
            (fftmatvec_numeric::Complex<f64>, 2, x86::tile_c64),
            (fftmatvec_numeric::Complex<fftmatvec_numeric::half::f16>, 4, x86::tile_c16),
            (fftmatvec_numeric::Complex<fftmatvec_numeric::half::bf16>, 4, x86::tile_cb16),
        );
    }
    false
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    //! AVX2+FMA tile kernels, one per `Scalar` type. Uniform safety
    //! contract: caller guarantees AVX2+FMA support; accesses unaligned.
    #![allow(clippy::missing_safety_doc, clippy::too_many_arguments)]

    use core::arch::x86_64::*;

    use fftmatvec_numeric::half::{bf16, f16};
    use fftmatvec_numeric::simd::x86::{
        cmuladd_pd, cmuladd_ps, dup_im_ps, dup_re_ps, narrow8_bf16, narrow8_f16, neg_even_ps,
        round8_bf16, round8_f16, widen8_bf16, widen8_f16,
    };
    use fftmatvec_numeric::{Complex, Scalar};

    /// Scalar accumulation over the remainder rows `[full, rows)` — the
    /// identical expression chain of the scalar base case.
    #[inline(always)]
    fn scalar_rows<S: Scalar>(
        a: &[S],
        lda: usize,
        x: &[S],
        i0: usize,
        full: usize,
        rows: usize,
        j0: usize,
        j1: usize,
        acc: &mut [S],
    ) {
        for p in acc[full..rows].iter_mut() {
            *p = S::zero();
        }
        for j in j0..j1 {
            let xj = x[j];
            for (p, &aij) in acc[full..rows].iter_mut().zip(&a[j * lda + i0 + full..]) {
                *p = aij.mul_add(xj, *p);
            }
        }
    }

    /// f32 rows, 8 per register: `acc[p] = fma(a[p][j], x[j], acc[p])`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_f32(
        a: &[f32],
        lda: usize,
        x: &[f32],
        i0: usize,
        rows: usize,
        j0: usize,
        j1: usize,
        acc: &mut [f32],
    ) {
        let full = rows / 8 * 8;
        let ap = a.as_ptr();
        let mut r = 0;
        while r < full {
            let mut v = _mm256_setzero_ps();
            for j in j0..j1 {
                let col = _mm256_loadu_ps(ap.add(j * lda + i0 + r));
                v = _mm256_fmadd_ps(col, _mm256_set1_ps(x[j]), v);
            }
            _mm256_storeu_ps(acc.as_mut_ptr().add(r), v);
            r += 8;
        }
        scalar_rows(a, lda, x, i0, full, rows, j0, j1, acc);
    }

    /// f64 rows, 4 per register.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_f64(
        a: &[f64],
        lda: usize,
        x: &[f64],
        i0: usize,
        rows: usize,
        j0: usize,
        j1: usize,
        acc: &mut [f64],
    ) {
        let full = rows / 4 * 4;
        let ap = a.as_ptr();
        let mut r = 0;
        while r < full {
            let mut v = _mm256_setzero_pd();
            for j in j0..j1 {
                let col = _mm256_loadu_pd(ap.add(j * lda + i0 + r));
                v = _mm256_fmadd_pd(col, _mm256_set1_pd(x[j]), v);
            }
            _mm256_storeu_pd(acc.as_mut_ptr().add(r), v);
            r += 4;
        }
        scalar_rows(a, lda, x, i0, full, rows, j0, j1, acc);
    }

    macro_rules! half_real_tile {
        ($t:ty, $kernel:ident, $widen8:ident, $narrow8:ident, $round8:ident) => {
            /// 16-bit rows, 8 widened per register; every FMA rounds
            /// through storage, matching the emulated scalar `mul_add`.
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn $kernel(
                a: &[$t],
                lda: usize,
                x: &[$t],
                i0: usize,
                rows: usize,
                j0: usize,
                j1: usize,
                acc: &mut [$t],
            ) {
                let full = rows / 8 * 8;
                let ap = a.as_ptr() as *const u16;
                let mut r = 0;
                while r < full {
                    let mut v = _mm256_setzero_ps();
                    for j in j0..j1 {
                        let col =
                            $widen8(_mm_loadu_si128(ap.add(j * lda + i0 + r) as *const __m128i));
                        let xj = _mm256_set1_ps(x[j].to_f32());
                        v = $round8(_mm256_fmadd_ps(col, xj, v));
                    }
                    _mm_storeu_si128(acc.as_mut_ptr().add(r) as *mut __m128i, $narrow8(v));
                    r += 8;
                }
                scalar_rows(a, lda, x, i0, full, rows, j0, j1, acc);
            }
        };
    }

    half_real_tile!(f16, tile_f16, widen8_f16, narrow8_f16, round8_f16);
    half_real_tile!(bf16, tile_bf16, widen8_bf16, narrow8_bf16, round8_bf16);

    /// Complex<f32> rows, 4 per register, via the exact `mul_add` mix.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_c32(
        a: &[Complex<f32>],
        lda: usize,
        x: &[Complex<f32>],
        i0: usize,
        rows: usize,
        j0: usize,
        j1: usize,
        acc: &mut [Complex<f32>],
    ) {
        let full = rows / 4 * 4;
        let ap = a.as_ptr() as *const f32;
        let mut r = 0;
        while r < full {
            let mut v = _mm256_setzero_ps();
            for j in j0..j1 {
                let col = _mm256_loadu_ps(ap.add(2 * (j * lda + i0 + r)));
                let xj = x[j];
                let x_ri = _mm256_setr_ps(xj.re, xj.im, xj.re, xj.im, xj.re, xj.im, xj.re, xj.im);
                let x_sw = _mm256_setr_ps(xj.im, xj.re, xj.im, xj.re, xj.im, xj.re, xj.im, xj.re);
                v = cmuladd_ps(col, x_ri, x_sw, v);
            }
            _mm256_storeu_ps(acc.as_mut_ptr().add(r) as *mut f32, v);
            r += 4;
        }
        scalar_rows(a, lda, x, i0, full, rows, j0, j1, acc);
    }

    /// Complex<f64> rows, 2 per register.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_c64(
        a: &[Complex<f64>],
        lda: usize,
        x: &[Complex<f64>],
        i0: usize,
        rows: usize,
        j0: usize,
        j1: usize,
        acc: &mut [Complex<f64>],
    ) {
        let full = rows / 2 * 2;
        let ap = a.as_ptr() as *const f64;
        let mut r = 0;
        while r < full {
            let mut v = _mm256_setzero_pd();
            for j in j0..j1 {
                let col = _mm256_loadu_pd(ap.add(2 * (j * lda + i0 + r)));
                let xj = x[j];
                let x_ri = _mm256_setr_pd(xj.re, xj.im, xj.re, xj.im);
                let x_sw = _mm256_setr_pd(xj.im, xj.re, xj.im, xj.re);
                v = cmuladd_pd(col, x_ri, x_sw, v);
            }
            _mm256_storeu_pd(acc.as_mut_ptr().add(r) as *mut f64, v);
            r += 2;
        }
        scalar_rows(a, lda, x, i0, full, rows, j0, j1, acc);
    }

    macro_rules! half_complex_tile {
        ($t:ty, $kernel:ident, $widen8:ident, $narrow8:ident, $round8:ident) => {
            /// 16-bit complex rows, 4 widened per register. Both FMAs of
            /// the complex `mul_add` round through storage, matching the
            /// emulated scalar arithmetic.
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn $kernel(
                a: &[Complex<$t>],
                lda: usize,
                x: &[Complex<$t>],
                i0: usize,
                rows: usize,
                j0: usize,
                j1: usize,
                acc: &mut [Complex<$t>],
            ) {
                let full = rows / 4 * 4;
                let ap = a.as_ptr() as *const u16;
                let mut r = 0;
                while r < full {
                    let mut v = _mm256_setzero_ps();
                    for j in j0..j1 {
                        let col = $widen8(_mm_loadu_si128(
                            ap.add(2 * (j * lda + i0 + r)) as *const __m128i
                        ));
                        let (re, im) = (x[j].re.to_f32(), x[j].im.to_f32());
                        let x_ri = _mm256_setr_ps(re, im, re, im, re, im, re, im);
                        let x_sw = _mm256_setr_ps(im, re, im, re, im, re, im, re);
                        let inner = $round8(_mm256_fmadd_ps(neg_even_ps(dup_im_ps(col)), x_sw, v));
                        v = $round8(_mm256_fmadd_ps(dup_re_ps(col), x_ri, inner));
                    }
                    _mm_storeu_si128(acc.as_mut_ptr().add(r) as *mut __m128i, $narrow8(v));
                    r += 4;
                }
                scalar_rows(a, lda, x, i0, full, rows, j0, j1, acc);
            }
        };
    }

    half_complex_tile!(f16, tile_c16, widen8_f16, narrow8_f16, round8_f16);
    half_complex_tile!(bf16, tile_cb16, widen8_bf16, narrow8_bf16, round8_bf16);
}
