//! Host-side kernel dispatch and launch cost models.
//!
//! The paper integrates its optimized kernel into rocBLAS's host
//! dispatcher so applications pick it up transparently; the *transition
//! points* between kernels were set from `rocblas-bench` sweeps
//! (Section 4.1.1). [`select_kernel`] plays that role here, and
//! [`kernel_profile`] produces the [`KernelProfile`] whose modeled
//! achieved bandwidth regenerates Figure 1.

use fftmatvec_gpu::{KernelClass, KernelProfile};
use fftmatvec_numeric::{DType, Scalar};

use crate::kernels::run_kernel;
use crate::types::{BatchGeometry, GemvOp, KernelChoice};
use crate::{OPT_TILE_COLS, REF_ROW_BLOCK};

/// Rows above which the rocBLAS transpose kernel has enough per-block work
/// to stay competitive; the dispatcher keeps it there. Set from the
/// Figure-1 sweep: at m = 2048, baseline 63.3% vs optimized 67.8% — close
/// enough that upstream keeps the original above this point.
pub const TRANSITION_M: usize = 2048;

/// Skew (n/m) above which the optimized kernel is used even for large m.
pub const TRANSITION_SKEW: usize = 2;

/// Choose the kernel the way the patched rocBLAS host dispatcher does.
pub fn select_kernel(op: GemvOp, m: usize, n: usize) -> KernelChoice {
    if !op.is_transposed() {
        // The non-transpose kernel was already well-tuned; unchanged.
        return KernelChoice::Reference;
    }
    if m < TRANSITION_M || n >= TRANSITION_SKEW * m {
        KernelChoice::Optimized
    } else {
        KernelChoice::Reference
    }
}

/// Strided batched GEMV with automatic kernel selection. Returns the
/// kernel that serviced the call (rocBLAS logs the same via its trace).
pub fn sbgemv<S: Scalar>(
    op: GemvOp,
    alpha: S,
    a: &[S],
    x: &[S],
    beta: S,
    y: &mut [S],
    g: &BatchGeometry,
) -> KernelChoice {
    let kernel = select_kernel(op, g.m, g.n);
    run_kernel(kernel, op, alpha, a, x, beta, y, g);
    kernel
}

/// Strided batched GEMV with an explicit kernel choice (the
/// `rocblas-bench` A/B path used to produce Figure 1).
pub fn sbgemv_with<S: Scalar>(
    kernel: KernelChoice,
    op: GemvOp,
    alpha: S,
    a: &[S],
    x: &[S],
    beta: S,
    y: &mut [S],
    g: &BatchGeometry,
) {
    run_kernel(kernel, op, alpha, a, x, beta, y, g);
}

/// Modeled efficiency of the optimized kernel. The tiled launch keeps
/// per-block work large regardless of m, so it sits near 70% of peak with
/// a mild bonus on heavily skewed shapes (more independent column tiles
/// per matrix to overlap) — matching the 58–84% band of Figure 1.
fn optimized_efficiency(m: usize, n: usize) -> f64 {
    let skew = (n as f64 / m as f64).max(1.0);
    (0.70 + 0.04 * (skew.ln() / 2.0).tanh()).clamp(0.55, 0.85)
}

/// Build the launch cost profile for a kernel/op/shape combination.
///
/// Matrix bytes dominate: each of the `batch` matrices is streamed once;
/// the input and output vectors are lower-order terms but included.
pub fn kernel_profile(
    kernel: KernelChoice,
    op: GemvOp,
    dtype: DType,
    m: usize,
    n: usize,
    batch: usize,
) -> KernelProfile {
    let eb = dtype.bytes() as f64;
    let bm = (m * n * batch) as f64 * eb;
    let bx = (op.input_len(m, n) * batch) as f64 * eb;
    let by = (op.output_len(m, n) * batch) as f64 * eb;
    let flops = (m * n * batch) as f64 * dtype.flops_per_mac() as f64;

    let (name, gridblocks, work_bytes_per_block, efficiency_override) = match (kernel, op) {
        (KernelChoice::Reference, GemvOp::NoTrans) => (
            "rocblas_gemv_n",
            (m.div_ceil(REF_ROW_BLOCK) * batch) as f64,
            (REF_ROW_BLOCK.min(m) * n) as f64 * eb,
            None,
        ),
        (KernelChoice::Reference, _) => (
            // Grid n × 1 × batch; each gridblock computes ONE dot product
            // of length m — the Section-3.1.1 pathology.
            "rocblas_gemv_t",
            (n * batch) as f64,
            m as f64 * eb,
            None,
        ),
        (KernelChoice::Optimized, GemvOp::NoTrans) => (
            // Falls back to the unchanged non-transpose kernel.
            "rocblas_gemv_n",
            (m.div_ceil(REF_ROW_BLOCK) * batch) as f64,
            (REF_ROW_BLOCK.min(m) * n) as f64 * eb,
            None,
        ),
        (KernelChoice::Optimized, _) => (
            "optimized_sbgemv_t",
            (n.div_ceil(OPT_TILE_COLS) * batch) as f64,
            (OPT_TILE_COLS.min(n) * m) as f64 * eb,
            Some(optimized_efficiency(m, n)),
        ),
    };

    KernelProfile {
        name,
        class: KernelClass::Gemv,
        dtype,
        bytes_read: bm + bx,
        bytes_written: by,
        flops,
        gridblocks,
        work_bytes_per_block,
        efficiency_override,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_gpu::DeviceSpec;
    use fftmatvec_numeric::{Complex, SplitMix64};

    #[test]
    fn dispatcher_transition_points() {
        // Short-wide transpose → optimized (the paper's case).
        assert_eq!(select_kernel(GemvOp::ConjTrans, 100, 5000), KernelChoice::Optimized);
        assert_eq!(select_kernel(GemvOp::Trans, 128, 4096), KernelChoice::Optimized);
        // Large square transpose → the existing kernel is fine.
        assert_eq!(select_kernel(GemvOp::Trans, 4096, 4096), KernelChoice::Reference);
        // Large but skewed → optimized.
        assert_eq!(select_kernel(GemvOp::Trans, 4096, 16384), KernelChoice::Optimized);
        // Non-transpose is never rerouted.
        assert_eq!(select_kernel(GemvOp::NoTrans, 100, 5000), KernelChoice::Reference);
    }

    #[test]
    fn figure1_shape_optimized_beats_baseline_on_skewed() {
        let dev = DeviceSpec::mi300x();
        for dtype in DType::ALL {
            let base =
                kernel_profile(KernelChoice::Reference, GemvOp::Trans, dtype, 128, 4096, 100);
            let opt = kernel_profile(KernelChoice::Optimized, GemvOp::Trans, dtype, 128, 4096, 100);
            let bw_base = base.achieved_bandwidth(&dev) / dev.peak_bw;
            let bw_opt = opt.achieved_bandwidth(&dev) / dev.peak_bw;
            assert!(bw_opt > 1.5 * bw_base, "{dtype}: opt {bw_opt:.3} vs base {bw_base:.3}");
        }
    }

    #[test]
    fn figure1_gap_shrinks_for_square_and_heavy_dtypes() {
        let dev = DeviceSpec::mi300x();
        let gain = |dtype: DType, m: usize, n: usize| {
            let base = kernel_profile(KernelChoice::Reference, GemvOp::Trans, dtype, m, n, 100);
            let opt = kernel_profile(KernelChoice::Optimized, GemvOp::Trans, dtype, m, n, 100);
            opt.achieved_bandwidth(&dev) / base.achieved_bandwidth(&dev)
        };
        // Lighter dtype ⇒ bigger relative gain at fixed shape.
        assert!(gain(DType::RealF32, 128, 4096) > gain(DType::ComplexF64, 128, 4096));
        // More skew ⇒ bigger gain at fixed dtype.
        assert!(gain(DType::RealF32, 128, 4096) > gain(DType::RealF32, 2048, 2048));
        // Square 2048² gains little (the upstream transition rationale).
        let g = gain(DType::RealF32, 2048, 2048);
        assert!(g < 1.3, "square gain should be small, got {g}");
    }

    #[test]
    fn auto_dispatch_computes_correctly() {
        let (m, n, batch) = (16usize, 96usize, 4usize);
        let op = GemvOp::ConjTrans;
        let mut rng = SplitMix64::new(1);
        let g = BatchGeometry::packed(m, n, op, batch);
        let a: Vec<Complex<f64>> = (0..batch * m * n)
            .map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect();
        let x: Vec<Complex<f64>> = (0..batch * m)
            .map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect();
        let mut y_auto = vec![Complex::zero(); batch * n];
        let mut y_ref = vec![Complex::zero(); batch * n];
        let used = sbgemv(op, Complex::one(), &a, &x, Complex::zero(), &mut y_auto, &g);
        assert_eq!(used, KernelChoice::Optimized);
        sbgemv_with(
            KernelChoice::Reference,
            op,
            Complex::one(),
            &a,
            &x,
            Complex::zero(),
            &mut y_ref,
            &g,
        );
        let err: f64 = y_auto.iter().zip(&y_ref).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-12, "kernels disagree: {err}");
    }

    #[test]
    fn profile_bytes_account_matrix_and_vectors() {
        let p = kernel_profile(
            KernelChoice::Reference,
            GemvOp::Trans,
            DType::ComplexF64,
            100,
            5000,
            1001,
        );
        let expect_matrix = (100 * 5000 * 1001) as f64 * 16.0;
        assert!(p.bytes_read > expect_matrix);
        assert!(p.bytes_read < expect_matrix * 1.01);
        assert!(p.bytes_written > 0.0);
    }

    #[test]
    fn optimized_efficiency_band() {
        // Figure-1 observed band: roughly 58–84% of peak.
        for (m, n) in [(128, 4096), (256, 256), (256, 8192), (512, 512), (2048, 2048)] {
            let e = optimized_efficiency(m, n);
            assert!((0.55..=0.85).contains(&e), "({m},{n}) -> {e}");
        }
        assert!(optimized_efficiency(128, 4096) > optimized_efficiency(256, 256));
    }
}
