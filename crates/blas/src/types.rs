//! Shared types for the SBGEMV kernels.

use core::fmt;

/// GEMV operation applied to each batch matrix, mirroring BLAS `transA`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemvOp {
    /// `y = α·A·x + β·y` — `A` is `m×n`, `x` has `n`, `y` has `m`.
    NoTrans,
    /// `y = α·Aᵀ·x + β·y` — `x` has `m`, `y` has `n`. rocBLAS `T`.
    Trans,
    /// `y = α·Aᴴ·x + β·y` — conjugate transpose. rocBLAS `H`/`C`.
    ConjTrans,
}

impl GemvOp {
    /// Is this one of the transposed modes (the Figure-1 subject)?
    #[inline]
    pub fn is_transposed(self) -> bool {
        !matches!(self, GemvOp::NoTrans)
    }

    /// Input vector length for an `m×n` matrix.
    #[inline]
    pub fn input_len(self, m: usize, n: usize) -> usize {
        if self.is_transposed() {
            m
        } else {
            n
        }
    }

    /// Output vector length for an `m×n` matrix.
    #[inline]
    pub fn output_len(self, m: usize, n: usize) -> usize {
        if self.is_transposed() {
            n
        } else {
            m
        }
    }

    /// The `transA` letter `rocblas-bench` uses (`N`/`T`/`H`).
    pub fn code(self) -> char {
        match self {
            GemvOp::NoTrans => 'N',
            GemvOp::Trans => 'T',
            GemvOp::ConjTrans => 'H',
        }
    }
}

impl fmt::Display for GemvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Which kernel implementation services a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// rocBLAS-style baseline.
    Reference,
    /// The paper's tiled/vectorized/pipelined short-wide kernel.
    Optimized,
}

impl fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelChoice::Reference => write!(f, "rocBLAS"),
            KernelChoice::Optimized => write!(f, "Optimized"),
        }
    }
}

/// Strided batched layout, mirroring `rocblas_Xgemv_strided_batched`.
/// Matrices are column-major with leading dimension `lda ≥ m`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchGeometry {
    /// Rows of each `A`.
    pub m: usize,
    /// Columns of each `A`.
    pub n: usize,
    /// Leading dimension of each `A` (≥ m).
    pub lda: usize,
    /// Elements between consecutive batch matrices in `a`.
    pub stride_a: usize,
    /// Elements between consecutive batch inputs in `x`.
    pub stride_x: usize,
    /// Elements between consecutive batch outputs in `y`.
    pub stride_y: usize,
    /// Number of matrices in the batch.
    pub batch: usize,
}

impl BatchGeometry {
    /// Dense packed layout: `lda = m`, strides exactly one matrix/vector.
    pub fn packed(m: usize, n: usize, op: GemvOp, batch: usize) -> Self {
        BatchGeometry {
            m,
            n,
            lda: m,
            stride_a: m * n,
            stride_x: op.input_len(m, n),
            stride_y: op.output_len(m, n),
            batch,
        }
    }

    /// Validate slice lengths for a call with operation `op`.
    pub fn validate(&self, op: GemvOp, a_len: usize, x_len: usize, y_len: usize) {
        assert!(self.m > 0 && self.n > 0, "SBGEMV dimensions must be nonzero");
        assert!(self.lda >= self.m, "lda < m");
        assert!(self.batch > 0, "batch must be nonzero");
        let need_a = (self.batch - 1) * self.stride_a + (self.n - 1) * self.lda + self.m;
        let in_len = op.input_len(self.m, self.n);
        let out_len = op.output_len(self.m, self.n);
        let need_x = (self.batch - 1) * self.stride_x + in_len;
        let need_y = (self.batch - 1) * self.stride_y + out_len;
        assert!(a_len >= need_a, "matrix buffer too small: {a_len} < {need_a}");
        assert!(x_len >= need_x, "input buffer too small: {x_len} < {need_x}");
        assert!(y_len >= need_y, "output buffer too small: {y_len} < {need_y}");
        assert!(
            self.stride_y >= out_len,
            "stride_y smaller than the output length aliases outputs"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_lengths() {
        assert_eq!(GemvOp::NoTrans.input_len(3, 7), 7);
        assert_eq!(GemvOp::NoTrans.output_len(3, 7), 3);
        assert_eq!(GemvOp::Trans.input_len(3, 7), 3);
        assert_eq!(GemvOp::ConjTrans.output_len(3, 7), 7);
        assert!(GemvOp::ConjTrans.is_transposed());
        assert!(!GemvOp::NoTrans.is_transposed());
    }

    #[test]
    fn codes_match_rocblas_bench() {
        assert_eq!(GemvOp::NoTrans.code(), 'N');
        assert_eq!(GemvOp::Trans.code(), 'T');
        assert_eq!(GemvOp::ConjTrans.code(), 'H');
    }

    #[test]
    fn packed_geometry() {
        let g = BatchGeometry::packed(100, 5000, GemvOp::ConjTrans, 1001);
        assert_eq!(g.lda, 100);
        assert_eq!(g.stride_a, 500_000);
        assert_eq!(g.stride_x, 100);
        assert_eq!(g.stride_y, 5000);
        g.validate(GemvOp::ConjTrans, 1001 * 500_000, 1001 * 100, 1001 * 5000);
    }

    #[test]
    #[should_panic(expected = "matrix buffer too small")]
    fn validate_catches_short_matrix() {
        let g = BatchGeometry::packed(4, 4, GemvOp::NoTrans, 2);
        g.validate(GemvOp::NoTrans, 31, 8, 8);
    }

    #[test]
    #[should_panic(expected = "lda < m")]
    fn validate_catches_bad_lda() {
        let mut g = BatchGeometry::packed(4, 4, GemvOp::NoTrans, 1);
        g.lda = 2;
        g.validate(GemvOp::NoTrans, 16, 4, 4);
    }
}
