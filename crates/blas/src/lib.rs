//! # fftmatvec-blas — strided batched GEMV (SBGEMV)
//!
//! Phase 3 of FFTMatvec is a batched matrix-vector product with the
//! frequency-domain blocks `F̂_k` (`N_t + 1` matrices of size `N_d × N_m`,
//! `N_d ≪ N_m`). The paper found rocBLAS's (conjugate-)transpose kernel
//! collapsing on such *short and wide* matrices and contributed an
//! optimized kernel (Section 3.1.1), later merged upstream. This crate
//! rebuilds both:
//!
//! * [`KernelChoice::Reference`] — the rocBLAS-style kernels. In
//!   (conj)transpose mode each gridblock computes a *single* dot product
//!   of length `m`; grid dims `n × 1 × batch`. When `m ≪ n` that means
//!   many gridblocks with almost no work each — high launch overhead, low
//!   achieved bandwidth.
//! * [`KernelChoice::Optimized`] — the paper's kernel: gridblocks tile the
//!   *columns* of each matrix (grid `⌈n/TILE⌉ × 1 × batch`), each block's
//!   2-D thread set computes a chunk of outputs using vectorized 16-byte
//!   loads, read/compute/write pipelining, and wavefront-shuffle
//!   reductions.
//!
//! Both kernels execute real arithmetic on the CPU (identical numerics —
//! verified by tests); they differ in loop structure and, importantly, in
//! the [`fftmatvec_gpu::KernelProfile`] their launches generate, which is
//! what Figure 1 measures. The host-side [`dispatch`] mirrors the rocBLAS
//! integration: transition points choose the kernel from `(op, m, n)`,
//! with the application code unchanged.

pub mod dispatch;
pub mod kernels;
mod simd;
pub mod types;

pub use dispatch::{kernel_profile, sbgemv, sbgemv_with, select_kernel};
pub use types::{BatchGeometry, GemvOp, KernelChoice};

/// Column tile width of the optimized kernel (the paper's gridblocks tile
/// the columns; 64 matches one wavefront of threads per tile edge).
pub const OPT_TILE_COLS: usize = 64;

/// Row chunk the reference non-transpose kernel assigns per gridblock
/// (rocBLAS launches `⌈m/64⌉` blocks in the first grid dimension).
pub const REF_ROW_BLOCK: usize = 64;
