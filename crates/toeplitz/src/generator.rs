//! Multi-level Toeplitz generators and the dense reference assembly.
//!
//! A multi-level (block-recursive) Toeplitz matrix is defined per level
//! by a `(rows, cols)` pair and one value per *diagonal* of that level:
//! level `l` contributes `rows_l + cols_l - 1` diagonals, and the full
//! generator is the row-major tensor over all levels' diagonal axes.
//! `TwoLevelToeplitz` is the `L = 2` case (block-Toeplitz with Toeplitz
//! blocks — EM scattering / acoustics / MRI system matrices);
//! `NdCirculantEmbedding` takes any `L ≥ 1`.

use fftmatvec_core::ConfigError;
use fftmatvec_numeric::ndindex::{strides_row_major, total_len};

/// `(rows, cols)` extents of one Toeplitz level. The operator's shape is
/// the per-level product: `∏ rows_l × ∏ cols_l`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelDims {
    /// Output extent of this level.
    pub rows: usize,
    /// Input extent of this level.
    pub cols: usize,
}

impl LevelDims {
    /// Number of diagonals this level contributes to the generator
    /// tensor: `rows + cols - 1`.
    pub fn diags(&self) -> usize {
        self.rows + self.cols - 1
    }
}

/// Levels are processed recursively; a practical cap keeps the index
/// kernels allocation-free (stack recursion of bounded depth).
pub const MAX_LEVELS: usize = 8;

/// The generator of a multi-level Toeplitz matrix: per-level `(rows,
/// cols)` extents plus the row-major diagonal tensor. Along each level's
/// axis, index `k` holds diagonal offset `k - (cols - 1)`, so index
/// `cols - 1` is that level's main diagonal (offset `i - j = 0`).
#[derive(Clone, Debug)]
pub struct ToeplitzGenerator {
    levels: Vec<LevelDims>,
    diagonals: Vec<f64>,
}

impl ToeplitzGenerator {
    /// Validate and build a generator. `diagonals` must hold exactly
    /// `∏ (rows_l + cols_l - 1)` entries in row-major level order.
    pub fn new(levels: &[(usize, usize)], diagonals: Vec<f64>) -> Result<Self, ConfigError> {
        if levels.is_empty() {
            return Err(ConfigError::ZeroDimension { what: "toeplitz levels" });
        }
        if levels.len() > MAX_LEVELS {
            // The recursion depth cap doubles as a sanity bound: more
            // levels than this is far past any scenario in scope.
            return Err(ConfigError::ZeroDimension { what: "toeplitz levels beyond MAX_LEVELS" });
        }
        let mut lv = Vec::with_capacity(levels.len());
        for &(rows, cols) in levels {
            if rows == 0 {
                return Err(ConfigError::ZeroDimension { what: "toeplitz level rows" });
            }
            if cols == 0 {
                return Err(ConfigError::ZeroDimension { what: "toeplitz level cols" });
            }
            lv.push(LevelDims { rows, cols });
        }
        let expected: usize = lv.iter().map(LevelDims::diags).product();
        if diagonals.len() != expected {
            return Err(ConfigError::ColumnLength { expected, got: diagonals.len() });
        }
        Ok(ToeplitzGenerator { levels: lv, diagonals })
    }

    /// Convenience constructor for the two-level case.
    pub fn two_level(
        outer: (usize, usize),
        inner: (usize, usize),
        diagonals: Vec<f64>,
    ) -> Result<Self, ConfigError> {
        Self::new(&[outer, inner], diagonals)
    }

    /// Per-level extents, outermost first.
    pub fn levels(&self) -> &[LevelDims] {
        &self.levels
    }

    /// Total output dimension `∏ rows_l`.
    pub fn rows(&self) -> usize {
        self.levels.iter().map(|l| l.rows).product()
    }

    /// Total input dimension `∏ cols_l`.
    pub fn cols(&self) -> usize {
        self.levels.iter().map(|l| l.cols).product()
    }

    /// The raw diagonal tensor (row-major over the per-level diagonal
    /// axes).
    pub fn diagonals(&self) -> &[f64] {
        &self.diagonals
    }

    /// Dense reference assembly: the full `rows() × cols()` matrix in
    /// row-major order. Quadratic in the operator size — this is the
    /// differential-test oracle and the bench baseline, not a compute
    /// path.
    pub fn dense(&self) -> Vec<f64> {
        let nl = self.levels.len();
        let diag_dims: Vec<usize> = self.levels.iter().map(LevelDims::diags).collect();
        let diag_strides = strides_row_major(&diag_dims);
        let rows = self.rows();
        let cols = self.cols();
        let mut out = vec![0.0; rows * cols];
        let mut ri = vec![0usize; nl];
        let mut ci = vec![0usize; nl];
        for r in 0..rows {
            let mut rem = r;
            for l in (0..nl).rev() {
                ri[l] = rem % self.levels[l].rows;
                rem /= self.levels[l].rows;
            }
            for c in 0..cols {
                let mut rem = c;
                for l in (0..nl).rev() {
                    ci[l] = rem % self.levels[l].cols;
                    rem /= self.levels[l].cols;
                }
                let mut flat = 0usize;
                for l in 0..nl {
                    // Diagonal offset i - j shifted by cols-1 into the
                    // tensor's axis coordinate.
                    let k = ri[l] + self.levels[l].cols - 1 - ci[l];
                    flat += k * diag_strides[l];
                }
                out[r * cols + c] = self.diagonals[flat];
            }
        }
        out
    }

    /// Total grid length of the row-major diagonal tensor.
    pub fn diag_len(&self) -> usize {
        total_len(&self.levels.iter().map(LevelDims::diags).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_level_dense_is_plain_toeplitz() {
        // rows=3, cols=2 → 4 diagonals indexed -1..=2, main diagonal at
        // tensor index 1.
        let gen = ToeplitzGenerator::new(&[(3, 2)], vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        #[rustfmt::skip]
        let want = vec![
            20.0, 10.0,
            30.0, 20.0,
            40.0, 30.0,
        ];
        assert_eq!(gen.dense(), want);
    }

    #[test]
    fn two_level_dense_has_block_toeplitz_structure() {
        let diags: Vec<f64> = (0..3 * 3).map(|i| i as f64 + 1.0).collect();
        let gen = ToeplitzGenerator::two_level((2, 2), (2, 2), diags).unwrap();
        let d = gen.dense();
        let (rows, cols) = (4, 4);
        assert_eq!(d.len(), rows * cols);
        // Block-level Toeplitz: block (I, J) depends only on I - J.
        let block = |bi: usize, bj: usize, i: usize, j: usize| d[(bi * 2 + i) * cols + bj * 2 + j];
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(block(0, 0, i, j), block(1, 1, i, j));
            }
        }
        // Inner-level Toeplitz: within a block, entry depends on i - j.
        assert_eq!(block(0, 0, 0, 0), block(0, 0, 1, 1));
        assert_eq!(block(0, 1, 0, 0), block(0, 1, 1, 1));
    }

    #[test]
    fn validation_produces_typed_errors() {
        assert!(matches!(
            ToeplitzGenerator::new(&[], vec![]),
            Err(ConfigError::ZeroDimension { .. })
        ));
        assert!(matches!(
            ToeplitzGenerator::new(&[(0, 2)], vec![1.0]),
            Err(ConfigError::ZeroDimension { .. })
        ));
        assert!(matches!(
            ToeplitzGenerator::new(&[(2, 0)], vec![1.0]),
            Err(ConfigError::ZeroDimension { .. })
        ));
        assert!(matches!(
            ToeplitzGenerator::new(&[(2, 2)], vec![1.0]),
            Err(ConfigError::ColumnLength { expected: 3, got: 1 })
        ));
    }
}
