//! # fftmatvec-toeplitz — multi-level Toeplitz operators
//!
//! Extends the workspace's 1-level block-triangular Toeplitz pipeline to
//! **multi-level** (block-recursive) Toeplitz matrices — block-Toeplitz
//! with Toeplitz blocks and deeper nestings — via multi-level circulant
//! embedding. The matvec becomes
//! `extract ∘ IFFTN ∘ (⊙ ĉ) ∘ FFTN ∘ pad`, run as the same five
//! mixed-precision phases as `FftMatvec` (Pad / Fft / Sbgemv / Ifft /
//! Unpad) under a runtime [`PrecisionConfig`], so the Eq. 6 error bound,
//! the Pareto sweeps, and the online autotuner apply unchanged.
//!
//! Two realizations of `LinearOperator`:
//!
//! * [`NdCirculantEmbedding`] — any level count `1 ≤ L ≤`
//!   [`MAX_LEVELS`], full circulant grid.
//! * [`TwoLevelToeplitz`] — the `L = 2` case (EM scattering, acoustics,
//!   MRI system matrices), with an optional **split-FFT** construction
//!   path ([`TwoLevelToeplitzBuilder::split_fft`]; Siron & Molesky,
//!   arXiv:2406.17981) that streams the outer transform's even/odd
//!   frequency channels sequentially through one half-size grid —
//!   roughly halving peak scratch for a second transform pass.
//!
//! Nested plans follow the fastmat `planWhole`/`planBlock` pattern: each
//! grid axis resolves its FFT plan through the process-wide
//! `(n, precision, kind)` cache, so the inner-level plan of a two-level
//! operator is pointer-identical to any 1-level pipeline of the same
//! length ([`TwoLevelToeplitz::plan_whole`] /
//! [`TwoLevelToeplitz::plan_block`]).
//!
//! Construction is builder-based with the same surface as the 1-level
//! pipeline (`precision`, `workspace_reuse`, `error_budget[_for]`,
//! `kappa_override`), applies are zero-allocation over pooled
//! workspaces, and the expensive symbol spectrum is shareable across
//! precision variants via `Arc` (`builder_arc`).

pub mod generator;
pub mod kernels;
pub mod operator;
pub mod symbol;

mod engines;
mod workspace;

pub use generator::{LevelDims, ToeplitzGenerator, MAX_LEVELS};
pub use operator::{
    NdCirculantEmbedding, NdCirculantEmbeddingBuilder, TwoLevelToeplitz, TwoLevelToeplitzBuilder,
};
pub use symbol::ToeplitzSymbol;

use fftmatvec_core::{MatvecPhase, PrecisionConfig};
use fftmatvec_numeric::Precision;

/// Documented per-tier relative-ℓ² budgets for differential agreement
/// between any two realizations of the same operator (FFT path vs dense
/// reference, split-FFT vs full embedding) on well-conditioned problems
/// (`κ` near 1). These are the contract the crate's differential tests
/// and the bench gate assert, with a wide safety margin over each tier's
/// ε so they hold across shapes, directions, and SIMD backends:
///
/// | tier | ε | budget |
/// |------|---|--------|
/// | `d`  | 2.2e-16 | 1e-12 |
/// | `s`  | 1.2e-7  | 2e-4  |
/// | `h`  | 9.8e-4  | 5e-2  |
/// | `b`  | 7.8e-3  | 2e-1  |
pub fn tier_rel_budget(p: Precision) -> f64 {
    match p {
        Precision::Double => 1e-12,
        Precision::Single => 2e-4,
        Precision::Half => 5e-2,
        Precision::BFloat16 => 2e-1,
    }
}

/// The least accurate tier a configuration touches — **by ε**, not by
/// the storage-lattice order (bf16 stores fewer significand bits than
/// f16 despite sitting above it in the lattice). The differential
/// budget of a mixed configuration is
/// [`tier_rel_budget`]`(narrowest_tier(cfg))`.
pub fn narrowest_tier(cfg: PrecisionConfig) -> Precision {
    MatvecPhase::ALL.iter().map(|&ph| cfg.phase(ph)).fold(Precision::Double, |acc, p| {
        if p.epsilon() > acc.epsilon() {
            p
        } else {
            acc
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowest_tier_orders_by_epsilon_not_lattice() {
        let cfg: PrecisionConfig = "dbhdd".parse().unwrap();
        // bf16's ε (2⁻⁷) exceeds f16's (2⁻¹⁰): bf16 is the narrowest.
        assert_eq!(narrowest_tier(cfg), Precision::BFloat16);
        assert_eq!(narrowest_tier(PrecisionConfig::all_double()), Precision::Double);
        let s: PrecisionConfig = "dssdd".parse().unwrap();
        assert_eq!(narrowest_tier(s), Precision::Single);
    }

    #[test]
    fn budgets_are_monotone_in_epsilon() {
        let mut tiers =
            [Precision::Double, Precision::Single, Precision::Half, Precision::BFloat16];
        tiers.sort_by(|a, b| a.epsilon().total_cmp(&b.epsilon()));
        for w in tiers.windows(2) {
            assert!(tier_rel_budget(w[0]) < tier_rel_budget(w[1]));
            // Budget leaves real headroom over the tier's own ε.
            assert!(tier_rel_budget(w[0]) > w[0].epsilon());
        }
    }
}
