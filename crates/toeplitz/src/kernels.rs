//! Tier-generic grid kernels for the multi-level pipelines: head
//! embedding (Pad), pointwise symbol multiply (Sbgemv), head extraction
//! (Unpad), split-channel variants, and the phase-boundary cast.
//!
//! Rounding follows the 1-level pipeline's fused-cast semantics: a value
//! entering the grid is rounded through the Pad tier *then* stored in
//! the Fft tier (two roundings when they differ, matching
//! `pad_input_into` + `cast_real_into`), and a value leaving the grid is
//! rounded through the Unpad tier on its way to the `f64` output.

use fftmatvec_numeric::{Complex, Precision, Real, C64};

/// Zero the whole grid (embedding slack must be zero before the head
/// block is written).
pub(crate) fn zero_fill<T: Real>(dst: &mut [Complex<T>]) {
    let z = Complex::new(T::from_f64(0.0), T::from_f64(0.0));
    for v in dst.iter_mut() {
        *v = z;
    }
}

/// Recursively copy the row-major head block `src` (extents `in_dims`)
/// into the zeroed grid (extents `grid_dims`), rounding each value
/// through `p_pad` before the cast into `T`. Allocation-free; recursion
/// depth is the level count (≤ [`crate::generator::MAX_LEVELS`]).
pub(crate) fn embed_head<T: Real>(
    in_dims: &[usize],
    grid_dims: &[usize],
    src: &[f64],
    p_pad: Precision,
    dst: &mut [Complex<T>],
) {
    debug_assert_eq!(in_dims.len(), grid_dims.len());
    if in_dims.len() == 1 {
        for (d, &x) in dst[..in_dims[0]].iter_mut().zip(src) {
            *d = Complex::new(T::from_f64(p_pad.round_f64(x)), T::from_f64(0.0));
        }
        return;
    }
    let in_block: usize = in_dims[1..].iter().product();
    let grid_block: usize = grid_dims[1..].iter().product();
    for i in 0..in_dims[0] {
        embed_head(
            &in_dims[1..],
            &grid_dims[1..],
            &src[i * in_block..(i + 1) * in_block],
            p_pad,
            &mut dst[i * grid_block..(i + 1) * grid_block],
        );
    }
}

/// Inverse of [`embed_head`]: read the head block of the grid, take the
/// real part (the imaginary parts of a real-symbol circulant apply are
/// roundoff), round through `p_unpad`, write `f64` output.
pub(crate) fn extract_head<T: Real>(
    out_dims: &[usize],
    grid_dims: &[usize],
    grid: &[Complex<T>],
    p_unpad: Precision,
    out: &mut [f64],
) {
    debug_assert_eq!(out_dims.len(), grid_dims.len());
    if out_dims.len() == 1 {
        for (o, g) in out.iter_mut().zip(&grid[..out_dims[0]]) {
            *o = p_unpad.round_f64(g.re.to_f64());
        }
        return;
    }
    let out_block: usize = out_dims[1..].iter().product();
    let grid_block: usize = grid_dims[1..].iter().product();
    for i in 0..out_dims[0] {
        extract_head(
            &out_dims[1..],
            &grid_dims[1..],
            &grid[i * grid_block..(i + 1) * grid_block],
            p_unpad,
            &mut out[i * out_block..(i + 1) * out_block],
        );
    }
}

/// Split-path Pad: embed the two-level input (`in_outer × in_inner`
/// head) into the zeroed half grid (`n₁ × m₂` with `in_outer ≤ n₁`),
/// optionally pre-twisting each outer row `j` by the unit phase
/// `twist[j]` (the odd channel's decimation shift). The twist is applied
/// in double after the Pad-tier rounding, then the product is cast into
/// `T` — one rounding per stored component, same as the untwisted path.
pub(crate) fn pad_split<T: Real>(
    in_outer: usize,
    in_inner: usize,
    m2: usize,
    src: &[f64],
    p_pad: Precision,
    twist: Option<&[C64]>,
    dst: &mut [Complex<T>],
) {
    zero_fill(dst);
    for i in 0..in_outer {
        let row = &src[i * in_inner..(i + 1) * in_inner];
        let drow = &mut dst[i * m2..i * m2 + in_inner];
        match twist {
            None => {
                for (d, &x) in drow.iter_mut().zip(row) {
                    *d = Complex::new(T::from_f64(p_pad.round_f64(x)), T::from_f64(0.0));
                }
            }
            Some(w) => {
                let wi = w[i];
                for (d, &x) in drow.iter_mut().zip(row) {
                    let z = wi.scale(p_pad.round_f64(x));
                    *d = Complex::new(T::from_f64(z.re), T::from_f64(z.im));
                }
            }
        }
    }
}

/// Split-path Unpad: fold one channel's half-grid inverse transform into
/// the output. The length-`m₁` inverse DFT splits as
/// `y[n] = ½·(E[n] + e^{+iπn/n₁}·O[n])` for `n < n₁`, so the even
/// channel (weight 1) *writes* `½·Re(h)` and the odd channel
/// (`weight[n] = e^{+iπn/n₁}`) *accumulates* `½·Re(w_n·h)`. Each
/// channel's contribution rounds through `p_unpad` before the `f64`
/// write/add.
pub(crate) fn extract_split<T: Real>(
    out_outer: usize,
    out_inner: usize,
    m2: usize,
    grid: &[Complex<T>],
    p_unpad: Precision,
    weight: Option<&[C64]>,
    accumulate: bool,
    out: &mut [f64],
) {
    for n in 0..out_outer {
        let grow = &grid[n * m2..n * m2 + out_inner];
        let orow = &mut out[n * out_inner..(n + 1) * out_inner];
        let w = weight.map(|w| w[n]);
        for (o, g) in orow.iter_mut().zip(grow) {
            let h = C64::new(g.re.to_f64(), g.im.to_f64());
            let re = match w {
                None => h.re,
                Some(w) => (w * h).re,
            };
            let contrib = p_unpad.round_f64(0.5 * re);
            if accumulate {
                *o += contrib;
            } else {
                *o = contrib;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_and_extract_roundtrip_the_head_block() {
        let in_dims = [2usize, 3];
        let grid_dims = [4usize, 5];
        let src: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let mut grid = vec![Complex::<f64>::new(9.0, 9.0); 20];
        zero_fill(&mut grid);
        embed_head(&in_dims, &grid_dims, &src, Precision::Double, &mut grid);
        // Slack positions are zero, head block carries the input.
        assert_eq!(grid[0].re, 1.0);
        assert_eq!(grid[5].re, 4.0); // second outer row starts at 1*5
        assert_eq!(grid[3].re, 0.0);
        assert_eq!(grid[10].re, 0.0);
        let mut back = vec![0.0; 6];
        extract_head(&in_dims, &grid_dims, &grid, Precision::Double, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn pad_rounds_through_the_pad_tier() {
        let x = [1.0 + 2f64.powi(-20)];
        let mut grid = vec![Complex::<f64>::new(0.0, 0.0); 2];
        embed_head(&[1], &[2], &x, Precision::Half, &mut grid);
        // f16 has 10 mantissa bits: the 2^-20 tail is rounded away even
        // though the grid itself stores f64.
        assert_eq!(grid[0].re, 1.0);
    }

    #[test]
    fn split_extract_reconstructs_even_plus_twisted_odd() {
        // One outer row, weight e^{iπ/4}: contribution is ½·Re(w·h).
        let h = Complex::<f64>::new(1.0, 1.0);
        let w = [C64::expi(std::f64::consts::FRAC_PI_4)];
        let grid = vec![h];
        let mut out = vec![1.0];
        extract_split(1, 1, 1, &grid, Precision::Double, Some(&w), true, &mut out);
        let expect = 1.0 + 0.5 * (w[0] * h).re;
        assert!((out[0] - expect).abs() < 1e-15);
    }
}
