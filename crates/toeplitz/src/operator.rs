//! The multi-level Toeplitz realizations of [`LinearOperator`]:
//! [`NdCirculantEmbedding`] (any level count, full circulant grid) and
//! [`TwoLevelToeplitz`] (the `L = 2` case, with the optional
//! memory-optimized split-FFT path).
//!
//! Both run the same five-phase mixed-precision pipeline as the 1-level
//! `FftMatvec` — Pad (grid embedding), Fft (forward N-d transform),
//! Sbgemv (the pointwise symbol multiply; the per-frequency blocks are
//! 1×1 so the batched GEMV degenerates to a Hadamard product), Ifft,
//! Unpad (head extraction) — over a full 4-tier [`PrecisionConfig`],
//! with pooled zero-allocation workspaces and runtime reconfiguration.

use std::sync::Arc;

use fftmatvec_backend::{BackendKind, DeviceBackend};
use fftmatvec_core::{
    autotune, check_apply, check_batch, AutotuneChoice, BoundParams, ConfigError,
    ConfigurableOperator, LinearOperator, MatvecPhase, OpDirection, OpError, OpShape, PhaseWeights,
    PrecisionConfig, TierCalibration,
};
use fftmatvec_fft::{cache, FftDirection, PlanHandle};
use fftmatvec_numeric::{ComplexBuffer, Precision};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

use crate::engines::NdTierEngines;
use crate::generator::{ToeplitzGenerator, MAX_LEVELS};
use crate::kernels;
use crate::symbol::{SpectraSet, ToeplitzSymbol};
use crate::workspace::{Workspace, WorkspacePool};

/// Flat batches above this many `f64` elements split across the pool
/// (same threshold as the 1-level pipeline).
#[cfg(feature = "parallel")]
const MANY_PAR_THRESHOLD: usize = 1 << 12;

/// Live autotuning state a budget-built operator carries; the tier
/// calibration persists so later `retune_budget` calls refine timings
/// instead of restarting them.
struct AutotuneState {
    calib: TierCalibration,
    last: Option<AutotuneChoice>,
}

/// The shared pipeline engine behind both public realizations. Holds the
/// immutable symbol (shareable across precision variants via `Arc`), the
/// per-tier N-d FFT engines, and the pooled workspaces.
pub(crate) struct Core {
    sym: Arc<ToeplitzSymbol>,
    cfg: PrecisionConfig,
    backend: BackendKind,
    device: Arc<dyn DeviceBackend>,
    engines: NdTierEngines,
    pool: Arc<WorkspacePool>,
    shape: OpShape,
    kappa: f64,
    autotune: Option<Box<AutotuneState>>,
}

// ---------------------------------------------------------------------
// Tier dispatch helpers: one `match` per phase boundary, mirroring the
// 1-level pipeline's phase dispatch (`_ =>` arms are tier mismatches
// that the buffer-reset discipline makes unreachable).
// ---------------------------------------------------------------------

fn pad_full_dispatch(
    in_dims: &[usize],
    grid_dims: &[usize],
    input: &[f64],
    p_pad: Precision,
    dst: &mut ComplexBuffer,
) {
    match dst {
        ComplexBuffer::C16(v) => {
            kernels::zero_fill(v);
            kernels::embed_head(in_dims, grid_dims, input, p_pad, v);
        }
        ComplexBuffer::CB16(v) => {
            kernels::zero_fill(v);
            kernels::embed_head(in_dims, grid_dims, input, p_pad, v);
        }
        ComplexBuffer::C32(v) => {
            kernels::zero_fill(v);
            kernels::embed_head(in_dims, grid_dims, input, p_pad, v);
        }
        ComplexBuffer::C64(v) => {
            kernels::zero_fill(v);
            kernels::embed_head(in_dims, grid_dims, input, p_pad, v);
        }
    }
}

fn extract_full_dispatch(
    out_dims: &[usize],
    grid_dims: &[usize],
    grid: &ComplexBuffer,
    p_unpad: Precision,
    out: &mut [f64],
) {
    match grid {
        ComplexBuffer::C16(v) => kernels::extract_head(out_dims, grid_dims, v, p_unpad, out),
        ComplexBuffer::CB16(v) => kernels::extract_head(out_dims, grid_dims, v, p_unpad, out),
        ComplexBuffer::C32(v) => kernels::extract_head(out_dims, grid_dims, v, p_unpad, out),
        ComplexBuffer::C64(v) => kernels::extract_head(out_dims, grid_dims, v, p_unpad, out),
    }
}

fn fftn_dispatch(
    engines: &NdTierEngines,
    data: &mut ComplexBuffer,
    partner: &mut ComplexBuffer,
    dir: FftDirection,
) -> Result<(), OpError> {
    match (data, partner) {
        (ComplexBuffer::C16(x), ComplexBuffer::C16(y)) => engines.fft16().process(x, y, dir),
        (ComplexBuffer::CB16(x), ComplexBuffer::CB16(y)) => engines.fftb16().process(x, y, dir),
        (ComplexBuffer::C32(x), ComplexBuffer::C32(y)) => engines.fft32().process(x, y, dir),
        (ComplexBuffer::C64(x), ComplexBuffer::C64(y)) => engines.fft64().process(x, y, dir),
        _ => return Err(OpError::Internal("toeplitz fft tier mismatch")),
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn pad_split_dispatch(
    in_outer: usize,
    in_inner: usize,
    m2: usize,
    input: &[f64],
    p_pad: Precision,
    twist: Option<&[fftmatvec_numeric::C64]>,
    dst: &mut ComplexBuffer,
) {
    match dst {
        ComplexBuffer::C16(v) => kernels::pad_split(in_outer, in_inner, m2, input, p_pad, twist, v),
        ComplexBuffer::CB16(v) => {
            kernels::pad_split(in_outer, in_inner, m2, input, p_pad, twist, v)
        }
        ComplexBuffer::C32(v) => kernels::pad_split(in_outer, in_inner, m2, input, p_pad, twist, v),
        ComplexBuffer::C64(v) => kernels::pad_split(in_outer, in_inner, m2, input, p_pad, twist, v),
    }
}

#[allow(clippy::too_many_arguments)]
fn extract_split_dispatch(
    out_outer: usize,
    out_inner: usize,
    m2: usize,
    grid: &ComplexBuffer,
    p_unpad: Precision,
    weight: Option<&[fftmatvec_numeric::C64]>,
    accumulate: bool,
    out: &mut [f64],
) {
    match grid {
        ComplexBuffer::C16(v) => {
            kernels::extract_split(out_outer, out_inner, m2, v, p_unpad, weight, accumulate, out)
        }
        ComplexBuffer::CB16(v) => {
            kernels::extract_split(out_outer, out_inner, m2, v, p_unpad, weight, accumulate, out)
        }
        ComplexBuffer::C32(v) => {
            kernels::extract_split(out_outer, out_inner, m2, v, p_unpad, weight, accumulate, out)
        }
        ComplexBuffer::C64(v) => {
            kernels::extract_split(out_outer, out_inner, m2, v, p_unpad, weight, accumulate, out)
        }
    }
}

impl Core {
    fn new(
        sym: Arc<ToeplitzSymbol>,
        cfg: PrecisionConfig,
        backend: Option<BackendKind>,
        reuse: bool,
        kappa_override: Option<f64>,
    ) -> Result<Core, ConfigError> {
        let kind = BackendKind::resolve(backend)?;
        let device = fftmatvec_backend::create(kind)?;
        let shape = OpShape::new(sym.generator().rows(), sym.generator().cols());
        let kappa = kappa_override.unwrap_or_else(|| sym.condition_estimate());
        let core = Core {
            engines: NdTierEngines::new(sym.work_dims().to_vec()),
            pool: WorkspacePool::new(reuse),
            shape,
            kappa,
            cfg,
            backend: kind,
            device,
            sym,
            autotune: None,
        };
        core.warm_for(cfg);
        Ok(core)
    }

    /// Materialize everything `cfg` touches: FFT engines and the Sbgemv
    /// tier's spectrum cast (applies stay allocation-free).
    fn warm_for(&self, cfg: PrecisionConfig) {
        self.engines.warm(cfg);
        let p = cfg.phase(MatvecPhase::Sbgemv);
        match self.sym.spectra() {
            SpectraSet::Full(sp) => sp.warm(p),
            SpectraSet::Split { even, odd, .. } => {
                even.warm(p);
                odd.warm(p);
            }
        }
    }

    fn set_config(&mut self, cfg: PrecisionConfig) {
        self.engines.retain(cfg);
        self.cfg = cfg;
        self.warm_for(cfg);
    }

    /// Eq. 6 parameters for this operator: the N-d transform depth is
    /// `log₂(∏ m_l)` regardless of path (split runs the same total work
    /// in two channels), and the pointwise Sbgemv reduces over a single
    /// element (`n_local = 1`).
    fn bound_params(&self, dir: OpDirection) -> BoundParams {
        BoundParams::for_direction(dir, self.sym.embed_total(), 1, 1, 1, 1, self.kappa)
    }

    fn phase_weights(&self, dir: OpDirection) -> PhaseWeights {
        PhaseWeights::for_shape(1, 1, self.sym.embed_total(), dir)
    }

    /// Shared budget-resolution path for `build()` and `retune_budget`,
    /// mirroring the 1-level pipeline: take the autotune state out so the
    /// calibration applies can borrow `self` mutably, install the winner
    /// through `set_config` on success, and restore the state either way
    /// (on error the current configuration stays — the same
    /// restore-on-error contract the sweeps rely on).
    fn resolve_budget(&mut self, dir: OpDirection, budget: f64) -> Result<(), OpError> {
        let taken = self.autotune.take();
        let mut state = taken.unwrap_or_else(|| {
            Box::new(AutotuneState { calib: TierCalibration::new(), last: None })
        });
        let params = self.bound_params(dir);
        let weights = self.phase_weights(dir);
        let result = autotune::autotune(self, dir, budget, &params, &weights, &mut state.calib);
        let result = match result {
            Ok(choice) => {
                self.set_config(choice.config);
                state.last = Some(choice);
                Ok(())
            }
            Err(e) => Err(e),
        };
        self.autotune = Some(state);
        result
    }

    fn autotuned(&self) -> Option<&AutotuneChoice> {
        self.autotune.as_ref().and_then(|s| s.last.as_ref())
    }

    fn retune_budget(&mut self, dir: OpDirection, budget: f64) -> Result<AutotuneChoice, OpError> {
        self.resolve_budget(dir, budget)?;
        Ok(*self.autotuned().expect("resolve_budget stores the choice on success"))
    }

    /// One full pipeline pass, all intermediates drawn from `ws`. Caller
    /// has validated `input`/`out` lengths.
    fn run(
        &self,
        dir: OpDirection,
        input: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), OpError> {
        match self.sym.spectra() {
            SpectraSet::Full(_) => self.run_full(dir, input, out, ws),
            SpectraSet::Split { .. } => self.run_split(dir, input, out, ws),
        }
    }

    /// Full-embedding pipeline: pad → FFTN → ⊙ĉ → IFFTN → extract, one
    /// pass over the whole circulant grid.
    fn run_full(
        &self,
        dir: OpDirection,
        input: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), OpError> {
        let levels = self.sym.generator().levels();
        let nl = levels.len();
        let mut in_ext = [0usize; MAX_LEVELS];
        let mut out_ext = [0usize; MAX_LEVELS];
        for (l, lv) in levels.iter().enumerate() {
            match dir {
                OpDirection::Forward => {
                    in_ext[l] = lv.cols;
                    out_ext[l] = lv.rows;
                }
                OpDirection::Adjoint => {
                    in_ext[l] = lv.rows;
                    out_ext[l] = lv.cols;
                }
            }
        }
        let (in_dims, out_dims) = (&in_ext[..nl], &out_ext[..nl]);
        let grid_dims = self.sym.work_dims();
        let n = self.sym.grid_len();
        let conj = matches!(dir, OpDirection::Adjoint);
        let SpectraSet::Full(sp) = self.sym.spectra() else {
            return Err(OpError::Internal("full pipeline on a split symbol"));
        };

        let p_pad = self.cfg.phase(MatvecPhase::Pad);
        let p_fft = self.cfg.phase(MatvecPhase::Fft);
        let p_gemv = self.cfg.phase(MatvecPhase::Sbgemv);
        let p_ifft = self.cfg.phase(MatvecPhase::Ifft);
        let p_unpad = self.cfg.phase(MatvecPhase::Unpad);
        let Workspace { spec, specb, mid, ispec, ispecb, .. } = ws;

        // Phases 1+2 — embed in cfg[Pad] (cast fused into the grid
        // write), forward N-d FFT in cfg[Fft].
        spec.reset_for_overwrite(p_fft, n);
        specb.reset_for_overwrite(p_fft, n);
        pad_full_dispatch(in_dims, grid_dims, input, p_pad, spec);
        fftn_dispatch(&self.engines, spec, specb, FftDirection::Forward)?;

        // Phase 3 — pointwise symbol multiply in cfg[Sbgemv], through the
        // device backend's cast and Hadamard primitives.
        let use_mid = p_gemv != p_fft;
        if use_mid {
            self.device.cast_complex(spec, p_gemv, mid)?;
        }
        let io = if use_mid { &mut *mid } else { &mut *spec };
        self.device.pointwise_multiply(io, sp.buffer(p_gemv), conj)?;

        // Phase 4 — inverse N-d FFT in cfg[Ifft]. The operand must sit
        // in an Ifft-tier buffer with a same-tier rotation partner; each
        // role has a dedicated buffer so tiers stay stable across
        // applies under a fixed configuration (zero steady-state
        // allocation).
        let use_ispec = p_ifft != p_gemv;
        let (inv, partner): (&mut ComplexBuffer, &mut ComplexBuffer) = if use_ispec {
            self.device.cast_complex(if use_mid { &*mid } else { &*spec }, p_ifft, ispec)?;
            ispecb.reset_for_overwrite(p_ifft, n);
            (ispec, ispecb)
        } else if use_mid {
            ispecb.reset_for_overwrite(p_ifft, n);
            (mid, ispecb)
        } else {
            (spec, specb)
        };
        fftn_dispatch(&self.engines, inv, partner, FftDirection::Inverse)?;

        // Phase 5 — head extraction through cfg[Unpad]; output is always
        // double.
        extract_full_dispatch(out_dims, grid_dims, inv, p_unpad, out);
        Ok(())
    }

    /// Split-FFT pipeline (Siron & Molesky, arXiv:2406.17981): the even
    /// and odd outer-frequency channels stream **sequentially** through
    /// one half-size grid — two transform passes, half the peak scratch.
    /// The odd channel pre-twists the input rows and accumulates its
    /// reconstruction-weighted contribution straight into the `f64`
    /// output, so no full-size buffer ever materializes.
    fn run_split(
        &self,
        dir: OpDirection,
        input: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), OpError> {
        let levels = self.sym.generator().levels();
        let (in_outer, in_inner, out_outer, out_inner) = match dir {
            OpDirection::Forward => {
                (levels[0].cols, levels[1].cols, levels[0].rows, levels[1].rows)
            }
            OpDirection::Adjoint => {
                (levels[0].rows, levels[1].rows, levels[0].cols, levels[1].cols)
            }
        };
        let m2 = self.sym.work_dims()[1];
        let n = self.sym.grid_len();
        let conj = matches!(dir, OpDirection::Adjoint);
        let SpectraSet::Split { even, odd, twist, untwist } = self.sym.spectra() else {
            return Err(OpError::Internal("split pipeline on a full symbol"));
        };

        let p_pad = self.cfg.phase(MatvecPhase::Pad);
        let p_fft = self.cfg.phase(MatvecPhase::Fft);
        let p_gemv = self.cfg.phase(MatvecPhase::Sbgemv);
        let p_ifft = self.cfg.phase(MatvecPhase::Ifft);
        let p_unpad = self.cfg.phase(MatvecPhase::Unpad);
        let Workspace { spec, specb, mid, ispec, ispecb, .. } = ws;

        for channel in 0..2u8 {
            let odd_channel = channel == 1;
            // Phases 1+2 — embed the (twisted) head into the half grid,
            // forward transform.
            spec.reset_for_overwrite(p_fft, n);
            specb.reset_for_overwrite(p_fft, n);
            pad_split_dispatch(
                in_outer,
                in_inner,
                m2,
                input,
                p_pad,
                if odd_channel { Some(twist) } else { None },
                spec,
            );
            fftn_dispatch(&self.engines, spec, specb, FftDirection::Forward)?;

            // Phase 3 — this channel's symbol spectrum, through the
            // device backend's cast and Hadamard primitives.
            let use_mid = p_gemv != p_fft;
            if use_mid {
                self.device.cast_complex(spec, p_gemv, mid)?;
            }
            let sp = if odd_channel { odd } else { even };
            let io = if use_mid { &mut *mid } else { &mut *spec };
            self.device.pointwise_multiply(io, sp.buffer(p_gemv), conj)?;

            // Phase 4 — inverse transform on the half grid.
            let use_ispec = p_ifft != p_gemv;
            let (inv, partner): (&mut ComplexBuffer, &mut ComplexBuffer) = if use_ispec {
                self.device.cast_complex(if use_mid { &*mid } else { &*spec }, p_ifft, ispec)?;
                ispecb.reset_for_overwrite(p_ifft, n);
                (&mut *ispec, &mut *ispecb)
            } else if use_mid {
                ispecb.reset_for_overwrite(p_ifft, n);
                (&mut *mid, &mut *ispecb)
            } else {
                (&mut *spec, &mut *specb)
            };
            fftn_dispatch(&self.engines, inv, partner, FftDirection::Inverse)?;

            // Phase 5 — fold this channel into the output: the even
            // channel writes ½·E[n], the odd accumulates
            // ½·Re(e^{+iπn/n₁}·O[n]).
            extract_split_dispatch(
                out_outer,
                out_inner,
                m2,
                inv,
                p_unpad,
                if odd_channel { Some(untwist) } else { None },
                odd_channel,
                out,
            );
        }
        Ok(())
    }
}

impl LinearOperator for Core {
    fn shape(&self) -> OpShape {
        self.shape
    }

    fn apply_forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape, OpDirection::Forward, input, out)?;
        let mut guard = self.pool.checkout();
        self.run(OpDirection::Forward, input, out, guard.ws())
    }

    fn apply_adjoint_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape, OpDirection::Adjoint, input, out)?;
        let mut guard = self.pool.checkout();
        self.run(OpDirection::Adjoint, input, out, guard.ws())
    }

    fn apply_many_into(
        &self,
        dir: OpDirection,
        inputs: &[f64],
        outputs: &mut [f64],
    ) -> Result<(), OpError> {
        let shape = self.shape;
        let (in_len, out_len) = shape.io_lens(dir);
        check_batch(shape, dir, inputs, outputs)?;
        #[cfg(feature = "parallel")]
        if inputs.len().max(outputs.len()) > MANY_PAR_THRESHOLD {
            use std::sync::atomic::{AtomicBool, Ordering};
            let failed = AtomicBool::new(false);
            inputs
                .par_chunks_exact(in_len)
                .zip(outputs.par_chunks_exact_mut(out_len))
                .for_each_init(
                    || self.pool.checkout(),
                    |guard, (i, o)| {
                        if self.run(dir, i, o, guard.ws()).is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                    },
                );
            return if failed.load(Ordering::Relaxed) {
                Err(OpError::Internal("batched pipeline apply failed"))
            } else {
                Ok(())
            };
        }
        let mut guard = self.pool.checkout();
        for (i, o) in inputs.chunks_exact(in_len).zip(outputs.chunks_exact_mut(out_len)) {
            self.run(dir, i, o, guard.ws())?;
        }
        Ok(())
    }
}

impl ConfigurableOperator for Core {
    fn config(&self) -> PrecisionConfig {
        self.cfg
    }

    fn set_config(&mut self, cfg: PrecisionConfig) {
        Core::set_config(self, cfg);
    }
}

// ---------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------

enum SymbolSource {
    Gen(ToeplitzGenerator),
    Shared(Arc<ToeplitzSymbol>),
}

struct BuilderInner {
    source: SymbolSource,
    cfg: PrecisionConfig,
    backend: Option<BackendKind>,
    reuse: bool,
    budget: Option<(OpDirection, f64)>,
    kappa: Option<f64>,
}

impl BuilderInner {
    fn new(source: SymbolSource) -> Self {
        BuilderInner {
            source,
            cfg: PrecisionConfig::all_double(),
            backend: None,
            reuse: true,
            budget: None,
            kappa: None,
        }
    }

    /// Resolve the symbol and assemble the core; `split` is the builder's
    /// requested path (`None` = full / inherit).
    fn build_core(self, split: Option<bool>, two_level_only: bool) -> Result<Core, ConfigError> {
        let sym = match self.source {
            SymbolSource::Gen(gen) => {
                if two_level_only && gen.levels().len() != 2 {
                    return Err(ConfigError::ZeroDimension {
                        what: "TwoLevelToeplitz needs exactly two levels",
                    });
                }
                Arc::new(if split == Some(true) {
                    ToeplitzSymbol::split(gen)?
                } else {
                    ToeplitzSymbol::full(gen)?
                })
            }
            SymbolSource::Shared(sym) => {
                if two_level_only && sym.generator().levels().len() != 2 {
                    return Err(ConfigError::ZeroDimension {
                        what: "TwoLevelToeplitz needs exactly two levels",
                    });
                }
                if let Some(want) = split {
                    if want != sym.is_split() {
                        return Err(ConfigError::ZeroDimension {
                            what: "shared symbol path conflicts with split_fft()",
                        });
                    }
                }
                sym
            }
        };
        let mut core = Core::new(sym, self.cfg, self.backend, self.reuse, self.kappa)?;
        if let Some((dir, budget)) = self.budget {
            core.resolve_budget(dir, budget).map_err(|e| match e {
                OpError::Config(c) => c,
                other => ConfigError::Autotune(other.to_string()),
            })?;
        }
        Ok(core)
    }
}

macro_rules! builder_setters {
    () => {
        /// Five-phase precision configuration (default `ddddd`).
        pub fn precision(mut self, cfg: PrecisionConfig) -> Self {
            self.inner.cfg = cfg;
            self
        }

        /// Keep workspaces pooled between applies (default `true`).
        pub fn workspace_reuse(mut self, reuse: bool) -> Self {
            self.inner.reuse = reuse;
            self
        }

        /// Execution backend. An explicit choice here wins over the
        /// `FFTMATVEC_BACKEND` environment override; when neither is set
        /// the operator runs on the CPU pool.
        pub fn backend(mut self, backend: fftmatvec_core::PipelineBackend) -> Self {
            self.inner.backend = Some(backend);
            self
        }

        /// Resolve the precision configuration from a forward-direction
        /// error budget at build time (see the 1-level builder's
        /// `error_budget`). Overrides any `precision(..)` setting.
        pub fn error_budget(self, budget: f64) -> Self {
            self.error_budget_for(OpDirection::Forward, budget)
        }

        /// [`error_budget`](Self::error_budget) for an explicit
        /// direction.
        pub fn error_budget_for(mut self, dir: OpDirection, budget: f64) -> Self {
            self.inner.budget = Some((dir, budget));
            self
        }

        /// Supply a known condition estimate instead of the symbol's
        /// spectrum-derived default.
        pub fn kappa_override(mut self, kappa: f64) -> Self {
            self.inner.kappa = Some(kappa);
            self
        }
    };
}

/// Builder for [`NdCirculantEmbedding`].
pub struct NdCirculantEmbeddingBuilder {
    inner: BuilderInner,
}

impl NdCirculantEmbeddingBuilder {
    builder_setters!();

    /// Build the operator: compute (or adopt) the symbol spectrum, warm
    /// the configured FFT engines through the process-wide plan cache,
    /// and — with an error budget set — run the autotune pass.
    pub fn build(self) -> Result<NdCirculantEmbedding, ConfigError> {
        Ok(NdCirculantEmbedding { core: self.inner.build_core(None, false)? })
    }
}

/// Builder for [`TwoLevelToeplitz`].
pub struct TwoLevelToeplitzBuilder {
    inner: BuilderInner,
    split: Option<bool>,
}

impl TwoLevelToeplitzBuilder {
    builder_setters!();

    /// Select the memory-optimized split-FFT construction path
    /// (default `false` = full embedding). Over a shared symbol
    /// ([`TwoLevelToeplitz::builder_arc`]) the symbol already fixes the
    /// path; requesting the other one fails construction.
    pub fn split_fft(mut self, split: bool) -> Self {
        self.split = Some(split);
        self
    }

    /// Build the operator (see
    /// [`NdCirculantEmbeddingBuilder::build`]).
    pub fn build(self) -> Result<TwoLevelToeplitz, ConfigError> {
        Ok(TwoLevelToeplitz { core: self.inner.build_core(self.split, true)? })
    }
}

// ---------------------------------------------------------------------
// Public operator types
// ---------------------------------------------------------------------

macro_rules! operator_common {
    ($ty:ident) => {
        impl $ty {
            /// Current precision configuration.
            pub fn config(&self) -> PrecisionConfig {
                self.core.cfg
            }

            /// Swap the precision configuration at runtime: engines whose
            /// tier survives are kept (with their warmed scratch), the
            /// rest rebuild through the shared plan cache.
            pub fn set_config(&mut self, cfg: PrecisionConfig) {
                self.core.set_config(cfg);
            }

            /// Re-resolve the configuration for a new error budget (or
            /// direction), reusing the tier calibration from previous
            /// resolutions. On error the current configuration stays.
            pub fn retune_budget(
                &mut self,
                dir: OpDirection,
                budget: f64,
            ) -> Result<AutotuneChoice, OpError> {
                self.core.retune_budget(dir, budget)
            }

            /// The autotuner's latest resolution, if any budget was ever
            /// resolved.
            pub fn autotuned(&self) -> Option<&AutotuneChoice> {
                self.core.autotuned()
            }

            /// The shared symbol — build further precision variants over
            /// it without recomputing the spectrum.
            pub fn symbol_shared(&self) -> Arc<ToeplitzSymbol> {
                Arc::clone(&self.core.sym)
            }

            /// The generator this operator realizes.
            pub fn generator(&self) -> &ToeplitzGenerator {
                self.core.sym.generator()
            }

            /// Whether this operator runs the split-FFT path.
            pub fn is_split(&self) -> bool {
                self.core.sym.is_split()
            }

            /// Condition estimate used for Eq. 6 pruning.
            pub fn condition_estimate(&self) -> f64 {
                self.core.kappa
            }

            /// Eq. 6 parameters for this operator in direction `dir` —
            /// what `retune_budget` prunes with, exposed for sweeps and
            /// the service registry.
            pub fn bound_params(&self, dir: OpDirection) -> BoundParams {
                self.core.bound_params(dir)
            }

            /// Phase cost weights for calibration-based selection.
            pub fn phase_weights(&self, dir: OpDirection) -> PhaseWeights {
                self.core.phase_weights(dir)
            }

            /// Workspaces currently parked in the pool (diagnostic).
            pub fn workspaces_pooled(&self) -> usize {
                self.core.pool.pooled()
            }

            /// Workspaces currently checked out (diagnostic).
            pub fn workspaces_in_flight(&self) -> usize {
                self.core.pool.in_flight()
            }

            /// High-water mark of concurrent checkouts (diagnostic).
            pub fn workspaces_peak_in_flight(&self) -> usize {
                self.core.pool.peak_in_flight()
            }

            /// Largest single-workspace scratch footprint (bytes) any
            /// apply has used — the memory-model diagnostic the bench
            /// gate compares across construction paths.
            pub fn workspace_peak_bytes(&self) -> usize {
                self.core.pool.peak_bytes()
            }

            /// Scratch buffers pooled inside the FFT engines of tier `p`
            /// (`None` when no engine of that tier is resident).
            pub fn fft_scratch_pooled(&self, p: Precision) -> Option<usize> {
                self.core.engines.scratch_pooled(p)
            }

            /// The execution backend this operator was built for.
            pub fn backend(&self) -> fftmatvec_core::PipelineBackend {
                self.core.backend
            }

            /// The device backend handle the pointwise multiply and
            /// boundary casts dispatch through.
            pub fn device(&self) -> &Arc<dyn fftmatvec_backend::DeviceBackend> {
                &self.core.device
            }
        }

        impl LinearOperator for $ty {
            fn shape(&self) -> OpShape {
                self.core.shape()
            }
            fn apply_forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
                self.core.apply_forward_into(input, out)
            }
            fn apply_adjoint_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
                self.core.apply_adjoint_into(input, out)
            }
            fn apply_many_into(
                &self,
                dir: OpDirection,
                inputs: &[f64],
                outputs: &mut [f64],
            ) -> Result<(), OpError> {
                self.core.apply_many_into(dir, inputs, outputs)
            }
        }

        impl ConfigurableOperator for $ty {
            fn config(&self) -> PrecisionConfig {
                self.core.cfg
            }
            fn set_config(&mut self, cfg: PrecisionConfig) {
                self.core.set_config(cfg);
            }
        }
    };
}

/// Multi-level Toeplitz operator realized by full multi-level circulant
/// embedding: any level count `1 ≤ L ≤` [`MAX_LEVELS`], rectangular
/// (non-square) levels included. `apply_forward` is
/// `extract ∘ IFFTN ∘ (⊙ ĉ) ∘ FFTN ∘ pad`; the adjoint conjugates the
/// symbol.
pub struct NdCirculantEmbedding {
    core: Core,
}

impl NdCirculantEmbedding {
    /// Start building over a generator (computes the symbol spectrum at
    /// build time).
    pub fn builder(gen: ToeplitzGenerator) -> NdCirculantEmbeddingBuilder {
        NdCirculantEmbeddingBuilder { inner: BuilderInner::new(SymbolSource::Gen(gen)) }
    }

    /// Start building over an already-computed shared symbol — how a
    /// service builds per-configuration variants of one registered
    /// operator without recomputing spectra. The symbol must be a
    /// full-embedding one (split symbols belong to
    /// [`TwoLevelToeplitz`]).
    pub fn builder_arc(sym: Arc<ToeplitzSymbol>) -> NdCirculantEmbeddingBuilder {
        NdCirculantEmbeddingBuilder { inner: BuilderInner::new(SymbolSource::Shared(sym)) }
    }
}

operator_common!(NdCirculantEmbedding);

/// Two-level Toeplitz operator (block-Toeplitz with Toeplitz blocks —
/// the EM-scattering / acoustics / MRI system-matrix case), with an
/// optional memory-optimized **split-FFT** construction path
/// ([`TwoLevelToeplitzBuilder::split_fft`]) that streams the even/odd
/// outer-frequency channels through one half-size grid.
pub struct TwoLevelToeplitz {
    core: Core,
}

impl TwoLevelToeplitz {
    /// Start building over a two-level generator.
    pub fn builder(gen: ToeplitzGenerator) -> TwoLevelToeplitzBuilder {
        TwoLevelToeplitzBuilder { inner: BuilderInner::new(SymbolSource::Gen(gen)), split: None }
    }

    /// Start building over an already-computed shared symbol; the
    /// symbol's construction path (full or split) carries over.
    pub fn builder_arc(sym: Arc<ToeplitzSymbol>) -> TwoLevelToeplitzBuilder {
        TwoLevelToeplitzBuilder { inner: BuilderInner::new(SymbolSource::Shared(sym)), split: None }
    }

    /// The shared double-precision plan handle for the **outer** level's
    /// transform length (fastmat's `planWhole`). Taken from the resident
    /// double engine when the configuration has one, else resolved
    /// through the process-wide cache — either way, handles for the same
    /// length compare pointer-equal across every operator and pipeline
    /// in the process.
    pub fn plan_whole(&self) -> PlanHandle<f64> {
        match self.core.engines.d.get() {
            Some(engine) => engine.axis_plan(0).clone(),
            None => cache::complex_plan::<f64>(self.core.sym.work_dims()[0]),
        }
    }

    /// The shared double-precision plan handle for the **inner** level's
    /// transform length (fastmat's `planBlock`).
    pub fn plan_block(&self) -> PlanHandle<f64> {
        match self.core.engines.d.get() {
            Some(engine) => engine.axis_plan(1).clone(),
            None => cache::complex_plan::<f64>(self.core.sym.work_dims()[1]),
        }
    }
}

operator_common!(TwoLevelToeplitz);

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    fn random_gen(levels: &[(usize, usize)], seed: u64) -> ToeplitzGenerator {
        let diags: usize = levels.iter().map(|&(r, c)| r + c - 1).product();
        let mut rng = SplitMix64::new(seed);
        let mut d = vec![0.0; diags];
        rng.fill_uniform(&mut d, -1.0, 1.0);
        // Lift the main diagonal so the embedding spectrum stays well
        // conditioned (κ near 1 keeps Eq. 6 budgets meaningful).
        let mut main = 0usize;
        let mut stride = 1usize;
        for &(r, c) in levels.iter().rev() {
            main += (c - 1) * stride;
            stride *= r + c - 1;
        }
        d[main] += 4.0;
        ToeplitzGenerator::new(levels, d).unwrap()
    }

    fn dense_apply(gen: &ToeplitzGenerator, dir: OpDirection, x: &[f64]) -> Vec<f64> {
        let dense = gen.dense();
        let (rows, cols) = (gen.rows(), gen.cols());
        match dir {
            OpDirection::Forward => {
                (0..rows).map(|i| (0..cols).map(|j| dense[i * cols + j] * x[j]).sum()).collect()
            }
            OpDirection::Adjoint => {
                (0..cols).map(|j| (0..rows).map(|i| dense[i * cols + j] * x[i]).sum()).collect()
            }
        }
    }

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut v = vec![0.0; n];
        rng.fill_uniform(&mut v, -1.0, 1.0);
        v
    }

    #[test]
    fn full_embedding_matches_dense_in_both_directions() {
        for levels in [
            &[(3usize, 3usize)][..],
            &[(3, 4), (5, 2)],
            &[(2, 2), (3, 3), (2, 4)],
            &[(1, 6), (4, 1)],
        ] {
            let gen = random_gen(levels, 7);
            let op = NdCirculantEmbedding::builder(gen.clone()).build().unwrap();
            for dir in [OpDirection::Forward, OpDirection::Adjoint] {
                let (in_len, out_len) = op.shape().io_lens(dir);
                let x = random_vec(in_len, 21);
                let mut y = vec![0.0; out_len];
                op.apply_into(dir, &x, &mut y).unwrap();
                let want = dense_apply(&gen, dir, &x);
                assert!(
                    rel_l2_error(&want, &y) < 1e-12,
                    "levels {levels:?} {dir}: {}",
                    rel_l2_error(&want, &y)
                );
            }
        }
    }

    #[test]
    fn split_matches_dense_and_full_on_odd_and_nonsquare_shapes() {
        // Odd block extents and rectangular levels — the regression
        // shapes: embedding slack on both axes, rows ≠ cols.
        for (outer, inner) in
            [((3, 3), (5, 5)), ((4, 2), (3, 7)), ((2, 5), (6, 3)), ((1, 4), (5, 1))]
        {
            let gen = random_gen(&[outer, inner], 11);
            let full = TwoLevelToeplitz::builder(gen.clone()).build().unwrap();
            let split = TwoLevelToeplitz::builder(gen.clone()).split_fft(true).build().unwrap();
            assert!(split.is_split() && !full.is_split());
            for dir in [OpDirection::Forward, OpDirection::Adjoint] {
                let (in_len, out_len) = full.shape().io_lens(dir);
                let x = random_vec(in_len, 31);
                let mut yf = vec![0.0; out_len];
                let mut ys = vec![0.0; out_len];
                full.apply_into(dir, &x, &mut yf).unwrap();
                split.apply_into(dir, &x, &mut ys).unwrap();
                let want = dense_apply(&gen, dir, &x);
                assert!(rel_l2_error(&want, &ys) < 1e-12, "split vs dense {outer:?}/{inner:?}");
                // Same algebra, same plans: the two paths agree to
                // double roundoff.
                assert!(rel_l2_error(&yf, &ys) < 1e-13, "split vs full {outer:?}/{inner:?}");
            }
        }
    }

    #[test]
    fn mixed_tier_configs_track_dense_within_documented_budgets() {
        let gen = random_gen(&[(4, 4), (6, 6)], 13);
        let sym = Arc::new(ToeplitzSymbol::full(gen.clone()).unwrap());
        for cfg in [
            PrecisionConfig::all_double(),
            PrecisionConfig::all_single(),
            "dssdd".parse().unwrap(),
            "shhsd".parse().unwrap(),
            "dbbdd".parse().unwrap(),
        ] {
            let op =
                NdCirculantEmbedding::builder_arc(Arc::clone(&sym)).precision(cfg).build().unwrap();
            let budget = crate::tier_rel_budget(crate::narrowest_tier(cfg));
            for dir in [OpDirection::Forward, OpDirection::Adjoint] {
                let (in_len, out_len) = op.shape().io_lens(dir);
                let x = random_vec(in_len, 41);
                let mut y = vec![0.0; out_len];
                op.apply_into(dir, &x, &mut y).unwrap();
                let want = dense_apply(&gen, dir, &x);
                let err = rel_l2_error(&want, &y);
                assert!(err < budget, "{cfg} {dir}: err {err} over budget {budget}");
            }
        }
    }

    #[test]
    fn split_tracks_full_within_documented_budgets_per_tier() {
        let gen = random_gen(&[(5, 5), (4, 4)], 17);
        for cfg in
            [PrecisionConfig::all_double(), PrecisionConfig::all_single(), "dhhdd".parse().unwrap()]
        {
            let full = TwoLevelToeplitz::builder(gen.clone()).precision(cfg).build().unwrap();
            let split = TwoLevelToeplitz::builder(gen.clone())
                .precision(cfg)
                .split_fft(true)
                .build()
                .unwrap();
            let budget = crate::tier_rel_budget(crate::narrowest_tier(cfg));
            let x = random_vec(full.shape().cols, 43);
            let mut yf = vec![0.0; full.shape().rows];
            let mut ys = vec![0.0; full.shape().rows];
            full.apply_forward_into(&x, &mut yf).unwrap();
            split.apply_forward_into(&x, &mut ys).unwrap();
            let err = rel_l2_error(&yf, &ys);
            assert!(err < budget, "{cfg}: split drifts {err} from full (budget {budget})");
        }
    }

    #[test]
    fn into_and_allocating_paths_agree_bitwise() {
        let gen = random_gen(&[(3, 4), (5, 3)], 19);
        let op = TwoLevelToeplitz::builder(gen).split_fft(true).build().unwrap();
        let x = random_vec(op.shape().cols, 51);
        let mut y = vec![0.0; op.shape().rows];
        op.apply_forward_into(&x, &mut y).unwrap();
        assert_eq!(op.apply_forward(&x).unwrap(), y);
    }

    #[test]
    fn typed_errors_on_bad_lengths() {
        let gen = random_gen(&[(2, 3), (3, 2)], 23);
        let op = TwoLevelToeplitz::builder(gen).build().unwrap();
        let mut y = vec![0.0; op.shape().rows];
        assert!(matches!(
            op.apply_forward_into(&[0.0; 3], &mut y),
            Err(OpError::InputLength { .. })
        ));
        let x = vec![0.0; op.shape().cols];
        assert!(matches!(
            op.apply_forward_into(&x, &mut [0.0; 2]),
            Err(OpError::OutputLength { .. })
        ));
    }

    #[test]
    fn set_config_keeps_surviving_engines_and_swaps_results_consistently() {
        let gen = random_gen(&[(4, 4), (5, 5)], 29);
        let mut op = TwoLevelToeplitz::builder(gen.clone())
            .precision(PrecisionConfig::all_double())
            .split_fft(true)
            .build()
            .unwrap();
        let x = random_vec(op.shape().cols, 61);
        let mut y = vec![0.0; op.shape().rows];
        op.apply_forward_into(&x, &mut y).unwrap();
        let pooled_before = op.fft_scratch_pooled(Precision::Double);
        assert!(pooled_before.is_some());
        // dssdd keeps the double Ifft engine resident.
        op.set_config("dssdd".parse().unwrap());
        assert_eq!(op.fft_scratch_pooled(Precision::Double), pooled_before);
        assert!(op.fft_scratch_pooled(Precision::Single).is_some());
        let mut y2 = vec![0.0; op.shape().rows];
        op.apply_forward_into(&x, &mut y2).unwrap();
        assert!(rel_l2_error(&y, &y2) < crate::tier_rel_budget(Precision::Single));
        // Back to all-double: single engine dropped.
        op.set_config(PrecisionConfig::all_double());
        assert!(op.fft_scratch_pooled(Precision::Single).is_none());
        let mut y3 = vec![0.0; op.shape().rows];
        op.apply_forward_into(&x, &mut y3).unwrap();
        assert_eq!(y, y3);
    }

    #[test]
    fn nested_plans_share_through_the_process_cache() {
        let gen = random_gen(&[(4, 4), (8, 8)], 31);
        let a = TwoLevelToeplitz::builder(gen.clone()).build().unwrap();
        let b = TwoLevelToeplitz::builder(gen.clone()).split_fft(true).build().unwrap();
        // Inner extents agree across paths (outer halves under split),
        // so planBlock is literally the same Arc.
        assert!(Arc::ptr_eq(&a.plan_block(), &b.plan_block()));
        // And a 1-level operator over the inner length shares it too.
        let inner = NdCirculantEmbedding::builder(random_gen(&[(8, 8)], 33)).build().unwrap();
        let _ = inner;
        assert!(Arc::ptr_eq(&a.plan_block(), &cache::complex_plan::<f64>(16)));
        // planWhole: full grid outer is 8, split half grid outer is 4.
        assert!(Arc::ptr_eq(&a.plan_whole(), &cache::complex_plan::<f64>(8)));
        assert!(Arc::ptr_eq(&b.plan_whole(), &cache::complex_plan::<f64>(4)));
    }

    #[test]
    fn split_peak_scratch_is_measurably_below_full() {
        let gen = random_gen(&[(8, 8), (8, 8)], 37);
        let full = TwoLevelToeplitz::builder(gen.clone()).build().unwrap();
        let split = TwoLevelToeplitz::builder(gen).split_fft(true).build().unwrap();
        let x = random_vec(full.shape().cols, 71);
        let mut y = vec![0.0; full.shape().rows];
        full.apply_forward_into(&x, &mut y).unwrap();
        split.apply_forward_into(&x, &mut y).unwrap();
        let (fb, sb) = (full.workspace_peak_bytes(), split.workspace_peak_bytes());
        assert!(fb > 0 && sb > 0);
        // The half-size grid should cut workspace scratch to ~half;
        // allow generous slack while still proving a real reduction.
        assert!((sb as f64) <= 0.75 * fb as f64, "split scratch {sb} not below 0.75×full {fb}");
    }

    #[test]
    fn budget_build_and_retune_restore_on_error() {
        let gen = random_gen(&[(4, 4), (4, 4)], 41);
        let mut op = TwoLevelToeplitz::builder(gen.clone())
            .split_fft(true)
            .error_budget(1e-6)
            .build()
            .unwrap();
        let choice = *op.autotuned().unwrap();
        assert!(choice.bound.total <= 1e-6);
        assert_eq!(op.config(), choice.config);
        // Invalid budget: error, config untouched.
        let before = op.config();
        assert!(matches!(
            op.retune_budget(OpDirection::Forward, -1.0),
            Err(OpError::Config(ConfigError::InvalidBudget { .. }))
        ));
        assert_eq!(op.config(), before);
        // Unsatisfiable budget: error, config untouched.
        assert!(matches!(
            op.retune_budget(OpDirection::Forward, 1e-300),
            Err(OpError::Config(ConfigError::BudgetUnsatisfiable { .. }))
        ));
        assert_eq!(op.config(), before);
        // Budget-built operators stay correct.
        let x = random_vec(op.shape().cols, 81);
        let y = op.apply_forward(&x).unwrap();
        let want = dense_apply(&gen, OpDirection::Forward, &x);
        assert!(rel_l2_error(&want, &y) < 1e-5);
    }

    #[test]
    fn builder_rejects_mismatched_paths_and_level_counts() {
        let g1 = random_gen(&[(3, 3)], 43);
        assert!(matches!(
            TwoLevelToeplitz::builder(g1).build(),
            Err(ConfigError::ZeroDimension { .. })
        ));
        let g2 = random_gen(&[(3, 3), (4, 4)], 47);
        let split_sym = Arc::new(ToeplitzSymbol::split(g2.clone()).unwrap());
        assert!(matches!(
            TwoLevelToeplitz::builder_arc(Arc::clone(&split_sym)).split_fft(false).build(),
            Err(ConfigError::ZeroDimension { .. })
        ));
        // Inheriting the shared path works and shares the spectra.
        let op = TwoLevelToeplitz::builder_arc(split_sym).build().unwrap();
        assert!(op.is_split());
    }

    #[test]
    fn batched_apply_matches_loop_of_singles() {
        let gen = random_gen(&[(3, 3), (4, 4)], 53);
        let op = TwoLevelToeplitz::builder(gen).split_fft(true).build().unwrap();
        let (cols, rows) = (op.shape().cols, op.shape().rows);
        let batch = 5;
        let xs = random_vec(cols * batch, 91);
        let mut ys = vec![0.0; rows * batch];
        op.apply_many_into(OpDirection::Forward, &xs, &mut ys).unwrap();
        for b in 0..batch {
            let y = op.apply_forward(&xs[b * cols..(b + 1) * cols]).unwrap();
            assert_eq!(&ys[b * rows..(b + 1) * rows], &y[..]);
        }
        // Ragged batches are typed errors.
        assert!(matches!(
            op.apply_many_into(OpDirection::Forward, &xs[..cols + 1], &mut ys),
            Err(OpError::RaggedBatch { .. })
        ));
    }
}
