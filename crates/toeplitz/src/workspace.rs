//! Pooled per-apply workspaces for the multi-level pipelines.
//!
//! Same discipline as the 1-level pipeline's pool (checkout ledger,
//! bounded retention), plus a **peak-bytes high-water mark**: every
//! returned workspace reports the bytes its buffers currently hold, and
//! the pool records the largest single-workspace footprint it has seen.
//! That diagnostic is how the bench gate proves the split-FFT path's
//! scratch stays measurably below the full embedding's.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use fftmatvec_core::workspace_retention_cap;
use fftmatvec_numeric::ComplexBuffer;

/// One apply's worth of grid buffers. Under a fixed configuration each
/// buffer keeps a stable tier across applies, so `reset_for_overwrite`
/// reuses the allocation every time: `spec`/`specb` are the forward
/// grid and its rotation partner in the Fft tier, `mid` materializes
/// only when the Sbgemv tier differs, and `ispec`/`ispecb` only when
/// the Ifft tier differs from its predecessor.
pub(crate) struct Workspace {
    pub(crate) id: u64,
    pub(crate) spec: ComplexBuffer,
    pub(crate) specb: ComplexBuffer,
    pub(crate) mid: ComplexBuffer,
    pub(crate) ispec: ComplexBuffer,
    pub(crate) ispecb: ComplexBuffer,
}

impl Workspace {
    /// All-empty workspace; `Vec::new()` does not allocate.
    fn empty(id: u64) -> Self {
        Workspace {
            id,
            spec: ComplexBuffer::C64(Vec::new()),
            specb: ComplexBuffer::C64(Vec::new()),
            mid: ComplexBuffer::C64(Vec::new()),
            ispec: ComplexBuffer::C64(Vec::new()),
            ispecb: ComplexBuffer::C64(Vec::new()),
        }
    }

    /// Bytes currently held across all buffers — the scratch footprint
    /// of one pipeline pass under the configuration that last ran.
    fn bytes(&self) -> usize {
        self.spec.bytes()
            + self.specb.bytes()
            + self.mid.bytes()
            + self.ispec.bytes()
            + self.ispecb.bytes()
    }
}

struct PoolLedger {
    parked: Vec<Workspace>,
    /// Ids currently checked out; small, linear scan beats hashing.
    checked_out: Vec<u64>,
    next_id: u64,
    peak_out: usize,
    /// Largest single-workspace byte footprint observed at return time.
    peak_bytes: usize,
}

/// Pool of [`Workspace`]s with the 1-level pipeline's hardening:
/// checkout ledger (returning a workspace the ledger does not list is a
/// loud panic, never silent aliasing) and retention bounded by
/// [`workspace_retention_cap`].
pub(crate) struct WorkspacePool {
    reuse: bool,
    state: Mutex<PoolLedger>,
}

impl WorkspacePool {
    pub(crate) fn new(reuse: bool) -> Arc<WorkspacePool> {
        Arc::new(WorkspacePool {
            reuse,
            state: Mutex::new(PoolLedger {
                parked: Vec::new(),
                checked_out: Vec::new(),
                next_id: 0,
                peak_out: 0,
                peak_bytes: 0,
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, PoolLedger> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn checkout(&self) -> PooledWorkspace<'_> {
        let mut st = self.lock();
        let ws = match st.parked.pop() {
            Some(ws) => ws,
            None => {
                let id = st.next_id;
                st.next_id += 1;
                Workspace::empty(id)
            }
        };
        st.checked_out.push(ws.id);
        st.peak_out = st.peak_out.max(st.checked_out.len());
        PooledWorkspace { pool: self, ws: Some(ws) }
    }

    pub(crate) fn pooled(&self) -> usize {
        self.lock().parked.len()
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.lock().checked_out.len()
    }

    pub(crate) fn peak_in_flight(&self) -> usize {
        self.lock().peak_out
    }

    pub(crate) fn peak_bytes(&self) -> usize {
        self.lock().peak_bytes
    }
}

pub(crate) struct PooledWorkspace<'a> {
    pool: &'a WorkspacePool,
    /// Always `Some` until `drop` takes it back.
    ws: Option<Workspace>,
}

impl PooledWorkspace<'_> {
    #[inline]
    pub(crate) fn ws(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace held until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        let ws = self.ws.take().expect("workspace held until drop");
        let mut st = self.pool.lock();
        let idx = st
            .checked_out
            .iter()
            .position(|&id| id == ws.id)
            .expect("workspace returned twice or to a foreign pool: aliased checkout");
        st.checked_out.swap_remove(idx);
        st.peak_bytes = st.peak_bytes.max(ws.bytes());
        if self.pool.reuse && st.parked.len() < workspace_retention_cap() {
            st.parked.push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::Precision;

    #[test]
    fn checkout_parks_and_tracks_peaks() {
        let pool = WorkspacePool::new(true);
        {
            let mut a = pool.checkout();
            a.ws().spec.reset_for_overwrite(Precision::Double, 16);
            let _b = pool.checkout();
            assert_eq!(pool.in_flight(), 2);
        }
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.pooled(), 2);
        assert_eq!(pool.peak_in_flight(), 2);
        // 16 complex f64 = 256 bytes in one buffer.
        assert_eq!(pool.peak_bytes(), 256);
    }

    #[test]
    fn no_reuse_pool_frees_returns() {
        let pool = WorkspacePool::new(false);
        drop(pool.checkout());
        assert_eq!(pool.pooled(), 0);
        assert_eq!(pool.peak_in_flight(), 1);
    }
}
