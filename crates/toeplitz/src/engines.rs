//! Per-tier N-d FFT engine bank, mirroring the 1-level pipeline's
//! `TierEngines`: one lazily built [`NdFft`] per precision that any
//! phase of the current configuration actually runs in. Engines survive
//! reconfiguration when their tier is still used
//! ([`NdTierEngines::retain`]), keeping warmed scratch arenas alive; the
//! per-axis plans always resolve through the process-wide cache, so
//! rebuilds only re-link shared twiddle tables.

use std::sync::OnceLock;

use fftmatvec_core::{MatvecPhase, PrecisionConfig};
use fftmatvec_fft::NdFft;
use fftmatvec_numeric::{bf16, f16, Precision};

pub(crate) struct NdTierEngines {
    dims: Vec<usize>,
    pub(crate) h: OnceLock<NdFft<f16>>,
    pub(crate) b: OnceLock<NdFft<bf16>>,
    pub(crate) s: OnceLock<NdFft<f32>>,
    pub(crate) d: OnceLock<NdFft<f64>>,
}

impl NdTierEngines {
    pub(crate) fn new(dims: Vec<usize>) -> Self {
        NdTierEngines {
            dims,
            h: OnceLock::new(),
            b: OnceLock::new(),
            s: OnceLock::new(),
            d: OnceLock::new(),
        }
    }

    /// Does `cfg` run either transform phase in tier `p`?
    pub(crate) fn uses(cfg: PrecisionConfig, p: Precision) -> bool {
        cfg.phase(MatvecPhase::Fft) == p || cfg.phase(MatvecPhase::Ifft) == p
    }

    /// Build every engine `cfg` needs (plan resolution + twiddle tables
    /// now, not on the first apply).
    pub(crate) fn warm(&self, cfg: PrecisionConfig) {
        for p in Precision::ALL {
            if Self::uses(cfg, p) {
                match p {
                    Precision::Half => {
                        self.fft16();
                    }
                    Precision::BFloat16 => {
                        self.fftb16();
                    }
                    Precision::Single => {
                        self.fft32();
                    }
                    Precision::Double => {
                        self.fft64();
                    }
                }
            }
        }
    }

    /// Drop engines whose tier `cfg` no longer uses; keep the rest.
    pub(crate) fn retain(&mut self, cfg: PrecisionConfig) {
        if !Self::uses(cfg, Precision::Half) {
            self.h.take();
        }
        if !Self::uses(cfg, Precision::BFloat16) {
            self.b.take();
        }
        if !Self::uses(cfg, Precision::Single) {
            self.s.take();
        }
        if !Self::uses(cfg, Precision::Double) {
            self.d.take();
        }
    }

    pub(crate) fn fft16(&self) -> &NdFft<f16> {
        self.h.get_or_init(|| NdFft::new(&self.dims))
    }

    pub(crate) fn fftb16(&self) -> &NdFft<bf16> {
        self.b.get_or_init(|| NdFft::new(&self.dims))
    }

    pub(crate) fn fft32(&self) -> &NdFft<f32> {
        self.s.get_or_init(|| NdFft::new(&self.dims))
    }

    pub(crate) fn fft64(&self) -> &NdFft<f64> {
        self.d.get_or_init(|| NdFft::new(&self.dims))
    }

    pub(crate) fn scratch_pooled(&self, p: Precision) -> Option<usize> {
        match p {
            Precision::Half => self.h.get().map(NdFft::scratch_pooled),
            Precision::BFloat16 => self.b.get().map(NdFft::scratch_pooled),
            Precision::Single => self.s.get().map(NdFft::scratch_pooled),
            Precision::Double => self.d.get().map(NdFft::scratch_pooled),
        }
    }
}
