//! Circulant embedding symbols: the frequency-domain setup shared by
//! every pipeline variant of one operator.
//!
//! Embedding a multi-level Toeplitz matrix into a multi-level circulant
//! turns its matvec into `extract ∘ IFFTN ∘ (⊙ ĉ) ∘ FFTN ∘ pad`, where
//! `ĉ` — the *symbol spectrum* — is the N-d FFT of the circulant's
//! first-column tensor. The symbol is the expensive, shareable part of
//! construction (like `F̂` for the 1-level pipeline): [`ToeplitzSymbol`]
//! is built once per generator, computed in double precision, and lazily
//! cast per tier the first time a configuration touches that tier, then
//! shared across every precision variant via `Arc`
//! ([`crate::TwoLevelToeplitz::builder_arc`]).
//!
//! Two embedding paths exist:
//!
//! * **Full** — one circulant grid of per-level even extents
//!   `m_l ≥ rows_l + cols_l - 1`.
//! * **Split** (Siron & Molesky, arXiv:2406.17981; two-level only) —
//!   the outer extent is forced to `m₁ = 2·n₁` with
//!   `n₁ = max(rows₁, cols₁)`, and the radix-2 decimation-in-frequency
//!   identity splits the outer transform into an *even* and an *odd*
//!   frequency channel, each living on a half grid of `n₁` outer rows.
//!   Because the padded input is zero in its second outer half, both
//!   channels read the same half-size input (the odd channel pre-twists
//!   by `w_j = e^{-iπj/n₁}`), so the pipeline processes the channels
//!   sequentially through **one** half-size workspace grid — halving
//!   peak scratch at the cost of a second FFT pass.

use std::sync::OnceLock;

use fftmatvec_core::ConfigError;
use fftmatvec_fft::{FftDirection, NdFft};
use fftmatvec_numeric::ndindex::total_len;
use fftmatvec_numeric::{ComplexBuffer, Precision, C64};

use crate::generator::{LevelDims, ToeplitzGenerator};

/// One spectrum stored in double precision with lazily materialized
/// per-tier casts — the `F̂`-style cache of the 1-level pipeline. Every
/// tier is held as a [`ComplexBuffer`] so the pointwise multiply can
/// hand the spectrum straight to a
/// [`DeviceBackend`](fftmatvec_backend::DeviceBackend) primitive.
pub(crate) struct TierSpectra {
    d: ComplexBuffer,
    s: OnceLock<ComplexBuffer>,
    h: OnceLock<ComplexBuffer>,
    b: OnceLock<ComplexBuffer>,
}

/// Narrow a double spectrum into tier `p` (same rounding as the 1-level
/// pipeline's `F̂` casts).
fn narrowed(d: &[C64], p: Precision) -> ComplexBuffer {
    match p {
        Precision::Half => ComplexBuffer::C16(d.iter().map(|z| z.cast()).collect()),
        Precision::BFloat16 => ComplexBuffer::CB16(d.iter().map(|z| z.cast()).collect()),
        Precision::Single => ComplexBuffer::C32(d.iter().map(|z| z.cast()).collect()),
        Precision::Double => ComplexBuffer::C64(d.to_vec()),
    }
}

impl TierSpectra {
    fn new(d: Vec<C64>) -> Self {
        TierSpectra {
            d: ComplexBuffer::C64(d),
            s: OnceLock::new(),
            h: OnceLock::new(),
            b: OnceLock::new(),
        }
    }

    pub(crate) fn c64(&self) -> &[C64] {
        match &self.d {
            ComplexBuffer::C64(v) => v,
            _ => unreachable!("TierSpectra base spectrum is always double"),
        }
    }

    /// The spectrum as a device buffer in tier `p`, narrowing lazily on
    /// first request.
    pub(crate) fn buffer(&self, p: Precision) -> &ComplexBuffer {
        match p {
            Precision::Double => &self.d,
            Precision::Single => self.s.get_or_init(|| narrowed(self.c64(), p)),
            Precision::Half => self.h.get_or_init(|| narrowed(self.c64(), p)),
            Precision::BFloat16 => self.b.get_or_init(|| narrowed(self.c64(), p)),
        }
    }

    /// Materialize the cast for `p` (warm-up; keeps applies
    /// allocation-free).
    pub(crate) fn warm(&self, p: Precision) {
        let _ = self.buffer(p);
    }
}

/// Which embedding realizes the operator.
pub(crate) enum SpectraSet {
    /// One spectrum over the full circulant grid.
    Full(TierSpectra),
    /// Split-FFT: even/odd outer-frequency channels over half grids,
    /// plus the input twist `w_j = e^{-iπj/n₁}` and the output
    /// reconstruction phase `e^{+iπn/n₁}` for the odd channel.
    Split { even: TierSpectra, odd: TierSpectra, twist: Vec<C64>, untwist: Vec<C64> },
}

/// The shared, immutable frequency-domain setup of one multi-level
/// Toeplitz operator: generator, embedding extents, symbol spectra (with
/// per-tier lazy casts), and the one-time condition estimate. Buildable
/// once and shared across precision variants via `Arc`.
pub struct ToeplitzSymbol {
    gen: ToeplitzGenerator,
    /// Full circulant extents per level (`m_l`).
    embed_dims: Vec<usize>,
    /// Extents of the working grid the pipeline allocates: equals
    /// `embed_dims` for the full path, `[m₁/2, m₂]` for split.
    work_dims: Vec<usize>,
    spectra: SpectraSet,
    kappa: f64,
}

impl std::fmt::Debug for ToeplitzSymbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToeplitzSymbol")
            .field("levels", &self.gen.levels())
            .field("embed_dims", &self.embed_dims)
            .field("split", &self.is_split())
            .finish()
    }
}

/// Smallest even circulant extent embedding a level: even lengths keep
/// the extent choices uniform across paths (the split path needs even
/// `m₁` structurally).
fn embed_len(level: LevelDims) -> usize {
    let s = level.diags();
    s + (s % 2)
}

/// First-column tensor of the multi-level circulant embedding `T` in a
/// grid of extents `dims`: per axis, position `k < rows` holds diagonal
/// `+k`, position `k ≥ m - (cols-1)` holds diagonal `k - m`, anything
/// between is zero (the embedding slack). An entry is non-zero only if
/// every axis maps.
fn circulant_column(gen: &ToeplitzGenerator, dims: &[usize]) -> Vec<C64> {
    let levels = gen.levels();
    let diag_dims: Vec<usize> = levels.iter().map(LevelDims::diags).collect();
    let diag_strides = fftmatvec_numeric::ndindex::strides_row_major(&diag_dims);
    // Per-axis map: circulant coordinate → generator axis coordinate.
    let maps: Vec<Vec<Option<usize>>> = levels
        .iter()
        .zip(dims)
        .map(|(lv, &m)| {
            (0..m)
                .map(|k| {
                    if k < lv.rows {
                        Some(lv.cols - 1 + k)
                    } else if k + lv.cols > m {
                        // k - m ∈ [-(cols-1), -1] → axis index cols-1+k-m
                        Some(lv.cols - 1 + k - m)
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    let total = total_len(dims);
    let mut col = vec![C64::new(0.0, 0.0); total];
    let mut idx = vec![0usize; dims.len()];
    for (flat, slot) in col.iter_mut().enumerate() {
        fftmatvec_numeric::ndindex::decompose(flat, dims, &mut idx);
        let mut diag_flat = 0usize;
        let mut hit = true;
        for (l, &k) in idx.iter().enumerate() {
            match maps[l][k] {
                Some(a) => diag_flat += a * diag_strides[l],
                None => {
                    hit = false;
                    break;
                }
            }
        }
        if hit {
            *slot = C64::new(gen.diagonals()[diag_flat], 0.0);
        }
    }
    col
}

/// Forward N-d FFT of the first-column tensor (double precision,
/// construction time).
fn symbol_spectrum(dims: &[usize], mut col: Vec<C64>) -> Vec<C64> {
    let nd = NdFft::<f64>::new(dims);
    let mut partner = vec![C64::new(0.0, 0.0); col.len()];
    nd.process(&mut col, &mut partner, FftDirection::Forward);
    col
}

/// Conservative condition proxy from the circulant spectrum:
/// `max|ĉ| / min|ĉ|`, capped so a (near-)singular embedding yields a
/// large-but-finite κ instead of ∞.
fn spectrum_condition(chat: &[C64]) -> f64 {
    let mut amax = 0.0f64;
    let mut amin = f64::INFINITY;
    for z in chat {
        let a = z.abs();
        amax = amax.max(a);
        amin = amin.min(a);
    }
    if amax == 0.0 {
        return 1.0;
    }
    (amax / amin.max(amax * 1e-16)).max(1.0)
}

impl ToeplitzSymbol {
    /// Build the full-embedding symbol for any number of levels.
    pub fn full(gen: ToeplitzGenerator) -> Result<ToeplitzSymbol, ConfigError> {
        let embed_dims: Vec<usize> = gen.levels().iter().map(|&l| embed_len(l)).collect();
        let chat = symbol_spectrum(&embed_dims, circulant_column(&gen, &embed_dims));
        let kappa = spectrum_condition(&chat);
        let work_dims = embed_dims.clone();
        Ok(ToeplitzSymbol {
            gen,
            embed_dims,
            work_dims,
            spectra: SpectraSet::Full(TierSpectra::new(chat)),
            kappa,
        })
    }

    /// Build the split-FFT symbol (two-level generators only): outer
    /// extent `m₁ = 2·n₁` with `n₁ = max(rows₁, cols₁)`, spectrum
    /// pre-split into even/odd outer-frequency half grids.
    pub fn split(gen: ToeplitzGenerator) -> Result<ToeplitzSymbol, ConfigError> {
        if gen.levels().len() != 2 {
            return Err(ConfigError::ZeroDimension { what: "split-FFT needs exactly two levels" });
        }
        let outer = gen.levels()[0];
        let n1 = outer.rows.max(outer.cols);
        let m1 = 2 * n1;
        debug_assert!(m1 >= outer.diags(), "2·max(r,c) ≥ r+c-1 always");
        let m2 = embed_len(gen.levels()[1]);
        let embed_dims = vec![m1, m2];
        let chat = symbol_spectrum(&embed_dims, circulant_column(&gen, &embed_dims));
        let kappa = spectrum_condition(&chat);
        let mut even = vec![C64::new(0.0, 0.0); n1 * m2];
        let mut odd = vec![C64::new(0.0, 0.0); n1 * m2];
        for k in 0..n1 {
            even[k * m2..(k + 1) * m2].copy_from_slice(&chat[(2 * k) * m2..(2 * k + 1) * m2]);
            odd[k * m2..(k + 1) * m2].copy_from_slice(&chat[(2 * k + 1) * m2..(2 * k + 2) * m2]);
        }
        let theta = std::f64::consts::PI / n1 as f64;
        let twist: Vec<C64> = (0..n1).map(|j| C64::expi(-theta * j as f64)).collect();
        let untwist: Vec<C64> = (0..n1).map(|n| C64::expi(theta * n as f64)).collect();
        Ok(ToeplitzSymbol {
            gen,
            embed_dims,
            work_dims: vec![n1, m2],
            spectra: SpectraSet::Split {
                even: TierSpectra::new(even),
                odd: TierSpectra::new(odd),
                twist,
                untwist,
            },
            kappa,
        })
    }

    /// The generator this symbol was built from.
    pub fn generator(&self) -> &ToeplitzGenerator {
        &self.gen
    }

    /// Full circulant extents per level.
    pub fn embed_dims(&self) -> &[usize] {
        &self.embed_dims
    }

    /// Extents of the working grid one pipeline pass allocates.
    pub fn work_dims(&self) -> &[usize] {
        &self.work_dims
    }

    /// Total full-embedding grid length (`∏ embed_dims`) — the FFT-depth
    /// proxy the Eq. 6 bound uses as `N_t`.
    pub fn embed_total(&self) -> usize {
        total_len(&self.embed_dims)
    }

    /// Flat length of the working grid (`∏ work_dims`).
    pub fn grid_len(&self) -> usize {
        total_len(&self.work_dims)
    }

    /// Whether this symbol realizes the split-FFT path.
    pub fn is_split(&self) -> bool {
        matches!(self.spectra, SpectraSet::Split { .. })
    }

    /// One-time condition estimate `κ` from the circulant spectrum.
    pub fn condition_estimate(&self) -> f64 {
        self.kappa
    }

    pub(crate) fn spectra(&self) -> &SpectraSet {
        &self.spectra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_2l() -> ToeplitzGenerator {
        let diags: Vec<f64> = (0..5 * 7).map(|i| ((i * 37 + 11) % 19) as f64 - 9.0).collect();
        ToeplitzGenerator::two_level((3, 3), (4, 4), diags).unwrap()
    }

    #[test]
    fn full_embedding_dims_are_even_and_cover_all_diagonals() {
        let sym = ToeplitzSymbol::full(gen_2l()).unwrap();
        assert_eq!(sym.embed_dims(), &[6, 8]);
        assert_eq!(sym.work_dims(), &[6, 8]);
        assert!(!sym.is_split());
        assert_eq!(sym.grid_len(), 48);
    }

    #[test]
    fn split_embedding_halves_the_working_grid() {
        let sym = ToeplitzSymbol::split(gen_2l()).unwrap();
        assert_eq!(sym.embed_dims(), &[6, 8]);
        assert_eq!(sym.work_dims(), &[3, 8]);
        assert!(sym.is_split());
        assert_eq!(sym.grid_len(), sym.embed_total() / 2);
    }

    #[test]
    fn split_rejects_non_two_level_generators() {
        let gen = ToeplitzGenerator::new(&[(3, 3)], vec![1.0; 5]).unwrap();
        assert!(matches!(ToeplitzSymbol::split(gen), Err(ConfigError::ZeroDimension { .. })));
    }

    #[test]
    fn split_channels_interleave_the_full_spectrum() {
        let gen = gen_2l();
        let full = ToeplitzSymbol::full(gen.clone()).unwrap();
        let split = ToeplitzSymbol::split(gen).unwrap();
        // Same embedding extents here (diags odd → +1 even == 2·max).
        assert_eq!(full.embed_dims(), split.embed_dims());
        let SpectraSet::Full(f) = full.spectra() else { panic!() };
        let SpectraSet::Split { even, odd, .. } = split.spectra() else { panic!() };
        let m2 = 8;
        for k in 0..3 {
            for p in 0..m2 {
                let e = even.c64()[k * m2 + p];
                let o = odd.c64()[k * m2 + p];
                let fe = f.c64()[(2 * k) * m2 + p];
                let fo = f.c64()[(2 * k + 1) * m2 + p];
                assert!((e.re - fe.re).abs() < 1e-12 && (e.im - fe.im).abs() < 1e-12);
                assert!((o.re - fo.re).abs() < 1e-12 && (o.im - fo.im).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn condition_estimate_is_finite_and_at_least_one() {
        let sym = ToeplitzSymbol::full(gen_2l()).unwrap();
        let k = sym.condition_estimate();
        assert!(k.is_finite() && k >= 1.0);
    }
}
