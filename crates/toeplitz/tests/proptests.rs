//! Property-based tests for the multi-level Toeplitz operators, across
//! randomly drawn two-level shapes, all four precision tiers, and batch
//! sizes 1–8:
//!
//! * full embedding and split-FFT both match the dense reference
//!   assembly in double, any shape, both directions;
//! * mixed-tier configurations stay within the documented per-tier
//!   relative budgets ([`fftmatvec_toeplitz::tier_rel_budget`]);
//! * the batched apply is bit-identical to per-item applies;
//! * nested FFT plans (`planWhole`/`planBlock`) resolve through the
//!   process-wide cache, so independently built operators share handles
//!   (`Arc::ptr_eq`).

use std::sync::Arc;

use fftmatvec_core::{LinearOperator, OpDirection, PrecisionConfig};
use fftmatvec_numeric::vecmath::rel_l2_error;
use fftmatvec_numeric::SplitMix64;
use fftmatvec_toeplitz::{
    narrowest_tier, tier_rel_budget, NdCirculantEmbedding, ToeplitzGenerator, TwoLevelToeplitz,
};
use proptest::prelude::*;

/// Two-level generator with the main diagonal lifted, keeping the dense
/// reference well scaled so relative-error comparisons are meaningful.
fn two_level_gen(outer: (usize, usize), inner: (usize, usize), seed: u64) -> ToeplitzGenerator {
    let inner_diags = inner.0 + inner.1 - 1;
    let n = (outer.0 + outer.1 - 1) * inner_diags;
    let mut diags = vec![0.0; n];
    SplitMix64::new(seed).fill_uniform(&mut diags, -1.0, 1.0);
    diags[(outer.1 - 1) * inner_diags + (inner.1 - 1)] += 4.0;
    ToeplitzGenerator::two_level(outer, inner, diags).unwrap()
}

/// Dense oracle apply in the requested direction (`y = A·x` or
/// `y = Aᵀ·x` — the generator is real, so adjoint is transpose).
fn dense_apply(gen: &ToeplitzGenerator, dir: OpDirection, x: &[f64]) -> Vec<f64> {
    let a = gen.dense();
    let (rows, cols) = (gen.rows(), gen.cols());
    match dir {
        OpDirection::Forward => {
            let mut y = vec![0.0; rows];
            for r in 0..rows {
                y[r] = (0..cols).map(|c| a[r * cols + c] * x[c]).sum();
            }
            y
        }
        OpDirection::Adjoint => {
            let mut y = vec![0.0; cols];
            for c in 0..cols {
                y[c] = (0..rows).map(|r| a[r * cols + c] * x[r]).sum();
            }
            y
        }
    }
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut v = vec![0.0; n];
    SplitMix64::new(seed).fill_uniform(&mut v, -1.0, 1.0);
    v
}

/// The tier sweep: one configuration per tier (pad/unpad held in double
/// so the grid tiers dominate the error), plus the paper's mixed shape.
const TIER_CONFIGS: [&str; 5] = ["ddddd", "sssss", "dssdd", "dhhdd", "dbbdd"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full embedding == dense reference in double, both directions, any
    /// two-level shape — including degenerate extents of 1.
    #[test]
    fn full_matches_dense(
        or in 1usize..5, oc in 1usize..5,
        ir in 1usize..7, ic in 1usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let gen = two_level_gen((or, oc), (ir, ic), seed);
        let op = TwoLevelToeplitz::builder(gen.clone()).build().unwrap();
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let (in_len, out_len) = op.shape().io_lens(dir);
            let x = random_vec(in_len, seed ^ 1);
            let mut y = vec![0.0; out_len];
            op.apply_into(dir, &x, &mut y).unwrap();
            prop_assert!(rel_l2_error(&y, &dense_apply(&gen, dir, &x)) < 1e-12);
        }
    }

    /// Split-FFT == dense reference in double, both directions, any
    /// two-level shape — the memory-optimized path is exact algebra.
    #[test]
    fn split_matches_dense(
        or in 1usize..5, oc in 1usize..5,
        ir in 1usize..7, ic in 1usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let gen = two_level_gen((or, oc), (ir, ic), seed);
        let op = TwoLevelToeplitz::builder(gen.clone()).split_fft(true).build().unwrap();
        prop_assert!(op.is_split());
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let (in_len, out_len) = op.shape().io_lens(dir);
            let x = random_vec(in_len, seed ^ 2);
            let mut y = vec![0.0; out_len];
            op.apply_into(dir, &x, &mut y).unwrap();
            prop_assert!(rel_l2_error(&y, &dense_apply(&gen, dir, &x)) < 1e-12);
        }
    }

    /// Every tier configuration stays within its documented relative
    /// budget against the dense oracle, on both paths, both directions.
    #[test]
    fn tiers_within_budget(
        or in 1usize..4, oc in 1usize..4,
        ir in 2usize..6, ic in 2usize..6,
        cfg_idx in 0usize..TIER_CONFIGS.len(),
        split_idx in 0usize..2,
        seed in 0u64..u64::MAX,
    ) {
        let cfg: PrecisionConfig = TIER_CONFIGS[cfg_idx].parse().unwrap();
        let split = split_idx == 1;
        let gen = two_level_gen((or, oc), (ir, ic), seed);
        let op = TwoLevelToeplitz::builder(gen.clone())
            .precision(cfg)
            .split_fft(split)
            .build()
            .unwrap();
        let budget = tier_rel_budget(narrowest_tier(cfg));
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let (in_len, out_len) = op.shape().io_lens(dir);
            let x = random_vec(in_len, seed ^ 3);
            let mut y = vec![0.0; out_len];
            op.apply_into(dir, &x, &mut y).unwrap();
            let err = rel_l2_error(&y, &dense_apply(&gen, dir, &x));
            prop_assert!(err < budget, "{cfg} {dir:?} err {err:e} vs budget {budget:e}");
        }
    }

    /// Batched apply is bit-identical to per-item applies for any batch
    /// size 1–8, on both paths, under any tier configuration.
    #[test]
    fn batch_matches_singles(
        or in 1usize..4, oc in 1usize..4,
        ir in 1usize..6, ic in 1usize..6,
        batch in 1usize..9,
        cfg_idx in 0usize..TIER_CONFIGS.len(),
        split_idx in 0usize..2,
        seed in 0u64..u64::MAX,
    ) {
        let cfg: PrecisionConfig = TIER_CONFIGS[cfg_idx].parse().unwrap();
        let split = split_idx == 1;
        let gen = two_level_gen((or, oc), (ir, ic), seed);
        let op = TwoLevelToeplitz::builder(gen)
            .precision(cfg)
            .split_fft(split)
            .build()
            .unwrap();
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let (in_len, out_len) = op.shape().io_lens(dir);
            let inputs = random_vec(batch * in_len, seed ^ 4);
            let mut outputs = vec![f64::NAN; batch * out_len];
            op.apply_many_into(dir, &inputs, &mut outputs).unwrap();
            for b in 0..batch {
                let mut single = vec![0.0; out_len];
                op.apply_into(dir, &inputs[b * in_len..(b + 1) * in_len], &mut single).unwrap();
                prop_assert_eq!(&outputs[b * out_len..(b + 1) * out_len], &single[..]);
            }
        }
    }

    /// Nested plans resolve through the process-wide cache: two
    /// independently built operators over the same shape share their
    /// `planWhole`/`planBlock` handles, and the N-d realization over the
    /// same generator shares them too.
    #[test]
    fn nested_plans_are_cache_shared(
        or in 1usize..5, oc in 1usize..5,
        ir in 1usize..7, ic in 1usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let gen = two_level_gen((or, oc), (ir, ic), seed);
        let a = TwoLevelToeplitz::builder(gen.clone()).build().unwrap();
        let b = TwoLevelToeplitz::builder(gen.clone()).build().unwrap();
        prop_assert!(Arc::ptr_eq(&a.plan_whole(), &b.plan_whole()));
        prop_assert!(Arc::ptr_eq(&a.plan_block(), &b.plan_block()));
        // The split path halves the outer transform but keeps the inner
        // block plan — planBlock is shared across paths.
        let s = TwoLevelToeplitz::builder(gen.clone()).split_fft(true).build().unwrap();
        prop_assert!(Arc::ptr_eq(&a.plan_block(), &s.plan_block()));
        let s2 = TwoLevelToeplitz::builder(gen.clone()).split_fft(true).build().unwrap();
        prop_assert!(Arc::ptr_eq(&s.plan_whole(), &s2.plan_whole()));
        // The general N-d realization runs the same embedding grid.
        let nd = NdCirculantEmbedding::builder(gen).build().unwrap();
        let y = nd.apply_forward(&vec![1.0; oc * ic]).unwrap();
        prop_assert_eq!(y.len(), or * ir);
    }
}
