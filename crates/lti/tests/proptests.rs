//! Property-based tests for the LTI/Bayesian layer: discretization
//! invariants (stability, linearity, adjointness) and the p2o map's
//! agreement with brute-force PDE solves across random shapes.

use fftmatvec_core::{FftMatvec, LinearOperator};
use fftmatvec_lti::{HeatEquation1D, HeatEquation2D, LtiSystem, P2oMap};
use fftmatvec_numeric::vecmath::rel_l2_error;
use fftmatvec_numeric::SplitMix64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Implicit Euler heat is unconditionally stable: any source
    /// switched off after the first step decays monotonically in energy.
    #[test]
    fn heat1d_unconditional_stability(
        nx in 4usize..40,
        nt in 3usize..20,
        dt in 0.001f64..0.5,
        kappa in 0.01f64..2.0,
        seed in 0u64..u64::MAX,
    ) {
        let sys = HeatEquation1D::new(nx, dt, kappa);
        let mut rng = SplitMix64::new(seed);
        let mut m = vec![0.0; nx * nt];
        for v in m[..nx].iter_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        let traj = sys.forward_trajectory(&m, nt);
        let energy = |k: usize| -> f64 {
            traj[k * nx..(k + 1) * nx].iter().map(|u| u * u).sum()
        };
        for k in 1..nt {
            prop_assert!(energy(k) <= energy(k - 1) * (1.0 + 1e-12), "t={k}");
        }
    }

    /// One adjoint step is exactly the transpose of one forward step,
    /// 1-D and 2-D.
    #[test]
    fn step_adjointness(
        nx in 2usize..16,
        ny in 2usize..12,
        dt in 0.005f64..0.2,
        kappa in 0.05f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SplitMix64::new(seed);
        // 1-D.
        let sys1 = HeatEquation1D::new(nx, dt, kappa);
        let a: Vec<f64> = (0..nx).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..nx).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let sa = sys1.stepper().solve(&a);
        let mut stb = b.clone();
        sys1.adjoint_step(&mut stb);
        let lhs: f64 = sa.iter().zip(&b).map(|(x, y)| x * y).sum();
        let rhs: f64 = a.iter().zip(&stb).map(|(x, y)| x * y).sum();
        prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));

        // 2-D (through the trait's trajectory/adjoint pair at nt = 1).
        let sys2 = HeatEquation2D::new(nx, ny, dt, kappa);
        let n = sys2.nx();
        let ma: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let db: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        // Forward one step with source ma: u = S(dt*ma).
        let u = sys2.forward_trajectory(&ma, 1);
        let mut w = db.clone();
        sys2.adjoint_step(&mut w);
        // <S dt a, b> == <dt a, S^T b>
        let lhs2: f64 = u.iter().zip(&db).map(|(x, y)| x * y).sum();
        let rhs2: f64 = ma.iter().zip(&w).map(|(x, y)| dt * x * y).sum();
        prop_assert!((lhs2 - rhs2).abs() < 1e-9 * lhs2.abs().max(1.0), "{lhs2} vs {rhs2}");
    }

    /// The assembled p2o operator applied through the FFT pipeline equals
    /// observing the brute-force trajectory, for random sensor subsets.
    #[test]
    fn p2o_consistency(
        nx in 4usize..24,
        nt in 2usize..14,
        n_sensors in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SplitMix64::new(seed);
        let sys = HeatEquation1D::new(nx, 0.02, 0.3);
        let mut sensors: Vec<usize> =
            (0..n_sensors).map(|_| rng.next_usize(nx)).collect();
        sensors.sort_unstable();
        sensors.dedup();
        let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let mut m = vec![0.0; nx * nt];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        let traj = sys.forward_trajectory(&m, nt);
        let nd = sensors.len();
        let mut want = vec![0.0; nd * nt];
        for k in 0..nt {
            for (i, &s) in sensors.iter().enumerate() {
                want[k * nd + i] = traj[k * nx + s];
            }
        }
        let mv = FftMatvec::builder(p2o.operator).build().unwrap();
        prop_assert!(rel_l2_error(&mv.apply_forward(&m).unwrap(), &want) < 1e-10);
    }

    /// Positivity: a nonnegative source yields a nonnegative heat state
    /// (M-matrix property of the implicit stepper).
    #[test]
    fn heat_positivity(
        nx in 3usize..30,
        nt in 1usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let sys = HeatEquation1D::new(nx, 0.05, 0.4);
        let mut rng = SplitMix64::new(seed);
        let mut m = vec![0.0; nx * nt];
        rng.fill_uniform(&mut m, 0.0, 1.0);
        let traj = sys.forward_trajectory(&m, nt);
        prop_assert!(traj.iter().all(|&u| u >= -1e-13));
    }
}
