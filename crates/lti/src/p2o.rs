//! Assembling the parameter-to-observable map (Section 2.4).
//!
//! With implicit Euler and zero initial state,
//! `u^k = Σ_{j≤k} S^{k−j+1}·Δt·m^j` and `d^k = B·u^k`, so the discrete
//! p2o map is block lower-triangular Toeplitz with first block column
//! `F_{k,1} = Δt·B·S^k`. Row `i` of that column for all `k` comes from one
//! *adjoint* recursion `w_k = Sᵀ·w_{k−1}`, `w_0 = Bᵀe_i` — i.e. exactly
//! `N_d` adjoint PDE solves, the construction the paper highlights.

use fftmatvec_core::BlockToeplitzOperator;

use crate::system::LtiSystem;

/// The assembled p2o map plus its sensor metadata.
pub struct P2oMap {
    /// Sensor grid indices (`B` is selection at these points).
    pub sensors: Vec<usize>,
    /// Timesteps.
    pub nt: usize,
    /// The FFT-ready operator.
    pub operator: BlockToeplitzOperator,
}

impl P2oMap {
    /// Assemble from a system and sensor locations (grid indices).
    pub fn assemble<S: LtiSystem>(sys: &S, sensors: &[usize], nt: usize) -> Result<Self, String> {
        let nx = sys.nx();
        let nd = sensors.len();
        if nd == 0 || nt == 0 {
            return Err("need at least one sensor and one timestep".into());
        }
        for &s in sensors {
            if s >= nx {
                return Err(format!("sensor index {s} out of range (nx = {nx})"));
            }
        }
        // col[(t·nd + i)·nx + k] = F_{t+1,1}[i,k] = Δt·(Sᵀ)^{t+1}·B e_i.
        let mut col = vec![0.0; nt * nd * nx];
        for (i, &s) in sensors.iter().enumerate() {
            let mut w = vec![0.0; nx];
            w[s] = 1.0; // Bᵀ e_i
            for t in 0..nt {
                sys.adjoint_step(&mut w);
                let dst = &mut col[(t * nd + i) * nx..(t * nd + i + 1) * nx];
                for (d, &v) in dst.iter_mut().zip(&w) {
                    *d = sys.dt() * v;
                }
            }
        }
        let operator = BlockToeplitzOperator::from_first_block_column(nd, nx, nt, &col)?;
        Ok(P2oMap { sensors: sensors.to_vec(), nt, operator })
    }

    /// Number of sensors.
    pub fn nd(&self) -> usize {
        self.sensors.len()
    }

    /// Number of spatial parameters.
    pub fn nm(&self) -> usize {
        self.operator.nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::HeatEquation1D;
    use fftmatvec_core::{FftMatvec, LinearOperator};
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    /// Oracle: observe the brute-force PDE trajectory at the sensors.
    fn brute_force_observations(
        sys: &HeatEquation1D,
        sensors: &[usize],
        m: &[f64],
        nt: usize,
    ) -> Vec<f64> {
        use crate::system::LtiSystem;
        let nx = sys.nx();
        let traj = sys.forward_trajectory(m, nt);
        let nd = sensors.len();
        let mut d = vec![0.0; nd * nt];
        for k in 0..nt {
            for (i, &s) in sensors.iter().enumerate() {
                d[k * nd + i] = traj[k * nx + s];
            }
        }
        d
    }

    #[test]
    fn p2o_matvec_reproduces_pde_solve() {
        // The strongest consistency check in the workspace: the assembled
        // Toeplitz operator applied via the FFT pipeline must equal
        // brute-force implicit-Euler time stepping plus observation.
        let sys = HeatEquation1D::new(24, 0.01, 0.4);
        let sensors = [3usize, 12, 20];
        let nt = 16;
        let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let mut rng = SplitMix64::new(42);
        let mut m = vec![0.0; 24 * nt];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        let want = brute_force_observations(&sys, &sensors, &m, nt);
        let mv = FftMatvec::builder(p2o.operator).build().unwrap();
        let got = mv.apply_forward(&m).unwrap();
        let err = rel_l2_error(&got, &want);
        assert!(err < 1e-11, "FFT p2o vs PDE solve: {err}");
    }

    #[test]
    fn assembly_uses_nd_adjoint_solves_worth_of_data() {
        let sys = HeatEquation1D::new(10, 0.02, 0.3);
        let p2o = P2oMap::assemble(&sys, &[2, 7], 8).unwrap();
        assert_eq!(p2o.nd(), 2);
        assert_eq!(p2o.nm(), 10);
        assert_eq!(p2o.operator.nt(), 8);
    }

    #[test]
    fn first_block_is_dt_b_s() {
        // F_{1,1}[i,·] = Δt·(row s_i of S); verify against a direct solve.
        let sys = HeatEquation1D::new(8, 0.05, 0.2);
        let sensors = [4usize];
        let p2o = P2oMap::assemble(&sys, &sensors, 4).unwrap();
        use crate::system::LtiSystem;
        // Column k of S = S e_k; row 4 of S = (Sᵀ e_4) by symmetry of
        // extraction.
        let mut e = vec![0.0; 8];
        e[4] = 1.0;
        let row = sys.stepper_t().solve(&e);
        let blk = p2o.operator.block(0);
        for k in 0..8 {
            assert!((blk[k] - sys.dt() * row[k]).abs() < 1e-13);
        }
    }

    #[test]
    fn validation_errors() {
        let sys = HeatEquation1D::new(8, 0.05, 0.2);
        assert!(P2oMap::assemble(&sys, &[], 4).is_err());
        assert!(P2oMap::assemble(&sys, &[9], 4).is_err());
        assert!(P2oMap::assemble(&sys, &[1], 0).is_err());
    }
}
