//! Tridiagonal systems and the Thomas algorithm.
//!
//! The implicit-Euler step of the 1-D systems solves `(I − Δt·A)u = rhs`
//! with `A` tridiagonal; one O(n) Thomas solve per timestep (and its
//! transpose for the adjoint recursion).

/// A tridiagonal matrix stored by diagonals: `lower[i] = M[i+1][i]`,
/// `diag[i] = M[i][i]`, `upper[i] = M[i][i+1]`.
#[derive(Clone, Debug)]
pub struct Tridiag {
    pub lower: Vec<f64>,
    pub diag: Vec<f64>,
    pub upper: Vec<f64>,
}

impl Tridiag {
    /// Build from diagonals; `lower`/`upper` must have `n − 1` entries.
    pub fn new(lower: Vec<f64>, diag: Vec<f64>, upper: Vec<f64>) -> Self {
        let n = diag.len();
        assert!(n > 0, "empty tridiagonal system");
        assert_eq!(lower.len(), n - 1, "lower diagonal length");
        assert_eq!(upper.len(), n - 1, "upper diagonal length");
        Tridiag { lower, diag, upper }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Dense `y = M·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = self.diag[i] * x[i];
            if i > 0 {
                acc += self.lower[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.upper[i] * x[i + 1];
            }
            y[i] = acc;
        }
        y
    }

    /// The transposed matrix (lower and upper swapped).
    pub fn transpose(&self) -> Tridiag {
        Tridiag { lower: self.upper.clone(), diag: self.diag.clone(), upper: self.lower.clone() }
    }

    /// Solve `M·x = rhs` by the Thomas algorithm (no pivoting; valid for
    /// the diagonally dominant matrices the implicit discretizations
    /// produce). `work` must hold `2n` scratch values.
    pub fn solve_into(&self, rhs: &[f64], x: &mut [f64], work: &mut [f64]) {
        let n = self.n();
        assert_eq!(rhs.len(), n);
        assert_eq!(x.len(), n);
        assert!(work.len() >= 2 * n, "Thomas scratch too small");
        let (cp, dp) = work.split_at_mut(n);
        // Forward sweep.
        let mut beta = self.diag[0];
        assert!(beta != 0.0, "zero pivot in Thomas solve");
        cp[0] = if n > 1 { self.upper[0] / beta } else { 0.0 };
        dp[0] = rhs[0] / beta;
        for i in 1..n {
            beta = self.diag[i] - self.lower[i - 1] * cp[i - 1];
            assert!(beta != 0.0, "zero pivot in Thomas solve at row {i}");
            cp[i] = if i + 1 < n { self.upper[i] / beta } else { 0.0 };
            dp[i] = (rhs[i] - self.lower[i - 1] * dp[i - 1]) / beta;
        }
        // Back substitution.
        x[n - 1] = dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = dp[i] - cp[i] * x[i + 1];
        }
    }

    /// Allocating convenience wrapper.
    pub fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        let n = self.n();
        let mut x = vec![0.0; n];
        let mut work = vec![0.0; 2 * n];
        self.solve_into(rhs, &mut x, &mut work);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::SplitMix64;

    fn random_dd_tridiag(n: usize, seed: u64) -> Tridiag {
        // Diagonally dominant ⇒ Thomas is stable without pivoting.
        let mut rng = SplitMix64::new(seed);
        let lower: Vec<f64> = (0..n - 1).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let upper: Vec<f64> = (0..n - 1).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let diag: Vec<f64> = (0..n).map(|_| 4.0 + rng.uniform(0.0, 1.0)).collect();
        Tridiag::new(lower, diag, upper)
    }

    #[test]
    fn solve_inverts_matvec() {
        for n in [1usize, 2, 3, 10, 97] {
            let m = random_dd_tridiag(n.max(1), n as u64);
            let mut rng = SplitMix64::new(100 + n as u64);
            let x: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let b = m.matvec(&x);
            let got = m.solve(&b);
            for (g, w) in got.iter().zip(&x) {
                assert!((g - w).abs() < 1e-11, "n={n}");
            }
        }
    }

    #[test]
    fn transpose_solve_is_adjoint() {
        // ⟨M⁻¹b, w⟩ == ⟨b, M⁻ᵀw⟩.
        let n = 17;
        let m = random_dd_tridiag(n, 5);
        let mut rng = SplitMix64::new(6);
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let w: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let x = m.solve(&b);
        let y = m.transpose().solve(&w);
        let lhs: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        let rhs: f64 = b.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-11 * lhs.abs().max(1.0));
    }

    #[test]
    fn identity_solves_trivially() {
        let m = Tridiag::new(vec![0.0; 3], vec![1.0; 4], vec![0.0; 3]);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.solve(&b), b);
    }

    #[test]
    #[should_panic(expected = "lower diagonal length")]
    fn bad_diagonal_lengths_rejected() {
        let _ = Tridiag::new(vec![0.0; 3], vec![1.0; 3], vec![0.0; 2]);
    }
}
