//! Small dense linear algebra for the data-space computations.
//!
//! The outer-loop problems assemble dense *data-space* matrices (size
//! `|S|·N_t`, small by construction since `N_d ≪ N_m`) and need Cholesky
//! factorizations and log-determinants for the expected-information-gain
//! objective.

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix (row-major `n × n`). Returns the lower factor, or `None` if a
/// pivot drops below `tol`.
pub fn cholesky(a: &[f64], n: usize, tol: f64) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    let mut l = vec![0.0; n * n];
    for j in 0..n {
        let mut diag = a[j * n + j];
        for k in 0..j {
            diag -= l[j * n + k] * l[j * n + k];
        }
        if diag <= tol {
            return None;
        }
        let dsqrt = diag.sqrt();
        l[j * n + j] = dsqrt;
        for i in j + 1..n {
            let mut v = a[i * n + j];
            for k in 0..j {
                v -= l[i * n + k] * l[j * n + k];
            }
            l[i * n + j] = v / dsqrt;
        }
    }
    Some(l)
}

/// `log det(A)` for SPD `A` via Cholesky.
pub fn logdet_spd(a: &[f64], n: usize) -> Option<f64> {
    let l = cholesky(a, n, 0.0)?;
    Some(2.0 * (0..n).map(|i| l[i * n + i].ln()).sum::<f64>())
}

/// Solve `A·x = b` for SPD `A` via Cholesky (forward + back substitution).
pub fn solve_spd(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    let l = cholesky(a, n, 0.0)?;
    // L·y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v -= l[i * n + k] * y[k];
        }
        y[i] = v / l[i * n + i];
    }
    // Lᵀ·x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in i + 1..n {
            v -= l[k * n + i] * x[k];
        }
        x[i] = v / l[i * n + i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::SplitMix64;

    fn random_spd(n: usize, seed: u64) -> Vec<f64> {
        // A = MᵀM + n·I.
        let mut rng = SplitMix64::new(seed);
        let m: Vec<f64> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    acc += m[k * n + i] * m[k * n + j];
                }
                a[i * n + j] = acc;
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let n = 9;
        let a = random_spd(n, 1);
        let l = cholesky(&a, n, 0.0).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    v += l[i * n + k] * l[j * n + k];
                }
                assert!((v - a[i * n + j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn logdet_of_diagonal() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = (i + 1) as f64;
        }
        let want = (1.0f64 * 2.0 * 3.0 * 4.0).ln();
        assert!((logdet_spd(&a, n).unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_matvec() {
        let n = 7;
        let a = random_spd(n, 3);
        let mut rng = SplitMix64::new(4);
        let x: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..n).map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum()).collect();
        let got = solve_spd(&a, &b, n).unwrap();
        for (g, w) in got.iter().zip(&x) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(cholesky(&a, 2, 0.0).is_none());
    }
}
