//! The linear-Gaussian Bayesian inverse problem (Section 2.2–2.3).
//!
//! With Gaussian prior `m ∼ N(m_pr, σ_pr²·I)` and noise
//! `ν ∼ N(0, σ_n²·I)`, the MAP point solves (Eq. 4)
//!
//! ```text
//! (F*·σ_n⁻²·F + σ_pr⁻²·I)·m_map = F*·σ_n⁻²·d_obs + σ_pr⁻²·m_pr
//! ```
//!
//! The Hessian `H = F*Γ_n⁻¹F + Γ_pr⁻¹` is applied matrix-free through
//! actions of **any** [`LinearOperator`] realization — the FFT pipeline,
//! the direct oracle, or the distributed matvec plug in interchangeably —
//! and the system is solved by conjugate gradients, the exact consumer
//! workload the paper accelerates. A matvec counter tracks how many
//! `F`/`F*` actions a solve consumed (Remark 1's motivation for making
//! each one faster). The CG hot loop applies through preallocated
//! buffers, so a solve performs no per-action allocations in the
//! operator.

use std::sync::atomic::{AtomicUsize, Ordering};

use fftmatvec_core::{FftMatvec, LinearOperator, OpError};
use fftmatvec_numeric::SplitMix64;

/// A linear-Gaussian inverse problem wrapping a p2o operator.
///
/// Generic over the operator realization; defaults to the FFT pipeline.
pub struct BayesianProblem<L: LinearOperator = FftMatvec> {
    matvec: L,
    /// Observation noise standard deviation σ_n.
    pub noise_std: f64,
    /// Prior standard deviation σ_pr.
    pub prior_std: f64,
    matvec_count: AtomicUsize,
}

/// Result of a MAP solve.
#[derive(Clone, Debug)]
pub struct MapSolution {
    /// The MAP point (length `nm·nt`).
    pub m_map: Vec<f64>,
    /// CG iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

impl<L: LinearOperator> BayesianProblem<L> {
    pub fn new(matvec: L, noise_std: f64, prior_std: f64) -> Self {
        assert!(noise_std > 0.0 && prior_std > 0.0);
        BayesianProblem { matvec, noise_std, prior_std, matvec_count: AtomicUsize::new(0) }
    }

    /// The wrapped operator.
    pub fn matvec(&self) -> &L {
        &self.matvec
    }

    /// Total `F`/`F*` actions performed so far.
    pub fn matvec_count(&self) -> usize {
        self.matvec_count.load(Ordering::Relaxed)
    }

    /// Apply `F`, counting the action.
    pub fn forward(&self, m: &[f64]) -> Result<Vec<f64>, OpError> {
        self.matvec_count.fetch_add(1, Ordering::Relaxed);
        self.matvec.apply_forward(m)
    }

    /// Apply `F*`, counting the action.
    pub fn adjoint(&self, d: &[f64]) -> Result<Vec<f64>, OpError> {
        self.matvec_count.fetch_add(1, Ordering::Relaxed);
        self.matvec.apply_adjoint(d)
    }

    /// Apply `F` into a caller buffer, counting the action (the CG hot
    /// path — no allocation in the operator).
    pub fn forward_into(&self, m: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        self.matvec_count.fetch_add(1, Ordering::Relaxed);
        self.matvec.apply_forward_into(m, out)
    }

    /// Apply `F*` into a caller buffer, counting the action.
    pub fn adjoint_into(&self, d: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        self.matvec_count.fetch_add(1, Ordering::Relaxed);
        self.matvec.apply_adjoint_into(d, out)
    }

    /// The Hessian action `H·v = F*·σ_n⁻²·F·v + σ_pr⁻²·v`.
    pub fn hessian_action(&self, v: &[f64]) -> Result<Vec<f64>, OpError> {
        let mut h = vec![0.0; self.matvec.shape().cols];
        let mut fv = vec![0.0; self.matvec.shape().rows];
        self.hessian_action_into(v, &mut h, &mut fv)?;
        Ok(h)
    }

    /// [`BayesianProblem::hessian_action`] through caller buffers:
    /// `scratch` holds the intermediate `F·v` (length `shape().rows`).
    pub fn hessian_action_into(
        &self,
        v: &[f64],
        h: &mut [f64],
        scratch: &mut [f64],
    ) -> Result<(), OpError> {
        self.forward_into(v, scratch)?;
        self.adjoint_into(scratch, h)?;
        let wn = self.noise_std.powi(-2);
        let wp = self.prior_std.powi(-2);
        for (hi, &vi) in h.iter_mut().zip(v) {
            *hi = wn * *hi + wp * vi;
        }
        Ok(())
    }

    /// Synthesize observations `d = F·m_true + ν` with seeded noise.
    pub fn synthesize_data(&self, m_true: &[f64], seed: u64) -> Result<Vec<f64>, OpError> {
        let mut d = self.forward(m_true)?;
        let mut rng = SplitMix64::new(seed);
        for x in d.iter_mut() {
            *x += self.noise_std * rng.normal();
        }
        Ok(d)
    }

    /// Solve for the MAP point by CG on the Hessian system (zero prior
    /// mean). Stops at relative residual `tol` or `max_iter`.
    pub fn solve_map(
        &self,
        d_obs: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<MapSolution, OpError> {
        let wn = self.noise_std.powi(-2);
        let mut rhs = self.adjoint(d_obs)?;
        for x in rhs.iter_mut() {
            *x *= wn;
        }
        let n = rhs.len();
        let rhs_norm = rhs.iter().map(|x| x * x).sum::<f64>().sqrt();
        if rhs_norm == 0.0 {
            return Ok(MapSolution { m_map: vec![0.0; n], iterations: 0, residual: 0.0 });
        }

        let mut x = vec![0.0; n];
        let mut r = rhs.clone();
        let mut p = r.clone();
        let mut hp = vec![0.0; n];
        let mut scratch = vec![0.0; self.matvec.shape().rows];
        let mut rr: f64 = r.iter().map(|v| v * v).sum();
        let mut iterations = 0;
        for _ in 0..max_iter {
            self.hessian_action_into(&p, &mut hp, &mut scratch)?;
            let php: f64 = p.iter().zip(&hp).map(|(a, b)| a * b).sum();
            let alpha = rr / php;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * hp[i];
            }
            iterations += 1;
            let rr_new: f64 = r.iter().map(|v| v * v).sum();
            if rr_new.sqrt() <= tol * rhs_norm {
                rr = rr_new;
                break;
            }
            let beta = rr_new / rr;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rr = rr_new;
        }
        Ok(MapSolution { m_map: x, iterations, residual: rr.sqrt() / rhs_norm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p2o::P2oMap;
    use crate::system::HeatEquation1D;
    use fftmatvec_core::{DirectMatvec, PrecisionConfig};

    fn problem(noise: f64, prior: f64) -> BayesianProblem {
        let sys = HeatEquation1D::new(20, 0.02, 0.3);
        let p2o = P2oMap::assemble(&sys, &[4, 10, 16], 12).unwrap();
        let mv = FftMatvec::builder(p2o.operator)
            .precision(PrecisionConfig::all_double())
            .build()
            .unwrap();
        BayesianProblem::new(mv, noise, prior)
    }

    #[test]
    fn hessian_is_symmetric_positive_definite() {
        let prob = problem(0.1, 1.0);
        let n = 20 * 12;
        let mut rng = SplitMix64::new(1);
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        rng.fill_uniform(&mut u, -1.0, 1.0);
        rng.fill_uniform(&mut v, -1.0, 1.0);
        let hu = prob.hessian_action(&u).unwrap();
        let hv = prob.hessian_action(&v).unwrap();
        let uhv: f64 = u.iter().zip(&hv).map(|(a, b)| a * b).sum();
        let vhu: f64 = v.iter().zip(&hu).map(|(a, b)| a * b).sum();
        assert!((uhv - vhu).abs() < 1e-9 * uhv.abs().max(1.0), "symmetry");
        let uhu: f64 = u.iter().zip(&hu).map(|(a, b)| a * b).sum();
        assert!(uhu > 0.0, "positive definiteness");
    }

    #[test]
    fn map_solve_converges_and_fits_data() {
        let prob = problem(1e-3, 10.0);
        let n = 20 * 12;
        // Smooth truth: a bump mid-domain, constant in time.
        let mut m_true = vec![0.0; n];
        for t in 0..12 {
            for i in 0..20 {
                let x = (i as f64 + 1.0) / 21.0;
                m_true[t * 20 + i] = (-(x - 0.5) * (x - 0.5) / 0.02).exp();
            }
        }
        let d_obs = prob.synthesize_data(&m_true, 7).unwrap();
        let sol = prob.solve_map(&d_obs, 1e-8, 400).unwrap();
        assert!(sol.residual < 1e-8, "CG residual {}", sol.residual);
        // The MAP point must explain the data much better than the prior
        // mean (zero).
        let fit = prob.forward(&sol.m_map).unwrap();
        let misfit: f64 = fit.iter().zip(&d_obs).map(|(a, b)| (a - b) * (a - b)).sum();
        let null_misfit: f64 = d_obs.iter().map(|b| b * b).sum();
        assert!(misfit < 0.05 * null_misfit, "misfit {misfit} vs {null_misfit}");
    }

    #[test]
    fn any_linear_operator_realization_plugs_in() {
        // The same inverse problem through the direct (O(Nt²)) realization
        // must give the same MAP point — operators are interchangeable
        // behind the trait.
        let sys = HeatEquation1D::new(12, 0.02, 0.3);
        let p2o = P2oMap::assemble(&sys, &[3, 8], 8).unwrap();
        let mut m_true = vec![0.0; 12 * 8];
        for (i, x) in m_true.iter_mut().enumerate() {
            *x = ((i % 12) as f64 / 12.0 - 0.5).powi(2);
        }

        let fft_prob = BayesianProblem::new(
            FftMatvec::builder(P2oMap::assemble(&sys, &[3, 8], 8).unwrap().operator)
                .build()
                .unwrap(),
            1e-2,
            2.0,
        );
        let d_obs = fft_prob.synthesize_data(&m_true, 3).unwrap();
        let sol_fft = fft_prob.solve_map(&d_obs, 1e-9, 300).unwrap();

        let direct_prob = BayesianProblem::new(DirectMatvec::new(&p2o.operator), 1e-2, 2.0);
        let sol_direct = direct_prob.solve_map(&d_obs, 1e-9, 300).unwrap();

        let diff: f64 = sol_fft
            .m_map
            .iter()
            .zip(&sol_direct.m_map)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(diff < 1e-7, "realizations diverged: {diff}");
    }

    #[test]
    fn huge_noise_shrinks_map_to_prior_mean() {
        let prob = problem(1e6, 1.0);
        let d_obs = vec![1.0; 3 * 12];
        let sol = prob.solve_map(&d_obs, 1e-10, 200).unwrap();
        let norm: f64 = sol.m_map.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm < 1e-4, "MAP should collapse to zero, norm {norm}");
    }

    #[test]
    fn matvec_counter_tracks_work() {
        let prob = problem(0.1, 1.0);
        assert_eq!(prob.matvec_count(), 0);
        let d_obs = vec![0.5; 3 * 12];
        let sol = prob.solve_map(&d_obs, 1e-6, 50).unwrap();
        // rhs adjoint + 2 per CG iteration.
        assert_eq!(prob.matvec_count(), 1 + 2 * sol.iterations);
    }

    #[test]
    fn zero_data_gives_zero_map() {
        let prob = problem(0.1, 1.0);
        let sol = prob.solve_map(&vec![0.0; 3 * 12], 1e-10, 100).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.m_map.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let prob = problem(0.1, 1.0);
        assert!(prob.solve_map(&[1.0; 5], 1e-6, 10).is_err());
        assert!(prob.forward(&[0.0; 3]).is_err());
    }
}
