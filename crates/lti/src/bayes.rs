//! The linear-Gaussian Bayesian inverse problem (Section 2.2–2.3).
//!
//! With Gaussian prior `m ∼ N(m_pr, σ_pr²·I)` and noise
//! `ν ∼ N(0, σ_n²·I)`, the MAP point solves (Eq. 4)
//!
//! ```text
//! (F*·σ_n⁻²·F + σ_pr⁻²·I)·m_map = F*·σ_n⁻²·d_obs + σ_pr⁻²·m_pr
//! ```
//!
//! The Hessian `H = F*Γ_n⁻¹F + Γ_pr⁻¹` is applied matrix-free through
//! FFTMatvec actions and the system is solved by conjugate gradients —
//! the exact consumer workload the paper accelerates. A matvec counter
//! tracks how many `F`/`F*` actions a solve consumed (Remark 1's
//! motivation for making each one faster).

use std::sync::atomic::{AtomicUsize, Ordering};

use fftmatvec_core::FftMatvec;
use fftmatvec_numeric::SplitMix64;

/// A linear-Gaussian inverse problem wrapping an FFTMatvec p2o map.
pub struct BayesianProblem {
    matvec: FftMatvec,
    /// Observation noise standard deviation σ_n.
    pub noise_std: f64,
    /// Prior standard deviation σ_pr.
    pub prior_std: f64,
    matvec_count: AtomicUsize,
}

/// Result of a MAP solve.
#[derive(Clone, Debug)]
pub struct MapSolution {
    /// The MAP point (length `nm·nt`).
    pub m_map: Vec<f64>,
    /// CG iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

impl BayesianProblem {
    pub fn new(matvec: FftMatvec, noise_std: f64, prior_std: f64) -> Self {
        assert!(noise_std > 0.0 && prior_std > 0.0);
        BayesianProblem { matvec, noise_std, prior_std, matvec_count: AtomicUsize::new(0) }
    }

    /// The wrapped matvec.
    pub fn matvec(&self) -> &FftMatvec {
        &self.matvec
    }

    /// Total `F`/`F*` actions performed so far.
    pub fn matvec_count(&self) -> usize {
        self.matvec_count.load(Ordering::Relaxed)
    }

    /// Apply `F`, counting the action.
    pub fn forward(&self, m: &[f64]) -> Vec<f64> {
        self.matvec_count.fetch_add(1, Ordering::Relaxed);
        self.matvec.apply_forward(m)
    }

    /// Apply `F*`, counting the action.
    pub fn adjoint(&self, d: &[f64]) -> Vec<f64> {
        self.matvec_count.fetch_add(1, Ordering::Relaxed);
        self.matvec.apply_adjoint(d)
    }

    /// The Hessian action `H·v = F*·σ_n⁻²·F·v + σ_pr⁻²·v`.
    pub fn hessian_action(&self, v: &[f64]) -> Vec<f64> {
        let fv = self.forward(v);
        let mut h = self.adjoint(&fv);
        let wn = self.noise_std.powi(-2);
        let wp = self.prior_std.powi(-2);
        for (hi, &vi) in h.iter_mut().zip(v) {
            *hi = wn * *hi + wp * vi;
        }
        h
    }

    /// Synthesize observations `d = F·m_true + ν` with seeded noise.
    pub fn synthesize_data(&self, m_true: &[f64], seed: u64) -> Vec<f64> {
        let mut d = self.forward(m_true);
        let mut rng = SplitMix64::new(seed);
        for x in d.iter_mut() {
            *x += self.noise_std * rng.normal();
        }
        d
    }

    /// Solve for the MAP point by CG on the Hessian system (zero prior
    /// mean). Stops at relative residual `tol` or `max_iter`.
    pub fn solve_map(&self, d_obs: &[f64], tol: f64, max_iter: usize) -> MapSolution {
        let wn = self.noise_std.powi(-2);
        let mut rhs = self.adjoint(d_obs);
        for x in rhs.iter_mut() {
            *x *= wn;
        }
        let n = rhs.len();
        let rhs_norm = rhs.iter().map(|x| x * x).sum::<f64>().sqrt();
        if rhs_norm == 0.0 {
            return MapSolution { m_map: vec![0.0; n], iterations: 0, residual: 0.0 };
        }

        let mut x = vec![0.0; n];
        let mut r = rhs.clone();
        let mut p = r.clone();
        let mut rr: f64 = r.iter().map(|v| v * v).sum();
        let mut iterations = 0;
        for _ in 0..max_iter {
            let hp = self.hessian_action(&p);
            let php: f64 = p.iter().zip(&hp).map(|(a, b)| a * b).sum();
            let alpha = rr / php;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * hp[i];
            }
            iterations += 1;
            let rr_new: f64 = r.iter().map(|v| v * v).sum();
            if rr_new.sqrt() <= tol * rhs_norm {
                rr = rr_new;
                break;
            }
            let beta = rr_new / rr;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rr = rr_new;
        }
        MapSolution { m_map: x, iterations, residual: rr.sqrt() / rhs_norm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p2o::P2oMap;
    use crate::system::HeatEquation1D;
    use fftmatvec_core::PrecisionConfig;

    fn problem(noise: f64, prior: f64) -> BayesianProblem {
        let sys = HeatEquation1D::new(20, 0.02, 0.3);
        let p2o = P2oMap::assemble(&sys, &[4, 10, 16], 12).unwrap();
        let mv = FftMatvec::new(p2o.operator, PrecisionConfig::all_double());
        BayesianProblem::new(mv, noise, prior)
    }

    #[test]
    fn hessian_is_symmetric_positive_definite() {
        let prob = problem(0.1, 1.0);
        let n = 20 * 12;
        let mut rng = SplitMix64::new(1);
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        rng.fill_uniform(&mut u, -1.0, 1.0);
        rng.fill_uniform(&mut v, -1.0, 1.0);
        let hu = prob.hessian_action(&u);
        let hv = prob.hessian_action(&v);
        let uhv: f64 = u.iter().zip(&hv).map(|(a, b)| a * b).sum();
        let vhu: f64 = v.iter().zip(&hu).map(|(a, b)| a * b).sum();
        assert!((uhv - vhu).abs() < 1e-9 * uhv.abs().max(1.0), "symmetry");
        let uhu: f64 = u.iter().zip(&hu).map(|(a, b)| a * b).sum();
        assert!(uhu > 0.0, "positive definiteness");
    }

    #[test]
    fn map_solve_converges_and_fits_data() {
        let prob = problem(1e-3, 10.0);
        let n = 20 * 12;
        // Smooth truth: a bump mid-domain, constant in time.
        let mut m_true = vec![0.0; n];
        for t in 0..12 {
            for i in 0..20 {
                let x = (i as f64 + 1.0) / 21.0;
                m_true[t * 20 + i] = (-(x - 0.5) * (x - 0.5) / 0.02).exp();
            }
        }
        let d_obs = prob.synthesize_data(&m_true, 7);
        let sol = prob.solve_map(&d_obs, 1e-8, 400);
        assert!(sol.residual < 1e-8, "CG residual {}", sol.residual);
        // The MAP point must explain the data much better than the prior
        // mean (zero).
        let fit = prob.forward(&sol.m_map);
        let misfit: f64 = fit.iter().zip(&d_obs).map(|(a, b)| (a - b) * (a - b)).sum();
        let null_misfit: f64 = d_obs.iter().map(|b| b * b).sum();
        assert!(misfit < 0.05 * null_misfit, "misfit {misfit} vs {null_misfit}");
    }

    #[test]
    fn huge_noise_shrinks_map_to_prior_mean() {
        let prob = problem(1e6, 1.0);
        let d_obs = vec![1.0; 3 * 12];
        let sol = prob.solve_map(&d_obs, 1e-10, 200);
        let norm: f64 = sol.m_map.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm < 1e-4, "MAP should collapse to zero, norm {norm}");
    }

    #[test]
    fn matvec_counter_tracks_work() {
        let prob = problem(0.1, 1.0);
        assert_eq!(prob.matvec_count(), 0);
        let d_obs = vec![0.5; 3 * 12];
        let sol = prob.solve_map(&d_obs, 1e-6, 50);
        // rhs adjoint + 2 per CG iteration.
        assert_eq!(prob.matvec_count(), 1 + 2 * sol.iterations);
    }

    #[test]
    fn zero_data_gives_zero_map() {
        let prob = problem(0.1, 1.0);
        let sol = prob.solve_map(&vec![0.0; 3 * 12], 1e-10, 100);
        assert_eq!(sol.iterations, 0);
        assert!(sol.m_map.iter().all(|&x| x == 0.0));
    }
}
