//! Linear time-invariant PDE systems (Section 2.1).
//!
//! `∂u/∂t = A·u + m` on a 1-D periodic-free domain with homogeneous
//! Dirichlet boundaries, observed through a sensor selection operator `B`.
//! Implicit Euler gives the one-step propagator `S = (I − Δt·A)⁻¹` applied
//! as `u^{k} = S·(u^{k−1} + Δt·m^{k})`; time-invariance of `S` is exactly
//! what makes the discrete p2o map block-Toeplitz.

use crate::tridiag::Tridiag;

/// A time-invariant linear system with a tridiagonal generator.
pub trait LtiSystem {
    /// Spatial dimension (number of grid points / parameters).
    fn nx(&self) -> usize;
    /// Timestep.
    fn dt(&self) -> f64;
    /// The implicit-Euler system matrix `I − Δt·A`.
    fn stepper(&self) -> &Tridiag;
    /// The transposed stepper (for adjoint recursions).
    fn stepper_t(&self) -> &Tridiag;

    /// March `nt` steps from `u0 = 0` with source blocks
    /// `m[(k−1)·nx ..][..nx]` (TOSI layout), recording the full state
    /// trajectory: returns `nt·nx` values, `u^k` at `[(k−1)·nx..]`.
    fn forward_trajectory(&self, m: &[f64], nt: usize) -> Vec<f64> {
        let nx = self.nx();
        assert_eq!(m.len(), nx * nt, "source trajectory length");
        let mut traj = vec![0.0; nx * nt];
        let mut u = vec![0.0; nx];
        let mut rhs = vec![0.0; nx];
        let mut work = vec![0.0; 2 * nx];
        for k in 0..nt {
            let mk = &m[k * nx..(k + 1) * nx];
            for i in 0..nx {
                rhs[i] = u[i] + self.dt() * mk[i];
            }
            self.stepper().solve_into(&rhs, &mut u, &mut work);
            traj[k * nx..(k + 1) * nx].copy_from_slice(&u);
        }
        traj
    }

    /// One adjoint step `w ← Sᵀ·w` (used by the p2o assembly).
    fn adjoint_step(&self, w: &mut Vec<f64>) {
        let out = self.stepper_t().solve(w);
        *w = out;
    }
}

/// 1-D heat equation `u_t = κ·u_xx + m` on `(0, 1)`, homogeneous
/// Dirichlet, uniform grid of `nx` interior points.
pub struct HeatEquation1D {
    nx: usize,
    dt: f64,
    kappa: f64,
    stepper: Tridiag,
    stepper_t: Tridiag,
}

impl HeatEquation1D {
    pub fn new(nx: usize, dt: f64, kappa: f64) -> Self {
        assert!(nx >= 2 && dt > 0.0 && kappa > 0.0);
        let h = 1.0 / (nx + 1) as f64;
        let r = kappa * dt / (h * h);
        // I − Δt·κ·L with L the standard 3-point Laplacian.
        let diag = vec![1.0 + 2.0 * r; nx];
        let off = vec![-r; nx - 1];
        let stepper = Tridiag::new(off.clone(), diag, off);
        let stepper_t = stepper.transpose();
        HeatEquation1D { nx, dt, kappa, stepper, stepper_t }
    }

    /// Diffusivity κ.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Grid spacing.
    pub fn h(&self) -> f64 {
        1.0 / (self.nx + 1) as f64
    }
}

impl LtiSystem for HeatEquation1D {
    fn nx(&self) -> usize {
        self.nx
    }
    fn dt(&self) -> f64 {
        self.dt
    }
    fn stepper(&self) -> &Tridiag {
        &self.stepper
    }
    fn stepper_t(&self) -> &Tridiag {
        &self.stepper_t
    }
}

/// 1-D advection–diffusion `u_t = κ·u_xx − v·u_x + m`, upwind advection
/// (for `v > 0`), homogeneous Dirichlet.
pub struct AdvectionDiffusion1D {
    nx: usize,
    dt: f64,
    stepper: Tridiag,
    stepper_t: Tridiag,
}

impl AdvectionDiffusion1D {
    pub fn new(nx: usize, dt: f64, kappa: f64, velocity: f64) -> Self {
        assert!(nx >= 2 && dt > 0.0 && kappa > 0.0 && velocity >= 0.0);
        let h = 1.0 / (nx + 1) as f64;
        let r = kappa * dt / (h * h);
        let c = velocity * dt / h;
        // Upwind: −v·u_x ≈ −v·(u_i − u_{i−1})/h.
        let diag = vec![1.0 + 2.0 * r + c; nx];
        let lower = vec![-r - c; nx - 1];
        let upper = vec![-r; nx - 1];
        let stepper = Tridiag::new(lower, diag, upper);
        let stepper_t = stepper.transpose();
        AdvectionDiffusion1D { nx, dt, stepper, stepper_t }
    }
}

impl LtiSystem for AdvectionDiffusion1D {
    fn nx(&self) -> usize {
        self.nx
    }
    fn dt(&self) -> f64 {
        self.dt
    }
    fn stepper(&self) -> &Tridiag {
        &self.stepper
    }
    fn stepper_t(&self) -> &Tridiag {
        &self.stepper_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::SplitMix64;

    #[test]
    fn heat_decays_without_forcing_after_impulse() {
        let sys = HeatEquation1D::new(32, 0.01, 0.1);
        let nt = 20;
        let mut m = vec![0.0; 32 * nt];
        m[16] = 1.0; // impulse at t=1, mid-domain
        let traj = sys.forward_trajectory(&m, nt);
        let energy = |k: usize| -> f64 { traj[k * 32..(k + 1) * 32].iter().map(|u| u * u).sum() };
        for k in 1..nt {
            assert!(energy(k) <= energy(k - 1) * (1.0 + 1e-12), "energy grew at {k}");
        }
        assert!(energy(nt - 1) < energy(0));
    }

    #[test]
    fn heat_smooths_and_stays_positive() {
        let sys = HeatEquation1D::new(16, 0.05, 0.2);
        let mut m = vec![0.0; 16 * 5];
        m[8] = 1.0;
        let traj = sys.forward_trajectory(&m, 5);
        // Implicit Euler heat: positivity preserved from a positive source.
        assert!(traj.iter().all(|&u| u >= -1e-14));
        // Mass spreads: more than one point nonzero at the final step.
        let last = &traj[16 * 4..];
        let nonzero = last.iter().filter(|&&u| u > 1e-10).count();
        assert!(nonzero > 3);
    }

    #[test]
    fn advection_pushes_mass_downstream() {
        let sys = AdvectionDiffusion1D::new(40, 0.02, 1e-3, 1.0);
        let nt = 15;
        let mut m = vec![0.0; 40 * nt];
        m[10] = 1.0; // impulse at x-index 10, t=1
        let traj = sys.forward_trajectory(&m, nt);
        let centroid = |k: usize| -> f64 {
            let u = &traj[k * 40..(k + 1) * 40];
            let mass: f64 = u.iter().sum();
            u.iter().enumerate().map(|(i, v)| i as f64 * v).sum::<f64>() / mass.max(1e-30)
        };
        assert!(centroid(nt - 1) > centroid(0) + 2.0, "centroid should advect right");
    }

    #[test]
    fn forward_is_linear() {
        let sys = HeatEquation1D::new(12, 0.02, 0.3);
        let nt = 8;
        let mut rng = SplitMix64::new(1);
        let mut m1 = vec![0.0; 12 * nt];
        let mut m2 = vec![0.0; 12 * nt];
        rng.fill_uniform(&mut m1, -1.0, 1.0);
        rng.fill_uniform(&mut m2, -1.0, 1.0);
        let sum: Vec<f64> = m1.iter().zip(&m2).map(|(a, b)| 2.0 * a + b).collect();
        let t1 = sys.forward_trajectory(&m1, nt);
        let t2 = sys.forward_trajectory(&m2, nt);
        let ts = sys.forward_trajectory(&sum, nt);
        for i in 0..ts.len() {
            assert!((ts[i] - (2.0 * t1[i] + t2[i])).abs() < 1e-11);
        }
    }

    #[test]
    fn adjoint_step_is_transpose_of_forward_step() {
        let sys = HeatEquation1D::new(10, 0.01, 0.5);
        let mut rng = SplitMix64::new(2);
        let a: Vec<f64> = (0..10).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..10).map(|_| rng.uniform(-1.0, 1.0)).collect();
        // ⟨S a, b⟩ == ⟨a, Sᵀ b⟩.
        let sa = sys.stepper().solve(&a);
        let mut stb = b.clone();
        sys.adjoint_step(&mut stb);
        let lhs: f64 = sa.iter().zip(&b).map(|(x, y)| x * y).sum();
        let rhs: f64 = a.iter().zip(&stb).map(|(x, y)| x * y).sum();
        assert!((lhs - rhs).abs() < 1e-12 * lhs.abs().max(1.0));
    }
}
