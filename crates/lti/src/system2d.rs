//! 2-D heat equation by ADI (alternating-direction implicit) splitting.
//!
//! The paper's application problems are PDEs on 2-D/3-D domains (tsunami
//! source inversion over a seafloor region); this module provides a 2-D
//! LTI system whose p2o maps exercise FFTMatvec with realistic spatial
//! parameter counts (`N_m = nx·ny`). Each implicit-Euler step splits into
//! an x-sweep and a y-sweep of tridiagonal solves (Douglas–Rachford ADI):
//!
//! ```text
//! (I − Δt·κ·Lx)·u* = u + Δt·m ;  (I − Δt·κ·Ly)·u⁺ = u*
//! ```
//!
//! The stepper stays time-invariant, so the p2o map is still block
//! lower-triangular Toeplitz; the adjoint is the reversed-order transpose
//! sweep (tested via the inner-product identity).

use crate::system::LtiSystem;
use crate::tridiag::Tridiag;

/// Heat equation on the unit square, `nx × ny` interior points,
/// homogeneous Dirichlet boundaries.
pub struct HeatEquation2D {
    nx: usize,
    ny: usize,
    dt: f64,
    /// x-direction sweep matrix `I − Δt·κ·Lx` (size nx).
    step_x: Tridiag,
    /// y-direction sweep matrix (size ny).
    step_y: Tridiag,
    step_x_t: Tridiag,
    step_y_t: Tridiag,
}

impl HeatEquation2D {
    pub fn new(nx: usize, ny: usize, dt: f64, kappa: f64) -> Self {
        assert!(nx >= 2 && ny >= 2 && dt > 0.0 && kappa > 0.0);
        let mk = |n: usize| -> Tridiag {
            let h = 1.0 / (n + 1) as f64;
            let r = kappa * dt / (h * h);
            Tridiag::new(vec![-r; n - 1], vec![1.0 + 2.0 * r; n], vec![-r; n - 1])
        };
        let step_x = mk(nx);
        let step_y = mk(ny);
        let step_x_t = step_x.transpose();
        let step_y_t = step_y.transpose();
        HeatEquation2D { nx, ny, dt, step_x, step_y, step_x_t, step_y_t }
    }

    /// Grid index of point `(ix, iy)` in the flattened state (row-major
    /// in y: `iy·nx + ix`).
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// One forward ADI step applied in place: x-sweep rows, then y-sweep
    /// columns.
    fn adi_step(&self, u: &mut [f64]) {
        let (nx, ny) = (self.nx, self.ny);
        let mut work = vec![0.0; 2 * nx.max(ny)];
        let mut line = vec![0.0; nx.max(ny)];
        // x sweep: each grid row is a contiguous slice.
        for iy in 0..ny {
            let row = &mut u[iy * nx..(iy + 1) * nx];
            line[..nx].copy_from_slice(row);
            self.step_x.solve_into(&line[..nx], row, &mut work);
        }
        // y sweep: strided columns.
        let mut col = vec![0.0; ny];
        for ix in 0..nx {
            for iy in 0..ny {
                col[iy] = u[iy * nx + ix];
            }
            self.step_y.solve_into(&col, &mut line[..ny], &mut work);
            for iy in 0..ny {
                u[iy * nx + ix] = line[iy];
            }
        }
    }

    /// One adjoint ADI step: the transpose of [`Self::adi_step`] —
    /// transposed y-sweep first, then transposed x-sweep.
    fn adi_step_t(&self, w: &mut [f64]) {
        let (nx, ny) = (self.nx, self.ny);
        let mut work = vec![0.0; 2 * nx.max(ny)];
        let mut line = vec![0.0; nx.max(ny)];
        let mut col = vec![0.0; ny];
        for ix in 0..nx {
            for iy in 0..ny {
                col[iy] = w[iy * nx + ix];
            }
            self.step_y_t.solve_into(&col, &mut line[..ny], &mut work);
            for iy in 0..ny {
                w[iy * nx + ix] = line[iy];
            }
        }
        for iy in 0..ny {
            let row = &mut w[iy * nx..(iy + 1) * nx];
            line[..nx].copy_from_slice(row);
            self.step_x_t.solve_into(&line[..nx], row, &mut work);
        }
    }
}

impl LtiSystem for HeatEquation2D {
    fn nx(&self) -> usize {
        self.nx * self.ny
    }
    fn dt(&self) -> f64 {
        self.dt
    }
    // The 1-D trait exposes the stepper matrices for diagnostics; for the
    // ADI system the x-sweep factor stands in (the composition is applied
    // through the overridden trajectory/adjoint methods below).
    fn stepper(&self) -> &Tridiag {
        &self.step_x
    }
    fn stepper_t(&self) -> &Tridiag {
        &self.step_x_t
    }

    fn forward_trajectory(&self, m: &[f64], nt: usize) -> Vec<f64> {
        let n = self.nx();
        assert_eq!(m.len(), n * nt, "source trajectory length");
        let mut traj = vec![0.0; n * nt];
        let mut u = vec![0.0; n];
        for k in 0..nt {
            for (ui, &mi) in u.iter_mut().zip(&m[k * n..(k + 1) * n]) {
                *ui += self.dt * mi;
            }
            self.adi_step(&mut u);
            traj[k * n..(k + 1) * n].copy_from_slice(&u);
        }
        traj
    }

    fn adjoint_step(&self, w: &mut Vec<f64>) {
        self.adi_step_t(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p2o::P2oMap;
    use fftmatvec_core::{FftMatvec, LinearOperator};
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    #[test]
    fn heat2d_diffuses_and_decays() {
        let sys = HeatEquation2D::new(12, 10, 0.01, 0.1);
        let nt = 12;
        let n = sys.nx();
        let mut m = vec![0.0; n * nt];
        m[sys.index(6, 5)] = 1.0; // impulse at t=1, centre
        let traj = sys.forward_trajectory(&m, nt);
        let energy = |k: usize| -> f64 { traj[k * n..(k + 1) * n].iter().map(|u| u * u).sum() };
        for k in 1..nt {
            assert!(energy(k) <= energy(k - 1) * (1.0 + 1e-12));
        }
        // Mass spreads in both directions.
        let last = &traj[(nt - 1) * n..];
        assert!(last[sys.index(3, 5)] > 0.0);
        assert!(last[sys.index(6, 2)] > 0.0);
    }

    #[test]
    fn adi_step_adjoint_identity() {
        let sys = HeatEquation2D::new(7, 9, 0.02, 0.3);
        let n = sys.nx();
        let mut rng = SplitMix64::new(1);
        let a: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut sa = a.clone();
        sys.adi_step(&mut sa);
        let mut stb = b.clone();
        sys.adi_step_t(&mut stb);
        let lhs: f64 = sa.iter().zip(&b).map(|(x, y)| x * y).sum();
        let rhs: f64 = a.iter().zip(&stb).map(|(x, y)| x * y).sum();
        assert!((lhs - rhs).abs() < 1e-12 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn p2o_2d_matches_brute_force_pde() {
        let sys = HeatEquation2D::new(8, 6, 0.02, 0.25);
        let nt = 8;
        let n = sys.nx();
        let sensors = [sys.index(2, 2), sys.index(6, 3), sys.index(4, 5)];
        let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let mut rng = SplitMix64::new(2);
        let mut m = vec![0.0; n * nt];
        rng.fill_uniform(&mut m, -1.0, 1.0);

        let traj = sys.forward_trajectory(&m, nt);
        let mut want = vec![0.0; sensors.len() * nt];
        for k in 0..nt {
            for (i, &s) in sensors.iter().enumerate() {
                want[k * sensors.len() + i] = traj[k * n + s];
            }
        }
        let mv = FftMatvec::builder(p2o.operator).build().unwrap();
        let got = mv.apply_forward(&m).unwrap();
        assert!(rel_l2_error(&got, &want) < 1e-11);
    }

    #[test]
    fn anisotropic_grid_shapes_work() {
        // nx != ny exercises the strided y-sweep indexing.
        for (nx, ny) in [(2usize, 9usize), (9, 2), (5, 5)] {
            let sys = HeatEquation2D::new(nx, ny, 0.05, 0.2);
            let n = sys.nx();
            let m = vec![1.0; n * 3];
            let traj = sys.forward_trajectory(&m, 3);
            assert_eq!(traj.len(), 3 * n);
            assert!(traj.iter().all(|u| u.is_finite() && *u >= 0.0));
        }
    }
}
