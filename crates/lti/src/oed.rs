//! Optimal sensor placement — the paper's "outer-loop" problem (Remark 1).
//!
//! For the linear-Gaussian problem the expected information gain
//! (KL divergence between posterior and prior) of a sensor set `S` has the
//! closed form
//!
//! ```text
//! EIG(S) = ½·log det(I + (σ_pr²/σ_n²)·F_S·F_Sᵀ)
//! ```
//!
//! where `F_S` is the p2o map restricted to `S`. Assembling the dense
//! data-space Gram `F_S·F_Sᵀ` takes `|S|·N_t` forward *and* adjoint
//! FFTMatvec actions — the `O(N_d·N_t)` matvec workload the paper cites
//! as the reason mixed-precision speedups matter. The greedy algorithm
//! (one of the strategies referenced in Remark 1) adds the sensor with
//! the largest marginal gain until the budget is exhausted.

use fftmatvec_core::{FftMatvec, LinearOperator, PrecisionConfig};

use crate::linalg::logdet_spd;
use crate::p2o::P2oMap;
use crate::system::LtiSystem;

/// A candidate sensor location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SensorCandidate {
    /// Grid index of the candidate.
    pub index: usize,
}

/// Outcome of a greedy placement run.
#[derive(Clone, Debug)]
pub struct PlacementResult {
    /// Chosen sensor grid indices, in pick order.
    pub chosen: Vec<usize>,
    /// EIG after each pick (monotone non-decreasing).
    pub gains: Vec<f64>,
    /// Total FFTMatvec actions consumed — the Remark-1 cost driver.
    pub matvecs: usize,
}

/// Expected information gain of **any** data-space operator realization,
/// plus the number of matvec actions spent computing it.
///
/// Assembles the data-space Gram `G = F·F*` column by column through the
/// flat strided [`LinearOperator::apply_many_into`] batch paths — one
/// batched adjoint sweep (`F*·e_j` for every data basis vector `e_j`)
/// followed by one batched forward sweep, with no `Vec<Vec<f64>>` staging
/// and one engine/workspace checkout per sweep. `2·rows` matvec actions
/// total — the `O(N_d·N_t)` workload the paper cites as the reason
/// mixed-precision speedups matter (Remark 1, §4.2.2).
pub fn data_space_eig(
    opr: &dyn LinearOperator,
    noise_std: f64,
    prior_std: f64,
) -> Result<(f64, usize), String> {
    let n = opr.shape().rows;
    let cols_len = opr.shape().cols;
    // Flat identity: basis[j·n + j] = 1.
    let mut basis = vec![0.0; n * n];
    for j in 0..n {
        basis[j * n + j] = 1.0;
    }
    let mut ws = vec![0.0; n * cols_len];
    opr.apply_adjoint_many_into(&basis, &mut ws)?;
    let mut cols = basis; // reuse the identity buffer for the outputs
    opr.apply_forward_many_into(&ws, &mut cols)?;
    let matvecs = 2 * n;
    // Transpose the column-per-item layout into the Gram matrix.
    let mut gram = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            gram[i * n + j] = cols[j * n + i];
        }
    }
    // EIG = ½·log det(I + (σ_pr/σ_n)²·G).
    let scale = (prior_std / noise_std).powi(2);
    let mut a = gram;
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] *= scale;
        }
        a[i * n + i] += 1.0;
    }
    let ld = logdet_spd(&a, n).ok_or("information matrix not SPD")?;
    Ok((0.5 * ld, matvecs))
}

/// Expected information gain of a fixed sensor set, plus the number of
/// matvec actions spent computing it. Assembles the p2o map and runs
/// [`data_space_eig`] over the FFT realization.
pub fn expected_information_gain<S: LtiSystem>(
    sys: &S,
    sensors: &[usize],
    nt: usize,
    noise_std: f64,
    prior_std: f64,
    cfg: PrecisionConfig,
) -> Result<(f64, usize), String> {
    let p2o = P2oMap::assemble(sys, sensors, nt)?;
    let mv = FftMatvec::builder(p2o.operator).precision(cfg).build()?;
    data_space_eig(&mv, noise_std, prior_std)
}

/// Greedy sensor placement: pick `budget` sensors from `candidates`
/// maximizing the marginal EIG at each step.
pub fn greedy_sensor_placement<S: LtiSystem>(
    sys: &S,
    candidates: &[SensorCandidate],
    budget: usize,
    nt: usize,
    noise_std: f64,
    prior_std: f64,
    cfg: PrecisionConfig,
) -> Result<PlacementResult, String> {
    if budget == 0 || budget > candidates.len() {
        return Err(format!("budget {budget} out of range for {} candidates", candidates.len()));
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(budget);
    let mut gains = Vec::with_capacity(budget);
    let mut remaining: Vec<usize> = candidates.iter().map(|c| c.index).collect();
    let mut total_matvecs = 0;

    for _ in 0..budget {
        let mut best: Option<(usize, f64)> = None;
        for (pos, &cand) in remaining.iter().enumerate() {
            let mut trial = chosen.clone();
            trial.push(cand);
            trial.sort_unstable();
            let (gain, used) =
                expected_information_gain(sys, &trial, nt, noise_std, prior_std, cfg)?;
            total_matvecs += used;
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((pos, gain));
            }
        }
        let (pos, gain) = best.expect("non-empty candidate set");
        chosen.push(remaining.swap_remove(pos));
        gains.push(gain);
    }
    Ok(PlacementResult { chosen, gains, matvecs: total_matvecs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::HeatEquation1D;

    fn sys() -> HeatEquation1D {
        HeatEquation1D::new(16, 0.02, 0.3)
    }

    fn cands(ix: &[usize]) -> Vec<SensorCandidate> {
        ix.iter().map(|&index| SensorCandidate { index }).collect()
    }

    #[test]
    fn eig_is_positive_and_monotone_under_nesting() {
        let s = sys();
        let cfg = PrecisionConfig::all_double();
        let (g1, _) = expected_information_gain(&s, &[8], 6, 0.05, 1.0, cfg).unwrap();
        let (g2, _) = expected_information_gain(&s, &[4, 8], 6, 0.05, 1.0, cfg).unwrap();
        let (g3, _) = expected_information_gain(&s, &[4, 8, 12], 6, 0.05, 1.0, cfg).unwrap();
        assert!(g1 > 0.0);
        assert!(g2 >= g1, "adding a sensor cannot lose information");
        assert!(g3 >= g2);
    }

    #[test]
    fn data_space_eig_accepts_any_realization() {
        // The dyn entry point gives the same answer for the direct oracle
        // realization as for the FFT pipeline.
        let s = sys();
        let p2o = P2oMap::assemble(&s, &[4, 10], 6).unwrap();
        let direct = fftmatvec_core::DirectMatvec::new(&p2o.operator);
        let (g_direct, used) = data_space_eig(&direct, 0.05, 1.0).unwrap();
        let (g_fft, _) =
            expected_information_gain(&s, &[4, 10], 6, 0.05, 1.0, PrecisionConfig::all_double())
                .unwrap();
        assert!(
            (g_direct - g_fft).abs() < 1e-8 * g_fft.abs().max(1.0),
            "direct {g_direct} vs fft {g_fft}"
        );
        assert_eq!(used, 2 * 2 * 6);
    }

    #[test]
    fn eig_matvec_cost_is_2_nd_nt() {
        // The Remark-1 accounting: assembling the data-space operator
        // takes N_d·N_t forward + N_d·N_t adjoint actions.
        let s = sys();
        let (_, used) =
            expected_information_gain(&s, &[4, 10], 6, 0.05, 1.0, PrecisionConfig::all_double())
                .unwrap();
        assert_eq!(used, 2 * 2 * 6);
    }

    #[test]
    fn greedy_prefers_informative_center_sensor() {
        // Heat on (0,1): the mid-domain sensor sees the most signal from a
        // uniform prior, so greedy must take it first over near-boundary
        // candidates (Dirichlet walls kill signal there).
        let s = sys();
        let result = greedy_sensor_placement(
            &s,
            &cands(&[0, 7, 15]),
            2,
            6,
            0.05,
            1.0,
            PrecisionConfig::all_double(),
        )
        .unwrap();
        assert_eq!(result.chosen[0], 7, "greedy should pick the center first");
        assert_eq!(result.chosen.len(), 2);
        assert!(result.gains[1] >= result.gains[0]);
        assert!(result.matvecs > 0);
    }

    #[test]
    fn greedy_with_mixed_precision_matches_double_choice() {
        // The paper's pitch: run the outer loop in mixed precision and
        // get the same decisions faster. The greedy pick must be
        // unchanged under the optimal config.
        let s = sys();
        let c = cands(&[2, 8, 13]);
        let gold = greedy_sensor_placement(&s, &c, 2, 6, 0.05, 1.0, PrecisionConfig::all_double())
            .unwrap();
        let fast =
            greedy_sensor_placement(&s, &c, 2, 6, 0.05, 1.0, PrecisionConfig::optimal_forward())
                .unwrap();
        assert_eq!(gold.chosen, fast.chosen);
        for (a, b) in gold.gains.iter().zip(&fast.gains) {
            assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn budget_validation() {
        let s = sys();
        let c = cands(&[1, 2]);
        assert!(
            greedy_sensor_placement(&s, &c, 0, 4, 0.1, 1.0, PrecisionConfig::all_double()).is_err()
        );
        assert!(
            greedy_sensor_placement(&s, &c, 3, 4, 0.1, 1.0, PrecisionConfig::all_double()).is_err()
        );
    }
}
