//! # fftmatvec-lti — linear autonomous dynamical systems and Bayesian
//! inversion
//!
//! The application layer of the paper (Section 2): linear time-invariant
//! PDE systems whose parameter-to-observable (p2o) maps are block
//! lower-triangular Toeplitz, plus the Bayesian inverse problem machinery
//! that consumes FFTMatvec actions.
//!
//! * [`system`] — 1-D heat / advection–diffusion equations discretized by
//!   finite differences with implicit Euler; forward and (discrete)
//!   adjoint solves.
//! * [`p2o`] — assembling the p2o map's first block column via `N_d`
//!   adjoint solves (Section 2.4) into a
//!   [`fftmatvec_core::BlockToeplitzOperator`].
//! * [`bayes`] — Gaussian prior/noise, Hessian actions through FFTMatvec,
//!   conjugate-gradient MAP estimation (Eq. 4).
//! * [`oed`] — optimal sensor placement by greedy expected-information-
//!   gain maximization: the "outer-loop" workload of Remark 1 that
//!   requires `O(N_d·N_t)` matvec actions per candidate configuration and
//!   motivates the mixed-precision speedups.

pub mod bayes;
pub mod linalg;
pub mod oed;
pub mod p2o;
pub mod system;
pub mod system2d;
pub mod tridiag;
pub mod uq;

pub use bayes::BayesianProblem;
pub use oed::{greedy_sensor_placement, SensorCandidate};
pub use p2o::P2oMap;
pub use system::{AdvectionDiffusion1D, HeatEquation1D, LtiSystem};
pub use system2d::HeatEquation2D;
pub use uq::LowRankHessian;
