//! Posterior uncertainty quantification through low-rank Hessian
//! approximation — the second half of the Bayesian workflow (Section 2.2:
//! "uncertainty can be quantified through the posterior covariance").
//!
//! The prior-preconditioned data-misfit Hessian
//! `H̃ = (σ_pr²/σ_n²)·F*·F` has rapidly decaying spectrum for ill-posed
//! problems; with its dominant eigenpairs `(λ_i, v_i)`,
//!
//! ```text
//! Γ_post = σ_pr²·(I − Σ_i [λ_i/(1+λ_i)]·v_i v_iᵀ)
//! EIG    = ½·Σ_i log(1 + λ_i)
//! ```
//!
//! Eigenpairs come from randomized subspace iteration powered entirely by
//! FFTMatvec actions — this is the `O(N_d·N_t)`-matvec workload pattern
//! the paper's Remark 1 highlights, and its EIG cross-checks the direct
//! log-det computation in [`crate::oed`].

use fftmatvec_core::{LinearOperator, OpError};
use fftmatvec_numeric::SplitMix64;

use crate::bayes::BayesianProblem;

/// Dominant eigenpairs of the prior-preconditioned data-misfit Hessian.
#[derive(Clone, Debug)]
pub struct LowRankHessian {
    /// Eigenvalues, descending, length `rank`.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors, row-major `rank × n`.
    pub eigenvectors: Vec<f64>,
    /// Parameter-space dimension.
    pub n: usize,
    /// Matvec actions consumed.
    pub matvecs: usize,
}

impl LowRankHessian {
    /// Randomized subspace iteration: `rank` requested pairs,
    /// `oversample` extra probe vectors, `power_iters` stabilization
    /// passes. Works for any [`LinearOperator`] realization behind the
    /// problem.
    pub fn compute<L: LinearOperator>(
        prob: &BayesianProblem<L>,
        rank: usize,
        oversample: usize,
        power_iters: usize,
        seed: u64,
    ) -> Result<Self, OpError> {
        let n = prob.matvec().shape().cols;
        let k = (rank + oversample).min(n);
        let scale = (prob.prior_std / prob.noise_std).powi(2);
        let before = prob.matvec_count();

        // H̃·v = scale · F*(F v).
        let apply = |v: &[f64]| -> Result<Vec<f64>, OpError> {
            let mut h = prob.adjoint(&prob.forward(v)?)?;
            for x in h.iter_mut() {
                *x *= scale;
            }
            Ok(h)
        };

        // Random probe block.
        let mut rng = SplitMix64::new(seed);
        let mut basis: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                let mut v = vec![0.0; n];
                rng.fill_normal(&mut v);
                v
            })
            .collect();
        orthonormalize(&mut basis);

        // Subspace iteration: Y = H̃·Q, re-orthonormalize.
        for _ in 0..power_iters.max(1) {
            for b in basis.iter_mut() {
                *b = apply(b)?;
            }
            orthonormalize(&mut basis);
        }

        // Rayleigh–Ritz: T = Qᵀ·H̃·Q (k × k), then its eigenpairs via
        // Jacobi rotations (T is symmetric).
        let hq: Vec<Vec<f64>> = basis.iter().map(|b| apply(b)).collect::<Result<_, OpError>>()?;
        let mut t = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                t[i * k + j] = dot(&basis[i], &hq[j]);
            }
        }
        // Symmetrize against roundoff.
        for i in 0..k {
            for j in 0..i {
                let s = 0.5 * (t[i * k + j] + t[j * k + i]);
                t[i * k + j] = s;
                t[j * k + i] = s;
            }
        }
        let (mut evals, evecs) = jacobi_eigh(&t, k);

        // Sort descending, lift the top `rank` back to parameter space.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| evals[b].total_cmp(&evals[a]));
        let rank = rank.min(k);
        let mut eigenvectors = vec![0.0; rank * n];
        let mut eigenvalues = Vec::with_capacity(rank);
        for (r, &idx) in order.iter().take(rank).enumerate() {
            eigenvalues.push(evals[idx].max(0.0));
            for (c, b) in basis.iter().enumerate() {
                let w = evecs[c * k + idx];
                for (dst, &bv) in eigenvectors[r * n..(r + 1) * n].iter_mut().zip(b) {
                    *dst += w * bv;
                }
            }
        }
        evals.clear();

        Ok(LowRankHessian { eigenvalues, eigenvectors, n, matvecs: prob.matvec_count() - before })
    }

    /// Expected information gain `½·Σ log(1+λ_i)` from the retained pairs.
    pub fn expected_information_gain(&self) -> f64 {
        0.5 * self.eigenvalues.iter().map(|&l| (1.0 + l).ln()).sum::<f64>()
    }

    /// Pointwise posterior variance estimate
    /// `σ_pr²·(1 − Σ_i [λ_i/(1+λ_i)]·v_i[j]²)` at parameter index `j`.
    pub fn posterior_variance(&self, prior_std: f64, j: usize) -> f64 {
        assert!(j < self.n);
        let mut reduction = 0.0;
        for (r, &l) in self.eigenvalues.iter().enumerate() {
            let vj = self.eigenvectors[r * self.n + j];
            reduction += l / (1.0 + l) * vj * vj;
        }
        (prior_std * prior_std * (1.0 - reduction)).max(0.0)
    }

    /// Variance reduction factor over the whole domain: mean posterior /
    /// prior variance (1 = data uninformative, →0 = fully informed).
    pub fn mean_variance_reduction(&self, prior_std: f64) -> f64 {
        let total: f64 = (0..self.n).map(|j| self.posterior_variance(prior_std, j)).sum();
        total / (self.n as f64 * prior_std * prior_std)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Modified Gram–Schmidt with re-orthogonalization ("twice is enough"),
/// in place. When the operator's numerical rank is below the block size,
/// projected vectors collapse; they are replaced by fresh random vectors
/// and orthogonalized again, so the returned block is always orthonormal
/// (a non-orthonormal Q would inflate the Rayleigh–Ritz values).
fn orthonormalize(basis: &mut [Vec<f64>]) {
    let n = basis.first().map(Vec::len).unwrap_or(0);
    for i in 0..basis.len() {
        let mut attempts = 0u32;
        loop {
            // Two MGS passes against the already-finished vectors.
            for _pass in 0..2 {
                for j in 0..i {
                    let proj = dot(&basis[i], &basis[j]);
                    let (left, right) = basis.split_at_mut(i);
                    for (x, &y) in right[0].iter_mut().zip(&left[j]) {
                        *x -= proj * y;
                    }
                }
            }
            let norm = dot(&basis[i], &basis[i]).sqrt();
            if norm > 1e-10 {
                let inv = 1.0 / norm;
                for x in basis[i].iter_mut() {
                    *x *= inv;
                }
                break;
            }
            // Collapsed direction: draw a fresh vector and retry (it goes
            // through the projection passes above before acceptance).
            attempts += 1;
            assert!(attempts < 16, "cannot complete orthonormal basis");
            let mut rng = SplitMix64::new(0x5EED ^ ((i as u64) << 8) ^ attempts as u64);
            for x in basis[i].iter_mut() {
                *x = rng.normal() / (n as f64).sqrt();
            }
        }
    }
}

/// Cyclic Jacobi eigen-decomposition of a symmetric `k × k` matrix.
/// Returns (eigenvalues, column-eigenvectors as `k × k` row-major with
/// `v[:, j]` the j-th eigenvector, i.e. `evecs[i*k + j]`).
fn jacobi_eigh(a: &[f64], k: usize) -> (Vec<f64>, Vec<f64>) {
    let mut m = a.to_vec();
    let mut v = vec![0.0; k * k];
    for i in 0..k {
        v[i * k + i] = 1.0;
    }
    for _sweep in 0..60 {
        let mut off = 0.0;
        for i in 0..k {
            for j in i + 1..k {
                off += m[i * k + j] * m[i * k + j];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frob(&m, k)) {
            break;
        }
        for p in 0..k {
            for q in p + 1..k {
                let apq = m[p * k + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let theta = (m[q * k + q] - m[p * k + p]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for i in 0..k {
                    let mip = m[i * k + p];
                    let miq = m[i * k + q];
                    m[i * k + p] = c * mip - s * miq;
                    m[i * k + q] = s * mip + c * miq;
                }
                for j in 0..k {
                    let mpj = m[p * k + j];
                    let mqj = m[q * k + j];
                    m[p * k + j] = c * mpj - s * mqj;
                    m[q * k + j] = s * mpj + c * mqj;
                }
                for i in 0..k {
                    let vip = v[i * k + p];
                    let viq = v[i * k + q];
                    v[i * k + p] = c * vip - s * viq;
                    v[i * k + q] = s * vip + c * viq;
                }
            }
        }
    }
    let evals: Vec<f64> = (0..k).map(|i| m[i * k + i]).collect();
    (evals, v)
}

fn frob(m: &[f64], k: usize) -> f64 {
    (0..k * k).map(|i| m[i] * m[i]).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oed::expected_information_gain;
    use crate::p2o::P2oMap;
    use crate::system::HeatEquation1D;
    use fftmatvec_core::{FftMatvec, PrecisionConfig};

    fn small_problem() -> (HeatEquation1D, Vec<usize>, usize, f64, f64) {
        (HeatEquation1D::new(12, 0.03, 0.3), vec![3usize, 8], 6usize, 0.05, 1.0)
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2,1],[1,2]] → eigenvalues 1, 3.
        let (evals, evecs) = jacobi_eigh(&[2.0, 1.0, 1.0, 2.0], 2);
        let mut sorted = evals.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] - 1.0).abs() < 1e-12);
        assert!((sorted[1] - 3.0).abs() < 1e-12);
        // Columns orthonormal.
        let c0 = [evecs[0], evecs[2]];
        let c1 = [evecs[1], evecs[3]];
        assert!((c0[0] * c1[0] + c0[1] * c1[1]).abs() < 1e-12);
    }

    #[test]
    fn gram_schmidt_orthonormalizes() {
        let mut basis = vec![vec![1.0, 1.0, 0.0], vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]];
        orthonormalize(&mut basis);
        for i in 0..3 {
            assert!((dot(&basis[i], &basis[i]) - 1.0).abs() < 1e-12);
            for j in 0..i {
                assert!(dot(&basis[i], &basis[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn low_rank_eig_matches_direct_logdet() {
        // The randomized EIG must agree with oed's exact data-space
        // log-det when the rank captures the whole (small) spectrum.
        let (sys, sensors, nt, noise, prior) = small_problem();
        let (exact, _) = expected_information_gain(
            &sys,
            &sensors,
            nt,
            noise,
            prior,
            PrecisionConfig::all_double(),
        )
        .unwrap();

        let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let prob =
            BayesianProblem::new(FftMatvec::builder(p2o.operator).build().unwrap(), noise, prior);
        // Data space has nd·nt = 12 nontrivial directions; rank 12 + a few
        // oversamples captures them all.
        let lr = LowRankHessian::compute(&prob, 12, 6, 3, 7).unwrap();
        let approx = lr.expected_information_gain();
        assert!(
            (approx - exact).abs() < 0.02 * exact.abs().max(1.0),
            "EIG mismatch: randomized {approx} vs exact {exact}"
        );
        assert!(lr.matvecs > 0);
    }

    #[test]
    fn eigenvalues_sorted_and_nonnegative() {
        let (sys, sensors, nt, noise, prior) = small_problem();
        let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let prob =
            BayesianProblem::new(FftMatvec::builder(p2o.operator).build().unwrap(), noise, prior);
        let lr = LowRankHessian::compute(&prob, 8, 4, 2, 9).unwrap();
        assert_eq!(lr.eigenvalues.len(), 8);
        for w in lr.eigenvalues.windows(2) {
            assert!(w[0] >= w[1], "not sorted: {:?}", lr.eigenvalues);
        }
        assert!(lr.eigenvalues.iter().all(|&l| l >= 0.0));
        assert!(lr.eigenvalues[0] > 0.0, "data must inform something");
    }

    #[test]
    fn posterior_variance_reduced_where_observed() {
        let (sys, sensors, nt, noise, prior) = small_problem();
        let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let prob =
            BayesianProblem::new(FftMatvec::builder(p2o.operator).build().unwrap(), noise, prior);
        let lr = LowRankHessian::compute(&prob, 10, 6, 3, 11).unwrap();
        // Posterior variance never exceeds prior variance.
        for j in 0..lr.n {
            let v = lr.posterior_variance(prior, j);
            assert!(v <= prior * prior + 1e-12);
            assert!(v >= 0.0);
        }
        // Data is informative overall.
        let red = lr.mean_variance_reduction(prior);
        assert!(red < 1.0, "variance reduction {red}");
        // Early-time parameters near a sensor are better constrained than
        // late-time ones (nothing observes the final instant's effects).
        let near_sensor_early = lr.posterior_variance(prior, 3); // t=0, x-index 3
        let last_instant = lr.posterior_variance(prior, (nt - 1) * 12 + 3);
        assert!(
            near_sensor_early < last_instant,
            "expected early-time reduction: {near_sensor_early} vs {last_instant}"
        );
    }

    #[test]
    fn mixed_precision_uq_matches_double() {
        let (sys, sensors, nt, noise, prior) = small_problem();
        let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let gold = LowRankHessian::compute(
            &BayesianProblem::new(FftMatvec::builder(p2o.operator).build().unwrap(), noise, prior),
            6,
            4,
            3,
            5,
        )
        .unwrap();
        let p2o2 = P2oMap::assemble(&sys, &sensors, nt).unwrap();
        let fast = LowRankHessian::compute(
            &BayesianProblem::new(
                FftMatvec::builder(p2o2.operator)
                    .precision(PrecisionConfig::optimal_forward())
                    .build()
                    .unwrap(),
                noise,
                prior,
            ),
            6,
            4,
            3,
            5,
        )
        .unwrap();
        for (a, b) in gold.eigenvalues.iter().zip(&fast.eigenvalues) {
            assert!((a - b).abs() < 1e-3 * a.max(1.0), "eigenvalue drift: {a} vs {b}");
        }
    }
}
