//! Property-based tests for the FFT substrate.
//!
//! These check the analytic invariants the paper's error analysis relies
//! on (Section 3.2.1, citing Van Loan): roundtrip accuracy scaling like
//! `ε·log2(n)`, Parseval's identity, linearity, the shift theorem, and
//! agreement between the real-packed and complex paths.

use fftmatvec_fft::dft::naive_dft;
use fftmatvec_fft::{cache, BatchedFft, BatchedRealFft, FftDirection, FftPlan, RealFftPlan};
use fftmatvec_numeric::{Complex, Real, SplitMix64};
use proptest::prelude::*;

type C = Complex<f64>;

/// Mixed transform lengths: powers of two, FFTMatvec's mixed-radix sizes,
/// odd-radix composites, and Bluestein-path primes.
const MIXED_LENS: [usize; 12] = [1, 2, 4, 8, 30, 64, 100, 200, 67, 97, 101, 251];

fn signal(n: usize, seed: u64) -> Vec<C> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
}

fn rel_err(a: &[C], b: &[C]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sqr()).sum();
    let den: f64 = b.iter().map(|y| y.norm_sqr()).sum();
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// inverse(forward(x)) == x within c·ε·log2(n) for arbitrary lengths,
    /// including Bluestein fallbacks.
    #[test]
    fn roundtrip_error_bounded(n in 1usize..600, seed in 0u64..u64::MAX) {
        let x = signal(n, seed);
        let plan = FftPlan::<f64>::new(n);
        let back = plan.inverse_vec(&plan.forward_vec(&x));
        let bound = 64.0 * f64::EPSILON * ((n.max(2)) as f64).log2();
        prop_assert!(rel_err(&back, &x) < bound,
            "n={} err={} bound={}", n, rel_err(&back, &x), bound);
    }

    /// Parseval: ‖X‖² == n·‖x‖².
    #[test]
    fn parseval_holds(n in 1usize..400, seed in 0u64..u64::MAX) {
        let x = signal(n, seed);
        let plan = FftPlan::<f64>::new(n);
        let freq = plan.forward_vec(&x);
        let tx: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let tf: f64 = freq.iter().map(|v| v.norm_sqr()).sum();
        prop_assert!((tf - (n as f64) * tx).abs() <= 1e-10 * (1.0 + tf),
            "n={} tf={} n*tx={}", n, tf, (n as f64) * tx);
    }

    /// FFT(a·x + y) == a·FFT(x) + FFT(y).
    #[test]
    fn linearity(n in 2usize..200, seed in 0u64..u64::MAX, are in -2.0f64..2.0, aim in -2.0f64..2.0) {
        let x = signal(n, seed);
        let y = signal(n, seed ^ 0xDEAD_BEEF);
        let a = C::new(are, aim);
        let plan = FftPlan::<f64>::new(n);
        let mixed: Vec<C> = x.iter().zip(&y).map(|(&xi, &yi)| a * xi + yi).collect();
        let lhs = plan.forward_vec(&mixed);
        let fx = plan.forward_vec(&x);
        let fy = plan.forward_vec(&y);
        let rhs: Vec<C> = fx.iter().zip(&fy).map(|(&xi, &yi)| a * xi + yi).collect();
        prop_assert!(rel_err(&lhs, &rhs) < 1e-11);
    }

    /// Circular shift in time multiplies the spectrum by a phase ramp.
    #[test]
    fn shift_theorem(n in 2usize..150, shift in 0usize..150, seed in 0u64..u64::MAX) {
        let shift = shift % n;
        let x = signal(n, seed);
        let shifted: Vec<C> = (0..n).map(|j| x[(j + n - shift) % n]).collect();
        let plan = FftPlan::<f64>::new(n);
        let fx = plan.forward_vec(&x);
        let fs = plan.forward_vec(&shifted);
        let expect: Vec<C> = fx.iter().enumerate().map(|(k, &v)| {
            let theta = -2.0 * std::f64::consts::PI * (k * shift % n) as f64 / n as f64;
            v * C::expi(theta)
        }).collect();
        prop_assert!(rel_err(&fs, &expect) < 1e-10);
    }

    /// The fast plans agree with the O(n²) DFT on every size.
    #[test]
    fn agrees_with_naive(n in 1usize..128, seed in 0u64..u64::MAX) {
        let x = signal(n, seed);
        let plan = FftPlan::<f64>::new(n);
        let fast = plan.forward_vec(&x);
        let mut slow = vec![C::zero(); n];
        naive_dft(&x, &mut slow, FftDirection::Forward);
        prop_assert!(rel_err(&fast, &slow) < 1e-10);
    }

    /// Real packed transform equals the complex transform of the
    /// real-embedded signal (first n/2+1 bins) and the remaining bins obey
    /// Hermitian symmetry.
    #[test]
    fn real_transform_consistency(half in 1usize..200, seed in 0u64..u64::MAX) {
        let n = 2 * half;
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let rplan = RealFftPlan::<f64>::new(n);
        let mut spec = vec![C::zero(); rplan.spectrum_len()];
        let mut scratch = vec![C::zero(); rplan.scratch_len()];
        rplan.forward(&x, &mut spec, &mut scratch);

        let cx: Vec<C> = x.iter().map(|&v| C::from_real(v)).collect();
        let cplan = FftPlan::<f64>::new(n);
        let full = cplan.forward_vec(&cx);
        prop_assert!(rel_err(&spec, &full[..half + 1]) < 1e-11);
        // Hermitian symmetry of the implied upper half.
        for k in 1..half {
            let err = (full[n - k] - full[k].conj()).abs();
            prop_assert!(err < 1e-9 * (1.0 + full[k].abs()));
        }
    }

    /// Batched processing is exactly per-item processing.
    #[test]
    fn batch_consistency(n in 1usize..64, batch in 1usize..8, seed in 0u64..u64::MAX) {
        let data = signal(n * batch, seed);
        let bf = BatchedFft::<f64>::new(n);
        let got = bf.forward_batch_vec(&data);
        for b in 0..batch {
            let single = bf.plan().forward_vec(&data[b * n..(b + 1) * n]);
            prop_assert!(rel_err(&got[b * n..(b + 1) * n], &single) < 1e-12);
        }
    }

    /// Batched complex execution (out-of-place and in-place, both
    /// directions) equals a sequential per-signal loop, in both precisions,
    /// for batch sizes 1–32 and mixed lengths including Bluestein primes.
    #[test]
    fn batch_equals_sequential_loop_all_precisions(
        len_idx in 0usize..MIXED_LENS.len(),
        batch in 1usize..=32,
        seed in 0u64..u64::MAX,
        dir_bit in 0u8..2,
    ) {
        let n = MIXED_LENS[len_idx];
        let dir = if dir_bit == 1 { FftDirection::Inverse } else { FftDirection::Forward };
        batch_vs_loop_case::<f64>(n, batch, seed, dir, 1e-12)?;
        batch_vs_loop_case::<f32>(n, batch, seed, dir, 2e-4)?;
    }

    /// Batched real R2C/C2R equals a sequential per-signal loop through
    /// the shared plan, in both precisions.
    #[test]
    fn real_batch_equals_sequential_loop(
        half in 1usize..80,
        batch in 1usize..=32,
        seed in 0u64..u64::MAX,
    ) {
        real_batch_vs_loop_case::<f64>(2 * half, batch, seed, 1e-12)?;
        real_batch_vs_loop_case::<f32>(2 * half, batch, seed, 2e-4)?;
    }
}

/// One batched-vs-sequential complex comparison in precision `T`.
fn batch_vs_loop_case<T: Real>(
    n: usize,
    batch: usize,
    seed: u64,
    dir: FftDirection,
    tol: f64,
) -> Result<(), TestCaseError> {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<Complex<T>> = (0..n * batch)
        .map(|_| {
            Complex::new(T::from_f64(rng.uniform(-1.0, 1.0)), T::from_f64(rng.uniform(-1.0, 1.0)))
        })
        .collect();
    let bf = BatchedFft::<T>::new(n);

    // Sequential per-signal loop through the same plan.
    let mut want = vec![Complex::<T>::zero(); n * batch];
    let mut scratch = vec![Complex::<T>::zero(); bf.plan().scratch_len()];
    for b in 0..batch {
        bf.plan().process(
            &data[b * n..(b + 1) * n],
            &mut want[b * n..(b + 1) * n],
            &mut scratch,
            dir,
        );
    }

    let mut got = vec![Complex::<T>::zero(); n * batch];
    bf.process_batch(&data, &mut got, dir);
    let mut inplace = data.clone();
    bf.process_batch_inplace(&mut inplace, dir);

    let scale: f64 = want.iter().map(|v| v.abs().to_f64()).fold(1.0, f64::max);
    for (g, w) in got.iter().zip(&want) {
        prop_assert!((*g - *w).abs().to_f64() <= tol * scale, "out-of-place n={n} batch={batch}");
    }
    for (g, w) in inplace.iter().zip(&want) {
        prop_assert!((*g - *w).abs().to_f64() <= tol * scale, "in-place n={n} batch={batch}");
    }
    Ok(())
}

/// One batched-vs-sequential real-transform comparison in precision `T`.
fn real_batch_vs_loop_case<T: Real>(
    n: usize,
    batch: usize,
    seed: u64,
    tol: f64,
) -> Result<(), TestCaseError> {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<T> = (0..n * batch).map(|_| T::from_f64(rng.uniform(-1.0, 1.0))).collect();
    let bf = BatchedRealFft::<T>::new(n);
    let s = bf.spectrum_len();

    let mut want = vec![Complex::<T>::zero(); s * batch];
    let mut scratch = vec![Complex::<T>::zero(); bf.plan().scratch_len()];
    for b in 0..batch {
        bf.plan().forward(&data[b * n..(b + 1) * n], &mut want[b * s..(b + 1) * s], &mut scratch);
    }
    let mut got = vec![Complex::<T>::zero(); s * batch];
    bf.forward_batch(&data, &mut got);
    let scale: f64 = want.iter().map(|v| v.abs().to_f64()).fold(1.0, f64::max);
    for (g, w) in got.iter().zip(&want) {
        prop_assert!((*g - *w).abs().to_f64() <= tol * scale, "r2c n={n} batch={batch}");
    }

    // And the inverse batch round-trips through the same shared plan.
    let mut back = vec![T::ZERO; n * batch];
    bf.inverse_batch(&got, &mut back);
    for (b, x) in back.iter().zip(&data) {
        prop_assert!((*b - *x).abs().to_f64() <= tol, "c2r roundtrip n={n} batch={batch}");
    }
    Ok(())
}

/// Two cache lookups for the same `(n, precision)` must return the same
/// shared plan object, across every plan family the drivers use.
#[test]
fn cache_lookups_share_plans() {
    for n in [64usize, 200, 2000, 67] {
        let a = cache::complex_plan::<f64>(n);
        let b = cache::complex_plan::<f64>(n);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "complex f64 n={n}");
        let a32 = cache::complex_plan::<f32>(n);
        let b32 = cache::complex_plan::<f32>(n);
        assert!(std::sync::Arc::ptr_eq(&a32, &b32), "complex f32 n={n}");
        if n % 2 == 0 {
            let ra = cache::real_plan::<f64>(n);
            let rb = cache::real_plan::<f64>(n);
            assert!(std::sync::Arc::ptr_eq(&ra, &rb), "real f64 n={n}");
        }
    }
}
