//! Property-based tests for the FFT substrate.
//!
//! These check the analytic invariants the paper's error analysis relies
//! on (Section 3.2.1, citing Van Loan): roundtrip accuracy scaling like
//! `ε·log2(n)`, Parseval's identity, linearity, the shift theorem, and
//! agreement between the real-packed and complex paths.

use fftmatvec_fft::dft::naive_dft;
use fftmatvec_fft::{BatchedFft, FftDirection, FftPlan, RealFftPlan};
use fftmatvec_numeric::{Complex, SplitMix64};
use proptest::prelude::*;

type C = Complex<f64>;

fn signal(n: usize, seed: u64) -> Vec<C> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
}

fn rel_err(a: &[C], b: &[C]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sqr()).sum();
    let den: f64 = b.iter().map(|y| y.norm_sqr()).sum();
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// inverse(forward(x)) == x within c·ε·log2(n) for arbitrary lengths,
    /// including Bluestein fallbacks.
    #[test]
    fn roundtrip_error_bounded(n in 1usize..600, seed in 0u64..u64::MAX) {
        let x = signal(n, seed);
        let plan = FftPlan::<f64>::new(n);
        let back = plan.inverse_vec(&plan.forward_vec(&x));
        let bound = 64.0 * f64::EPSILON * ((n.max(2)) as f64).log2();
        prop_assert!(rel_err(&back, &x) < bound,
            "n={} err={} bound={}", n, rel_err(&back, &x), bound);
    }

    /// Parseval: ‖X‖² == n·‖x‖².
    #[test]
    fn parseval_holds(n in 1usize..400, seed in 0u64..u64::MAX) {
        let x = signal(n, seed);
        let plan = FftPlan::<f64>::new(n);
        let freq = plan.forward_vec(&x);
        let tx: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let tf: f64 = freq.iter().map(|v| v.norm_sqr()).sum();
        prop_assert!((tf - (n as f64) * tx).abs() <= 1e-10 * (1.0 + tf),
            "n={} tf={} n*tx={}", n, tf, (n as f64) * tx);
    }

    /// FFT(a·x + y) == a·FFT(x) + FFT(y).
    #[test]
    fn linearity(n in 2usize..200, seed in 0u64..u64::MAX, are in -2.0f64..2.0, aim in -2.0f64..2.0) {
        let x = signal(n, seed);
        let y = signal(n, seed ^ 0xDEAD_BEEF);
        let a = C::new(are, aim);
        let plan = FftPlan::<f64>::new(n);
        let mixed: Vec<C> = x.iter().zip(&y).map(|(&xi, &yi)| a * xi + yi).collect();
        let lhs = plan.forward_vec(&mixed);
        let fx = plan.forward_vec(&x);
        let fy = plan.forward_vec(&y);
        let rhs: Vec<C> = fx.iter().zip(&fy).map(|(&xi, &yi)| a * xi + yi).collect();
        prop_assert!(rel_err(&lhs, &rhs) < 1e-11);
    }

    /// Circular shift in time multiplies the spectrum by a phase ramp.
    #[test]
    fn shift_theorem(n in 2usize..150, shift in 0usize..150, seed in 0u64..u64::MAX) {
        let shift = shift % n;
        let x = signal(n, seed);
        let shifted: Vec<C> = (0..n).map(|j| x[(j + n - shift) % n]).collect();
        let plan = FftPlan::<f64>::new(n);
        let fx = plan.forward_vec(&x);
        let fs = plan.forward_vec(&shifted);
        let expect: Vec<C> = fx.iter().enumerate().map(|(k, &v)| {
            let theta = -2.0 * std::f64::consts::PI * (k * shift % n) as f64 / n as f64;
            v * C::expi(theta)
        }).collect();
        prop_assert!(rel_err(&fs, &expect) < 1e-10);
    }

    /// The fast plans agree with the O(n²) DFT on every size.
    #[test]
    fn agrees_with_naive(n in 1usize..128, seed in 0u64..u64::MAX) {
        let x = signal(n, seed);
        let plan = FftPlan::<f64>::new(n);
        let fast = plan.forward_vec(&x);
        let mut slow = vec![C::zero(); n];
        naive_dft(&x, &mut slow, FftDirection::Forward);
        prop_assert!(rel_err(&fast, &slow) < 1e-10);
    }

    /// Real packed transform equals the complex transform of the
    /// real-embedded signal (first n/2+1 bins) and the remaining bins obey
    /// Hermitian symmetry.
    #[test]
    fn real_transform_consistency(half in 1usize..200, seed in 0u64..u64::MAX) {
        let n = 2 * half;
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let rplan = RealFftPlan::<f64>::new(n);
        let mut spec = vec![C::zero(); rplan.spectrum_len()];
        let mut scratch = vec![C::zero(); rplan.scratch_len()];
        rplan.forward(&x, &mut spec, &mut scratch);

        let cx: Vec<C> = x.iter().map(|&v| C::from_real(v)).collect();
        let cplan = FftPlan::<f64>::new(n);
        let full = cplan.forward_vec(&cx);
        prop_assert!(rel_err(&spec, &full[..half + 1]) < 1e-11);
        // Hermitian symmetry of the implied upper half.
        for k in 1..half {
            let err = (full[n - k] - full[k].conj()).abs();
            prop_assert!(err < 1e-9 * (1.0 + full[k].abs()));
        }
    }

    /// Batched processing is exactly per-item processing.
    #[test]
    fn batch_consistency(n in 1usize..64, batch in 1usize..8, seed in 0u64..u64::MAX) {
        let data = signal(n * batch, seed);
        let bf = BatchedFft::<f64>::new(n);
        let got = bf.forward_batch_vec(&data);
        for b in 0..batch {
            let single = bf.plan().forward_vec(&data[b * n..(b + 1) * n]);
            prop_assert!(rel_err(&got[b * n..(b + 1) * n], &single) < 1e-12);
        }
    }
}
