//! Pool execution == sequential execution, bit for bit.
//!
//! The batched FFT drivers route large batches across the rayon pool
//! (`for_each_init` over batch chunks). These properties pin down the
//! executor's determinism contract: for every precision tier
//! (f16/bf16/f32/f64), batch size 1–32, and transform length — powers of
//! two, mixed-radix composites, and Bluestein-path primes — the pooled
//! batch path must produce *exactly* the bits of a plain sequential loop
//! over the same per-item plan. Several (length, batch) combinations
//! cross `PAR_THRESHOLD`, so with `RAYON_NUM_THREADS > 1` (the CI
//! thread-count matrix runs 1, 2, and 8) the parallel path is genuinely
//! exercised; at 1 thread the same splits run inline — either way the
//! bits must agree, because every transform writes a disjoint output
//! slice and chunk boundaries depend only on the batch size.

use fftmatvec_fft::{BatchedFft, BatchedRealFft, FftDirection};
use fftmatvec_numeric::{bf16, f16, Complex, Real, SplitMix64};
use proptest::prelude::*;

/// Transform lengths: powers of two (in-place friendly), mixed-radix
/// composites, and primes that force the Bluestein chirp-z path. The
/// large entries combined with batch ≥ 9 cross the batched drivers'
/// `PAR_THRESHOLD` (2¹⁴ elements).
const LENS: [usize; 10] = [8, 30, 64, 97, 100, 251, 256, 512, 1024, 2048];

fn complex_signal<T: Real>(n: usize, seed: u64) -> Vec<Complex<T>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            Complex::new(T::from_f64(rng.uniform(-1.0, 1.0)), T::from_f64(rng.uniform(-1.0, 1.0)))
        })
        .collect()
}

fn real_signal<T: Real>(n: usize, seed: u64) -> Vec<T> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| T::from_f64(rng.uniform(-1.0, 1.0))).collect()
}

/// Bitwise equality via the exact f64 widening every tier has.
fn assert_bits_eq<T: Real>(got: &[Complex<T>], want: &[Complex<T>], what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.re.to_f64().to_bits() == w.re.to_f64().to_bits()
                && g.im.to_f64().to_bits() == w.im.to_f64().to_bits(),
            "{what}: bit mismatch at element {i}: got {g:?}, want {w:?}"
        );
    }
}

fn assert_real_bits_eq<T: Real>(got: &[T], want: &[T], what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_f64().to_bits() == w.to_f64().to_bits(),
            "{what}: bit mismatch at element {i}: got {g:?}, want {w:?}"
        );
    }
}

/// Pooled `process_batch` / `process_batch_inplace` vs a sequential
/// per-item loop through the identical plan and a private scratch.
fn check_complex_batch<T: Real>(n: usize, batch: usize, seed: u64, dir: FftDirection) {
    let data = complex_signal::<T>(n * batch, seed);
    let bf = BatchedFft::<T>::new(n);

    let mut want = vec![Complex::<T>::zero(); n * batch];
    let mut scratch = vec![Complex::<T>::zero(); bf.plan().scratch_len()];
    for (i, o) in data.chunks_exact(n).zip(want.chunks_exact_mut(n)) {
        bf.plan().process(i, o, &mut scratch, dir);
    }

    let mut got = vec![Complex::<T>::zero(); n * batch];
    bf.process_batch(&data, &mut got, dir);
    assert_bits_eq(&got, &want, "process_batch");

    let mut inplace = data.clone();
    bf.process_batch_inplace(&mut inplace, dir);
    assert_bits_eq(&inplace, &want, "process_batch_inplace");
}

/// Pooled real-transform batch vs the sequential per-item loop.
fn check_real_batch<T: Real>(n: usize, batch: usize, seed: u64) {
    let data = real_signal::<T>(n * batch, seed);
    let bf = BatchedRealFft::<T>::new(n);
    let s = bf.spectrum_len();

    let mut want_spec = vec![Complex::<T>::zero(); s * batch];
    let mut scratch = vec![Complex::<T>::zero(); bf.plan().scratch_len()];
    for (i, o) in data.chunks_exact(n).zip(want_spec.chunks_exact_mut(s)) {
        bf.plan().forward(i, o, &mut scratch);
    }
    let mut got_spec = vec![Complex::<T>::zero(); s * batch];
    bf.forward_batch(&data, &mut got_spec);
    assert_bits_eq(&got_spec, &want_spec, "forward_batch");

    let mut want_back = vec![T::ZERO; n * batch];
    for (i, o) in want_spec.chunks_exact(s).zip(want_back.chunks_exact_mut(n)) {
        bf.plan().inverse(i, o, &mut scratch);
    }
    let mut got_back = vec![T::ZERO; n * batch];
    bf.inverse_batch(&got_spec, &mut got_back);
    assert_real_bits_eq(&got_back, &want_back, "inverse_batch");
}

fn check_all_tiers(n: usize, batch: usize, seed: u64, dir: FftDirection) {
    check_complex_batch::<f64>(n, batch, seed, dir);
    check_complex_batch::<f32>(n, batch, seed, dir);
    check_complex_batch::<f16>(n, batch, seed, dir);
    check_complex_batch::<bf16>(n, batch, seed, dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward batched complex transforms match the sequential loop
    /// bitwise in all four precision tiers.
    #[test]
    fn pooled_complex_batch_is_bitwise_sequential(
        len_idx in 0usize..LENS.len(),
        batch in 1usize..=32,
        seed in 0u64..u64::MAX,
    ) {
        check_all_tiers(LENS[len_idx], batch, seed, FftDirection::Forward);
    }

    /// Inverse direction, same contract.
    #[test]
    fn pooled_complex_inverse_batch_is_bitwise_sequential(
        len_idx in 0usize..LENS.len(),
        batch in 1usize..=32,
        seed in 0u64..u64::MAX,
    ) {
        check_all_tiers(LENS[len_idx], batch, seed, FftDirection::Inverse);
    }

    /// Real packed transforms (forward R2C + inverse C2R), all tiers.
    /// Only even lengths — the packed half-complex trick's domain.
    #[test]
    fn pooled_real_batch_is_bitwise_sequential(
        len_idx in 0usize..LENS.len(),
        batch in 1usize..=32,
        seed in 0u64..u64::MAX,
    ) {
        let n = LENS[len_idx];
        let n = if n % 2 == 1 { n + 1 } else { n };
        check_real_batch::<f64>(n, batch, seed);
        check_real_batch::<f32>(n, batch, seed);
        check_real_batch::<f16>(n, batch, seed);
        check_real_batch::<bf16>(n, batch, seed);
    }
}

/// The per-leaf state contract, observed through the scratch arena: a
/// pooled batch far above `PAR_THRESHOLD` checks out one scratch guard
/// per executed work chunk, and every guard is dropped when its chunk
/// finishes — so the arena parks at most one buffer per pool lane
/// (exactly one in sequential mode), never one per leaf.
#[test]
fn scratch_pool_bounded_by_worker_concurrency() {
    let bf = BatchedFft::<f64>::new(2048);
    let mut data = complex_signal::<f64>(2048 * 64, 3);
    bf.process_batch_inplace(&mut data, FftDirection::Forward);
    let pooled = bf.scratch_pooled();
    #[cfg(feature = "parallel")]
    let lanes = rayon::current_num_threads();
    #[cfg(not(feature = "parallel"))]
    let lanes = 1;
    assert!(
        (1..=lanes).contains(&pooled),
        "scratch pool must stabilize at <= {lanes} pool lanes, found {pooled} parked buffers"
    );
}

/// The largest paper-shaped batch, pinned as a plain test so it always
/// runs (proptest sampling might skip the threshold-crossing corner).
#[test]
fn largest_shape_crosses_par_threshold_and_matches() {
    // 2048 · 32 = 65536 complex elements — 4× PAR_THRESHOLD.
    check_complex_batch::<f64>(2048, 32, 7, FftDirection::Forward);
    check_complex_batch::<f32>(2048, 32, 7, FftDirection::Forward);
    // Bluestein prime crossing the threshold: 251 · 32 · ... = 8032 is
    // under it, so also check a prime at a larger batch-multiple via the
    // real driver (2·1021 = 2042 real elements per item).
    check_real_batch::<f64>(2042, 32, 11);
}
