//! Bit-for-bit equivalence of the vectorized FFT stages against the
//! scalar butterflies, across every dispatch level, for all four
//! precision tiers, power-of-two / mixed-radix / Bluestein-prime
//! lengths, forward and inverse, complex and real transforms.
//!
//! This is the PR's non-negotiable gate: which SIMD level executes a
//! transform must be unobservable in the output, exactly like thread
//! count in the PR-5 determinism matrix.

use std::sync::Mutex;

use fftmatvec_fft::{FftDirection, FftPlan, RealFftPlan};
use fftmatvec_numeric::half::{bf16, f16};
use fftmatvec_numeric::simd::{level_supported, set_active_level, SimdLevel};
use fftmatvec_numeric::{Complex, Real, SplitMix64};

/// Guards the process-global dispatch level against concurrent tests.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn supported_levels() -> Vec<SimdLevel> {
    [SimdLevel::Portable, SimdLevel::Avx2, SimdLevel::Avx512, SimdLevel::Neon]
        .into_iter()
        .filter(|&l| level_supported(l))
        .collect()
}

/// Lengths covering every execution strategy: tiny, pure powers of two
/// (radix-4 + radix-2 schedules), mixed radices with odd primes, and
/// Bluestein lengths (prime and composite-with-large-prime; the inner
/// power-of-two convolution plus the pointwise chirp multiply).
const SIZES: &[usize] = &[4, 8, 61, 64, 120, 250, 256, 360, 67, 134, 202];

/// Widening every component to `f64` is exact and injective on bit
/// patterns for all four tiers, so this digest *is* a bit digest.
fn digest<T: Real>(v: &[Complex<T>]) -> Vec<(u64, u64)> {
    v.iter().map(|z| (z.re.to_f64().to_bits(), z.im.to_f64().to_bits())).collect()
}

fn signal<T: Real>(n: usize, seed: u64) -> Vec<Complex<T>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            Complex::new(T::from_f64(rng.uniform(-1.0, 1.0)), T::from_f64(rng.uniform(-1.0, 1.0)))
        })
        .collect()
}

/// Forward + inverse, out-of-place + in-place digests at the current
/// dispatch level.
fn run_complex<T: Real>(plan: &FftPlan<T>, x: &[Complex<T>]) -> Vec<Vec<(u64, u64)>> {
    let n = x.len();
    let mut digests = Vec::with_capacity(4);
    let mut scratch = vec![Complex::<T>::zero(); plan.scratch_len()];
    for dir in [FftDirection::Forward, FftDirection::Inverse] {
        let mut out = vec![Complex::<T>::zero(); n];
        plan.process(x, &mut out, &mut scratch, dir);
        digests.push(digest(&out));
        let mut buf = x.to_vec();
        plan.process_inplace(&mut buf, &mut scratch, dir);
        digests.push(digest(&buf));
    }
    digests
}

fn check_complex_tier<T: Real>() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let levels = supported_levels();
    let prev = set_active_level(SimdLevel::Portable);
    for &n in SIZES {
        let plan = FftPlan::<T>::new(n);
        let x = signal::<T>(n, 0xF00D + n as u64);
        set_active_level(SimdLevel::Portable);
        let reference = run_complex(&plan, &x);
        for &level in &levels {
            set_active_level(level);
            assert_eq!(run_complex(&plan, &x), reference, "complex n={n} level={level}");
        }
    }
    set_active_level(prev);
}

#[test]
fn complex_transforms_identical_across_levels_f32() {
    check_complex_tier::<f32>();
}

#[test]
fn complex_transforms_identical_across_levels_f64() {
    check_complex_tier::<f64>();
}

#[test]
fn complex_transforms_identical_across_levels_f16() {
    check_complex_tier::<f16>();
}

#[test]
fn complex_transforms_identical_across_levels_bf16() {
    check_complex_tier::<bf16>();
}

/// Real-to-complex forward and complex-to-real inverse digests.
fn run_real<T: Real>(plan: &RealFftPlan<T>, x: &[T]) -> (Vec<(u64, u64)>, Vec<u64>) {
    let mut spectrum = vec![Complex::<T>::zero(); plan.spectrum_len()];
    let mut scratch = vec![Complex::<T>::zero(); plan.scratch_len()];
    plan.forward(x, &mut spectrum, &mut scratch);
    let mut back = vec![T::ZERO; x.len()];
    plan.inverse(&spectrum, &mut back, &mut scratch);
    (digest(&spectrum), back.iter().map(|v| v.to_f64().to_bits()).collect())
}

fn check_real_tier<T: Real>() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let levels = supported_levels();
    let prev = set_active_level(SimdLevel::Portable);
    for &n in &[8usize, 64, 120, 134, 256] {
        let plan = RealFftPlan::<T>::new(n);
        let mut rng = SplitMix64::new(0xBEEF + n as u64);
        let x: Vec<T> = (0..n).map(|_| T::from_f64(rng.uniform(-1.0, 1.0))).collect();
        set_active_level(SimdLevel::Portable);
        let reference = run_real(&plan, &x);
        for &level in &levels {
            set_active_level(level);
            assert_eq!(run_real(&plan, &x), reference, "real n={n} level={level}");
        }
    }
    set_active_level(prev);
}

#[test]
fn real_transforms_identical_across_levels_f32() {
    check_real_tier::<f32>();
}

#[test]
fn real_transforms_identical_across_levels_f64() {
    check_real_tier::<f64>();
}

#[test]
fn real_transforms_identical_across_levels_f16() {
    check_real_tier::<f16>();
}

#[test]
fn real_transforms_identical_across_levels_bf16() {
    check_real_tier::<bf16>();
}
