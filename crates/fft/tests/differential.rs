//! Differential-oracle harness for the FFT engines across the full
//! precision lattice.
//!
//! For every precision tier (`f16`, `bf16`, `f32`, `f64`) and a size
//! sweep covering power-of-two, mixed-radix, and Bluestein-prime lengths,
//! the three independent implementations must agree:
//!
//! * **iterative** — the Stockham engine behind [`fftmatvec_fft::FftPlan`]
//!   (pulled from the process-wide cache, like the pipeline call sites);
//! * **recursive** — the seed's engine, kept exactly as an oracle;
//! * **naive** — the O(n²) [`fftmatvec_fft::dft::naive_dft`] direct sum.
//!
//! Agreement is measured against a *reference* spectrum: the `f64` naive
//! DFT of the tier-rounded input. Error budgets are expressed in units of
//! the tier's machine epsilon ε ("ulp budgets"):
//!
//! | path | budget (relative ℓ2) |
//! |------|----------------------|
//! | iterative / recursive, mixed-radix | `8·ε·(log2 n + 1)` |
//! | iterative, Bluestein | `64·ε·(log2 m + 1)`, `m = 2^⌈log2(2n−1)⌉` |
//! | naive in-tier | `ε·(√n·log2 n + 8)` (sequential per-bin sums) |
//! | inverse(forward(x)) roundtrip | `2×` the engine budget |
//!
//! The FFT budgets follow the `O(ε·log n)` growth the paper's Eq. 6 uses
//! for the transform phases; the naive oracle's per-bin sequential sums
//! grow like `ε·√n` on random data, with the `log2 n` safety factor
//! absorbing unlucky cancellation. Constants are deliberately generous —
//! this harness gates *correctness* (the engines implement the same
//! transform), while tightness is covered by the error-analysis tests.
//!
//! Both transform directions and both element shapes (complex and packed
//! real) are exercised. Inputs are drawn in `[-0.5, 0.5]` so that even
//! the f16 tier (max finite 65504) survives the `O(n·max|x|)` forward
//! growth and Bluestein's chirp convolution at every size tested here.

use fftmatvec_fft::dft::naive_dft;
use fftmatvec_fft::{cache, FftDirection, RecursiveFftPlan};
use fftmatvec_numeric::vecmath::{rel_l2_error, rel_l2_error_c};
use fftmatvec_numeric::{bf16, f16, Complex, Real, SplitMix64};

/// Power-of-two lengths.
const POW2: [usize; 4] = [8, 64, 256, 1024];
/// Mixed-radix lengths (factors ≤ MAX_RADIX = 61), including the paper's
/// `2·N_t` shapes 200 and 2000-lite (500).
const MIXED: [usize; 4] = [12, 60, 200, 500];
/// Primes above MAX_RADIX: these take the Bluestein chirp-z path.
const BLUESTEIN: [usize; 3] = [67, 101, 131];

fn budget_engine(eps: f64, n: usize, bluestein: bool) -> f64 {
    let (m, c) = if bluestein { ((2 * n - 1).next_power_of_two(), 64.0) } else { (n, 8.0) };
    c * eps * ((m.max(2) as f64).log2() + 1.0)
}

fn budget_naive(eps: f64, n: usize) -> f64 {
    let nf = n.max(2) as f64;
    eps * (nf.sqrt() * nf.log2() + 8.0)
}

fn random_input<T: Real>(n: usize, seed: u64) -> Vec<Complex<T>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            Complex::new(T::from_f64(rng.uniform(-0.5, 0.5)), T::from_f64(rng.uniform(-0.5, 0.5)))
        })
        .collect()
}

fn widen<T: Real>(x: &[Complex<T>]) -> Vec<Complex<f64>> {
    x.iter().map(|z| z.cast()).collect()
}

/// Complex path: iterative == recursive == naive within the tier budget,
/// forward and inverse, plus an inverse∘forward roundtrip.
fn check_complex<T: Real>(n: usize, bluestein: bool, seed: u64) {
    let eps = T::PRECISION.epsilon();
    let tier = T::PRECISION;
    let x = random_input::<T>(n, seed);
    let x64 = widen(&x);

    // f64 naive DFT of the tier-rounded input is the reference.
    let mut want = vec![Complex::<f64>::zero(); n];
    naive_dft(&x64, &mut want, FftDirection::Forward);

    let plan = cache::complex_plan::<T>(n);
    assert_eq!(plan.is_bluestein(), bluestein, "strategy selection at n={n}");
    // The seed's recursive engine has no Bluestein path: large primes are
    // differentially tested iterative-vs-naive only.
    let seed_plan = (!bluestein).then(|| RecursiveFftPlan::<T>::new(n));

    let iterative = plan.forward_vec(&x);
    let recursive = seed_plan.as_ref().map(|p| p.forward_vec(&x));
    let mut naive_t = vec![Complex::<T>::zero(); n];
    naive_dft(&x, &mut naive_t, FftDirection::Forward);

    let be = budget_engine(eps, n, bluestein);
    let bn = budget_naive(eps, n).max(be);
    let mut paths: Vec<(&str, &Vec<Complex<T>>, f64)> =
        vec![("iterative", &iterative, be), ("naive", &naive_t, bn)];
    if let Some(rec) = &recursive {
        paths.push(("recursive", rec, be));
    }
    for (name, got, budget) in paths {
        let err = rel_l2_error_c(&widen(got), &want);
        assert!(err <= budget, "{tier} n={n} {name} forward: err {err:.3e} > budget {budget:.3e}");
        assert!(got.iter().all(|z| z.is_finite()), "{tier} n={n} {name}: non-finite output");
    }

    // Inverse direction against the f64 naive inverse of the rounded
    // reference spectrum (itself rounded into the tier).
    let spec_t: Vec<Complex<T>> = want.iter().map(|z| z.cast()).collect();
    let mut want_inv = vec![Complex::<f64>::zero(); n];
    naive_dft(&widen(&spec_t), &mut want_inv, FftDirection::Inverse);
    let it_inv = plan.inverse_vec(&spec_t);
    let rec_inv = seed_plan.as_ref().map(|p| p.inverse_vec(&spec_t));
    let mut naive_inv = vec![Complex::<T>::zero(); n];
    naive_dft(&spec_t, &mut naive_inv, FftDirection::Inverse);
    let mut paths: Vec<(&str, &Vec<Complex<T>>, f64)> =
        vec![("iterative", &it_inv, be), ("naive", &naive_inv, bn)];
    if let Some(rec) = &rec_inv {
        paths.push(("recursive", rec, be));
    }
    for (name, got, budget) in paths {
        let err = rel_l2_error_c(&widen(got), &want_inv);
        assert!(err <= budget, "{tier} n={n} {name} inverse: err {err:.3e} > budget {budget:.3e}");
    }

    // Roundtrip: inverse(forward(x)) ≈ x through each fast engine.
    let mut roundtrips = vec![("iterative", plan.inverse_vec(&iterative))];
    if let (Some(p), Some(fwd)) = (&seed_plan, &recursive) {
        roundtrips.push(("recursive", p.inverse_vec(fwd)));
    }
    for (name, back) in roundtrips {
        let err = rel_l2_error_c(&widen(&back), &x64);
        assert!(
            err <= 2.0 * be,
            "{tier} n={n} {name} roundtrip: err {err:.3e} > budget {:.3e}",
            2.0 * be
        );
    }
}

/// Real path: packed R2C forward against the f64 naive DFT of the real
/// signal, and the C2R inverse roundtrip. `n` must be even.
fn check_real<T: Real>(n: usize, bluestein: bool, seed: u64) {
    let eps = T::PRECISION.epsilon();
    let tier = T::PRECISION;
    let mut rng = SplitMix64::new(seed);
    let x: Vec<T> = (0..n).map(|_| T::from_f64(rng.uniform(-0.5, 0.5))).collect();
    let x64: Vec<Complex<f64>> = x.iter().map(|&v| Complex::new(v.to_f64(), 0.0)).collect();

    let mut full = vec![Complex::<f64>::zero(); n];
    naive_dft(&x64, &mut full, FftDirection::Forward);
    let want: Vec<Complex<f64>> = full[..n / 2 + 1].to_vec();

    let plan = cache::real_plan::<T>(n);
    let mut scratch = vec![Complex::<T>::zero(); plan.scratch_len()];
    let mut spectrum = vec![Complex::<T>::zero(); plan.spectrum_len()];
    plan.forward(&x, &mut spectrum, &mut scratch);

    // The packed-real transform runs the half-length complex plan, so
    // the budget follows that plan's strategy (Bluestein for 2·prime).
    let be = budget_engine(eps, n / 2, bluestein);
    let err = rel_l2_error_c(&widen(&spectrum), &want);
    assert!(err <= be, "{tier} n={n} real forward: err {err:.3e} > budget {be:.3e}");

    let mut back = vec![T::ZERO; n];
    plan.inverse(&spectrum, &mut back, &mut scratch);
    let err = rel_l2_error(
        &back.iter().map(|&v| v.to_f64()).collect::<Vec<_>>(),
        &x.iter().map(|&v| v.to_f64()).collect::<Vec<_>>(),
    );
    assert!(err <= 2.0 * be, "{tier} n={n} real roundtrip: err {err:.3e} > {:.3e}", 2.0 * be);
}

fn sweep_complex<T: Real>() {
    for (i, &n) in POW2.iter().chain(&MIXED).enumerate() {
        check_complex::<T>(n, false, 0xD1F + i as u64);
    }
    for (i, &n) in BLUESTEIN.iter().enumerate() {
        check_complex::<T>(n, true, 0xB1E + i as u64);
    }
}

fn sweep_real<T: Real>() {
    // Real plans need even n; the odd Bluestein primes are doubled, which
    // still routes the half-length complex plan through Bluestein for
    // 67·2 = 134 = 2·67 (half plan length 67 is a large prime).
    for (i, &n) in POW2.iter().chain(&MIXED).enumerate() {
        if n % 2 == 0 {
            check_real::<T>(n, false, 0x5EA1 + i as u64);
        }
    }
    for (i, &p) in BLUESTEIN.iter().enumerate() {
        check_real::<T>(2 * p, true, 0x5EA2 + i as u64);
    }
}

#[test]
fn complex_oracle_f64() {
    sweep_complex::<f64>();
}

#[test]
fn complex_oracle_f32() {
    sweep_complex::<f32>();
}

#[test]
fn complex_oracle_f16() {
    sweep_complex::<f16>();
}

#[test]
fn complex_oracle_bf16() {
    sweep_complex::<bf16>();
}

#[test]
fn real_oracle_f64() {
    sweep_real::<f64>();
}

#[test]
fn real_oracle_f32() {
    sweep_real::<f32>();
}

#[test]
fn real_oracle_f16() {
    sweep_real::<f16>();
}

#[test]
fn real_oracle_bf16() {
    sweep_real::<bf16>();
}

/// The measured engine error must be ordered by tier ε at a fixed size:
/// d ≤ s ≤ h ≤ b (allowing generous slack — roundoff is stochastic).
#[test]
fn tier_error_ordering_at_fixed_size() {
    fn engine_err<T: Real>(n: usize, seed: u64) -> f64 {
        let x = random_input::<T>(n, seed);
        let mut want = vec![Complex::<f64>::zero(); n];
        naive_dft(&widen(&x), &mut want, FftDirection::Forward);
        rel_l2_error_c(&widen(&cache::complex_plan::<T>(n).forward_vec(&x)), &want)
    }
    for n in [64usize, 200] {
        let (ed, es) = (engine_err::<f64>(n, 7), engine_err::<f32>(n, 7));
        let (eh, eb) = (engine_err::<f16>(n, 7), engine_err::<bf16>(n, 7));
        assert!(ed < es, "n={n}: f64 {ed:.2e} !< f32 {es:.2e}");
        assert!(es < eh, "n={n}: f32 {es:.2e} !< f16 {eh:.2e}");
        assert!(eh < eb * 2.0, "n={n}: f16 {eh:.2e} !< 2·bf16 {eb:.2e}");
    }
}
