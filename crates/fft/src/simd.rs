//! Vectorized butterfly and pointwise-multiply kernels for the
//! iterative engine and Bluestein's convolution.
//!
//! Each entry point here tries the active SIMD level and returns `true`
//! only when a vector kernel fully handled the call; `false` means the
//! caller must run its scalar loop. Dispatch is by `TypeId` on the
//! concrete [`Real`] type (the four precisions are a closed set) plus
//! [`fftmatvec_numeric::simd::active_level`].
//!
//! # Bit-identity
//!
//! The vector kernels replicate the scalar butterflies' expression tree
//! per element — same adds/subs, same fused multiplies, same rounding
//! points — so lane width never changes a single output bit (the same
//! contract as [`fftmatvec_numeric::simd`], pinned by
//! `tests/simd_equivalence.rs`). Concretely:
//!
//! * `f32`/`f64` complex multiplies use the `cmul` helpers that encode
//!   `Complex::{Mul}` exactly (one unfused product, one FMA per part).
//! * The 16-bit tiers widen to `f32` registers and **round through
//!   storage after every operation** (`round8_f16`/`round8_bf16`),
//!   exactly where the emulated scalar arithmetic rounds.
//! * Twiddle conjugation for inverse transforms happens scalar-side
//!   before broadcasting (an exact sign flip), so forward and inverse
//!   share one kernel body.
//! * Remainder elements (`s` not a lane multiple) run the identical
//!   scalar expressions inline.
//!
//! Only the stride-`s` inner loop is vectorized; stages with `s` below
//! the lane count (the first stage of a schedule) stay on the scalar
//! path, as does the table-driven odd-radix butterfly.

use fftmatvec_numeric::{Complex, Real};

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod dispatch {
    use core::any::TypeId;

    use fftmatvec_numeric::simd::{active_level, SimdLevel};
    use fftmatvec_numeric::{Complex, Real};

    pub(super) fn avx2_active() -> bool {
        matches!(active_level(), SimdLevel::Avx2 | SimdLevel::Avx512)
    }

    /// Reinterpret a generic complex slice as its concrete type, if `T`
    /// *is* `U` (then the cast is the identity and trivially sound).
    pub(super) fn cast<T: Real, U: Real>(v: &[Complex<T>]) -> Option<&[Complex<U>]> {
        (TypeId::of::<T>() == TypeId::of::<U>()).then(|| {
            // SAFETY: T == U was just checked; same layout, same lifetime.
            unsafe { core::slice::from_raw_parts(v.as_ptr() as *const Complex<U>, v.len()) }
        })
    }

    /// Mutable variant of [`cast`].
    pub(super) fn cast_mut<T: Real, U: Real>(v: &mut [Complex<T>]) -> Option<&mut [Complex<U>]> {
        (TypeId::of::<T>() == TypeId::of::<U>()).then(|| {
            // SAFETY: as above; the exclusive borrow transfers.
            unsafe { core::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut Complex<U>, v.len()) }
        })
    }
}

/// Dispatch one stage call over the closed set of [`Real`] types. Each
/// row names the concrete type, the minimum inner stride for the vector
/// body to ever fill a register (2 complex `f64` or 4 complex
/// `f32`/16-bit), and the monomorphic kernel.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
macro_rules! try_stages {
    ($src:ident, $dst:ident, $m:ident, $s:ident, $tw:ident, $inv:ident;
     $(($u:ty, $min_s:expr, $kernel:path)),+ $(,)?) => {
        if dispatch::avx2_active() {
            $(
                if $s >= $min_s {
                    if let (Some(src), Some(dst), Some(tw)) = (
                        dispatch::cast::<T, $u>($src),
                        dispatch::cast_mut::<T, $u>($dst),
                        dispatch::cast::<T, $u>($tw),
                    ) {
                        // SAFETY: `avx2_active` implies
                        // `level_supported(Avx2)`: avx2+fma verified.
                        unsafe { $kernel(src, dst, $m, $s, tw, $inv) };
                        return true;
                    }
                }
            )+
        }
    };
}

/// Vectorized radix-2 stage. Returns `false` if no vector kernel applies
/// (portable level, unsupported type, or `s` too small).
#[allow(unused_variables)]
pub(crate) fn stage_radix2<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    m: usize,
    s: usize,
    twiddles: &[Complex<T>],
    inverse: bool,
) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    try_stages!(src, dst, m, s, twiddles, inverse;
        (f32, 4, x86::radix2_f32),
        (f64, 2, x86::radix2_f64),
        (fftmatvec_numeric::half::f16, 4, x86::radix2_f16),
        (fftmatvec_numeric::half::bf16, 4, x86::radix2_bf16),
    );
    false
}

/// Vectorized radix-4 stage; same contract as [`stage_radix2`].
#[allow(unused_variables)]
pub(crate) fn stage_radix4<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    m: usize,
    s: usize,
    twiddles: &[Complex<T>],
    inverse: bool,
) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    try_stages!(src, dst, m, s, twiddles, inverse;
        (f32, 4, x86::radix4_f32),
        (f64, 2, x86::radix4_f64),
        (fftmatvec_numeric::half::f16, 4, x86::radix4_f16),
        (fftmatvec_numeric::half::bf16, 4, x86::radix4_bf16),
    );
    false
}

/// Vectorized pointwise complex multiply `a[i] *= b[i]` (Bluestein's
/// frequency-domain convolution). Returns `false` if unhandled.
#[allow(unused_variables)]
pub(crate) fn pointwise_mul_assign<T: Real>(a: &mut [Complex<T>], b: &[Complex<T>]) -> bool {
    assert_eq!(a.len(), b.len(), "pointwise multiply length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        macro_rules! try_pointwise {
            ($(($u:ty, $kernel:path)),+ $(,)?) => {
                if dispatch::avx2_active() {
                    $(
                        if let (Some(a), Some(b)) =
                            (dispatch::cast_mut::<T, $u>(a), dispatch::cast::<T, $u>(b))
                        {
                            // SAFETY: as in `try_stages!`.
                            unsafe { $kernel(a, b) };
                            return true;
                        }
                    )+
                }
            };
        }
        try_pointwise!(
            (f32, x86::pointwise_mul_f32),
            (f64, x86::pointwise_mul_f64),
            (fftmatvec_numeric::half::f16, x86::pointwise_mul_f16),
            (fftmatvec_numeric::half::bf16, x86::pointwise_mul_bf16),
        );
    }
    false
}
