//! Naive O(n²) discrete Fourier transform.
//!
//! This is the correctness oracle for the fast algorithms: slow, but each
//! output bin is a directly summed inner product with no recursion to get
//! wrong. Tests compare every [`crate::FftPlan`] size against it.

use fftmatvec_numeric::{Complex, Real};

use crate::plan::FftDirection;

/// Out-of-place naive DFT. `output.len()` must equal `input.len()`.
///
/// Forward: `X[k] = Σ_j x[j]·e^{-2πijk/n}` (unscaled).
/// Inverse: `x[j] = (1/n)·Σ_k X[k]·e^{+2πijk/n}`.
pub fn naive_dft<T: Real>(input: &[Complex<T>], output: &mut [Complex<T>], dir: FftDirection) {
    let n = input.len();
    assert_eq!(output.len(), n, "naive_dft output length mismatch");
    if n == 0 {
        return;
    }
    let sign = match dir {
        FftDirection::Forward => -T::ONE,
        FftDirection::Inverse => T::ONE,
    };
    let step = sign * T::TWO * T::PI / T::from_usize(n);
    for (k, out) in output.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &x) in input.iter().enumerate() {
            // Index reduced mod n to keep the angle argument small.
            let idx = (j * k) % n;
            let w = Complex::expi(step * T::from_usize(idx));
            acc = x.mul_add(w, acc);
        }
        *out = acc;
    }
    if dir == FftDirection::Inverse {
        let scale = T::from_usize(n).recip();
        for out in output.iter_mut() {
            *out = out.scale(scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = Complex<f64>;

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 8;
        let mut x = vec![C::zero(); n];
        x[0] = C::one();
        let mut out = vec![C::zero(); n];
        naive_dft(&x, &mut out, FftDirection::Forward);
        for v in &out {
            assert!((v.re - 1.0).abs() < 1e-14 && v.im.abs() < 1e-14);
        }
    }

    #[test]
    fn constant_concentrates_at_dc() {
        let n = 6;
        let x = vec![C::one(); n];
        let mut out = vec![C::zero(); n];
        naive_dft(&x, &mut out, FftDirection::Forward);
        assert!((out[0].re - n as f64).abs() < 1e-12);
        for v in &out[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let n = 12;
        let x: Vec<C> = (0..n).map(|j| C::new((j as f64).sin(), (j as f64 * 0.7).cos())).collect();
        let mut freq = vec![C::zero(); n];
        let mut back = vec![C::zero(); n];
        naive_dft(&x, &mut freq, FftDirection::Forward);
        naive_dft(&freq, &mut back, FftDirection::Inverse);
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 16;
        let k0 = 3usize;
        let x: Vec<C> = (0..n)
            .map(|j| C::expi(2.0 * std::f64::consts::PI * (j * k0) as f64 / n as f64))
            .collect();
        let mut out = vec![C::zero(); n];
        naive_dft(&x, &mut out, FftDirection::Forward);
        for (k, v) in out.iter().enumerate() {
            if k == k0 {
                assert!((v.re - n as f64).abs() < 1e-10);
            } else {
                assert!(v.abs() < 1e-10, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn empty_input_is_noop() {
        let x: Vec<C> = vec![];
        let mut out: Vec<C> = vec![];
        naive_dft(&x, &mut out, FftDirection::Forward);
    }
}
