//! Batched FFT execution — the stand-in for `cufftPlanMany`.
//!
//! FFTMatvec's phase 2 transforms `N_m` independent time series at once
//! (phase 4: `N_d` series). The batched drivers here run every series
//! through one cached plan (see [`crate::cache`]) and draw per-worker
//! scratch from a shared [`ScratchArena`] instead of allocating per call.
//! With the `parallel` feature the batch dimension is split across the
//! rayon pool's work chunks; `for_each_init` builds one arena checkout
//! per executed chunk (real-rayon semantics: roughly one per
//! participating worker, never one shared guard for the whole batch), so
//! at most one scratch buffer per concurrently-running worker is live at
//! a time. Chunk boundaries depend only on the batch size — not the
//! thread count — and every transform writes a disjoint output slice, so
//! batched results are byte-identical at any `RAYON_NUM_THREADS`.

use fftmatvec_numeric::{Complex, Real};
#[cfg(feature = "parallel")]
use rayon::prelude::*;

use crate::cache::{self, PlanHandle, RealPlanHandle};
use crate::plan::{FftDirection, FftPlan};
use crate::real::RealFftPlan;
use crate::scratch::ScratchArena;

/// Work below this many complex elements stays serial; smaller batches
/// are dominated by thread-pool dispatch.
#[cfg(feature = "parallel")]
const PAR_THRESHOLD: usize = 1 << 14;

/// Batched complex transforms sharing one cached [`FftPlan`].
pub struct BatchedFft<T: Real> {
    plan: PlanHandle<T>,
    arena: ScratchArena<T>,
}

impl<T: Real> BatchedFft<T> {
    pub fn new(n: usize) -> Self {
        let plan = cache::complex_plan::<T>(n);
        let arena = ScratchArena::new(plan.scratch_len());
        BatchedFft { plan, arena }
    }

    /// Transform length per batch item.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Access the underlying shared plan.
    pub fn plan(&self) -> &FftPlan<T> {
        &self.plan
    }

    /// The cache handle itself — clone it to share the plan elsewhere.
    pub fn plan_handle(&self) -> &PlanHandle<T> {
        &self.plan
    }

    /// Scratch buffers currently parked in this driver's arena
    /// (diagnostic: observes engine identity/reuse across reconfigures).
    pub fn scratch_pooled(&self) -> usize {
        self.arena.pooled()
    }

    /// Out-of-place batched transform. Layout is batch-major contiguous:
    /// `input[b*n..][..n]` is batch item `b`. Lengths must be equal and a
    /// multiple of `n`.
    pub fn process_batch(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        let n = self.plan.len();
        assert_eq!(input.len(), output.len(), "batched FFT in/out length mismatch");
        assert_eq!(input.len() % n, 0, "batched FFT length not a multiple of n");
        #[cfg(feature = "parallel")]
        if input.len() > PAR_THRESHOLD {
            input.par_chunks_exact(n).zip(output.par_chunks_exact_mut(n)).for_each_init(
                || self.arena.checkout(),
                |scratch, (i, o)| self.plan.process(i, o, scratch.as_mut_slice(), dir),
            );
            return;
        }
        let mut scratch = self.arena.checkout();
        for (i, o) in input.chunks_exact(n).zip(output.chunks_exact_mut(n)) {
            self.plan.process(i, o, scratch.as_mut_slice(), dir);
        }
    }

    /// In-place batched transform: each `data[b*n..][..n]` chunk is
    /// transformed in its own storage — the hot path when the caller owns
    /// the buffer and has no use for the untransformed data.
    pub fn process_batch_inplace(&self, data: &mut [Complex<T>], dir: FftDirection) {
        let n = self.plan.len();
        assert_eq!(data.len() % n, 0, "batched FFT length not a multiple of n");
        #[cfg(feature = "parallel")]
        if data.len() > PAR_THRESHOLD {
            data.par_chunks_exact_mut(n).for_each_init(
                || self.arena.checkout(),
                |scratch, chunk| self.plan.process_inplace(chunk, scratch.as_mut_slice(), dir),
            );
            return;
        }
        let mut scratch = self.arena.checkout();
        for chunk in data.chunks_exact_mut(n) {
            self.plan.process_inplace(chunk, scratch.as_mut_slice(), dir);
        }
    }

    /// Allocating forward batch.
    pub fn forward_batch_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); input.len()];
        self.process_batch(input, &mut out, FftDirection::Forward);
        out
    }

    /// Allocating inverse batch.
    pub fn inverse_batch_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); input.len()];
        self.process_batch(input, &mut out, FftDirection::Inverse);
        out
    }
}

/// Batched real transforms sharing one cached [`RealFftPlan`].
pub struct BatchedRealFft<T: Real> {
    plan: RealPlanHandle<T>,
    arena: ScratchArena<T>,
}

impl<T: Real> BatchedRealFft<T> {
    pub fn new(n: usize) -> Self {
        let plan = cache::real_plan::<T>(n);
        let arena = ScratchArena::new(plan.scratch_len());
        BatchedRealFft { plan, arena }
    }

    /// Real signal length per batch item.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Complex bins per batch item (`n/2 + 1`).
    pub fn spectrum_len(&self) -> usize {
        self.plan.spectrum_len()
    }

    /// Access the underlying shared plan.
    pub fn plan(&self) -> &RealFftPlan<T> {
        &self.plan
    }

    /// The cache handle itself — clone it to share the plan elsewhere.
    pub fn plan_handle(&self) -> &RealPlanHandle<T> {
        &self.plan
    }

    /// Scratch buffers currently parked in this driver's arena
    /// (diagnostic: observes engine identity/reuse across reconfigures).
    pub fn scratch_pooled(&self) -> usize {
        self.arena.pooled()
    }

    /// Batched forward R2C. `input.len() = batch·n`,
    /// `output.len() = batch·(n/2+1)`.
    pub fn forward_batch(&self, input: &[T], output: &mut [Complex<T>]) {
        let n = self.plan.len();
        let s = self.plan.spectrum_len();
        assert_eq!(input.len() % n, 0, "batched R2C input not a multiple of n");
        let batch = input.len() / n;
        assert_eq!(output.len(), batch * s, "batched R2C output length mismatch");
        #[cfg(feature = "parallel")]
        if input.len() > PAR_THRESHOLD {
            input.par_chunks_exact(n).zip(output.par_chunks_exact_mut(s)).for_each_init(
                || self.arena.checkout(),
                |scratch, (i, o)| self.plan.forward(i, o, scratch.as_mut_slice()),
            );
            return;
        }
        let mut scratch = self.arena.checkout();
        for (i, o) in input.chunks_exact(n).zip(output.chunks_exact_mut(s)) {
            self.plan.forward(i, o, scratch.as_mut_slice());
        }
    }

    /// Batched inverse C2R. `spectrum.len() = batch·(n/2+1)`,
    /// `output.len() = batch·n`.
    pub fn inverse_batch(&self, spectrum: &[Complex<T>], output: &mut [T]) {
        let n = self.plan.len();
        let s = self.plan.spectrum_len();
        assert_eq!(spectrum.len() % s, 0, "batched C2R spectrum not a multiple of bins");
        let batch = spectrum.len() / s;
        assert_eq!(output.len(), batch * n, "batched C2R output length mismatch");
        #[cfg(feature = "parallel")]
        if output.len() > PAR_THRESHOLD {
            spectrum.par_chunks_exact(s).zip(output.par_chunks_exact_mut(n)).for_each_init(
                || self.arena.checkout(),
                |scratch, (i, o)| self.plan.inverse(i, o, scratch.as_mut_slice()),
            );
            return;
        }
        let mut scratch = self.arena.checkout();
        for (i, o) in spectrum.chunks_exact(s).zip(output.chunks_exact_mut(n)) {
            self.plan.inverse(i, o, scratch.as_mut_slice());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::SplitMix64;

    type C = Complex<f64>;

    #[test]
    fn batch_matches_single_transforms() {
        let n = 200;
        let batch = 17;
        let mut rng = SplitMix64::new(4);
        let data: Vec<C> = (0..n * batch)
            .map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect();
        let bf = BatchedFft::<f64>::new(n);
        let got = bf.forward_batch_vec(&data);
        for b in 0..batch {
            let single = bf.plan().forward_vec(&data[b * n..(b + 1) * n]);
            for (g, s) in got[b * n..(b + 1) * n].iter().zip(&single) {
                assert!((*g - *s).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn inplace_batch_matches_out_of_place() {
        for (n, batch) in [(64usize, 9usize), (256, 128), (67, 5)] {
            let mut rng = SplitMix64::new(7);
            let data: Vec<C> = (0..n * batch)
                .map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
                .collect();
            let bf = BatchedFft::<f64>::new(n);
            let want = bf.forward_batch_vec(&data);
            let mut buf = data.clone();
            bf.process_batch_inplace(&mut buf, FftDirection::Forward);
            let err = buf.iter().zip(&want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-13, "n={n} batch={batch} err={err}");
        }
    }

    #[test]
    fn batched_drivers_share_cached_plans() {
        let a = BatchedFft::<f64>::new(192);
        let b = BatchedFft::<f64>::new(192);
        assert!(std::sync::Arc::ptr_eq(&a.plan, &b.plan), "plan cache must dedupe");
    }

    #[test]
    fn scratch_arena_recycles_across_batches() {
        let n = 128;
        let bf = BatchedFft::<f64>::new(n);
        let data = vec![C::one(); n * 4];
        let _ = bf.forward_batch_vec(&data);
        let pooled_after_first = bf.arena.pooled();
        assert!(pooled_after_first >= 1, "scratch must return to the arena");
        let _ = bf.forward_batch_vec(&data);
        assert_eq!(bf.arena.pooled(), pooled_after_first, "second batch reuses pooled scratch");
    }

    #[test]
    fn large_batch_takes_parallel_path_and_roundtrips() {
        let n = 256;
        let batch = 128; // n·batch > PAR_THRESHOLD
        let mut rng = SplitMix64::new(5);
        let data: Vec<C> = (0..n * batch)
            .map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect();
        let bf = BatchedFft::<f64>::new(n);
        let freq = bf.forward_batch_vec(&data);
        let back = bf.inverse_batch_vec(&freq);
        let err = back.iter().zip(&data).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-12);
    }

    #[test]
    fn real_batch_roundtrip() {
        let n = 2000; // 2·N_t for N_t = 1000
        let batch = 23;
        let mut rng = SplitMix64::new(6);
        let data: Vec<f64> = (0..n * batch).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let bf = BatchedRealFft::<f64>::new(n);
        let mut spec = vec![C::zero(); batch * bf.spectrum_len()];
        bf.forward_batch(&data, &mut spec);
        let mut back = vec![0.0; n * batch];
        bf.inverse_batch(&spec, &mut back);
        let err = back.iter().zip(&data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-12);
    }

    #[test]
    fn real_batch_matches_per_item() {
        let n = 64;
        let batch = 5;
        let mut rng = SplitMix64::new(8);
        let data: Vec<f64> = (0..n * batch).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let bf = BatchedRealFft::<f64>::new(n);
        let s = bf.spectrum_len();
        let mut spec = vec![C::zero(); batch * s];
        bf.forward_batch(&data, &mut spec);
        let mut scratch = vec![C::zero(); bf.plan().scratch_len()];
        for b in 0..batch {
            let mut single = vec![C::zero(); s];
            bf.plan().forward(&data[b * n..(b + 1) * n], &mut single, &mut scratch);
            for (g, want) in spec[b * s..(b + 1) * s].iter().zip(&single) {
                assert!((*g - *want).abs() < 1e-13);
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of n")]
    fn ragged_batch_rejected() {
        let bf = BatchedFft::<f64>::new(8);
        let data = vec![C::zero(); 12];
        let mut out = vec![C::zero(); 12];
        bf.process_batch(&data, &mut out, FftDirection::Forward);
    }
}
