//! N-dimensional FFT driver over nested cached 1-D plans.
//!
//! A separable N-d transform is a batched 1-D transform per axis. The
//! driver keeps one [`BatchedFft`] per axis — in the fastmat two-level
//! naming, the innermost axis engine is `planBlock` and the outermost is
//! `planWhole` — and every per-axis plan is resolved through the
//! process-wide `(n, precision, kind)` [`crate::cache`], so nested plans
//! share twiddle tables with each other and with every 1-D call site in
//! the process (asserted via `Arc::ptr_eq` in tests).
//!
//! Execution transforms the contiguous last axis in place, then rotates
//! that axis to the front ([`fftmatvec_numeric::ndindex`]) so the next
//! axis becomes contiguous; after `dims.len()` rounds the grid is back
//! in row-major layout with every axis transformed. The rotation
//! ping-pongs between the caller's grid and a caller-supplied partner
//! buffer of equal length, so the driver performs no allocation of its
//! own after the per-axis scratch arenas warm up.

use fftmatvec_numeric::ndindex::{rotate_last_to_front, total_len};
use fftmatvec_numeric::{Complex, Real};

use crate::batch::BatchedFft;
use crate::cache::PlanHandle;
use crate::plan::FftDirection;

/// Separable N-dimensional FFT over a dense row-major complex grid.
///
/// Forward is unscaled; inverse scales by `1/dims[i]` per axis, i.e.
/// `1/len()` overall, matching the 1-D convention, so
/// `process(Inverse)` ∘ `process(Forward)` is the identity up to
/// roundoff.
pub struct NdFft<T: Real> {
    dims: Vec<usize>,
    /// `axes[i]` transforms original axis `i` (length `dims[i]`).
    axes: Vec<BatchedFft<T>>,
}

impl<T: Real> NdFft<T> {
    /// Build the per-axis engines for a row-major grid of extents
    /// `dims`. Every extent must be non-zero (a zero-extent grid has no
    /// data to transform); panics otherwise, mirroring
    /// [`BatchedFft::new`] on length 0.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "NdFft needs at least one axis");
        assert!(dims.iter().all(|&d| d > 0), "NdFft axis extents must be non-zero");
        let axes = dims.iter().map(|&d| BatchedFft::new(d)).collect();
        NdFft { dims: dims.to_vec(), axes }
    }

    /// The grid extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Flat grid length (`∏ dims`).
    pub fn len(&self) -> usize {
        total_len(&self.dims)
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shared cache handle of axis `i`'s plan — clone to share, or
    /// `Arc::ptr_eq` against another handle to observe cache dedup.
    pub fn axis_plan(&self, i: usize) -> &PlanHandle<T> {
        self.axes[i].plan_handle()
    }

    /// Scratch buffers currently parked across all per-axis arenas
    /// (diagnostic: observes engine identity/reuse across reconfigures).
    pub fn scratch_pooled(&self) -> usize {
        self.axes.iter().map(BatchedFft::scratch_pooled).sum()
    }

    /// Transform the grid in `data` along every axis. `partner` is the
    /// rotation ping-pong buffer; both must have length [`len`](Self::len).
    /// The result always lands back in `data` (buffers are swapped, not
    /// copied, when a round ends in the partner), and the layout is the
    /// original row-major order. Allocation-free after warm-up.
    pub fn process(
        &self,
        data: &mut Vec<Complex<T>>,
        partner: &mut Vec<Complex<T>>,
        dir: FftDirection,
    ) {
        let n = self.len();
        assert_eq!(data.len(), n, "NdFft grid length");
        assert_eq!(partner.len(), n, "NdFft partner length");
        let rank = self.dims.len();
        if rank == 1 {
            self.axes[0].process_batch_inplace(data, dir);
            return;
        }
        for step in 0..rank {
            // After `step` rotations the original axis `rank-1-step` is
            // the contiguous last axis.
            let axis = rank - 1 - step;
            let last = self.dims[axis];
            self.axes[axis].process_batch_inplace(data, dir);
            rotate_last_to_front(n / last, last, data, partner);
            std::mem::swap(data, partner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;
    use fftmatvec_numeric::ndindex::strides_row_major;
    use fftmatvec_numeric::SplitMix64;
    use std::sync::Arc;

    type C64 = Complex<f64>;

    /// Reference: transform axis-by-axis with the naive DFT, gathering
    /// strided pencils explicitly.
    fn nd_dft_reference(dims: &[usize], data: &[C64], dir: FftDirection) -> Vec<C64> {
        let strides = strides_row_major(dims);
        let n = total_len(dims);
        let mut cur = data.to_vec();
        for (axis, &len) in dims.iter().enumerate() {
            let stride = strides[axis];
            let mut next = cur.clone();
            // Every pencil along `axis` starts at an offset whose axis
            // coordinate is zero.
            for base in 0..n {
                let coord = (base / stride) % len;
                if coord != 0 {
                    continue;
                }
                let pencil: Vec<C64> = (0..len).map(|k| cur[base + k * stride]).collect();
                let mut spec = vec![C64::new(0.0, 0.0); len];
                dft::naive_dft(&pencil, &mut spec, dir);
                for (k, v) in spec.into_iter().enumerate() {
                    next[base + k * stride] = v;
                }
            }
            cur = next;
        }
        cur
    }

    fn random_grid(dims: &[usize], seed: u64) -> Vec<C64> {
        let mut rng = SplitMix64::new(seed);
        (0..total_len(dims))
            .map(|_| C64::new(rng.next_f64() * 2.0 - 1.0, rng.next_f64() * 2.0 - 1.0))
            .collect()
    }

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let d = ((x.re - y.re).powi(2) + (x.im - y.im).powi(2)).sqrt();
            assert!(d < tol, "grid mismatch at {i}: {x:?} vs {y:?} (|Δ| = {d:.3e})");
        }
    }

    #[test]
    fn matches_reference_dft_2d_and_3d() {
        for dims in [vec![4usize, 6], vec![5, 3], vec![2, 3, 4]] {
            let grid = random_grid(&dims, 7 + dims.len() as u64);
            let nd = NdFft::<f64>::new(&dims);
            let mut a = grid.clone();
            let mut b = vec![C64::new(0.0, 0.0); a.len()];
            nd.process(&mut a, &mut b, FftDirection::Forward);
            let want = nd_dft_reference(&dims, &grid, FftDirection::Forward);
            assert_close(&a, &want, 1e-9);
        }
    }

    #[test]
    fn inverse_undoes_forward_with_unit_scaling() {
        let dims = [3usize, 8, 5];
        let grid = random_grid(&dims, 99);
        let nd = NdFft::<f64>::new(&dims);
        let mut a = grid.clone();
        let mut b = vec![C64::new(0.0, 0.0); a.len()];
        nd.process(&mut a, &mut b, FftDirection::Forward);
        nd.process(&mut a, &mut b, FftDirection::Inverse);
        assert_close(&a, &grid, 1e-10);
    }

    #[test]
    fn one_dimensional_grid_matches_plain_batched_fft() {
        let dims = [16usize];
        let grid = random_grid(&dims, 3);
        let nd = NdFft::<f64>::new(&dims);
        let mut a = grid.clone();
        let mut b = vec![C64::new(0.0, 0.0); a.len()];
        nd.process(&mut a, &mut b, FftDirection::Forward);
        let engine = BatchedFft::<f64>::new(16);
        let mut want = grid;
        engine.process_batch_inplace(&mut want, FftDirection::Forward);
        assert_close(&a, &want, 1e-12);
    }

    #[test]
    fn nested_plans_come_from_the_shared_cache() {
        // planBlock/planWhole style nesting: the inner axis of one grid,
        // the outer axis of another, and a direct 1-D driver must all
        // share one cached plan per (n, precision).
        let a = NdFft::<f64>::new(&[12, 30]);
        let b = NdFft::<f64>::new(&[30, 12]);
        let direct = BatchedFft::<f64>::new(30);
        assert!(Arc::ptr_eq(a.axis_plan(1), b.axis_plan(0)));
        assert!(Arc::ptr_eq(a.axis_plan(1), direct.plan_handle()));
        assert!(Arc::ptr_eq(a.axis_plan(0), b.axis_plan(1)));
        // Distinct lengths stay distinct.
        assert!(!Arc::ptr_eq(a.axis_plan(0), a.axis_plan(1)));
    }
}
