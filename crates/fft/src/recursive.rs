//! The seed's recursive mixed-radix FFT, kept as a reference baseline.
//!
//! This is the out-of-place decimation-in-time recursion the workspace
//! shipped with before the iterative Stockham engine
//! (`iterative` module) replaced it on the hot path. It is retained for
//! two jobs:
//!
//! * **Differential testing** — the two engines share no execution code,
//!   so agreement between them is strong evidence against schedule bugs.
//! * **Benchmark trajectory** — `bench_fft` times both engines and
//!   `bench/baseline.json` records the speedup of the iterative path over
//!   this one (the "seed recursive path" in the CI bench gate).
//!
//! Only lengths whose prime factors are ≤ [`MAX_RADIX`] are supported;
//! Bluestein-path sizes never used this code directly.

use fftmatvec_numeric::{Complex, Real};

use crate::plan::{factorize, FftDirection, MAX_RADIX};

/// One recursion level of the mixed-radix decomposition.
struct Level<T: Real> {
    /// Sub-transform size at this level.
    n: usize,
    /// Radix split off at this level.
    radix: usize,
    /// `n / radix`.
    m: usize,
    /// `twiddles[j] = e^{-2πij/n}` for `j in 0..n`.
    twiddles: Vec<Complex<T>>,
    /// `radix_roots[x] = e^{-2πix/r}` for `x in 0..r` (generic butterfly).
    radix_roots: Vec<Complex<T>>,
}

/// The seed recursive plan: build once, apply out-of-place with no scratch.
pub struct RecursiveFftPlan<T: Real> {
    n: usize,
    levels: Vec<Level<T>>,
}

fn twiddle_table<T: Real>(n: usize) -> Vec<Complex<T>> {
    let step = -2.0 * std::f64::consts::PI / n as f64;
    (0..n).map(|j| Complex::<f64>::expi(step * j as f64).cast()).collect()
}

impl<T: Real> RecursiveFftPlan<T> {
    /// Build a plan for length `n`. Panics if `n == 0` or `n` has a prime
    /// factor above [`MAX_RADIX`] (this baseline has no Bluestein path).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "RecursiveFftPlan length must be nonzero");
        let factors = factorize(n)
            .unwrap_or_else(|| panic!("RecursiveFftPlan: {n} has a prime factor > {MAX_RADIX}"));
        let mut levels = Vec::with_capacity(factors.len());
        let mut cur = n;
        for &r in &factors {
            levels.push(Level {
                n: cur,
                radix: r,
                m: cur / r,
                twiddles: twiddle_table::<T>(cur),
                radix_roots: twiddle_table::<T>(r),
            });
            cur /= r;
        }
        debug_assert_eq!(cur, 1);
        RecursiveFftPlan { n, levels }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Out-of-place transform; the recursion needs no scratch.
    pub fn process(&self, input: &[Complex<T>], output: &mut [Complex<T>], dir: FftDirection) {
        assert_eq!(input.len(), self.n, "RecursiveFftPlan input length mismatch");
        assert_eq!(output.len(), self.n, "RecursiveFftPlan output length mismatch");
        if self.levels.is_empty() {
            output[0] = input[0];
            return;
        }
        rec_fft(&self.levels, 0, input, 0, 1, output, dir);
        if dir == FftDirection::Inverse {
            let scale = T::from_usize(self.n).recip();
            for v in output.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// Allocating forward transform.
    pub fn forward_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); self.n];
        self.process(input, &mut out, FftDirection::Forward);
        out
    }

    /// Allocating inverse transform (scaled by `1/n`).
    pub fn inverse_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); self.n];
        self.process(input, &mut out, FftDirection::Inverse);
        out
    }
}

/// Recursive decimation-in-time step (verbatim seed algorithm).
///
/// `input[offset + j*stride]` for `j in 0..levels[lvl].n` is transformed
/// into `out` (contiguous). Sub-FFTs land in `out[q*m..][..m]`, then the
/// per-`u` combine gathers `{out[q*m+u]}`, twiddles, and scatters the
/// radix-point DFT back to `{out[u+v*m]}` — the same index set, so the
/// combine is in-place within `out` using a small stack buffer.
fn rec_fft<T: Real>(
    levels: &[Level<T>],
    lvl: usize,
    input: &[Complex<T>],
    offset: usize,
    stride: usize,
    out: &mut [Complex<T>],
    dir: FftDirection,
) {
    if lvl == levels.len() {
        out[0] = input[offset];
        return;
    }
    let level = &levels[lvl];
    let r = level.radix;
    let m = level.m;
    debug_assert_eq!(out.len(), level.n);

    for q in 0..r {
        rec_fft(
            levels,
            lvl + 1,
            input,
            offset + q * stride,
            stride * r,
            &mut out[q * m..(q + 1) * m],
            dir,
        );
    }

    let inverse = dir == FftDirection::Inverse;
    let mut t = [Complex::<T>::zero(); MAX_RADIX + 1];
    for u in 0..m {
        // Gather + twiddle.
        for q in 0..r {
            let mut w = level.twiddles[q * u];
            if inverse {
                w = w.conj();
            }
            t[q] = out[q * m + u] * w;
        }
        // Radix-point DFT across the gathered values.
        match r {
            2 => {
                out[u] = t[0] + t[1];
                out[u + m] = t[0] - t[1];
            }
            4 => {
                let e = t[0] + t[2];
                let f = t[0] - t[2];
                let g = t[1] + t[3];
                let h = t[1] - t[3];
                // ±i·h depending on direction.
                let ih =
                    if inverse { Complex::new(-h.im, h.re) } else { Complex::new(h.im, -h.re) };
                out[u] = e + g;
                out[u + m] = f + ih;
                out[u + 2 * m] = e - g;
                out[u + 3 * m] = f - ih;
            }
            _ => {
                for v in 0..r {
                    let mut acc = t[0];
                    for q in 1..r {
                        let mut w = level.radix_roots[(q * v) % r];
                        if inverse {
                            w = w.conj();
                        }
                        acc = t[q].mul_add(w, acc);
                    }
                    out[u + v * m] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;
    use fftmatvec_numeric::SplitMix64;

    type C = Complex<f64>;

    fn random_signal(n: usize, seed: u64) -> Vec<C> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
    }

    #[test]
    fn recursive_and_iterative_engines_agree() {
        // Differential test: no shared execution code between the engines.
        for n in [1usize, 2, 6, 8, 30, 64, 200, 500, 1024, 2000, 2048] {
            let x = random_signal(n, n as u64);
            let seed_plan = RecursiveFftPlan::<f64>::new(n);
            let plan = FftPlan::<f64>::new(n);
            for dir in [FftDirection::Forward, FftDirection::Inverse] {
                let mut a = vec![C::zero(); n];
                seed_plan.process(&x, &mut a, dir);
                let mut b = vec![C::zero(); n];
                let mut scratch = vec![C::zero(); plan.scratch_len()];
                plan.process(&x, &mut b, &mut scratch, dir);
                let err = a.iter().zip(&b).map(|(p, q)| (*p - *q).abs()).fold(0.0, f64::max);
                assert!(err < 1e-11 * (n.max(2) as f64), "n={n} {dir:?} err={err}");
            }
        }
    }

    #[test]
    fn recursive_roundtrip() {
        let n = 2000;
        let x = random_signal(n, 9);
        let plan = RecursiveFftPlan::<f64>::new(n);
        let back = plan.inverse_vec(&plan.forward_vec(&x));
        let err = back.iter().zip(&x).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-12);
    }

    #[test]
    #[should_panic(expected = "prime factor")]
    fn bluestein_sizes_rejected() {
        let _ = RecursiveFftPlan::<f64>::new(67);
    }
}
