//! AVX2+FMA butterfly kernels. Bit-identical to the scalar stage loops
//! in [`crate::iterative`]; see the module doc of [`super`] for the
//! identity argument and `fftmatvec_numeric::simd::x86` for the shared
//! complex/conversion building blocks.
//!
//! # Safety
//!
//! Uniform contract for every function: the caller must guarantee the
//! host supports AVX2 and FMA (the dispatcher checks `level_supported`).
//! Slices are accessed unaligned.
#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

use fftmatvec_numeric::half::{bf16, f16};
use fftmatvec_numeric::simd::x86::{
    cmul_pd, cmul_ps, dup_im_ps, dup_re_ps, narrow8_bf16, narrow8_f16, neg_even_pd, neg_even_ps,
    neg_odd_pd, neg_odd_ps, round8_bf16, round8_f16, swap_pairs_pd, swap_pairs_ps, widen8_bf16,
    widen8_f16,
};
use fftmatvec_numeric::Complex;

/// Broadcast one complex twiddle into `[re, im]×4` and `[im, re]×4`.
#[target_feature(enable = "avx2,fma")]
unsafe fn bcast_pair_ps(w: Complex<f32>) -> (__m256, __m256) {
    (
        _mm256_setr_ps(w.re, w.im, w.re, w.im, w.re, w.im, w.re, w.im),
        _mm256_setr_ps(w.im, w.re, w.im, w.re, w.im, w.re, w.im, w.re),
    )
}

/// Broadcast one complex twiddle into `[re, im]×2` and `[im, re]×2`.
#[target_feature(enable = "avx2,fma")]
unsafe fn bcast_pair_pd(w: Complex<f64>) -> (__m256d, __m256d) {
    (_mm256_setr_pd(w.re, w.im, w.re, w.im), _mm256_setr_pd(w.im, w.re, w.im, w.re))
}

// ---------------------------------------------------------------------------
// f32 / f64 stages (native lanes, no storage rounding)
// ---------------------------------------------------------------------------

/// Radix-2 Stockham stage over `Complex<f32>`, 4 butterflies per step.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn radix2_f32(
    src: &[Complex<f32>],
    dst: &mut [Complex<f32>],
    m: usize,
    s: usize,
    tw: &[Complex<f32>],
    inverse: bool,
) {
    let sm = s * m;
    let sp = src.as_ptr() as *const f32;
    let dp = dst.as_mut_ptr() as *mut f32;
    for p in 0..m {
        let mut w = tw[p];
        if inverse {
            w = w.conj();
        }
        let (w_ri, w_swap) = bcast_pair_ps(w);
        let i0 = s * p;
        let o0 = 2 * s * p;
        let mut q = 0;
        while q + 4 <= s {
            let a = _mm256_loadu_ps(sp.add(2 * (i0 + q)));
            let b = _mm256_loadu_ps(sp.add(2 * (i0 + sm + q)));
            _mm256_storeu_ps(dp.add(2 * (o0 + q)), _mm256_add_ps(a, b));
            let prod = cmul_ps(_mm256_sub_ps(a, b), w_ri, w_swap);
            _mm256_storeu_ps(dp.add(2 * (o0 + s + q)), prod);
            q += 4;
        }
        while q < s {
            let a = src[i0 + q];
            let b = src[i0 + sm + q];
            dst[o0 + q] = a + b;
            dst[o0 + s + q] = (a - b) * w;
            q += 1;
        }
    }
}

/// Radix-2 Stockham stage over `Complex<f64>`, 2 butterflies per step.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn radix2_f64(
    src: &[Complex<f64>],
    dst: &mut [Complex<f64>],
    m: usize,
    s: usize,
    tw: &[Complex<f64>],
    inverse: bool,
) {
    let sm = s * m;
    let sp = src.as_ptr() as *const f64;
    let dp = dst.as_mut_ptr() as *mut f64;
    for p in 0..m {
        let mut w = tw[p];
        if inverse {
            w = w.conj();
        }
        let (w_ri, w_swap) = bcast_pair_pd(w);
        let i0 = s * p;
        let o0 = 2 * s * p;
        let mut q = 0;
        while q + 2 <= s {
            let a = _mm256_loadu_pd(sp.add(2 * (i0 + q)));
            let b = _mm256_loadu_pd(sp.add(2 * (i0 + sm + q)));
            _mm256_storeu_pd(dp.add(2 * (o0 + q)), _mm256_add_pd(a, b));
            let prod = cmul_pd(_mm256_sub_pd(a, b), w_ri, w_swap);
            _mm256_storeu_pd(dp.add(2 * (o0 + s + q)), prod);
            q += 2;
        }
        while q < s {
            let a = src[i0 + q];
            let b = src[i0 + sm + q];
            dst[o0 + q] = a + b;
            dst[o0 + s + q] = (a - b) * w;
            q += 1;
        }
    }
}

/// Radix-4 Stockham stage over `Complex<f32>`, 4 butterflies per step.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn radix4_f32(
    src: &[Complex<f32>],
    dst: &mut [Complex<f32>],
    m: usize,
    s: usize,
    tw: &[Complex<f32>],
    inverse: bool,
) {
    let sm = s * m;
    let sp = src.as_ptr() as *const f32;
    let dp = dst.as_mut_ptr() as *mut f32;
    for p in 0..m {
        let (mut w1, mut w2, mut w3) = (tw[3 * p], tw[3 * p + 1], tw[3 * p + 2]);
        if inverse {
            w1 = w1.conj();
            w2 = w2.conj();
            w3 = w3.conj();
        }
        let (w1_ri, w1_sw) = bcast_pair_ps(w1);
        let (w2_ri, w2_sw) = bcast_pair_ps(w2);
        let (w3_ri, w3_sw) = bcast_pair_ps(w3);
        let i0 = s * p;
        let o0 = 4 * s * p;
        let mut q = 0;
        while q + 4 <= s {
            let t0 = _mm256_loadu_ps(sp.add(2 * (i0 + q)));
            let t1 = _mm256_loadu_ps(sp.add(2 * (i0 + sm + q)));
            let t2 = _mm256_loadu_ps(sp.add(2 * (i0 + 2 * sm + q)));
            let t3 = _mm256_loadu_ps(sp.add(2 * (i0 + 3 * sm + q)));
            let e = _mm256_add_ps(t0, t2);
            let f = _mm256_sub_ps(t0, t2);
            let g = _mm256_add_ps(t1, t3);
            let h = _mm256_sub_ps(t1, t3);
            // ∓i·h: swap (re, im) then flip one sign — exact bit ops,
            // matching `Complex::new(±h.im, ∓h.re)`.
            let ih =
                if inverse { neg_even_ps(swap_pairs_ps(h)) } else { neg_odd_ps(swap_pairs_ps(h)) };
            _mm256_storeu_ps(dp.add(2 * (o0 + q)), _mm256_add_ps(e, g));
            let o1 = cmul_ps(_mm256_add_ps(f, ih), w1_ri, w1_sw);
            _mm256_storeu_ps(dp.add(2 * (o0 + s + q)), o1);
            let o2 = cmul_ps(_mm256_sub_ps(e, g), w2_ri, w2_sw);
            _mm256_storeu_ps(dp.add(2 * (o0 + 2 * s + q)), o2);
            let o3 = cmul_ps(_mm256_sub_ps(f, ih), w3_ri, w3_sw);
            _mm256_storeu_ps(dp.add(2 * (o0 + 3 * s + q)), o3);
            q += 4;
        }
        while q < s {
            radix4_scalar_tail(src, dst, i0, o0, sm, s, q, w1, w2, w3, inverse);
            q += 1;
        }
    }
}

/// Radix-4 Stockham stage over `Complex<f64>`, 2 butterflies per step.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn radix4_f64(
    src: &[Complex<f64>],
    dst: &mut [Complex<f64>],
    m: usize,
    s: usize,
    tw: &[Complex<f64>],
    inverse: bool,
) {
    let sm = s * m;
    let sp = src.as_ptr() as *const f64;
    let dp = dst.as_mut_ptr() as *mut f64;
    for p in 0..m {
        let (mut w1, mut w2, mut w3) = (tw[3 * p], tw[3 * p + 1], tw[3 * p + 2]);
        if inverse {
            w1 = w1.conj();
            w2 = w2.conj();
            w3 = w3.conj();
        }
        let (w1_ri, w1_sw) = bcast_pair_pd(w1);
        let (w2_ri, w2_sw) = bcast_pair_pd(w2);
        let (w3_ri, w3_sw) = bcast_pair_pd(w3);
        let i0 = s * p;
        let o0 = 4 * s * p;
        let mut q = 0;
        while q + 2 <= s {
            let t0 = _mm256_loadu_pd(sp.add(2 * (i0 + q)));
            let t1 = _mm256_loadu_pd(sp.add(2 * (i0 + sm + q)));
            let t2 = _mm256_loadu_pd(sp.add(2 * (i0 + 2 * sm + q)));
            let t3 = _mm256_loadu_pd(sp.add(2 * (i0 + 3 * sm + q)));
            let e = _mm256_add_pd(t0, t2);
            let f = _mm256_sub_pd(t0, t2);
            let g = _mm256_add_pd(t1, t3);
            let h = _mm256_sub_pd(t1, t3);
            let ih =
                if inverse { neg_even_pd(swap_pairs_pd(h)) } else { neg_odd_pd(swap_pairs_pd(h)) };
            _mm256_storeu_pd(dp.add(2 * (o0 + q)), _mm256_add_pd(e, g));
            let o1 = cmul_pd(_mm256_add_pd(f, ih), w1_ri, w1_sw);
            _mm256_storeu_pd(dp.add(2 * (o0 + s + q)), o1);
            let o2 = cmul_pd(_mm256_sub_pd(e, g), w2_ri, w2_sw);
            _mm256_storeu_pd(dp.add(2 * (o0 + 2 * s + q)), o2);
            let o3 = cmul_pd(_mm256_sub_pd(f, ih), w3_ri, w3_sw);
            _mm256_storeu_pd(dp.add(2 * (o0 + 3 * s + q)), o3);
            q += 2;
        }
        while q < s {
            radix4_scalar_tail(src, dst, i0, o0, sm, s, q, w1, w2, w3, inverse);
            q += 1;
        }
    }
}

/// One scalar radix-4 butterfly — the identical expression tree the
/// vector body evaluates, for remainder elements.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn radix4_scalar_tail<T: fftmatvec_numeric::Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    i0: usize,
    o0: usize,
    sm: usize,
    s: usize,
    q: usize,
    w1: Complex<T>,
    w2: Complex<T>,
    w3: Complex<T>,
    inverse: bool,
) {
    let t0 = src[i0 + q];
    let t1 = src[i0 + sm + q];
    let t2 = src[i0 + 2 * sm + q];
    let t3 = src[i0 + 3 * sm + q];
    let e = t0 + t2;
    let f = t0 - t2;
    let g = t1 + t3;
    let h = t1 - t3;
    let ih = if inverse { Complex::new(-h.im, h.re) } else { Complex::new(h.im, -h.re) };
    dst[o0 + q] = e + g;
    dst[o0 + s + q] = (f + ih) * w1;
    dst[o0 + 2 * s + q] = (e - g) * w2;
    dst[o0 + 3 * s + q] = (f - ih) * w3;
}

/// Pointwise `a[i] *= b[i]` over `Complex<f32>`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn pointwise_mul_f32(a: &mut [Complex<f32>], b: &[Complex<f32>]) {
    let n = a.len();
    let ap = a.as_mut_ptr() as *mut f32;
    let bp = b.as_ptr() as *const f32;
    let mut i = 0;
    while i + 4 <= n {
        let v = _mm256_loadu_ps(ap.add(2 * i));
        let w = _mm256_loadu_ps(bp.add(2 * i));
        _mm256_storeu_ps(ap.add(2 * i), cmul_ps(v, w, swap_pairs_ps(w)));
        i += 4;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

/// Pointwise `a[i] *= b[i]` over `Complex<f64>`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn pointwise_mul_f64(a: &mut [Complex<f64>], b: &[Complex<f64>]) {
    let n = a.len();
    let ap = a.as_mut_ptr() as *mut f64;
    let bp = b.as_ptr() as *const f64;
    let mut i = 0;
    while i + 2 <= n {
        let v = _mm256_loadu_pd(ap.add(2 * i));
        let w = _mm256_loadu_pd(bp.add(2 * i));
        _mm256_storeu_pd(ap.add(2 * i), cmul_pd(v, w, swap_pairs_pd(w)));
        i += 2;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// 16-bit stages: widen to f32 registers, round through storage after
// every operation — exactly where the emulated scalar arithmetic rounds.
// ---------------------------------------------------------------------------

macro_rules! half_kernels {
    ($t:ty, $radix2:ident, $radix4:ident, $pmul:ident, $widen8:ident, $narrow8:ident,
     $round8:ident) => {
        /// Radix-2 stage over 4 widened 16-bit complex values per step.
        /// Rounding points match the scalar emulated arithmetic:
        /// `a+b` and `a−b` round once each; the twiddle multiply rounds
        /// its inner product, then its FMA result.
        #[target_feature(enable = "avx2,fma")]
        pub unsafe fn $radix2(
            src: &[Complex<$t>],
            dst: &mut [Complex<$t>],
            m: usize,
            s: usize,
            tw: &[Complex<$t>],
            inverse: bool,
        ) {
            let sm = s * m;
            let sp = src.as_ptr() as *const u16;
            let dp = dst.as_mut_ptr() as *mut u16;
            for p in 0..m {
                let mut w = tw[p];
                if inverse {
                    w = w.conj();
                }
                // Widening to f32 is exact; broadcast the widened pair.
                let (w_ri, w_swap) = bcast_pair_ps(Complex::new(w.re.to_f32(), w.im.to_f32()));
                let i0 = s * p;
                let o0 = 2 * s * p;
                let mut q = 0;
                while q + 4 <= s {
                    let a = $widen8(_mm_loadu_si128(sp.add(2 * (i0 + q)) as *const __m128i));
                    let b = $widen8(_mm_loadu_si128(sp.add(2 * (i0 + sm + q)) as *const __m128i));
                    let sum = $narrow8(_mm256_add_ps(a, b));
                    _mm_storeu_si128(dp.add(2 * (o0 + q)) as *mut __m128i, sum);
                    let d = $round8(_mm256_sub_ps(a, b));
                    let inner = neg_even_ps($round8(_mm256_mul_ps(dup_im_ps(d), w_swap)));
                    let prod = $narrow8(_mm256_fmadd_ps(dup_re_ps(d), w_ri, inner));
                    _mm_storeu_si128(dp.add(2 * (o0 + s + q)) as *mut __m128i, prod);
                    q += 4;
                }
                while q < s {
                    let a = src[i0 + q];
                    let b = src[i0 + sm + q];
                    dst[o0 + q] = a + b;
                    dst[o0 + s + q] = (a - b) * w;
                    q += 1;
                }
            }
        }

        /// Radix-4 stage over 4 widened 16-bit complex values per step.
        #[target_feature(enable = "avx2,fma")]
        pub unsafe fn $radix4(
            src: &[Complex<$t>],
            dst: &mut [Complex<$t>],
            m: usize,
            s: usize,
            tw: &[Complex<$t>],
            inverse: bool,
        ) {
            let sm = s * m;
            let sp = src.as_ptr() as *const u16;
            let dp = dst.as_mut_ptr() as *mut u16;
            for p in 0..m {
                let (mut w1, mut w2, mut w3) = (tw[3 * p], tw[3 * p + 1], tw[3 * p + 2]);
                if inverse {
                    w1 = w1.conj();
                    w2 = w2.conj();
                    w3 = w3.conj();
                }
                let (w1_ri, w1_sw) = bcast_pair_ps(Complex::new(w1.re.to_f32(), w1.im.to_f32()));
                let (w2_ri, w2_sw) = bcast_pair_ps(Complex::new(w2.re.to_f32(), w2.im.to_f32()));
                let (w3_ri, w3_sw) = bcast_pair_ps(Complex::new(w3.re.to_f32(), w3.im.to_f32()));
                let i0 = s * p;
                let o0 = 4 * s * p;
                let mut q = 0;
                while q + 4 <= s {
                    let t0 = $widen8(_mm_loadu_si128(sp.add(2 * (i0 + q)) as *const __m128i));
                    let t1 = $widen8(_mm_loadu_si128(sp.add(2 * (i0 + sm + q)) as *const __m128i));
                    let t2 =
                        $widen8(_mm_loadu_si128(sp.add(2 * (i0 + 2 * sm + q)) as *const __m128i));
                    let t3 =
                        $widen8(_mm_loadu_si128(sp.add(2 * (i0 + 3 * sm + q)) as *const __m128i));
                    let e = $round8(_mm256_add_ps(t0, t2));
                    let f = $round8(_mm256_sub_ps(t0, t2));
                    let g = $round8(_mm256_add_ps(t1, t3));
                    let h = $round8(_mm256_sub_ps(t1, t3));
                    // Exact data movement + sign flip on already-rounded
                    // values — no further rounding, as in the scalar code.
                    let ih = if inverse {
                        neg_even_ps(swap_pairs_ps(h))
                    } else {
                        neg_odd_ps(swap_pairs_ps(h))
                    };
                    let sum = $narrow8(_mm256_add_ps(e, g));
                    _mm_storeu_si128(dp.add(2 * (o0 + q)) as *mut __m128i, sum);
                    let x1 = $round8(_mm256_add_ps(f, ih));
                    let inner1 = neg_even_ps($round8(_mm256_mul_ps(dup_im_ps(x1), w1_sw)));
                    let o1 = $narrow8(_mm256_fmadd_ps(dup_re_ps(x1), w1_ri, inner1));
                    _mm_storeu_si128(dp.add(2 * (o0 + s + q)) as *mut __m128i, o1);
                    let x2 = $round8(_mm256_sub_ps(e, g));
                    let inner2 = neg_even_ps($round8(_mm256_mul_ps(dup_im_ps(x2), w2_sw)));
                    let o2 = $narrow8(_mm256_fmadd_ps(dup_re_ps(x2), w2_ri, inner2));
                    _mm_storeu_si128(dp.add(2 * (o0 + 2 * s + q)) as *mut __m128i, o2);
                    let x3 = $round8(_mm256_sub_ps(f, ih));
                    let inner3 = neg_even_ps($round8(_mm256_mul_ps(dup_im_ps(x3), w3_sw)));
                    let o3 = $narrow8(_mm256_fmadd_ps(dup_re_ps(x3), w3_ri, inner3));
                    _mm_storeu_si128(dp.add(2 * (o0 + 3 * s + q)) as *mut __m128i, o3);
                    q += 4;
                }
                while q < s {
                    radix4_scalar_tail(src, dst, i0, o0, sm, s, q, w1, w2, w3, inverse);
                    q += 1;
                }
            }
        }

        /// Pointwise `a[i] *= b[i]` over 16-bit complex values.
        #[target_feature(enable = "avx2,fma")]
        pub unsafe fn $pmul(a: &mut [Complex<$t>], b: &[Complex<$t>]) {
            let n = a.len();
            let ap = a.as_mut_ptr() as *mut u16;
            let bp = b.as_ptr() as *const u16;
            let mut i = 0;
            while i + 4 <= n {
                let v = $widen8(_mm_loadu_si128(ap.add(2 * i) as *const __m128i));
                let w = $widen8(_mm_loadu_si128(bp.add(2 * i) as *const __m128i));
                let inner = neg_even_ps($round8(_mm256_mul_ps(dup_im_ps(v), swap_pairs_ps(w))));
                let out = $narrow8(_mm256_fmadd_ps(dup_re_ps(v), w, inner));
                _mm_storeu_si128(ap.add(2 * i) as *mut __m128i, out);
                i += 4;
            }
            while i < n {
                a[i] *= b[i];
                i += 1;
            }
        }
    };
}

half_kernels!(f16, radix2_f16, radix4_f16, pointwise_mul_f16, widen8_f16, narrow8_f16, round8_f16);
half_kernels!(
    bf16,
    radix2_bf16,
    radix4_bf16,
    pointwise_mul_bf16,
    widen8_bf16,
    narrow8_bf16,
    round8_bf16
);
