//! Real-to-complex and complex-to-real transforms.
//!
//! FFTMatvec's time-domain vectors are real; using the packed half-length
//! trick halves both FFT work and — crucially for the paper's analysis —
//! the frequency-domain batch count: a real signal of length `n = 2·N_t`
//! has `n/2 + 1 = N_t + 1` independent complex bins, which is exactly the
//! SBGEMV batch size quoted in Section 2.4.
//!
//! The half-length complex plan is shared through [`crate::cache`] (so a
//! real plan and a complex plan of length `n/2` cost one twiddle set), and
//! both directions run it in place on the packed buffer: scratch is the
//! packed signal plus the half plan's ping-pong partner,
//! `n/2 + half.scratch_len()` elements — half the seed's requirement.
//!
//! Conventions match [`crate::FftPlan`]: forward unscaled, inverse scaled
//! so `inverse(forward(x)) == x`.

use fftmatvec_numeric::{Complex, Real};

use crate::cache::{self, PlanHandle};
use crate::plan::FftDirection;

/// Plan for transforms of real signals of even length `n`.
pub struct RealFftPlan<T: Real> {
    n: usize,
    /// Shared half-length complex plan.
    half: PlanHandle<T>,
    /// `w[k] = e^{-2πik/n}` for `k in 0..n/2` (unpack twiddles).
    twiddles: Vec<Complex<T>>,
}

impl<T: Real> RealFftPlan<T> {
    /// Build a plan. `n` must be even and ≥ 2 (FFTMatvec always transforms
    /// padded signals of length `2·N_t`). Prefer [`crate::cache::real_plan`]
    /// for a shared, cached plan.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n % 2 == 0, "RealFftPlan requires even n >= 2, got {n}");
        let h = n / 2;
        let step = -2.0 * std::f64::consts::PI / n as f64;
        let twiddles = (0..h).map(|k| Complex::<f64>::expi(step * k as f64).cast()).collect();
        RealFftPlan { n, half: cache::complex_plan::<T>(h), twiddles }
    }

    /// Real signal length `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex bins produced by the forward transform: `n/2 + 1`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Scratch requirement (complex elements) for both directions: the
    /// packed half-length signal plus the half plan's own scratch.
    pub fn scratch_len(&self) -> usize {
        self.n / 2 + self.half.scratch_len()
    }

    /// Forward R2C: `input.len() == n`, `output.len() == n/2 + 1`.
    pub fn forward(&self, input: &[T], output: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        let h = self.n / 2;
        assert_eq!(input.len(), self.n, "RealFftPlan forward input length");
        assert_eq!(output.len(), h + 1, "RealFftPlan forward output length");
        assert!(scratch.len() >= self.scratch_len(), "RealFftPlan scratch too small");
        let (z, inner_scratch) = scratch.split_at_mut(h);

        // Pack pairs of reals into complex: z[j] = x[2j] + i·x[2j+1],
        // then Z = FFT_h(z) in place.
        for (j, zj) in z.iter_mut().enumerate() {
            *zj = Complex::new(input[2 * j], input[2 * j + 1]);
        }
        self.half.process_inplace(z, inner_scratch, FftDirection::Forward);

        // Unpack: split Z into the spectra of even/odd samples and stitch.
        let half = T::from_f64(0.5);
        output[0] = Complex::from_real(z[0].re + z[0].im);
        output[h] = Complex::from_real(z[0].re - z[0].im);
        let mut k = 1;
        while 2 * k < h {
            let zk = z[k];
            let zc = z[h - k].conj();
            let ze = (zk + zc).scale(half);
            // zo = (zk − zc)/(2i) = −i·(zk − zc)/2
            let d = (zk - zc).scale(half);
            let zo = Complex::new(d.im, -d.re);
            let t = self.twiddles[k] * zo;
            output[k] = ze + t;
            output[h - k] = (ze - t).conj();
            k += 1;
        }
        if h % 2 == 0 && h >= 2 {
            // Self-paired bin: X[h/2] = conj(Z[h/2]).
            output[h / 2] = z[h / 2].conj();
        }
    }

    /// Inverse C2R: `spectrum.len() == n/2 + 1`, `output.len() == n`.
    /// Includes the `1/n` scaling so it inverts [`RealFftPlan::forward`].
    pub fn inverse(&self, spectrum: &[Complex<T>], output: &mut [T], scratch: &mut [Complex<T>]) {
        let h = self.n / 2;
        assert_eq!(spectrum.len(), h + 1, "RealFftPlan inverse spectrum length");
        assert_eq!(output.len(), self.n, "RealFftPlan inverse output length");
        assert!(scratch.len() >= self.scratch_len(), "RealFftPlan scratch too small");
        let (z, inner_scratch) = scratch.split_at_mut(h);

        // Repack the spectrum into Z (the FFT of the packed signal).
        let half = T::from_f64(0.5);
        z[0] = Complex::new(
            (spectrum[0].re + spectrum[h].re) * half,
            (spectrum[0].re - spectrum[h].re) * half,
        );
        let mut k = 1;
        while 2 * k < h {
            let xk = spectrum[k];
            let xc = spectrum[h - k].conj();
            let ze = (xk + xc).scale(half);
            let t = (xk - xc).scale(half);
            // zo = conj(w^k)·t
            let zo = self.twiddles[k].conj() * t;
            // Z[k] = ze + i·zo ; Z[h−k] = conj(ze) + i·conj(zo)
            z[k] = Complex::new(ze.re - zo.im, ze.im + zo.re);
            let zec = ze.conj();
            let zoc = zo.conj();
            z[h - k] = Complex::new(zec.re - zoc.im, zec.im + zoc.re);
            k += 1;
        }
        if h % 2 == 0 && h >= 2 {
            z[h / 2] = spectrum[h / 2].conj();
        }

        // z = IFFT_h(Z) in place (scaled 1/h); the even/odd stitching above
        // already accounts for the remaining factor of two, so unpacking
        // the interleaved reals completes the exact inverse.
        self.half.process_inplace(z, inner_scratch, FftDirection::Inverse);
        for (j, t) in z.iter().enumerate() {
            output[2 * j] = t.re;
            output[2 * j + 1] = t.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_dft;
    use fftmatvec_numeric::SplitMix64;

    type C = Complex<f64>;

    fn random_real(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    /// Reference: complex DFT of the real signal, truncated to n/2+1 bins.
    fn reference_spectrum(x: &[f64]) -> Vec<C> {
        let n = x.len();
        let cx: Vec<C> = x.iter().map(|&v| C::from_real(v)).collect();
        let mut full = vec![C::zero(); n];
        naive_dft(&cx, &mut full, FftDirection::Forward);
        full[..n / 2 + 1].to_vec()
    }

    fn forward(plan: &RealFftPlan<f64>, x: &[f64]) -> Vec<C> {
        let mut out = vec![C::zero(); plan.spectrum_len()];
        let mut scratch = vec![C::zero(); plan.scratch_len()];
        plan.forward(x, &mut out, &mut scratch);
        out
    }

    fn inverse(plan: &RealFftPlan<f64>, s: &[C]) -> Vec<f64> {
        let mut out = vec![0.0; plan.len()];
        let mut scratch = vec![C::zero(); plan.scratch_len()];
        plan.inverse(s, &mut out, &mut scratch);
        out
    }

    #[test]
    fn forward_matches_complex_dft() {
        for n in [2usize, 4, 6, 8, 10, 16, 20, 30, 64, 100, 200] {
            let x = random_real(n, n as u64);
            let plan = RealFftPlan::<f64>::new(n);
            let fast = forward(&plan, &x);
            let slow = reference_spectrum(&x);
            let err = fast.iter().zip(&slow).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn roundtrip_exact_lengths() {
        for n in [2usize, 4, 8, 50, 128, 2000] {
            let x = random_real(n, 7 * n as u64 + 1);
            let plan = RealFftPlan::<f64>::new(n);
            let spec = forward(&plan, &x);
            let back = inverse(&plan, &spec);
            let err = back.iter().zip(&x).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-12, "n={n} err={err}");
        }
    }

    #[test]
    fn scratch_is_half_plus_inner() {
        // The in-place half transform tightened the contract from the
        // seed's `n + inner` to `n/2 + inner`.
        let plan = RealFftPlan::<f64>::new(2048);
        assert_eq!(plan.scratch_len(), 1024 + 1024);
        let tiny = RealFftPlan::<f64>::new(4); // half plan is single-stage
        assert_eq!(tiny.scratch_len(), 2);
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 32;
        let x = random_real(n, 3);
        let plan = RealFftPlan::<f64>::new(n);
        let spec = forward(&plan, &x);
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[n / 2].im, 0.0);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-12);
        let alt: f64 = x.iter().enumerate().map(|(j, &v)| if j % 2 == 0 { v } else { -v }).sum();
        assert!((spec[n / 2].re - alt).abs() < 1e-12);
    }

    #[test]
    fn spectrum_len_is_nt_plus_one() {
        // n = 2·N_t ⇒ N_t + 1 bins, the paper's SBGEMV batch count.
        let nt = 1000;
        let plan = RealFftPlan::<f64>::new(2 * nt);
        assert_eq!(plan.spectrum_len(), nt + 1);
    }

    #[test]
    fn f32_roundtrip() {
        let n = 2000usize;
        let mut rng = SplitMix64::new(11);
        let x: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
        let plan = RealFftPlan::<f32>::new(n);
        let mut spec = vec![Complex::<f32>::zero(); plan.spectrum_len()];
        let mut scratch = vec![Complex::<f32>::zero(); plan.scratch_len()];
        plan.forward(&x, &mut spec, &mut scratch);
        let mut back = vec![0.0f32; n];
        plan.inverse(&spec, &mut back, &mut scratch);
        let err = back.iter().zip(&x).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        let _ = RealFftPlan::<f64>::new(9);
    }
}
