//! Bluestein's chirp-z algorithm for lengths with large prime factors.
//!
//! Rewrites an arbitrary-length DFT as a circular convolution of length
//! `m` (the next power of two ≥ `2n−1`), which the iterative engine
//! handles natively:
//!
//! `X[k] = chirp[k] · Σ_j (x[j]·chirp[j]) · conj(chirp[k−j])`,
//! with `chirp[j] = e^{-πi j²/n}`.
//!
//! The inner power-of-two plan is shared through [`crate::cache`] (many
//! Bluestein lengths round up to the same `m`), and the convolution runs
//! the inner transforms in place: the chirped signal buffer and its
//! ping-pong partner are the whole scratch footprint, `2·m` elements.
//!
//! The inverse transform reuses the same tables through the conjugation
//! identity `idft(x) = conj(dft(conj(x)))/n`.

use fftmatvec_numeric::{Complex, Real};

use crate::cache::{self, PlanHandle};
use crate::plan::FftDirection;

/// Precomputed Bluestein transform of length `n`.
pub struct BluesteinPlan<T: Real> {
    n: usize,
    pub(crate) m: usize,
    /// Shared power-of-two inner plan of length `m`.
    inner: PlanHandle<T>,
    /// `chirp[j] = e^{-πi j²/n}`, `j in 0..n`.
    chirp: Vec<Complex<T>>,
    /// Forward FFT (length `m`) of the wrapped conjugate chirp.
    b_fft: Vec<Complex<T>>,
}

impl<T: Real> BluesteinPlan<T> {
    /// Build the plan. `n ≥ 2` (smaller sizes never reach Bluestein).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "BluesteinPlan requires n >= 2");
        let m = (2 * n - 1).next_power_of_two();
        let inner = cache::complex_plan::<T>(m);

        // chirp[j] = e^{-πi (j² mod 2n) / n}; reducing j² mod 2n keeps the
        // angle small, avoiding cancellation for large j.
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|j| {
                let j2 = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
                Complex::<f64>::expi(-std::f64::consts::PI * j2 / n as f64).cast()
            })
            .collect();

        // b[j] = conj(chirp[|j|]) wrapped circularly into length m.
        let mut b = vec![Complex::<T>::zero(); m];
        for j in 0..n {
            let c = chirp[j].conj();
            b[j] = c;
            if j != 0 {
                b[m - j] = c;
            }
        }
        let b_fft = inner.forward_vec(&b);

        BluesteinPlan { n, m, inner, chirp, b_fft }
    }

    /// Scratch requirement: the length-`m` chirped signal and its
    /// ping-pong partner.
    pub fn scratch_len(&self) -> usize {
        2 * self.m
    }

    /// Chirp-and-pad the input into `a` (length `m`); for the inverse,
    /// conjugate here (first half of the conj identity).
    fn load(&self, input: &[Complex<T>], a: &mut [Complex<T>], inverse: bool) {
        for j in 0..self.n {
            let x = if inverse { input[j].conj() } else { input[j] };
            a[j] = x * self.chirp[j];
        }
        for v in a[self.n..].iter_mut() {
            *v = Complex::zero();
        }
    }

    /// Circular convolution with the chirp kernel, in place in `a` with
    /// `work` as the inner ping-pong partner.
    fn convolve(&self, a: &mut [Complex<T>], work: &mut [Complex<T>]) {
        self.inner.process_inplace(a, work, FftDirection::Forward);
        // Pointwise multiply by the chirp kernel spectrum — vectorized
        // when a SIMD kernel applies (bit-identical either way).
        if !crate::simd::pointwise_mul_assign(a, &self.b_fft) {
            for (v, &bf) in a.iter_mut().zip(&self.b_fft) {
                *v *= bf;
            }
        }
        self.inner.process_inplace(a, work, FftDirection::Inverse);
    }

    /// Final chirp: `X[k] = c[k]·chirp[k]`, finishing the conj identity and
    /// `1/n` scaling for the inverse.
    fn store(&self, a: &[Complex<T>], output: &mut [Complex<T>], inverse: bool) {
        if inverse {
            let scale = T::from_usize(self.n).recip();
            for k in 0..self.n {
                output[k] = (a[k] * self.chirp[k]).conj().scale(scale);
            }
        } else {
            for k in 0..self.n {
                output[k] = a[k] * self.chirp[k];
            }
        }
    }

    /// Transform `input` (length `n`) into `output` (length `n`).
    pub fn process(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.n);
        assert!(scratch.len() >= self.scratch_len());
        let (a, rest) = scratch.split_at_mut(self.m);
        let work = &mut rest[..self.m];
        let inverse = dir == FftDirection::Inverse;
        self.load(input, a, inverse);
        self.convolve(a, work);
        self.store(a, output, inverse);
    }

    /// In-place transform of `buf` (length `n`). `buf` is only read during
    /// the initial chirp and only written during the final one, so no extra
    /// copy is needed.
    pub fn process_inplace(
        &self,
        buf: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        assert_eq!(buf.len(), self.n);
        assert!(scratch.len() >= self.scratch_len());
        let (a, rest) = scratch.split_at_mut(self.m);
        let work = &mut rest[..self.m];
        let inverse = dir == FftDirection::Inverse;
        self.load(buf, a, inverse);
        self.convolve(a, work);
        self.store(a, buf, inverse);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_dft;
    use crate::plan::FftPlan;
    use fftmatvec_numeric::SplitMix64;

    type C = Complex<f64>;

    fn random_signal(n: usize, seed: u64) -> Vec<C> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
    }

    fn run(plan: &BluesteinPlan<f64>, x: &[C], dir: FftDirection) -> Vec<C> {
        let mut out = vec![C::zero(); x.len()];
        let mut scratch = vec![C::zero(); plan.scratch_len()];
        plan.process(x, &mut out, &mut scratch, dir);
        out
    }

    #[test]
    fn forward_matches_naive_for_various_primes() {
        for n in [2usize, 3, 5, 7, 11, 13, 17, 67, 101, 257] {
            let plan = BluesteinPlan::<f64>::new(n);
            let x = random_signal(n, n as u64);
            let fast = run(&plan, &x, FftDirection::Forward);
            let mut slow = vec![C::zero(); n];
            naive_dft(&x, &mut slow, FftDirection::Forward);
            let err = fast.iter().zip(&slow).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [5usize, 67, 199] {
            let plan = BluesteinPlan::<f64>::new(n);
            let x = random_signal(n, 3 * n as u64);
            let freq = run(&plan, &x, FftDirection::Forward);
            let back = run(&plan, &freq, FftDirection::Inverse);
            let err = back.iter().zip(&x).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-10, "n={n} err={err}");
        }
    }

    #[test]
    fn inplace_matches_out_of_place() {
        let n = 101;
        let plan = BluesteinPlan::<f64>::new(n);
        let x = random_signal(n, 4);
        let mut scratch = vec![C::zero(); plan.scratch_len()];
        for dir in [FftDirection::Forward, FftDirection::Inverse] {
            let want = run(&plan, &x, dir);
            let mut buf = x.clone();
            plan.process_inplace(&mut buf, &mut scratch, dir);
            let err = buf.iter().zip(&want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-13, "{dir:?} err={err}");
        }
    }

    #[test]
    fn composite_with_large_prime_factor() {
        // 2·67 exceeds MAX_RADIX in one factor; the top-level plan uses
        // Bluestein for the full length.
        let n = 134;
        let plan = FftPlan::<f64>::new(n);
        assert!(plan.is_bluestein());
        let x = random_signal(n, 1);
        let mut slow = vec![C::zero(); n];
        naive_dft(&x, &mut slow, FftDirection::Forward);
        let fast = plan.forward_vec(&x);
        let err = fast.iter().zip(&slow).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-9);
    }

    #[test]
    fn inner_length_is_power_of_two_and_big_enough() {
        let plan = BluesteinPlan::<f64>::new(100);
        assert!(plan.m.is_power_of_two());
        assert!(plan.m >= 199);
    }

    #[test]
    fn inner_plans_are_shared_across_bluestein_lengths() {
        // 67 and 101 both round up to m = 256; the cache must hand both
        // Bluestein plans the same inner plan object.
        let a = BluesteinPlan::<f64>::new(67);
        let b = BluesteinPlan::<f64>::new(101);
        assert_eq!(a.m, b.m);
        assert!(std::sync::Arc::ptr_eq(&a.inner, &b.inner));
    }
}
