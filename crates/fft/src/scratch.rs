//! Shared scratch arena for batched FFT execution.
//!
//! The batched drivers run thousands of transforms through one plan; each
//! transform needs a scratch slice of [`crate::FftPlan::scratch_len`]
//! elements. Instead of a fresh `vec![Complex::ZERO; …]` per call (the
//! seed behaviour), a [`ScratchArena`] pools the buffers: a worker checks
//! one out, runs any number of transforms through it, and the guard
//! returns it on drop. Under the rayon pool, `for_each_init` checks out
//! one guard per executed work chunk (per-worker semantics — *not* one
//! `init()` value reused across the whole iteration), so at most one
//! buffer per concurrently-running worker is live at any instant and the
//! pool's parked-buffer count stabilizes at the peak worker concurrency;
//! sequentially it stabilizes at a single reused allocation.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use fftmatvec_numeric::{Complex, Real};

/// Most scratch buffers an arena parks between checkouts. Shared-operator
/// serving can drive one plan (and its arena) from many concurrent batch
/// windows at once; each window transiently checks out one buffer per
/// worker, and without a cap the arena would permanently retain that
/// burst-peak footprint. Sized to cover the machine's worker concurrency
/// with headroom while letting bursts free their excess.
pub fn scratch_retention_cap() -> usize {
    // Computed once: `available_parallelism` reads procfs/cgroup state on
    // Linux, which allocates — and this runs on the transform hot path
    // (every scratch return), which must stay allocation-free.
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        (2 * hw).max(8)
    })
}

/// Pool of equally-sized scratch buffers. Concurrent checkouts always
/// receive distinct buffers (each checkout pops a parked buffer or
/// allocates a fresh one — nothing is ever handed out twice), and
/// returned buffers are parked only up to [`scratch_retention_cap`].
pub struct ScratchArena<T: Real> {
    /// Required scratch length per buffer.
    len: usize,
    pool: Mutex<Vec<Vec<Complex<T>>>>,
}

impl<T: Real> ScratchArena<T> {
    /// Arena handing out buffers of exactly `len` complex elements.
    pub fn new(len: usize) -> Self {
        ScratchArena { len, pool: Mutex::new(Vec::new()) }
    }

    /// Buffer length this arena provisions.
    #[inline]
    pub fn buffer_len(&self) -> usize {
        self.len
    }

    /// Lock the pool, shrugging off poisoning: a panicked worker can only
    /// have left the pool missing a buffer (re-allocated on demand), never
    /// structurally broken — so the arena itself stays panic-free.
    fn pool(&self) -> MutexGuard<'_, Vec<Vec<Complex<T>>>> {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Check out a scratch buffer; it returns to the pool when the guard
    /// drops. Contents are unspecified — FFT execution overwrites scratch
    /// before reading it.
    pub fn checkout(&self) -> ScratchGuard<'_, T> {
        let mut buf = self.pool().pop().unwrap_or_default();
        buf.resize(self.len, Complex::zero());
        ScratchGuard { arena: self, buf }
    }

    /// Buffers currently parked in the pool (diagnostic).
    pub fn pooled(&self) -> usize {
        self.pool().len()
    }
}

/// RAII handle to one pooled scratch buffer.
pub struct ScratchGuard<'a, T: Real> {
    arena: &'a ScratchArena<T>,
    buf: Vec<Complex<T>>,
}

impl<T: Real> ScratchGuard<'_, T> {
    /// The scratch slice, sized to the arena's buffer length.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<T>] {
        &mut self.buf
    }
}

impl<T: Real> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let mut pool = self.arena.pool();
        if pool.len() < scratch_retention_cap() {
            pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_returns_sized_buffer_and_recycles() {
        let arena = ScratchArena::<f64>::new(64);
        assert_eq!(arena.pooled(), 0);
        {
            let mut g = arena.checkout();
            assert_eq!(g.as_mut_slice().len(), 64);
            g.as_mut_slice()[0] = Complex::one();
        }
        assert_eq!(arena.pooled(), 1, "dropped guard must return its buffer");
        {
            let mut g = arena.checkout();
            assert_eq!(g.as_mut_slice().len(), 64);
        }
        assert_eq!(arena.pooled(), 1, "buffer is reused, not duplicated");
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let arena = ScratchArena::<f32>::new(8);
        let mut a = arena.checkout();
        let mut b = arena.checkout();
        a.as_mut_slice()[0] = Complex::one();
        assert_eq!(b.as_mut_slice()[0], Complex::zero());
        drop(a);
        drop(b);
        assert_eq!(arena.pooled(), 2);
    }

    #[test]
    fn zero_length_arena_is_free() {
        let arena = ScratchArena::<f64>::new(0);
        let mut g = arena.checkout();
        assert!(g.as_mut_slice().is_empty());
    }

    #[test]
    fn retention_is_bounded_after_a_burst() {
        let arena = ScratchArena::<f64>::new(4);
        let cap = scratch_retention_cap();
        let guards: Vec<_> = (0..cap + 5).map(|_| arena.checkout()).collect();
        drop(guards);
        assert_eq!(arena.pooled(), cap, "a checkout burst must not pin its peak footprint");
    }
}
