//! Stockham-style iterative mixed-radix FFT execution.
//!
//! This is the execution engine behind [`crate::FftPlan`] for lengths
//! whose prime factors are all ≤ [`crate::plan::MAX_RADIX`]. It replaces
//! the seed's recursive decimation-in-time walk (preserved in
//! [`crate::recursive`] as the benchmark baseline) with a flat stage
//! schedule:
//!
//! * Each prime-power factor becomes one [`Stage`] with its own
//!   precomputed twiddle table, laid out in the exact order the butterfly
//!   consumes it — no `q·u` index arithmetic into a shared table.
//! * Stages ping-pong between two buffers (the caller's output and a
//!   scratch arena slice). Stockham's self-sorting property means no
//!   bit/digit-reversal pass is ever needed, and the innermost loop runs
//!   over a contiguous stride-1 range.
//! * Radix 4 and radix 2 butterflies are hand-coded; any other radix
//!   (odd primes up to `MAX_RADIX`) uses a table-driven r-point DFT.
//!   Lengths with larger prime factors never reach this module — the plan
//!   routes them to [`crate::bluestein`].
//!
//! The decimation-in-frequency stage recurrence: with `n_cur = r·m` and
//! outer stride `s` (`n = s·n_cur`), stage output index `r·p + j` holds
//! `z_j[p] = ω_{n_cur}^{p·j} · Σ_l src[p + m·l] · ω_r^{j·l}` for each of
//! the `s` interleaved sub-problems, after which the schedule recurses on
//! `n_cur ← m`, `s ← s·r`.

use fftmatvec_numeric::{Complex, Real};

use crate::plan::{FftDirection, MAX_RADIX};

/// One butterfly pass of the iterative schedule.
struct Stage<T: Real> {
    /// Radix split off at this stage.
    radix: usize,
    /// Sub-transform count: `n_cur / radix`.
    m: usize,
    /// Outer stride: product of the radices of all earlier stages.
    s: usize,
    /// `twiddles[p·(r−1) + (j−1)] = e^{-2πi·p·j/n_cur}` for `p in 0..m`,
    /// `j in 1..r` — one contiguous entry per butterfly output, in
    /// consumption order (`j = 0` is always 1 and is omitted).
    twiddles: Vec<Complex<T>>,
    /// `radix_roots[x] = e^{-2πi·x/r}` (generic butterflies only; empty
    /// for the hand-coded radices 2 and 4).
    radix_roots: Vec<Complex<T>>,
}

/// Iterative in-place/out-of-place executor for a fixed length `n ≥ 2`.
pub(crate) struct IterativeFft<T: Real> {
    n: usize,
    stages: Vec<Stage<T>>,
}

impl<T: Real> IterativeFft<T> {
    /// Build the stage schedule from a factor list (as produced by
    /// `plan::factorize`, radix-4 first). `n` must equal the product of
    /// `factors` and be ≥ 2.
    pub(crate) fn new(n: usize, factors: &[usize]) -> Self {
        debug_assert!(n >= 2);
        debug_assert_eq!(factors.iter().product::<usize>(), n);
        let mut stages = Vec::with_capacity(factors.len());
        let mut n_cur = n;
        let mut s = 1usize;
        for &r in factors {
            let m = n_cur / r;
            let step = -2.0 * std::f64::consts::PI / n_cur as f64;
            let mut twiddles = Vec::with_capacity(m * (r - 1));
            for p in 0..m {
                for j in 1..r {
                    twiddles.push(Complex::<f64>::expi(step * (p * j) as f64).cast());
                }
            }
            let radix_roots = if r == 2 || r == 4 {
                Vec::new()
            } else {
                let rstep = -2.0 * std::f64::consts::PI / r as f64;
                (0..r).map(|x| Complex::<f64>::expi(rstep * x as f64).cast()).collect()
            };
            stages.push(Stage { radix: r, m, s, twiddles, radix_roots });
            s *= r;
            n_cur = m;
        }
        debug_assert_eq!(n_cur, 1);
        IterativeFft { n, stages }
    }

    /// Number of butterfly passes.
    #[inline]
    pub(crate) fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Exact scratch requirement: single-stage schedules run through a
    /// stack buffer, multi-stage schedules ping-pong through one length-`n`
    /// slice.
    #[inline]
    pub(crate) fn scratch_len(&self) -> usize {
        if self.stages.len() <= 1 {
            0
        } else {
            self.n
        }
    }

    /// Out-of-place transform (unscaled). The first stage reads straight
    /// from `input`; the remaining stages ping-pong between `output` and
    /// `scratch` so the final stage always lands in `output`.
    pub(crate) fn process(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        let inverse = dir == FftDirection::Inverse;
        let k = self.stages.len();
        if k == 1 {
            run_stage(&self.stages[0], input, output, inverse);
            return;
        }
        let scratch = &mut scratch[..self.n];
        // After stage 0 there are k−1 ping-pong hops; parity picks the
        // first destination so the last hop writes `output`.
        let mut in_scratch = k % 2 == 0;
        run_stage(&self.stages[0], input, if in_scratch { scratch } else { output }, inverse);
        for st in &self.stages[1..] {
            if in_scratch {
                run_stage(st, scratch, output, inverse);
            } else {
                run_stage(st, output, scratch, inverse);
            }
            in_scratch = !in_scratch;
        }
        debug_assert!(!in_scratch);
    }

    /// In-place transform (unscaled): `buf` is both input and output.
    /// Single-stage schedules stage through a stack buffer; multi-stage
    /// schedules ping-pong `buf` ↔ `scratch`, with one copy-back pass when
    /// the stage count is odd.
    pub(crate) fn process_inplace(
        &self,
        buf: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        let inverse = dir == FftDirection::Inverse;
        let k = self.stages.len();
        if k == 1 {
            // n = radix ≤ MAX_RADIX: gather to the stack, scatter back.
            let mut t = [Complex::<T>::zero(); MAX_RADIX];
            t[..self.n].copy_from_slice(buf);
            run_stage(&self.stages[0], &t[..self.n], buf, inverse);
            return;
        }
        let scratch = &mut scratch[..self.n];
        let mut in_scratch = false;
        for st in &self.stages {
            if in_scratch {
                run_stage(st, scratch, buf, inverse);
            } else {
                run_stage(st, buf, scratch, inverse);
            }
            in_scratch = !in_scratch;
        }
        if in_scratch {
            buf.copy_from_slice(scratch);
        }
    }
}

/// Execute one stage, reading `src` and writing every element of `dst`.
///
/// The radix-2/4 arms first offer the stage to [`crate::simd`]; the
/// vector kernels are bit-identical to the scalar loops below (same
/// expression tree per butterfly), so which path runs is unobservable
/// in the output.
fn run_stage<T: Real>(st: &Stage<T>, src: &[Complex<T>], dst: &mut [Complex<T>], inverse: bool) {
    let (r, m, s) = (st.radix, st.m, st.s);
    match r {
        2 => {
            if crate::simd::stage_radix2(src, dst, m, s, &st.twiddles, inverse) {
                return;
            }
            let sm = s * m;
            for p in 0..m {
                let mut w = st.twiddles[p];
                if inverse {
                    w = w.conj();
                }
                let i0 = s * p;
                let o0 = 2 * s * p;
                for q in 0..s {
                    let a = src[i0 + q];
                    let b = src[i0 + sm + q];
                    dst[o0 + q] = a + b;
                    dst[o0 + s + q] = (a - b) * w;
                }
            }
        }
        4 => {
            if crate::simd::stage_radix4(src, dst, m, s, &st.twiddles, inverse) {
                return;
            }
            let sm = s * m;
            for p in 0..m {
                let (mut w1, mut w2, mut w3) =
                    (st.twiddles[3 * p], st.twiddles[3 * p + 1], st.twiddles[3 * p + 2]);
                if inverse {
                    w1 = w1.conj();
                    w2 = w2.conj();
                    w3 = w3.conj();
                }
                let i0 = s * p;
                let o0 = 4 * s * p;
                for q in 0..s {
                    let t0 = src[i0 + q];
                    let t1 = src[i0 + sm + q];
                    let t2 = src[i0 + 2 * sm + q];
                    let t3 = src[i0 + 3 * sm + q];
                    let e = t0 + t2;
                    let f = t0 - t2;
                    let g = t1 + t3;
                    let h = t1 - t3;
                    // ∓i·h depending on direction.
                    let ih =
                        if inverse { Complex::new(-h.im, h.re) } else { Complex::new(h.im, -h.re) };
                    dst[o0 + q] = e + g;
                    dst[o0 + s + q] = (f + ih) * w1;
                    dst[o0 + 2 * s + q] = (e - g) * w2;
                    dst[o0 + 3 * s + q] = (f - ih) * w3;
                }
            }
        }
        _ => {
            let mut t = [Complex::<T>::zero(); MAX_RADIX];
            for p in 0..m {
                let tw = &st.twiddles[p * (r - 1)..(p + 1) * (r - 1)];
                let i0 = s * p;
                let o0 = r * s * p;
                for q in 0..s {
                    for (l, tl) in t[..r].iter_mut().enumerate() {
                        *tl = src[i0 + s * m * l + q];
                    }
                    let mut acc = t[0];
                    for &tl in &t[1..r] {
                        acc += tl;
                    }
                    dst[o0 + q] = acc;
                    for j in 1..r {
                        let mut acc = t[0];
                        for (l, &tl) in t[..r].iter().enumerate().skip(1) {
                            let mut wr = st.radix_roots[(j * l) % r];
                            if inverse {
                                wr = wr.conj();
                            }
                            acc = tl.mul_add(wr, acc);
                        }
                        let mut w = tw[j - 1];
                        if inverse {
                            w = w.conj();
                        }
                        dst[o0 + s * j + q] = acc * w;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_dft;
    use fftmatvec_numeric::SplitMix64;

    type C = Complex<f64>;

    fn random_signal(n: usize, seed: u64) -> Vec<C> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
    }

    /// The exact factor schedule the plan would hand the engine.
    fn factors_of(n: usize) -> Vec<usize> {
        crate::plan::factorize(n).expect("test sizes have no Bluestein-path factors")
    }

    #[test]
    fn stages_match_naive_dft() {
        for n in [2usize, 3, 4, 5, 6, 8, 12, 16, 27, 30, 49, 61, 64, 100, 120] {
            let eng = IterativeFft::<f64>::new(n, &factors_of(n));
            let x = random_signal(n, n as u64);
            let mut out = vec![C::zero(); n];
            let mut scratch = vec![C::zero(); eng.scratch_len()];
            eng.process(&x, &mut out, &mut scratch, FftDirection::Forward);
            let mut slow = vec![C::zero(); n];
            naive_dft(&x, &mut slow, FftDirection::Forward);
            let err = out.iter().zip(&slow).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-10 * n as f64, "n={n} err={err}");
        }
    }

    #[test]
    fn inplace_matches_out_of_place() {
        for n in [2usize, 4, 5, 8, 16, 32, 60, 64, 128, 200, 2000] {
            let eng = IterativeFft::<f64>::new(n, &factors_of(n));
            let x = random_signal(n, 1 + n as u64);
            let mut out = vec![C::zero(); n];
            let mut scratch = vec![C::zero(); eng.scratch_len()];
            eng.process(&x, &mut out, &mut scratch, FftDirection::Forward);
            let mut buf = x.clone();
            eng.process_inplace(&mut buf, &mut scratch, FftDirection::Forward);
            let err = out.iter().zip(&buf).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-12, "n={n} err={err}");
        }
    }

    #[test]
    fn scratch_len_is_zero_for_single_stage() {
        for n in [2usize, 3, 4, 61] {
            assert_eq!(IterativeFft::<f64>::new(n, &factors_of(n)).scratch_len(), 0, "n={n}");
        }
        assert_eq!(IterativeFft::<f64>::new(8, &factors_of(8)).scratch_len(), 8);
        assert_eq!(IterativeFft::<f64>::new(2048, &factors_of(2048)).scratch_len(), 2048);
    }
}
