//! Mixed-radix FFT plans.
//!
//! A [`FftPlan`] is built once per transform length (the paper's setup
//! phase) and then applied to many vectors (the matvec phases). Plan
//! construction factorizes `n`, precomputes per-level twiddle tables in
//! `f64` (rounded into the plan's precision `T`), and selects a strategy:
//!
//! * `MixedRadix` — decimation-in-time Cooley–Tukey over the factor list.
//!   Radix 2 and 4 butterflies are hand-coded; odd radices up to
//!   [`MAX_RADIX`] use a table-driven r-point DFT.
//! * `Bluestein` — chirp-z fallback for lengths with a prime factor larger
//!   than [`MAX_RADIX`] (delegates to [`crate::bluestein`]).
//!
//! Execution is out-of-place and allocation-free: callers supply a scratch
//! slice of [`FftPlan::scratch_len`] elements, which lets the batched
//! driver keep one scratch per rayon worker.

use fftmatvec_numeric::{Complex, Real};

use crate::bluestein::BluesteinPlan;

/// Transform direction. Forward is `e^{-2πijk/n}` unscaled; inverse is
/// `e^{+2πijk/n}` scaled by `1/n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftDirection {
    Forward,
    Inverse,
}

impl FftDirection {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            FftDirection::Forward => FftDirection::Inverse,
            FftDirection::Inverse => FftDirection::Forward,
        }
    }
}

/// Largest prime handled by the mixed-radix path; larger primes switch the
/// whole transform to Bluestein. 61 comfortably covers every FFT size the
/// FFTMatvec workloads produce (2·N_t with N_t round numbers).
pub const MAX_RADIX: usize = 61;

/// One recursion level of the mixed-radix decomposition.
struct Level<T: Real> {
    /// Sub-transform size at this level.
    n: usize,
    /// Radix split off at this level.
    radix: usize,
    /// `n / radix`.
    m: usize,
    /// `twiddles[j] = e^{-2πij/n}` for `j in 0..n`.
    twiddles: Vec<Complex<T>>,
    /// `radix_roots[x] = e^{-2πix/r}` for `x in 0..r` (generic butterfly).
    radix_roots: Vec<Complex<T>>,
}

enum Strategy<T: Real> {
    /// n ≤ 1: copy.
    Tiny,
    MixedRadix(Vec<Level<T>>),
    Bluestein(Box<BluesteinPlan<T>>),
}

/// A reusable FFT plan for a fixed length `n` and element precision `T`.
pub struct FftPlan<T: Real> {
    n: usize,
    strategy: Strategy<T>,
}

/// Factorize `n` into the radix schedule: factors of 4 first (the cheapest
/// butterfly), then 2, then odd primes ascending. Returns `None` if a
/// prime factor exceeds [`MAX_RADIX`].
fn factorize(mut n: usize) -> Option<Vec<usize>> {
    let mut factors = Vec::new();
    while n % 4 == 0 {
        factors.push(4);
        n /= 4;
    }
    if n % 2 == 0 {
        factors.push(2);
        n /= 2;
    }
    let mut p = 3usize;
    while p * p <= n {
        while n % p == 0 {
            if p > MAX_RADIX {
                return None;
            }
            factors.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        if n > MAX_RADIX {
            return None;
        }
        factors.push(n);
    }
    Some(factors)
}

/// Twiddle table `e^{-2πij/n}`, computed in f64 and rounded to `T` so that
/// f32 plans do not accumulate argument-reduction error.
fn twiddle_table<T: Real>(n: usize) -> Vec<Complex<T>> {
    let step = -2.0 * std::f64::consts::PI / n as f64;
    (0..n).map(|j| Complex::<f64>::expi(step * j as f64).cast()).collect()
}

impl<T: Real> FftPlan<T> {
    /// Build a plan for length `n`. `n = 0` is rejected.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FftPlan length must be nonzero");
        if n == 1 {
            return FftPlan { n, strategy: Strategy::Tiny };
        }
        match factorize(n) {
            Some(factors) => {
                let mut levels = Vec::with_capacity(factors.len());
                let mut cur = n;
                for &r in &factors {
                    levels.push(Level {
                        n: cur,
                        radix: r,
                        m: cur / r,
                        twiddles: twiddle_table::<T>(cur),
                        radix_roots: twiddle_table::<T>(r),
                    });
                    cur /= r;
                }
                debug_assert_eq!(cur, 1);
                FftPlan { n, strategy: Strategy::MixedRadix(levels) }
            }
            None => FftPlan { n, strategy: Strategy::Bluestein(Box::new(BluesteinPlan::new(n))) },
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Required scratch length for [`FftPlan::process`].
    pub fn scratch_len(&self) -> usize {
        match &self.strategy {
            Strategy::Tiny | Strategy::MixedRadix(_) => 0,
            Strategy::Bluestein(b) => b.scratch_len(),
        }
    }

    /// Out-of-place transform. `input.len() == output.len() == n`;
    /// `scratch.len() >= self.scratch_len()`.
    pub fn process(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        assert_eq!(input.len(), self.n, "FftPlan input length mismatch");
        assert_eq!(output.len(), self.n, "FftPlan output length mismatch");
        assert!(
            scratch.len() >= self.scratch_len(),
            "FftPlan scratch too small: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        match &self.strategy {
            Strategy::Tiny => output[0] = input[0],
            Strategy::MixedRadix(levels) => {
                rec_fft(levels, 0, input, 0, 1, output, dir);
                if dir == FftDirection::Inverse {
                    let scale = T::from_usize(self.n).recip();
                    for v in output.iter_mut() {
                        *v = v.scale(scale);
                    }
                }
            }
            Strategy::Bluestein(b) => b.process(input, output, scratch, dir),
        }
    }

    /// Forward transform into `output`.
    pub fn forward(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        self.process(input, output, scratch, FftDirection::Forward);
    }

    /// Inverse transform (scaled by `1/n`) into `output`.
    pub fn inverse(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        self.process(input, output, scratch, FftDirection::Inverse);
    }

    /// Allocating convenience wrapper around [`FftPlan::forward`].
    pub fn forward_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); self.n];
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.forward(input, &mut out, &mut scratch);
        out
    }

    /// Allocating convenience wrapper around [`FftPlan::inverse`].
    pub fn inverse_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); self.n];
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.inverse(input, &mut out, &mut scratch);
        out
    }

    /// True if this plan fell back to the Bluestein strategy.
    pub fn is_bluestein(&self) -> bool {
        matches!(self.strategy, Strategy::Bluestein(_))
    }
}

/// Recursive decimation-in-time step.
///
/// `input[offset + j*stride]` for `j in 0..levels[lvl].n` is transformed
/// into `out` (contiguous). Sub-FFTs land in `out[q*m..][..m]`, then the
/// per-`u` combine gathers `{out[q*m+u]}`, twiddles, and scatters the
/// radix-point DFT back to `{out[u+v*m]}` — the same index set, so the
/// combine is in-place within `out` using a small stack buffer.
fn rec_fft<T: Real>(
    levels: &[Level<T>],
    lvl: usize,
    input: &[Complex<T>],
    offset: usize,
    stride: usize,
    out: &mut [Complex<T>],
    dir: FftDirection,
) {
    if lvl == levels.len() {
        out[0] = input[offset];
        return;
    }
    let level = &levels[lvl];
    let r = level.radix;
    let m = level.m;
    debug_assert_eq!(out.len(), level.n);

    for q in 0..r {
        rec_fft(
            levels,
            lvl + 1,
            input,
            offset + q * stride,
            stride * r,
            &mut out[q * m..(q + 1) * m],
            dir,
        );
    }

    let inverse = dir == FftDirection::Inverse;
    let mut t = [Complex::<T>::zero(); MAX_RADIX + 1];
    for u in 0..m {
        // Gather + twiddle.
        for q in 0..r {
            let mut w = level.twiddles[q * u];
            if inverse {
                w = w.conj();
            }
            t[q] = out[q * m + u] * w;
        }
        // Radix-point DFT across the gathered values.
        match r {
            2 => {
                out[u] = t[0] + t[1];
                out[u + m] = t[0] - t[1];
            }
            4 => {
                let e = t[0] + t[2];
                let f = t[0] - t[2];
                let g = t[1] + t[3];
                let h = t[1] - t[3];
                // ±i·h depending on direction.
                let ih =
                    if inverse { Complex::new(-h.im, h.re) } else { Complex::new(h.im, -h.re) };
                out[u] = e + g;
                out[u + m] = f + ih;
                out[u + 2 * m] = e - g;
                out[u + 3 * m] = f - ih;
            }
            _ => {
                for v in 0..r {
                    let mut acc = t[0];
                    for q in 1..r {
                        let mut w = level.radix_roots[(q * v) % r];
                        if inverse {
                            w = w.conj();
                        }
                        acc = t[q].mul_add(w, acc);
                    }
                    out[u + v * m] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_dft;
    use fftmatvec_numeric::SplitMix64;

    type C = Complex<f64>;

    fn random_signal(n: usize, seed: u64) -> Vec<C> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
    }

    fn max_err(a: &[C], b: &[C]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn factorization() {
        assert_eq!(factorize(1), Some(vec![]));
        assert_eq!(factorize(8), Some(vec![4, 2]));
        assert_eq!(factorize(16), Some(vec![4, 4]));
        assert_eq!(factorize(2000), Some(vec![4, 4, 5, 5, 5]));
        assert_eq!(factorize(15), Some(vec![3, 5]));
        assert_eq!(factorize(49), Some(vec![7, 7]));
        assert_eq!(factorize(61), Some(vec![61]));
        assert_eq!(factorize(67), None); // prime > MAX_RADIX
        assert_eq!(factorize(2 * 67), None);
    }

    #[test]
    fn matches_naive_dft_all_small_sizes() {
        for n in 1..=40usize {
            let x = random_signal(n, n as u64);
            let plan = FftPlan::<f64>::new(n);
            let fast = plan.forward_vec(&x);
            let mut slow = vec![C::zero(); n];
            naive_dft(&x, &mut slow, FftDirection::Forward);
            let err = max_err(&fast, &slow);
            assert!(err < 1e-10 * (n as f64), "n={n} err={err}");
        }
    }

    #[test]
    fn matches_naive_dft_inverse_small_sizes() {
        for n in [1usize, 2, 3, 6, 8, 12, 20, 30] {
            let x = random_signal(n, 100 + n as u64);
            let plan = FftPlan::<f64>::new(n);
            let fast = plan.inverse_vec(&x);
            let mut slow = vec![C::zero(); n];
            naive_dft(&x, &mut slow, FftDirection::Inverse);
            assert!(max_err(&fast, &slow) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn roundtrip_paper_sizes() {
        // 2·N_t for N_t ∈ {1000, 512, 100, 250}: the sizes FFTMatvec uses.
        for n in [2000usize, 1024, 200, 500, 2048] {
            let x = random_signal(n, n as u64);
            let plan = FftPlan::<f64>::new(n);
            let freq = plan.forward_vec(&x);
            let back = plan.inverse_vec(&freq);
            assert!(max_err(&back, &x) < 1e-12, "n={n}");
        }
    }

    #[test]
    fn roundtrip_prime_sizes_use_bluestein() {
        for n in [67usize, 97, 101, 127, 251] {
            let plan = FftPlan::<f64>::new(n);
            assert!(plan.is_bluestein(), "n={n} should be Bluestein");
            let x = random_signal(n, n as u64);
            let freq = plan.forward_vec(&x);
            let back = plan.inverse_vec(&freq);
            assert!(max_err(&back, &x) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        let n = 67;
        let x = random_signal(n, 7);
        let plan = FftPlan::<f64>::new(n);
        let fast = plan.forward_vec(&x);
        let mut slow = vec![C::zero(); n];
        naive_dft(&x, &mut slow, FftDirection::Forward);
        assert!(max_err(&fast, &slow) < 1e-10);
    }

    #[test]
    fn parseval() {
        let n = 240;
        let x = random_signal(n, 5);
        let plan = FftPlan::<f64>::new(n);
        let freq = plan.forward_vec(&x);
        let tx: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let tf: f64 = freq.iter().map(|v| v.norm_sqr()).sum();
        assert!((tf - n as f64 * tx).abs() < 1e-8 * tf, "Parseval violated");
    }

    #[test]
    fn linearity() {
        let n = 60;
        let x = random_signal(n, 1);
        let y = random_signal(n, 2);
        let plan = FftPlan::<f64>::new(n);
        let a = C::new(1.5, -0.5);
        let mixed: Vec<C> = x.iter().zip(&y).map(|(&xi, &yi)| a * xi + yi).collect();
        let fx = plan.forward_vec(&x);
        let fy = plan.forward_vec(&y);
        let fmixed = plan.forward_vec(&mixed);
        let expect: Vec<C> = fx.iter().zip(&fy).map(|(&xi, &yi)| a * xi + yi).collect();
        assert!(max_err(&fmixed, &expect) < 1e-11);
    }

    #[test]
    fn f32_plan_roundtrip() {
        let n = 2000;
        let mut rng = SplitMix64::new(9);
        let x: Vec<Complex<f32>> = (0..n)
            .map(|_| Complex::new(rng.uniform(-1.0, 1.0) as f32, rng.uniform(-1.0, 1.0) as f32))
            .collect();
        let plan = FftPlan::<f32>::new(n);
        let freq = plan.forward_vec(&x);
        let back = plan.inverse_vec(&freq);
        let err = x.iter().zip(&back).map(|(a, b)| (*a - *b).abs()).fold(0.0f32, f32::max);
        // Single-precision roundtrip error ~ eps·log2(n).
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn direction_flip() {
        assert_eq!(FftDirection::Forward.flip(), FftDirection::Inverse);
        assert_eq!(FftDirection::Inverse.flip(), FftDirection::Forward);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_length_rejected() {
        let _ = FftPlan::<f64>::new(0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_rejected() {
        let plan = FftPlan::<f64>::new(8);
        let x = vec![C::zero(); 4];
        let mut out = vec![C::zero(); 8];
        plan.forward(&x, &mut out, &mut []);
    }
}
