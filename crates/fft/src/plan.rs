//! Mixed-radix FFT plans.
//!
//! A [`FftPlan`] is built once per transform length (the paper's setup
//! phase) and then applied to many vectors (the matvec phases) — shared
//! plans come from [`crate::cache`], so call sites normally never build
//! one directly. Plan construction factorizes `n`, precomputes per-stage
//! twiddle tables in `f64` (rounded into the plan's precision `T`), and
//! selects a strategy:
//!
//! * `Iterative` — Stockham-style iterative schedule
//!   (`iterative` module): radix-4/radix-2 stages with hand-coded
//!   butterflies, a table-driven generic butterfly for odd radices up to
//!   [`MAX_RADIX`], self-sorting ping-pong execution.
//! * `Bluestein` — chirp-z fallback for lengths with a prime factor larger
//!   than [`MAX_RADIX`] (delegates to [`crate::bluestein`]).
//!
//! Execution is allocation-free and comes in two shapes: out-of-place
//! ([`FftPlan::process`]) and in-place ([`FftPlan::process_inplace`]).
//! Both take a caller-supplied scratch slice of exactly
//! [`FftPlan::scratch_len`] elements, which lets the batched driver keep
//! one scratch per worker in a shared arena.

use fftmatvec_numeric::{Complex, Real};

use crate::bluestein::BluesteinPlan;
use crate::iterative::IterativeFft;

/// Transform direction. Forward is `e^{-2πijk/n}` unscaled; inverse is
/// `e^{+2πijk/n}` scaled by `1/n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FftDirection {
    Forward,
    Inverse,
}

impl FftDirection {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            FftDirection::Forward => FftDirection::Inverse,
            FftDirection::Inverse => FftDirection::Forward,
        }
    }
}

/// Largest prime handled by the mixed-radix path; larger primes switch the
/// whole transform to Bluestein. 61 comfortably covers every FFT size the
/// FFTMatvec workloads produce (2·N_t with N_t round numbers).
pub const MAX_RADIX: usize = 61;

enum Strategy<T: Real> {
    /// n ≤ 1: copy.
    Tiny,
    Iterative(IterativeFft<T>),
    Bluestein(Box<BluesteinPlan<T>>),
}

/// A reusable FFT plan for a fixed length `n` and element precision `T`.
pub struct FftPlan<T: Real> {
    n: usize,
    strategy: Strategy<T>,
}

/// Factorize `n` into the radix schedule: factors of 4 first (the cheapest
/// butterfly), then 2, then odd primes ascending. Returns `None` if a
/// prime factor exceeds [`MAX_RADIX`].
pub(crate) fn factorize(mut n: usize) -> Option<Vec<usize>> {
    let mut factors = Vec::new();
    while n % 4 == 0 {
        factors.push(4);
        n /= 4;
    }
    if n % 2 == 0 {
        factors.push(2);
        n /= 2;
    }
    let mut p = 3usize;
    while p * p <= n {
        while n % p == 0 {
            if p > MAX_RADIX {
                return None;
            }
            factors.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        if n > MAX_RADIX {
            return None;
        }
        factors.push(n);
    }
    Some(factors)
}

impl<T: Real> FftPlan<T> {
    /// Build a plan for length `n`. `n = 0` is rejected. Prefer
    /// [`crate::cache::complex_plan`] for a shared, cached plan.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FftPlan length must be nonzero");
        if n == 1 {
            return FftPlan { n, strategy: Strategy::Tiny };
        }
        match factorize(n) {
            Some(factors) => {
                FftPlan { n, strategy: Strategy::Iterative(IterativeFft::new(n, &factors)) }
            }
            None => FftPlan { n, strategy: Strategy::Bluestein(Box::new(BluesteinPlan::new(n))) },
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Exact scratch length (complex elements) for both
    /// [`FftPlan::process`] and [`FftPlan::process_inplace`]:
    ///
    /// * `0` for `n = 1` and single-stage schedules (`n` a prime ≤
    ///   [`MAX_RADIX`], 2, or 4);
    /// * `n` for multi-stage iterative schedules (the ping-pong partner
    ///   buffer);
    /// * `2·m` for Bluestein lengths, where `m` is the inner power-of-two
    ///   convolution length (covers the chirped signal and its ping-pong
    ///   partner).
    pub fn scratch_len(&self) -> usize {
        match &self.strategy {
            Strategy::Tiny => 0,
            Strategy::Iterative(engine) => engine.scratch_len(),
            Strategy::Bluestein(b) => b.scratch_len(),
        }
    }

    /// Out-of-place transform. `input.len() == output.len() == n`;
    /// `scratch.len() >= self.scratch_len()`.
    pub fn process(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        assert_eq!(input.len(), self.n, "FftPlan input length mismatch");
        assert_eq!(output.len(), self.n, "FftPlan output length mismatch");
        assert!(
            scratch.len() >= self.scratch_len(),
            "FftPlan scratch too small: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        match &self.strategy {
            Strategy::Tiny => output[0] = input[0],
            Strategy::Iterative(engine) => {
                engine.process(input, output, scratch, dir);
                if dir == FftDirection::Inverse {
                    scale_by_recip_n(output, self.n);
                }
            }
            Strategy::Bluestein(b) => b.process(input, output, scratch, dir),
        }
    }

    /// In-place transform: `buf` is both input and output
    /// (`buf.len() == n`, `scratch.len() >= self.scratch_len()`). This is
    /// the batched driver's hot path — no output buffer, no per-call
    /// allocation.
    pub fn process_inplace(
        &self,
        buf: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: FftDirection,
    ) {
        assert_eq!(buf.len(), self.n, "FftPlan in-place buffer length mismatch");
        assert!(
            scratch.len() >= self.scratch_len(),
            "FftPlan scratch too small: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        match &self.strategy {
            Strategy::Tiny => {}
            Strategy::Iterative(engine) => {
                engine.process_inplace(buf, scratch, dir);
                if dir == FftDirection::Inverse {
                    scale_by_recip_n(buf, self.n);
                }
            }
            Strategy::Bluestein(b) => b.process_inplace(buf, scratch, dir),
        }
    }

    /// Forward transform into `output`.
    pub fn forward(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        self.process(input, output, scratch, FftDirection::Forward);
    }

    /// Inverse transform (scaled by `1/n`) into `output`.
    pub fn inverse(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        self.process(input, output, scratch, FftDirection::Inverse);
    }

    /// Allocating convenience wrapper around [`FftPlan::forward`].
    pub fn forward_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); self.n];
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.forward(input, &mut out, &mut scratch);
        out
    }

    /// Allocating convenience wrapper around [`FftPlan::inverse`].
    pub fn inverse_vec(&self, input: &[Complex<T>]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::zero(); self.n];
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.inverse(input, &mut out, &mut scratch);
        out
    }

    /// True if this plan fell back to the Bluestein strategy.
    pub fn is_bluestein(&self) -> bool {
        matches!(self.strategy, Strategy::Bluestein(_))
    }

    /// Number of iterative butterfly stages (`0` for tiny and Bluestein
    /// plans) — exposed for scratch audits and tests.
    pub fn stage_count(&self) -> usize {
        match &self.strategy {
            Strategy::Iterative(engine) => engine.stage_count(),
            _ => 0,
        }
    }
}

#[inline]
fn scale_by_recip_n<T: Real>(buf: &mut [Complex<T>], n: usize) {
    let scale = T::from_usize(n).recip();
    for v in buf.iter_mut() {
        *v = v.scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::naive_dft;
    use fftmatvec_numeric::SplitMix64;

    type C = Complex<f64>;

    fn random_signal(n: usize, seed: u64) -> Vec<C> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| C::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
    }

    fn max_err(a: &[C], b: &[C]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn factorization() {
        assert_eq!(factorize(1), Some(vec![]));
        assert_eq!(factorize(8), Some(vec![4, 2]));
        assert_eq!(factorize(16), Some(vec![4, 4]));
        assert_eq!(factorize(2000), Some(vec![4, 4, 5, 5, 5]));
        assert_eq!(factorize(15), Some(vec![3, 5]));
        assert_eq!(factorize(49), Some(vec![7, 7]));
        assert_eq!(factorize(61), Some(vec![61]));
        assert_eq!(factorize(67), None); // prime > MAX_RADIX
        assert_eq!(factorize(2 * 67), None);
    }

    #[test]
    fn matches_naive_dft_all_small_sizes() {
        for n in 1..=64usize {
            let x = random_signal(n, n as u64);
            let plan = FftPlan::<f64>::new(n);
            let fast = plan.forward_vec(&x);
            let mut slow = vec![C::zero(); n];
            naive_dft(&x, &mut slow, FftDirection::Forward);
            let err = max_err(&fast, &slow);
            assert!(err < 1e-10 * (n as f64), "n={n} err={err}");
        }
    }

    #[test]
    fn matches_naive_dft_inverse_small_sizes() {
        for n in [1usize, 2, 3, 6, 8, 12, 20, 30, 48, 64] {
            let x = random_signal(n, 100 + n as u64);
            let plan = FftPlan::<f64>::new(n);
            let fast = plan.inverse_vec(&x);
            let mut slow = vec![C::zero(); n];
            naive_dft(&x, &mut slow, FftDirection::Inverse);
            assert!(max_err(&fast, &slow) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn roundtrip_paper_sizes() {
        // 2·N_t for N_t ∈ {1000, 512, 100, 250}: the sizes FFTMatvec uses.
        for n in [2000usize, 1024, 200, 500, 2048] {
            let x = random_signal(n, n as u64);
            let plan = FftPlan::<f64>::new(n);
            let freq = plan.forward_vec(&x);
            let back = plan.inverse_vec(&freq);
            assert!(max_err(&back, &x) < 1e-12, "n={n}");
        }
    }

    #[test]
    fn inplace_matches_out_of_place_all_strategies() {
        // Iterative (single- and multi-stage), Bluestein, and tiny.
        for n in [1usize, 2, 4, 7, 8, 61, 64, 67, 101, 200, 500, 1024, 2000] {
            let plan = FftPlan::<f64>::new(n);
            let x = random_signal(n, 7 * n as u64 + 3);
            let mut scratch = vec![C::zero(); plan.scratch_len()];
            for dir in [FftDirection::Forward, FftDirection::Inverse] {
                let mut want = vec![C::zero(); n];
                plan.process(&x, &mut want, &mut scratch, dir);
                let mut buf = x.clone();
                plan.process_inplace(&mut buf, &mut scratch, dir);
                assert!(max_err(&buf, &want) < 1e-13, "n={n} {dir:?}");
            }
        }
    }

    #[test]
    fn scratch_len_contract_is_exact() {
        // Tiny and single-stage schedules need no scratch at all.
        for n in [1usize, 2, 3, 4, 5, 61] {
            assert_eq!(FftPlan::<f64>::new(n).scratch_len(), 0, "n={n}");
        }
        // Multi-stage iterative schedules need exactly one partner buffer.
        for n in [8usize, 1024, 2000, 2048] {
            let plan = FftPlan::<f64>::new(n);
            assert!(plan.stage_count() >= 2);
            assert_eq!(plan.scratch_len(), n, "n={n}");
        }
        // Bluestein: chirped signal + ping-pong partner, both length m.
        let plan = FftPlan::<f64>::new(67);
        assert!(plan.is_bluestein());
        assert_eq!(plan.scratch_len(), 2 * (2 * 67 - 1usize).next_power_of_two());
    }

    #[test]
    fn roundtrip_prime_sizes_use_bluestein() {
        for n in [67usize, 97, 101, 127, 251] {
            let plan = FftPlan::<f64>::new(n);
            assert!(plan.is_bluestein(), "n={n} should be Bluestein");
            let x = random_signal(n, n as u64);
            let freq = plan.forward_vec(&x);
            let back = plan.inverse_vec(&freq);
            assert!(max_err(&back, &x) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        let n = 67;
        let x = random_signal(n, 7);
        let plan = FftPlan::<f64>::new(n);
        let fast = plan.forward_vec(&x);
        let mut slow = vec![C::zero(); n];
        naive_dft(&x, &mut slow, FftDirection::Forward);
        assert!(max_err(&fast, &slow) < 1e-10);
    }

    #[test]
    fn parseval() {
        let n = 240;
        let x = random_signal(n, 5);
        let plan = FftPlan::<f64>::new(n);
        let freq = plan.forward_vec(&x);
        let tx: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let tf: f64 = freq.iter().map(|v| v.norm_sqr()).sum();
        assert!((tf - n as f64 * tx).abs() < 1e-8 * tf, "Parseval violated");
    }

    #[test]
    fn linearity() {
        let n = 60;
        let x = random_signal(n, 1);
        let y = random_signal(n, 2);
        let plan = FftPlan::<f64>::new(n);
        let a = C::new(1.5, -0.5);
        let mixed: Vec<C> = x.iter().zip(&y).map(|(&xi, &yi)| a * xi + yi).collect();
        let fx = plan.forward_vec(&x);
        let fy = plan.forward_vec(&y);
        let fmixed = plan.forward_vec(&mixed);
        let expect: Vec<C> = fx.iter().zip(&fy).map(|(&xi, &yi)| a * xi + yi).collect();
        assert!(max_err(&fmixed, &expect) < 1e-11);
    }

    #[test]
    fn f32_plan_roundtrip_paper_sizes() {
        for n in [200usize, 500, 1024, 2000, 2048] {
            let mut rng = SplitMix64::new(9 + n as u64);
            let x: Vec<Complex<f32>> = (0..n)
                .map(|_| Complex::new(rng.uniform(-1.0, 1.0) as f32, rng.uniform(-1.0, 1.0) as f32))
                .collect();
            let plan = FftPlan::<f32>::new(n);
            let freq = plan.forward_vec(&x);
            let back = plan.inverse_vec(&freq);
            let err = x.iter().zip(&back).map(|(a, b)| (*a - *b).abs()).fold(0.0f32, f32::max);
            // Single-precision roundtrip error ~ eps·log2(n).
            assert!(err < 1e-5, "n={n} err={err}");
        }
    }

    #[test]
    fn direction_flip() {
        assert_eq!(FftDirection::Forward.flip(), FftDirection::Inverse);
        assert_eq!(FftDirection::Inverse.flip(), FftDirection::Forward);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_length_rejected() {
        let _ = FftPlan::<f64>::new(0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_rejected() {
        let plan = FftPlan::<f64>::new(8);
        let x = vec![C::zero(); 4];
        let mut out = vec![C::zero(); 8];
        let mut scratch = vec![C::zero(); plan.scratch_len()];
        plan.forward(&x, &mut out, &mut scratch);
    }
}
