//! # fftmatvec-fft — plan-based FFT substrate
//!
//! The FFTMatvec algorithm needs batched 1-D FFTs of length `2·N_t` where
//! `N_t` is an application-chosen number of timesteps (e.g. 1000, so the
//! transform length 2000 = 2⁴·5³ is *not* a power of two). The paper uses
//! cuFFT/hipFFT; this crate is the from-scratch replacement:
//!
//! * [`FftPlan`] — Stockham-style iterative mixed-radix engine
//!   (the private `iterative` module) for sizes whose prime factors are ≤ 61, with
//!   hand-tuned radix-2/4 butterflies and table-driven odd radices;
//!   Bluestein's chirp-z algorithm for anything with a larger prime
//!   factor. Per-stage twiddles are precomputed at plan time (the "setup
//!   phase" of the paper, always done in double precision by the caller),
//!   and execution is available both out-of-place and in place.
//! * [`cache`] — the process-wide plan cache: one shared plan per
//!   `(n, precision, kind)`, behind cheap [`cache::PlanHandle`] clones, so
//!   call sites never rebuild twiddle tables.
//! * [`RealFftPlan`] — real-to-complex forward / complex-to-real inverse
//!   transforms using the packed half-length complex trick. For an even
//!   length `n` the forward transform returns `n/2 + 1` complex bins —
//!   exactly why the paper's frequency-domain SBGEMV batch count is
//!   `N_t + 1` (Section 2.4).
//! * [`batch`] — contiguous batched execution through one shared scratch
//!   arena ([`scratch`]), parallelized across the batch dimension on the
//!   rayon work-stealing pool, standing in for
//!   `cufftPlanMany`/`hipfftPlanMany`.
//! * [`ndfft`] — separable N-dimensional transforms over nested cached
//!   1-D plans (outer `planWhole` / inner `planBlock` in the fastmat
//!   naming), transposing one axis at a time so every axis pass runs the
//!   contiguous batched driver. Built for the multi-level Toeplitz
//!   operators.
//! * [`dft`] — a naive O(n²) reference DFT used by tests and by the
//!   Bluestein implementation's own validation.
//! * [`recursive`] — the seed's recursive engine, kept as a differential
//!   test oracle and the benchmark baseline the iterative engine is gated
//!   against in CI.
//!
//! Conventions: forward transform uses `e^{-2πi jk/n}` and is unscaled;
//! the inverse uses `e^{+2πi jk/n}` and scales by `1/n`, so
//! `inverse(forward(x)) == x` up to roundoff. Everything is generic over
//! [`fftmatvec_numeric::Real`] (f32/f64) so the mixed-precision pipeline
//! can run each phase in its configured precision.

pub mod batch;
pub mod bluestein;
pub mod cache;
pub mod dft;
mod iterative;
pub mod ndfft;
pub mod plan;
pub mod real;
pub mod recursive;
pub mod scratch;
mod simd;

pub use batch::{BatchedFft, BatchedRealFft};
pub use cache::{PlanHandle, RealPlanHandle};
pub use ndfft::NdFft;
pub use plan::{FftDirection, FftPlan};
pub use real::RealFftPlan;
pub use recursive::RecursiveFftPlan;
pub use scratch::ScratchArena;

/// Theoretical FFT relative error growth factor `log2(n)` used by the
/// paper's error bound (Eq. 6, after [Van Loan 1992]).
pub fn fft_error_growth(n: usize) -> f64 {
    if n <= 1 {
        1.0
    } else {
        (n as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_growth_monotone() {
        assert_eq!(fft_error_growth(1), 1.0);
        assert_eq!(fft_error_growth(2), 1.0);
        assert!(fft_error_growth(2048) > fft_error_growth(1024));
        assert!((fft_error_growth(1 << 10) - 10.0).abs() < 1e-12);
    }
}
