//! Process-wide FFT plan cache.
//!
//! Plan construction is the expensive part of an FFT (factorization plus
//! `O(n)` twiddle tables per stage), and the FFTMatvec call sites — the
//! mixed-precision pipeline, the operator setup, every simulated rank of
//! the distributed matvec, and the batched drivers — all keep asking for
//! the same handful of lengths (`2·N_t` and its half). The cache maps
//! `(n, precision, kind)` to one shared, immutable plan behind an
//! [`Arc`] handle, standing in for cuFFT's plan reuse across thousands of
//! matvecs.
//!
//! Plans serve both transform directions from one twiddle table (the
//! inverse conjugates on the fly), so direction is not part of the key.
//! Lookups are double-checked: a miss builds the plan *outside* the lock
//! (plan construction may itself consult the cache — Bluestein plans need
//! a power-of-two inner plan, real plans need the half-length complex
//! plan) and the insert keeps whichever plan won the race, so two lookups
//! for the same key always return the same shared plan.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use fftmatvec_numeric::Real;

use crate::plan::FftPlan;
use crate::real::RealFftPlan;

/// Cheap shared handle to a cached complex plan.
pub type PlanHandle<T> = Arc<FftPlan<T>>;

/// Cheap shared handle to a cached real-transform plan.
pub type RealPlanHandle<T> = Arc<RealFftPlan<T>>;

/// Which plan family a cache entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Kind {
    Complex,
    Real,
}

/// Cache key: transform length, element precision (via `TypeId`, since
/// `T: Real` is `'static`), and plan family.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    n: usize,
    precision: TypeId,
    kind: Kind,
}

type Shared = Arc<dyn Any + Send + Sync>;

fn cache() -> MutexGuard<'static, HashMap<Key, Shared>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Shared>>> = OnceLock::new();
    // Poison-safe: a panic elsewhere cannot corrupt the map (entries are
    // only ever inserted, never mutated), so recover the guard instead of
    // propagating the panic into every later plan lookup.
    CACHE.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap_or_else(PoisonError::into_inner)
}

/// Double-checked lookup: build on miss without holding the lock, keep the
/// first inserted plan on a race.
fn lookup<P: Send + Sync + 'static>(key: Key, build: impl FnOnce() -> P) -> Arc<P> {
    if let Some(hit) = cache().get(&key) {
        return Arc::clone(hit).downcast::<P>().expect("plan cache type confusion");
    }
    let built: Shared = Arc::new(build());
    let entry = Arc::clone(cache().entry(key).or_insert(built));
    entry.downcast::<P>().expect("plan cache type confusion")
}

/// Shared complex plan for length `n` in precision `T`.
pub fn complex_plan<T: Real>(n: usize) -> PlanHandle<T> {
    lookup(Key { n, precision: TypeId::of::<T>(), kind: Kind::Complex }, || FftPlan::<T>::new(n))
}

/// Shared real-transform plan for even length `n` in precision `T`.
pub fn real_plan<T: Real>(n: usize) -> RealPlanHandle<T> {
    lookup(Key { n, precision: TypeId::of::<T>(), kind: Kind::Real }, || RealFftPlan::<T>::new(n))
}

/// Number of cached plans across all lengths, precisions, and kinds
/// (diagnostic; the cache never evicts).
pub fn len() -> usize {
    cache().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_lookups_share_one_plan() {
        let a = complex_plan::<f64>(96);
        let b = complex_plan::<f64>(96);
        assert!(Arc::ptr_eq(&a, &b), "same (n, precision) must share a plan");
        let ra = real_plan::<f64>(96);
        let rb = real_plan::<f64>(96);
        assert!(Arc::ptr_eq(&ra, &rb));
    }

    #[test]
    fn precision_and_kind_are_distinct_entries() {
        let before = len();
        let _c64 = complex_plan::<f64>(122);
        let _c32 = complex_plan::<f32>(122);
        let _r64 = real_plan::<f64>(122);
        assert!(len() >= before + 3, "f32/f64 and complex/real must not collide");
        // The f32 plan still transforms correctly (no type confusion).
        let x = vec![fftmatvec_numeric::Complex::<f32>::one(); 122];
        let freq = _c32.forward_vec(&x);
        assert!((freq[0].re - 122.0).abs() < 1e-3);
    }

    #[test]
    fn bluestein_lookup_populates_inner_plan() {
        // Building a Bluestein plan consults the cache for its inner
        // power-of-two plan; both must end up cached without deadlock.
        let n = 131; // prime > MAX_RADIX
        let plan = complex_plan::<f64>(n);
        assert!(plan.is_bluestein());
        let m = (2 * n - 1usize).next_power_of_two();
        let inner = complex_plan::<f64>(m);
        // The inner plan the Bluestein build cached is the same object a
        // direct lookup now returns.
        assert_eq!(inner.len(), m);
    }

    #[test]
    fn concurrent_lookups_converge() {
        let handles: Vec<_> =
            (0..8).map(|_| std::thread::spawn(|| complex_plan::<f64>(1500))).collect();
        let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for p in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], p), "racing lookups must converge to one plan");
        }
    }
}
