//! Device specifications for the simulated AMD Instinct GPUs.
//!
//! Peak numbers follow the public datasheets and the values quoted in the
//! paper (Section 4.1.2: "1.6 TB/s → 5.3 TB/s → 8 TB/s going from MI250X →
//! MI300X → MI355X"). The SBGEMV efficiency caps are calibrated from the
//! paper's reported achieved-bandwidth fractions: ~70% of peak on
//! MI250X/MI300X and ~35% on MI355X (rocBLAS not yet tuned for CDNA4),
//! with the FP32 path on CDNA4 proportionally weaker — the stated reason
//! the MI355X mixed-precision speedup saturates near 40% instead of the
//! 70–95% seen on the older parts.

use fftmatvec_numeric::Precision;

/// AMD CDNA architecture generation (drives tuning-cap selection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CdnaGeneration {
    /// MI200 series.
    Cdna2,
    /// MI300 series.
    Cdna3,
    /// MI350 series.
    Cdna4,
}

/// Specification of one simulated GPU (for MI250X: one GCD, matching the
/// paper's convention of counting each GCD as an independent GPU).
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Marketing name used in reports.
    pub name: &'static str,
    /// Architecture generation.
    pub generation: CdnaGeneration,
    /// Peak HBM bandwidth in bytes/second.
    pub peak_bw: f64,
    /// Peak FP64 vector throughput in FLOP/s.
    pub peak_fp64: f64,
    /// Peak FP32 vector throughput in FLOP/s.
    pub peak_fp32: f64,
    /// Peak FP16/BF16 vector throughput in FLOP/s (the tensor/matrix-core
    /// rates are far higher; GEMV-class kernels see the vector rate).
    pub peak_fp16: f64,
    /// Number of compute units.
    pub cu_count: usize,
    /// Wavefront (warp) width in lanes.
    pub wavefront: usize,
    /// LDS (shared memory) bytes per CU.
    pub lds_bytes: usize,
    /// Kernel launch latency in seconds.
    pub launch_latency: f64,
    /// HBM capacity in bytes (per GPU / GCD).
    pub memory_bytes: u64,
    /// Achieved-bandwidth cap for well-tuned GEMV-class kernels in FP64.
    pub sbgemv_cap_fp64: f64,
    /// Achieved-bandwidth cap for GEMV-class kernels in FP32.
    pub sbgemv_cap_fp32: f64,
    /// Achieved-bandwidth cap for GEMV-class kernels in FP16/BF16.
    /// Modeled below the FP32 cap: no vendor BLAS tunes half-precision
    /// GEMV on these parts (the 16-bit tiers are software-emulated here,
    /// pending a tensor-core backend).
    pub sbgemv_cap_fp16: f64,
    /// Achieved-bandwidth cap for streaming kernels (pad/unpad/cast).
    pub streaming_cap: f64,
    /// Achieved-bandwidth cap for FFT kernels.
    pub fft_cap: f64,
}

impl DeviceSpec {
    /// One Graphics Compute Die of an AMD Instinct MI250X (CDNA2).
    pub fn mi250x_gcd() -> Self {
        DeviceSpec {
            name: "MI250X (Single GCD)",
            generation: CdnaGeneration::Cdna2,
            peak_bw: 1.6384e12,
            peak_fp64: 23.95e12,
            peak_fp32: 23.95e12,
            peak_fp16: 47.9e12,
            cu_count: 110,
            wavefront: 64,
            lds_bytes: 64 * 1024,
            launch_latency: 2.5e-6,
            memory_bytes: 64 * (1u64 << 30),
            sbgemv_cap_fp64: 0.72,
            // FP32 GEMV on CDNA2 is a little less tuned than FP64 — this
            // produces the paper's ~75% (vs MI300X's ~95%) mixed speedup.
            sbgemv_cap_fp32: 0.64,
            sbgemv_cap_fp16: 0.55,
            streaming_cap: 0.85,
            fft_cap: 0.80,
        }
    }

    /// AMD Instinct MI300X (CDNA3).
    pub fn mi300x() -> Self {
        DeviceSpec {
            name: "MI300X",
            generation: CdnaGeneration::Cdna3,
            peak_bw: 5.3e12,
            peak_fp64: 81.7e12,
            peak_fp32: 163.4e12,
            peak_fp16: 326.8e12,
            cu_count: 304,
            wavefront: 64,
            lds_bytes: 64 * 1024,
            launch_latency: 1.5e-6,
            memory_bytes: 192 * (1u64 << 30),
            sbgemv_cap_fp64: 0.72,
            sbgemv_cap_fp32: 0.70,
            sbgemv_cap_fp16: 0.60,
            streaming_cap: 0.85,
            fft_cap: 0.80,
        }
    }

    /// AMD Instinct MI355X (CDNA4). rocBLAS kernel parameters are tuned
    /// for CDNA2/3; the paper measures only ~35% of peak for SBGEMV here,
    /// and proportionally less in FP32 — hence the lower caps.
    pub fn mi355x() -> Self {
        DeviceSpec {
            name: "MI355X",
            generation: CdnaGeneration::Cdna4,
            peak_bw: 8.0e12,
            peak_fp64: 78.6e12,
            peak_fp32: 157.2e12,
            peak_fp16: 314.4e12,
            cu_count: 256,
            wavefront: 64,
            lds_bytes: 160 * 1024,
            launch_latency: 1.5e-6,
            memory_bytes: 288 * (1u64 << 30),
            sbgemv_cap_fp64: 0.37,
            sbgemv_cap_fp32: 0.26,
            sbgemv_cap_fp16: 0.20,
            streaming_cap: 0.80,
            fft_cap: 0.70,
        }
    }

    /// The three devices the paper evaluates, in presentation order.
    pub fn paper_lineup() -> Vec<DeviceSpec> {
        vec![Self::mi250x_gcd(), Self::mi300x(), Self::mi355x()]
    }

    /// GEMV-class tuning cap for a compute precision.
    pub fn sbgemv_cap(&self, p: Precision) -> f64 {
        match p {
            Precision::Half | Precision::BFloat16 => self.sbgemv_cap_fp16,
            Precision::Single => self.sbgemv_cap_fp32,
            Precision::Double => self.sbgemv_cap_fp64,
        }
    }

    /// Peak FLOP/s for a compute precision. The two 16-bit tiers share
    /// the FP16 vector rate (bf16 multiplies feed FP32 accumulators at
    /// the same issue width on CDNA).
    pub fn peak_flops(&self, p: Precision) -> f64 {
        match p {
            Precision::Half | Precision::BFloat16 => self.peak_fp16,
            Precision::Single => self.peak_fp32,
            Precision::Double => self.peak_fp64,
        }
    }

    /// Time to stream `bytes` at a given achieved efficiency.
    pub fn stream_time(&self, bytes: f64, efficiency: f64) -> f64 {
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0,1]");
        bytes / (self.peak_bw * efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_progression() {
        let lineup = DeviceSpec::paper_lineup();
        assert_eq!(lineup.len(), 3);
        // 1.6 → 5.3 → 8 TB/s (Section 4.1.2).
        assert!(lineup[0].peak_bw < lineup[1].peak_bw);
        assert!(lineup[1].peak_bw < lineup[2].peak_bw);
        assert!((lineup[2].peak_bw / lineup[0].peak_bw - 4.88).abs() < 0.1);
    }

    #[test]
    fn cdna4_sbgemv_caps_are_lower() {
        let mi300 = DeviceSpec::mi300x();
        let mi355 = DeviceSpec::mi355x();
        assert!(mi355.sbgemv_cap_fp64 < mi300.sbgemv_cap_fp64 / 1.5);
        assert!(mi355.sbgemv_cap_fp32 < mi355.sbgemv_cap_fp64);
    }

    #[test]
    fn stream_time_scales_linearly() {
        let d = DeviceSpec::mi300x();
        let t1 = d.stream_time(1e9, 0.8);
        let t2 = d.stream_time(2e9, 0.8);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        // 1 GB at 80% of 5.3 TB/s ≈ 236 µs.
        assert!((t1 - 1e9 / (5.3e12 * 0.8)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        DeviceSpec::mi300x().stream_time(1.0, 0.0);
    }

    #[test]
    fn memory_capacities_match_datasheets() {
        assert_eq!(DeviceSpec::mi250x_gcd().memory_bytes, 64 << 30);
        assert_eq!(DeviceSpec::mi300x().memory_bytes, 192 << 30);
        assert_eq!(DeviceSpec::mi355x().memory_bytes, 288 << 30);
    }

    #[test]
    fn precision_selectors() {
        let d = DeviceSpec::mi355x();
        assert_eq!(d.sbgemv_cap(Precision::Double), d.sbgemv_cap_fp64);
        assert_eq!(d.sbgemv_cap(Precision::Single), d.sbgemv_cap_fp32);
        assert_eq!(d.sbgemv_cap(Precision::Half), d.sbgemv_cap_fp16);
        assert_eq!(d.sbgemv_cap(Precision::BFloat16), d.sbgemv_cap_fp16);
        assert!(d.peak_flops(Precision::Single) > d.peak_flops(Precision::Double));
        assert!(d.peak_flops(Precision::Half) >= d.peak_flops(Precision::Single));
        // Half-GEMV is modeled as less tuned than FP32 on every device.
        for dev in DeviceSpec::paper_lineup() {
            assert!(dev.sbgemv_cap_fp16 < dev.sbgemv_cap_fp32, "{}", dev.name);
        }
    }
}
