//! Per-phase simulated clocks.
//!
//! The paper reports runtime *breakdowns* over the five matvec phases
//! (Figure 2/3) plus communication (Figure 4). [`PhaseTimes`] accumulates
//! modeled seconds per [`Phase`] and supports the two combinations the
//! distributed simulation needs: `max` across ranks (phases are bulk-
//! synchronous) and `add` across sequential stages.

use core::fmt;

/// The computational phases of the FFTMatvec algorithm (Section 2.4), plus
/// communication and setup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Phase 1: broadcast + zero-pad (includes fused casts).
    Pad,
    /// Phase 2: batched forward FFT of the input vector.
    Fft,
    /// Phase 3: frequency-domain strided batched GEMV (includes the
    /// TOSI↔SOTI reorderings, matching the paper's timing convention).
    Sbgemv,
    /// Phase 4: batched inverse FFT of the output vector.
    Ifft,
    /// Phase 5: unpad + reduction (includes fused casts).
    Unpad,
    /// Inter-GPU communication (broadcast/reduce).
    Comm,
    /// One-time setup (always double precision; not performance-critical).
    Setup,
}

impl Phase {
    /// The five compute phases in pipeline order (the figures' legend).
    pub const COMPUTE: [Phase; 5] =
        [Phase::Pad, Phase::Fft, Phase::Sbgemv, Phase::Ifft, Phase::Unpad];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Pad => "Pad",
            Phase::Fft => "FFT",
            Phase::Sbgemv => "SBGEMV",
            Phase::Ifft => "IFFT",
            Phase::Unpad => "Unpad",
            Phase::Comm => "Comm",
            Phase::Setup => "Setup",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Pad => 0,
            Phase::Fft => 1,
            Phase::Sbgemv => 2,
            Phase::Ifft => 3,
            Phase::Unpad => 4,
            Phase::Comm => 5,
            Phase::Setup => 6,
        }
    }
}

/// Accumulated simulated seconds per phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    times: [f64; 7],
}

impl PhaseTimes {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` to a phase.
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative phase time");
        self.times[phase.index()] += seconds;
    }

    /// Seconds accumulated in one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        self.times[phase.index()]
    }

    /// Total matvec time: compute phases + communication (setup excluded,
    /// matching the paper's reporting).
    pub fn total(&self) -> f64 {
        Phase::COMPUTE.iter().map(|&p| self.get(p)).sum::<f64>() + self.get(Phase::Comm)
    }

    /// Total over the five compute phases only.
    pub fn compute_total(&self) -> f64 {
        Phase::COMPUTE.iter().map(|&p| self.get(p)).sum()
    }

    /// Element-wise maximum — combining bulk-synchronous ranks.
    pub fn max_with(&mut self, other: &PhaseTimes) {
        for (a, b) in self.times.iter_mut().zip(&other.times) {
            *a = a.max(*b);
        }
    }

    /// Element-wise sum — sequential composition.
    pub fn add_with(&mut self, other: &PhaseTimes) {
        for (a, b) in self.times.iter_mut().zip(&other.times) {
            *a += *b;
        }
    }

    /// Fraction of the total spent in one phase (0 if total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(phase) / t
        }
    }

    /// Reset all phases to zero.
    pub fn clear(&mut self) {
        self.times = [0.0; 7];
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &p in &Phase::COMPUTE {
            write!(f, "{}={:.3}ms ", p.label(), self.get(p) * 1e3)?;
        }
        if self.get(Phase::Comm) > 0.0 {
            write!(f, "Comm={:.3}ms ", self.get(Phase::Comm) * 1e3)?;
        }
        write!(f, "total={:.3}ms", self.total() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_total() {
        let mut t = PhaseTimes::new();
        t.add(Phase::Sbgemv, 1.0e-3);
        t.add(Phase::Sbgemv, 0.5e-3);
        t.add(Phase::Fft, 0.1e-3);
        t.add(Phase::Setup, 100.0); // excluded from total
        assert!((t.get(Phase::Sbgemv) - 1.5e-3).abs() < 1e-15);
        assert!((t.total() - 1.6e-3).abs() < 1e-15);
        assert!((t.compute_total() - 1.6e-3).abs() < 1e-15);
    }

    #[test]
    fn comm_counts_toward_total_not_compute() {
        let mut t = PhaseTimes::new();
        t.add(Phase::Comm, 2.0e-3);
        t.add(Phase::Pad, 1.0e-3);
        assert!((t.total() - 3.0e-3).abs() < 1e-15);
        assert!((t.compute_total() - 1.0e-3).abs() < 1e-15);
    }

    #[test]
    fn rank_combination_is_max() {
        let mut a = PhaseTimes::new();
        a.add(Phase::Sbgemv, 2.0);
        a.add(Phase::Fft, 1.0);
        let mut b = PhaseTimes::new();
        b.add(Phase::Sbgemv, 1.0);
        b.add(Phase::Fft, 3.0);
        a.max_with(&b);
        assert_eq!(a.get(Phase::Sbgemv), 2.0);
        assert_eq!(a.get(Phase::Fft), 3.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut t = PhaseTimes::new();
        for (i, &p) in Phase::COMPUTE.iter().enumerate() {
            t.add(p, (i + 1) as f64);
        }
        let s: f64 = Phase::COMPUTE.iter().map(|&p| t.fraction(p)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let mut t = PhaseTimes::new();
        t.add(Phase::Sbgemv, 1.5e-3);
        let s = format!("{t}");
        assert!(s.contains("SBGEMV=1.500ms"));
        assert!(s.contains("total="));
    }

    #[test]
    fn clear_resets() {
        let mut t = PhaseTimes::new();
        t.add(Phase::Pad, 1.0);
        t.clear();
        assert_eq!(t.total(), 0.0);
    }
}
