//! # fftmatvec-gpu — the simulated-GPU substrate
//!
//! The paper's evaluation hardware (AMD Instinct MI250X/MI300X/MI355X) is
//! replaced by an analytical performance model, per the reproduction's
//! substitution rules. The model is deliberately the same one the paper
//! itself uses to *explain* its results: FFTMatvec is memory-bound in every
//! phase, so a kernel's time is
//!
//! ```text
//! t = launch_latency + max(bytes_moved / (peak_bw · efficiency),
//!                          flops / peak_flops)
//! ```
//!
//! where `efficiency` is the achieved fraction of peak HBM bandwidth. The
//! efficiency model captures exactly the effects Figure 1 and Section 3.1.1
//! identify:
//!
//! * **work-per-gridblock saturation** — a gridblock computing a single
//!   short dot product (the rocBLAS transpose SBGEMV with `m ≪ n`) cannot
//!   amortize launch/scheduling overhead, so achieved bandwidth collapses;
//! * **occupancy** — grids with fewer blocks than the CU count leave
//!   compute units idle;
//! * **per-device tuning caps** — rocBLAS kernels reach ~70% of peak on
//!   CDNA2/CDNA3 but only ~35% on the newer CDNA4 (MI355X), pending kernel
//!   parameter retuning (Section 4.1.2).
//!
//! Numerical results never come from this crate — arithmetic runs for real
//! on the CPU; only *times* are modeled.
//!
//! This crate is the cost-model *substrate*: device specs, kernel
//! profiles, and the phase clock. The executable front door is
//! `fftmatvec_backend::SimulatedDevice`, the device backend that runs
//! every primitive on the CPU while booking these modeled timings — use
//! it (via `.backend(..)` or `FFTMATVEC_BACKEND=simulated`) instead of
//! assembling [`KernelProfile`]s by hand.

pub mod clock;
pub mod device;
pub mod kernel;

pub use clock::{Phase, PhaseTimes};
pub use device::{CdnaGeneration, DeviceSpec};
pub use kernel::{dtype_for, KernelClass, KernelProfile};
