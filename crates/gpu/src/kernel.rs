//! The kernel cost model.
//!
//! A [`KernelProfile`] describes one GPU kernel launch in the terms the
//! paper's analysis uses: bytes moved, flops, launch geometry, and how much
//! contiguous work each gridblock performs. [`KernelProfile::estimate_time`]
//! turns that into seconds on a [`DeviceSpec`].
//!
//! The achieved-bandwidth model has three multiplicative terms:
//!
//! 1. a *class cap* — how well-tuned this kernel family is on the device
//!    ([`DeviceSpec::sbgemv_cap`] etc.; the CDNA4 gap lives here);
//! 2. *work-per-block saturation* — `w/(w + W_HALF)`: a gridblock that
//!    loads only a few hundred bytes (one short dot product) cannot hide
//!    scheduling latency. This single term reproduces the Figure-1
//!    collapse of the rocBLAS transpose SBGEMV for `m ≪ n`;
//! 3. *occupancy* — grids smaller than ~2 blocks/CU leave the device idle.

use fftmatvec_numeric::{DType, Precision};

use crate::device::DeviceSpec;

/// Work-per-gridblock (bytes) at which saturation reaches 50%.
/// Calibrated against the Figure-1 baseline annotations: a 512-byte dot
/// (m=128 real single) achieves ~15% of peak; an 8-KiB dot ~63%.
pub const WPB_HALF_SAT: f64 = 2560.0;

/// Asymptotic saturation for GEMV-class kernels with unbounded per-block
/// work (the best the launch geometry itself allows).
pub const WPB_MAX: f64 = 0.85;

/// The achieved-bandwidth cap of a *well-tuned* GEMV kernel on the
/// architectures rocBLAS is tuned for (CDNA2/3): ~72% of peak
/// (Section 4.1.2). Device caps below this value model under-tuned
/// architectures; kernels carrying their own efficiency law
/// (`efficiency_override`) are detuned by `device_cap / REFERENCE_CAP`.
pub const REFERENCE_CAP: f64 = 0.72;

/// Kernel families with distinct tuning caps on each device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    /// GEMV-like: streaming a matrix once, bandwidth-bound.
    Gemv,
    /// Pure memory movement: pad, unpad, cast, reorder.
    Streaming,
    /// Batched FFT passes.
    Fft,
}

/// One kernel launch, in cost-model terms.
#[derive(Clone, Debug)]
pub struct KernelProfile {
    /// Human-readable tag for reports.
    pub name: &'static str,
    /// Kernel family (selects the per-device tuning cap).
    pub class: KernelClass,
    /// Element datatype (selects FP32/FP64 caps and flop peaks).
    pub dtype: DType,
    /// Bytes read from HBM.
    pub bytes_read: f64,
    /// Bytes written to HBM.
    pub bytes_written: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// Total gridblocks launched (product of grid dims).
    pub gridblocks: f64,
    /// Bytes of HBM traffic attributable to a single gridblock's
    /// sequential work (dot-product length × element size for GEMV).
    pub work_bytes_per_block: f64,
    /// Hard efficiency override; when set, replaces the modeled
    /// saturation terms (used by the optimized-kernel model which has its
    /// own efficiency law).
    pub efficiency_override: Option<f64>,
}

impl KernelProfile {
    /// A streaming (memcpy-like) kernel moving `bytes_read + bytes_written`.
    pub fn streaming(
        name: &'static str,
        dtype: DType,
        bytes_read: f64,
        bytes_written: f64,
    ) -> Self {
        KernelProfile {
            name,
            class: KernelClass::Streaming,
            dtype,
            bytes_read,
            bytes_written,
            flops: 0.0,
            gridblocks: ((bytes_read + bytes_written) / 65536.0).max(1.0),
            work_bytes_per_block: 65536.0,
            efficiency_override: None,
        }
    }

    /// A batched-FFT launch: `passes` sweeps over `io_bytes` of data plus
    /// `5·n·log2(n)` flops per transform.
    pub fn fft(name: &'static str, dtype: DType, n: usize, batch: usize, passes: f64) -> Self {
        let io_bytes = (n * batch * dtype.bytes()) as f64;
        let flops = 5.0 * (n as f64) * (n.max(2) as f64).log2() * batch as f64;
        KernelProfile {
            name,
            class: KernelClass::Fft,
            dtype,
            bytes_read: passes * io_bytes,
            bytes_written: passes * io_bytes,
            flops,
            gridblocks: batch.max(1) as f64,
            work_bytes_per_block: (n * dtype.bytes()) as f64 * passes,
            efficiency_override: None,
        }
    }

    /// Total HBM traffic.
    #[inline]
    pub fn total_bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// The modeled achieved fraction of peak bandwidth on `dev`.
    ///
    /// The device's class cap is a *ceiling* (how tuned the stock kernels
    /// are on this architecture), not a multiplier: a kernel whose launch
    /// geometry saturates bandwidth reaches the cap; one that doesn't is
    /// limited by the geometry itself. Kernels with their own efficiency
    /// law (`efficiency_override`) are scaled by the device's detune
    /// relative to [`REFERENCE_CAP`] — this is how the optimized SBGEMV
    /// still lands at ~35% of peak on the untuned CDNA4 (Section 4.1.2).
    pub fn efficiency(&self, dev: &DeviceSpec) -> f64 {
        let cap = match self.class {
            KernelClass::Gemv => dev.sbgemv_cap(self.dtype.precision()),
            KernelClass::Streaming => dev.streaming_cap,
            KernelClass::Fft => dev.fft_cap,
        };
        // Occupancy: one gridblock per CU saturates a bandwidth-bound
        // kernel (each block keeps its CU's load queues busy).
        let full = dev.cu_count as f64;
        let occ = (self.gridblocks / full).clamp(0.25, 1.0);
        if let Some(e) = self.efficiency_override {
            let detune = (cap / REFERENCE_CAP).min(1.0);
            return (e * detune * occ).clamp(0.01, 1.0);
        }
        // Work-per-block saturation.
        let w = self.work_bytes_per_block.max(1.0);
        let sat = WPB_MAX * w / (w + WPB_HALF_SAT);
        (cap.min(sat) * occ).clamp(0.01, 1.0)
    }

    /// Modeled wall time of this launch on `dev`.
    pub fn estimate_time(&self, dev: &DeviceSpec) -> f64 {
        let eff = self.efficiency(dev);
        let mem_time = self.total_bytes() / (dev.peak_bw * eff);
        let flop_time = if self.flops > 0.0 {
            self.flops / dev.peak_flops(self.dtype.precision())
        } else {
            0.0
        };
        dev.launch_latency + mem_time.max(flop_time)
    }

    /// Achieved bandwidth (bytes/s) implied by the estimate — the metric
    /// `rocblas-bench` reports and Figure 1 plots.
    pub fn achieved_bandwidth(&self, dev: &DeviceSpec) -> f64 {
        self.total_bytes() / self.estimate_time(dev)
    }
}

/// Convenience: the dtype for a (complex?, precision) pair.
pub fn dtype_for(complex: bool, p: Precision) -> DType {
    match (complex, p) {
        (false, Precision::Half) => DType::RealF16,
        (false, Precision::BFloat16) => DType::RealBF16,
        (false, Precision::Single) => DType::RealF32,
        (false, Precision::Double) => DType::RealF64,
        (true, Precision::Half) => DType::ComplexF16,
        (true, Precision::BFloat16) => DType::ComplexBF16,
        (true, Precision::Single) => DType::ComplexF32,
        (true, Precision::Double) => DType::ComplexF64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemv_profile(wpb: f64, blocks: f64) -> KernelProfile {
        KernelProfile {
            name: "test",
            class: KernelClass::Gemv,
            dtype: DType::RealF32,
            bytes_read: 1e9,
            bytes_written: 1e6,
            flops: 0.0,
            gridblocks: blocks,
            work_bytes_per_block: wpb,
            efficiency_override: None,
        }
    }

    #[test]
    fn small_work_per_block_collapses_bandwidth() {
        let dev = DeviceSpec::mi300x();
        let short = gemv_profile(512.0, 1e6);
        let long = gemv_profile(8192.0, 1e6);
        let es = short.efficiency(&dev);
        let el = long.efficiency(&dev);
        assert!(es < 0.20, "short dot eff {es}");
        assert!(el > 0.40, "long dot eff {el}");
        assert!(el > 2.5 * es);
    }

    #[test]
    fn occupancy_penalty_for_tiny_grids() {
        let dev = DeviceSpec::mi300x();
        let few = gemv_profile(1048576.0, 8.0);
        let many = gemv_profile(1048576.0, 10_000.0);
        assert!(few.efficiency(&dev) < many.efficiency(&dev));
    }

    #[test]
    fn override_replaces_saturation_model() {
        let dev = DeviceSpec::mi300x();
        let mut p = gemv_profile(64.0, 1e5);
        p.dtype = DType::RealF64; // fp64 cap on MI300X == REFERENCE_CAP
        p.efficiency_override = Some(0.70);
        // Tiny work-per-block would collapse the modeled efficiency; the
        // override (the optimized kernel's own law) must win.
        assert!((p.efficiency(&dev) - 0.70).abs() < 1e-12);
    }

    #[test]
    fn override_is_detuned_on_cdna4() {
        let mi300 = DeviceSpec::mi300x();
        let mi355 = DeviceSpec::mi355x();
        let mut p = gemv_profile(1048576.0, 1e5);
        p.dtype = DType::RealF64;
        p.efficiency_override = Some(0.70);
        let e300 = p.efficiency(&mi300);
        let e355 = p.efficiency(&mi355);
        // MI355X detune ≈ 0.37/0.72 ⇒ optimized lands near 35% of peak.
        assert!(e355 < 0.6 * e300, "CDNA4 detune missing: {e355} vs {e300}");
        assert!((0.30..0.42).contains(&e355), "e355={e355}");
    }

    #[test]
    fn estimate_includes_launch_latency() {
        let dev = DeviceSpec::mi300x();
        let mut p = gemv_profile(1048576.0, 10_000.0);
        p.bytes_read = 0.0;
        p.bytes_written = 0.0;
        assert!((p.estimate_time(&dev) - dev.launch_latency).abs() < 1e-12);
    }

    #[test]
    fn achieved_bandwidth_below_peak() {
        let dev = DeviceSpec::mi355x();
        let p = gemv_profile(4096.0, 1e5);
        assert!(p.achieved_bandwidth(&dev) < dev.peak_bw);
    }

    #[test]
    fn fp32_halves_gemv_bytes_time_on_tuned_device() {
        // Same element count in fp32 vs fp64 → fp32 moves half the bytes;
        // on MI300X (similar caps) it should be close to 2× faster.
        let dev = DeviceSpec::mi300x();
        let n_elems = 1e9;
        let mk = |dtype: DType| KernelProfile {
            name: "gemv",
            class: KernelClass::Gemv,
            dtype,
            bytes_read: n_elems * dtype.bytes() as f64,
            bytes_written: 1e5,
            flops: 0.0,
            gridblocks: 1e5,
            work_bytes_per_block: 8192.0,
            efficiency_override: None,
        };
        let t64 = mk(DType::RealF64).estimate_time(&dev);
        let t32 = mk(DType::RealF32).estimate_time(&dev);
        let speedup = t64 / t32;
        assert!(speedup > 1.6 && speedup < 2.2, "speedup {speedup}");
    }

    #[test]
    fn fft_profile_flops() {
        let p = KernelProfile::fft("fft", DType::ComplexF64, 2000, 5000, 2.0);
        assert!(p.flops > 0.0);
        assert!(p.bytes_read > 0.0);
        let dev = DeviceSpec::mi300x();
        // Memory-bound: time should be driven by bytes, not flops.
        let mem = p.total_bytes() / (dev.peak_bw * p.efficiency(&dev));
        assert!(p.estimate_time(&dev) >= mem);
    }

    #[test]
    fn dtype_selector() {
        assert_eq!(dtype_for(true, Precision::Double), DType::ComplexF64);
        assert_eq!(dtype_for(false, Precision::Single), DType::RealF32);
        assert_eq!(dtype_for(false, Precision::Half), DType::RealF16);
        assert_eq!(dtype_for(true, Precision::BFloat16), DType::ComplexBF16);
    }
}
