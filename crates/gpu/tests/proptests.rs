//! Property-based tests for the GPU cost model: physical sanity
//! (bandwidth never exceeds peak, efficiency in (0, 1]), monotonicity in
//! bytes and work-per-block, and phase-time accounting closure.

use fftmatvec_gpu::{DeviceSpec, KernelClass, KernelProfile, Phase, PhaseTimes};
use fftmatvec_numeric::DType;
use proptest::prelude::*;

fn devices() -> Vec<DeviceSpec> {
    DeviceSpec::paper_lineup()
}

fn profile(bytes: f64, wpb: f64, blocks: f64, dtype: DType) -> KernelProfile {
    KernelProfile {
        name: "prop",
        class: KernelClass::Gemv,
        dtype,
        bytes_read: bytes,
        bytes_written: bytes * 0.01,
        flops: 0.0,
        gridblocks: blocks,
        work_bytes_per_block: wpb,
        efficiency_override: None,
    }
}

fn dtype_from(i: u8) -> DType {
    DType::ALL[(i % 4) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Achieved bandwidth never exceeds the device peak; efficiency stays
    /// in (0, 1]; time is positive and at least the bandwidth floor.
    #[test]
    fn physical_sanity(
        bytes in 1.0e3f64..1e12,
        wpb in 1.0f64..1e7,
        blocks in 1.0f64..1e7,
        d in 0u8..4,
    ) {
        for dev in devices() {
            let p = profile(bytes, wpb, blocks, dtype_from(d));
            let eff = p.efficiency(&dev);
            prop_assert!(eff > 0.0 && eff <= 1.0, "{}: eff {eff}", dev.name);
            let t = p.estimate_time(&dev);
            prop_assert!(t > 0.0);
            prop_assert!(t >= p.total_bytes() / dev.peak_bw, "faster than light");
            prop_assert!(p.achieved_bandwidth(&dev) <= dev.peak_bw * 1.0000001);
        }
    }

    /// More bytes never takes less time (same geometry).
    #[test]
    fn monotone_in_bytes(
        bytes in 1.0e3f64..1e11,
        factor in 1.0f64..100.0,
        wpb in 16.0f64..1e6,
        blocks in 1.0f64..1e6,
    ) {
        let dev = DeviceSpec::mi300x();
        let t1 = profile(bytes, wpb, blocks, DType::RealF64).estimate_time(&dev);
        let t2 = profile(bytes * factor, wpb, blocks, DType::RealF64).estimate_time(&dev);
        prop_assert!(t2 >= t1 * 0.9999999);
    }

    /// More work per gridblock never lowers efficiency (the Figure-1
    /// saturation law is monotone).
    #[test]
    fn monotone_in_work_per_block(
        wpb in 16.0f64..1e6,
        factor in 1.0f64..1000.0,
        d in 0u8..4,
    ) {
        let dev = DeviceSpec::mi250x_gcd();
        let e1 = profile(1e9, wpb, 1e6, dtype_from(d)).efficiency(&dev);
        let e2 = profile(1e9, wpb * factor, 1e6, dtype_from(d)).efficiency(&dev);
        prop_assert!(e2 >= e1 * 0.9999999, "{e1} -> {e2}");
    }

    /// Phase accounting: total == sum of compute phases + comm; fractions
    /// sum to one over the accounted phases; max_with is a pointwise
    /// upper bound of both operands.
    #[test]
    fn phase_times_closure(values in prop::collection::vec(0.0f64..1.0, 6)) {
        let phases = [Phase::Pad, Phase::Fft, Phase::Sbgemv, Phase::Ifft, Phase::Unpad, Phase::Comm];
        let mut t = PhaseTimes::new();
        for (&p, &v) in phases.iter().zip(&values) {
            t.add(p, v);
        }
        let sum: f64 = values.iter().sum();
        prop_assert!((t.total() - sum).abs() < 1e-12);
        let compute: f64 = values[..5].iter().sum();
        prop_assert!((t.compute_total() - compute).abs() < 1e-12);

        let mut other = PhaseTimes::new();
        other.add(Phase::Sbgemv, 2.0);
        let mut merged = t.clone();
        merged.max_with(&other);
        for &p in &phases {
            prop_assert!(merged.get(p) >= t.get(p));
            prop_assert!(merged.get(p) >= other.get(p));
        }
    }

    /// FFT profiles scale linearly in batch and stay memory-bound for
    /// the transform lengths FFTMatvec uses.
    #[test]
    fn fft_profile_scaling(n_exp in 6u32..13, batch in 1usize..4096) {
        let n = 1usize << n_exp;
        let p1 = KernelProfile::fft("f", DType::ComplexF64, n, batch, 2.0);
        let p2 = KernelProfile::fft("f", DType::ComplexF64, n, batch * 2, 2.0);
        prop_assert!((p2.total_bytes() / p1.total_bytes() - 2.0).abs() < 1e-9);
        prop_assert!((p2.flops / p1.flops - 2.0).abs() < 1e-9);
        let dev = DeviceSpec::mi300x();
        // Memory time dominates flop time at these sizes.
        let mem = p1.total_bytes() / (dev.peak_bw * p1.efficiency(&dev));
        prop_assert!(p1.estimate_time(&dev) <= mem + dev.launch_latency + 1e-12);
    }
}
