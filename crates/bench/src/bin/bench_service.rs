//! Serving-load gate: the CI check that the service's request
//! coalescing actually buys throughput under load.
//!
//! The harness drives one warm registered operator with a deterministic
//! open-loop arrival process (seeded exponential inter-arrivals — a
//! Poisson-style stream whose offered rate is calibrated to 2× the
//! single-request service capacity, i.e. genuine saturation) twice:
//!
//! * **coalesced** — the service's real configuration, windows up to 32
//!   requests wide;
//! * **batch1** — windows clamped to one request, so every submission
//!   pays the full per-apply path alone.
//!
//! Both runs see the same arrival stream on the same host, so the
//! coalesced/batch1 throughput ratio is a same-session statistic that
//! cancels machine speed — the committed `bench/baseline_service.json`
//! gates CI runners of any speed. Two absolute bars also apply:
//!
//! * **occupancy** (any host): coalesced windows must average ≥ 25% of
//!   `max_batch`, proving requests genuinely coalesce;
//! * **saturation** (hosts with ≥ 4 lanes): coalesced throughput must
//!   reach ≥ 1.5× batch1 — the batched window fans across the compute
//!   pool while single-request windows cannot, mirroring the paper's
//!   batch-occupancy argument for keeping the accelerator full. Hosts
//!   with fewer lanes print SKIPPED with the measured numbers.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_service`
//! Flags:
//! * `-quick` — fewer requests and shorter calibration (CI smoke mode)
//! * `-out <path>` — where to write the results document
//!   (default `BENCH_service.json`)
//! * `-check <path>` — baseline document to gate against
//! * `-tol <x>` — allowed relative speedup loss vs the baseline
//!   (default 1.25)
//! * `-min-speedup <x>` — the absolute saturation bar (default 1.5)
//! * `-min-occupancy <f>` — the occupancy bar as a fraction of
//!   `max_batch` (default 0.25)

use std::sync::Arc;
use std::time::{Duration, Instant};

use fftmatvec_bench::servicejson::{
    coalescing_speedup, format_document, gated_count, occupancy_failures, parse_document,
    regressions, saturation_failures, ServiceResult,
};
use fftmatvec_bench::{make_operator, rule, stuffed_vector, timing, Args};
use fftmatvec_core::{FftMatvec, LinearOperator, OpDirection};
use fftmatvec_numeric::SplitMix64;
use fftmatvec_service::{OperatorRegistry, Service, ServiceConfig};

/// Paper-shaped serving operator: N_d=8 sensors, N_m=64 parameters,
/// N_t=256 timesteps — one apply costs hundreds of microseconds, large
/// enough that the submitter thread is never the bottleneck, and a full
/// 32-wide window crosses the pipeline's parallel batch threshold.
const SHAPE: (usize, usize, usize) = (8, 64, 256);
const MAX_BATCH: usize = 32;
const OP_ID: &str = "tomo";

/// Sleep the open-loop clock to `t`. Always a real sleep, never a
/// yield-spin: on a small host a spinning submitter steals the core the
/// service worker needs, which would bias the coalesced mode (long
/// compute windows) against the batch1 mode. The ~50–100 µs sleep
/// overshoot only lowers the *achieved* arrival rate slightly, and
/// identically for both modes.
fn pace_until(t: Instant) {
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        std::thread::sleep(t - now);
    }
}

/// Drive `requests` arrivals at `offered_rps` through a fresh service
/// over `registry`, with windows bounded by `max_batch`, and report the
/// measured row. The arrival stream is fully determined by `seed`, so
/// both modes replay identical load.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    mode: &str,
    registry: &Arc<OperatorRegistry>,
    max_batch: usize,
    max_delay: Duration,
    requests: usize,
    offered_rps: f64,
    input: &[f64],
    seed: u64,
) -> ServiceResult {
    let service = Service::new(
        Arc::clone(registry),
        ServiceConfig { max_batch, max_delay, queue_capacity: 128, workers: 1 },
    );

    let mut rng = SplitMix64::new(seed);
    let mut tickets = Vec::with_capacity(requests);
    let start = Instant::now();
    let mut next = start;
    for _ in 0..requests {
        pace_until(next);
        // Admission rejections (Overloaded under the deliberate 2×
        // oversubscription) are part of the measurement: the service
        // sheds them and the stats row records how many.
        if let Ok(t) = service.submit(OP_ID, OpDirection::Forward, input.to_vec()) {
            tickets.push(t);
        }
        let u = rng.uniform(1e-12, 1.0);
        next += Duration::from_secs_f64(-u.ln() / offered_rps);
    }
    for t in tickets {
        t.wait().expect("admitted requests complete during the run");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = service.stats();
    drop(service);

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    ServiceResult {
        shape: format!("{}x{}x{}", SHAPE.0, SHAPE.1, SHAPE.2),
        mode: mode.to_string(),
        max_batch,
        threads,
        offered_rps,
        throughput_rps: stats.completed as f64 / elapsed,
        p50_us: stats.latency_quantile_us(0.50).unwrap_or(0.0),
        p99_us: stats.latency_quantile_us(0.99).unwrap_or(0.0),
        mean_batch: stats.mean_batch(),
        completed: stats.completed,
        rejected: stats.rejected,
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let out_path: String = args.get("out", "BENCH_service.json".to_string());
    let tol: f64 = args.get("tol", 1.25);
    let min_speedup: f64 = args.get("min-speedup", 1.5);
    let min_occupancy: f64 = args.get("min-occupancy", 0.25);
    let (requests, samples, sample_ms) = if quick { (160, 5, 20.0) } else { (480, 9, 40.0) };
    let (nd, nm, nt) = SHAPE;
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // One warm operator in one registry serves both modes — exactly the
    // persistence the registry exists for.
    let registry = Arc::new(OperatorRegistry::new());
    registry
        .register_fft(OP_ID, FftMatvec::builder(make_operator(nd, nm, nt, 3)))
        .expect("valid operator dims");
    let mv = FftMatvec::builder(make_operator(nd, nm, nt, 3)).build().expect("CPU build");
    let input = stuffed_vector(nm * nt, 5);
    let mut out = vec![0.0; nd * nt];

    // Calibrate the single-request service time, then offer 2× that
    // capacity: open-loop saturation by construction, on any host.
    let single_ns = timing::min_ns(
        || mv.apply_forward_into(&input, &mut out).expect("valid shapes"),
        samples,
        sample_ms,
    );
    drop(mv);
    let offered_rps = 2.0 / (single_ns * 1e-9);
    // Windows may wait long enough to fill at the offered rate (the
    // arrival stream delivers max_batch requests in max_batch/offered
    // seconds; double it for headroom).
    let max_delay = Duration::from_secs_f64(MAX_BATCH as f64 * single_ns * 1e-9);

    println!(
        "Service load gate: shape {nd}x{nm}x{nt}, {requests} requests at {offered_rps:.0} rps \
         (2x the {:.0} us single-apply), window {MAX_BATCH} / {:.1} ms (host parallelism: {hw})",
        single_ns / 1e3,
        max_delay.as_secs_f64() * 1e3,
    );

    let header = format!(
        "{:<10} {:>9} {:>12} {:>14} {:>9} {:>9} {:>10} {:>9} {:>8}",
        "mode",
        "max_batch",
        "offered_rps",
        "throughput_rps",
        "p50_us",
        "p99_us",
        "mean_batch",
        "completed",
        "rejected"
    );
    println!("{header}");
    rule(header.len());

    let mut results = Vec::new();
    for (mode, max_batch) in [("coalesced", MAX_BATCH), ("batch1", 1)] {
        let row =
            run_mode(mode, &registry, max_batch, max_delay, requests, offered_rps, &input, 17);
        println!(
            "{:<10} {:>9} {:>12.0} {:>14.0} {:>9.0} {:>9.0} {:>10.2} {:>9} {:>8}",
            row.mode,
            row.max_batch,
            row.offered_rps,
            row.throughput_rps,
            row.p50_us,
            row.p99_us,
            row.mean_batch,
            row.completed,
            row.rejected
        );
        results.push(row);
    }

    let shape_key = format!("{nd}x{nm}x{nt}");
    let speedup = coalescing_speedup(&results, &shape_key).expect("both modes measured");
    println!("coalescing speedup at saturation: {speedup:.2}x");

    let doc = format_document(if quick { "quick" } else { "full" }, &results);
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut failed = false;

    // Occupancy bar — any host: under 2× oversubscription the coalesced
    // lane must actually fill its windows.
    let occ = occupancy_failures(&results, min_occupancy);
    if occ.is_empty() {
        println!("occupancy gate: OK (mean window {:.2})", results[0].mean_batch);
    } else {
        failed = true;
        eprintln!("occupancy gate FAILED:");
        for f in &occ {
            eprintln!("  {f}");
        }
    }

    // Saturation bar — multi-core hosts only: one lane cannot outrun
    // itself, so a <4-lane host logs the numbers and skips enforcement.
    if hw < 4 {
        println!(
            "saturation gate: SKIPPED (host has {hw} < 4 hardware threads; \
             measured {speedup:.2}x vs the {min_speedup:.2}x bar)"
        );
    } else {
        let sat = saturation_failures(&results, min_speedup);
        if sat.is_empty() {
            println!("saturation gate: OK ({speedup:.2}x >= {min_speedup:.2}x)");
        } else {
            failed = true;
            eprintln!("saturation gate FAILED:");
            for f in &sat {
                eprintln!("  {f}");
            }
        }
    }

    // Baseline comparison — normalized, so it enforces everywhere.
    if let Some(baseline_path) =
        args.has("check").then(|| args.get("check", String::new())).filter(|p| !p.is_empty())
    {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline = parse_document(&text);
        assert!(
            gated_count(&baseline) > 0,
            "baseline {baseline_path} gates nothing — regenerate it"
        );
        let fails = regressions(&results, &baseline, tol);
        if fails.is_empty() {
            println!(
                "baseline gate: OK ({} shape(s) within {tol:.2}x of {baseline_path})",
                gated_count(&baseline)
            );
        } else {
            failed = true;
            eprintln!("baseline gate FAILED against {baseline_path}:");
            for f in &fails {
                eprintln!("  {f}");
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
