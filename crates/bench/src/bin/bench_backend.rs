//! Backend-dispatch overhead gate: the CI check that routing the matvec
//! primitives through `Arc<dyn DeviceBackend>` / `Arc<dyn BatchFft>`
//! costs nothing over the direct call path they wrap.
//!
//! The `DeviceBackend` refactor moved every pipeline primitive — batched
//! FFTs, phase-boundary casts, the pointwise symbol multiply, the
//! deterministic tree reduction — behind a trait object so the CPU pool,
//! the simulated device, and the portability backends are one dispatch
//! API. The trait boundary adds one vtable hop plus enum tier/length
//! validation per call; because every primitive is *batched*, that fixed
//! cost amortizes over thousands of elements and must disappear into
//! noise. This gate pins it there.
//!
//! Each row times the two legs *interleaved* (direct, trait, direct,
//! ...) over identical workloads, which cancels machine-state drift out
//! of the overhead ratio — the same technique as `bench_simd`. Two
//! checks:
//!
//! * **ceiling** — every row's trait/direct ratio must stay under
//!   `-max` (default 1.05: within 5% of the direct path);
//! * **baseline** — every row's ratio must stay within `-tol` of the
//!   committed `bench/baseline_backend.json`.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_backend`
//! Flags:
//! * `-out <path>` — write the measured document
//! * `-check <path>` — gate against a committed baseline document
//! * `-max <x>` — absolute overhead ceiling (default 1.05)
//! * `-tol <x>` — allowed overhead growth vs the baseline (default 1.10)
//! * `-quick` — shorter samples (the CI smoke mode)

use std::hint::black_box;
use std::sync::Arc;

use fftmatvec_backend::{CpuPool, DeviceBackend};
use fftmatvec_bench::backendjson::{self, BackendResult};
use fftmatvec_bench::timing::time_pair_ns;
use fftmatvec_bench::{rule, Args};
use fftmatvec_comm::collectives::tree_reduce_sum_in_place;
use fftmatvec_fft::BatchedRealFft;
use fftmatvec_numeric::{Complex, ComplexBuffer, Precision, Real, RealBuffer, SplitMix64, C64};

/// Batched FFT shape: the pipeline regime (transform length `2·N_t`,
/// one transform per operator row/column).
const FFT_N: usize = 1024;
const FFT_BATCH: usize = 32;
/// Elements per cast/pointwise/reduce call — a mid-sized pipeline phase
/// boundary.
const ELEMS: usize = 1 << 15;
/// Tree-reduce geometry: 8 rank-parts of 4096 elements.
const PARTS: usize = 8;

fn measure<A: FnMut(), B: FnMut()>(
    rows: &mut Vec<BackendResult>,
    primitive: &str,
    precision: &str,
    direct: A,
    via_trait: B,
    samples: usize,
    sample_ms: f64,
) {
    let (direct_ns, trait_ns) = time_pair_ns(direct, via_trait, samples, sample_ms);
    let row = BackendResult {
        primitive: primitive.to_string(),
        precision: precision.to_string(),
        direct_ns,
        trait_ns,
    };
    println!(
        "{:<18} {:<8} direct {:>12.1} ns   trait {:>12.1} ns   {:>7.3}x",
        row.primitive,
        row.precision,
        row.direct_ns,
        row.trait_ns,
        row.overhead()
    );
    rows.push(row);
}

/// Batched real FFT, forward and inverse, in tier `T`: the direct
/// [`BatchedRealFft`] engine against the same engine reached through
/// `device.real_fft(..)` as an `Arc<dyn BatchFft>`.
fn measure_fft<T: Real>(
    rows: &mut Vec<BackendResult>,
    device: &CpuPool,
    p: Precision,
    precision: &str,
    samples: usize,
    ms: f64,
) {
    let mut rng = SplitMix64::new(53);
    let mut host = vec![0.0f64; FFT_BATCH * FFT_N];
    rng.fill_uniform(&mut host, -1.0, 1.0);

    let engine = BatchedRealFft::<T>::new(FFT_N);
    let time_direct: Vec<T> = host.iter().map(|&x| T::from_f64(x)).collect();
    let mut spec_direct = vec![Complex::<T>::zero(); FFT_BATCH * (FFT_N / 2 + 1)];
    let mut back_direct = vec![T::from_f64(0.0); FFT_BATCH * FFT_N];

    let fft = device.real_fft(p, FFT_N).expect("CPU FFT plan");
    let time_trait = RealBuffer::from_f64(p, &host);
    let mut spec_trait = ComplexBuffer::zeros(p, FFT_BATCH * (FFT_N / 2 + 1));
    let mut back_trait = RealBuffer::zeros(p, FFT_BATCH * FFT_N);

    measure(
        rows,
        "fft_forward",
        precision,
        || engine.forward_batch(black_box(&time_direct), black_box(&mut spec_direct)),
        || fft.forward(black_box(&time_trait), black_box(&mut spec_trait)).unwrap(),
        samples,
        ms,
    );
    measure(
        rows,
        "fft_inverse",
        precision,
        || engine.inverse_batch(black_box(&spec_direct), black_box(&mut back_direct)),
        || fft.inverse(black_box(&spec_trait), black_box(&mut back_trait)).unwrap(),
        samples,
        ms,
    );
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let (samples, sample_ms) = if quick { (7, 10.0) } else { (11, 25.0) };
    let max_overhead: f64 = args.get("max", 1.05);
    let tol: f64 = args.get("tol", 1.10);

    let device = CpuPool::new();
    println!(
        "Backend dispatch gate: direct call path vs dyn DeviceBackend (ceiling {max_overhead:.2}x)"
    );
    rule(78);

    let mut rows = Vec::new();
    let mut rng = SplitMix64::new(59);

    measure_fft::<f64>(&mut rows, &device, Precision::Double, "f64", samples, sample_ms);
    measure_fft::<f32>(&mut rows, &device, Precision::Single, "f32", samples, sample_ms);

    // Phase-boundary real cast, f64 -> f32: one correct rounding per
    // element on both legs.
    {
        let mut host = vec![0.0f64; ELEMS];
        rng.fill_uniform(&mut host, -1.0, 1.0);
        let src_direct = host.clone();
        let mut dst_direct = vec![0.0f32; ELEMS];
        let src_trait = RealBuffer::from_f64(Precision::Double, &host);
        let mut dst_trait = RealBuffer::zeros(Precision::Single, ELEMS);
        measure(
            &mut rows,
            "cast_real",
            "f64->f32",
            || {
                for (o, &x) in dst_direct.iter_mut().zip(black_box(&src_direct)) {
                    *o = x as f32;
                }
            },
            || device.cast_real(black_box(&src_trait), Precision::Single, &mut dst_trait).unwrap(),
            samples,
            sample_ms,
        );
    }

    // Phase-boundary complex cast, f64 -> f32.
    {
        let zs: Vec<C64> =
            (0..ELEMS).map(|_| C64::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect();
        let src_direct = zs.clone();
        let mut dst_direct = vec![Complex::<f32>::zero(); ELEMS];
        let src_trait = ComplexBuffer::from_c64(Precision::Double, &zs);
        let mut dst_trait = ComplexBuffer::zeros(Precision::Single, ELEMS);
        measure(
            &mut rows,
            "cast_complex",
            "f64->f32",
            || {
                for (o, z) in dst_direct.iter_mut().zip(black_box(&src_direct)) {
                    *o = Complex::new(z.re as f32, z.im as f32);
                }
            },
            || {
                device
                    .cast_complex(black_box(&src_trait), Precision::Single, &mut dst_trait)
                    .unwrap()
            },
            samples,
            sample_ms,
        );
    }

    // Pointwise symbol multiply. The symbol is unit-modulus so repeated
    // in-place multiplies keep |io| constant — no drift into denormals
    // or infinities that would distort either leg's timing.
    {
        let sym: Vec<C64> = (0..ELEMS)
            .map(|_| {
                let theta = rng.uniform(0.0, std::f64::consts::TAU);
                C64::new(theta.cos(), theta.sin())
            })
            .collect();
        let io: Vec<C64> =
            (0..ELEMS).map(|_| C64::new(rng.uniform(0.5, 1.0), rng.uniform(0.5, 1.0))).collect();
        let sym_direct = sym.clone();
        let mut io_direct = io.clone();
        let sym_trait = ComplexBuffer::from_c64(Precision::Double, &sym);
        let mut io_trait = ComplexBuffer::from_c64(Precision::Double, &io);
        measure(
            &mut rows,
            "pointwise_multiply",
            "f64",
            || {
                for (g, s) in io_direct.iter_mut().zip(black_box(&sym_direct)) {
                    *g *= *s;
                }
            },
            || device.pointwise_multiply(&mut io_trait, black_box(&sym_trait), false).unwrap(),
            samples,
            sample_ms,
        );
    }

    // Deterministic tree reduction over rank-parts. Positive inputs so
    // the repeatedly re-reduced part 0 grows without sign cancellation.
    {
        let part = ELEMS / PARTS;
        let mut vals = vec![0.0f64; ELEMS];
        rng.fill_uniform(&mut vals, 0.0, 1.0);
        let mut flat_direct = vals.clone();
        let mut flat_trait = RealBuffer::from_f64(Precision::Double, &vals);
        measure(
            &mut rows,
            "tree_reduce",
            "f64",
            || tree_reduce_sum_in_place(black_box(&mut flat_direct), part),
            || device.tree_reduce(black_box(&mut flat_trait), part).unwrap(),
            samples,
            sample_ms,
        );
    }
    rule(78);

    // The dyn handle is what the pipeline actually holds — make sure the
    // measured device is used as one at least once so the comparison is
    // honest about the vtable.
    let as_dyn: Arc<dyn DeviceBackend> = Arc::new(device);
    assert_eq!(as_dyn.name(), "cpu-pool");

    let mode = if quick { "quick" } else { "full" };
    let out_path: String = args.get("out", String::new());
    if !out_path.is_empty() {
        std::fs::write(&out_path, backendjson::format_document(mode, &rows))
            .expect("writing -out file");
        println!("wrote {out_path}");
    }

    let mut failures = backendjson::overhead_failures(&rows, max_overhead);

    let check_path: String = args.get("check", String::new());
    if !check_path.is_empty() {
        let text = std::fs::read_to_string(&check_path)
            .unwrap_or_else(|e| panic!("reading baseline {check_path}: {e}"));
        let baseline = backendjson::parse_document(&text);
        assert!(backendjson::gated_count(&baseline) > 0, "baseline {check_path} gates nothing");
        failures.extend(backendjson::regressions(&rows, &baseline, tol));
    }

    if failures.is_empty() {
        println!("backend gate: OK ({} rows within the {max_overhead:.2}x ceiling)", rows.len());
    } else {
        eprintln!("backend gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
