//! Figure 2 — single-GPU F / F* matvec runtime breakdown on MI250X (one
//! GCD), MI300X, and MI355X.
//!
//! All phases double precision, `N_m = 5000`, `N_d = 100`, `N_t = 1000`
//! (the paper's configuration). Times come from the kernel cost model;
//! the SBGEMV share (~92% in the paper) and the bandwidth-ordered device
//! trend are the properties to check.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin fig2_breakdown`
//! Flags: `-nm <int> -nd <int> -nt <int>`

use fftmatvec_bench::{ms, rule, Args};
use fftmatvec_core::timing::{simulate_phases, MatvecDims};
use fftmatvec_core::PrecisionConfig;
use fftmatvec_gpu::{DeviceSpec, Phase};

fn main() {
    let args = Args::from_env();
    let dims = MatvecDims::new(
        args.get("nd", 100usize),
        args.get("nm", 5000usize),
        args.get("nt", 1000usize),
    );
    let cfg = PrecisionConfig::all_double();

    println!("Figure 2 — Single-GPU Matvec Runtime Breakdown (double precision)");
    println!("N_m = {}, N_d = {}, N_t = {}", dims.nm, dims.nd, dims.nt);
    println!();
    let header = format!(
        "{:<22} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} | {:>8}",
        "device", "op", "Pad", "FFT", "SBGEMV", "IFFT", "Unpad", "total ms", "SBGEMV%"
    );
    println!("{header}");
    rule(header.len());

    for dev in DeviceSpec::paper_lineup() {
        for (label, adjoint) in [("F", false), ("F*", true)] {
            let t = simulate_phases(dims, cfg, adjoint, &dev);
            println!(
                "{:<22} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} | {:>7.1}%",
                dev.name,
                label,
                ms(t.get(Phase::Pad)),
                ms(t.get(Phase::Fft)),
                ms(t.get(Phase::Sbgemv)),
                ms(t.get(Phase::Ifft)),
                ms(t.get(Phase::Unpad)),
                ms(t.total()),
                100.0 * t.fraction(Phase::Sbgemv)
            );
        }
    }
    println!();
    println!("paper reference: SBGEMV ≈ 92% of runtime; totals track peak BW 1.6 → 5.3 → 8 TB/s");
    println!(
        "                 (MI355X only reaches ~35% of peak on SBGEMV — CDNA4 kernels untuned —"
    );
    println!("                  so it lands near MI300X instead of ~1.5x ahead)");
}
