//! The artifact executable, mirroring the paper's `fft_matvec` CLI
//! (Artifact Description appendix): `-nm -nd -Nt` problem sizes, `-prec
//! xxxxx` five-phase precision configuration, `-rand` mantissa-stuffed
//! initialization, `-raw` machine-readable output, `-t` self-test, and
//! the artifact's timing-output convention (setup/total/cleanup, then
//! mean/min/max for the F and F* matvecs).
//!
//! Differences from the GPU artifact, stated up front at runtime: timings
//! are modeled on a simulated device (select with `-dev`); the matvec
//! arithmetic itself is real and runs on the CPU whenever the operator
//! fits in memory (below ~1.5 GB of F̂), otherwise the numerical check is
//! run at a proportionally scaled shape.
//!
//! Examples:
//! ```text
//! fft_matvec -t
//! fft_matvec -nm 5000 -nd 100 -Nt 1000 -prec dssdd -rand
//! fft_matvec -nm 1000 -nd 50 -Nt 200 -prec sssss -raw
//! ```

use fftmatvec_bench::{make_operator, stuffed_vector, Args};
use fftmatvec_core::timing::{simulate_phases, MatvecDims};
use fftmatvec_core::{DirectMatvec, FftMatvec, LinearOperator, PrecisionConfig};
use fftmatvec_gpu::{DeviceSpec, Phase};
use fftmatvec_numeric::vecmath::rel_l2_error;

/// F̂ size (bytes) above which the real-arithmetic check is scaled down.
const REAL_COMPUTE_BUDGET: usize = 1_500_000_000;

fn self_test() -> i32 {
    // The artifact's `./fft_matvec -t`: quick correctness pass.
    let (nd, nm, nt) = (4usize, 48usize, 64usize);
    let op = make_operator(nd, nm, nt, 1);
    let m = stuffed_vector(nm * nt, 2);
    let mv = FftMatvec::builder(op).build().expect("CPU build");
    let fft = mv.apply_forward(&m).expect("self-test shapes");
    let direct = DirectMatvec::new(mv.operator()).apply_forward(&m).expect("self-test shapes");
    let err = rel_l2_error(&fft, &direct);
    let d = stuffed_vector(nd * nt, 3);
    let lhs: f64 = fft.iter().zip(&d).map(|(a, b)| a * b).sum();
    let rhs: f64 =
        m.iter().zip(&mv.apply_adjoint(&d).expect("self-test shapes")).map(|(a, b)| a * b).sum();
    let adj = (lhs - rhs).abs() / lhs.abs().max(1.0);
    println!("self-test: fft-vs-direct rel error {err:.2e}, adjoint identity {adj:.2e}");
    if err < 1e-12 && adj < 1e-12 {
        println!("self-test PASSED");
        0
    } else {
        println!("self-test FAILED");
        1
    }
}

fn main() {
    let args = Args::from_env();
    if args.has("t") {
        std::process::exit(self_test());
    }

    let nm = args.get("nm", 5000usize);
    let nd = args.get("nd", 100usize);
    let nt = args.get("Nt", args.get("nt", 1000usize));
    let prec: String = args.get("prec", "ddddd".to_string());
    let cfg: PrecisionConfig = prec.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let raw = args.has("raw");
    let reps = args.get("reps", 100usize);
    let dev = match args.get("dev", "mi250x".to_string()).as_str() {
        "mi300x" => DeviceSpec::mi300x(),
        "mi355x" => DeviceSpec::mi355x(),
        _ => DeviceSpec::mi250x_gcd(),
    };

    let dims = MatvecDims::new(nd, nm, nt);
    let fwd = simulate_phases(dims, cfg, false, &dev);
    let adj = simulate_phases(dims, cfg, true, &dev);
    // Setup: double-precision batched FFT of the padded first block
    // column — one pass over nt*nd*nm doubles in, (nt+1)*nd*nm complex out.
    let setup_bytes = (nt * nd * nm * 8 + (nt + 1) * nd * nm * 16) as f64 * 2.0;
    let setup = setup_bytes / (dev.peak_bw * 0.7);

    // Real-arithmetic verification, scaled to the memory budget.
    let fhat_bytes = (nt + 1) * nd * nm * 16;
    let scale = if fhat_bytes > REAL_COMPUTE_BUDGET {
        (fhat_bytes as f64 / REAL_COMPUTE_BUDGET as f64).cbrt()
    } else {
        1.0
    };
    let (vnm, vnd, vnt) = (
        ((nm as f64 / scale) as usize).max(1),
        ((nd as f64 / scale) as usize).max(1),
        ((nt as f64 / scale) as usize).max(1),
    );
    let op = make_operator(vnd, vnm, vnt, 769);
    let m = if args.has("rand") { stuffed_vector(vnm * vnt, 7) } else { vec![1.0; vnm * vnt] };
    let mut mv = FftMatvec::builder(op).build().expect("CPU build");
    let baseline = mv.apply_forward(&m).expect("verification shapes");
    mv.set_config(cfg);
    let rel_err = rel_l2_error(&mv.apply_forward(&m).expect("verification shapes"), &baseline);

    if raw {
        println!("nm,nd,nt,prec,device,setup_s,f_total_s,fstar_total_s,rel_error,reps");
        println!(
            "{nm},{nd},{nt},{cfg},{},{:.6e},{:.6e},{:.6e},{:.6e},{reps}",
            dev.name.replace(' ', "_"),
            setup,
            fwd.total(),
            adj.total(),
            rel_err
        );
        return;
    }

    println!("FFTMatvec (Rust reproduction) — simulated {}", dev.name);
    println!("N_m = {nm}, N_d = {nd}, N_t = {nt}, prec = {cfg}, reps = {reps}");
    if scale > 1.0 {
        println!(
            "note: F_hat would need {:.1} GB; numerical check scaled by {scale:.1}x per axis \
             (N_m={vnm}, N_d={vnd}, N_t={vnt})",
            fhat_bytes as f64 / 1e9
        );
    }
    println!();
    // The artifact's first three lines: setup, total, cleanup.
    println!("setup    : {:>10.3} ms", setup * 1e3);
    println!("total    : {:>10.3} ms", (fwd.total() + adj.total()) * reps as f64 * 1e3);
    println!("cleanup  : {:>10.3} ms", 0.1);
    // Then mean/min/max for F and F* (deterministic model ⇒ equal).
    for (label, t) in [("F  matvec", &fwd), ("F* matvec", &adj)] {
        let ms = t.total() * 1e3;
        println!("{label}: mean {ms:>9.3} ms | min {ms:>9.3} ms | max {ms:>9.3} ms");
    }
    println!();
    println!("phase breakdown (F):  {fwd}");
    println!("phase breakdown (F*): {adj}");
    println!(
        "SBGEMV share: {:.1}% (F) / {:.1}% (F*)",
        100.0 * fwd.fraction(Phase::Sbgemv),
        100.0 * adj.fraction(Phase::Sbgemv)
    );
    println!();
    println!(
        "relative error vs ddddd (real arithmetic{}): {rel_err:.3e}",
        if args.has("rand") { ", mantissa-stuffed inputs" } else { "" }
    );
}
