//! FFT engine benchmark with machine-readable output — the data source
//! for `BENCH_fft.json` and the committed `bench/baseline.json` the CI
//! `bench-smoke` job gates on.
//!
//! Times a single out-of-place complex transform (the unit of work both
//! engines share) at the paper's sizes — `2·N_t` for
//! `N_t ∈ {100, 250, 512, 1000}` plus the power-of-two neighbours — in
//! all four lattice precisions (`f64`, `f32`, and the software-emulated
//! `f16`/`bf16` tiers), through:
//!
//! * `iterative` — the Stockham engine behind [`fftmatvec_fft::FftPlan`]
//!   (plan pulled from the process-wide cache, exactly like the pipeline
//!   call sites);
//! * `recursive` — the seed's recursive engine
//!   ([`fftmatvec_fft::RecursiveFftPlan`]), kept as the baseline the
//!   speedup is measured against.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_fft`
//! Flags:
//! * `-quick` — short samples (the CI smoke mode)
//! * `-out <path>` — write the JSON document (default `BENCH_fft.json`)
//! * `-check <path>` — compare against a baseline document; exits
//!   non-zero on any iterative entry regressing past the tolerance
//! * `-tol <x>` — regression budget for `-check` (default 1.25 = +25%)

use std::hint::black_box;

use fftmatvec_bench::benchjson::{self, BenchResult};
use fftmatvec_bench::timing::time_pair_ns;
use fftmatvec_bench::Args;
use fftmatvec_fft::{cache, FftDirection, RecursiveFftPlan};
use fftmatvec_numeric::{bf16, f16, Complex, Precision, Real, SplitMix64};

/// Row label for a precision — the regression gate keys rows on
/// `(size, precision)`, so the label must identify the *tier*, not the
/// byte width (f16 and bf16 share a width but not a format).
fn precision_label(p: Precision) -> &'static str {
    match p {
        Precision::Half => "f16",
        Precision::BFloat16 => "bf16",
        Precision::Single => "f32",
        Precision::Double => "f64",
    }
}

/// Paper transform sizes (`2·N_t`) plus power-of-two neighbours; all are
/// mixed-radix-friendly so both engines can run them.
const SIZES: [usize; 6] = [200, 500, 1024, 2000, 2048, 4096];

/// Measure both engines at size `n` in precision `T`. The timing
/// machinery (batch calibration, interleaved min-of-samples) lives in
/// [`fftmatvec_bench::timing`], shared with every gate binary.
fn measure_size<T: Real>(n: usize, samples: usize, sample_ms: f64, out: &mut Vec<BenchResult>) {
    let precision = precision_label(T::PRECISION);
    let mut rng = SplitMix64::new(n as u64);
    let x: Vec<Complex<T>> = (0..n)
        .map(|_| {
            Complex::new(T::from_f64(rng.uniform(-1.0, 1.0)), T::from_f64(rng.uniform(-1.0, 1.0)))
        })
        .collect();
    let mut y = vec![Complex::<T>::zero(); n];
    let mut y2 = vec![Complex::<T>::zero(); n];

    let plan = cache::complex_plan::<T>(n);
    let mut scratch = vec![Complex::<T>::zero(); plan.scratch_len()];
    let seed_plan = RecursiveFftPlan::<T>::new(n);
    let (iterative, recursive) = time_pair_ns(
        || plan.process(black_box(&x), &mut y, &mut scratch, FftDirection::Forward),
        || seed_plan.process(black_box(&x), &mut y2, FftDirection::Forward),
        samples,
        sample_ms,
    );
    for (engine, ns) in [("iterative", iterative), ("recursive", recursive)] {
        out.push(BenchResult {
            size: n,
            precision: precision.into(),
            engine: engine.into(),
            threads: rayon::current_num_threads(),
            ns_per_transform: ns,
        });
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let out_path: String = args.get("out", "BENCH_fft.json".to_string());
    let check_path: String = args.get("check", String::new());
    let tol: f64 = args.get("tol", 1.25);
    let (samples, sample_ms) = if quick { (7, 10.0) } else { (15, 20.0) };
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    for &n in &SIZES {
        measure_size::<f64>(n, samples, sample_ms, &mut results);
        measure_size::<f32>(n, samples, sample_ms, &mut results);
        // Software-emulated 16-bit tiers: slower than f32 on the CPU (the
        // emulation converts per element) — the columns exist to key the
        // gate and to carry through once a GPU backend makes them fast.
        measure_size::<f16>(n, samples, sample_ms, &mut results);
        measure_size::<bf16>(n, samples, sample_ms, &mut results);
    }

    // Human-readable view: engine comparison with speedups.
    println!(
        "FFT engine benchmark ({mode} mode, {} pool threads) — ns per forward transform",
        rayon::current_num_threads()
    );
    let header = format!(
        "{:>6} | {:>5} | {:>12} | {:>12} | {:>8}",
        "size", "prec", "iterative", "recursive", "speedup"
    );
    println!("{header}");
    fftmatvec_bench::rule(header.len());
    for &n in &SIZES {
        for prec in ["f64", "f32", "f16", "bf16"] {
            let get = |engine: &str| {
                results
                    .iter()
                    .find(|r| r.size == n && r.precision == prec && r.engine == engine)
                    .map(|r| r.ns_per_transform)
                    .unwrap_or(f64::NAN)
            };
            let (it, rec) = (get("iterative"), get("recursive"));
            println!("{:>6} | {:>5} | {:>12.0} | {:>12.0} | {:>7.2}x", n, prec, it, rec, rec / it);
        }
    }

    let doc = benchjson::format_document(mode, &results);
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path} ({} results)", results.len());

    if !check_path.is_empty() {
        let baseline_text = std::fs::read_to_string(&check_path)
            .unwrap_or_else(|e| panic!("reading baseline {check_path}: {e}"));
        let baseline = benchjson::parse_document(&baseline_text);
        assert!(!baseline.is_empty(), "baseline {check_path} contains no results");
        let gated = benchjson::gated_count(&baseline);
        assert!(
            gated > 0,
            "baseline {check_path} gates nothing (no iterative+recursive pairs) — \
             regenerate it with this binary"
        );
        let failures = benchjson::regressions(&results, &baseline, tol);
        if failures.is_empty() {
            println!("regression check vs {check_path}: OK ({gated} gated entries)");
        } else {
            eprintln!("regression check vs {check_path} FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
