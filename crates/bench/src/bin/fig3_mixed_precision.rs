//! Figure 3 — double precision vs the optimal mixed-precision
//! configuration (`dssdd`, tolerance 1e-7), per device — extended with
//! the 16-bit tiers of the enlarged precision lattice.
//!
//! Timings: cost model at the paper shape (N_m=5000, N_d=100, N_t=1000).
//! Errors: real mixed-precision arithmetic on a memory-scaled operator
//! with mantissa-stuffed inputs (flags `-enm -end -ent` control the error
//! measurement shape). The half-tier error table runs at a further
//! scaled shape (`-hnm -hnd -hnt`): the f16 format tops out at 65504, so
//! the phase-3 accumulation `n_m·(N_t/2)²·E[F]·E[m]` must stay inside
//! the representable range — itself a finding the enlarged lattice makes
//! visible.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin fig3_mixed_precision`

use fftmatvec_bench::{make_operator, measure_errors, ms, rule, Args};
use fftmatvec_core::timing::{simulate_phases, MatvecDims};
use fftmatvec_core::PrecisionConfig;
use fftmatvec_gpu::{DeviceSpec, Phase};

fn main() {
    let args = Args::from_env();
    let dims = MatvecDims::new(
        args.get("nd", 100usize),
        args.get("nm", 5000usize),
        args.get("nt", 1000usize),
    );
    let cfg_d = PrecisionConfig::all_double();
    let cfg_m = PrecisionConfig::optimal_forward();

    println!("Figure 3 — Single-GPU Mixed-Precision Performance (F matvec)");
    println!(
        "N_m = {}, N_d = {}, N_t = {}; optimal config = {} (tolerance 1e-7)",
        dims.nm, dims.nd, dims.nt, cfg_m
    );
    println!();
    let header = format!(
        "{:<22} {:>6} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} | {:>8}",
        "device", "config", "Pad", "FFT", "SBGEMV", "IFFT", "Unpad", "total ms", "speedup"
    );
    println!("{header}");
    rule(header.len());

    for dev in DeviceSpec::paper_lineup() {
        let td = simulate_phases(dims, cfg_d, false, &dev);
        let tm = simulate_phases(dims, cfg_m, false, &dev);
        for (cfg, t) in [(cfg_d, &td), (cfg_m, &tm)] {
            let speed = if cfg == cfg_m {
                format!("{:>7.2}x", td.total() / tm.total())
            } else {
                "       -".to_string()
            };
            println!(
                "{:<22} {:>6} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} | {}",
                dev.name,
                cfg.to_string(),
                ms(t.get(Phase::Pad)),
                ms(t.get(Phase::Fft)),
                ms(t.get(Phase::Sbgemv)),
                ms(t.get(Phase::Ifft)),
                ms(t.get(Phase::Unpad)),
                ms(t.total()),
                speed
            );
        }
    }
    println!();
    println!("paper reference speedups: MI250X ~1.7-1.95x, MI300X ~1.7-1.95x, MI355X ~1.4x");
    println!();

    // Measured relative error of the optimal configuration (real
    // arithmetic at a memory-scaled shape, mantissa-stuffed inputs).
    let end = args.get("end", 60usize);
    let enm = args.get("enm", 1500usize);
    let ent = args.get("ent", 400usize);
    println!(
        "measured relative error (real arithmetic, scaled shape N_d={end}, N_m={enm}, N_t={ent}):"
    );
    let op = make_operator(end, enm, ent, 42);
    let errs = measure_errors(op, &[cfg_m, PrecisionConfig::all_single()], 7);
    println!(
        "  {}  -> {:.3e}   (tolerance 1e-7: {})",
        cfg_m,
        errs[0],
        if errs[0] <= 1e-7 { "PASS" } else { "FAIL" }
    );
    println!("  sssss  -> {:.3e}   (off the Pareto front at 1e-7)", errs[1]);
    assert!(errs[0] <= 1e-7, "optimal config exceeded the paper's tolerance");
    assert!(errs[1] > errs[0], "all-single must be less accurate");

    // Enlarged lattice: the 16-bit anchor configurations, timed with the
    // cost model at the paper shape and error-measured at an
    // f16-range-safe shape (see the header note on dynamic range).
    let hnd = args.get("hnd", 6usize);
    let hnm = args.get("hnm", 64usize);
    let hnt = args.get("hnt", 32usize);
    println!();
    println!(
        "16-bit tiers (software-emulated; error shape N_d={hnd}, N_m={hnm}, N_t={hnt} — \
         scaled into the f16 dynamic range):"
    );
    let half_cfgs: Vec<PrecisionConfig> =
        ["hhhhh", "bbbbb", "dhhdd", "dbbdd"].iter().map(|s| s.parse().unwrap()).collect();
    let herrs = measure_errors(make_operator(hnd, hnm, hnt, 43), &half_cfgs, 9);
    let dev = DeviceSpec::mi300x();
    let t_d = simulate_phases(dims, PrecisionConfig::all_double(), false, &dev).total();
    for (cfg, err) in half_cfgs.iter().zip(&herrs) {
        let t = simulate_phases(dims, *cfg, false, &dev).total();
        println!(
            "  {cfg}  -> rel error {err:.3e}, modeled {:.2}x vs ddddd on {}",
            t_d / t,
            dev.name
        );
    }
    // The half-tier errors land in their ε regimes: worse than FP32,
    // h more accurate than b (ε_h = 2⁻¹⁰ < ε_b = 2⁻⁷).
    assert!(herrs[0] > 1e-5 && herrs[0] < 0.3, "hhhhh error {:.3e}", herrs[0]);
    assert!(herrs[0] < herrs[1], "hhhhh must beat bbbbb ({:.3e} vs {:.3e})", herrs[0], herrs[1]);
    // dhhdd and hhhhh share the dominant ε_h·n_m SBGEMV term, so their
    // measured errors are near-tied — only sanity-check the regime.
    assert!(
        herrs[2] < herrs[0] * 1.5,
        "dhhdd ({:.3e}) should track hhhhh ({:.3e})",
        herrs[2],
        herrs[0]
    );
}
