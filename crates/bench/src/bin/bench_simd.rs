//! SIMD-vs-scalar ratio gate: the CI check that the runtime-dispatched
//! vector kernels actually beat the portable scalar paths they shadow.
//!
//! Dispatch is a process-global runtime switch
//! ([`fftmatvec_numeric::simd::set_active_level`]), so — unlike the
//! thread-count gates — no re-exec is needed: each kernel is timed with
//! the two legs *interleaved* (portable, vector, portable, ...), which
//! cancels machine-state drift out of the speedup ratio. The measured
//! rows cover the three vectorized layers:
//!
//! * `convert_*` — the batched f16/bf16 ↔ f32 buffer casts;
//! * `fft_forward` — a full iterative transform (radix-4/radix-2
//!   butterfly stages) per precision tier;
//! * `sbgemv_notrans` — the optimized short-wide GEMV tile sweep.
//!
//! Two checks, mirroring the other bench gates:
//! * **floor** — the 16-bit conversion and butterfly kernels (the
//!   tentpole claim) must be at least `-min`× the scalar path;
//! * **baseline** — every row's speedup must stay within `-tol` of the
//!   committed `bench/baseline_simd.json`.
//!
//! On a host where no vector level is available (or the `simd` feature is
//! compiled out) the binary reports SKIPPED (exit 0) with the measured
//! numbers still in the log, like the parallel-speedup gate on a 1-core
//! runner.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_simd`
//! Flags:
//! * `-out <path>` — write the measured document
//! * `-check <path>` — gate against a committed baseline document
//! * `-tol <x>` — allowed speedup fade vs the baseline (default 1.25)
//! * `-min <x>` — floor for the 16-bit conversion/butterfly rows
//!   (default 1.0: "no slower than scalar")
//! * `-quick` — shorter samples (the CI smoke mode)

use std::hint::black_box;

use fftmatvec_bench::simdjson::{self, SimdResult};
use fftmatvec_bench::timing::time_pair_ns;
use fftmatvec_bench::{rule, Args};
use fftmatvec_blas::kernels::run_kernel;
use fftmatvec_blas::{BatchGeometry, GemvOp, KernelChoice};
use fftmatvec_fft::FftPlan;
use fftmatvec_numeric::simd::{
    active_level, narrow_f32_to_bf16, narrow_f32_to_f16, set_active_level, widen_bf16_to_f32,
    widen_f16_to_f32, SimdLevel,
};
use fftmatvec_numeric::{bf16, f16, Complex, Real, Scalar, SplitMix64};

/// Elements per conversion call. Deliberately L1-resident (4096 f32 =
/// 16 KiB out + 8 KiB in): at larger sizes both legs saturate memory
/// bandwidth and the ratio collapses toward 1.0 regardless of compute
/// width, which is the memory wall, not a kernel regression.
const CONV_LEN: usize = 1 << 12;
/// Transform length for the butterfly rows (pure power of two: every
/// stage is a vectorized radix-4/radix-2 butterfly).
const FFT_N: usize = 1024;
/// Short-wide SBGEMV shape (paper regime: `m ≪ n`), batched.
const GEMV_SHAPE: (usize, usize, usize) = (64, 256, 4);

/// Time `work` with dispatch forced portable vs forced to `level`,
/// interleaved, and append the row.
fn measure<F: FnMut()>(
    rows: &mut Vec<SimdResult>,
    kernel: &str,
    precision: &str,
    level: SimdLevel,
    work: F,
    samples: usize,
    sample_ms: f64,
) {
    // Both interleaved legs drive the same workload closure; the RefCell
    // lets the two `FnMut` legs share it.
    let work = std::cell::RefCell::new(work);
    let (portable_ns, simd_ns) = time_pair_ns(
        || {
            set_active_level(SimdLevel::Portable);
            (work.borrow_mut())();
        },
        || {
            set_active_level(level);
            (work.borrow_mut())();
        },
        samples,
        sample_ms,
    );
    set_active_level(level);
    let row = SimdResult {
        kernel: kernel.to_string(),
        precision: precision.to_string(),
        level: level.name().to_string(),
        portable_ns,
        simd_ns,
    };
    println!(
        "{:<16} {:<5} portable {:>12.1} ns   {} {:>12.1} ns   {:>6.2}x",
        row.kernel,
        row.precision,
        row.portable_ns,
        row.level,
        row.simd_ns,
        row.speedup()
    );
    rows.push(row);
}

/// The whole-buffer cast kernels, each driven through the same
/// [`measure`] helper (the public entry points read the active level, so
/// forcing dispatch works the same way as for the fused kernels).
fn measure_conversions(rows: &mut Vec<SimdResult>, level: SimdLevel, samples: usize, ms: f64) {
    let mut rng = SplitMix64::new(41);
    let f32s: Vec<f32> = (0..CONV_LEN).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
    let mut f16s = vec![f16::from_f32(0.0); CONV_LEN];
    let mut bf16s = vec![bf16::from_f32(0.0); CONV_LEN];
    narrow_f32_to_f16(&f32s, &mut f16s);
    narrow_f32_to_bf16(&f32s, &mut bf16s);
    let mut wide = vec![0.0f32; CONV_LEN];

    {
        let (src, dst) = (&f16s, &mut wide);
        measure(
            rows,
            "convert_widen",
            "f16",
            level,
            || widen_f16_to_f32(black_box(src), black_box(dst)),
            samples,
            ms,
        );
    }
    {
        let (src, dst) = (&bf16s, &mut wide);
        measure(
            rows,
            "convert_widen",
            "bf16",
            level,
            || widen_bf16_to_f32(black_box(src), black_box(dst)),
            samples,
            ms,
        );
    }
    {
        let (src, dst) = (&f32s, &mut f16s);
        measure(
            rows,
            "convert_narrow",
            "f16",
            level,
            || narrow_f32_to_f16(black_box(src), black_box(dst)),
            samples,
            ms,
        );
    }
    {
        let (src, dst) = (&f32s, &mut bf16s);
        measure(
            rows,
            "convert_narrow",
            "bf16",
            level,
            || narrow_f32_to_bf16(black_box(src), black_box(dst)),
            samples,
            ms,
        );
    }
}

fn measure_fft<T: Real>(
    rows: &mut Vec<SimdResult>,
    precision: &str,
    level: SimdLevel,
    samples: usize,
    ms: f64,
) {
    let mut rng = SplitMix64::new(43);
    let input: Vec<Complex<T>> = (0..FFT_N)
        .map(|_| {
            Complex::new(T::from_f64(rng.uniform(-1.0, 1.0)), T::from_f64(rng.uniform(-1.0, 1.0)))
        })
        .collect();
    let plan = FftPlan::<T>::new(FFT_N);
    let mut output = vec![Complex::<T>::zero(); FFT_N];
    let mut scratch = vec![Complex::<T>::zero(); plan.scratch_len()];
    measure(
        rows,
        "fft_forward",
        precision,
        level,
        || plan.forward(black_box(&input), black_box(&mut output), &mut scratch),
        samples,
        ms,
    );
}

fn measure_gemv<S: Scalar>(
    rows: &mut Vec<SimdResult>,
    precision: &str,
    level: SimdLevel,
    samples: usize,
    ms: f64,
) {
    let (m, n, batch) = GEMV_SHAPE;
    let mut rng = SplitMix64::new(47);
    let mut fill = |len: usize| -> Vec<S> {
        (0..len)
            .map(|_| S::from_f64_parts(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect()
    };
    let g = BatchGeometry::packed(m, n, GemvOp::NoTrans, batch);
    let a = fill(batch * m * n);
    let x = fill(batch * n);
    let mut y: Vec<S> = fill(batch * m);
    let (alpha, beta) = (S::one(), S::zero());
    measure(
        rows,
        "sbgemv_notrans",
        precision,
        level,
        || {
            run_kernel(
                KernelChoice::Optimized,
                GemvOp::NoTrans,
                alpha,
                black_box(&a),
                black_box(&x),
                beta,
                black_box(&mut y),
                &g,
            )
        },
        samples,
        ms,
    );
}

/// Rows the `-min` floor applies to: the tentpole's 16-bit conversion and
/// butterfly kernels.
fn floor_gated(r: &SimdResult) -> bool {
    (r.precision == "f16" || r.precision == "bf16")
        && (r.kernel.starts_with("convert") || r.kernel.starts_with("fft"))
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let (samples, sample_ms) = if quick { (7, 10.0) } else { (11, 25.0) };
    let tol: f64 = args.get("tol", 1.25);
    let min_speedup: f64 = args.get("min", 1.0);

    let level = active_level();
    println!(
        "SIMD ratio gate: portable scalar vs {} (min {min_speedup:.2}x on 16-bit rows)",
        level.name()
    );
    rule(78);

    let mut rows = Vec::new();
    measure_conversions(&mut rows, level, samples, sample_ms);
    measure_fft::<f64>(&mut rows, "f64", level, samples, sample_ms);
    measure_fft::<f32>(&mut rows, "f32", level, samples, sample_ms);
    measure_fft::<f16>(&mut rows, "f16", level, samples, sample_ms);
    measure_fft::<bf16>(&mut rows, "bf16", level, samples, sample_ms);
    measure_gemv::<f32>(&mut rows, "f32", level, samples, sample_ms);
    measure_gemv::<f16>(&mut rows, "f16", level, samples, sample_ms);
    measure_gemv::<bf16>(&mut rows, "bf16", level, samples, sample_ms);
    rule(78);

    let mode = if quick { "quick" } else { "full" };
    let out_path: String = args.get("out", String::new());
    if !out_path.is_empty() {
        std::fs::write(&out_path, simdjson::format_document(mode, &rows))
            .expect("writing -out file");
        println!("wrote {out_path}");
    }

    if level == SimdLevel::Portable {
        // No vector level to compare against: both legs measured the same
        // scalar code (the numbers above show it), so there is nothing to
        // enforce on this host/build.
        println!(
            "simd gate: SKIPPED (no SIMD level active — portable-only host or simd feature off)"
        );
        return;
    }

    let mut failures = Vec::new();
    for r in rows.iter().filter(|r| floor_gated(r)) {
        if r.speedup() < min_speedup {
            failures.push(format!(
                "kernel={} precision={}: {:.2}x < {min_speedup:.2}x floor",
                r.kernel,
                r.precision,
                r.speedup()
            ));
        }
    }

    let check_path: String = args.get("check", String::new());
    if !check_path.is_empty() {
        let text = std::fs::read_to_string(&check_path)
            .unwrap_or_else(|e| panic!("reading baseline {check_path}: {e}"));
        let baseline = simdjson::parse_document(&text);
        assert!(simdjson::gated_count(&baseline) > 0, "baseline {check_path} gates nothing");
        failures.extend(simdjson::regressions(&rows, &baseline, tol));
    }

    if failures.is_empty() {
        println!("simd gate: OK ({} rows measured at {})", rows.len(), level.name());
    } else {
        eprintln!("simd gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
