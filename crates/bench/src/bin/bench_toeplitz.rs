//! Multi-level Toeplitz gate: the CI check that the FFT-based
//! realizations deliver their two promises on real hardware.
//!
//! For each `(shape, direction)` row the harness builds one two-level
//! generator three ways — full circulant embedding, the split-FFT
//! memory-optimized path, and the dense reference assembly — then:
//!
//! * checks both FFT paths against the dense oracle in double
//!   (**differential gate**: relative L2 error below 1e-12, absolute on
//!   any host — a row is only recorded after it passes);
//! * reads both paths' peak workspace bytes from the pool diagnostics
//!   (**scratch gate**: the split path must stay at or under 0.75x the
//!   full embedding's peak, absolute — deterministic byte counts, no
//!   timing noise);
//! * times the full and split paths interleaved and the dense matvec in
//!   the same process, and gates the dense/full speedup — a
//!   same-session machine-normalized ratio — against the committed
//!   `bench/baseline_toeplitz.json`.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_toeplitz`
//! Flags:
//! * `-quick` — shorter timing windows (CI smoke mode)
//! * `-out <path>` — results document (default `BENCH_toeplitz.json`)
//! * `-check <path>` — baseline document to gate against
//! * `-tol <x>` — allowed relative speedup loss vs the baseline
//!   (default 1.5)
//! * `-margin <x>` — the split-scratch bar (default 0.75)

use fftmatvec_bench::toeplitzjson::{
    format_document, gated_count, parse_document, regressions, scratch_failures, ToeplitzResult,
};
use fftmatvec_bench::{rule, timing, Args};
use fftmatvec_core::{LinearOperator, OpDirection};
use fftmatvec_numeric::vecmath::rel_l2_error;
use fftmatvec_numeric::SplitMix64;
use fftmatvec_toeplitz::{ToeplitzGenerator, TwoLevelToeplitz};

/// One measurement row: two-level extents and the apply direction.
type Row = ((usize, usize), (usize, usize), OpDirection);

/// Random two-level generator with the main diagonal lifted — keeps the
/// dense reference well scaled so the differential check's relative
/// error is meaningful.
fn two_level_gen(outer: (usize, usize), inner: (usize, usize), seed: u64) -> ToeplitzGenerator {
    let inner_diags = inner.0 + inner.1 - 1;
    let n = (outer.0 + outer.1 - 1) * inner_diags;
    let mut diags = vec![0.0; n];
    SplitMix64::new(seed).fill_uniform(&mut diags, -1.0, 1.0);
    diags[(outer.1 - 1) * inner_diags + (inner.1 - 1)] += 4.0;
    ToeplitzGenerator::two_level(outer, inner, diags).expect("valid two-level generator")
}

/// Dense oracle apply (`y = A·x` or `y = Aᵀ·x`; the generator is real,
/// so adjoint is transpose).
fn dense_apply(a: &[f64], rows: usize, cols: usize, dir: OpDirection, x: &[f64], y: &mut [f64]) {
    match dir {
        OpDirection::Forward => {
            for (r, yr) in y.iter_mut().enumerate() {
                *yr = (0..cols).map(|c| a[r * cols + c] * x[c]).sum();
            }
        }
        OpDirection::Adjoint => {
            for (c, yc) in y.iter_mut().enumerate() {
                *yc = (0..rows).map(|r| a[r * cols + c] * x[r]).sum();
            }
        }
    }
}

fn dir_name(dir: OpDirection) -> &'static str {
    match dir {
        OpDirection::Forward => "forward",
        OpDirection::Adjoint => "adjoint",
    }
}

/// Measure one row: differential-check both FFT paths against the dense
/// oracle, read their peak workspaces, then time full/split interleaved
/// and the dense matvec in the same session.
fn run_row(
    outer: (usize, usize),
    inner: (usize, usize),
    dir: OpDirection,
    samples: usize,
    sample_ms: f64,
    failed: &mut bool,
) -> ToeplitzResult {
    let gen = two_level_gen(outer, inner, 11);
    let (rows, cols) = (gen.rows(), gen.cols());
    let dense = gen.dense();
    let full = TwoLevelToeplitz::builder(gen.clone()).build().expect("valid shapes");
    let split = TwoLevelToeplitz::builder(gen).split_fft(true).build().expect("valid shapes");

    let (in_len, out_len) = full.shape().io_lens(dir);
    let mut x = vec![0.0; in_len];
    SplitMix64::new(17).fill_uniform(&mut x, -1.0, 1.0);
    let mut y_full = vec![0.0; out_len];
    let mut y_split = vec![0.0; out_len];
    let mut y_dense = vec![0.0; out_len];

    // Differential gate first: timing a wrong answer is meaningless.
    full.apply_into(dir, &x, &mut y_full).expect("valid shapes");
    split.apply_into(dir, &x, &mut y_split).expect("valid shapes");
    dense_apply(&dense, rows, cols, dir, &x, &mut y_dense);
    for (path, y) in [("full", &y_full), ("split", &y_split)] {
        let err = rel_l2_error(y, &y_dense);
        if err.is_nan() || err >= 1e-12 {
            *failed = true;
            eprintln!(
                "differential gate FAILED: {path} path at {}x{}x{}x{} {} has rel err {err:e}",
                outer.0,
                outer.1,
                inner.0,
                inner.1,
                dir_name(dir)
            );
        }
    }

    let (full_ns, split_ns) = timing::time_pair_ns(
        || full.apply_into(dir, &x, &mut y_full).expect("valid shapes"),
        || split.apply_into(dir, &x, &mut y_split).expect("valid shapes"),
        samples,
        sample_ms,
    );
    let dense_ns = timing::min_ns(
        || dense_apply(&dense, rows, cols, dir, &x, &mut y_dense),
        samples,
        sample_ms,
    );

    ToeplitzResult {
        shape: format!("{}x{}x{}x{}", outer.0, outer.1, inner.0, inner.1),
        direction: dir_name(dir).to_string(),
        full_ns,
        split_ns,
        dense_ns,
        full_peak_bytes: full.workspace_peak_bytes(),
        split_peak_bytes: split.workspace_peak_bytes(),
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let out_path: String = args.get("out", "BENCH_toeplitz.json".to_string());
    let tol: f64 = args.get("tol", 1.5);
    let margin: f64 = args.get("margin", 0.75);
    let (samples, sample_ms) = if quick { (5, 20.0) } else { (9, 40.0) };

    // Grids past the FFT/dense crossover (n >= 32 on a 2-D square grid,
    // where the embedding lands on power-of-two transform lengths), plus
    // one odd/non-square row exercising the padding edge cases; the
    // adjoint row checks that the conjugate-spectrum path keeps the same
    // profile.
    let rows: &[Row] = &[
        ((32, 32), (32, 32), OpDirection::Forward),
        ((32, 32), (32, 32), OpDirection::Adjoint),
        ((64, 64), (64, 64), OpDirection::Forward),
        ((15, 11), (13, 9), OpDirection::Forward),
    ];

    let header = format!(
        "{:<14} {:>8} {:>11} {:>11} {:>12} {:>9} {:>10} {:>10} {:>8}",
        "shape",
        "dir",
        "full_ns",
        "split_ns",
        "dense_ns",
        "speedup",
        "full_peak",
        "split_peak",
        "scratch"
    );
    println!("{header}");
    rule(header.len());

    let mut failed = false;
    let mut results = Vec::new();
    for &(outer, inner, dir) in rows {
        let r = run_row(outer, inner, dir, samples, sample_ms, &mut failed);
        println!(
            "{:<14} {:>8} {:>11.0} {:>11.0} {:>12.0} {:>9.2} {:>10} {:>10} {:>7.0}%",
            r.shape,
            r.direction,
            r.full_ns,
            r.split_ns,
            r.dense_ns,
            r.full_speedup(),
            r.full_peak_bytes,
            r.split_peak_bytes,
            100.0 * r.scratch_ratio()
        );
        results.push(r);
    }

    let doc = format_document(if quick { "quick" } else { "full" }, &results);
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let scratch = scratch_failures(&results, margin);
    if scratch.is_empty() {
        println!("scratch gate: OK (split peak <= {margin:.2}x full peak everywhere)");
    } else {
        failed = true;
        eprintln!("scratch gate FAILED:");
        for f in &scratch {
            eprintln!("  {f}");
        }
    }

    if let Some(baseline_path) =
        args.has("check").then(|| args.get("check", String::new())).filter(|p| !p.is_empty())
    {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline = parse_document(&text);
        assert!(
            gated_count(&baseline) > 0,
            "baseline {baseline_path} gates nothing — regenerate it"
        );
        let fails = regressions(&results, &baseline, tol);
        if fails.is_empty() {
            println!(
                "baseline gate: OK ({} row(s) within {tol:.2}x of {baseline_path})",
                gated_count(&baseline)
            );
        } else {
            failed = true;
            eprintln!("baseline gate FAILED against {baseline_path}:");
            for f in &fails {
                eprintln!("  {f}");
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
