//! Section 3.2.1 — the first-order error bound (Eq. 6), predicted vs
//! measured.
//!
//! For a set of representative configurations and grid shapes, evaluates
//! the theoretical bound (with an estimated condition number κ(F̂)) and
//! compares against the measured relative error of the real computation.
//! A sound first-order bound should sit above the measurement but within
//! a few orders of magnitude (it is a worst-case inequality).
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin error_bound`
//! Flags: `-nd -nm -nt` (problem shape; defaults 16/512/64)

use fftmatvec_bench::{rule, stuffed_vector, Args};
use fftmatvec_comm::ProcessGrid;
use fftmatvec_core::error_analysis::{condition_estimate, error_bound, BoundParams};
use fftmatvec_core::{DistributedFftMatvec, LinearOperator, PrecisionConfig};
use fftmatvec_numeric::vecmath::rel_l2_error;
use fftmatvec_numeric::SplitMix64;

fn main() {
    let args = Args::from_env();
    let nd = args.get("nd", 16usize);
    let nm = args.get("nm", 512usize);
    let nt = args.get("nt", 64usize);

    let mut rng = SplitMix64::new(11);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    let m = stuffed_vector(nm * nt, 5);

    // Baseline and condition estimate.
    let single = DistributedFftMatvec::from_global(
        nd,
        nm,
        nt,
        &col,
        ProcessGrid::single(),
        PrecisionConfig::all_double(),
    )
    .unwrap();
    let baseline = single.apply_forward(&m).expect("bound-study shapes");
    let op =
        fftmatvec_core::BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
    let kappa = condition_estimate(&op, 4);

    println!("Error bound (Eq. 6) vs measured relative error — F matvec");
    println!("N_d = {nd}, N_m = {nm}, N_t = {nt}; estimated kappa(F_hat) = {kappa:.2e}");
    println!();
    let header = format!(
        "{:>7} | {:>9} | {:>12} | {:>12} | {:>9}",
        "config", "grid", "measured", "bound", "bound/meas"
    );
    println!("{header}");
    rule(header.len());

    let cases: Vec<(&str, ProcessGrid)> = vec![
        ("ddddd", ProcessGrid::single()),
        ("sdddd", ProcessGrid::single()),
        ("dsddd", ProcessGrid::single()),
        ("ddsdd", ProcessGrid::single()),
        ("dssdd", ProcessGrid::single()),
        ("sssss", ProcessGrid::single()),
        ("dssdd", ProcessGrid::new(1, 8)),
        ("dssds", ProcessGrid::new(1, 8)),
        ("dssds", ProcessGrid::new(4, 4)),
    ];

    for (cfg_str, grid) in cases {
        let cfg: PrecisionConfig = cfg_str.parse().unwrap();
        let dist = DistributedFftMatvec::from_global(nd, nm, nt, &col, grid, cfg).unwrap();
        let measured =
            rel_l2_error(&dist.apply_forward(&m).expect("bound-study shapes"), &baseline);
        let params =
            BoundParams { nt, n_local: nm.div_ceil(grid.cols), reduce_ranks: grid.cols, kappa };
        let bound = error_bound(cfg, &params).total;
        let ratio = if measured > 0.0 { bound / measured } else { f64::INFINITY };
        println!(
            "{:>7} | {:>4}x{:<4} | {:>12.3e} | {:>12.3e} | {:>9.1}",
            cfg.to_string(),
            grid.rows,
            grid.cols,
            measured,
            bound,
            ratio
        );
        if measured > 0.0 {
            assert!(
                bound >= measured,
                "bound violated for {cfg} on {}x{} grid: {bound:.3e} < {measured:.3e}",
                grid.rows,
                grid.cols
            );
        }
    }
    println!();
    println!("the bound is first-order worst case: expect it 1-4 orders above measurements,");
    println!("dominated by the SBGEMV term eps_3*n_m exactly as Section 3.2.1 concludes.");
}
