//! The mixed-precision Pareto sweep (Section 4.2.1, extended).
//!
//! For every five-phase precision configuration: simulated matvec time at
//! the paper shape on the selected device, and measured relative error
//! (real arithmetic at a memory-scaled shape, mantissa-stuffed inputs).
//! Prints the full table, marks the Pareto front, and selects the optimal
//! configuration for the requested tolerance — the paper's `dssdd`
//! analysis.
//!
//! `-tiers 2` (default) sweeps the paper's 2⁵ = 32 `{s,d}` space;
//! `-tiers 4` opens the full four-tier lattice (4⁵ = 1024 configurations
//! including the software-emulated `h`/`b` codes). The 16-bit error
//! measurements run emulated arithmetic, so a full-lattice sweep at the
//! default error shape takes minutes — shrink `-enm/-end/-ent` for a
//! quick look, and keep the error shape inside the f16 dynamic range
//! (the table flags configurations that overflow to non-finite output).
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin pareto_sweep`
//! Flags: `-dev mi250x|mi300x|mi355x`, `-tol <float>`, `-tiers 2|4`,
//!        `-nm -nd -nt` (timing shape), `-enm -end -ent` (error shape),
//!        `-raw` (machine-readable CSV, like the artifact's flag)

use fftmatvec_bench::{make_operator, measure_errors, rule, Args};
use fftmatvec_core::pareto::{optimal_for_tolerance, pareto_front, ParetoPoint};
use fftmatvec_core::timing::{simulate_phases, MatvecDims};
use fftmatvec_core::PrecisionConfig;
use fftmatvec_gpu::DeviceSpec;

fn main() {
    let args = Args::from_env();
    let dev = match args.get("dev", "mi300x".to_string()).as_str() {
        "mi250x" => DeviceSpec::mi250x_gcd(),
        "mi355x" => DeviceSpec::mi355x(),
        _ => DeviceSpec::mi300x(),
    };
    let tol: f64 = args.get("tol", 1e-7);
    let dims = MatvecDims::new(
        args.get("nd", 100usize),
        args.get("nm", 5000usize),
        args.get("nt", 1000usize),
    );
    let (end, enm, ent) =
        (args.get("end", 60usize), args.get("enm", 1500usize), args.get("ent", 400usize));
    let raw = args.has("raw");
    let tiers: usize = args.get("tiers", 2usize);

    let configs = match tiers {
        4 => PrecisionConfig::all_configs_full(),
        _ => PrecisionConfig::all_configs(),
    };
    let errors = measure_errors(make_operator(end, enm, ent, 42), &configs, 7);
    let points: Vec<ParetoPoint> = configs
        .iter()
        .zip(&errors)
        .map(|(&config, &rel_error)| ParetoPoint {
            config,
            time: simulate_phases(dims, config, false, &dev).total(),
            rel_error,
        })
        .collect();
    let baseline = points.iter().find(|p| p.config.is_all_double()).expect("ddddd present").time;
    let front = pareto_front(&points);
    let on_front = |p: &ParetoPoint| front.iter().any(|f| f.config == p.config);

    if raw {
        println!("config,time_s,speedup,rel_error,pareto");
        for p in &points {
            println!(
                "{},{:.6e},{:.4},{:.6e},{}",
                p.config,
                p.time,
                baseline / p.time,
                p.rel_error,
                u8::from(on_front(p))
            );
        }
    } else {
        println!(
            "Pareto sweep — {} (simulated), {} precision configurations ({}-tier lattice)",
            dev.name,
            points.len(),
            tiers.clamp(2, 4)
        );
        println!(
            "timing shape N_m={} N_d={} N_t={}; error shape N_m={enm} N_d={end} N_t={ent}",
            dims.nm, dims.nd, dims.nt
        );
        println!();
        let header = format!(
            "{:>7} | {:>10} | {:>8} | {:>11} | {:>6}",
            "config", "time ms", "speedup", "rel error", "front"
        );
        println!("{header}");
        rule(header.len());
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.time.total_cmp(&b.time));
        for p in &sorted {
            println!(
                "{:>7} | {:>10.3} | {:>7.2}x | {:>11.3e} | {:>6}",
                p.config.to_string(),
                p.time * 1e3,
                baseline / p.time,
                p.rel_error,
                if on_front(p) { "*" } else { "" }
            );
        }
        println!();
    }

    match optimal_for_tolerance(&points, tol) {
        Some(best) => {
            println!(
                "optimal config for tolerance {tol:.1e}: {} ({:.2}x speedup, rel error {:.2e})",
                best.config,
                baseline / best.time,
                best.rel_error
            );
            println!("paper reference: dssdd (FFT of m + SBGEMV in single) at tolerance 1e-7");
        }
        None => println!("no configuration meets tolerance {tol:.1e}"),
    }
}
