//! Matvec API benchmark with machine-readable output — the data source
//! for `BENCH_matvec.json` and the committed `bench/baseline_matvec.json`
//! the CI `bench-smoke` job gates on.
//!
//! Times one full `FftMatvec` application at three memory-scaled paper
//! shapes, in the all-double and paper-optimal configurations, in both
//! directions, through both API paths:
//!
//! * `alloc` — the allocating [`LinearOperator::apply_forward`] /
//!   `apply_adjoint` conveniences;
//! * `into` — the zero-allocation `apply_forward_into` /
//!   `apply_adjoint_into` hot paths on preallocated buffers.
//!
//! Each (shape, config, direction) pair is measured with the two paths
//! *interleaved* (same time windows), so their ratio — the statistic both
//! gates run on — cancels machine-state drift. The acceptance criterion
//! is structural: the `into` path must be no slower than the allocating
//! path at every benchmarked key.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_matvec`
//! Flags:
//! * `-quick` — short samples (the CI smoke mode)
//! * `-out <path>` — write the JSON document (default `BENCH_matvec.json`)
//! * `-check <path>` — compare into/alloc ratios against a baseline
//!   document; exits non-zero past the tolerance
//! * `-tol <x>` — regression budget for `-check` (default 1.25 = +25%)
//! * `-ratio-tol <x>` — intra-run "into no slower than alloc" margin
//!   (default 1.10; the two paths differ only by one output-vector
//!   allocation, so the ratio sits at ~1.0 and the margin is pure
//!   scheduler noise on shared CI runners)

use std::hint::black_box;

use fftmatvec_bench::matvecjson::{self, MatvecResult};
use fftmatvec_bench::timing::time_pair_ns;
use fftmatvec_bench::{make_operator, stuffed_vector, Args};
use fftmatvec_core::{FftMatvec, LinearOperator, OpDirection, PrecisionConfig};

/// Memory-scaled stand-ins for the paper's `N_d=100, N_m=5000, N_t=1000`
/// single-GPU shape: same `N_d ≪ N_m`, `N_t ≫ 1` structure at sizes a CI
/// runner measures in seconds (the error-shape convention every fig
/// binary uses). Small enough that the per-apply allocation cost is a
/// visible fraction, which is exactly what this gate watches.
const SHAPES: [(usize, usize, usize); 3] = [(2, 64, 64), (4, 128, 128), (8, 256, 256)];

/// Configurations the gate keys on: the baseline and the paper optimum.
const CONFIGS: [&str; 2] = ["ddddd", "dssdd"];

fn measure(
    mv: &FftMatvec,
    shape: &str,
    config: &str,
    dir: OpDirection,
    samples: usize,
    sample_ms: f64,
    out: &mut Vec<MatvecResult>,
) {
    let (in_len, out_len) = mv.shape().io_lens(dir);
    let input = stuffed_vector(in_len, 7);
    let mut sink = vec![0.0; out_len];
    // Warm up once so plan/workspace setup is not measured.
    mv.apply_into(dir, &input, &mut sink).expect("benchmark shapes are valid");
    let direction = match dir {
        OpDirection::Forward => "forward",
        OpDirection::Adjoint => "adjoint",
    };
    let (alloc, into) = time_pair_ns(
        || match dir {
            OpDirection::Forward => {
                black_box(mv.apply_forward(black_box(&input)).expect("valid shape"));
            }
            OpDirection::Adjoint => {
                black_box(mv.apply_adjoint(black_box(&input)).expect("valid shape"));
            }
        },
        || {
            mv.apply_into(dir, black_box(&input), black_box(&mut sink)).expect("valid shape");
        },
        samples,
        sample_ms,
    );
    for (path, ns) in [("alloc", alloc), ("into", into)] {
        out.push(MatvecResult {
            shape: shape.to_string(),
            config: config.to_string(),
            direction: direction.to_string(),
            path: path.to_string(),
            threads: rayon::current_num_threads(),
            ns_per_apply: ns,
        });
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let out_path: String = args.get("out", "BENCH_matvec.json".to_string());
    let check_path: String = args.get("check", String::new());
    let tol: f64 = args.get("tol", 1.25);
    let ratio_tol: f64 = args.get("ratio-tol", 1.10);
    let (samples, sample_ms) = if quick { (7, 10.0) } else { (15, 25.0) };
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    for &(nd, nm, nt) in &SHAPES {
        let shape = format!("{nd}x{nm}x{nt}");
        for config in CONFIGS {
            let cfg: PrecisionConfig = config.parse().expect("valid config literal");
            let mv = FftMatvec::builder(make_operator(nd, nm, nt, nt as u64))
                .precision(cfg)
                .build()
                .expect("CPU build");
            for dir in [OpDirection::Forward, OpDirection::Adjoint] {
                measure(&mv, &shape, config, dir, samples, sample_ms, &mut results);
            }
        }
    }

    // Human-readable view.
    println!(
        "Matvec API benchmark ({mode} mode, {} pool threads) — ns per apply",
        rayon::current_num_threads()
    );
    let header = format!(
        "{:>12} | {:>6} | {:>8} | {:>12} | {:>12} | {:>10}",
        "shape", "config", "dir", "alloc", "into", "into/alloc"
    );
    println!("{header}");
    fftmatvec_bench::rule(header.len());
    for &(nd, nm, nt) in &SHAPES {
        let shape = format!("{nd}x{nm}x{nt}");
        for config in CONFIGS {
            for direction in ["forward", "adjoint"] {
                let get = |path: &str| {
                    results
                        .iter()
                        .find(|r| {
                            r.shape == shape
                                && r.config == config
                                && r.direction == direction
                                && r.path == path
                        })
                        .map(|r| r.ns_per_apply)
                        .unwrap_or(f64::NAN)
                };
                let (a, i) = (get("alloc"), get("into"));
                println!(
                    "{:>12} | {:>6} | {:>8} | {:>12.0} | {:>12.0} | {:>9.3}x",
                    shape,
                    config,
                    direction,
                    a,
                    i,
                    i / a
                );
            }
        }
    }

    let doc = matvecjson::format_document(mode, &results);
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path} ({} results)", results.len());

    // Structural acceptance gate: into never slower than alloc.
    let slow = matvecjson::into_slower_than_alloc(&results, ratio_tol);
    if slow.is_empty() {
        println!("into-vs-alloc check: OK (tolerance {ratio_tol:.2}x)");
    } else {
        eprintln!("into-vs-alloc check FAILED:");
        for f in &slow {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }

    if !check_path.is_empty() {
        let baseline_text = std::fs::read_to_string(&check_path)
            .unwrap_or_else(|e| panic!("reading baseline {check_path}: {e}"));
        let baseline = matvecjson::parse_document(&baseline_text);
        assert!(!baseline.is_empty(), "baseline {check_path} contains no results");
        let gated = matvecjson::gated_count(&baseline);
        assert!(
            gated > 0,
            "baseline {check_path} gates nothing (no into+alloc pairs) — \
             regenerate it with this binary"
        );
        let failures = matvecjson::regressions(&results, &baseline, tol);
        if failures.is_empty() {
            println!("regression check vs {check_path}: OK ({gated} gated entries)");
        } else {
            eprintln!("regression check vs {check_path} FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
