//! Figure 1 — (conjugate-)transpose SBGEMV bandwidth: rocBLAS baseline vs
//! the optimized kernel on a simulated MI300X.
//!
//! Reproduces the `rocblas-bench` sweep of the paper: the four datatypes
//! (`s`/`d`/`c`/`z`), short-and-wide through square shapes, batch 100,
//! transpose for real types and conjugate-transpose for complex types.
//! Bandwidth comes from the kernel cost model; a CPU correctness pass
//! confirms both kernels compute identical results at each shape.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin fig1_sbgemv`

use fftmatvec_bench::rule;
use fftmatvec_blas::{kernel_profile, sbgemv_with, BatchGeometry, GemvOp, KernelChoice};
use fftmatvec_gpu::DeviceSpec;
use fftmatvec_numeric::{Complex, DType, Scalar, SplitMix64};

/// The shapes of Figure 1, per datatype (larger shapes are dropped for the
/// heavier datatypes exactly as in the paper, which is memory-limited).
fn shapes_for(dtype: DType) -> Vec<(usize, usize)> {
    let base = vec![(128, 4096), (256, 256), (256, 8192), (512, 512)];
    match dtype {
        DType::RealF32 => {
            let mut v = base;
            v.push((1024, 1024));
            v.push((2048, 2048));
            v
        }
        DType::ComplexF64 => base[..3].to_vec(),
        _ => base,
    }
}

/// Paper-reported % of peak (rocBLAS, optimized) for side-by-side
/// comparison, keyed by (dtype, m, n).
fn paper_reference(dtype: DType, m: usize, n: usize) -> Option<(f64, f64)> {
    let table: &[(DType, usize, usize, f64, f64)] = &[
        (DType::RealF32, 128, 4096, 15.0, 83.5),
        (DType::RealF32, 256, 256, 21.7, 58.6),
        (DType::RealF32, 256, 8192, 24.8, 72.7),
        (DType::RealF32, 512, 512, 44.8, 76.7),
        (DType::RealF32, 1024, 1024, 58.4, 64.7),
        (DType::RealF32, 2048, 2048, 63.3, 67.8),
        (DType::RealF64, 128, 4096, 25.5, 73.2),
        (DType::RealF64, 256, 256, 41.7, 62.7),
        (DType::RealF64, 256, 8192, 42.5, 70.8),
        (DType::RealF64, 512, 512, 76.4, 76.4),
        (DType::ComplexF32, 128, 4096, 25.0, 71.1),
        (DType::ComplexF32, 256, 256, 40.7, 57.6),
        (DType::ComplexF32, 256, 8192, 40.4, 70.3),
        (DType::ComplexF32, 512, 512, 75.8, 76.2),
        (DType::ComplexF64, 128, 4096, 42.0, 72.7),
        (DType::ComplexF64, 256, 256, 66.2, 71.2),
        (DType::ComplexF64, 256, 8192, 61.9, 69.5),
    ];
    table
        .iter()
        .find(|(d, mm, nn, _, _)| *d == dtype && *mm == m && *nn == n)
        .map(|&(_, _, _, b, o)| (b, o))
}

/// CPU cross-check: both kernels must agree numerically (scaled-down
/// shape to keep the run fast).
fn kernels_agree<S: Scalar>(op: GemvOp) -> f64 {
    let (m, n, batch) = (24usize, 96usize, 5usize);
    let mut rng = SplitMix64::new(7);
    let g = BatchGeometry::packed(m, n, op, batch);
    let fill = |rng: &mut SplitMix64, len: usize| -> Vec<S> {
        (0..len)
            .map(|_| S::from_f64_parts(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect()
    };
    let a: Vec<S> = fill(&mut rng, batch * m * n);
    let x: Vec<S> = fill(&mut rng, batch * m);
    let mut y1 = vec![S::zero(); batch * n];
    let mut y2 = vec![S::zero(); batch * n];
    sbgemv_with(KernelChoice::Reference, op, S::one(), &a, &x, S::zero(), &mut y1, &g);
    sbgemv_with(KernelChoice::Optimized, op, S::one(), &a, &x, S::zero(), &mut y2, &g);
    y1.iter()
        .zip(&y2)
        .map(|(p, q)| {
            let (pr, pi) = p.to_f64_parts();
            let (qr, qi) = q.to_f64_parts();
            ((pr - qr).powi(2) + (pi - qi).powi(2)).sqrt()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let dev = DeviceSpec::mi300x();
    let batch = 100usize;
    println!("Figure 1 — (Conjugate) Transpose SBGEMV Performance: {} (simulated)", dev.name);
    println!(
        "batch_count = {batch}; bandwidth = modeled achieved GB/s (% of {:.1} TB/s peak)",
        dev.peak_bw / 1e12
    );
    println!();

    for dtype in DType::ALL {
        let op = if dtype.is_complex() { GemvOp::ConjTrans } else { GemvOp::Trans };
        println!("== {dtype} (transA = {op}) ==");
        let header = format!(
            "{:>12} | {:>9} {:>6} | {:>9} {:>6} | {:>7} | {:>13}",
            "size", "rocBLAS", "%peak", "optimized", "%peak", "gain", "paper b/o (%)"
        );
        println!("{header}");
        rule(header.len());
        for (m, n) in shapes_for(dtype) {
            let base = kernel_profile(KernelChoice::Reference, op, dtype, m, n, batch);
            let opt = kernel_profile(KernelChoice::Optimized, op, dtype, m, n, batch);
            let bw_b = base.achieved_bandwidth(&dev);
            let bw_o = opt.achieved_bandwidth(&dev);
            let pct_b = 100.0 * bw_b / dev.peak_bw;
            let pct_o = 100.0 * bw_o / dev.peak_bw;
            let paper = paper_reference(dtype, m, n)
                .map(|(b, o)| format!("{b:.1}/{o:.1}"))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:>5}x{:<6} | {:>9.0} {:>5.1}% | {:>9.0} {:>5.1}% | {:>6.2}x | {:>13}",
                m,
                n,
                bw_b / 1e9,
                pct_b,
                bw_o / 1e9,
                pct_o,
                bw_o / bw_b,
                paper
            );
        }
        println!();
    }

    // Numerical agreement of the two kernel implementations.
    let dt = kernels_agree::<f64>(GemvOp::Trans);
    let zt = kernels_agree::<Complex<f64>>(GemvOp::ConjTrans);
    println!(
        "kernel cross-check (max abs diff, CPU execution): real double T = {dt:.2e}, complex double H = {zt:.2e}"
    );
    assert!(dt < 1e-12 && zt < 1e-12, "kernel implementations disagree");
}
