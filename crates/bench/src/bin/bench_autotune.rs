//! Autotuner gate: the CI check that budget-driven configuration
//! selection actually delivers its two promises on real hardware.
//!
//! For each `(shape, direction, budget)` row the harness builds the
//! same well-conditioned operator twice from one shared realization —
//! once through `FftMatvec::builder(..).error_budget_for(dir, budget)`
//! (live Eq. 6 pruning + per-tier timing calibration) and once pinned
//! all-double — then:
//!
//! * measures the selected configuration's relative error against the
//!   all-double baseline (**promise gate**: measured ≤ budget, absolute
//!   on any host);
//! * times both pipelines interleaved in one process (**no-slower
//!   gate**: all-double is always admissible, so the winner may never
//!   be materially slower than it);
//! * reports the double/tuned speedup, a same-session machine-
//!   normalized ratio gated against the committed
//!   `bench/baseline_autotune.json`. The tolerance is looser than the
//!   kernel-level gates' because the autotuner's *choice* is
//!   host-dependent — a runner whose f32 kernels buy less picks a more
//!   conservative configuration and legitimately lands a smaller
//!   speedup.
//!
//! The tightest row (budget 1e-12, under every narrow configuration's
//! Eq. 6 floor) must resolve to all-double exactly — the analytic half
//! of the selection is deterministic and is asserted outright.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_autotune`
//! Flags:
//! * `-quick` — shorter timing windows (CI smoke mode)
//! * `-out <path>` — results document (default `BENCH_autotune.json`)
//! * `-check <path>` — baseline document to gate against
//! * `-tol <x>` — allowed relative speedup loss vs the baseline
//!   (default 1.5)
//! * `-margin <x>` — the no-slower bar (default 1.10)

use std::sync::Arc;

use fftmatvec_bench::autotunejson::{
    format_document, gated_count, no_slower_failures, parse_document, promise_failures,
    regressions, AutotuneResult,
};
use fftmatvec_bench::{measure_errors_dir, rule, stuffed_vector, timing, Args};
use fftmatvec_core::{
    BlockToeplitzOperator, FftMatvec, LinearOperator, OpDirection, PrecisionConfig,
};
use fftmatvec_numeric::SplitMix64;

/// Identity-plus-noise first block: κ(F̂) ≈ 1, so the budget — not the
/// conditioning — decides which configurations survive the Eq. 6
/// pruning. A random positive operator would drag a large κ into every
/// bound and turn the loose-budget rows into all-double no-ops.
fn well_conditioned(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    let mut noise = vec![0.0; nd * nm];
    rng.fill_uniform(&mut noise, -0.05, 0.05);
    for i in 0..nd {
        for k in 0..nm {
            col[i * nm + k] = noise[i * nm + k] + if i == k { 1.0 } else { 0.0 };
        }
    }
    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).expect("valid operator dims")
}

fn dir_name(dir: OpDirection) -> &'static str {
    match dir {
        OpDirection::Forward => "forward",
        OpDirection::Adjoint => "adjoint",
    }
}

/// Tune one row and measure it: error via a fresh sweep, cost via
/// interleaved min-of-samples timing of the tuned and all-double
/// pipelines over the same operator realization.
fn run_row(
    nd: usize,
    nm: usize,
    nt: usize,
    dir: OpDirection,
    budget: f64,
    samples: usize,
    sample_ms: f64,
) -> AutotuneResult {
    let base = Arc::new(well_conditioned(nd, nm, nt, 3));
    let tuned = FftMatvec::builder_arc(Arc::clone(&base))
        .error_budget_for(dir, budget)
        .build()
        .expect("budget resolvable at these shapes");
    let choice = *tuned.autotuned().expect("budget build records its choice");
    let double = FftMatvec::builder_arc(Arc::clone(&base)).build().expect("CPU build");

    let measured = measure_errors_dir((*base).clone(), dir, &[choice.config], 5)[0];

    let (in_len, out_len) = tuned.shape().io_lens(dir);
    let input = stuffed_vector(in_len, 7);
    let mut out_t = vec![0.0; out_len];
    let mut out_d = vec![0.0; out_len];
    let (tuned_ns, double_ns) = timing::time_pair_ns(
        || tuned.apply_into(dir, &input, &mut out_t).expect("valid shapes"),
        || double.apply_into(dir, &input, &mut out_d).expect("valid shapes"),
        samples,
        sample_ms,
    );

    AutotuneResult {
        shape: format!("{nd}x{nm}x{nt}"),
        direction: dir_name(dir).to_string(),
        budget,
        config: choice.config.to_string(),
        bound: choice.bound.total,
        measured_error: measured,
        double_ns,
        tuned_ns,
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let out_path: String = args.get("out", "BENCH_autotune.json".to_string());
    let tol: f64 = args.get("tol", 1.5);
    let margin: f64 = args.get("margin", 1.10);
    let (samples, sample_ms) = if quick { (5, 20.0) } else { (9, 40.0) };

    // Shapes small enough for CI yet large enough that the f32 SBGEMV
    // actually dominates; 1e-3 admits f32 work at these `n_local`
    // (ε_s·128 ≈ 1.5e-5) while staying far above the paper's reported
    // errors, and 1e-12 undercuts every narrow configuration's floor.
    let rows: &[(usize, usize, usize, OpDirection, f64)] = &[
        (2, 64, 64, OpDirection::Forward, 1e-3),
        (4, 128, 128, OpDirection::Forward, 1e-3),
        (4, 128, 128, OpDirection::Adjoint, 1e-3),
        (4, 128, 128, OpDirection::Forward, 1e-12),
    ];

    let header = format!(
        "{:<10} {:>8} {:>9} {:>7} {:>11} {:>11} {:>12} {:>12} {:>8}",
        "shape", "dir", "budget", "config", "bound", "measured", "double_ns", "tuned_ns", "speedup"
    );
    println!("{header}");
    rule(header.len());

    let mut results = Vec::new();
    for &(nd, nm, nt, dir, budget) in rows {
        let r = run_row(nd, nm, nt, dir, budget, samples, sample_ms);
        println!(
            "{:<10} {:>8} {:>9.0e} {:>7} {:>11.3e} {:>11.3e} {:>12.0} {:>12.0} {:>8.2}",
            r.shape,
            r.direction,
            r.budget,
            r.config,
            r.bound,
            r.measured_error,
            r.double_ns,
            r.tuned_ns,
            r.speedup()
        );
        results.push(r);
    }

    let doc = format_document(if quick { "quick" } else { "full" }, &results);
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut failed = false;

    // The analytic half is deterministic: a budget under every narrow
    // floor must resolve to all-double, on any host.
    for r in &results {
        if r.budget <= 1e-12 && r.config != PrecisionConfig::all_double().to_string() {
            failed = true;
            eprintln!(
                "tight-budget gate FAILED: budget {:e} resolved to {} instead of all-double",
                r.budget, r.config
            );
        }
    }

    let promise = promise_failures(&results);
    if promise.is_empty() {
        println!("promise gate: OK (every measured error within its budget)");
    } else {
        failed = true;
        eprintln!("promise gate FAILED:");
        for f in &promise {
            eprintln!("  {f}");
        }
    }

    let slow = no_slower_failures(&results, margin);
    if slow.is_empty() {
        println!("no-slower gate: OK (autotuned within {margin:.2}x of all-double everywhere)");
    } else {
        failed = true;
        eprintln!("no-slower gate FAILED:");
        for f in &slow {
            eprintln!("  {f}");
        }
    }

    if let Some(baseline_path) =
        args.has("check").then(|| args.get("check", String::new())).filter(|p| !p.is_empty())
    {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline = parse_document(&text);
        assert!(
            gated_count(&baseline) > 0,
            "baseline {baseline_path} gates nothing — regenerate it"
        );
        let fails = regressions(&results, &baseline, tol);
        if fails.is_empty() {
            println!(
                "baseline gate: OK ({} row(s) within {tol:.2}x of {baseline_path})",
                gated_count(&baseline)
            );
        } else {
            failed = true;
            eprintln!("baseline gate FAILED against {baseline_path}:");
            for f in &fails {
                eprintln!("  {f}");
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
