//! Thread-count determinism gate: every apply/reduce output must be
//! byte-identical at `RAYON_NUM_THREADS = 1, 2, 8`.
//!
//! The executor's contract (see `vendor/rayon`) is that work splits
//! through a tree derived from the job *length* only, so neither chunk
//! boundaries nor reduction associations can drift with the thread
//! count. This binary enforces that end to end: `RAYON_NUM_THREADS` is
//! read once per process, so the parent re-execs itself once per thread
//! count (`FFTMATVEC_DETGATE_CHILD=1`); each child runs the
//! `bench_matvec`-shaped workloads plus the batched-FFT and
//! tree-reduction hot paths and prints an order- and bit-sensitive
//! FNV-1a digest of every output vector; the parent fails on any
//! difference between the children's reports. Two extra legs pin the
//! other process-global dispatch switches: SIMD forced portable
//! (`FFTMATVEC_SIMD=portable`) and the simulated device backend
//! (`FFTMATVEC_BACKEND=simulated`) must both be byte-identical too.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin determinism_gate`
//! Flags:
//! * `-threads <a,b,c>` — comma-separated pool widths (default `1,2,8`)

use fftmatvec_bench::digest::{f64_bits, Fnv1a};
use fftmatvec_bench::{make_operator, respawn, stuffed_vector, Args};
use fftmatvec_comm::collectives::tree_reduce_sum_in_place;
use fftmatvec_core::{DirectMatvec, FftMatvec, LinearOperator, OpDirection, PrecisionConfig};
use fftmatvec_fft::{BatchedFft, BatchedRealFft};
use fftmatvec_numeric::{Complex, SplitMix64};

const CHILD_ENV: &str = "FFTMATVEC_DETGATE_CHILD";

/// One output line per workload: `DIGEST <name> <hex>`.
fn report(name: &str, digest: u64) {
    println!("DIGEST {name} {digest:016x}");
}

/// The `bench_matvec` shape set (largest shape exercises every parallel
/// path) in the baseline and paper-optimal configurations.
fn matvec_workloads() {
    let (nd, nm, nt) = (8usize, 256usize, 256usize);
    for config in ["ddddd", "dssdd"] {
        let cfg: PrecisionConfig = config.parse().expect("valid config literal");
        let mv = FftMatvec::builder(make_operator(nd, nm, nt, nt as u64))
            .precision(cfg)
            .build()
            .expect("CPU build");
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let (in_len, out_len) = mv.shape().io_lens(dir);
            let input = stuffed_vector(in_len, 7);
            let mut out = vec![0.0; out_len];
            mv.apply_into(dir, &input, &mut out).expect("valid shapes");
            let d = match dir {
                OpDirection::Forward => "forward",
                OpDirection::Adjoint => "adjoint",
            };
            report(&format!("matvec_{config}_{d}"), f64_bits(&out));

            // Column-batched sweep: the apply_many pool path.
            let cols = 6;
            let inputs = stuffed_vector(in_len * cols, 11);
            let mut outs = vec![0.0; out_len * cols];
            mv.apply_many_into(dir, &inputs, &mut outs).expect("valid shapes");
            report(&format!("matvec_many_{config}_{d}"), f64_bits(&outs));
        }
    }

    // Direct (non-FFT) matvec at a size its O(N_t²) cost tolerates.
    let op = make_operator(4, 32, 64, 17);
    let direct = DirectMatvec::new(&op);
    let m = stuffed_vector(32 * 64, 13);
    let mut d = vec![0.0; 4 * 64];
    direct.apply_forward_into(&m, &mut d).expect("valid shapes");
    report("direct_forward", f64_bits(&d));
}

fn fft_workloads() {
    // Batched complex FFT above the parallel threshold.
    let (n, batch) = (2048usize, 64usize);
    let mut rng = SplitMix64::new(23);
    let data: Vec<Complex<f64>> = (0..n * batch)
        .map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
        .collect();
    let bf = BatchedFft::<f64>::new(n);
    let freq = bf.forward_batch_vec(&data);
    let mut h = Fnv1a::new();
    for c in &freq {
        h.write_u64(c.re.to_bits());
        h.write_u64(c.im.to_bits());
    }
    report("fft_batched_forward", h.finish());

    // Batched real transform (the pipeline's phase-2/4 shape).
    let (n, batch) = (2000usize, 40usize);
    let mut rng = SplitMix64::new(29);
    let signal: Vec<f64> = (0..n * batch).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let rf = BatchedRealFft::<f64>::new(n);
    let mut spec = vec![Complex::<f64>::zero(); batch * rf.spectrum_len()];
    rf.forward_batch(&signal, &mut spec);
    let mut back = vec![0.0; n * batch];
    rf.inverse_batch(&spec, &mut back);
    let mut h = Fnv1a::new();
    for c in &spec {
        h.write_u64(c.re.to_bits());
        h.write_u64(c.im.to_bits());
    }
    h.write_f64_bits(&back);
    report("fft_real_roundtrip", h.finish());
}

fn reduce_workload() {
    // Distributed phase-5 reduction shape: 12 ranks × 5000 elements,
    // magnitudes spread so association drift would flip bits.
    let (parts, len) = (12usize, 5000usize);
    let mut rng = SplitMix64::new(31);
    let mut flat: Vec<f64> = Vec::with_capacity(parts * len);
    for r in 0..parts {
        let mag = 10f64.powi((r % 9) as i32 - 4);
        for _ in 0..len {
            flat.push(rng.uniform(-1.0, 1.0) * mag);
        }
    }
    tree_reduce_sum_in_place(&mut flat, len);
    report("tree_reduce_in_place", f64_bits(&flat[..len]));
}

fn run_child() {
    println!(
        "THREADS {} SIMD {}",
        rayon::current_num_threads(),
        fftmatvec_numeric::simd::active_level().name()
    );
    matvec_workloads();
    fft_workloads();
    reduce_workload();
}

/// Digest lines only — the `THREADS` banner legitimately differs.
fn digest_lines(stdout: &str) -> Vec<&str> {
    stdout.lines().filter(|l| l.starts_with("DIGEST ")).collect()
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        run_child();
        return;
    }

    let args = Args::from_env();
    let spec: String = args.get("threads", "1,2,8".to_string());
    let counts: Vec<usize> =
        spec.split(',').map(|t| t.trim().parse().expect("thread count list")).collect();
    assert!(counts.len() >= 2, "need at least two thread counts to compare");

    println!(
        "Determinism gate: byte-identical outputs at RAYON_NUM_THREADS = {spec}, \
         with SIMD dispatch forced portable, and through the simulated device backend"
    );
    let mut reports: Vec<(String, String)> = counts
        .iter()
        .map(|&n| (format!("{n}t"), respawn::child_stdout(CHILD_ENV, n, false)))
        .collect();

    // Lane-width leg: the runtime-dispatched vector kernels must not
    // change a single output bit, so one more child re-runs the widest
    // thread count with `FFTMATVEC_SIMD=portable` (children inherit the
    // parent's environment) and its digests join the same comparison.
    let wide = *counts.last().expect("non-empty thread count list");
    std::env::set_var("FFTMATVEC_SIMD", "portable");
    reports.push((format!("{wide}t-portable-simd"), respawn::child_stdout(CHILD_ENV, wide, false)));
    std::env::remove_var("FFTMATVEC_SIMD");

    // Backend leg: the simulated device is the CPU pool plus a modeled
    // clock, so routing every pipeline primitive through it must not
    // change a single output bit. One more child runs the widest thread
    // count with `FFTMATVEC_BACKEND=simulated` (the builders in the
    // workloads never pass an explicit backend, so the env override is
    // what selects it) and its digests join the same comparison.
    std::env::set_var(fftmatvec_backend::BACKEND_ENV, "simulated");
    reports.push((format!("{wide}t-simulated"), respawn::child_stdout(CHILD_ENV, wide, false)));
    std::env::remove_var(fftmatvec_backend::BACKEND_ENV);

    let (base_label, base) = &reports[0];
    let base_digests = digest_lines(base);
    assert!(!base_digests.is_empty(), "child produced no digests");
    for line in &base_digests {
        println!("  [{base_label}] {line}");
    }

    let mut failures = Vec::new();
    for (label, text) in &reports[1..] {
        let digests = digest_lines(text);
        if digests.len() != base_digests.len() {
            failures.push(format!(
                "{label}: {} digests vs {} at {base_label}",
                digests.len(),
                base_digests.len()
            ));
            continue;
        }
        for (a, b) in base_digests.iter().zip(&digests) {
            if a != b {
                failures.push(format!("{base_label} `{a}` vs {label} `{b}`"));
            }
        }
    }

    if failures.is_empty() {
        println!(
            "determinism gate: OK ({} workloads byte-identical across {} legs)",
            base_digests.len(),
            reports.len()
        );
    } else {
        eprintln!("determinism gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
