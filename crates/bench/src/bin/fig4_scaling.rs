//! Figure 4 — weak scaling of the optimal mixed-precision configuration,
//! 8 → 4,096 GPUs on simulated Frontier.
//!
//! Global problem: `N_m = 5000·p`, `N_d = 100`, `N_t = 1000`. Grid shapes
//! follow the paper's communication-aware partitioning (1 row ≤ 512 GPUs,
//! 8 rows at 1,024–2,048, 16 at 4,096); configs are `dssdd` below 512
//! GPUs and `dssds` from 512 up (the measured optima).
//!
//! Times: per-rank cost model + Frontier network model at the full paper
//! scale. Errors: real distributed arithmetic on a memory-scaled problem
//! with the *same grid shapes* (`-escale` controls the per-GPU width).
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin fig4_scaling`
//! Flags: `-maxp <int>` (default 4096), `-escale <int>` (default 8)

use fftmatvec_bench::{rule, stuffed_vector, Args};
use fftmatvec_comm::partition::PartitionProblem;
use fftmatvec_comm::{choose_grid, NetworkModel, PartitionStrategy, ProcessGrid};
use fftmatvec_core::timing::{simulate_phases, MatvecDims};
use fftmatvec_core::{DistributedFftMatvec, LinearOperator, PrecisionConfig};
use fftmatvec_gpu::{DeviceSpec, Phase};
use fftmatvec_numeric::vecmath::rel_l2_error;
use fftmatvec_numeric::SplitMix64;

/// Modeled matvec total for one GPU count at full paper scale.
fn modeled_total(
    p: usize,
    grid: &ProcessGrid,
    cfg: PrecisionConfig,
    dev: &DeviceSpec,
    net: &NetworkModel,
) -> f64 {
    let nd = 100usize;
    let nm = 5000 * p;
    let nt = 1000usize;
    let ndl = nd.div_ceil(grid.rows);
    let nml = nm.div_ceil(grid.cols);
    let mut t = simulate_phases(MatvecDims::new(ndl, nml, nt), cfg, false, dev);
    use fftmatvec_core::MatvecPhase;
    let p1 = cfg.phase(MatvecPhase::Pad).real_bytes();
    let p5 = cfg.phase(MatvecPhase::Unpad).real_bytes();
    let comm = net.forward_matvec_comm(grid, (nml * nt * p1) as f64, (ndl * nt * p5) as f64);
    t.add(Phase::Comm, comm);
    t.total()
}

/// Real distributed error at a scaled shape with the same grid.
fn measured_error(p: usize, grid: ProcessGrid, cfg: PrecisionConfig, escale: usize) -> f64 {
    let nd = 16usize.max(grid.rows);
    let nm = escale * p;
    let nt = 32usize;
    let mut rng = SplitMix64::new(1000 + p as u64);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    let m = stuffed_vector(nm * nt, 77);

    let baseline = {
        let single = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::single(),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        single.apply_forward(&m).expect("weak-scaling shapes")
    };
    let dist = DistributedFftMatvec::from_global(nd, nm, nt, &col, grid, cfg).unwrap();
    rel_l2_error(&dist.apply_forward(&m).expect("weak-scaling shapes"), &baseline)
}

fn main() {
    let args = Args::from_env();
    let maxp = args.get("maxp", 4096usize);
    let escale = args.get("escale", 8usize);
    let dev = DeviceSpec::mi250x_gcd();
    let net = NetworkModel::frontier();

    println!("Figure 4 — Mixed-Precision Matvec Weak Scaling on simulated Frontier");
    println!("global: N_m = 5000*p, N_d = 100, N_t = 1000 (timing model at full scale)");
    println!(
        "error measurement: real distributed arithmetic at N_m = {escale}*p, N_d = 16, N_t = 32"
    );
    println!();
    let header = format!(
        "{:>6} | {:>9} | {:>7} | {:>11} | {:>11} | {:>8} | {:>10}",
        "GPUs", "grid", "config", "double ms", "mixed ms", "speedup", "rel error"
    );
    println!("{header}");
    rule(header.len());

    let mut p = 8usize;
    while p <= maxp {
        let prob = PartitionProblem { nd: 100, nm: 5000 * p, nt: 1000, elem_bytes: 8 };
        let grid = choose_grid(PartitionStrategy::FrontierCalibrated, p, &prob, &net);
        let cfg = if p < 512 {
            PrecisionConfig::optimal_forward() // dssdd
        } else {
            PrecisionConfig::optimal_forward_at_scale() // dssds
        };
        let t_double = modeled_total(p, &grid, PrecisionConfig::all_double(), &dev, &net);
        let t_mixed = modeled_total(p, &grid, cfg, &dev, &net);
        let err = measured_error(p, grid, cfg, escale);
        println!(
            "{:>6} | {:>4}x{:<4} | {:>7} | {:>11.3} | {:>11.3} | {:>7.2}x | {:>10.2e}",
            p,
            grid.rows,
            grid.cols,
            cfg.to_string(),
            t_double * 1e3,
            t_mixed * 1e3,
            t_double / t_mixed,
            err
        );
        p *= 2;
    }
    println!();
    println!("paper reference: speedup ~1.5-1.6x at small p declining toward ~1.1x at 4,096;");
    println!("                 rel error ~5e-8 at small p, rising under 1e-6 past 512 GPUs");
    println!("                 (p_r grows 1 -> 8 -> 16, so n_m = N_m/p_c grows and the");
    println!("                 SBGEMV term eps*n_m dominates); ~0.11 s/matvec at 4,096 GPUs.");
}
