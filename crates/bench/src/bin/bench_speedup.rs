//! Parallel-speedup gate: the CI check that the work-stealing pool
//! actually buys wall-clock time on the hot paths.
//!
//! `RAYON_NUM_THREADS` is read once per process, so the binary re-execs
//! *itself* as a child per thread count (`FFTMATVEC_SPEEDUP_CHILD=1`):
//! each child times the two largest paper-shaped parallel workloads —
//! a batched complex FFT (the phase-2/phase-4 stand-in) and a batched
//! `apply_many_into` matvec sweep (the §4.2.2 dense-assembly pattern) —
//! and prints ns-per-call; the parent compares the 1-thread and
//! N-thread children and fails below the required speedup.
//!
//! The gate only enforces when the host has at least `-threads` hardware
//! lanes: a 2-core runner physically cannot show 1.5× at 4 threads, so
//! it reports SKIPPED (exit 0) with the measured numbers for the log.
//!
//! Run: `cargo run --release -p fftmatvec-bench --bin bench_speedup`
//! Flags:
//! * `-threads <n>` — pool width of the fast child (default 4)
//! * `-min-speedup <x>` — required (1-thread ns)/(n-thread ns) on both
//!   workloads (default 1.5, the acceptance criterion)
//! * `-quick` — shorter samples (the CI smoke mode)

use std::hint::black_box;

use fftmatvec_bench::timing::min_ns;
use fftmatvec_bench::{make_operator, respawn, stuffed_vector, Args};
use fftmatvec_core::{FftMatvec, LinearOperator, OpDirection};
use fftmatvec_fft::{BatchedFft, FftDirection};
use fftmatvec_numeric::{Complex, SplitMix64};

const CHILD_ENV: &str = "FFTMATVEC_SPEEDUP_CHILD";

/// Largest paper batched-FFT shape: 2·N_t for N_t = 1024, across a
/// 64-item batch (131072 complex elements — 8× the batch driver's
/// parallel threshold).
const FFT_N: usize = 2048;
const FFT_BATCH: usize = 64;

/// Largest `bench_matvec` shape, swept over a column batch.
const MV_SHAPE: (usize, usize, usize) = (8, 256, 256);
const MV_COLS: usize = 8;

/// Child: measure and print. Timing uses min-of-samples (scheduler noise
/// only adds time), same as every other gate binary.
fn run_child(samples: usize, sample_ms: f64) {
    // Batched FFT workload.
    let mut rng = SplitMix64::new(9);
    let data: Vec<Complex<f64>> = (0..FFT_N * FFT_BATCH)
        .map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
        .collect();
    let bf = BatchedFft::<f64>::new(FFT_N);
    let mut buf = data.clone();
    let fft_ns = min_ns(
        || bf.process_batch_inplace(black_box(&mut buf), FftDirection::Forward),
        samples,
        sample_ms,
    );

    // Batched matvec workload.
    let (nd, nm, nt) = MV_SHAPE;
    let mv = FftMatvec::builder(make_operator(nd, nm, nt, 3)).build().expect("CPU build");
    let (in_len, out_len) = mv.shape().io_lens(OpDirection::Forward);
    let inputs = stuffed_vector(in_len * MV_COLS, 5);
    let mut outputs = vec![0.0; out_len * MV_COLS];
    mv.apply_many_into(OpDirection::Forward, &inputs, &mut outputs).expect("valid shapes");
    let mv_ns = min_ns(
        || {
            mv.apply_many_into(OpDirection::Forward, black_box(&inputs), black_box(&mut outputs))
                .expect("valid shapes")
        },
        samples,
        sample_ms,
    );

    println!(
        "CHILD threads={} fft_batched_ns={fft_ns:.1} matvec_many_ns={mv_ns:.1}",
        rayon::current_num_threads()
    );
}

/// Parse `key=value` fields out of the child's CHILD line.
fn child_field(stdout: &str, key: &str) -> f64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("CHILD "))
        .unwrap_or_else(|| panic!("child printed no CHILD line:\n{stdout}"));
    let tag = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&tag))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing {key} in child line: {line}"))
}

/// One measurement round: a 1-thread child and an n-thread child,
/// returning the per-workload speedups.
fn measure_round(threads: usize) -> Vec<(&'static str, f64, f64, f64)> {
    let base = respawn::child_stdout(CHILD_ENV, 1, true);
    let fast = respawn::child_stdout(CHILD_ENV, threads, true);
    ["fft_batched_ns", "matvec_many_ns"]
        .into_iter()
        .map(|key| {
            let t1 = child_field(&base, key);
            let tn = child_field(&fast, key);
            (key, t1, tn, t1 / tn)
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let (samples, sample_ms) = if quick { (7, 20.0) } else { (11, 40.0) };

    if std::env::var(CHILD_ENV).is_ok() {
        run_child(samples, sample_ms);
        return;
    }

    let threads: usize = args.get("threads", 4);
    let min_speedup: f64 = args.get("min-speedup", 1.5);
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Parallel speedup gate: {threads} threads vs 1, require >= {min_speedup:.2}x \
         (host parallelism: {hw})"
    );

    // Shared runners (ubuntu-latest has exactly `threads` vCPUs) can see
    // sustained noisy-neighbor contention that caps the fast child's
    // parallelism for its whole run — which min-of-samples inside one
    // child cannot filter. One full re-measurement round absorbs that
    // without weakening the gate: a genuine scaling regression fails
    // both rounds.
    let mut failures = Vec::new();
    for round in 0..2 {
        failures.clear();
        for (key, t1, tn, speedup) in measure_round(threads) {
            println!("{key}: 1t {t1:.0} ns, {threads}t {tn:.0} ns -> {speedup:.2}x");
            if speedup < min_speedup {
                failures.push(format!("{key}: {speedup:.2}x < {min_speedup:.2}x"));
            }
        }
        if failures.is_empty() || hw < threads {
            // Passed — or the host will skip enforcement below, so a
            // retry would only burn runner time.
            break;
        }
        if round == 0 {
            println!("below threshold; retrying once to rule out runner contention");
        }
    }

    if hw < threads {
        // The measurement still ran (and is in the log), but a host with
        // fewer lanes than the target pool width cannot express the
        // speedup; only multi-core runners enforce.
        println!("speedup gate: SKIPPED (host has {hw} < {threads} hardware threads)");
        return;
    }
    if failures.is_empty() {
        println!("speedup gate: OK");
    } else {
        eprintln!("speedup gate FAILED (twice, so not a transient):");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
