//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary follows the same contract: *timings* come from the GPU
//! cost model evaluated at the paper's problem shape; *errors* come from
//! real mixed-precision arithmetic, run at a memory-scaled shape with the
//! same structure (mantissa-stuffed inputs, identical grid shapes). Each
//! binary prints the rows/series of its figure plus the paper's reference
//! values for side-by-side comparison.

use fftmatvec_core::pareto::error_sweep;
use fftmatvec_core::{BlockToeplitzOperator, FftMatvec, OpDirection, PrecisionConfig};
use fftmatvec_numeric::SplitMix64;

/// Tiny `-flag value` CLI parser (mirrors the artifact's `-nm 5000 -nd 100
/// -Nt 1000 -prec dssdd` interface).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn from_env() -> Self {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// Value of `-name <v>`, parsed, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("-{name}");
        self.raw
            .iter()
            .position(|a| a.eq_ignore_ascii_case(&flag))
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Is `-name` present (boolean flag)?
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("-{name}");
        self.raw.iter().any(|a| a.eq_ignore_ascii_case(&flag))
    }
}

/// Build a random block-Toeplitz operator. Entries are *positive*
/// uniforms, matching the artifact's initialization path
/// (`curandGenerateUniformDouble` produces values in (0, 1]); positive
/// data means the frequency-domain reductions have no sign cancellation,
/// which is a precondition for the ≲1e-7 mixed-precision errors the paper
/// reports at `N_m = 5000`.
pub fn make_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).expect("valid operator dims")
}

/// A mantissa-stuffed positive input vector (the §4.2.1 generator applied
/// to cuRAND-style (0,1] uniforms, so single-precision phases provably
/// incur error without introducing sign cancellation the paper's
/// workloads don't have).
pub fn stuffed_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0.0; n];
    rng.fill_uniform_stuffed(&mut v, 0.0, 1.0);
    v
}

/// Measured relative errors of many configurations against the all-double
/// baseline, reusing one operator. Thin shape-aware wrapper over
/// [`fftmatvec_core::pareto::error_sweep`], which runs the same sweep
/// for any `ConfigurableOperator` realization in either direction.
pub fn measure_errors_dir(
    op: BlockToeplitzOperator,
    dir: OpDirection,
    configs: &[PrecisionConfig],
    seed: u64,
) -> Vec<f64> {
    let len = match dir {
        OpDirection::Forward => op.nm() * op.nt(),
        OpDirection::Adjoint => op.nd() * op.nt(),
    };
    let x = stuffed_vector(len, seed);
    let mut mv = FftMatvec::builder(op).build().expect("CPU build");
    error_sweep(&mut mv, dir, configs, &x).expect("sweep over a well-shaped input")
}

/// [`measure_errors_dir`] for the forward matvec.
pub fn measure_errors(
    op: BlockToeplitzOperator,
    configs: &[PrecisionConfig],
    seed: u64,
) -> Vec<f64> {
    measure_errors_dir(op, OpDirection::Forward, configs, seed)
}

/// Format seconds as milliseconds with three decimals.
pub fn ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

/// Machine-readable benchmark records: the `BENCH_fft.json` /
/// `bench/baseline.json` format the CI `bench-smoke` job produces and
/// gates on.
///
/// The format is deliberately line-oriented JSON — one result object per
/// line — so it round-trips through this module's dependency-free parser
/// (the build environment has no serde) while staying valid JSON for any
/// downstream tooling.
pub mod benchjson {
    /// One measured data point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct BenchResult {
        /// Transform length.
        pub size: usize,
        /// `"f64"`, `"f32"`, `"f16"`, or `"bf16"` — the gate keys rows on
        /// `(size, precision)`, so the two 16-bit tiers must carry
        /// distinct labels despite sharing a byte width.
        pub precision: String,
        /// `"iterative"` (the Stockham engine) or `"recursive"` (the seed
        /// baseline).
        pub engine: String,
        /// Pool width the row was measured at
        /// (`rayon::current_num_threads()` — `RAYON_NUM_THREADS` or the
        /// machine's parallelism). Informational for cross-host
        /// comparison; the regression gate's normalized statistic
        /// already cancels it.
        pub threads: usize,
        /// Best-case (min-of-samples) wall-clock nanoseconds per
        /// transform; see [`crate::timing::min_ns`] for why min is the
        /// stable statistic here.
        pub ns_per_transform: f64,
    }

    /// Render the full document. `mode` records how the numbers were taken
    /// (`"quick"` for the CI smoke job, `"full"` for committed baselines).
    pub fn format_document(mode: &str, results: &[BenchResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"unit\": \"ns_per_transform\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"size\": {}, \"precision\": \"{}\", \"engine\": \"{}\", \
                 \"threads\": {}, \"ns_per_transform\": {:.1}}}{}\n",
                r.size, r.precision, r.engine, r.threads, r.ns_per_transform, sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Extract the value following `"key":` on `line`, up to `,` or `}`.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }

    /// Parse every result line of a document produced by
    /// [`format_document`]. Lines without a `"size"` field are skipped, so
    /// the surrounding envelope needs no real JSON parser.
    pub fn parse_document(text: &str) -> Vec<BenchResult> {
        text.lines()
            .filter_map(|line| {
                Some(BenchResult {
                    size: field(line, "size")?.parse().ok()?,
                    precision: field(line, "precision")?.to_string(),
                    engine: field(line, "engine")?.to_string(),
                    // Absent in pre-thread-column documents: those were
                    // measured on the sequential shim, i.e. one thread.
                    threads: field(line, "threads").and_then(|v| v.parse().ok()).unwrap_or(1),
                    ns_per_transform: field(line, "ns_per_transform")?.parse().ok()?,
                })
            })
            .collect()
    }

    /// Normalized cost of the iterative engine at `(size, precision)`:
    /// iterative ns divided by recursive ns *from the same document*.
    /// Because both engines are measured in one session, machine speed and
    /// load cancel, making the number comparable across hosts — a CI
    /// runner can be gated against a baseline committed from a laptop.
    fn normalized_cost(doc: &[BenchResult], size: usize, precision: &str) -> Option<f64> {
        let get = |engine: &str| {
            doc.iter()
                .find(|r| r.size == size && r.precision == precision && r.engine == engine)
                .map(|r| r.ns_per_transform)
        };
        Some(get("iterative")? / get("recursive")?)
    }

    /// Number of baseline entries the gate can actually enforce: iterative
    /// rows whose recursive reference is also present. A baseline that
    /// gates nothing is a broken baseline — callers should fail on 0, not
    /// report success.
    pub fn gated_count(baseline: &[BenchResult]) -> usize {
        baseline
            .iter()
            .filter(|b| b.engine == "iterative")
            .filter(|b| normalized_cost(baseline, b.size, &b.precision).is_some())
            .count()
    }

    /// Compare `current` against `baseline`: for every `(size, precision)`
    /// the baseline covers, the iterative engine's recursive-normalized
    /// cost must be within `tol` of the baseline's (e.g. `1.25` = fail on
    /// a >25% relative regression). Returns human-readable failure lines;
    /// empty = pass. Baseline iterative rows without a recursive reference
    /// cannot be normalized and are not gated — check [`gated_count`] to
    /// detect a baseline that silently gates nothing.
    pub fn regressions(current: &[BenchResult], baseline: &[BenchResult], tol: f64) -> Vec<String> {
        let mut failures = Vec::new();
        for b in baseline.iter().filter(|b| b.engine == "iterative") {
            let Some(base_cost) = normalized_cost(baseline, b.size, &b.precision) else {
                continue; // baseline lacks the recursive reference: ungated
            };
            let Some(cur_cost) = normalized_cost(current, b.size, &b.precision) else {
                failures.push(format!(
                    "missing result pair for size={} precision={}",
                    b.size, b.precision
                ));
                continue;
            };
            let ratio = cur_cost / base_cost;
            if ratio > tol {
                failures.push(format!(
                    "size={} precision={}: iterative/recursive = {:.3} vs baseline {:.3} \
                     ({:.2}x > {:.2}x budget)",
                    b.size, b.precision, cur_cost, base_cost, ratio, tol
                ));
            }
        }
        failures
    }
}

/// Machine-readable matvec benchmark records: the `BENCH_matvec.json` /
/// `bench/baseline_matvec.json` format the CI `bench-smoke` job produces
/// and gates on. Same line-oriented JSON convention as [`benchjson`];
/// rows are keyed by `(shape, config, direction, path)` where `path`
/// distinguishes the allocating `apply_forward` from the zero-allocation
/// `apply_forward_into` — the gate's normalized statistic is the
/// into/alloc cost ratio, which cancels machine speed.
pub mod matvecjson {
    /// One measured matvec data point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct MatvecResult {
        /// Problem shape as `"{nd}x{nm}x{nt}"`.
        pub shape: String,
        /// Five-phase precision configuration string (`ddddd`, `dssdd`).
        pub config: String,
        /// `"forward"` or `"adjoint"`.
        pub direction: String,
        /// `"alloc"` (`apply_forward`) or `"into"` (`apply_forward_into`
        /// on preallocated buffers).
        pub path: String,
        /// Pool width the row was measured at (see
        /// `benchjson::BenchResult::threads`).
        pub threads: usize,
        /// Best-case (min-of-samples) wall-clock nanoseconds per apply.
        pub ns_per_apply: f64,
    }

    /// Render the full document (`mode` = `"quick"` or `"full"`).
    pub fn format_document(mode: &str, results: &[MatvecResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"unit\": \"ns_per_apply\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"config\": \"{}\", \"direction\": \"{}\", \
                 \"path\": \"{}\", \"threads\": {}, \"ns_per_apply\": {:.1}}}{}\n",
                r.shape, r.config, r.direction, r.path, r.threads, r.ns_per_apply, sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Extract the value following `"key":` on `line`, up to `,` or `}`.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }

    /// Parse every result line of a document produced by
    /// [`format_document`].
    pub fn parse_document(text: &str) -> Vec<MatvecResult> {
        text.lines()
            .filter_map(|line| {
                Some(MatvecResult {
                    shape: field(line, "shape")?.to_string(),
                    config: field(line, "config")?.to_string(),
                    direction: field(line, "direction")?.to_string(),
                    path: field(line, "path")?.to_string(),
                    // Absent in pre-thread-column documents (sequential
                    // shim era): one thread.
                    threads: field(line, "threads").and_then(|v| v.parse().ok()).unwrap_or(1),
                    ns_per_apply: field(line, "ns_per_apply")?.parse().ok()?,
                })
            })
            .collect()
    }

    fn lookup(doc: &[MatvecResult], key: &MatvecResult, path: &str) -> Option<f64> {
        doc.iter()
            .find(|r| {
                r.shape == key.shape
                    && r.config == key.config
                    && r.direction == key.direction
                    && r.path == path
            })
            .map(|r| r.ns_per_apply)
    }

    /// Normalized cost of the `into` path at `key`'s
    /// `(shape, config, direction)`: into ns divided by alloc ns *from
    /// the same document*, so machine speed cancels and a CI runner can
    /// gate against a baseline from different hardware.
    fn normalized_cost(doc: &[MatvecResult], key: &MatvecResult) -> Option<f64> {
        Some(lookup(doc, key, "into")? / lookup(doc, key, "alloc")?)
    }

    /// Number of baseline keys the gate can enforce (into rows whose
    /// alloc reference is present). 0 means a broken baseline.
    pub fn gated_count(baseline: &[MatvecResult]) -> usize {
        baseline
            .iter()
            .filter(|r| r.path == "into")
            .filter(|r| normalized_cost(baseline, r).is_some())
            .count()
    }

    /// Compare `current` against `baseline`: for every key the baseline
    /// covers, the into/alloc cost ratio must be within `tol` of the
    /// baseline's. Returns human-readable failure lines; empty = pass.
    pub fn regressions(
        current: &[MatvecResult],
        baseline: &[MatvecResult],
        tol: f64,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        for b in baseline.iter().filter(|r| r.path == "into") {
            let Some(base_cost) = normalized_cost(baseline, b) else {
                continue; // baseline lacks the alloc reference: ungated
            };
            let Some(cur_cost) = normalized_cost(current, b) else {
                failures.push(format!(
                    "missing result pair for shape={} config={} direction={}",
                    b.shape, b.config, b.direction
                ));
                continue;
            };
            let ratio = cur_cost / base_cost;
            if ratio > tol {
                failures.push(format!(
                    "shape={} config={} direction={}: into/alloc = {:.3} vs baseline {:.3} \
                     ({:.2}x > {:.2}x budget)",
                    b.shape, b.config, b.direction, cur_cost, base_cost, ratio, tol
                ));
            }
        }
        failures
    }

    /// The acceptance check itself: the `into` path must be no slower
    /// than the allocating path at every benchmarked key, within a small
    /// noise margin `tol` (the shipped default is `1.10` — the paths
    /// differ only by one output-vector allocation, so the ratio sits at
    /// ~1.0 and the margin absorbs shared-runner scheduler noise).
    /// Returns failure lines.
    pub fn into_slower_than_alloc(doc: &[MatvecResult], tol: f64) -> Vec<String> {
        doc.iter()
            .filter(|r| r.path == "into")
            .filter_map(|r| {
                let cost = normalized_cost(doc, r)?;
                (cost > tol).then(|| {
                    format!(
                        "shape={} config={} direction={}: into path {:.3}x the alloc path \
                         (> {:.2}x)",
                        r.shape, r.config, r.direction, cost, tol
                    )
                })
            })
            .collect()
    }
}

/// Machine-readable SIMD-vs-scalar records: the `BENCH_simd.json` /
/// `bench/baseline_simd.json` format the CI `bench-smoke` job produces
/// and gates on. Same line-oriented JSON convention as [`benchjson`];
/// rows are keyed by `(kernel, precision)`. Both legs of every row are
/// measured interleaved in one session, so the gate statistic — the
/// portable/simd speedup — cancels machine speed like the other gates'
/// normalized costs.
pub mod simdjson {
    /// One measured kernel data point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SimdResult {
        /// Kernel family: `"convert_widen"`, `"convert_narrow"`,
        /// `"fft_forward"`, or `"sbgemv_notrans"`.
        pub kernel: String,
        /// Element type: `"f64"`, `"f32"`, `"f16"`, or `"bf16"`.
        pub precision: String,
        /// The [`fftmatvec_numeric::SimdLevel`] name the vector leg ran
        /// at (informational; the gate compares the ratio).
        pub level: String,
        /// Min-of-samples ns/call with dispatch forced to the portable
        /// scalar path.
        pub portable_ns: f64,
        /// Min-of-samples ns/call at the detected vector level.
        pub simd_ns: f64,
    }

    impl SimdResult {
        /// The gate statistic: how many times faster the vector leg ran.
        pub fn speedup(&self) -> f64 {
            self.portable_ns / self.simd_ns
        }
    }

    /// Render the full document (`mode` = `"quick"` or `"full"`).
    pub fn format_document(mode: &str, results: &[SimdResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"unit\": \"ns_per_call\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"precision\": \"{}\", \"level\": \"{}\", \
                 \"portable_ns\": {:.1}, \"simd_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
                r.kernel,
                r.precision,
                r.level,
                r.portable_ns,
                r.simd_ns,
                r.speedup(),
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Extract the value following `"key":` on `line`, up to `,` or `}`.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }

    /// Parse every result line of a document produced by
    /// [`format_document`] (the redundant `speedup` field is recomputed,
    /// not trusted).
    pub fn parse_document(text: &str) -> Vec<SimdResult> {
        text.lines()
            .filter_map(|line| {
                Some(SimdResult {
                    kernel: field(line, "kernel")?.to_string(),
                    precision: field(line, "precision")?.to_string(),
                    level: field(line, "level")?.to_string(),
                    portable_ns: field(line, "portable_ns")?.parse().ok()?,
                    simd_ns: field(line, "simd_ns")?.parse().ok()?,
                })
            })
            .collect()
    }

    /// Number of baseline rows the gate can enforce. 0 means a broken
    /// baseline — callers should fail on it, not report success.
    pub fn gated_count(baseline: &[SimdResult]) -> usize {
        baseline.len()
    }

    /// Compare `current` against `baseline`: every baseline row's speedup
    /// must be matched within `tol` (e.g. `1.25` = the current speedup may
    /// be at most 25% below the committed one). Missing rows fail. Returns
    /// human-readable failure lines; empty = pass.
    pub fn regressions(current: &[SimdResult], baseline: &[SimdResult], tol: f64) -> Vec<String> {
        let mut failures = Vec::new();
        for b in baseline {
            let Some(c) =
                current.iter().find(|c| c.kernel == b.kernel && c.precision == b.precision)
            else {
                failures.push(format!(
                    "missing result for kernel={} precision={}",
                    b.kernel, b.precision
                ));
                continue;
            };
            let ratio = b.speedup() / c.speedup();
            if ratio > tol {
                failures.push(format!(
                    "kernel={} precision={}: speedup {:.2}x vs baseline {:.2}x \
                     ({:.2}x > {:.2}x budget)",
                    b.kernel,
                    b.precision,
                    c.speedup(),
                    b.speedup(),
                    ratio,
                    tol
                ));
            }
        }
        failures
    }
}

/// Machine-readable serving-load records: the `BENCH_service.json` /
/// `bench/baseline_service.json` format the CI `bench-smoke` job
/// produces and gates on. Same line-oriented JSON convention as
/// [`benchjson`]; rows are keyed by `(shape, mode)` where `mode` is
/// `"coalesced"` (the service's max-batch window) or `"batch1"`
/// (windows forced to a single request). Both modes are measured in one
/// session at the same offered load, so the gate statistic — the
/// coalesced/batch1 throughput ratio — cancels machine speed like the
/// other gates' normalized costs.
pub mod servicejson {
    /// One measured serving-load data point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ServiceResult {
        /// Problem shape as `"{nd}x{nm}x{nt}"`.
        pub shape: String,
        /// `"coalesced"` or `"batch1"`.
        pub mode: String,
        /// The window bound the mode ran with (32 vs 1).
        pub max_batch: usize,
        /// Hardware lanes observed (`std::thread::available_parallelism`).
        /// Informational: the absolute ≥1.5× saturation gate only runs on
        /// ≥4 lanes; the baseline comparison is normalized and always on.
        pub threads: usize,
        /// Open-loop offered arrival rate, requests/second.
        pub offered_rps: f64,
        /// Completed requests divided by wall-clock from first submission
        /// through drain, requests/second.
        pub throughput_rps: f64,
        /// Median end-to-end latency (queue + execute), microseconds.
        pub p50_us: f64,
        /// 99th-percentile end-to-end latency, microseconds.
        pub p99_us: f64,
        /// Mean requests per executed batch window.
        pub mean_batch: f64,
        /// Requests completed successfully.
        pub completed: u64,
        /// Requests shed by admission control.
        pub rejected: u64,
    }

    /// Render the full document (`mode` = `"quick"` or `"full"`).
    pub fn format_document(mode: &str, results: &[ServiceResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"unit\": \"requests_per_second\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"mode\": \"{}\", \"max_batch\": {}, \
                 \"threads\": {}, \"offered_rps\": {:.1}, \"throughput_rps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_batch\": {:.2}, \
                 \"completed\": {}, \"rejected\": {}}}{}\n",
                r.shape,
                r.mode,
                r.max_batch,
                r.threads,
                r.offered_rps,
                r.throughput_rps,
                r.p50_us,
                r.p99_us,
                r.mean_batch,
                r.completed,
                r.rejected,
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Extract the value following `"key":` on `line`, up to `,` or `}`.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }

    /// Parse every result line of a document produced by
    /// [`format_document`]. Lines without a `"max_batch"` field (the
    /// envelope, including its own `"mode"` line) are skipped.
    pub fn parse_document(text: &str) -> Vec<ServiceResult> {
        text.lines()
            .filter_map(|line| {
                Some(ServiceResult {
                    shape: field(line, "shape")?.to_string(),
                    mode: field(line, "mode")?.to_string(),
                    max_batch: field(line, "max_batch")?.parse().ok()?,
                    threads: field(line, "threads")?.parse().ok()?,
                    offered_rps: field(line, "offered_rps")?.parse().ok()?,
                    throughput_rps: field(line, "throughput_rps")?.parse().ok()?,
                    p50_us: field(line, "p50_us")?.parse().ok()?,
                    p99_us: field(line, "p99_us")?.parse().ok()?,
                    mean_batch: field(line, "mean_batch")?.parse().ok()?,
                    completed: field(line, "completed")?.parse().ok()?,
                    rejected: field(line, "rejected")?.parse().ok()?,
                })
            })
            .collect()
    }

    fn throughput(doc: &[ServiceResult], shape: &str, mode: &str) -> Option<f64> {
        doc.iter()
            .find(|r| r.shape == shape && r.mode == mode)
            .map(|r| r.throughput_rps)
            .filter(|&t| t > 0.0)
    }

    /// The gate statistic at `shape`: coalesced throughput divided by
    /// batch1 throughput *from the same document* — a same-session ratio,
    /// so machine speed cancels and a CI runner can gate against a
    /// baseline committed from different hardware.
    pub fn coalescing_speedup(doc: &[ServiceResult], shape: &str) -> Option<f64> {
        Some(throughput(doc, shape, "coalesced")? / throughput(doc, shape, "batch1")?)
    }

    /// Number of baseline shapes the gate can enforce (both modes
    /// present). 0 means a broken baseline — callers should fail on it,
    /// not report success.
    pub fn gated_count(baseline: &[ServiceResult]) -> usize {
        baseline
            .iter()
            .filter(|r| r.mode == "coalesced")
            .filter(|r| coalescing_speedup(baseline, &r.shape).is_some())
            .count()
    }

    /// Compare `current` against `baseline`: for every shape the baseline
    /// covers, the coalescing speedup must be within `tol` of the
    /// baseline's (e.g. `1.25` = the current speedup may be at most 25%
    /// below the committed one). Missing shapes fail. Returns
    /// human-readable failure lines; empty = pass.
    pub fn regressions(
        current: &[ServiceResult],
        baseline: &[ServiceResult],
        tol: f64,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        for b in baseline.iter().filter(|r| r.mode == "coalesced") {
            let Some(base) = coalescing_speedup(baseline, &b.shape) else {
                continue; // baseline lacks the batch1 reference: ungated
            };
            let Some(cur) = coalescing_speedup(current, &b.shape) else {
                failures.push(format!("missing result pair for shape={}", b.shape));
                continue;
            };
            let ratio = base / cur;
            if ratio > tol {
                failures.push(format!(
                    "shape={}: coalescing speedup {:.2}x vs baseline {:.2}x \
                     ({:.2}x > {:.2}x budget)",
                    b.shape, cur, base, ratio, tol
                ));
            }
        }
        failures
    }

    /// The absolute saturation gate: every shape's coalescing speedup
    /// must reach `min_speedup` (the shipped bar is `1.5`). Only
    /// meaningful on hosts with enough lanes that the coalesced window
    /// can actually exploit intra-batch parallelism — callers SKIP (with
    /// logged numbers) below 4 lanes. Returns failure lines.
    pub fn saturation_failures(doc: &[ServiceResult], min_speedup: f64) -> Vec<String> {
        doc.iter()
            .filter(|r| r.mode == "coalesced")
            .filter_map(|r| {
                let speedup = coalescing_speedup(doc, &r.shape)?;
                (speedup < min_speedup).then(|| {
                    format!(
                        "shape={}: coalescing speedup {:.2}x below the {:.2}x saturation bar",
                        r.shape, speedup, min_speedup
                    )
                })
            })
            .collect()
    }

    /// The occupancy gate: coalesced windows must average at least
    /// `min_frac` of their `max_batch` (the shipped bar is `0.25`) — it
    /// proves requests genuinely coalesce rather than trickling through
    /// one per window, and unlike the saturation gate it holds on any
    /// host because an overloaded single lane fills windows regardless
    /// of core count. Returns failure lines.
    pub fn occupancy_failures(doc: &[ServiceResult], min_frac: f64) -> Vec<String> {
        doc.iter()
            .filter(|r| r.mode == "coalesced")
            .filter_map(|r| {
                let floor = r.max_batch as f64 * min_frac;
                (r.mean_batch < floor).then(|| {
                    format!(
                        "shape={}: mean window occupancy {:.2} below {:.2} \
                         ({}% of max_batch {})",
                        r.shape,
                        r.mean_batch,
                        floor,
                        (min_frac * 100.0) as u32,
                        r.max_batch
                    )
                })
            })
            .collect()
    }
}

/// Print a horizontal rule sized to a header line.
/// Machine-readable autotuner records: the `BENCH_autotune.json` /
/// `bench/baseline_autotune.json` format the CI `bench-smoke` job
/// produces and gates on. Same line-oriented JSON convention as
/// [`benchjson`]; rows are keyed by `(shape, direction, budget)`.
///
/// Three gate statistics per row:
/// * **promise** (absolute, any host): the measured relative error of
///   the configuration the autotuner picked must be at or under the
///   requested budget;
/// * **no-slower** (intra-run, any host): all-double is always
///   admissible, so the autotuned configuration may never be materially
///   slower than all-double — both legs are timed interleaved in one
///   process;
/// * **speedup** (baseline-normalized): the double/tuned cost ratio is
///   a same-session statistic that cancels machine speed, but the
///   *chosen* configuration is itself host-dependent (the autotuner
///   measures this host's tiers), so the baseline tolerance is looser
///   than the kernel-level gates'.
pub mod autotunejson {
    /// One autotuned operating point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct AutotuneResult {
        /// `"{nd}x{nm}x{nt}"`.
        pub shape: String,
        /// `"forward"` or `"adjoint"`.
        pub direction: String,
        /// The caller's error budget the row was tuned for.
        pub budget: f64,
        /// The configuration the autotuner selected.
        pub config: String,
        /// The Eq. 6 bound the selection promised (`bound ≤ budget`).
        pub bound: f64,
        /// Measured relative error of the selected configuration.
        pub measured_error: f64,
        /// Min-of-samples ns/apply under all-double.
        pub double_ns: f64,
        /// Min-of-samples ns/apply under the selected configuration.
        pub tuned_ns: f64,
    }

    impl AutotuneResult {
        /// The gate statistic: how many times faster the autotuned
        /// configuration runs than all-double.
        pub fn speedup(&self) -> f64 {
            self.double_ns / self.tuned_ns
        }
    }

    /// Render the full document (`mode` = `"quick"` or `"full"`).
    pub fn format_document(mode: &str, results: &[AutotuneResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"unit\": \"ns_per_apply\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"direction\": \"{}\", \"budget\": {:e}, \
                 \"config\": \"{}\", \"bound\": {:.3e}, \"measured_error\": {:.3e}, \
                 \"double_ns\": {:.1}, \"tuned_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
                r.shape,
                r.direction,
                r.budget,
                r.config,
                r.bound,
                r.measured_error,
                r.double_ns,
                r.tuned_ns,
                r.speedup(),
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Extract the value following `"key":` on `line`, up to `,` or `}`.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }

    /// Parse every result line of a document produced by
    /// [`format_document`] (the redundant `speedup` field is recomputed,
    /// not trusted).
    pub fn parse_document(text: &str) -> Vec<AutotuneResult> {
        text.lines()
            .filter_map(|line| {
                Some(AutotuneResult {
                    shape: field(line, "shape")?.to_string(),
                    direction: field(line, "direction")?.to_string(),
                    budget: field(line, "budget")?.parse().ok()?,
                    config: field(line, "config")?.to_string(),
                    bound: field(line, "bound")?.parse().ok()?,
                    measured_error: field(line, "measured_error")?.parse().ok()?,
                    double_ns: field(line, "double_ns")?.parse().ok()?,
                    tuned_ns: field(line, "tuned_ns")?.parse().ok()?,
                })
            })
            .collect()
    }

    /// Number of baseline rows the gate can enforce. 0 means a broken
    /// baseline — callers should fail on it, not report success.
    pub fn gated_count(baseline: &[AutotuneResult]) -> usize {
        baseline.len()
    }

    /// Rows whose measured error exceeds the budget they were tuned
    /// for — the promise the autotuner must never break, on any host.
    pub fn promise_failures(doc: &[AutotuneResult]) -> Vec<String> {
        doc.iter()
            .filter(|r| r.measured_error > r.budget || r.measured_error.is_nan())
            .map(|r| {
                format!(
                    "shape={} direction={} budget={:e}: config {} measured {:.3e} \
                     over its budget",
                    r.shape, r.direction, r.budget, r.config, r.measured_error
                )
            })
            .collect()
    }

    /// Rows where the autotuned configuration ran materially slower
    /// than all-double (`tuned_ns > double_ns · margin`). All-double is
    /// always admissible, so picking something slower means the cost
    /// order was wrong.
    pub fn no_slower_failures(doc: &[AutotuneResult], margin: f64) -> Vec<String> {
        doc.iter()
            .filter(|r| r.tuned_ns > r.double_ns * margin)
            .map(|r| {
                format!(
                    "shape={} direction={} budget={:e}: config {} at {:.0} ns/apply is \
                     slower than all-double at {:.0} ns/apply (margin {:.2}x)",
                    r.shape, r.direction, r.budget, r.config, r.tuned_ns, r.double_ns, margin
                )
            })
            .collect()
    }

    /// Compare `current` against `baseline`: every baseline row's
    /// speedup must be matched within `tol`. Missing rows fail. Returns
    /// human-readable failure lines; empty = pass.
    pub fn regressions(
        current: &[AutotuneResult],
        baseline: &[AutotuneResult],
        tol: f64,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        for b in baseline {
            let Some(c) = current
                .iter()
                .find(|c| c.shape == b.shape && c.direction == b.direction && c.budget == b.budget)
            else {
                failures.push(format!(
                    "missing result for shape={} direction={} budget={:e}",
                    b.shape, b.direction, b.budget
                ));
                continue;
            };
            let ratio = b.speedup() / c.speedup();
            if ratio > tol {
                failures.push(format!(
                    "shape={} direction={} budget={:e}: speedup {:.2}x vs baseline {:.2}x \
                     ({:.2}x > {:.2}x budget)",
                    b.shape,
                    b.direction,
                    b.budget,
                    c.speedup(),
                    b.speedup(),
                    ratio,
                    tol
                ));
            }
        }
        failures
    }
}

/// Machine-readable multi-level Toeplitz records: the
/// `BENCH_toeplitz.json` / `bench/baseline_toeplitz.json` format the CI
/// `bench-smoke` job produces and gates on. Same line-oriented JSON
/// convention as [`benchjson`]; rows are keyed by `(shape, direction)`
/// where `shape` is the two-level extents
/// `"{or}x{oc}x{ir}x{ic}"`.
///
/// Three gate statistics per row:
/// * **scratch** (absolute, any host): the split-FFT path's peak
///   workspace bytes must be at most `max_ratio` (shipped bar `0.75`)
///   of the full embedding's — the whole point of the memory-optimized
///   construction, measured from the operators' own pool diagnostics,
///   so it cannot drift with timing noise;
/// * **speedup** (baseline-normalized): dense ns divided by FFT-path ns
///   is a same-session ratio — machine speed cancels, so a CI runner
///   gates against a baseline committed from different hardware;
/// * the differential check itself (FFT within ulp budget of dense)
///   lives in the binary, not the document — a row only exists if it
///   passed.
pub mod toeplitzjson {
    /// One measured two-level operating point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ToeplitzResult {
        /// Two-level extents as `"{or}x{oc}x{ir}x{ic}"`.
        pub shape: String,
        /// `"forward"` or `"adjoint"`.
        pub direction: String,
        /// Min-of-samples ns/apply of the full-embedding path.
        pub full_ns: f64,
        /// Min-of-samples ns/apply of the split-FFT path.
        pub split_ns: f64,
        /// Min-of-samples ns/apply of the dense reference matvec.
        pub dense_ns: f64,
        /// Peak single-workspace bytes of the full-embedding path.
        pub full_peak_bytes: usize,
        /// Peak single-workspace bytes of the split-FFT path.
        pub split_peak_bytes: usize,
    }

    impl ToeplitzResult {
        /// The baseline gate statistic: how many times faster the full
        /// embedding runs than the dense reference.
        pub fn full_speedup(&self) -> f64 {
            self.dense_ns / self.full_ns
        }

        /// Dense-vs-split speedup (the split path trades one extra FFT
        /// pass for half the peak scratch, so this is allowed to trail
        /// [`ToeplitzResult::full_speedup`]).
        pub fn split_speedup(&self) -> f64 {
            self.dense_ns / self.split_ns
        }

        /// Split peak scratch as a fraction of full peak scratch.
        pub fn scratch_ratio(&self) -> f64 {
            self.split_peak_bytes as f64 / self.full_peak_bytes as f64
        }
    }

    /// Render the full document (`mode` = `"quick"` or `"full"`).
    pub fn format_document(mode: &str, results: &[ToeplitzResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"unit\": \"ns_per_apply\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"direction\": \"{}\", \"full_ns\": {:.1}, \
                 \"split_ns\": {:.1}, \"dense_ns\": {:.1}, \"full_peak_bytes\": {}, \
                 \"split_peak_bytes\": {}, \"full_speedup\": {:.3}, \
                 \"scratch_ratio\": {:.3}}}{}\n",
                r.shape,
                r.direction,
                r.full_ns,
                r.split_ns,
                r.dense_ns,
                r.full_peak_bytes,
                r.split_peak_bytes,
                r.full_speedup(),
                r.scratch_ratio(),
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Extract the value following `"key":` on `line`, up to `,` or `}`.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }

    /// Parse every result line of a document produced by
    /// [`format_document`] (the redundant derived fields are recomputed,
    /// not trusted).
    pub fn parse_document(text: &str) -> Vec<ToeplitzResult> {
        text.lines()
            .filter_map(|line| {
                Some(ToeplitzResult {
                    shape: field(line, "shape")?.to_string(),
                    direction: field(line, "direction")?.to_string(),
                    full_ns: field(line, "full_ns")?.parse().ok()?,
                    split_ns: field(line, "split_ns")?.parse().ok()?,
                    dense_ns: field(line, "dense_ns")?.parse().ok()?,
                    full_peak_bytes: field(line, "full_peak_bytes")?.parse().ok()?,
                    split_peak_bytes: field(line, "split_peak_bytes")?.parse().ok()?,
                })
            })
            .collect()
    }

    /// Number of baseline rows the gate can enforce. 0 means a broken
    /// baseline — callers should fail on it, not report success.
    pub fn gated_count(baseline: &[ToeplitzResult]) -> usize {
        baseline.len()
    }

    /// The absolute memory gate: rows where the split-FFT path's peak
    /// workspace exceeds `max_ratio` of the full embedding's. This is
    /// the split path's reason to exist, and it is measured from pool
    /// diagnostics (deterministic byte counts), so the shipped bar of
    /// `0.75` holds on any host.
    pub fn scratch_failures(doc: &[ToeplitzResult], max_ratio: f64) -> Vec<String> {
        doc.iter()
            .filter(|r| {
                let ratio = r.scratch_ratio();
                ratio.is_nan() || ratio > max_ratio
            })
            .map(|r| {
                format!(
                    "shape={} direction={}: split peak {} B is {:.2}x the full peak {} B \
                     (> {:.2}x budget)",
                    r.shape,
                    r.direction,
                    r.split_peak_bytes,
                    r.scratch_ratio(),
                    r.full_peak_bytes,
                    max_ratio
                )
            })
            .collect()
    }

    /// Compare `current` against `baseline`: every baseline row's
    /// dense/full speedup must be matched within `tol` (e.g. `1.5` =
    /// the current speedup may be at most 33% below the committed one).
    /// Missing rows fail. Returns human-readable failure lines; empty =
    /// pass.
    pub fn regressions(
        current: &[ToeplitzResult],
        baseline: &[ToeplitzResult],
        tol: f64,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        for b in baseline {
            let Some(c) = current.iter().find(|c| c.shape == b.shape && c.direction == b.direction)
            else {
                failures.push(format!(
                    "missing result for shape={} direction={}",
                    b.shape, b.direction
                ));
                continue;
            };
            let ratio = b.full_speedup() / c.full_speedup();
            if ratio > tol {
                failures.push(format!(
                    "shape={} direction={}: dense/full speedup {:.2}x vs baseline {:.2}x \
                     ({:.2}x > {:.2}x budget)",
                    b.shape,
                    b.direction,
                    c.full_speedup(),
                    b.full_speedup(),
                    ratio,
                    tol
                ));
            }
        }
        failures
    }
}

/// Machine-readable backend-dispatch records: the `BENCH_backend.json` /
/// `bench/baseline_backend.json` format the CI `bench-smoke` job
/// produces and gates on. Same line-oriented JSON convention as
/// [`benchjson`]; rows are keyed by `(primitive, precision)`. Both legs
/// of every row are measured interleaved in one session — the direct
/// call path (concrete types, no virtual dispatch) against the same
/// kernel reached through `Arc<dyn DeviceBackend>` / `Arc<dyn BatchFft>`
/// — so the gate statistic, the trait/direct overhead ratio, cancels
/// machine speed like the other gates' normalized costs.
///
/// Two checks, mirroring `bench_simd`:
/// * **ceiling** (absolute, any host): every row's overhead must stay
///   under `-max` (the shipped bar is `1.05` — the trait boundary adds
///   one vtable hop plus enum tier/length validation per *batched*
///   call, which real workloads amortize to noise);
/// * **baseline**: every row's overhead must stay within `-tol` of the
///   committed `bench/baseline_backend.json`.
pub mod backendjson {
    /// One measured dispatch data point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct BackendResult {
        /// Primitive under test: `"fft_forward"`, `"fft_inverse"`,
        /// `"cast_real"`, `"cast_complex"`, `"pointwise_multiply"`, or
        /// `"tree_reduce"`.
        pub primitive: String,
        /// Element type of the device-side buffers.
        pub precision: String,
        /// Min-of-samples ns/call on the direct path (concrete types).
        pub direct_ns: f64,
        /// Min-of-samples ns/call through the `DeviceBackend` trait.
        pub trait_ns: f64,
    }

    impl BackendResult {
        /// The gate statistic: the cost of the trait boundary as a
        /// multiple of the direct path (1.0 = free dispatch).
        pub fn overhead(&self) -> f64 {
            self.trait_ns / self.direct_ns
        }
    }

    /// Render the full document (`mode` = `"quick"` or `"full"`).
    pub fn format_document(mode: &str, results: &[BackendResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str("  \"unit\": \"ns_per_call\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"primitive\": \"{}\", \"precision\": \"{}\", \
                 \"direct_ns\": {:.1}, \"trait_ns\": {:.1}, \"overhead\": {:.4}}}{}\n",
                r.primitive,
                r.precision,
                r.direct_ns,
                r.trait_ns,
                r.overhead(),
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Extract the value following `"key":` on `line`, up to `,` or `}`.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }

    /// Parse every result line of a document produced by
    /// [`format_document`] (the redundant `overhead` field is recomputed,
    /// not trusted).
    pub fn parse_document(text: &str) -> Vec<BackendResult> {
        text.lines()
            .filter_map(|line| {
                Some(BackendResult {
                    primitive: field(line, "primitive")?.to_string(),
                    precision: field(line, "precision")?.to_string(),
                    direct_ns: field(line, "direct_ns")?.parse().ok()?,
                    trait_ns: field(line, "trait_ns")?.parse().ok()?,
                })
            })
            .collect()
    }

    /// Number of baseline rows the gate can enforce. 0 means a broken
    /// baseline — callers should fail on it, not report success.
    pub fn gated_count(baseline: &[BackendResult]) -> usize {
        baseline.len()
    }

    /// The absolute ceiling gate: rows whose trait-dispatch overhead
    /// exceeds `max_overhead`. Returns failure lines; empty = pass.
    pub fn overhead_failures(doc: &[BackendResult], max_overhead: f64) -> Vec<String> {
        doc.iter()
            // NaN-safe: an incomparable (NaN) overhead must fail the gate,
            // so only a definite <= passes.
            .filter(|r| {
                !matches!(
                    r.overhead().partial_cmp(&max_overhead),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                )
            })
            .map(|r| {
                format!(
                    "primitive={} precision={}: trait path {:.3}x the direct path \
                     (> {:.2}x ceiling)",
                    r.primitive,
                    r.precision,
                    r.overhead(),
                    max_overhead
                )
            })
            .collect()
    }

    /// Compare `current` against `baseline`: every baseline row's
    /// overhead must be matched within `tol` (e.g. `1.05` = the current
    /// overhead may exceed the committed one by at most 5%). Missing
    /// rows fail. Returns human-readable failure lines; empty = pass.
    pub fn regressions(
        current: &[BackendResult],
        baseline: &[BackendResult],
        tol: f64,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        for b in baseline {
            let Some(c) =
                current.iter().find(|c| c.primitive == b.primitive && c.precision == b.precision)
            else {
                failures.push(format!(
                    "missing result for primitive={} precision={}",
                    b.primitive, b.precision
                ));
                continue;
            };
            let ratio = c.overhead() / b.overhead();
            if ratio > tol {
                failures.push(format!(
                    "primitive={} precision={}: overhead {:.3}x vs baseline {:.3}x \
                     ({:.2}x > {:.2}x budget)",
                    b.primitive,
                    b.precision,
                    c.overhead(),
                    b.overhead(),
                    ratio,
                    tol
                ));
            }
        }
        failures
    }
}

pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Shared micro-benchmark timing used by every gate binary
/// (`bench_fft`, `bench_matvec`, `bench_speedup`): batch calibration and
/// interleaved min-of-samples measurement.
pub mod timing {
    use std::time::Instant;

    /// Grow the batch size until one batch of `f` takes at least
    /// `sample_ms`.
    pub fn calibrate<F: FnMut()>(f: &mut F, sample_ms: f64) -> u64 {
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
            if elapsed_ms >= sample_ms || iters >= 1 << 22 {
                return iters;
            }
            let grow = (sample_ms / elapsed_ms.max(1e-6)).ceil() as u64;
            iters = iters.saturating_mul(grow.clamp(2, 16));
        }
    }

    /// One timed batch, in nanoseconds per call.
    pub fn time_batch<F: FnMut()>(f: &mut F, iters: u64) -> f64 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        t.elapsed().as_secs_f64() * 1e9 / iters as f64
    }

    /// Minimum ns/call over `samples` batches. The minimum is the right
    /// statistic for a CPU microbenchmark gate: scheduler noise only ever
    /// adds time, so min-of-N converges to the true cost much faster than
    /// the median — which keeps CI checks stable on shared runners.
    pub fn min_ns<F: FnMut()>(mut f: F, samples: usize, sample_ms: f64) -> f64 {
        let iters = calibrate(&mut f, sample_ms);
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(3) {
            best = best.min(time_batch(&mut f, iters));
        }
        best
    }

    /// Minimum ns/call for two routines, with their sample batches
    /// *interleaved* so both minima come from the same time windows —
    /// gates compare the a/b ratio, and interleaving cancels
    /// machine-state drift (frequency scaling, background load) that
    /// sequential measurement would bake into it.
    pub fn time_pair_ns<A: FnMut(), B: FnMut()>(
        mut a: A,
        mut b: B,
        samples: usize,
        sample_ms: f64,
    ) -> (f64, f64) {
        let ia = calibrate(&mut a, sample_ms);
        let ib = calibrate(&mut b, sample_ms);
        let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..samples.max(3) {
            best_a = best_a.min(time_batch(&mut a, ia));
            best_b = best_b.min(time_batch(&mut b, ib));
        }
        (best_a, best_b)
    }
}

/// Self-re-exec helper shared by the gate binaries whose measurements
/// depend on `RAYON_NUM_THREADS`: the pool reads the variable once per
/// process, so changing it means running a fresh child process of the
/// same executable.
pub mod respawn {
    use std::process::Command;

    /// Re-run the current executable with `child_env=1` and
    /// `RAYON_NUM_THREADS=threads`, returning its stdout (echoed when
    /// `echo` is set). Parent CLI args are forwarded so flags like
    /// `-quick` reach the child. Panics with the child's stderr on a
    /// non-zero exit.
    pub fn child_stdout(child_env: &str, threads: usize, echo: bool) -> String {
        let exe = std::env::current_exe().expect("own executable path");
        let args: Vec<String> = std::env::args().skip(1).collect();
        let out = Command::new(exe)
            .args(&args)
            .env(child_env, "1")
            .env("RAYON_NUM_THREADS", threads.to_string())
            .output()
            .expect("spawning gate child process");
        assert!(
            out.status.success(),
            "gate child at {threads} threads failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        if echo {
            print!("{text}");
        }
        text
    }
}

/// Order-sensitive FNV-1a digest over f64 bit patterns — the statistic
/// the determinism CI gate compares across `RAYON_NUM_THREADS` settings.
/// Any single-bit difference in any element, or any reordering, changes
/// the digest.
pub mod digest {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Running FNV-1a 64 hasher.
    #[derive(Clone)]
    pub struct Fnv1a(u64);

    impl Fnv1a {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Fnv1a {
            Fnv1a(FNV_OFFSET)
        }

        pub fn write_u64(&mut self, x: u64) {
            for byte in x.to_le_bytes() {
                self.0 ^= byte as u64;
                self.0 = self.0.wrapping_mul(FNV_PRIME);
            }
        }

        pub fn write_f64_bits(&mut self, xs: &[f64]) {
            for &x in xs {
                self.write_u64(x.to_bits());
            }
        }

        pub fn finish(&self) -> u64 {
            self.0
        }
    }

    /// One-shot digest of a f64 buffer's exact bits.
    pub fn f64_bits(xs: &[f64]) -> u64 {
        let mut h = Fnv1a::new();
        h.write_f64_bits(xs);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_builder() {
        let op = make_operator(3, 5, 4, 1);
        assert_eq!((op.nd(), op.nm(), op.nt()), (3, 5, 4));
    }

    #[test]
    fn stuffed_vectors_lose_bits_in_f32() {
        let v = stuffed_vector(100, 2);
        assert!(v.iter().all(|&x| (x as f32 as f64 - x).abs() > 0.0));
    }

    #[test]
    fn error_measurement_baseline_is_zero() {
        let op = make_operator(2, 6, 8, 3);
        let errs = measure_errors(op, &[PrecisionConfig::all_double()], 4);
        assert_eq!(errs[0], 0.0);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(0.00125), "1.250");
    }

    #[test]
    fn digest_is_order_and_bit_sensitive() {
        use crate::digest;
        let a = digest::f64_bits(&[1.0, 2.0, 3.0]);
        assert_eq!(a, digest::f64_bits(&[1.0, 2.0, 3.0]), "digest must be deterministic");
        assert_ne!(a, digest::f64_bits(&[1.0, 3.0, 2.0]), "order must matter");
        // One-ulp difference must change the digest.
        let tweaked = f64::from_bits(3.0f64.to_bits() + 1);
        assert_ne!(a, digest::f64_bits(&[1.0, 2.0, tweaked]));
        // Signed zero is a distinct bit pattern.
        assert_ne!(digest::f64_bits(&[0.0]), digest::f64_bits(&[-0.0]));
    }

    #[test]
    fn timing_measures_something_positive() {
        use crate::timing;
        let mut x = 0u64;
        let ns = timing::min_ns(
            || {
                x = x.wrapping_add(std::hint::black_box(1));
            },
            3,
            0.05,
        );
        assert!(ns.is_finite() && ns >= 0.0);
        let (a, b) = timing::time_pair_ns(|| (), || (), 3, 0.05);
        assert!(a.is_finite() && b.is_finite());
    }

    #[test]
    fn benchjson_roundtrip() {
        use crate::benchjson::*;
        let results = vec![
            BenchResult {
                size: 1024,
                precision: "f64".into(),
                engine: "iterative".into(),
                threads: 4,
                ns_per_transform: 1234.5,
            },
            BenchResult {
                size: 2048,
                precision: "f32".into(),
                engine: "recursive".into(),
                threads: 4,
                ns_per_transform: 99.0,
            },
        ];
        let doc = format_document("quick", &results);
        assert!(doc.contains("\"mode\": \"quick\""));
        let parsed = parse_document(&doc);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].size, 1024);
        assert_eq!(parsed[0].engine, "iterative");
        assert_eq!(parsed[0].threads, 4);
        assert_eq!(parsed[1].precision, "f32");
        assert!((parsed[0].ns_per_transform - 1234.5).abs() < 0.11);
        // Pre-thread-column lines (sequential-shim era) parse with
        // threads defaulting to 1.
        let legacy = "{\"size\": 8, \"precision\": \"f64\", \"engine\": \"iterative\", \
                      \"ns_per_transform\": 10.0}";
        let parsed = parse_document(legacy);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].threads, 1);
    }

    #[test]
    fn matvecjson_roundtrip_and_gates() {
        use crate::matvecjson::*;
        let row = |path: &str, ns: f64| MatvecResult {
            shape: "4x250x100".into(),
            config: "dssdd".into(),
            direction: "forward".into(),
            path: path.into(),
            threads: 1,
            ns_per_apply: ns,
        };
        let doc = vec![row("alloc", 1000.0), row("into", 900.0)];
        let text = format_document("quick", &doc);
        assert_eq!(parse_document(&text), doc);
        assert_eq!(gated_count(&doc), 1);
        // into faster than alloc: both gates pass.
        assert!(into_slower_than_alloc(&doc, 1.05).is_empty());
        assert!(regressions(&doc, &doc, 1.25).is_empty());
        // into slower than alloc: the acceptance check fires.
        let bad = vec![row("alloc", 1000.0), row("into", 1200.0)];
        assert_eq!(into_slower_than_alloc(&bad, 1.05).len(), 1);
        // Relative regression vs baseline fires even on a faster machine.
        let slower = vec![row("alloc", 500.0), row("into", 640.0)];
        assert_eq!(regressions(&slower, &doc, 1.25).len(), 1);
        // Missing pair is a failure; alloc-only baseline gates nothing.
        assert_eq!(regressions(&[], &doc, 1.25).len(), 1);
        assert_eq!(gated_count(&doc[..1]), 0);
    }

    #[test]
    fn simdjson_roundtrip_and_gate() {
        use crate::simdjson::*;
        let row = |kernel: &str, portable: f64, simd: f64| SimdResult {
            kernel: kernel.into(),
            precision: "f16".into(),
            level: "avx2".into(),
            portable_ns: portable,
            simd_ns: simd,
        };
        let doc = vec![row("convert_widen", 4000.0, 1000.0), row("fft_forward", 3000.0, 2000.0)];
        let text = format_document("quick", &doc);
        assert!(text.contains("\"speedup\": 4.000"));
        assert_eq!(parse_document(&text), doc);
        assert_eq!(gated_count(&doc), 2);
        // Identical run passes; a uniformly slower machine passes too
        // (the speedup is a same-session ratio).
        assert!(regressions(&doc, &doc, 1.25).is_empty());
        let slower = vec![row("convert_widen", 8000.0, 2000.0), row("fft_forward", 6000.0, 4000.0)];
        assert!(regressions(&slower, &doc, 1.25).is_empty());
        // Losing more than the budget of the committed speedup fails.
        let faded = vec![row("convert_widen", 4000.0, 2000.0), row("fft_forward", 3000.0, 2000.0)];
        assert_eq!(regressions(&faded, &doc, 1.25).len(), 1);
        // Missing rows fail.
        assert_eq!(regressions(&doc[..1], &doc, 1.25).len(), 1);
    }

    #[test]
    fn servicejson_roundtrip_and_gates() {
        use crate::servicejson::*;
        let row = |mode: &str, max_batch: usize, thr: f64, occ: f64| ServiceResult {
            shape: "8x64x256".into(),
            mode: mode.into(),
            max_batch,
            threads: 8,
            offered_rps: 6000.0,
            throughput_rps: thr,
            p50_us: 800.0,
            p99_us: 2500.0,
            mean_batch: occ,
            completed: 400,
            rejected: 12,
        };
        let doc = vec![row("coalesced", 32, 5400.0, 18.0), row("batch1", 1, 2700.0, 1.0)];
        let text = format_document("full", &doc);
        assert!(text.contains("\"throughput_rps\": 5400.0"));
        assert_eq!(parse_document(&text), doc);
        assert_eq!(gated_count(&doc), 1);
        assert!((coalescing_speedup(&doc, "8x64x256").unwrap() - 2.0).abs() < 1e-12);
        // Same doc vs itself passes; so does a uniformly slower machine
        // (the speedup is a same-session ratio).
        assert!(regressions(&doc, &doc, 1.25).is_empty());
        let slower = vec![row("coalesced", 32, 540.0, 18.0), row("batch1", 1, 270.0, 1.0)];
        assert!(regressions(&slower, &doc, 1.25).is_empty());
        // Losing more than the budget of the committed speedup fails.
        let faded = vec![row("coalesced", 32, 3000.0, 18.0), row("batch1", 1, 2700.0, 1.0)];
        assert_eq!(regressions(&faded, &doc, 1.25).len(), 1);
        // Missing pairs fail; a one-mode baseline gates nothing.
        assert_eq!(regressions(&[], &doc, 1.25).len(), 1);
        assert_eq!(gated_count(&doc[..1]), 0);
        // Absolute saturation bar: 2.0x passes 1.5, 1.1x fails.
        assert!(saturation_failures(&doc, 1.5).is_empty());
        assert_eq!(saturation_failures(&faded, 1.5).len(), 1);
        // Occupancy bar: 18/32 passes 25%, 5/32 fails.
        assert!(occupancy_failures(&doc, 0.25).is_empty());
        let trickle = vec![row("coalesced", 32, 5400.0, 5.0), row("batch1", 1, 2700.0, 1.0)];
        assert_eq!(occupancy_failures(&trickle, 0.25).len(), 1);
    }

    #[test]
    fn toeplitzjson_roundtrip_and_gates() {
        use crate::toeplitzjson::*;
        let row =
            |dir: &str, full: f64, split: f64, dense: f64, fp: usize, sp: usize| ToeplitzResult {
                shape: "16x16x16x16".into(),
                direction: dir.into(),
                full_ns: full,
                split_ns: split,
                dense_ns: dense,
                full_peak_bytes: fp,
                split_peak_bytes: sp,
            };
        let doc = vec![
            row("forward", 1000.0, 1400.0, 8000.0, 32768, 16384),
            row("adjoint", 1100.0, 1500.0, 8000.0, 32768, 16384),
        ];
        let text = format_document("quick", &doc);
        assert!(text.contains("\"full_speedup\": 8.000"));
        assert!(text.contains("\"scratch_ratio\": 0.500"));
        assert_eq!(parse_document(&text), doc);
        assert_eq!(gated_count(&doc), 2);
        // Half the scratch clears the 0.75 bar; parity does not.
        assert!(scratch_failures(&doc, 0.75).is_empty());
        let bloated = vec![row("forward", 1000.0, 1400.0, 8000.0, 32768, 32768)];
        assert_eq!(scratch_failures(&bloated, 0.75).len(), 1);
        // Identical run passes; a uniformly slower machine passes too
        // (the speedup is a same-session ratio).
        assert!(regressions(&doc, &doc, 1.5).is_empty());
        let slower = vec![
            row("forward", 3000.0, 4200.0, 24000.0, 32768, 16384),
            row("adjoint", 3300.0, 4500.0, 24000.0, 32768, 16384),
        ];
        assert!(regressions(&slower, &doc, 1.5).is_empty());
        // Losing more than the budget of the committed speedup fails.
        let faded = vec![
            row("forward", 2000.0, 1400.0, 8000.0, 32768, 16384),
            row("adjoint", 1100.0, 1500.0, 8000.0, 32768, 16384),
        ];
        assert_eq!(regressions(&faded, &doc, 1.5).len(), 1);
        // Missing rows fail.
        assert_eq!(regressions(&doc[..1], &doc, 1.5).len(), 1);
    }

    #[test]
    fn benchjson_regression_gate() {
        use crate::benchjson::*;
        let pair = |it: f64, rec: f64| {
            vec![
                BenchResult {
                    size: 1024,
                    precision: "f64".into(),
                    engine: "iterative".into(),
                    threads: 1,
                    ns_per_transform: it,
                },
                BenchResult {
                    size: 1024,
                    precision: "f64".into(),
                    engine: "recursive".into(),
                    threads: 1,
                    ns_per_transform: rec,
                },
            ]
        };
        // Baseline: iterative is 2x faster than recursive (cost 0.5).
        let base = pair(1000.0, 2000.0);
        // A uniformly slower machine (both engines 3x slower) still passes:
        // the normalized cost is unchanged.
        assert!(regressions(&pair(3000.0, 6000.0), &base, 1.25).is_empty());
        // 20% relative slowdown of the iterative engine passes...
        assert!(regressions(&pair(1200.0, 2000.0), &base, 1.25).is_empty());
        // ...30% fails, even though the machine could be fast overall.
        assert_eq!(regressions(&pair(650.0, 1000.0), &base, 1.25).len(), 1);
        // Missing entries fail.
        assert_eq!(regressions(&[], &base, 1.25).len(), 1);
        // A baseline without the recursive reference is ungated — and
        // gated_count exposes that so callers can refuse to run with it.
        assert!(regressions(&[], &base[..1], 1.25).is_empty());
        assert_eq!(gated_count(&base), 1);
        assert_eq!(gated_count(&base[..1]), 0, "iterative-only baseline gates nothing");
    }
}
