//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary follows the same contract: *timings* come from the GPU
//! cost model evaluated at the paper's problem shape; *errors* come from
//! real mixed-precision arithmetic, run at a memory-scaled shape with the
//! same structure (mantissa-stuffed inputs, identical grid shapes). Each
//! binary prints the rows/series of its figure plus the paper's reference
//! values for side-by-side comparison.

use fftmatvec_core::{BlockToeplitzOperator, FftMatvec, PrecisionConfig};
use fftmatvec_numeric::vecmath::rel_l2_error;
use fftmatvec_numeric::SplitMix64;

/// Tiny `-flag value` CLI parser (mirrors the artifact's `-nm 5000 -nd 100
/// -Nt 1000 -prec dssdd` interface).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn from_env() -> Self {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// Value of `-name <v>`, parsed, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("-{name}");
        self.raw
            .iter()
            .position(|a| a.eq_ignore_ascii_case(&flag))
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Is `-name` present (boolean flag)?
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("-{name}");
        self.raw.iter().any(|a| a.eq_ignore_ascii_case(&flag))
    }
}

/// Build a random block-Toeplitz operator. Entries are *positive*
/// uniforms, matching the artifact's initialization path
/// (`curandGenerateUniformDouble` produces values in (0, 1]); positive
/// data means the frequency-domain reductions have no sign cancellation,
/// which is a precondition for the ≲1e-7 mixed-precision errors the paper
/// reports at `N_m = 5000`.
pub fn make_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).expect("valid operator dims")
}

/// A mantissa-stuffed positive input vector (the §4.2.1 generator applied
/// to cuRAND-style (0,1] uniforms, so single-precision phases provably
/// incur error without introducing sign cancellation the paper's
/// workloads don't have).
pub fn stuffed_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0.0; n];
    rng.fill_uniform_stuffed(&mut v, 0.0, 1.0);
    v
}

/// Measured relative errors of many configurations against the all-double
/// baseline, reusing one operator (forward matvec).
pub fn measure_errors(
    op: BlockToeplitzOperator,
    configs: &[PrecisionConfig],
    seed: u64,
) -> Vec<f64> {
    let m = stuffed_vector(op.nm() * op.nt(), seed);
    let mut mv = FftMatvec::new(op, PrecisionConfig::all_double());
    let baseline = mv.apply_forward(&m);
    configs
        .iter()
        .map(|&cfg| {
            mv.set_config(cfg);
            rel_l2_error(&mv.apply_forward(&m), &baseline)
        })
        .collect()
}

/// Format seconds as milliseconds with three decimals.
pub fn ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

/// Print a horizontal rule sized to a header line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_builder() {
        let op = make_operator(3, 5, 4, 1);
        assert_eq!((op.nd(), op.nm(), op.nt()), (3, 5, 4));
    }

    #[test]
    fn stuffed_vectors_lose_bits_in_f32() {
        let v = stuffed_vector(100, 2);
        assert!(v.iter().all(|&x| (x as f32 as f64 - x).abs() > 0.0));
    }

    #[test]
    fn error_measurement_baseline_is_zero() {
        let op = make_operator(2, 6, 8, 3);
        let errs = measure_errors(op, &[PrecisionConfig::all_double()], 4);
        assert_eq!(errs[0], 0.0);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(0.00125), "1.250");
    }
}
