//! Ablation benchmarks for the DESIGN.md design choices:
//!
//! 1. fused cast+pad vs separate pad-then-cast passes (the Section-3.2
//!    kernel-fusion claim);
//! 2. hipify translation throughput (the on-the-fly build cost);
//! 3. the partitioner's search cost and the modeled gain of
//!    communication-aware partitioning over a flat grid;
//! 4. Bluestein vs mixed-radix plans at comparable sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fftmatvec_bench::stuffed_vector;
use fftmatvec_comm::partition::{grid_comm_time, PartitionProblem};
use fftmatvec_comm::{choose_grid, NetworkModel, PartitionStrategy, ProcessGrid};
use fftmatvec_core::layout;
use fftmatvec_fft::FftPlan;
use fftmatvec_numeric::{Complex, Precision, SplitMix64, C64};
use fftmatvec_portability::hipify_source;
use fftmatvec_portability::kernels_cuda::ALL_SOURCES;
use std::hint::black_box;

fn bench_fused_vs_separate_cast(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cast_fusion");
    g.sample_size(20);
    let (n_series, nt) = (512usize, 256usize);
    let m = stuffed_vector(n_series * nt, 1);
    // Fused: pad directly into single precision (one pass).
    g.bench_function("fused_pad_cast", |b| {
        b.iter(|| layout::pad_input(black_box(&m), n_series, nt, Precision::Single));
    });
    // Separate: pad in double, then cast (two passes) — what the paper's
    // fusion avoids.
    g.bench_function("separate_pad_then_cast", |b| {
        b.iter(|| {
            let padded = layout::pad_input(black_box(&m), n_series, nt, Precision::Double);
            layout::cast_real(padded, Precision::Single)
        });
    });
    g.finish();
}

fn bench_hipify_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hipify");
    g.sample_size(50);
    let total: usize = ALL_SOURCES.iter().map(|(_, s)| s.len()).sum();
    g.bench_function(BenchmarkId::new("app_tree", format!("{total}B")), |b| {
        b.iter(|| {
            for (_, src) in ALL_SOURCES {
                black_box(hipify_source(src));
            }
        });
    });
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_partitioning");
    g.sample_size(30);
    let net = NetworkModel::frontier();
    let p = 4096usize;
    let prob = PartitionProblem { nd: 100, nm: 5000 * p, nt: 1000, elem_bytes: 8 };
    g.bench_function("cost_model_search_4096", |b| {
        b.iter(|| choose_grid(PartitionStrategy::CostModel, p, black_box(&prob), &net));
    });
    // Not a timing ablation but reported once: the modeled gain.
    let flat = grid_comm_time(&net, &ProcessGrid::new(1, p), &prob);
    let best = choose_grid(PartitionStrategy::CostModel, p, &prob, &net);
    let tuned = grid_comm_time(&net, &best, &prob);
    println!(
        "\n[partitioning ablation] 4096 GPUs: flat 1x{p} = {:.1} ms, {}x{} = {:.1} ms ({:.1}x gain; paper: >3x)\n",
        flat * 1e3,
        best.rows,
        best.cols,
        tuned * 1e3,
        flat / tuned
    );
    g.finish();
}

fn bench_bluestein_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bluestein");
    g.sample_size(20);
    // 2039 is prime (Bluestein, inner size 4096); 2048 is the comparable
    // mixed-radix size — the overhead factor is the cost of supporting
    // arbitrary N_t.
    for n in [2039usize, 2048] {
        let plan = FftPlan::<f64>::new(n);
        let mut rng = SplitMix64::new(n as u64);
        let x: Vec<C64> =
            (0..n).map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect();
        let mut out = vec![Complex::zero(); n];
        let mut scratch = vec![Complex::zero(); plan.scratch_len()];
        let label = if plan.is_bluestein() { "bluestein" } else { "mixed_radix" };
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| plan.forward(black_box(&x), &mut out, &mut scratch));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fused_vs_separate_cast,
    bench_hipify_throughput,
    bench_partitioner,
    bench_bluestein_overhead
);
criterion_main!(benches);
