//! Criterion benchmarks for the SBGEMV kernels: baseline vs optimized CPU
//! execution across shapes and datatypes (the Figure-1 sweep, wall-clock
//! edition), plus the dispatcher's end-to-end path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fftmatvec_blas::{sbgemv, sbgemv_with, BatchGeometry, GemvOp, KernelChoice};
use fftmatvec_numeric::{Complex, Scalar, SplitMix64, C64};
use std::hint::black_box;

fn fill<S: Scalar>(rng: &mut SplitMix64, len: usize) -> Vec<S> {
    (0..len).map(|_| S::from_f64_parts(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
}

fn bench_kernels_short_wide(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbgemv_short_wide_z");
    g.sample_size(20);
    // The FFTMatvec phase-3 shape, scaled: m << n, complex double,
    // conjugate transpose.
    let (m, n, batch) = (32usize, 1024usize, 32usize);
    let op = GemvOp::ConjTrans;
    let geom = BatchGeometry::packed(m, n, op, batch);
    let mut rng = SplitMix64::new(1);
    let a: Vec<C64> = fill(&mut rng, batch * m * n);
    let x: Vec<C64> = fill(&mut rng, batch * m);
    let mut y = vec![Complex::zero(); batch * n];
    g.throughput(Throughput::Elements((m * n * batch) as u64));
    for kernel in [KernelChoice::Reference, KernelChoice::Optimized] {
        g.bench_with_input(BenchmarkId::new("kernel", kernel.to_string()), &kernel, |b, &k| {
            b.iter(|| {
                sbgemv_with(
                    k,
                    op,
                    Complex::one(),
                    black_box(&a),
                    &x,
                    Complex::zero(),
                    &mut y,
                    &geom,
                )
            });
        });
    }
    g.finish();
}

fn bench_all_dtypes(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbgemv_dtypes");
    g.sample_size(20);
    let (m, n, batch) = (64usize, 512usize, 16usize);
    let op = GemvOp::Trans;
    let geom = BatchGeometry::packed(m, n, op, batch);

    macro_rules! bench_type {
        ($name:literal, $t:ty) => {
            let mut rng = SplitMix64::new(2);
            let a: Vec<$t> = fill(&mut rng, batch * m * n);
            let x: Vec<$t> = fill(&mut rng, batch * m);
            let mut y = vec![<$t as Scalar>::zero(); batch * n];
            g.bench_function($name, |b| {
                b.iter(|| {
                    sbgemv_with(
                        KernelChoice::Optimized,
                        op,
                        <$t as Scalar>::one(),
                        black_box(&a),
                        &x,
                        <$t as Scalar>::zero(),
                        &mut y,
                        &geom,
                    )
                });
            });
        };
    }
    bench_type!("real_f32", f32);
    bench_type!("real_f64", f64);
    bench_type!("complex_f32", Complex<f32>);
    bench_type!("complex_f64", Complex<f64>);
    g.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbgemv_dispatch");
    g.sample_size(20);
    let (m, n, batch) = (16usize, 256usize, 8usize);
    let op = GemvOp::ConjTrans;
    let geom = BatchGeometry::packed(m, n, op, batch);
    let mut rng = SplitMix64::new(3);
    let a: Vec<C64> = fill(&mut rng, batch * m * n);
    let x: Vec<C64> = fill(&mut rng, batch * m);
    let mut y = vec![Complex::zero(); batch * n];
    g.bench_function("auto_dispatch", |b| {
        b.iter(|| sbgemv(op, Complex::one(), black_box(&a), &x, Complex::zero(), &mut y, &geom));
    });
    g.bench_function("explicit_kernel", |b| {
        b.iter(|| {
            sbgemv_with(
                KernelChoice::Optimized,
                op,
                Complex::one(),
                black_box(&a),
                &x,
                Complex::zero(),
                &mut y,
                &geom,
            )
        });
    });
    g.finish();
}

fn bench_nontrans(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbgemv_nontrans_z");
    g.sample_size(20);
    // The F-matvec direction: y = A x with the same short-wide blocks.
    let (m, n, batch) = (32usize, 1024usize, 32usize);
    let op = GemvOp::NoTrans;
    let geom = BatchGeometry::packed(m, n, op, batch);
    let mut rng = SplitMix64::new(4);
    let a: Vec<C64> = fill(&mut rng, batch * m * n);
    let x: Vec<C64> = fill(&mut rng, batch * n);
    let mut y = vec![Complex::zero(); batch * m];
    g.throughput(Throughput::Elements((m * n * batch) as u64));
    g.bench_function("reference", |b| {
        b.iter(|| {
            sbgemv_with(
                KernelChoice::Reference,
                op,
                Complex::one(),
                black_box(&a),
                &x,
                Complex::zero(),
                &mut y,
                &geom,
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kernels_short_wide,
    bench_all_dtypes,
    bench_dispatch_overhead,
    bench_nontrans
);
criterion_main!(benches);
