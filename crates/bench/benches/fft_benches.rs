//! Criterion benchmarks for the FFT substrate: plan execution across the
//! strategy space (power-of-two, mixed-radix, Bluestein), real-packed vs
//! complex transforms, and batched throughput at FFTMatvec's sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fftmatvec_fft::{BatchedFft, BatchedRealFft, FftPlan, RealFftPlan, RecursiveFftPlan};
use fftmatvec_numeric::{Complex, SplitMix64, C64};
use std::hint::black_box;

fn signal(n: usize, seed: u64) -> Vec<C64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))).collect()
}

fn bench_plan_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_plan");
    g.sample_size(30);
    // 2048: pure radix-4/2; 2000: mixed radix (FFTMatvec's 2*N_t);
    // 2039: prime, Bluestein.
    for n in [2048usize, 2000, 2039] {
        let plan = FftPlan::<f64>::new(n);
        let x = signal(n, n as u64);
        let mut out = vec![Complex::zero(); n];
        let mut scratch = vec![Complex::zero(); plan.scratch_len()];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| plan.forward(black_box(&x), &mut out, &mut scratch));
        });
    }
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    // The iterative Stockham engine against the seed recursive baseline —
    // the same comparison bench_fft emits as BENCH_fft.json, here in the
    // criterion harness for interactive runs.
    let mut g = c.benchmark_group("fft_engine");
    g.sample_size(20);
    for n in [1024usize, 2000, 2048] {
        let x = signal(n, n as u64);
        let mut out = vec![Complex::zero(); n];
        let plan = FftPlan::<f64>::new(n);
        let mut scratch = vec![Complex::zero(); plan.scratch_len()];
        g.bench_with_input(BenchmarkId::new("iterative", n), &n, |b, _| {
            b.iter(|| plan.forward(black_box(&x), &mut out, &mut scratch));
        });
        let seed_plan = RecursiveFftPlan::<f64>::new(n);
        g.bench_with_input(BenchmarkId::new("recursive", n), &n, |b, _| {
            b.iter(|| {
                seed_plan.process(black_box(&x), &mut out, fftmatvec_fft::FftDirection::Forward)
            });
        });
    }
    g.finish();
}

fn bench_real_vs_complex(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_real_vs_complex");
    g.sample_size(30);
    let n = 2000usize;
    let mut rng = SplitMix64::new(3);
    let xr: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let xc: Vec<C64> = xr.iter().map(|&v| Complex::from_real(v)).collect();

    let rplan = RealFftPlan::<f64>::new(n);
    let mut rspec = vec![Complex::zero(); rplan.spectrum_len()];
    let mut rscratch = vec![Complex::zero(); rplan.scratch_len()];
    g.bench_function("packed_r2c_2000", |b| {
        b.iter(|| rplan.forward(black_box(&xr), &mut rspec, &mut rscratch));
    });

    let cplan = FftPlan::<f64>::new(n);
    let mut cout = vec![Complex::zero(); n];
    let mut cscratch = vec![Complex::zero(); cplan.scratch_len()];
    g.bench_function("full_complex_2000", |b| {
        b.iter(|| cplan.forward(black_box(&xc), &mut cout, &mut cscratch));
    });
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_batched");
    g.sample_size(15);
    // Phase-2 shape scaled down: batch real FFTs of length 2*N_t.
    let n = 2000usize;
    for batch in [8usize, 64, 256] {
        let bf = BatchedRealFft::<f64>::new(n);
        let mut rng = SplitMix64::new(4);
        let data: Vec<f64> = (0..n * batch).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut spec = vec![Complex::zero(); batch * bf.spectrum_len()];
        g.throughput(Throughput::Elements((n * batch) as u64));
        g.bench_with_input(BenchmarkId::new("r2c", batch), &batch, |b, _| {
            b.iter(|| bf.forward_batch(black_box(&data), &mut spec));
        });
    }
    // Complex batched for comparison.
    let bfc = BatchedFft::<f64>::new(n);
    let data = signal(n * 64, 5);
    let mut out = vec![Complex::zero(); data.len()];
    g.bench_function("c2c_batch64", |b| {
        b.iter(|| {
            bfc.process_batch(black_box(&data), &mut out, fftmatvec_fft::FftDirection::Forward)
        });
    });
    g.finish();
}

fn bench_f32_vs_f64(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_precision");
    g.sample_size(30);
    let n = 2000usize;
    let plan64 = RealFftPlan::<f64>::new(n);
    let plan32 = RealFftPlan::<f32>::new(n);
    let mut rng = SplitMix64::new(6);
    let x64: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
    let mut s64 = vec![Complex::<f64>::zero(); plan64.spectrum_len()];
    let mut w64 = vec![Complex::<f64>::zero(); plan64.scratch_len()];
    let mut s32 = vec![Complex::<f32>::zero(); plan32.spectrum_len()];
    let mut w32 = vec![Complex::<f32>::zero(); plan32.scratch_len()];
    g.bench_function("r2c_f64_2000", |b| {
        b.iter(|| plan64.forward(black_box(&x64), &mut s64, &mut w64))
    });
    g.bench_function("r2c_f32_2000", |b| {
        b.iter(|| plan32.forward(black_box(&x32), &mut s32, &mut w32))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_plan_strategies,
    bench_engines,
    bench_real_vs_complex,
    bench_batched,
    bench_f32_vs_f64
);
criterion_main!(benches);
