//! Criterion benchmarks for the full FFTMatvec pipeline: FFT vs direct
//! matvec crossover in N_t, forward vs adjoint, and double vs mixed
//! precision CPU wall clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fftmatvec_bench::{make_operator, stuffed_vector};
use fftmatvec_core::{DirectMatvec, FftMatvec, LinearOperator};
use std::hint::black_box;

fn bench_fft_vs_direct_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("matvec_crossover");
    g.sample_size(10);
    // Fixed spatial shape, growing N_t: direct is O(N_t^2), FFT is
    // O(N_t log N_t) — the crossover motivates the whole algorithm.
    let (nd, nm) = (8usize, 128usize);
    for nt in [16usize, 64, 256] {
        let op = make_operator(nd, nm, nt, nt as u64);
        let m = stuffed_vector(nm * nt, 1);
        let mv = FftMatvec::builder(op).build().unwrap();
        g.throughput(Throughput::Elements((nd * nm * nt) as u64));
        g.bench_with_input(BenchmarkId::new("fft", nt), &nt, |b, _| {
            b.iter(|| mv.apply_forward(black_box(&m)).unwrap());
        });
        let direct = DirectMatvec::new(mv.operator());
        g.bench_with_input(BenchmarkId::new("direct", nt), &nt, |b, _| {
            b.iter(|| direct.apply_forward(black_box(&m)).unwrap());
        });
    }
    g.finish();
}

fn bench_forward_vs_adjoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("matvec_directions");
    g.sample_size(10);
    let (nd, nm, nt) = (16usize, 512usize, 128usize);
    let op = make_operator(nd, nm, nt, 7);
    let mv = FftMatvec::builder(op).build().unwrap();
    let m = stuffed_vector(nm * nt, 2);
    let d = stuffed_vector(nd * nt, 3);
    g.bench_function("forward", |b| b.iter(|| mv.apply_forward(black_box(&m)).unwrap()));
    g.bench_function("adjoint", |b| b.iter(|| mv.apply_adjoint(black_box(&d)).unwrap()));
    g.finish();
}

fn bench_precision_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("matvec_precision");
    g.sample_size(10);
    let (nd, nm, nt) = (16usize, 512usize, 128usize);
    let m = stuffed_vector(nm * nt, 4);
    for cfg in ["ddddd", "dssdd", "sssss"] {
        let op = make_operator(nd, nm, nt, 9);
        let mv = FftMatvec::builder(op).precision(cfg.parse().unwrap()).build().unwrap();
        g.bench_with_input(BenchmarkId::new("config", cfg), &cfg, |b, _| {
            b.iter(|| mv.apply_forward(black_box(&m)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fft_vs_direct_crossover,
    bench_forward_vs_adjoint,
    bench_precision_configs
);
criterion_main!(benches);
