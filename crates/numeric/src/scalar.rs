//! The [`Scalar`] trait: one generic element type for the BLAS kernels.
//!
//! rocBLAS ships four copies of every GEMV (`s`/`d`/`c`/`z`); the paper's
//! optimized kernel likewise instantiates per datatype with a templated
//! host-side dispatcher. [`Scalar`] gives us the same single-source kernels:
//! it is implemented by `f32`, `f64`, `Complex<f32>`, `Complex<f64>`.

use core::fmt::Debug;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::complex::Complex;
use crate::dtype::DType;
use crate::real::Real;

/// Element type of a BLAS vector/matrix: real or complex, f32 or f64.
pub trait Scalar:
    Copy
    + Clone
    + Send
    + Sync
    + Debug
    + Default
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + 'static
{
    /// The underlying real type.
    type Real: Real;

    /// Runtime datatype tag (drives the GPU cost model).
    const DTYPE: DType;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Complex conjugate (identity for real types). The kernels use this to
    /// implement the `ConjTrans` operation of the adjoint matvec.
    fn conj(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Squared absolute value, as the real type.
    fn abs_sqr(self) -> Self::Real;
    /// Embed a real scalar.
    fn from_real(r: Self::Real) -> Self;
    /// Lossy conversion from an `f64` pair (imaginary ignored for reals).
    fn from_f64_parts(re: f64, im: f64) -> Self;
    /// Widen to an `f64` pair (imaginary zero for reals).
    fn to_f64_parts(self) -> (f64, f64);
    /// Scale by a real factor.
    fn scale(self, k: Self::Real) -> Self;
}

impl<T: Real> Scalar for T
where
    T: Sum,
{
    type Real = T;
    const DTYPE: DType = match T::PRECISION {
        crate::precision::Precision::Half => DType::RealF16,
        crate::precision::Precision::BFloat16 => DType::RealBF16,
        crate::precision::Precision::Single => DType::RealF32,
        crate::precision::Precision::Double => DType::RealF64,
    };

    #[inline(always)]
    fn zero() -> Self {
        T::ZERO
    }
    #[inline(always)]
    fn one() -> Self {
        T::ONE
    }
    #[inline(always)]
    fn conj(self) -> Self {
        self
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Real::mul_add(self, a, b)
    }
    #[inline(always)]
    fn abs_sqr(self) -> T {
        self * self
    }
    #[inline(always)]
    fn from_real(r: T) -> Self {
        r
    }
    #[inline(always)]
    fn from_f64_parts(re: f64, _im: f64) -> Self {
        T::from_f64(re)
    }
    #[inline(always)]
    fn to_f64_parts(self) -> (f64, f64) {
        (self.to_f64(), 0.0)
    }
    #[inline(always)]
    fn scale(self, k: T) -> Self {
        self * k
    }
}

impl<T: Real> Scalar for Complex<T> {
    type Real = T;
    const DTYPE: DType = match T::PRECISION {
        crate::precision::Precision::Half => DType::ComplexF16,
        crate::precision::Precision::BFloat16 => DType::ComplexBF16,
        crate::precision::Precision::Single => DType::ComplexF32,
        crate::precision::Precision::Double => DType::ComplexF64,
    };

    #[inline(always)]
    fn zero() -> Self {
        Complex::zero()
    }
    #[inline(always)]
    fn one() -> Self {
        Complex::one()
    }
    #[inline(always)]
    fn conj(self) -> Self {
        Complex::conj(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Complex::mul_add(self, a, b)
    }
    #[inline(always)]
    fn abs_sqr(self) -> T {
        self.norm_sqr()
    }
    #[inline(always)]
    fn from_real(r: T) -> Self {
        Complex::from_real(r)
    }
    #[inline(always)]
    fn from_f64_parts(re: f64, im: f64) -> Self {
        Complex::new(T::from_f64(re), T::from_f64(im))
    }
    #[inline(always)]
    fn to_f64_parts(self) -> (f64, f64) {
        (self.re.to_f64(), self.im.to_f64())
    }
    #[inline(always)]
    fn scale(self, k: T) -> Self {
        Complex::scale(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_dot<S: Scalar>(a: &[S], b: &[S]) -> S {
        a.iter().zip(b).fold(S::zero(), |acc, (&x, &y)| x.mul_add(y, acc))
    }

    #[test]
    fn dtype_tags() {
        use crate::half::{bf16, f16};
        assert_eq!(<f32 as Scalar>::DTYPE, DType::RealF32);
        assert_eq!(<f64 as Scalar>::DTYPE, DType::RealF64);
        assert_eq!(<Complex<f32> as Scalar>::DTYPE, DType::ComplexF32);
        assert_eq!(<Complex<f64> as Scalar>::DTYPE, DType::ComplexF64);
        assert_eq!(<f16 as Scalar>::DTYPE, DType::RealF16);
        assert_eq!(<bf16 as Scalar>::DTYPE, DType::RealBF16);
        assert_eq!(<Complex<f16> as Scalar>::DTYPE, DType::ComplexF16);
        assert_eq!(<Complex<bf16> as Scalar>::DTYPE, DType::ComplexBF16);
    }

    #[test]
    fn real_conj_is_identity() {
        assert_eq!(Scalar::conj(3.0f64), 3.0);
    }

    #[test]
    fn generic_kernel_works_for_all_four_types() {
        let ar = [1.0f32, 2.0, 3.0];
        assert_eq!(generic_dot(&ar, &ar), 14.0);
        let ad = [1.0f64, 2.0, 3.0];
        assert_eq!(generic_dot(&ad, &ad), 14.0);
        let ac = [Complex::<f64>::new(0.0, 1.0); 2];
        let d = generic_dot(&ac, &ac);
        assert!((d.re + 2.0).abs() < 1e-15 && d.im.abs() < 1e-15);
        let acs = [Complex::<f32>::new(1.0, 0.0); 4];
        assert_eq!(generic_dot(&acs, &acs).re, 4.0);
    }

    #[test]
    fn f64_parts_roundtrip() {
        let z = Complex::<f64>::new(1.25, -2.5);
        let (re, im) = z.to_f64_parts();
        assert_eq!(Complex::<f64>::from_f64_parts(re, im), z);
        let (re, im) = Scalar::to_f64_parts(7.5f64);
        assert_eq!(im, 0.0);
        assert_eq!(<f64 as Scalar>::from_f64_parts(re, im), 7.5);
    }

    #[test]
    fn abs_sqr() {
        assert_eq!(Scalar::abs_sqr(-3.0f64), 9.0);
        assert_eq!(Complex::<f64>::new(3.0, 4.0).abs_sqr(), 25.0);
    }
}
