//! Dynamically typed vectors holding data in either precision.
//!
//! The mixed-precision pipeline (Section 3.2) tracks a *current working
//! precision* through the five matvec phases; a phase whose configured
//! compute precision differs from the working precision triggers a cast.
//! [`RealBuffer`] and [`ComplexBuffer`] are the storage behind that: a
//! vector tagged with its precision, plus the cast kernels. Byte counts for
//! the bandwidth model are exposed so fused cast+memory phases can be
//! costed correctly.

use crate::complex::Complex;
use crate::precision::Precision;

/// A real vector stored in one of the two precisions.
#[derive(Clone, Debug, PartialEq)]
pub enum RealBuffer {
    F32(Vec<f32>),
    F64(Vec<f64>),
}

impl RealBuffer {
    /// Zero-filled buffer of length `n` in precision `p`.
    pub fn zeros(p: Precision, n: usize) -> Self {
        match p {
            Precision::Single => RealBuffer::F32(vec![0.0; n]),
            Precision::Double => RealBuffer::F64(vec![0.0; n]),
        }
    }

    /// Build from `f64` data, rounding if `p` is single.
    pub fn from_f64(p: Precision, data: &[f64]) -> Self {
        match p {
            Precision::Single => RealBuffer::F32(data.iter().map(|&x| x as f32).collect()),
            Precision::Double => RealBuffer::F64(data.to_vec()),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        match self {
            RealBuffer::F32(v) => v.len(),
            RealBuffer::F64(v) => v.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn precision(&self) -> Precision {
        match self {
            RealBuffer::F32(_) => Precision::Single,
            RealBuffer::F64(_) => Precision::Double,
        }
    }

    /// Total payload size in bytes (for the bandwidth model).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.len() * self.precision().real_bytes()
    }

    /// Element as `f64` (test/diagnostic path, not a hot loop).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            RealBuffer::F32(v) => v[i] as f64,
            RealBuffer::F64(v) => v[i],
        }
    }

    /// Widen/copy out to an `f64` vector (reference-precision view).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            RealBuffer::F32(v) => v.iter().map(|&x| x as f64).collect(),
            RealBuffer::F64(v) => v.clone(),
        }
    }

    /// The cast kernel: convert to precision `p`. A same-precision cast is
    /// a no-op returning `self` unchanged (the pipeline's fusion logic
    /// never emits those, but the API keeps it total).
    pub fn cast(self, p: Precision) -> Self {
        match (self, p) {
            (RealBuffer::F32(v), Precision::Double) => {
                RealBuffer::F64(v.into_iter().map(|x| x as f64).collect())
            }
            (RealBuffer::F64(v), Precision::Single) => {
                RealBuffer::F32(v.into_iter().map(|x| x as f32).collect())
            }
            (b, _) => b,
        }
    }

    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            RealBuffer::F32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            RealBuffer::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f32_mut(&mut self) -> Option<&mut [f32]> {
        match self {
            RealBuffer::F32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64_mut(&mut self) -> Option<&mut [f64]> {
        match self {
            RealBuffer::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Elementwise accumulate `self += other`, in `self`'s precision.
    /// Used by the phase-5 reduction when summing partial outputs.
    pub fn accumulate(&mut self, other: &RealBuffer) {
        assert_eq!(self.len(), other.len(), "accumulate length mismatch");
        match self {
            RealBuffer::F32(v) => {
                for (i, x) in v.iter_mut().enumerate() {
                    *x += other.get(i) as f32;
                }
            }
            RealBuffer::F64(v) => {
                for (i, x) in v.iter_mut().enumerate() {
                    *x += other.get(i);
                }
            }
        }
    }
}

/// A complex vector stored in one of the two precisions.
#[derive(Clone, Debug, PartialEq)]
pub enum ComplexBuffer {
    C32(Vec<Complex<f32>>),
    C64(Vec<Complex<f64>>),
}

impl ComplexBuffer {
    pub fn zeros(p: Precision, n: usize) -> Self {
        match p {
            Precision::Single => ComplexBuffer::C32(vec![Complex::zero(); n]),
            Precision::Double => ComplexBuffer::C64(vec![Complex::zero(); n]),
        }
    }

    pub fn from_c64(p: Precision, data: &[Complex<f64>]) -> Self {
        match p {
            Precision::Single => ComplexBuffer::C32(data.iter().map(|z| z.cast()).collect()),
            Precision::Double => ComplexBuffer::C64(data.to_vec()),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ComplexBuffer::C32(v) => v.len(),
            ComplexBuffer::C64(v) => v.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn precision(&self) -> Precision {
        match self {
            ComplexBuffer::C32(_) => Precision::Single,
            ComplexBuffer::C64(_) => Precision::Double,
        }
    }

    #[inline]
    pub fn bytes(&self) -> usize {
        self.len() * self.precision().complex_bytes()
    }

    #[inline]
    pub fn get(&self, i: usize) -> Complex<f64> {
        match self {
            ComplexBuffer::C32(v) => v[i].cast(),
            ComplexBuffer::C64(v) => v[i],
        }
    }

    pub fn to_c64_vec(&self) -> Vec<Complex<f64>> {
        match self {
            ComplexBuffer::C32(v) => v.iter().map(|z| z.cast()).collect(),
            ComplexBuffer::C64(v) => v.clone(),
        }
    }

    pub fn cast(self, p: Precision) -> Self {
        match (self, p) {
            (ComplexBuffer::C32(v), Precision::Double) => {
                ComplexBuffer::C64(v.into_iter().map(|z| z.cast()).collect())
            }
            (ComplexBuffer::C64(v), Precision::Single) => {
                ComplexBuffer::C32(v.into_iter().map(|z| z.cast()).collect())
            }
            (b, _) => b,
        }
    }

    pub fn as_c32(&self) -> Option<&[Complex<f32>]> {
        match self {
            ComplexBuffer::C32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c64(&self) -> Option<&[Complex<f64>]> {
        match self {
            ComplexBuffer::C64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c32_mut(&mut self) -> Option<&mut [Complex<f32>]> {
        match self {
            ComplexBuffer::C32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c64_mut(&mut self) -> Option<&mut [Complex<f64>]> {
        match self {
            ComplexBuffer::C64(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_zeros_and_len() {
        let b = RealBuffer::zeros(Precision::Single, 7);
        assert_eq!(b.len(), 7);
        assert_eq!(b.precision(), Precision::Single);
        assert_eq!(b.bytes(), 28);
        assert!(!b.is_empty());
        assert_eq!(b.get(3), 0.0);
    }

    #[test]
    fn real_cast_loses_then_keeps_bits() {
        // A double that is not representable in single.
        let x = 1.0 + 2f64.powi(-40);
        let b = RealBuffer::from_f64(Precision::Double, &[x]);
        let narrowed = b.clone().cast(Precision::Single);
        assert_ne!(narrowed.get(0), x);
        // Widening back does not recover the bits.
        let widened = narrowed.cast(Precision::Double);
        assert_eq!(widened.get(0), 1.0);
        // Same-precision cast is identity.
        assert_eq!(b.clone().cast(Precision::Double), b);
    }

    #[test]
    fn real_accumulate_mixed_precision() {
        let mut acc = RealBuffer::from_f64(Precision::Double, &[1.0, 2.0]);
        let other = RealBuffer::from_f64(Precision::Single, &[0.5, 0.25]);
        acc.accumulate(&other);
        assert_eq!(acc.to_f64_vec(), vec![1.5, 2.25]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accumulate_length_mismatch_panics() {
        let mut acc = RealBuffer::zeros(Precision::Double, 2);
        let other = RealBuffer::zeros(Precision::Double, 3);
        acc.accumulate(&other);
    }

    #[test]
    fn complex_roundtrip() {
        let data = vec![Complex::new(1.5, -2.5), Complex::new(0.0, 1.0)];
        let b = ComplexBuffer::from_c64(Precision::Double, &data);
        assert_eq!(b.to_c64_vec(), data);
        assert_eq!(b.bytes(), 32);
        let s = b.cast(Precision::Single);
        assert_eq!(s.precision(), Precision::Single);
        assert_eq!(s.bytes(), 16);
        // These values are exactly representable in f32.
        assert_eq!(s.to_c64_vec(), data);
    }

    #[test]
    fn accessors_match_variant() {
        let b = ComplexBuffer::zeros(Precision::Single, 4);
        assert!(b.as_c32().is_some());
        assert!(b.as_c64().is_none());
        let mut b = b.cast(Precision::Double);
        assert!(b.as_c64_mut().is_some());
        assert!(b.as_c32_mut().is_none());
    }
}
